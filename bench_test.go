package braidio

// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation (DESIGN.md §4), plus the ablations DESIGN.md calls
// out and a few microbenchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark regenerates the complete artifact per iteration,
// so ns/op is the cost of reproducing that figure from scratch.

import (
	"testing"

	"braidio/internal/core"
	"braidio/internal/experiments"
	"braidio/internal/linecode"
	"braidio/internal/linkcache"
	"braidio/internal/modem"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/rxchain"
	"braidio/internal/units"
)

// runExperiment benchmarks one registered experiment end to end.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables)+len(rep.Series)+len(rep.Matrices) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Tables.

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// Figures.

func BenchmarkFig1(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }

// Extensions beyond the paper.

func BenchmarkRxChain(b *testing.B)     { runExperiment(b, "rxchain") }
func BenchmarkExtHarvest(b *testing.B)  { runExperiment(b, "ext-harvest") }
func BenchmarkExtMobility(b *testing.B) { runExperiment(b, "ext-mobility") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationScheduler(b *testing.B) { runExperiment(b, "ablation-scheduler") }
func BenchmarkSwitchOverhead(b *testing.B)    { runExperiment(b, "ablation-switch") }
func BenchmarkAblationARQ(b *testing.B)       { runExperiment(b, "ablation-arq") }
func BenchmarkOffloadSolvers(b *testing.B)    { runExperiment(b, "ablation-solver") }
func BenchmarkAblationDiversity(b *testing.B) { runExperiment(b, "ablation-diversity") }

// Microbenchmarks of the decision-making hot paths.

// BenchmarkCharacterize measures the PHY link characterization — run at
// every allocation recompute.
func BenchmarkCharacterize(b *testing.B) {
	m := phy.NewModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if links := m.Characterize(0.5); len(links) != 3 {
			b.Fatal("unexpected link count")
		}
	}
}

// BenchmarkOffloadOptimize measures the closed-form Eq. 1 solve.
func BenchmarkOffloadOptimize(b *testing.B) {
	links := phy.NewModel().Characterize(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(links, 7200, 720); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairTransfer measures one full battery-to-death braid run for
// a representative device pair.
func BenchmarkPairTransfer(b *testing.B) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPair(watch, phone, 0.5).Transfer(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGainMatrixBluetooth10 measures the full 10×10 Fig. 15 gain
// matrix at 0.5 m with the scheduling-layer caches on (the default) —
// the acceptance benchmark for the linkcache + allocation-memo +
// block-costing work, which must beat the seed's per-row-goroutine,
// map-heavy implementation by ≥ 3× while staying bit-identical.
func BenchmarkGainMatrixBluetooth10(b *testing.B) {
	devices := Devices()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := GainMatrix(0.5, devices)
		if err != nil {
			b.Fatal(err)
		}
		if m.Max() <= 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkGainMatrixBluetooth10Uncached is the same matrix with the
// link cache and allocation memo forced off — the contrast run that
// isolates what the caches contribute beyond the cheaper window costing.
func BenchmarkGainMatrixBluetooth10Uncached(b *testing.B) {
	devices := Devices()
	linkcache.SetEnabled(false)
	core.DefaultDisableAllocationMemo = true
	defer func() {
		linkcache.SetEnabled(true)
		core.DefaultDisableAllocationMemo = false
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := GainMatrix(0.5, devices)
		if err != nil {
			b.Fatal(err)
		}
		if m.Max() <= 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkPairTransferTolerant measures a full braid run with a 1%
// allocation re-solve tolerance — the explicit "periodically
// re-computes" knob trading solver invocations for throughput precision.
func BenchmarkPairTransferTolerant(b *testing.B) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPair(watch, phone, 0.5, WithAllocationTolerance(0.01)).Transfer(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionFrame measures the packet-level MAC per-frame cost.
func BenchmarkSessionFrame(b *testing.B) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	pair := NewPair(watch, phone, 0.5)
	s, err := pair.NewSession(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendFrame(240); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtLineCode(b *testing.B) { runExperiment(b, "ext-linecode") }

func BenchmarkExtHub(b *testing.B) { runExperiment(b, "ext-hub") }

func BenchmarkExtWakeup(b *testing.B) { runExperiment(b, "ext-wakeup") }
func BenchmarkExtQAM(b *testing.B)    { runExperiment(b, "ext-qam") }

func BenchmarkExtInventory(b *testing.B) { runExperiment(b, "ext-inventory") }
func BenchmarkExtOutage(b *testing.B)    { runExperiment(b, "ext-outage") }
func BenchmarkExtPump(b *testing.B)      { runExperiment(b, "ext-pump") }

func BenchmarkExtSensitivity(b *testing.B) { runExperiment(b, "ext-sensitivity") }

func BenchmarkExtQoS(b *testing.B) { runExperiment(b, "ext-qos") }

// Waveform-engine benchmarks (PR 3): the frame-level passive-RX hot path
// and the Monte-Carlo sweep, in allocating and zero-allocation/parallel
// forms. The *ZeroAlloc and *Parallel variants are the acceptance
// benchmarks: ≥3× wall-clock on the sweep (multi-core) and 0 allocs/op
// on the frame path.

// waveformFrameBits is a representative backscatter frame payload.
const waveformFrameBits = 512

func waveformPayload() []byte {
	r := rng.New(1)
	bits := make([]byte, waveformFrameBits)
	for i := range bits {
		bits[i] = r.Bit()
	}
	return bits
}

// BenchmarkWaveformFrame is the legacy allocating frame path:
// encode→modulate→detect→decode with fresh slices per frame.
func BenchmarkWaveformFrame(b *testing.B) {
	bits := waveformPayload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		symbols := linecode.Encode(linecode.FM0, bits)
		wave := modem.OOKWaveform(symbols, 8, 0, 1)
		det := modem.DetectOOK(wave, 8, 0, 1)
		if got, err := linecode.Decode(linecode.FM0, det); err != nil || len(got) != len(bits) {
			b.Fatal("frame corrupted")
		}
	}
}

// BenchmarkWaveformFrameZeroAlloc is the same path through the
// Into/Append APIs with buffers reused across frames — the 0 allocs/op
// acceptance benchmark.
func BenchmarkWaveformFrameZeroAlloc(b *testing.B) {
	bits := waveformPayload()
	var symbols, det, decoded []byte
	var wave []float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		symbols = linecode.EncodeAppend(symbols[:0], linecode.FM0, bits)
		wave = modem.OOKWaveformInto(wave, symbols, 8, 0, 1)
		var consumed int
		det, consumed = modem.DetectOOKInto(det, wave, 8, 0, 1)
		var err error
		decoded, err = linecode.DecodeAppend(decoded[:0], linecode.FM0, det)
		if err != nil || consumed != len(wave) || len(decoded) != len(bits) {
			b.Fatal("frame corrupted")
		}
	}
}

// BenchmarkMonteCarloSweep is the sequential 1M-bit OOK Monte-Carlo
// sweep — the baseline for the sharded version.
func BenchmarkMonteCarloSweep(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = modem.MonteCarloBER(modem.OOKNonCoherent, 10, 1_000_000, r)
	}
}

// BenchmarkMonteCarloSweepParallel is the sharded sweep on the shared
// pool — bit-identical at any worker count, ~Nx faster on N cores.
func BenchmarkMonteCarloSweepParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = modem.MonteCarloBERParallel(modem.OOKNonCoherent, 10, 1_000_000, 1, 0)
	}
}

// BenchmarkRxChainRunner measures one 2000-bit chain run through the
// pooled Runner (zero allocations steady-state).
func BenchmarkRxChainRunner(b *testing.B) {
	ru := rxchain.NewRunner()
	cfg := rxchain.DefaultConfig(units.Rate100k, 1)
	var res rxchain.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ru.Run(cfg, 2000, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRxChainSweepParallel measures the four-scenario §3.1 sweep
// (the cells of the rxchain experiment) through the pooled parallel
// sweep at 2000 bits per cell.
func BenchmarkRxChainSweepParallel(b *testing.B) {
	cfgs := []rxchain.Config{
		rxchain.DefaultConfig(units.Rate100k, 1),
		rxchain.DefaultConfig(units.Rate100k, 2),
		rxchain.DefaultConfig(units.Rate100k, 3),
		rxchain.DefaultConfig(units.Rate100k, 4),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rxchain.RunAll(cfgs, 2000, 0); err != nil {
			b.Fatal(err)
		}
	}
}
