package braidio

// The benchmark harness: one testing.B per table and figure of the
// paper's evaluation (DESIGN.md §4), plus the ablations DESIGN.md calls
// out and a few microbenchmarks of the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark regenerates the complete artifact per iteration,
// so ns/op is the cost of reproducing that figure from scratch.

import (
	"testing"

	"braidio/internal/core"
	"braidio/internal/experiments"
	"braidio/internal/linkcache"
	"braidio/internal/phy"
)

// runExperiment benchmarks one registered experiment end to end.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables)+len(rep.Series)+len(rep.Matrices) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Tables.

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// Figures.

func BenchmarkFig1(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFig3(b *testing.B)  { runExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { runExperiment(b, "fig4") }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig9(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig12(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B) { runExperiment(b, "fig18") }

// Extensions beyond the paper.

func BenchmarkRxChain(b *testing.B)     { runExperiment(b, "rxchain") }
func BenchmarkExtHarvest(b *testing.B)  { runExperiment(b, "ext-harvest") }
func BenchmarkExtMobility(b *testing.B) { runExperiment(b, "ext-mobility") }

// Ablations (DESIGN.md §5).

func BenchmarkAblationScheduler(b *testing.B) { runExperiment(b, "ablation-scheduler") }
func BenchmarkSwitchOverhead(b *testing.B)    { runExperiment(b, "ablation-switch") }
func BenchmarkAblationARQ(b *testing.B)       { runExperiment(b, "ablation-arq") }
func BenchmarkOffloadSolvers(b *testing.B)    { runExperiment(b, "ablation-solver") }
func BenchmarkAblationDiversity(b *testing.B) { runExperiment(b, "ablation-diversity") }

// Microbenchmarks of the decision-making hot paths.

// BenchmarkCharacterize measures the PHY link characterization — run at
// every allocation recompute.
func BenchmarkCharacterize(b *testing.B) {
	m := phy.NewModel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if links := m.Characterize(0.5); len(links) != 3 {
			b.Fatal("unexpected link count")
		}
	}
}

// BenchmarkOffloadOptimize measures the closed-form Eq. 1 solve.
func BenchmarkOffloadOptimize(b *testing.B) {
	links := phy.NewModel().Characterize(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(links, 7200, 720); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairTransfer measures one full battery-to-death braid run for
// a representative device pair.
func BenchmarkPairTransfer(b *testing.B) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPair(watch, phone, 0.5).Transfer(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGainMatrixBluetooth10 measures the full 10×10 Fig. 15 gain
// matrix at 0.5 m with the scheduling-layer caches on (the default) —
// the acceptance benchmark for the linkcache + allocation-memo +
// block-costing work, which must beat the seed's per-row-goroutine,
// map-heavy implementation by ≥ 3× while staying bit-identical.
func BenchmarkGainMatrixBluetooth10(b *testing.B) {
	devices := Devices()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := GainMatrix(0.5, devices)
		if err != nil {
			b.Fatal(err)
		}
		if m.Max() <= 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkGainMatrixBluetooth10Uncached is the same matrix with the
// link cache and allocation memo forced off — the contrast run that
// isolates what the caches contribute beyond the cheaper window costing.
func BenchmarkGainMatrixBluetooth10Uncached(b *testing.B) {
	devices := Devices()
	linkcache.SetEnabled(false)
	core.DefaultDisableAllocationMemo = true
	defer func() {
		linkcache.SetEnabled(true)
		core.DefaultDisableAllocationMemo = false
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := GainMatrix(0.5, devices)
		if err != nil {
			b.Fatal(err)
		}
		if m.Max() <= 0 {
			b.Fatal("empty matrix")
		}
	}
}

// BenchmarkPairTransferTolerant measures a full braid run with a 1%
// allocation re-solve tolerance — the explicit "periodically
// re-computes" knob trading solver invocations for throughput precision.
func BenchmarkPairTransferTolerant(b *testing.B) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewPair(watch, phone, 0.5, WithAllocationTolerance(0.01)).Transfer(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionFrame measures the packet-level MAC per-frame cost.
func BenchmarkSessionFrame(b *testing.B) {
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	pair := NewPair(watch, phone, 0.5)
	s, err := pair.NewSession(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SendFrame(240); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtLineCode(b *testing.B) { runExperiment(b, "ext-linecode") }

func BenchmarkExtHub(b *testing.B) { runExperiment(b, "ext-hub") }

func BenchmarkExtWakeup(b *testing.B) { runExperiment(b, "ext-wakeup") }
func BenchmarkExtQAM(b *testing.B)    { runExperiment(b, "ext-qam") }

func BenchmarkExtInventory(b *testing.B) { runExperiment(b, "ext-inventory") }
func BenchmarkExtOutage(b *testing.B)    { runExperiment(b, "ext-outage") }
func BenchmarkExtPump(b *testing.B)      { runExperiment(b, "ext-pump") }

func BenchmarkExtSensitivity(b *testing.B) { runExperiment(b, "ext-sensitivity") }

func BenchmarkExtQoS(b *testing.B) { runExperiment(b, "ext-qos") }
