package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// readBenchJSON loads a BenchRecord written by -benchjson.
func readBenchJSON(path string) (*BenchRecord, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec := &BenchRecord{}
	if err := json.Unmarshal(buf, rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// diffLine is one benchmark's before/after comparison.
type diffLine struct {
	name                 string
	oldNs, newNs         float64
	oldAllocs, newAllocs int64
	regressed            bool
}

// minAllocIters is the iteration count below which allocs/op is not
// compared: a run of a handful of iterations charges its one-time setup
// (buffers, pools, caches warming) to those few ops, so its allocs/op
// is incomparable to a fully amortized baseline. ns/op is still
// compared — it is far less setup-dominated for the slow benchmarks
// this applies to.
const minAllocIters = 10

// diffBench compares two benchmark records. A benchmark regresses when
// its ns/op grows by more than threshold (a fraction: 0.25 = +25%) or
// its allocs/op grows beyond the same fractional slack — alloc counts
// are deterministic, so they get no measurement-noise allowance beyond
// the ratio itself; runs too short to amortize setup (or records
// predating iteration counts) skip the alloc check per minAllocIters.
// Benchmarks present on only one side are reported but never fail the
// diff (suites grow PR over PR).
func diffBench(oldRec, newRec *BenchRecord, threshold float64) (lines []diffLine, onlyOld, onlyNew []string) {
	oldByName := map[string]BenchResult{}
	for _, r := range oldRec.Results {
		oldByName[r.Name] = r
	}
	newNames := map[string]bool{}
	for _, r := range newRec.Results {
		newNames[r.Name] = true
		o, ok := oldByName[r.Name]
		if !ok {
			onlyNew = append(onlyNew, r.Name)
			continue
		}
		l := diffLine{
			name:  r.Name,
			oldNs: o.NsPerOp, newNs: r.NsPerOp,
			oldAllocs: o.AllocsPerOp, newAllocs: r.AllocsPerOp,
		}
		if r.NsPerOp > o.NsPerOp*(1+threshold) {
			l.regressed = true
		}
		if o.AllocsPerOp >= 0 && r.AllocsPerOp >= 0 &&
			o.Iters >= minAllocIters && r.Iters >= minAllocIters &&
			float64(r.AllocsPerOp) > float64(o.AllocsPerOp)*(1+threshold) {
			l.regressed = true
		}
		lines = append(lines, l)
	}
	for name := range oldByName {
		if !newNames[name] {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].name < lines[j].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return lines, onlyOld, onlyNew
}

// pct renders a before→after ratio as a signed percentage.
func pct(oldV, newV float64) string {
	if oldV <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(newV-oldV)/oldV)
}

// runBenchDiff compares the baseline record at oldPath against newPath
// and prints a per-benchmark table. It returns the number of regressed
// benchmarks; callers exit nonzero when it is positive, which is what
// lets CI gate on a committed baseline.
func runBenchDiff(oldPath, newPath string, threshold float64) (int, error) {
	oldRec, err := readBenchJSON(oldPath)
	if err != nil {
		return 0, err
	}
	newRec, err := readBenchJSON(newPath)
	if err != nil {
		return 0, err
	}
	lines, onlyOld, onlyNew := diffBench(oldRec, newRec, threshold)
	regressions := 0
	fmt.Printf("%-28s %12s %12s %9s %8s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old al", "new al", "verdict")
	for _, l := range lines {
		verdict := "ok"
		if l.regressed {
			verdict = "REGRESSED"
			regressions++
		}
		fmt.Printf("%-28s %12.0f %12.0f %9s %8d %8d  %s\n",
			l.name, l.oldNs, l.newNs, pct(l.oldNs, l.newNs), l.oldAllocs, l.newAllocs, verdict)
	}
	for _, n := range onlyNew {
		fmt.Printf("%-28s %s\n", n, "(new benchmark, no baseline)")
	}
	for _, n := range onlyOld {
		fmt.Printf("%-28s %s\n", n, "(removed since baseline)")
	}
	fmt.Printf("\n%d compared, %d regressed (threshold %+.0f%%), %d new, %d removed\n",
		len(lines), regressions, 100*threshold, len(onlyNew), len(onlyOld))
	return regressions, nil
}
