package main

import (
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	const sample = `goos: linux
goarch: amd64
pkg: braidio
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkWaveformFrame           	    9403	     26645 ns/op	   68160 B/op	       4 allocs/op
BenchmarkWaveformFrameZeroAlloc-8	   12661	     19508 ns/op	       0 B/op	       0 allocs/op
BenchmarkAnalyticBER-8           	98765432	        12.5 ns/op
PASS
ok  	braidio	1.898s
`
	rec, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || !strings.Contains(rec.CPU, "Xeon") {
		t.Errorf("context not captured: %+v", rec)
	}
	if len(rec.Results) != 3 {
		t.Fatalf("%d results, want 3", len(rec.Results))
	}
	r0 := rec.Results[0]
	if r0.Name != "WaveformFrame" || r0.NsPerOp != 26645 || r0.BytesPerOp != 68160 || r0.AllocsPerOp != 4 {
		t.Errorf("result 0 = %+v", r0)
	}
	if r1 := rec.Results[1]; r1.Name != "WaveformFrameZeroAlloc" || r1.AllocsPerOp != 0 {
		t.Errorf("result 1 = %+v (GOMAXPROCS suffix must be stripped, zero allocs preserved)", r1)
	}
	if r2 := rec.Results[2]; r2.Name != "AnalyticBER" || r2.NsPerOp != 12.5 || r2.BytesPerOp != -1 || r2.AllocsPerOp != -1 {
		t.Errorf("result 2 = %+v (missing -benchmem fields must be -1)", r2)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok braidio 1s\n")); err == nil {
		t.Fatal("empty input accepted")
	}
}
