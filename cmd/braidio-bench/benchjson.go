package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// BenchResult is one benchmark line of `go test -bench` output, reduced
// to the fields the repo's perf trajectory tracks.
type BenchResult struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix
	// stripped (BenchmarkFig4-8 → Fig4).
	Name string `json:"name"`
	// NsPerOp is the reported wall-clock per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is reported with -benchmem; -1 when absent.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is reported with -benchmem; -1 when absent.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Iters is the iteration count the run used; 0 in records written
	// before the field existed. Alloc comparisons are skipped for runs
	// too short to amortize per-run setup.
	Iters int64 `json:"iters,omitempty"`
}

// BenchRecord is the top-level JSON document: enough context to compare
// records across commits plus the per-benchmark results.
type BenchRecord struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// parseBench extracts benchmark results from `go test -bench` text. It
// tolerates interleaved PASS/ok/log lines and both -benchmem and plain
// formats:
//
//	BenchmarkFig4-8   375   642250 ns/op   97983 B/op   166 allocs/op
func parseBench(r io.Reader) (*BenchRecord, error) {
	rec := &BenchRecord{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then unit pairs: "<value> <unit>".
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i]
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		res := BenchResult{Name: name, NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		if iters, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
			res.Iters = iters
		}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		rec.Results = append(rec.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Results) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rec, nil
}

// writeBenchJSON parses benchmark text from r and writes the JSON record
// to path.
func writeBenchJSON(r io.Reader, path string) error {
	rec, err := parseBench(r)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "braidio-bench: wrote %d benchmark results to %s\n", len(rec.Results), path)
	return nil
}
