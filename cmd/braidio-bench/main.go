// Command braidio-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	braidio-bench -list
//	braidio-bench                 # run everything
//	braidio-bench -exp fig15,fig9 # run a subset
//	braidio-bench -csv out/       # also write CSV files
//	go test -bench=. -benchmem . | braidio-bench -benchjson BENCH.json
//	braidio-bench -benchdiff old.json new.json   # regression gate
//
// Each experiment prints a structured report: the paper's claim, the
// measured headline numbers, and the regenerated tables/curves/matrices.
// The -benchjson mode instead parses `go test -bench` output on stdin
// into a machine-readable JSON perf record (name, ns/op, allocs/op), the
// format the repo's perf trajectory (BENCH_*.json) is tracked in.
// The -benchdiff mode compares two such records benchmark-by-benchmark
// and exits 1 if any ns/op or allocs/op grew past -threshold — CI runs
// it against the committed baseline to catch perf regressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"braidio/internal/experiments"
	"braidio/internal/linkcache"
	"braidio/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	exp := flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
	csvDir := flag.String("csv", "", "also write CSV files to this directory")
	stats := flag.Bool("stats", false, "print scheduling-layer cache statistics after the run")
	benchJSON := flag.String("benchjson", "", "parse `go test -bench` output from stdin and write a JSON benchmark record to this file")
	benchDiff := flag.String("benchdiff", "", "baseline JSON record (from -benchjson); compares against the record named by the trailing argument and exits 1 on regression")
	threshold := flag.Float64("threshold", 0.25, "fractional ns/op and allocs/op growth tolerated by -benchdiff before a benchmark counts as regressed")
	metrics := flag.Bool("metrics", false, "instrument the experiment runs and print a Prometheus-style metrics exposition afterwards")
	flag.Parse()

	if *benchDiff != "" {
		if flag.NArg() != 1 {
			fmt.Fprintf(os.Stderr, "braidio-bench: -benchdiff needs exactly one trailing argument (the new record), got %d\n", flag.NArg())
			os.Exit(2)
		}
		regressions, err := runBenchDiff(*benchDiff, flag.Arg(0), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braidio-bench: benchdiff: %v\n", err)
			os.Exit(2)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(os.Stdin, *benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "braidio-bench: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "braidio-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var rec *obs.Recorder
	if *metrics {
		// Experiments build their engines internally, so instrumentation
		// flows through the process-default recorder rather than an
		// explicitly threaded pointer.
		rec = obs.NewRecorder()
		obs.SetDefault(rec)
	}

	failed := 0
	for _, e := range selected {
		rep, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "braidio-bench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if err := rep.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "braidio-bench: render %s: %v\n", e.ID, err)
			failed++
			continue
		}
		if *csvDir != "" {
			if err := rep.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "braidio-bench: csv %s: %v\n", e.ID, err)
				failed++
			}
		}
	}
	if rec != nil {
		obs.SetDefault(nil)
		snap := rec.Snapshot()
		fmt.Println()
		if err := snap.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "braidio-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if *stats {
		s := linkcache.Snapshot()
		total := s.Hits + s.Misses
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Hits) / float64(total)
		}
		fmt.Printf("\n== PHY link cache ==\nhits: %d  misses: %d  (%.1f%% hit rate, %d resident entries)\n",
			s.Hits, s.Misses, pct, s.Entries)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
