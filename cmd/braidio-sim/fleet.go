package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"braidio"
	"braidio/internal/ascii"
	"braidio/internal/hub"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// fleetOpts carries the -fleet mode's knobs from main.
type fleetOpts struct {
	shards  int
	members int
	workers int
	seed    uint64
	horizon float64
	rounds  int
	hub     braidio.Device
	member  braidio.Device
}

// runFleet simulates a population of independent hub stars — shards ×
// members wearables — and prints the population summary plus a
// per-shard table. Member distances, loads, and mobility are drawn from
// each shard's private substream, so the same -seed reproduces the same
// fleet bit-for-bit at any -workers count.
func runFleet(o fleetOpts) {
	build := func(shard int, stream *braidio.RNG) (*hub.Hub, error) {
		h := hub.New(o.hub, nil)
		for j := 0; j < o.members; j++ {
			m := hub.Member{
				Device:   o.member,
				Distance: units.Meter(0.3 + 1.5*stream.Float64()),
				Load:     units.BitRate(1000 + stream.Intn(100000)),
			}
			// A third of the population wanders; walks own a split
			// stream so member order never perturbs distances.
			if stream.Intn(3) == 0 {
				m.Walk = sim.NewRandomWaypoint(0.2, 2.2, 0.5, 30, stream.Split())
			}
			if err := h.Add(m); err != nil {
				return nil, err
			}
		}
		return h, nil
	}
	f := &hub.Fleet{Shards: o.shards, Workers: o.workers, Seed: o.seed, Build: build}
	res, err := f.Run(units.Second(o.horizon), o.rounds)
	if err != nil {
		fail(err)
	}

	lp, reuses := res.Solves()
	fmt.Printf("fleet: %d hubs × %d members over %.0f s (%d rounds, seed %d)\n\n",
		o.shards, o.members, o.horizon, o.rounds, o.seed)
	rows := [][]string{}
	for i, r := range res.Shards {
		if r == nil {
			rows = append(rows, []string{fmt.Sprint(i), "-", "-", "-", "-", "failed"})
			continue
		}
		status := "ok"
		if r.HubExhausted {
			status = fmt.Sprintf("died r%d", r.HubDiedRound)
		}
		rows = append(rows, []string{
			fmt.Sprint(i),
			fmt.Sprint(len(r.Members)),
			fmt.Sprintf("%.4g", r.TotalBits()),
			fmt.Sprintf("%.4g", float64(r.HubDrain)),
			fmt.Sprint(r.Quarantines),
			status,
		})
	}
	ascii.Table(os.Stdout, []string{"Hub", "Members", "Bits", "Hub J", "Quar", "Status"}, rows)
	fmt.Printf("\nfleet bits delivered: %.4g (hub energy %.4g J)\n",
		res.TotalBits(), float64(res.HubDrain()))
	fmt.Printf("hubs exhausted: %d/%d, members quarantined: %d\n",
		res.Exhausted(), o.shards, res.Quarantines())
	fmt.Printf("offload solves: %d LP, %d memo reuses (%.1f%% reused)\n",
		lp, reuses, 100*float64(reuses)/float64(max(lp+reuses, 1)))
}

// startProfiles turns on the requested pprof outputs and returns the
// function that flushes them; the caller defers it so profiles cover
// the whole run.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // a settled heap, not allocation noise
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}
	}
}
