package main

import (
	"fmt"
	"os"

	"braidio"
	"braidio/internal/ascii"
	"braidio/internal/field"
	"braidio/internal/net"
	"braidio/internal/units"
)

// netOpts carries the -scenario net knobs from main.
type netOpts struct {
	workers int
	horizon float64
	rounds  int
	hub     braidio.Device
	member  braidio.Device
}

// runNetScenario demonstrates the two network couplings the isolated
// fleet engine cannot express, each on the geometry that isolates it:
//
//   - relay reach: a member stranded past its home hub's active range
//     delivers through a 2-hop braid via a foreign hub, with the
//     forwarding bill on the via hub's battery;
//   - carrier sharing: two hubs close enough that each hub's active
//     carrier powers the neighbor's backscatter uplinks, cutting the
//     hub-side cost of those rounds to the passive envelope.
//
// Both runs print the same per-member table and a counterfactual with
// the coupling disabled, so the gain is visible in one screen.
func runNetScenario(o netOpts) {
	mk := func(x, y float64, members ...net.Member) net.Hub {
		return net.Hub{Device: o.hub, Pos: field.Vec2{X: x, Y: y}, Members: members}
	}
	m := func(x, y float64, load units.BitRate) net.Member {
		return net.Member{Device: o.member, Pos: field.Vec2{X: x, Y: y}, Load: load}
	}

	// Relay reach: hub 1's trunk back to hub 0 is 1600 m; the stranded
	// member at 1800 m is past the ~1773 m active range of its home hub
	// but an easy 200 m from hub 1.
	relay := &net.Topology{Hubs: []net.Hub{
		mk(0, 0, m(0.00, 0.40, 24000), m(0.55, -0.20, 31000), m(1800, 0, 12000)),
		mk(1600, 0, m(1600.0, 0.60, 22000), m(1599.2, 0.00, 36000)),
	}}
	fmt.Printf("== relay reach: stranded member at 1800 m, hubs at 0 m and 1600 m ==\n\n")
	res := runNetTopo(relay, net.Config{Workers: o.workers}, o, true)
	base := runNetTopo(relay, net.Config{Workers: o.workers, DisableRelay: true}, o, false)
	stranded, strandedBase := res.Hubs[0].Members[2], base.Hubs[0].Members[2]
	fmt.Printf("stranded member: %.4g bits via 2-hop relay (%d relay rounds, via hub billed %.4g J)\n",
		stranded.Bits, stranded.RelayRounds, float64(stranded.ViaDrain))
	fmt.Printf("without relays:  %.4g bits (quarantined: %v) — direct is out of range\n\n",
		strandedBase.Bits, strandedBase.Quarantined)

	// Carrier sharing: two hubs 1.6 m apart are donors for each other's
	// backscatter uplinks; a third hub 2 km away keeps a nonzero
	// interference floor under every receiver.
	share := &net.Topology{Hubs: []net.Hub{
		mk(0, 0, m(0.30, 0.00, 20000), m(-0.25, 0.35, 35000), m(0.10, -0.45, 50000)),
		mk(1.6, 0, m(1.85, 0.10, 15000), m(1.30, -0.30, 42000), m(1.70, 0.50, 27000)),
		mk(2000, 1.6, m(2000.3, 1.60, 33000), m(1999.6, 1.25, 18000), m(2000.0, 2.10, 46000)),
	}}
	fmt.Printf("== carrier sharing: two hubs 1.6 m apart + a far hub's interference floor ==\n\n")
	sres := runNetTopo(share, net.Config{Workers: o.workers}, o, true)
	sbase := runNetTopo(share, net.Config{Workers: o.workers, DisableCarrierShare: true}, o, false)
	fmt.Printf("carrier-shared rounds: %d (interfered rounds: %d)\n", sres.SharedRounds, sres.InterferedRounds)
	cluster := float64(sres.Hubs[0].Drain + sres.Hubs[1].Drain)
	clusterBase := float64(sbase.Hubs[0].Drain + sbase.Hubs[1].Drain)
	fmt.Printf("clustered hub energy: %.4g J shared vs %.4g J isolated carriers (%.3g%% saved)\n",
		cluster, clusterBase, 100*(1-cluster/clusterBase))
}

// runNetTopo builds and runs one network topology; with print set it
// also renders the per-member table.
func runNetTopo(topo *net.Topology, cfg net.Config, o netOpts, print bool) *net.Result {
	n, err := net.New(topo, cfg)
	if err != nil {
		fail(err)
	}
	res, err := n.Run(units.Second(o.horizon), o.rounds)
	if err != nil {
		fail(err)
	}
	if !print {
		return res
	}
	rows := [][]string{}
	for h := range res.Hubs {
		hr := &res.Hubs[h]
		for j := range hr.Members {
			mr := &hr.Members[j]
			mix := fmt.Sprintf("%dd/%ds/%dr", mr.DirectRounds, mr.SharedRounds, mr.RelayRounds)
			status := "ok"
			switch {
			case mr.Quarantined:
				status = fmt.Sprintf("quarantined r%d", mr.QuarantinedRound)
			case mr.Starved:
				status = "starved"
			}
			rows = append(rows, []string{
				fmt.Sprint(h), fmt.Sprint(j),
				fmt.Sprintf("%.4g", mr.Bits),
				fmt.Sprintf("%.3g", mr.RelayBits),
				mix,
				fmt.Sprintf("%.3g", float64(mr.MemberDrain)),
				fmt.Sprintf("%.3g", float64(mr.HubDrain)),
				fmt.Sprintf("%.3g", float64(mr.ViaDrain)),
				status,
			})
		}
	}
	ascii.Table(os.Stdout, []string{"Hub", "Member", "Bits", "Relayed", "Rounds d/s/r", "Member J", "Hub J", "Via J", "Status"}, rows)
	fmt.Printf("\ntotal: %.4g bits over %.0f s (%d rounds); relayed %.4g bits, %d shared, %d interfered rounds\n\n",
		res.TotalBits(), o.horizon, o.rounds, res.RelayBits, res.SharedRounds, res.InterferedRounds)
	return res
}
