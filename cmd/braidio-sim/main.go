// Command braidio-sim simulates a Braidio link between two devices and
// reports the carrier-offload behaviour: the mode allocation, the bits
// delivered until a battery dies, the energy split, and the gains over
// the Bluetooth and best-single-mode baselines.
//
// Usage:
//
//	braidio-sim -tx "Apple Watch" -rx "iPhone 6S" -d 0.5
//	braidio-sim -tx "Nike Fuel Band" -rx "MacBook Pro 15" -d 0.5 -bidir
//	braidio-sim -list                              # device catalog
//	braidio-sim -txwh 0.5 -rxwh 80 -d 1.2          # custom capacities
//	braidio-sim -fleet 16 -members 4               # population of hub stars
//	braidio-sim -fleet 16 -cpuprofile cpu.pprof    # profile the fleet engine
//	braidio-sim -scenario net                      # relay reach + carrier sharing
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"braidio"
	"braidio/internal/ascii"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/mac"
	"braidio/internal/phy"
	"braidio/internal/sim"
	"braidio/internal/units"
)

func main() {
	txName := flag.String("tx", "Apple Watch", "transmitting device (catalog name)")
	rxName := flag.String("rx", "iPhone 6S", "receiving device (catalog name)")
	txWh := flag.Float64("txwh", 0, "override transmitter capacity in Wh")
	rxWh := flag.Float64("rxwh", 0, "override receiver capacity in Wh")
	dist := flag.Float64("d", 0.5, "distance in meters")
	bidir := flag.Bool("bidir", false, "bidirectional transfer (equal data both ways)")
	matrix := flag.Bool("matrix", false, "print the full device-pair gain matrix (Fig. 15) and exit")
	tracePath := flag.String("trace", "", "run a packet-level session and write a per-frame CSV trace to this file")
	traceFrames := flag.Int("frames", 2000, "frames to send in -trace mode")
	faultSpec := flag.String("faults", "", "comma-separated fault injectors for -trace mode, e.g. "+
		"'ge:0.02:0.2,jam:5:30:2:25,drop:10:60:3,brownout:20:60:5:3,snr:-2:1' "+
		"(ge:pEnter:pExit[:badLoss] jam:start:period:dur[:crushdB] drop:start:period:dur "+
		"brownout:start:period:dur[:scale] snr:bias[:sigma])")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for stochastic fault injectors")
	list := flag.Bool("list", false, "list the device catalog and exit")
	fleetN := flag.Int("fleet", 0, "simulate a fleet of N independent hubs (uses -members, -workers, -seed, -horizon, -rounds)")
	scenario := flag.String("scenario", "", "run a named multi-hub scenario: 'net' demos 2-hop relay reach and shared-carrier scheduling (uses -workers, -horizon, -rounds)")
	membersM := flag.Int("members", 4, "wearables per hub in -fleet mode")
	workers := flag.Int("workers", 0, "fleet worker pool size (0 = GOMAXPROCS; results identical at any value)")
	seed := flag.Uint64("seed", 42, "fleet substream seed (same seed, same fleet)")
	horizon := flag.Float64("horizon", 3600, "simulated seconds per hub in -fleet mode")
	rounds := flag.Int("rounds", 12, "scheduling rounds per hub in -fleet mode")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-GC) to this file")
	metricsMode := flag.String("metrics", "", "print an observability snapshot after the run: table, json, or prom (Prometheus text exposition)")
	flag.Parse()

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	emitMetrics, err := setupMetrics(*metricsMode)
	if err != nil {
		fail(err)
	}
	defer emitMetrics()

	if *list {
		rows := [][]string{}
		for _, d := range braidio.Devices() {
			rows = append(rows, []string{d.Name, d.Class, fmt.Sprintf("%.2f Wh", float64(d.Capacity))})
		}
		ascii.Table(os.Stdout, []string{"Device", "Class", "Capacity"}, rows)
		return
	}

	if *matrix {
		printMatrix(braidio.Meter(*dist))
		return
	}

	if *scenario != "" {
		if *scenario != "net" {
			fail(fmt.Errorf("unknown -scenario %q (try 'net')", *scenario))
		}
		runNetScenario(netOpts{
			workers: *workers,
			horizon: *horizon,
			rounds:  *rounds,
			hub:     lookup(*rxName, *rxWh, "hub"),
			member:  lookup(*txName, *txWh, "member"),
		})
		return
	}

	if *fleetN > 0 {
		runFleet(fleetOpts{
			shards:  *fleetN,
			members: *membersM,
			workers: *workers,
			seed:    *seed,
			horizon: *horizon,
			rounds:  *rounds,
			hub:     lookup(*rxName, *rxWh, "hub"),
			member:  lookup(*txName, *txWh, "member"),
		})
		return
	}

	tx := lookup(*txName, *txWh, "tx")
	rx := lookup(*rxName, *rxWh, "rx")
	model := braidio.NewModel()
	d := braidio.Meter(*dist)

	fmt.Printf("%s (%.2f Wh) → %s (%.2f Wh) at %.2f m — regime %v\n\n",
		tx.Name, float64(tx.Capacity), rx.Name, float64(rx.Capacity), *dist, model.Regime(d))

	links := model.Characterize(d)
	rows := [][]string{}
	for _, l := range links {
		rows = append(rows, []string{
			l.Mode.String(), l.Rate.String(),
			fmt.Sprintf("%.2g", l.BER),
			fmt.Sprintf("%.3g", l.T.BitsPerJoule()),
			fmt.Sprintf("%.3g", l.R.BitsPerJoule()),
		})
	}
	ascii.Table(os.Stdout, []string{"Mode", "Rate", "BER", "TX bits/J", "RX bits/J"}, rows)
	fmt.Println()

	if *tracePath != "" {
		chain, err := parseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fail(err)
		}
		runTrace(tx, rx, d, *tracePath, *traceFrames, chain)
		return
	}
	if *faultSpec != "" {
		fail(fmt.Errorf("-faults only applies to packet-level -trace runs"))
	}

	if *bidir {
		res, err := sim.RunBidirectional(model, d, tx, rx)
		if err != nil {
			fail(err)
		}
		fmt.Printf("bidirectional bits: %.4g (Bluetooth: %.4g) — gain %.3g× over %d role swaps\n",
			res.Bits, res.BluetoothBits, res.Gain(), res.Rounds)
		return
	}

	pr, err := sim.RunPair(model, d, tx, rx)
	if err != nil {
		fail(err)
	}
	res := pr.Braidio
	fmt.Printf("bits delivered: %.4g in %.3g s over %d braid epochs\n", res.Bits, float64(res.Duration), res.Epochs)
	fmt.Printf("energy: %s spent %.4g J, %s spent %.4g J (ratio %.3g, budgets %.3g)\n",
		tx.Name, float64(res.Drain1), rx.Name, float64(res.Drain2),
		float64(res.Drain1/res.Drain2), float64(tx.Capacity/rx.Capacity))
	for _, m := range phy.Modes {
		if f := res.ModeFraction(m); f > 0 {
			fmt.Printf("mode %-12s %5.1f%% of bits\n", m, 100*f)
		}
	}
	fmt.Printf("switches: %d (%.3g J total overhead)\n", res.Switches,
		float64(res.SwitchEnergy1+res.SwitchEnergy2))
	fmt.Printf("gain vs Bluetooth:        %.3g×\n", pr.GainVsBluetooth())
	fmt.Printf("gain vs best single mode: %.3g× (best: %v)\n", pr.GainVsBestMode(), pr.BestMode)
}

// runTrace drives a packet-level MAC session — optionally under an
// injected fault chain — and writes its per-frame CSV trace plus the
// session's resilience counters.
func runTrace(tx, rx braidio.Device, d braidio.Meter, path string, frames int, chain faults.Chain) {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	cfg := mac.DefaultConfig(braidio.NewModel(), d, 1)
	cfg.Trace = f
	if len(chain) > 0 {
		cfg.Faults = chain
	}
	s, err := mac.NewSession(cfg, energy.NewBattery(tx.Capacity), energy.NewBattery(rx.Capacity))
	if err != nil {
		fail(err)
	}
	var sessionErr error
	for i := 0; i < frames && !s.Dead(); i++ {
		if _, err := s.SendFrame(240); err != nil {
			sessionErr = err
			break
		}
	}
	st := s.Stats()
	fmt.Printf("traced %d frames to %s (%d switches, %d fallbacks, %d retransmissions)\n",
		st.FramesDelivered, path, st.ModeSwitches, st.Fallbacks, st.Retransmissions)
	fmt.Printf("resilience: %d outages survived, %d flaps suppressed, %d backoff waits, loss rate %.3g\n",
		st.Outages, st.FallbacksSuppressed, st.BackoffWaits, s.LossRate())
	if len(chain) > 0 {
		for name, events := range chain.Counters() {
			fmt.Printf("injector %-16s %d events\n", name, events)
		}
	}
	if sessionErr != nil {
		fmt.Printf("session ended early: %v\n", sessionErr)
	}
}

// parseFaults builds a fault chain from the -faults flag syntax. Each
// comma-separated element is kind:param:param…, with stochastic
// injectors salted from the fault seed by position.
func parseFaults(spec string, seed uint64) (faults.Chain, error) {
	if spec == "" {
		return nil, nil
	}
	var chain faults.Chain
	for i, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		args := make([]float64, 0, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("fault %q: bad number %q", part, f)
			}
			args = append(args, v)
		}
		// arg returns the i-th parameter or a default.
		arg := func(n int, def float64) float64 {
			if n < len(args) {
				return args[n]
			}
			return def
		}
		salt := seed + uint64(i)*0x9e3779b9
		switch fields[0] {
		case "ge":
			if len(args) < 2 {
				return nil, fmt.Errorf("fault %q: need ge:pEnter:pExit[:badLoss]", part)
			}
			chain = append(chain, faults.NewGilbertElliott(args[0], args[1], 0, arg(2, 1), salt))
		case "jam":
			if len(args) < 3 {
				return nil, fmt.Errorf("fault %q: need jam:start:period:dur[:crushdB]", part)
			}
			chain = append(chain, &faults.Jammer{
				Start: units.Second(args[0]), Period: units.Second(args[1]),
				Duration: units.Second(args[2]), SNRCrush: arg(3, 30), Loss: 1,
			})
		case "drop":
			if len(args) < 3 {
				return nil, fmt.Errorf("fault %q: need drop:start:period:dur", part)
			}
			chain = append(chain, &faults.Dropout{
				Start: units.Second(args[0]), Period: units.Second(args[1]), Duration: units.Second(args[2]),
			})
		case "brownout":
			if len(args) < 3 {
				return nil, fmt.Errorf("fault %q: need brownout:start:period:dur[:scale]", part)
			}
			chain = append(chain, &faults.Brownout{
				Start: units.Second(args[0]), Period: units.Second(args[1]),
				Duration: units.Second(args[2]), Scale: arg(3, 3), Affected: faults.SideTX,
			})
		case "snr":
			if len(args) < 1 {
				return nil, fmt.Errorf("fault %q: need snr:bias[:sigma]", part)
			}
			chain = append(chain, faults.NewSNRCorruptor(args[0], arg(1, 0), salt))
		default:
			return nil, fmt.Errorf("unknown fault kind %q (ge, jam, drop, brownout, snr)", fields[0])
		}
	}
	return chain, nil
}

// printMatrix renders the Fig. 15 gain heatmap at the given distance.
func printMatrix(d braidio.Meter) {
	mat, err := braidio.GainMatrix(d, nil)
	if err != nil {
		fail(err)
	}
	labels := make([]string, len(mat.Devices))
	for i, dev := range mat.Devices {
		labels[i] = dev.Name
	}
	fmt.Printf("gain over Bluetooth at %.2f m (column transmits to row):\n\n", float64(d))
	if err := ascii.Heatmap(os.Stdout, labels, labels, mat.Cells, "%.3g"); err != nil {
		fail(err)
	}
}

func lookup(name string, overrideWh float64, role string) braidio.Device {
	if overrideWh > 0 {
		return braidio.CustomDevice(fmt.Sprintf("custom-%s", role), braidio.WattHour(overrideWh))
	}
	d, ok := braidio.DeviceByName(name)
	if !ok {
		fail(fmt.Errorf("unknown device %q (try -list)", name))
	}
	return d
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "braidio-sim: %v\n", err)
	os.Exit(1)
}
