package main

import (
	"fmt"
	"os"

	"braidio/internal/obs"
)

// setupMetrics installs a process-default metrics recorder (with an
// event tracer) for -metrics mode and returns the function that renders
// the snapshot after the run. An empty mode is a no-op: no recorder is
// installed and the engines stay on their uninstrumented path.
func setupMetrics(mode string) (func(), error) {
	if mode == "" {
		return func() {}, nil
	}
	switch mode {
	case "table", "json", "prom":
	default:
		return nil, fmt.Errorf("unknown -metrics mode %q (table, json, prom)", mode)
	}
	rec := obs.NewRecorder()
	rec.Tracer = obs.NewTracer(0)
	obs.SetDefault(rec)
	return func() {
		obs.SetDefault(nil)
		snap := rec.Snapshot()
		switch mode {
		case "json":
			if err := snap.WriteJSON(os.Stdout); err != nil {
				fail(err)
			}
		case "prom":
			if err := snap.WritePrometheus(os.Stdout); err != nil {
				fail(err)
			}
		default:
			fmt.Println("\n== Metrics ==")
			if err := snap.WriteTable(os.Stdout); err != nil {
				fail(err)
			}
			if evs := rec.Tracer.Events(); len(evs) > 0 {
				fmt.Printf("\n== Trace (last %d of %d events) ==\n", len(evs), rec.Tracer.Total())
				const maxShown = 12
				if len(evs) > maxShown {
					evs = evs[len(evs)-maxShown:]
				}
				for _, ev := range evs {
					fmt.Println(" ", ev)
				}
			}
		}
	}, nil
}
