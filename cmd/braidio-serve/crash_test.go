// Kill-restart chaos smoke: build the real daemon, drive it over HTTP
// with a durable journal directory, SIGKILL it mid-epoch (operations
// admitted and acknowledged, epoch not yet run), restart it on the same
// directory, and demand the recovered run continues the schedule with
// digests bit-identical to an uninterrupted in-process reference run.

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"braidio/internal/serve"
	"braidio/internal/units"
)

// daemon wraps one running braidio-serve process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string   // http://host:port
	pre  []string // stdout lines printed before "listening on" (recovery report)

	mu   sync.Mutex
	tail []string // lines printed after startup
}

// startDaemon launches the binary and blocks until it reports its
// listen address, capturing everything printed before it (the recovery
// lines) and draining stdout afterwards.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	d := &daemon{cmd: exec.Command(bin, args...)}
	d.cmd.Stderr = os.Stderr
	stdout, err := d.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if _, addr, ok := strings.Cut(line, "listening on "); ok {
			d.base = "http://" + strings.TrimSpace(strings.Split(addr, ",")[0])
			break
		}
		d.pre = append(d.pre, line)
	}
	if d.base == "" {
		d.cmd.Process.Kill()
		d.cmd.Wait()
		t.Fatalf("daemon never reported a listen address; output:\n%s", strings.Join(d.pre, "\n"))
	}
	go func() {
		for sc.Scan() {
			d.mu.Lock()
			d.tail = append(d.tail, sc.Text())
			d.mu.Unlock()
		}
	}()
	return d
}

// sigkill delivers an uncatchable kill and reaps the process.
func (d *daemon) sigkill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	d.cmd.Wait()
}

// postHub admits a hub budget change over the wire.
func postHub(t *testing.T, client *http.Client, base string, energy float64) {
	t.Helper()
	resp, err := client.Post(base+"/v1/hub", "application/json",
		strings.NewReader(fmt.Sprintf(`{"energy_j":%g}`, energy)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("hub: %d", resp.StatusCode)
	}
}

// TestCrashRestartRecovery is the end-to-end kill-restart soak.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: builds and runs the daemon binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "braidio-serve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	jd := filepath.Join(dir, "journal.d")

	const n = 10
	energy := func(i int) float64 { return 0.3 + 0.15*float64(i) }
	distance := func(i int) float64 { return 0.5 + 0.2*float64(i) }
	client := &http.Client{Timeout: 10 * time.Second}
	// -epoch 1h: epochs fire only when the test posts /v1/epoch, so the
	// kill point is exact. -sync always: every 202 is durable.
	args := []string{"-addr", "127.0.0.1:0", "-epoch", "1h",
		"-journal-dir", jd, "-sync", "always", "-snapshot-every", "100"}

	// Session 1: register, two epochs, then admit updates and die with
	// them still queued (mid-epoch).
	d1 := startDaemon(t, bin, args...)
	regs := make([]serve.DeviceRequest, n)
	for i := range regs {
		regs[i] = serve.DeviceRequest{ID: memberID(i), EnergyJ: energy(i), DistanceM: distance(i)}
	}
	if err := postDevices(client, d1.base+"/v1/register", regs); err != nil {
		t.Fatal(err)
	}
	e1, err := runEpoch(client, d1.base)
	if err != nil {
		t.Fatal(err)
	}
	upd1 := make([]serve.DeviceRequest, 4)
	for i := range upd1 {
		upd1[i] = serve.DeviceRequest{ID: memberID(i), EnergyJ: energy(i) * 0.4, DistanceM: distance(i)}
	}
	if err := postDevices(client, d1.base+"/v1/update", upd1); err != nil {
		t.Fatal(err)
	}
	e2, err := runEpoch(client, d1.base)
	if err != nil {
		t.Fatal(err)
	}
	upd2 := make([]serve.DeviceRequest, 4)
	for i := range upd2 {
		upd2[i] = serve.DeviceRequest{ID: memberID(i + 4), EnergyJ: energy(i+4) * 0.45, DistanceM: distance(i + 4)}
	}
	if err := postDevices(client, d1.base+"/v1/update", upd2); err != nil {
		t.Fatal(err)
	}
	d1.sigkill(t) // four acknowledged updates pending, epoch 3 never ran

	// Session 2: recover from the same directory.
	d2 := startDaemon(t, bin, args...)
	defer d2.sigkill(t)
	report := strings.Join(d2.pre, "\n")
	for _, want := range []string{
		"recovered from " + jd,
		"replayed 18 ops / 2 epochs (2 digests matched)",
		"resumed at epoch 2",
		"recovery digest " + e2.Digest,
	} {
		if !strings.Contains(report, want) {
			t.Errorf("recovery report missing %q:\n%s", want, report)
		}
	}

	e3, err := runEpoch(client, d2.base) // plans the four recovered pending updates
	if err != nil {
		t.Fatal(err)
	}
	postHub(t, client, d2.base, 5)
	e4, err := runEpoch(client, d2.base) // hub change past tolerance: full re-plan
	if err != nil {
		t.Fatal(err)
	}
	if e4.Planned != n {
		t.Fatalf("final epoch planned %d of %d — digest does not cover full state", e4.Planned, n)
	}

	var st serve.Stats
	resp, err := client.Get(d2.base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Members != n || st.Epoch != 4 {
		t.Fatalf("post-recovery stats: members %d epoch %d, want %d/4", st.Members, st.Epoch, n)
	}
	if want := uint64(n + 4 + 4 + 1); st.Admitted != want {
		t.Fatalf("admitted %d, want %d — recovery lost or duplicated operations", st.Admitted, want)
	}

	// Uninterrupted reference: same schedule, one in-process engine with
	// the daemon's default planner config. Every digest must match the
	// two-process run bit for bit.
	ref := serve.NewEngine(serve.Config{
		RatioTolerance: 0.05, DistanceTolerance: 0.05, Window: 64, HubEnergy: 10,
	})
	for i := 0; i < n; i++ {
		if err := ref.Register(memberID(i), units.Joule(energy(i)), units.Meter(distance(i))); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := ref.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := ref.Update(memberID(i), units.Joule(energy(i)*0.4), units.Meter(distance(i))); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := ref.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		if err := ref.Update(memberID(i), units.Joule(energy(i)*0.45), units.Meter(distance(i))); err != nil {
			t.Fatal(err)
		}
	}
	r3, err := ref.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.SetHubEnergy(5); err != nil {
		t.Fatal(err)
	}
	r4, err := ref.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range []struct{ got, want string }{
		{e1.Digest, r1.Digest}, {e2.Digest, r2.Digest},
		{e3.Digest, r3.Digest}, {e4.Digest, r4.Digest},
	} {
		if pair.got != pair.want {
			t.Errorf("epoch %d digest %s, reference %s — kill-restart diverged", i+1, pair.got, pair.want)
		}
	}
}
