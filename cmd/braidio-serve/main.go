// Command braidio-serve is the online multi-tenant planning daemon:
// simulated devices register over HTTP/JSON, stream battery and link
// updates, and read back Eq. (1) mode-fraction plans. Planning is
// epoch-batched and dirty-set scheduled — each epoch re-solves only the
// members whose inputs drifted past tolerance — with bounded admission
// queues, load shedding, Prometheus metrics at /metrics, and an
// optional journal from which a captured session replays
// bit-identically.
//
// Usage:
//
//	braidio-serve -addr :8080                      # run the daemon
//	braidio-serve -journal session.jsonl           # ... with single-file capture
//	braidio-serve -journal-dir journal.d           # ... durable: snapshots, segments, crash recovery
//	braidio-serve -replay session.jsonl            # verify a capture (file or journal dir)
//	braidio-serve -load -n 100000 -epochs 5        # self-contained load run
//	braidio-serve -load -n 5000 -epochs 3 -check   # CI smoke (exit != 0 on failure)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"braidio/internal/obs"
	"braidio/internal/serve"
	"braidio/internal/units"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (load mode: target daemon; empty = in-process)")
	epoch := flag.Duration("epoch", 500*time.Millisecond, "epoch interval (batching window for re-plans)")
	ratioTol := flag.Float64("ratio-tol", 0.05, "battery-ratio drift tolerance before a member is re-planned")
	distTol := flag.Float64("dist-tol", 0.05, "link-distance drift tolerance before a member is re-planned")
	window := flag.Int("window", 64, "block-schedule window length (frame slots per plan)")
	hubJ := flag.Float64("hub-j", 10, "hub-side energy budget E1 in joules")
	queueCap := flag.Int("queue-cap", 1<<16, "admission queue bound; overflow is shed with 503")
	workers := flag.Int("workers", 0, "planning pool size (0 = GOMAXPROCS; plans identical at any value)")
	shards := flag.Int("shards", 0, "member-state shards, rounded up to a power of two (0 = GOMAXPROCS; plans identical at any value)")
	journalPath := flag.String("journal", "", "capture admitted ops and epoch digests to this JSONL file")
	journalDir := flag.String("journal-dir", "", "durable segmented journal directory; restart recovers state from it")
	snapshotEvery := flag.Uint64("snapshot-every", 16, "journal-dir mode: epochs between snapshots (and segment rotations)")
	syncPolicy := flag.String("sync", "epoch", "journal fsync policy: none|epoch|always")
	retain := flag.Int("retain", 0, "journal-dir mode: pre-snapshot segments to keep past compaction")
	failStop := flag.Bool("journal-fail-stop", true, "shed admissions with 503 once the journal has failed")
	replayPath := flag.String("replay", "", "replay a captured journal (file or directory), verify digests, and exit")
	load := flag.Bool("load", false, "run the load generator instead of the daemon")
	target := flag.String("target", "", "load mode: base URL of a running daemon (empty = self-contained in-process server)")
	loadN := flag.Int("n", 100_000, "load mode: members to register")
	loadEpochs := flag.Int("epochs", 5, "load mode: update+epoch rounds after registration")
	loadDrift := flag.Float64("drift", 0.10, "load mode: fraction of members drifting past tolerance per round")
	loadSeed := flag.Uint64("seed", 42, "load mode: generator seed")
	check := flag.Bool("check", false, "load mode: verify dirty-set accounting via /metrics and exit non-zero on failure")
	flag.Parse()

	cfg := serve.Config{
		Workers:           *workers,
		Shards:            *shards,
		QueueCap:          *queueCap,
		RatioTolerance:    *ratioTol,
		DistanceTolerance: *distTol,
		Window:            *window,
		HubEnergy:         units.Joule(*hubJ),
	}
	sync, err := serve.ParseSyncPolicy(*syncPolicy)
	if err != nil {
		fail(err)
	}
	if *journalPath != "" && *journalDir != "" {
		fail(errors.New("-journal and -journal-dir are mutually exclusive"))
	}
	js := journalSetup{
		path: *journalPath,
		dir:  *journalDir,
		opts: serve.JournalOptions{Sync: sync, SnapshotEvery: *snapshotEvery, Retain: *retain},
	}
	if js.path != "" || js.dir != "" {
		cfg.JournalFailStop = *failStop
	}

	switch {
	case *replayPath != "":
		if err := runReplay(*replayPath); err != nil {
			fail(err)
		}
	case *load:
		if err := runLoad(loadConfig{
			target: *target, cfg: cfg, n: *loadN, epochs: *loadEpochs,
			drift: *loadDrift, seed: *loadSeed, check: *check,
		}); err != nil {
			fail(err)
		}
	default:
		if err := runDaemon(*addr, *epoch, cfg, js); err != nil {
			fail(err)
		}
	}
}

// journalSetup carries the daemon's durability flags: a single capture
// file (path), a segmented recovery directory (dir), or neither.
type journalSetup struct {
	path string
	dir  string
	opts serve.JournalOptions
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "braidio-serve:", err)
	os.Exit(1)
}

// runDaemon serves until SIGINT/SIGTERM, then shuts down gracefully:
// stop the epoch ticker, run one final flush epoch so every admitted
// operation lands in a plan (and the journal), close the journal, drain
// in-flight HTTP. With -journal-dir it first recovers engine state from
// the newest snapshot plus the journal tail.
func runDaemon(addr string, epochEvery time.Duration, cfg serve.Config, js journalSetup) error {
	// A full recorder (initialized histogram bounds), so /metrics
	// exports live latency histograms, not just counters.
	rec := obs.NewRecorder()
	cfg.Rec = rec
	js.opts.Rec = rec

	var (
		eng     *serve.Engine
		journal *serve.Journal
	)
	switch {
	case js.dir != "":
		var st serve.RecoveryStats
		var err error
		eng, journal, st, err = serve.Open(js.dir, cfg, js.opts)
		if err != nil {
			return err
		}
		if st.Segments > 0 {
			fmt.Printf("braidio-serve: recovered from %s — segment %d, snapshot epoch %d (%d members), replayed %d ops / %d epochs (%d digests matched), %d torn records, resumed at epoch %d\n",
				js.dir, st.BaseSegment, st.SnapshotEpoch, st.SnapshotMembers,
				st.Ops, st.Epochs, st.Matched, st.TornRecords, st.Resumed)
			if len(st.Digests) > 0 {
				fmt.Printf("braidio-serve: recovery digest %s\n", st.Digests[len(st.Digests)-1])
			}
		} else {
			fmt.Printf("braidio-serve: starting fresh journal directory %s\n", js.dir)
		}
	case js.path != "":
		eng = serve.NewEngine(cfg)
		f, err := os.Create(js.path)
		if err != nil {
			return err
		}
		defer f.Close()
		journal = serve.NewJournalFile(f, eng.Config(), js.opts)
		eng.AttachJournal(journal)
	default:
		eng = serve.NewEngine(cfg)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           (&serve.Server{Engine: eng, Rec: rec, EpochInterval: epochEvery}).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Epoch ticker: the single goroutine allowed to call RunEpoch.
	// Ticker.Stop does not close the channel, so exit rides a quit
	// channel instead of the range ending.
	tick := time.NewTicker(epochEvery)
	quit := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for {
			select {
			case <-tick.C:
				if _, err := eng.RunEpoch(); err != nil {
					fmt.Fprintln(os.Stderr, "braidio-serve: epoch:", err)
				}
			case <-quit:
				return
			}
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("braidio-serve: listening on %s, epoch every %v\n", ln.Addr(), epochEvery)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("braidio-serve: %v, shutting down\n", s)
	case err := <-errc:
		tick.Stop()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	tick.Stop()
	close(quit)
	<-tickDone
	if _, err := eng.RunEpoch(); err != nil { // flush epoch
		fmt.Fprintln(os.Stderr, "braidio-serve: flush epoch:", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	st := eng.Stats()
	fmt.Printf("braidio-serve: drained — %d members, epoch %d\n", st.Members, st.Epoch)
	return nil
}

// runReplay verifies a captured journal end to end: a single-file
// capture through Replay, a segmented journal directory through
// VerifyDir (snapshot restore + tail digest verification).
func runReplay(path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	start := time.Now()
	if info.IsDir() {
		st, err := serve.VerifyDir(path)
		if err != nil {
			return err
		}
		fmt.Printf("replay ok: segment %d, snapshot epoch %d (%d members), %d tail ops, %d epochs (%d digests matched bit-identically), %d torn records, in %v\n",
			st.BaseSegment, st.SnapshotEpoch, st.SnapshotMembers,
			st.Ops, st.Epochs, st.Matched, st.TornRecords, time.Since(start).Round(time.Millisecond))
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := serve.Replay(f)
	if err != nil {
		return err
	}
	if res.Matched == 0 {
		return errors.New("replay: journal contains no completed epochs")
	}
	fmt.Printf("replay ok: %d ops, %d epochs, %d digests matched bit-identically in %v\n",
		res.Ops, res.Epochs, res.Matched, time.Since(start).Round(time.Millisecond))
	return nil
}
