// Load generator for the planning daemon. It registers a large member
// population over the wire, then drives update rounds where a known
// subset drifts past tolerance while another subset jitters within it,
// forces epoch boundaries, and verifies — from the epoch responses and
// a final /metrics scrape — that the dirty-set scheduler re-planned
// exactly the drifted members and nobody else.
//
// The drift/jitter windows are disjoint across rounds, so the expected
// per-round plan count is exact, not statistical: planned == drifted,
// clean == members − drifted.

package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"braidio/internal/obs"
	"braidio/internal/rng"
	"braidio/internal/serve"
)

type loadConfig struct {
	target string // base URL; empty = in-process server
	cfg    serve.Config
	n      int
	epochs int
	drift  float64
	seed   uint64
	check  bool
}

const registerBatch = 1000

// runLoad drives the generator and verifies the dirty-set accounting.
func runLoad(lc loadConfig) error {
	if lc.n <= 0 || lc.epochs <= 0 {
		return fmt.Errorf("load: need positive -n and -epochs, got %d/%d", lc.n, lc.epochs)
	}

	// Drift windows must not collide across rounds or the expected
	// counts stop being exact; clamp k accordingly.
	k := int(float64(lc.n) * lc.drift)
	if max := lc.n / (2 * lc.epochs); k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}

	base := lc.target
	if base == "" {
		rec := obs.NewRecorder()
		lc.cfg.Rec = rec
		// The generator drives epochs explicitly, so the in-process
		// server needs no ticker; the queue bound has to hold one
		// registration wave and one full update round (drift + jitter
		// windows land in a single epoch so the dirty-set accounting
		// stays exact).
		if min := 2 * registerBatch; lc.cfg.QueueCap < min {
			lc.cfg.QueueCap = min
		}
		if min := 2 * k; lc.cfg.QueueCap < min {
			lc.cfg.QueueCap = min
		}
		eng := serve.NewEngine(lc.cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		// Write timeout must outlast a worst-case /v1/epoch: a bulk
		// cold solve of a whole registration wave runs minutes at
		// million-member scale on a small machine.
		srv := &http.Server{
			Handler:           (&serve.Server{Engine: eng, Rec: rec}).Handler(),
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       30 * time.Second,
			WriteTimeout:      10 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("load: in-process daemon at %s\n", base)
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}

	// Member populations: deterministic energies and distances.
	r := rng.New(lc.seed)
	energies := make([]float64, lc.n)
	distances := make([]float64, lc.n)
	for i := range energies {
		energies[i] = 0.2 + 1.8*r.Float64()
		distances[i] = 0.3 + 4.2*r.Float64()
	}

	// Phase 1: registration in batches, with an epoch whenever the
	// next batch could overflow the admission queue.
	queueCap := lc.cfg.QueueCap
	if queueCap <= 0 {
		queueCap = 1 << 16
	}
	start := time.Now()
	regPlanned, pendingOps := 0, 0
	batch := make([]serve.DeviceRequest, 0, registerBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := postDevices(client, base+"/v1/register", batch); err != nil {
			return err
		}
		pendingOps += len(batch)
		batch = batch[:0]
		return nil
	}
	for i := 0; i < lc.n; i++ {
		batch = append(batch, serve.DeviceRequest{
			ID: memberID(i), EnergyJ: energies[i], DistanceM: distances[i],
		})
		if len(batch) == registerBatch {
			if err := flush(); err != nil {
				return err
			}
			if pendingOps+registerBatch > queueCap {
				res, err := runEpoch(client, base)
				if err != nil {
					return err
				}
				regPlanned += res.Planned
				pendingOps = 0
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	res, err := runEpoch(client, base)
	if err != nil {
		return err
	}
	regPlanned += res.Planned
	regDur := time.Since(start)
	fmt.Printf("load: registered %d members in %v (%.0f members/s), %d registration plans\n",
		lc.n, regDur.Round(time.Millisecond), float64(lc.n)/regDur.Seconds(), regPlanned)

	failures := 0
	if regPlanned != lc.n {
		failures++
		fmt.Printf("load: FAIL registration plans = %d, want %d\n", regPlanned, lc.n)
	}

	// Phase 2: update rounds. Round r drifts members [2rk, 2rk+k) past
	// tolerance and jitters [2rk+k, 2rk+2k) within it.
	updates := 0
	updStart := time.Now()
	var epochDur time.Duration
	for round := 0; round < lc.epochs; round++ {
		lo := 2 * round * k
		reqs := make([]serve.DeviceRequest, 0, 2*k)
		for i := lo; i < lo+k; i++ { // past tolerance: halve the battery
			reqs = append(reqs, serve.DeviceRequest{
				ID: memberID(i), EnergyJ: energies[i] / 2, DistanceM: distances[i],
			})
		}
		for i := lo + k; i < lo+2*k; i++ { // within tolerance: 1% jitter
			reqs = append(reqs, serve.DeviceRequest{
				ID: memberID(i), EnergyJ: energies[i] * 1.01, DistanceM: distances[i],
			})
		}
		for off := 0; off < len(reqs); off += registerBatch {
			end := off + registerBatch
			if end > len(reqs) {
				end = len(reqs)
			}
			if err := postDevices(client, base+"/v1/update", reqs[off:end]); err != nil {
				return err
			}
		}
		updates += len(reqs)

		es := time.Now()
		res, err := runEpoch(client, base)
		if err != nil {
			return err
		}
		epochDur += time.Since(es)
		if res.Planned != k || res.Clean != lc.n-k {
			failures++
			fmt.Printf("load: FAIL round %d: planned %d clean %d, want %d/%d\n",
				round, res.Planned, res.Clean, k, lc.n-k)
		} else {
			fmt.Printf("load: round %d: planned %d (dirty only), clean %d, digest %s\n",
				round, res.Planned, res.Clean, res.Digest)
		}
	}
	updDur := time.Since(updStart)
	fmt.Printf("load: %d updates over %d rounds in %v (%.0f updates/s, avg epoch %v)\n",
		updates, lc.epochs, updDur.Round(time.Millisecond),
		float64(updates)/updDur.Seconds(), (epochDur / time.Duration(lc.epochs)).Round(time.Millisecond))

	// Phase 3: verify the counters from /metrics like an operator would.
	metrics, err := scrapeMetrics(client, base)
	if err != nil {
		return err
	}
	wantPlans := uint64(regPlanned + lc.epochs*k)
	checks := []struct {
		name string
		want uint64
	}{
		{"braidio_serve_registers_total", uint64(lc.n)},
		{"braidio_serve_updates_total", uint64(updates)},
		{"braidio_serve_plans_total", wantPlans},
		{"braidio_serve_members", uint64(lc.n)},
	}
	for _, c := range checks {
		got, ok := metrics[c.name]
		if !ok || got != c.want {
			failures++
			fmt.Printf("load: FAIL metric %s = %d (present=%v), want %d\n", c.name, got, ok, c.want)
		}
	}
	fmt.Printf("load: metrics confirm %d plans for %d members across %d epochs — re-plans stayed proportional to drift\n",
		metrics["braidio_serve_plans_total"], metrics["braidio_serve_members"], metrics["braidio_serve_epochs_total"])

	// Phase 4: plan-latency shape from /v1/stats. The first planning
	// epoch is the cold bulk plan — arena growth plus a full-population
	// solve — while the last is a warm steady-state epoch planning only
	// the drifted subset out of a capacity-warm arena. The batched
	// columnar solver's claim is precisely that the steady state is
	// cheap; assert it.
	st, err := fetchStats(client, base)
	if err != nil {
		return err
	}
	fmt.Printf("load: plan latency p50 %.3fms p99 %.3fms, first (cold, bulk) %.3fms, last (warm, drift-only) %.3fms\n",
		st.PlanP50Millis, st.PlanP99Millis, st.FirstPlanMillis, st.LastPlanMillis)
	if st.FirstPlanMillis <= 0 || st.LastPlanMillis <= 0 {
		failures++
		fmt.Printf("load: FAIL plan latency not recorded (first %.3fms, last %.3fms)\n",
			st.FirstPlanMillis, st.LastPlanMillis)
	} else if st.LastPlanMillis >= st.FirstPlanMillis {
		failures++
		fmt.Printf("load: FAIL warm drift-only epoch (%.3fms) did not beat the cold bulk plan (%.3fms)\n",
			st.LastPlanMillis, st.FirstPlanMillis)
	}

	if failures > 0 {
		err := fmt.Errorf("load: %d verification failures", failures)
		if lc.check {
			return err
		}
		fmt.Println("load: WARNING:", err)
	} else {
		fmt.Println("load: ok — dirty-set accounting exact at every epoch")
	}
	return nil
}

func memberID(i int) string { return "m" + strconv.Itoa(i) }

// postDevices sends one batched register/update request.
func postDevices(client *http.Client, url string, reqs []serve.DeviceRequest) error {
	b, err := json.Marshal(reqs)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("load: %s: %d %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// runEpoch forces an epoch boundary and returns its result.
func runEpoch(client *http.Client, base string) (serve.EpochResult, error) {
	var res serve.EpochResult
	resp, err := client.Post(base+"/v1/epoch", "application/json", strings.NewReader("{}"))
	if err != nil {
		return res, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("load: epoch: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return res, json.Unmarshal(body, &res)
}

// fetchStats decodes /v1/stats.
func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("load: stats: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return st, json.Unmarshal(body, &st)
}

// scrapeMetrics fetches /metrics and parses the un-labelled series into
// a name -> integer-value map (fractional gauges are truncated).
func scrapeMetrics(client *http.Client, base string) (map[string]uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := make(map[string]uint64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = uint64(f)
	}
	return out, sc.Err()
}
