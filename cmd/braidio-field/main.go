// Command braidio-field visualizes the phase-cancellation physics behind
// Braidio's antenna-diversity design (Figs. 4–6): the 2-D SNR field a
// non-coherent envelope detector sees, the null arcs, and what the λ/8
// diversity antenna buys.
//
// Usage:
//
//	braidio-field              # field map + diversity sweep
//	braidio-field -grid 31     # coarser/finer map
//	braidio-field -sep 0.082   # diversity antenna separation in meters
package main

import (
	"flag"
	"fmt"
	"os"

	"braidio/internal/ascii"
	"braidio/internal/field"
	"braidio/internal/stats"
)

func main() {
	grid := flag.Int("grid", 25, "field map grid cells per axis")
	sep := flag.Float64("sep", 0, "diversity antenna separation in meters (0 = paper's λ/8)")
	flag.Parse()

	scene := field.PaperScene()
	if *sep > 0 {
		div := field.Vec2{X: scene.RX.X + *sep, Y: scene.RX.Y}
		scene.RXDiv = &div
	}

	fmt.Printf("TX antenna at (%.2f, %.2f), RX at (%.2f, %.2f), diversity at (%.3f, %.2f)\n\n",
		scene.TX.X, scene.TX.Y, scene.RX.X, scene.RX.Y, scene.RXDiv.X, scene.RXDiv.Y)

	// Fig. 4(b): the SNR field over the 2 m × 2 m room. Darker = weaker.
	n := *grid
	if n < 5 {
		fail(fmt.Errorf("grid %d too coarse", n))
	}
	cells := make([][]float64, n)
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = fmt.Sprintf("%.1f", 2*float64(i)/float64(n-1))
		cells[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			p := field.Vec2{X: 2 * float64(j) / float64(n-1), Y: 2 * float64(i) / float64(n-1)}
			cells[i][j] = float64(scene.SNR(p))
		}
	}
	fmt.Println("SNR field (dB), tag position over a 2 m × 2 m room:")
	if err := ascii.Heatmap(os.Stdout, labels, labels, cells, "%.0f"); err != nil {
		fail(err)
	}

	// Fig. 4(c): the line sweep with nulls marked.
	line := scene.LineSweep(field.Vec2{X: 0.02, Y: 0.5}, field.Vec2{X: 2, Y: 0.5}, 2000, false)
	fmt.Println()
	if err := ascii.LineChart(os.Stdout, line, 64, 12, "SNR along Y=0.5 (dB vs m)"); err != nil {
		fail(err)
	}
	nulls := field.Nulls(line, 0)
	fmt.Printf("\n%d nulls below 0 dB along the line:", len(nulls))
	for _, x := range nulls {
		fmt.Printf(" %.2f m", x)
	}
	fmt.Println()

	// Fig. 6: diversity on/off over the 0.3–2 m sweep, overlaid.
	start := field.Vec2{X: 1.0, Y: 0.8}
	end := field.Vec2{X: 1.0, Y: 2.5}
	without := scene.LineSweep(start, end, 3000, false)
	with := scene.LineSweep(start, end, 3000, true)
	fmt.Println()
	err := ascii.MultiChart(os.Stdout,
		[]string{"without diversity", "with λ/8 diversity"},
		[]stats.Series{without, with}, 64, 12,
		"Fig. 6: SNR (dB) vs distance along the sweep (m)")
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nworst case without diversity: %.1f dB\n", field.WorstCase(without))
	fmt.Printf("worst case with diversity:    %.1f dB\n", field.WorstCase(with))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "braidio-field: %v\n", err)
	os.Exit(1)
}
