// Command braidio-link characterizes the three Braidio links: BER vs
// distance per mode and bitrate, operational ranges, and the regime
// boundaries of Fig. 8.
//
// Usage:
//
//	braidio-link                 # range table + regime boundaries
//	braidio-link -curves         # also print the BER curves
//	braidio-link -fade 6         # add a 6 dB fade margin
//	braidio-link -arq            # ARQ loss accounting in the cost table
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"braidio"
	"braidio/internal/ascii"
	"braidio/internal/phy"
	"braidio/internal/stats"
	"braidio/internal/units"
)

func main() {
	curves := flag.Bool("curves", false, "print ASCII BER curves")
	fade := flag.Float64("fade", 0, "fade margin in dB")
	arq := flag.Bool("arq", false, "use ARQ (frame retransmission) loss accounting")
	flag.Parse()

	model := braidio.NewModel()
	model.FadeMargin = units.DB(*fade)
	model.Retransmit = *arq

	fmt.Println("Operational ranges (BER < 1%):")
	rows := [][]string{}
	for _, mode := range phy.Modes {
		rates := phy.Rates[:]
		if mode == phy.ModeActive {
			rates = []units.BitRate{units.Rate1M}
		}
		for _, rate := range rates {
			rows = append(rows, []string{
				mode.String(), rate.String(),
				fmt.Sprintf("%.2f m", float64(model.Range(mode, rate))),
			})
		}
	}
	ascii.Table(os.Stdout, []string{"Mode", "Rate", "Range"}, rows)

	fmt.Println("\nRegime boundaries:")
	prev := model.Regime(0.1)
	fmt.Printf("%8.2f m  %v\n", 0.1, prev)
	for d := 0.1; d <= 8.0; d += 0.01 {
		if r := model.Regime(units.Meter(d)); r != prev {
			fmt.Printf("%8.2f m  %v\n", d, r)
			prev = r
		}
	}

	fmt.Println("\nPer-bit costs by distance:")
	rows = rows[:0]
	for _, d := range []units.Meter{0.3, 0.95, 1.85, 2.45, 4.0, 5.2} {
		for _, l := range model.Characterize(d) {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f m", float64(d)),
				l.Mode.String(), l.Rate.String(),
				fmt.Sprintf("%.3g nJ", float64(l.T)*1e9),
				fmt.Sprintf("%.3g nJ", float64(l.R)*1e9),
			})
		}
	}
	ascii.Table(os.Stdout, []string{"Distance", "Mode", "Rate", "TX/bit", "RX/bit"}, rows)

	if *curves {
		for _, mode := range []phy.Mode{phy.ModeBackscatter, phy.ModePassive} {
			for _, rate := range phy.Rates {
				var s stats.Series
				for d := 0.1; d <= 6; d += 0.05 {
					ber := model.BER(mode, rate, units.Meter(d))
					if ber < 1e-6 {
						ber = 1e-6
					}
					s = append(s, stats.Point{X: d, Y: logb(ber)})
				}
				fmt.Println()
				title := fmt.Sprintf("%v @ %v: log10(BER) vs distance (m)", mode, rate)
				if err := ascii.LineChart(os.Stdout, s, 64, 10, title); err != nil {
					fmt.Fprintf(os.Stderr, "braidio-link: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}
}

func logb(x float64) float64 { return math.Log10(x) }
