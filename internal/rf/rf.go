// Package rf implements the radio-frequency propagation and link-budget
// models underlying the Braidio simulator: free-space (Friis) and
// log-distance path loss, thermal noise, and the one-way and round-trip
// (backscatter) budgets that determine each mode's SNR at a given
// distance.
//
// Braidio operates in the 915 MHz UHF license-free band (the SAW filter in
// the prototype is an SF2049E centred there); all defaults assume that
// band but every quantity is parameterized.
package rf

import (
	"fmt"
	"math"

	"braidio/internal/units"
)

// DefaultFrequency is Braidio's operating band centre.
const DefaultFrequency = 915 * units.Megahertz

// BoltzmannConstant in J/K.
const BoltzmannConstant = 1.380649e-23

// RoomTemperature in kelvin, used for thermal noise floors.
const RoomTemperature = 290.0

// FreeSpacePathLoss returns the Friis free-space path loss in dB at
// distance d and frequency f: 20·log10(4πd/λ). It panics for
// non-positive d (the far-field model has no meaning there).
func FreeSpacePathLoss(d units.Meter, f units.Hertz) units.DB {
	if d <= 0 {
		panic(fmt.Sprintf("rf: non-positive distance %v", float64(d)))
	}
	lambda := float64(f.Wavelength())
	return units.DB(20 * math.Log10(4*math.Pi*float64(d)/lambda))
}

// LogDistance models path loss with an arbitrary exponent n relative to a
// reference distance d0 with loss PL0:
//
//	PL(d) = PL0 + 10·n·log10(d/d0)
//
// Indoor environments typically have n between 2.5 and 4; free space has
// n = 2. Used for sensitivity analyses beyond the paper's empty-room
// setting.
type LogDistance struct {
	// D0 is the reference distance (must be positive).
	D0 units.Meter
	// PL0 is the loss at D0.
	PL0 units.DB
	// N is the path-loss exponent.
	N float64
}

// Loss returns the path loss at distance d. It panics for non-positive d.
func (m LogDistance) Loss(d units.Meter) units.DB {
	if d <= 0 {
		panic(fmt.Sprintf("rf: non-positive distance %v", float64(d)))
	}
	return m.PL0 + units.DB(10*m.N*math.Log10(float64(d/m.D0)))
}

// FreeSpaceLogDistance returns the LogDistance model equivalent to free
// space at frequency f (exponent 2, referenced at 1 m).
func FreeSpaceLogDistance(f units.Hertz) LogDistance {
	return LogDistance{D0: 1, PL0: FreeSpacePathLoss(1, f), N: 2}
}

// NoiseFloor returns the thermal noise power in dBm over the given
// bandwidth, with the given receiver noise figure: kTB plus NF.
func NoiseFloor(bandwidth units.Hertz, noiseFigure units.DB) units.DBm {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("rf: non-positive bandwidth %v", float64(bandwidth)))
	}
	kTB := units.Watt(BoltzmannConstant * RoomTemperature * float64(bandwidth))
	return kTB.DBm().Add(units.DB(noiseFigure))
}

// Antenna describes one antenna of a link.
type Antenna struct {
	// Gain is the antenna gain in dBi. The paper's 12 mm chip antennas
	// (ANT1204LL05R) are small and lossy; around −2 dBi is typical.
	Gain units.DB
}

// ChipAntenna is the default small chip antenna used on the Braidio board.
var ChipAntenna = Antenna{Gain: -2}

// ReaderAntenna is the larger antenna assumed on the AS3993 baseline
// reader board.
var ReaderAntenna = Antenna{Gain: 2}

// Link describes a one-way radio link at a carrier frequency.
type Link struct {
	Frequency units.Hertz
	TXAntenna Antenna
	RXAntenna Antenna
	// Model is the path-loss model; zero value means free space at
	// Frequency.
	Model LogDistance
	// ExtraLoss lumps implementation losses (matching, cable, switch
	// insertion loss).
	ExtraLoss units.DB
}

// NewLink returns a free-space link between two chip antennas at the
// default frequency.
func NewLink() Link {
	return Link{
		Frequency: DefaultFrequency,
		TXAntenna: ChipAntenna,
		RXAntenna: ChipAntenna,
		Model:     FreeSpaceLogDistance(DefaultFrequency),
	}
}

// Received returns the one-way received power at distance d for transmit
// power tx.
func (l Link) Received(tx units.DBm, d units.Meter) units.DBm {
	model := l.Model
	if model.D0 == 0 {
		model = FreeSpaceLogDistance(l.frequencyOrDefault())
	}
	return tx.
		Add(l.TXAntenna.Gain).
		Add(l.RXAntenna.Gain).
		Sub(model.Loss(d)).
		Sub(l.ExtraLoss)
}

func (l Link) frequencyOrDefault() units.Hertz {
	if l.Frequency == 0 {
		return DefaultFrequency
	}
	return l.Frequency
}

// BackscatterLink is the round-trip budget of a backscatter channel: the
// carrier travels from the carrier source to the tag, is modulated and
// re-radiated with a reflection loss, and travels back to the receiver.
// When (as on the Braidio board in backscatter mode) carrier source and
// receiver are co-located, both hops cover the same distance and the
// effective path-loss slope doubles to 40·log10(d).
type BackscatterLink struct {
	// Forward is the carrier-source→tag hop.
	Forward Link
	// Reverse is the tag→receiver hop.
	Reverse Link
	// ReflectionLoss is the tag's modulation/backscatter loss: the
	// fraction of incident power re-radiated in the modulated sidebands.
	// Around 5–8 dB for an ASK-modulated RF transistor switch.
	ReflectionLoss units.DB
}

// NewBackscatterLink returns a backscatter budget with free-space hops
// between chip antennas and the default reflection loss of 6 dB.
func NewBackscatterLink() BackscatterLink {
	return BackscatterLink{
		Forward:        NewLink(),
		Reverse:        NewLink(),
		ReflectionLoss: 6,
	}
}

// Received returns the backscattered signal power at the receiver when the
// carrier source emits carrier dBm, the tag sits at distance dForward from
// the source and dReverse from the receiver.
func (b BackscatterLink) Received(carrier units.DBm, dForward, dReverse units.Meter) units.DBm {
	atTag := b.Forward.Received(carrier, dForward)
	return b.Reverse.Received(atTag.Sub(b.ReflectionLoss), dReverse)
}

// ReceivedMonostatic returns the backscattered power when carrier source
// and receiver are co-located at distance d from the tag — Braidio's
// backscatter mode, where the data receiver also generates the carrier.
func (b BackscatterLink) ReceivedMonostatic(carrier units.DBm, d units.Meter) units.DBm {
	return b.Received(carrier, d, d)
}

// SNR returns the signal-to-noise ratio given a received power and a noise
// floor.
func SNR(rx, noise units.DBm) units.DB { return units.DB(rx - noise) }

// SINR returns the signal-to-(noise+interference) ratio given a received
// power, a noise floor, and the total co-channel interference power at
// the receiver in linear milliwatts. The powers sum in the linear domain:
//
//	SINR = rx − 10·log10(10^(noise/10) + I_mW)
//
// Zero (or negative, or NaN) interference takes the SNR path unchanged —
// gated, not recomputed, so the interference-free result is bit-identical
// to SNR and downstream golden tests survive the plumbing. Any positive
// interference strictly raises the floor, so SINR < SNR whenever an
// interferer is present and SINR ≤ SNR always.
func SINR(rx, noise units.DBm, interferenceMW float64) units.DB {
	if !(interferenceMW > 0) {
		return SNR(rx, noise)
	}
	floorMW := math.Pow(10, float64(noise)/10) + interferenceMW
	return units.DB(float64(rx) - 10*math.Log10(floorMW))
}

// RangeForSensitivity inverts a link budget: the maximum distance at which
// the received power still meets the given sensitivity. The slope of the
// model determines the algebra; this uses bisection so it works for any
// monotone model, including round-trip budgets. lo and hi bracket the
// search (hi must be beyond the range).
func RangeForSensitivity(rx func(units.Meter) units.DBm, sensitivity units.DBm, lo, hi units.Meter) (units.Meter, bool) {
	if lo <= 0 || hi <= lo {
		panic("rf: invalid range bracket")
	}
	if rx(lo) < sensitivity {
		return 0, false // already below sensitivity at the near edge
	}
	if rx(hi) >= sensitivity {
		return hi, false // range exceeds the bracket
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if rx(mid) >= sensitivity {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// TwoRay is the two-ray ground-reflection model: free-space falloff up
// to the crossover distance d_c = 4π·h_t·h_r/λ, then the steeper
// 40·log10(d) ground-bounce regime. With Braidio's table-top antenna
// heights the crossover sits beyond the operating ranges, which is why
// the paper's free-space characterization holds indoors at short range —
// this model quantifies where that stops being true.
type TwoRay struct {
	// Frequency of the carrier.
	Frequency units.Hertz
	// HeightTX and HeightRX are the antenna heights above ground, in
	// meters.
	HeightTX, HeightRX float64
}

// Crossover returns the distance where the model transitions from
// free-space to fourth-power falloff.
func (m TwoRay) Crossover() units.Meter {
	if m.HeightTX <= 0 || m.HeightRX <= 0 {
		panic("rf: two-ray model needs positive antenna heights")
	}
	f := m.Frequency
	if f == 0 {
		f = DefaultFrequency
	}
	lambda := float64(f.Wavelength())
	return units.Meter(4 * math.Pi * m.HeightTX * m.HeightRX / lambda)
}

// Loss returns the two-ray path loss at distance d.
func (m TwoRay) Loss(d units.Meter) units.DB {
	if d <= 0 {
		panic(fmt.Sprintf("rf: non-positive distance %v", float64(d)))
	}
	f := m.Frequency
	if f == 0 {
		f = DefaultFrequency
	}
	dc := m.Crossover()
	if d <= dc {
		return FreeSpacePathLoss(d, f)
	}
	// Beyond crossover: PL = 40·log10(d) − 20·log10(h_t·h_r),
	// continuous with free space at d_c.
	return FreeSpacePathLoss(dc, f) + units.DB(40*math.Log10(float64(d/dc)))
}
