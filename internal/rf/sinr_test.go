package rf

import (
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/units"
)

func TestSINRZeroInterferenceBitIdenticalToSNR(t *testing.T) {
	// The zero-interference path must be gated, not recomputed: the
	// result is the *same bits* as SNR, for any inputs. Golden tests all
	// over the repo depend on the interference plumbing being invisible
	// when off.
	f := func(rx, noise float64) bool {
		a := SNR(units.DBm(rx), units.DBm(noise))
		b := SINR(units.DBm(rx), units.DBm(noise), 0)
		return math.Float64bits(float64(a)) == math.Float64bits(float64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Negative and NaN interference also take the clean path — a
	// poisoned aggregate must never corrupt the ratio.
	for _, i := range []float64{-1, math.Inf(-1), math.NaN()} {
		a := SNR(-40, -90)
		b := SINR(-40, -90, i)
		if math.Float64bits(float64(a)) != math.Float64bits(float64(b)) {
			t.Errorf("SINR(-40,-90,%v) = %v, want SNR path %v", i, b, a)
		}
	}
}

func TestSINRBelowSNR(t *testing.T) {
	// Any positive interference strictly raises the floor: SINR < SNR.
	for _, i := range []float64{1e-12, 1e-9, 1e-6, 1e-3, 1} {
		snr := SNR(-40, -90)
		sinr := SINR(-40, -90, i)
		if !(sinr < snr) {
			t.Errorf("SINR(i=%v) = %v, want < SNR %v", i, sinr, snr)
		}
	}
	// Monotone: more interference, lower ratio.
	prev := SINR(-40, -90, 1e-12)
	for _, i := range []float64{1e-9, 1e-6, 1e-3} {
		cur := SINR(-40, -90, i)
		if !(cur < prev) {
			t.Errorf("SINR not monotone decreasing at i=%v: %v !< %v", i, cur, prev)
		}
		prev = cur
	}
}

func TestSINRKnownValue(t *testing.T) {
	// Interference equal to the noise power doubles the floor: the ratio
	// drops by exactly 10·log10(2) ≈ 3.0103 dB.
	noise := units.DBm(-90)
	noiseMW := math.Pow(10, float64(noise)/10)
	drop := float64(SNR(-40, noise)) - float64(SINR(-40, noise, noiseMW))
	if !approx(drop, 10*math.Log10(2), 1e-9) {
		t.Errorf("I=N dropped the ratio by %v dB, want 3.0103", drop)
	}
	// Interference far above the noise floor makes it the floor: SINR ≈
	// rx − 10·log10(I).
	sinr := SINR(-40, noise, 1e-3)
	if !approx(float64(sinr), -40-10*math.Log10(1e-3), 1e-4) {
		t.Errorf("interference-limited SINR = %v, want ≈ −10", sinr)
	}
}
