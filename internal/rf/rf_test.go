package rf

import (
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/units"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFreeSpacePathLossKnownValues(t *testing.T) {
	// 915 MHz at 1 m: 20·log10(4π/0.32764) ≈ 31.67 dB.
	got := FreeSpacePathLoss(1, DefaultFrequency)
	if !approx(float64(got), 31.67, 0.05) {
		t.Errorf("FSPL(1 m, 915 MHz) = %v, want ≈31.67", got)
	}
	// Doubling distance adds 6.02 dB.
	d2 := FreeSpacePathLoss(2, DefaultFrequency)
	if !approx(float64(d2-got), 6.02, 0.01) {
		t.Errorf("doubling distance added %v dB, want 6.02", d2-got)
	}
	// 2.4 GHz at 1 m ≈ 40.05 dB.
	if got := FreeSpacePathLoss(1, 2400*units.Megahertz); !approx(float64(got), 40.05, 0.05) {
		t.Errorf("FSPL(1 m, 2.4 GHz) = %v, want ≈40.05", got)
	}
}

func TestFreeSpaceSlopeProperty(t *testing.T) {
	f := func(raw uint16) bool {
		d := 0.1 + float64(raw)/100 // 0.1 .. ~655 m
		a := FreeSpacePathLoss(units.Meter(d), DefaultFrequency)
		b := FreeSpacePathLoss(units.Meter(10*d), DefaultFrequency)
		return approx(float64(b-a), 20, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreeSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FSPL(0) did not panic")
		}
	}()
	FreeSpacePathLoss(0, DefaultFrequency)
}

func TestLogDistanceMatchesFreeSpace(t *testing.T) {
	m := FreeSpaceLogDistance(DefaultFrequency)
	for _, d := range []units.Meter{0.3, 1, 2.5, 6} {
		want := FreeSpacePathLoss(d, DefaultFrequency)
		if got := m.Loss(d); !approx(float64(got), float64(want), 1e-9) {
			t.Errorf("LogDistance(%v) = %v, want %v", d, got, want)
		}
	}
}

func TestLogDistanceExponent(t *testing.T) {
	m := LogDistance{D0: 1, PL0: 40, N: 4}
	if got := m.Loss(10) - m.Loss(1); !approx(float64(got), 40, 1e-9) {
		t.Errorf("n=4 decade slope = %v dB, want 40", got)
	}
}

func TestNoiseFloor(t *testing.T) {
	// kTB at 290 K, 1 MHz = -113.98 dBm; +10 dB NF ≈ -103.98 dBm.
	got := NoiseFloor(1*units.Megahertz, 10)
	if !approx(float64(got), -103.98, 0.05) {
		t.Errorf("NoiseFloor(1 MHz, NF 10) = %v, want ≈ -103.98", got)
	}
	// Narrower bandwidth is quieter: 10 kHz is 20 dB below 1 MHz.
	nb := NoiseFloor(10*units.Kilohertz, 10)
	if !approx(float64(got-nb), 20, 0.01) {
		t.Errorf("bandwidth scaling = %v dB, want 20", got-nb)
	}
}

func TestLinkReceived(t *testing.T) {
	l := NewLink()
	// 13 dBm TX, two -2 dBi antennas, FSPL(1 m) = 31.67:
	// rx = 13 - 2 - 2 - 31.67 = -22.67 dBm.
	got := l.Received(13, 1)
	if !approx(float64(got), -22.67, 0.05) {
		t.Errorf("Received = %v, want ≈ -22.67", got)
	}
}

func TestLinkZeroModelDefaultsToFreeSpace(t *testing.T) {
	l := Link{Frequency: DefaultFrequency, TXAntenna: ChipAntenna, RXAntenna: ChipAntenna}
	want := NewLink().Received(13, 2)
	if got := l.Received(13, 2); !approx(float64(got), float64(want), 1e-9) {
		t.Errorf("zero-model link = %v, want %v", got, want)
	}
}

func TestLinkMonotoneDecreasing(t *testing.T) {
	l := NewLink()
	f := func(raw uint16) bool {
		d := 0.1 + float64(raw%5000)/100
		return l.Received(13, units.Meter(d)) > l.Received(13, units.Meter(d+0.5))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBackscatterRoundTripSlope(t *testing.T) {
	b := NewBackscatterLink()
	// Monostatic: doubling distance costs 12 dB (two 6 dB hops).
	p1 := b.ReceivedMonostatic(13, 1)
	p2 := b.ReceivedMonostatic(13, 2)
	if !approx(float64(p1-p2), 12.04, 0.05) {
		t.Errorf("round-trip doubling cost = %v dB, want ≈12", p1-p2)
	}
}

func TestBackscatterWeakerThanOneWay(t *testing.T) {
	b := NewBackscatterLink()
	l := NewLink()
	for _, d := range []units.Meter{0.3, 1, 2} {
		if b.ReceivedMonostatic(13, d) >= l.Received(13, d) {
			t.Errorf("backscatter at %v m not weaker than one-way", d)
		}
	}
}

func TestBackscatterBistatic(t *testing.T) {
	b := NewBackscatterLink()
	// Symmetric bistatic equals monostatic at the same distance.
	if got, want := b.Received(13, 1.5, 1.5), b.ReceivedMonostatic(13, 1.5); got != want {
		t.Errorf("bistatic(1.5,1.5) = %v, monostatic = %v", got, want)
	}
}

func TestSNR(t *testing.T) {
	if got := SNR(-60, -90); got != 30 {
		t.Errorf("SNR = %v, want 30", got)
	}
}

func TestRangeForSensitivity(t *testing.T) {
	l := NewLink()
	rx := func(d units.Meter) units.DBm { return l.Received(13, d) }
	// Find where the one-way link drops to -60 dBm, then verify.
	d, ok := RangeForSensitivity(rx, -60, 0.01, 1000)
	if !ok {
		t.Fatal("no crossing found")
	}
	if got := rx(d); !approx(float64(got), -60, 0.01) {
		t.Errorf("rx at found range = %v, want -60", got)
	}
	// Analytically: 13 - 4 - 31.67 - 20log10(d) = -60 → d ≈ 10^(37.33/20) ≈ 73.6 m.
	if !approx(float64(d), 73.6, 1.5) {
		t.Errorf("range = %v m, want ≈73.6", d)
	}
}

func TestRangeForSensitivityEdges(t *testing.T) {
	l := NewLink()
	rx := func(d units.Meter) units.DBm { return l.Received(13, d) }
	if _, ok := RangeForSensitivity(rx, 100, 0.01, 1000); ok {
		t.Error("impossible sensitivity should report no range")
	}
	if _, ok := RangeForSensitivity(rx, -300, 0.01, 10); ok {
		t.Error("range beyond bracket should report not-ok")
	}
}

func TestRangeBracketPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid bracket did not panic")
		}
	}()
	RangeForSensitivity(func(units.Meter) units.DBm { return 0 }, 0, 1, 1)
}

func TestTwoRayCrossover(t *testing.T) {
	// Table-top antennas at 1 m: d_c = 4π·1·1/0.3276 ≈ 38.4 m — far
	// beyond every Braidio operating range, validating the free-space
	// characterization indoors.
	m := TwoRay{HeightTX: 1, HeightRX: 1}
	dc := m.Crossover()
	if math.Abs(float64(dc)-38.35) > 0.5 {
		t.Errorf("crossover = %v m, want ≈38.4", dc)
	}
	if dc < 6 {
		t.Error("crossover inside the paper's 6 m arena — free-space assumption would break")
	}
}

func TestTwoRayPiecewise(t *testing.T) {
	m := TwoRay{HeightTX: 1, HeightRX: 1}
	dc := m.Crossover()
	// Inside the crossover: identical to free space.
	if got, want := m.Loss(dc/2), FreeSpacePathLoss(dc/2, DefaultFrequency); got != want {
		t.Errorf("near-field loss = %v, want free space %v", got, want)
	}
	// Continuous at the knee.
	a := m.Loss(dc * 0.999)
	b := m.Loss(dc * 1.001)
	if math.Abs(float64(b-a)) > 0.1 {
		t.Errorf("discontinuity at crossover: %v vs %v", a, b)
	}
	// Beyond: 12 dB per doubling (fourth power).
	far := m.Loss(4 * dc)
	farther := m.Loss(8 * dc)
	if got := float64(farther - far); math.Abs(got-12.04) > 0.1 {
		t.Errorf("far-regime doubling cost = %v dB, want ≈12", got)
	}
}

func TestTwoRayValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero heights": func() { TwoRay{}.Crossover() },
		"zero d":       func() { TwoRay{HeightTX: 1, HeightRX: 1}.Loss(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
