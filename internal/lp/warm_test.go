package lp

import (
	"math"
	"testing"
)

// bitsEqual reports exact bit equality of two float slices.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// xorshift is the deterministic generator the randomized corpora use.
type xorshift uint64

func (s *xorshift) next() float64 { // uniform in [0, 1)
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return float64(x>>11) / (1 << 53)
}

// eq1Instance builds one Eq. (1)-shaped problem the way core.SolveEq1
// does: minimize Σ p_i (T_i + R_i) over Σ p_i = 1 and the
// power-proportionality row Σ p_i (T_i − ratio·R_i) = 0, both the
// objective and the proportionality row normalized by their largest
// magnitude. Costs span decades (active radio vs backscatter), so the
// raw rows are near-degenerate mixed-scale — exactly the regime the
// solver's scaling and drive-out hardening exist for.
func eq1Instance(T, R []float64, ratio float64, scale bool) *Problem {
	n := len(T)
	c := make([]float64, n)
	aRow := make([]float64, n)
	ones := make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = T[i] + R[i]
		aRow[i] = T[i] - ratio*R[i]
		ones[i] = 1
	}
	norm := func(row []float64) {
		maxAbs := 0.0
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs > 0 {
			for i := range row {
				row[i] /= maxAbs
			}
		}
	}
	if scale {
		norm(aRow)
		norm(c)
	}
	return &Problem{C: c, A: [][]float64{ones, aRow}, B: []float64{1, 0}}
}

// TestSolveWarmDifferentialEq1 is the warm-start differential contract
// on 500 randomized Eq. (1) instances: per instance, a drifting battery
// ratio produces a chain of related problems; each is solved cold and
// warm (seeded with the previous problem's basis), and the two must
// agree bit for bit — X, objective, and basis — whether the warm
// attempt succeeded or fell back. Half the corpus skips the row
// normalization, leaving raw per-bit costs (1e-9..1e-3 J/bit) so the
// proportionality row sits near the pivot tolerance.
func TestSolveWarmDifferentialEq1(t *testing.T) {
	warmHits, coldFalls := 0, 0
	for trial := 0; trial < 500; trial++ {
		rng := xorshift(uint64(trial)*0x9e3779b97f4a7c15 + 1)
		n := 2 + int(rng.next()*2) // 2–3 modes
		T := make([]float64, n)
		R := make([]float64, n)
		for i := 0; i < n; i++ {
			// Log-uniform per-bit costs over six decades.
			T[i] = math.Pow(10, -9+6*rng.next())
			R[i] = math.Pow(10, -9+6*rng.next())
		}
		scale := trial%2 == 0
		ratio := math.Pow(10, -3+6*rng.next())
		var prevBasis []int
		for step := 0; step < 4; step++ {
			p := eq1Instance(T, R, ratio, scale)
			want, wantErr := Solve(p)
			got, warm, gotErr := SolveWarm(p, prevBasis)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d step %d: cold err %v, warm-path err %v", trial, step, wantErr, gotErr)
			}
			if wantErr != nil {
				prevBasis = nil
				ratio *= math.Pow(10, 0.5*(rng.next()-0.5))
				continue
			}
			if warm {
				warmHits++
			} else if prevBasis != nil {
				coldFalls++
			}
			if !bitsEqual(got.X, want.X) {
				t.Fatalf("trial %d step %d (warm=%v): X=%v, cold X=%v", trial, step, warm, got.X, want.X)
			}
			if math.Float64bits(got.Objective) != math.Float64bits(want.Objective) {
				t.Fatalf("trial %d step %d (warm=%v): obj=%v, cold obj=%v", trial, step, warm, got.Objective, want.Objective)
			}
			prevBasis = got.Basis
			// Drift the ratio a fraction of a decade — the serve/hub
			// regime where consecutive solves stay structurally close.
			ratio *= math.Pow(10, 0.5*(rng.next()-0.5))
		}
	}
	if warmHits == 0 {
		t.Fatal("corpus never exercised the warm path")
	}
	t.Logf("warm starts: %d, cold fallbacks after drift: %d", warmHits, coldFalls)
}

// TestSolveWarmSelfBasis re-solves a problem from its own final basis:
// the warm path must succeed and reproduce the cold solution bit for
// bit (shared canonical extraction).
func TestSolveWarmSelfBasis(t *testing.T) {
	p := eq1Instance(
		[]float64{2.4e-7, 8.6e-8, 1.3e-9},
		[]float64{2.5e-7, 1.1e-9, 3.0e-7},
		3.7, true)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, warm, err := SolveWarm(p, want.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("self-basis warm start fell back cold")
	}
	if !bitsEqual(got.X, want.X) || got.Objective != want.Objective {
		t.Fatalf("warm=%v obj=%v, cold=%v obj=%v", got.X, got.Objective, want.X, want.Objective)
	}
}

// TestSolveWarmStaleBasisFallback feeds SolveWarm structurally invalid
// and numerically stale bases: every case must fall back to the cold
// path cleanly (warm=false) and return the cold answer bit for bit.
func TestSolveWarmStaleBasisFallback(t *testing.T) {
	p := eq1Instance(
		[]float64{1.0e-6, 2.0e-7, 5.0e-9},
		[]float64{1.1e-6, 4.0e-9, 6.0e-7},
		1.0, true)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]int{
		"nil":             nil,
		"short":           {0},
		"long":            {0, 1, 2},
		"duplicate":       {1, 1},
		"out of range":    {0, 7},
		"negative marker": {0, -1},
	}
	for name, basis := range cases {
		got, warm, err := SolveWarm(p, basis)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if warm {
			t.Errorf("%s: reported warm for an unusable basis", name)
		}
		if !bitsEqual(got.X, want.X) || got.Objective != want.Objective {
			t.Errorf("%s: fallback diverged from cold solve", name)
		}
	}

	// A basis that is valid structurally but primal infeasible for the
	// new right-hand side: x0 basic in row 0 of {x0 - x1 = b}. With
	// b = (1, …) the basis is feasible; flip the sign and the
	// canonicalized b goes negative, forcing the cold fallback.
	p2 := &Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, -1}},
		B: []float64{-1},
	}
	want2, err := Solve(p2)
	if err != nil {
		t.Fatal(err)
	}
	got2, warm2, err := SolveWarm(p2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if warm2 {
		t.Error("primal-infeasible basis reported warm")
	}
	if !bitsEqual(got2.X, want2.X) {
		t.Errorf("infeasible-basis fallback X=%v, want %v", got2.X, want2.X)
	}

	// An infeasible problem stays infeasible through the warm path.
	bad := &Problem{C: []float64{1, 1}, A: [][]float64{{1, 1}, {1, 1}}, B: []float64{1, 2}}
	if _, _, err := SolveWarm(bad, []int{0, 1}); err != ErrInfeasible {
		t.Errorf("infeasible problem: err=%v, want ErrInfeasible", err)
	}
}

// TestSolveWarmRedundantRowsCorpus replays the redundant-row fuzz
// corpus through the warm path: problems whose cold basis carries the
// −1 redundant-row marker must be rejected by basis validation and fall
// back cold, bit-identically; the unaugmented base problems must
// warm-start from their own bases.
func TestSolveWarmRedundantRowsCorpus(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rng := xorshift(uint64(trial)*0x2545f4914f6cdd1d + 7)
		n := 2 + int(rng.next()*3) // 2–4 variables
		m := 1 + int(rng.next()*2) // 1–2 independent rows
		if m >= n {
			m = n - 1
		}
		xstar := make([]float64, n)
		for j := range xstar {
			if rng.next() < 0.3 {
				xstar[j] = 0
			} else {
				xstar[j] = rng.next() * 5
			}
		}
		base := &Problem{C: make([]float64, n)}
		for j := range base.C {
			base.C[j] = rng.next()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			bi := 0.0
			for j := range row {
				row[j] = 2*rng.next() - 1
				bi += row[j] * xstar[j]
			}
			base.A = append(base.A, row)
			base.B = append(base.B, bi)
		}
		baseSol, err := Solve(base)
		if err != nil {
			continue
		}
		warmBase, warm, err := SolveWarm(base, baseSol.Basis)
		if err != nil {
			t.Fatalf("trial %d: base warm solve: %v", trial, err)
		}
		if !bitsEqual(warmBase.X, baseSol.X) {
			t.Fatalf("trial %d: base warm X diverged (warm=%v)", trial, warm)
		}

		// Augment with a duplicate, a near-tolerance scaled copy, and the
		// row sum — the cold basis then contains a −1 marker, which the
		// warm path must refuse and route cold.
		aug := &Problem{C: base.C, A: append([][]float64{}, base.A...), B: append([]float64{}, base.B...)}
		addScaled := func(src int, scale float64) {
			row := make([]float64, n)
			for j := range row {
				row[j] = scale * base.A[src][j]
			}
			aug.A = append(aug.A, row)
			aug.B = append(aug.B, scale*base.B[src])
		}
		addScaled(0, 1)
		addScaled(0, 3e-9)
		sum := make([]float64, n)
		sb := 0.0
		for i := range base.A {
			for j := range sum {
				sum[j] += base.A[i][j]
			}
			sb += base.B[i]
		}
		aug.A = append(aug.A, sum)
		aug.B = append(aug.B, sb)

		augSol, err := Solve(aug)
		if err != nil {
			t.Fatalf("trial %d: augmented cold solve: %v", trial, err)
		}
		hasMarker := false
		for _, bi := range augSol.Basis {
			if bi < 0 {
				hasMarker = true
			}
		}
		got, warm, err := SolveWarm(aug, augSol.Basis)
		if err != nil {
			t.Fatalf("trial %d: augmented warm solve: %v", trial, err)
		}
		if hasMarker && warm {
			t.Fatalf("trial %d: redundant-row basis accepted warm", trial)
		}
		if !bitsEqual(got.X, augSol.X) || got.Objective != augSol.Objective {
			t.Fatalf("trial %d: augmented warm diverged from cold", trial)
		}
	}
}
