package lp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimpleEquality(t *testing.T) {
	// min x1 + 2 x2  s.t. x1 + x2 = 1  ⇒ x = (1, 0), obj 1.
	s := solveOK(t, &Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, 1}},
		B: []float64{1},
	})
	if math.Abs(s.X[0]-1) > 1e-9 || math.Abs(s.X[1]) > 1e-9 {
		t.Errorf("X = %v, want [1 0]", s.X)
	}
	if math.Abs(s.Objective-1) > 1e-9 {
		t.Errorf("obj = %v, want 1", s.Objective)
	}
}

func TestTwoConstraints(t *testing.T) {
	// min 2x + 3y + z
	// s.t. x + y + z = 10
	//      x - y     = 2
	// Optimum puts weight on the cheap variable z: x=2, y=0, z=8 ⇒ 12.
	s := solveOK(t, &Problem{
		C: []float64{2, 3, 1},
		A: [][]float64{{1, 1, 1}, {1, -1, 0}},
		B: []float64{10, 2},
	})
	want := []float64{2, 0, 8}
	for i := range want {
		if math.Abs(s.X[i]-want[i]) > 1e-8 {
			t.Fatalf("X = %v, want %v", s.X, want)
		}
	}
	if math.Abs(s.Objective-12) > 1e-8 {
		t.Errorf("obj = %v, want 12", s.Objective)
	}
}

func TestNegativeRHS(t *testing.T) {
	// x - y = -3, x + y = 5 ⇒ x=1, y=4.
	s := solveOK(t, &Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, -1}, {1, 1}},
		B: []float64{-3, 5},
	})
	if math.Abs(s.X[0]-1) > 1e-9 || math.Abs(s.X[1]-4) > 1e-9 {
		t.Errorf("X = %v, want [1 4]", s.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x + y = 1 and x + y = 2 cannot both hold.
	_, err := Solve(&Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {1, 1}},
		B: []float64{1, 2},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleNegativity(t *testing.T) {
	// x = -1 has no solution with x >= 0.
	_, err := Solve(&Problem{
		C: []float64{1},
		A: [][]float64{{1}},
		B: []float64{-1},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x - y s.t. x - y = 0: x = y → ∞ drives the objective down.
	_, err := Solve(&Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, -1}},
		B: []float64{0},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestRedundantRow(t *testing.T) {
	// Second row is 2x the first; solver must tolerate the redundancy.
	s := solveOK(t, &Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, 1}, {2, 2}},
		B: []float64{1, 2},
	})
	if math.Abs(s.X[0]+s.X[1]-1) > 1e-8 {
		t.Errorf("constraint violated: X = %v", s.X)
	}
	if math.Abs(s.Objective-1) > 1e-8 {
		t.Errorf("obj = %v, want 1", s.Objective)
	}
}

// TestNearDependentRowDriveOut pins a regression for the phase-1→2
// drive-out pivot: the third row is a rounded combination of the first
// two (0.7·row0 + row1), so after phase 1 an artificial variable stays
// basic in a row holding only cancellation residue. The residue in the
// badly scaled columns sits just above the pivot tolerance; pivoting on
// the *first* such column instead of the largest-magnitude one divides
// the row by noise and returns a solution violating the constraints by
// O(1). Found by differential fuzzing against the fixed solver.
func TestNearDependentRowDriveOut(t *testing.T) {
	p := &Problem{
		C: []float64{0.2, 0.2, 0.7},
		A: [][]float64{
			{0.0003333333333333333, 6.666666666666667e-05, -6.666666666666666e+06},
			{2e+07, 0.9, 0.0006666666666666666},
			{2.0000000000233334e+07, 0.9000466666666667, -4.666666665999999e+06},
		},
		B: []float64{6e-05, 0.81, 0.810042},
	}
	s := solveOK(t, p)
	for i, row := range p.A {
		dot := 0.0
		for j := range row {
			dot += row[j] * s.X[j]
		}
		if math.Abs(dot-p.B[i]) > 1e-6*math.Max(1, math.Abs(p.B[i])) {
			t.Errorf("row %d violated: Ax = %v, b = %v (X = %v)", i, dot, p.B[i], s.X)
		}
	}
	for j, x := range s.X {
		if x < -1e-9 {
			t.Errorf("x[%d] = %v negative", j, x)
		}
	}
}

// TestRedundantRowsProperty solves randomized feasible problems with
// linearly dependent rows appended — duplicates, scaled copies (down to
// near the pivot tolerance), and row sums. Redundant rows leave
// artificial variables basic at zero after phase 1, exercising the
// drive-out transition: its pivot must come from the largest-magnitude
// eligible column, or a near-eps pivot element scales the row by ~1/eps
// and corrupts phase 2.
func TestRedundantRowsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		s := seed | 1
		next := func() float64 { // xorshift64, uniform in [0, 1)
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			return float64(s>>11) / (1 << 53)
		}
		n := 2 + int(next()*3) // 2–4 variables
		m := 1 + int(next()*2) // 1–2 independent rows
		if m >= n {
			m = n - 1
		}
		// Feasible by construction: b = A·x* for a nonnegative x*.
		xstar := make([]float64, n)
		for j := range xstar {
			if next() < 0.3 {
				xstar[j] = 0 // degenerate vertices too
			} else {
				xstar[j] = next() * 5
			}
		}
		base := &Problem{C: make([]float64, n)}
		for j := range base.C {
			base.C[j] = next() // c ≥ 0 keeps the problem bounded
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			bi := 0.0
			for j := range row {
				row[j] = 2*next() - 1
				bi += row[j] * xstar[j]
			}
			base.A = append(base.A, row)
			base.B = append(base.B, bi)
		}
		want, err := Solve(base)
		if err != nil {
			return false
		}

		// Append dependent rows: an exact duplicate, a copy scaled down
		// near the pivot tolerance, and the sum of all base rows.
		aug := &Problem{C: base.C, A: append([][]float64{}, base.A...), B: append([]float64{}, base.B...)}
		addScaled := func(src int, scale float64) {
			row := make([]float64, n)
			for j := range row {
				row[j] = scale * base.A[src][j]
			}
			aug.A = append(aug.A, row)
			aug.B = append(aug.B, scale*base.B[src])
		}
		addScaled(0, 1)
		addScaled(0, 3e-9)
		sum := make([]float64, n)
		sb := 0.0
		for i := range base.A {
			for j := range sum {
				sum[j] += base.A[i][j]
			}
			sb += base.B[i]
		}
		aug.A = append(aug.A, sum)
		aug.B = append(aug.B, sb)

		got, err := Solve(aug)
		if err != nil {
			t.Logf("seed %d: augmented solve failed: %v", seed, err)
			return false
		}
		for j, x := range got.X {
			if x < -1e-9 {
				t.Logf("seed %d: x[%d] = %v negative", seed, j, x)
				return false
			}
		}
		for i, row := range aug.A {
			dot := 0.0
			for j := range row {
				dot += row[j] * got.X[j]
			}
			if math.Abs(dot-aug.B[i]) > 1e-6*math.Max(1, math.Abs(aug.B[i])) {
				t.Logf("seed %d: row %d violated: %v != %v", seed, i, dot, aug.B[i])
				return false
			}
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6*math.Max(1, math.Abs(want.Objective)) {
			t.Logf("seed %d: objective %v, want %v", seed, got.Objective, want.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDegenerate(t *testing.T) {
	// A degenerate vertex (b has a zero) must not cycle thanks to Bland's
	// rule.
	s := solveOK(t, &Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{{1, 1, 0}, {0, 1, 1}},
		B: []float64{1, 0},
	})
	if math.Abs(s.Objective-1) > 1e-8 {
		t.Errorf("obj = %v, want 1", s.Objective)
	}
}

func TestValidate(t *testing.T) {
	bad := []*Problem{
		{C: nil},
		{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}},
		{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestOffloadShape solves the exact structure used by the carrier offload
// algorithm (Eq. 1 of the paper) and checks the invariants the engine
// relies on: the fractions sum to one and the consumption ratio matches.
func TestOffloadShape(t *testing.T) {
	// Per-bit costs (J/bit): active, passive, backscatter at 1 Mbps,
	// matching the calibrated Braidio power table (92/87.6 mW active,
	// 127.3 mW / 50 µW passive, 36.4 µW / 129 mW backscatter).
	T := []float64{92e-9, 127.3e-9, 36.4e-12} // tx
	R := []float64{87.6e-9, 50e-12, 129e-9}   // rx
	ratio := 100.0                            // E1:E2 = 100:1
	// Constraint: sum p_i (T_i - ratio*R_i) = 0, sum p_i = 1.
	a := make([]float64, 3)
	c := make([]float64, 3)
	for i := range a {
		a[i] = T[i] - ratio*R[i]
		c[i] = T[i] + R[i]
	}
	s := solveOK(t, &Problem{
		C: c,
		A: [][]float64{{1, 1, 1}, a},
		B: []float64{1, 0},
	})
	sum := s.X[0] + s.X[1] + s.X[2]
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("fractions sum to %v", sum)
	}
	var tx, rx float64
	for i := range s.X {
		tx += s.X[i] * T[i]
		rx += s.X[i] * R[i]
	}
	if math.Abs(tx/rx-ratio)/ratio > 1e-4 {
		t.Errorf("consumption ratio = %v, want %v", tx/rx, ratio)
	}
	// At 100:1 the optimum should mix passive and backscatter only
	// (line BC of Fig. 9), never active.
	if s.X[0] > 1e-9 {
		t.Errorf("active fraction = %v, want 0", s.X[0])
	}
}

// TestAgainstVertexEnumeration compares the simplex optimum with exact
// enumeration of the basic feasible solutions of random offload-shaped
// problems. With three variables and the two constraints Σp = 1 and
// Σ a·p = 0, every vertex has support of at most two variables, so the
// optimum is computable in closed form.
func TestAgainstVertexEnumeration(t *testing.T) {
	f := func(seedT1, seedT2, seedT3, seedR1, seedR2, seedR3, seedRatio uint8) bool {
		T := []float64{1 + float64(seedT1), 1 + float64(seedT2), 1 + float64(seedT3)}
		R := []float64{1 + float64(seedR1), 1 + float64(seedR2), 1 + float64(seedR3)}
		ratio := 0.1 + float64(seedRatio)/16
		a := make([]float64, 3)
		c := make([]float64, 3)
		for i := range a {
			a[i] = T[i] - ratio*R[i]
			c[i] = T[i] + R[i]
		}
		best := math.Inf(1)
		// Single-variable supports: p_i = 1 needs a_i = 0.
		for i := 0; i < 3; i++ {
			if math.Abs(a[i]) < 1e-12 && c[i] < best {
				best = c[i]
			}
		}
		// Two-variable supports {i, j}: p_i = a_j / (a_j - a_i).
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				den := a[j] - a[i]
				if math.Abs(den) < 1e-12 {
					continue
				}
				pi := a[j] / den
				pj := 1 - pi
				if pi < -1e-12 || pj < -1e-12 {
					continue
				}
				if obj := pi*c[i] + pj*c[j]; obj < best {
					best = obj
				}
			}
		}
		sol, err := Solve(&Problem{C: c, A: [][]float64{{1, 1, 1}, a}, B: []float64{1, 0}})
		if err != nil {
			return errors.Is(err, ErrInfeasible) && math.IsInf(best, 1)
		}
		if math.IsInf(best, 1) {
			return false // simplex found a solution the enumeration missed
		}
		return math.Abs(sol.Objective-best) <= 1e-6*math.Max(1, best)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveOffloadShape(b *testing.B) {
	p := &Problem{
		C: []float64{123e-9, 127.35e-9, 129.04e-9},
		A: [][]float64{{1, 1, 1}, {57e-9, 127.25e-9, -1.25e-9}},
		B: []float64{1, 0},
	}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
