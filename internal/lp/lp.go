// Package lp implements a small dense linear-program solver used by the
// carrier-offload engine to solve the mode-fraction program of Eq. (1) in
// the paper, and by tests to cross-check the closed-form solution.
//
// The solver handles problems in standard form:
//
//	minimize    cᵀx
//	subject to  A x = b,  x ≥ 0
//
// using two-phase primal simplex with Bland's rule (which guarantees
// termination). The offload problem has three variables and two equality
// constraints, so numerical performance is a non-issue; the implementation
// favors clarity and robustness over speed.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Problem is a linear program in standard equality form.
type Problem struct {
	// C is the cost vector (length n).
	C []float64
	// A is the constraint matrix (m rows of length n).
	A [][]float64
	// B is the right-hand side (length m). Entries may be negative; the
	// solver normalizes signs internally.
	B []float64
}

// Solution is the result of solving a Problem.
type Solution struct {
	// X is the optimal point (length n).
	X []float64
	// Objective is cᵀx at the optimum.
	Objective float64
	// Basis is the final simplex basis: for each constraint row, the
	// index of the variable basic in that row, or -1 for a redundant row
	// zeroed in phase 1. Feed it to SolveWarm to warm-start a related
	// problem (the same structure with drifted coefficients).
	Basis []int
}

// Errors returned by Solve.
var (
	// ErrInfeasible reports that no x ≥ 0 satisfies Ax = b.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
)

const eps = 1e-9

// Validate checks the problem dimensions.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty cost vector")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	return nil
}

// tableau is a simplex tableau with an explicit basis.
type tableau struct {
	a     [][]float64 // m x n constraint coefficients
	b     []float64   // m right-hand side
	c     []float64   // n reduced-ish cost vector (original costs)
	basis []int       // m basic variable indices
	m, n  int
}

// pivot performs a pivot bringing column col into the basis at row.
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	for j := 0; j < t.n; j++ {
		t.a[row][j] /= p
	}
	t.b[row] /= p
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// reducedCosts computes the simplex multipliers and the reduced cost of
// each column for the current basis, assuming the tableau rows have been
// kept in canonical form (basic columns are unit vectors).
func (t *tableau) reducedCosts() []float64 {
	r := make([]float64, t.n)
	copy(r, t.c)
	for i, bi := range t.basis {
		if bi < 0 {
			continue // redundant zeroed row
		}
		cb := t.c[bi]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			r[j] -= cb * t.a[i][j]
		}
	}
	return r
}

// iterate runs primal simplex with Bland's rule until optimal or
// unbounded.
func (t *tableau) iterate() error {
	for {
		r := t.reducedCosts()
		// Bland's rule: entering variable is the lowest-index column with
		// a negative reduced cost.
		col := -1
		for j := 0; j < t.n; j++ {
			if r[j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return nil // optimal
		}
		// Ratio test, again lowest index on ties (Bland).
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				ratio := t.b[i] / t.a[i][col]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row < 0 || t.basis[i] < t.basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		t.pivot(row, col)
	}
}

// Solve solves the linear program. It returns ErrInfeasible or
// ErrUnbounded when appropriate.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	m := len(p.B)

	// Phase 1: introduce one artificial variable per row and minimize
	// their sum. Normalize b ≥ 0 first.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, n+m)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			a[i][j] = sign * p.A[i][j]
		}
		a[i][n+i] = 1
		b[i] = sign * p.B[i]
	}
	c1 := make([]float64, n+m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		c1[n+i] = 1
		basis[i] = n + i
	}
	t := &tableau{a: a, b: b, c: c1, basis: basis, m: m, n: n + m}
	if err := t.iterate(); err != nil {
		// Phase 1 cannot be unbounded (costs are nonnegative), so any
		// error here is a genuine solver failure.
		return nil, err
	}
	phase1 := 0.0
	for i, bi := range t.basis {
		phase1 += t.c[bi] * t.b[i]
	}
	if phase1 > 1e-7 {
		return nil, ErrInfeasible
	}
	// Drive any artificial variables out of the basis (degenerate case).
	// Pivot on the largest-magnitude eligible column, not the first one
	// past the tolerance: a pivot element barely above eps divides the
	// whole row by a near-zero value, blowing its entries up by ~1/eps
	// and corrupting the well-scaled rows phase 2 then iterates on.
	for i := 0; i < m; i++ {
		if t.basis[i] >= n {
			col, colAbs := -1, eps
			for j := 0; j < n; j++ {
				if a := math.Abs(t.a[i][j]); a > colAbs {
					col, colAbs = j, a
				}
			}
			if col >= 0 {
				t.pivot(i, col)
			} else {
				// Redundant row: zero it so it cannot affect phase 2.
				for j := range t.a[i] {
					t.a[i][j] = 0
				}
				t.b[i] = 0
			}
		}
	}

	// Phase 2: drop the artificial columns (all non-basic now, except in
	// redundant zero rows marked inert above) and minimize the real
	// objective over the original variables.
	for i := range t.a {
		t.a[i] = t.a[i][:n]
	}
	t.n = n
	t.c = make([]float64, n)
	copy(t.c, p.C)
	for i, bi := range t.basis {
		if bi >= n {
			// Redundant zeroed row: mark it inert. The row is entirely
			// zero, so it never participates in pivots and contributes
			// nothing to the solution.
			t.basis[i] = -1
		}
	}
	if err := t.iterate(); err != nil {
		return nil, err
	}
	if sol, err := extract(p, t.basis); err == nil {
		return sol, nil
	}
	// Numerically singular basis (should not happen for a basis simplex
	// just pivoted through): fall back to the tableau's accumulated
	// values.
	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi >= 0 && bi < n && t.b[i] > eps {
			x[bi] = t.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{X: x, Objective: obj, Basis: append([]int(nil), t.basis...)}, nil
}

// extract reconstructs the solution a basis determines directly from the
// original problem data: it collects the basic columns (ascending) and
// the active rows (rows not zeroed as redundant, ascending), solves the
// square system A_B·x_B = b_B by Gaussian elimination with partial
// pivoting, and prices the objective off the original costs. The
// arithmetic depends only on (p, the basis *set*) — never on the pivot
// path that reached the basis — so a cold two-phase solve and a
// warm-started solve that finish in the same basis return bit-identical
// solutions. That is the keystone of the SolveWarm differential
// contract.
func extract(p *Problem, basis []int) (*Solution, error) {
	n := len(p.C)
	var rows, cols []int
	for i, bi := range basis {
		if bi < 0 {
			continue // redundant zeroed row
		}
		if bi >= n {
			return nil, errors.New("lp: artificial variable left in basis")
		}
		rows = append(rows, i)
		cols = append(cols, bi)
	}
	sort.Ints(cols)
	for i := 1; i < len(cols); i++ {
		if cols[i] == cols[i-1] {
			return nil, errors.New("lp: duplicate basic column")
		}
	}
	k := len(rows)
	// Augmented system [A_B | b] over the original data, rows and basic
	// columns both in ascending order.
	m := make([][]float64, k)
	for r, ri := range rows {
		m[r] = make([]float64, k+1)
		for c, cj := range cols {
			m[r][c] = p.A[ri][cj]
		}
		m[r][k] = p.B[ri]
	}
	// Gaussian elimination with partial pivoting.
	for c := 0; c < k; c++ {
		piv := c
		for r := c + 1; r < k; r++ {
			if math.Abs(m[r][c]) > math.Abs(m[piv][c]) {
				piv = r
			}
		}
		if math.Abs(m[piv][c]) <= 1e-300 {
			return nil, errors.New("lp: singular basis")
		}
		m[c], m[piv] = m[piv], m[c]
		for r := c + 1; r < k; r++ {
			f := m[r][c] / m[c][c]
			if f == 0 {
				continue
			}
			for j := c; j <= k; j++ {
				m[r][j] -= f * m[c][j]
			}
		}
	}
	x := make([]float64, n)
	for c := k - 1; c >= 0; c-- {
		v := m[c][k]
		for j := c + 1; j < k; j++ {
			v -= m[c][j] * x[cols[j]]
		}
		v /= m[c][c]
		if v > eps {
			x[cols[c]] = v
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{X: x, Objective: obj, Basis: append([]int(nil), basis...)}, nil
}

// validBasis reports whether a caller-supplied warm basis is structurally
// usable: one entry per row, every entry a distinct original variable.
// Bases carrying redundant-row markers (-1) are rejected — the warm path
// has no phase 1 to re-derive which rows are redundant for the *new*
// coefficients, so those problems take the cold path.
func validBasis(basis []int, m, n int) bool {
	if len(basis) != m || m > n {
		return false
	}
	for i, bi := range basis {
		if bi < 0 || bi >= n {
			return false
		}
		for j := 0; j < i; j++ {
			if basis[j] == bi {
				return false
			}
		}
	}
	return true
}

// SolveWarm solves the linear program starting from the final basis of a
// previous, related solve (Solution.Basis): it canonicalizes the basis
// against the new coefficients and runs phase 2 directly, skipping
// phase 1's artificial variables entirely. When the supplied basis is
// structurally invalid, numerically singular for the new A, or no longer
// primal feasible for the new b (the inputs drifted too far), SolveWarm
// falls back to a cold Solve — warm reports which path produced the
// solution, so callers can count warm starts against cold fallbacks.
//
// Warm and cold solves that finish in the same basis return bit-identical
// solutions: both extract the final answer from the original problem data
// and the basis set alone (see extract).
func SolveWarm(p *Problem, basis []int) (sol *Solution, warm bool, err error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	n := len(p.C)
	m := len(p.B)
	cold := func() (*Solution, bool, error) {
		s, err := Solve(p)
		return s, false, err
	}
	if !validBasis(basis, m, n) {
		return cold()
	}
	// Rebuild the tableau from the new coefficients and canonicalize the
	// basic columns into unit vectors row by row.
	t := &tableau{
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: append([]int(nil), basis...),
		m:     m,
		n:     n,
	}
	for i := range t.a {
		t.a[i] = append([]float64(nil), p.A[i]...)
		t.b[i] = p.B[i]
	}
	for i := 0; i < m; i++ {
		if math.Abs(t.a[i][t.basis[i]]) <= eps {
			return cold() // basis singular for the new coefficients
		}
		t.pivot(i, t.basis[i])
	}
	for i := 0; i < m; i++ {
		if t.b[i] < 0 {
			return cold() // basis no longer primal feasible
		}
	}
	t.c = append([]float64(nil), p.C...)
	if err := t.iterate(); err != nil {
		// A genuinely unbounded problem is unbounded from any feasible
		// start, so let the cold path deliver the verdict (or, for a
		// near-degenerate start, a clean answer).
		return cold()
	}
	s, err := extract(p, t.basis)
	if err != nil {
		return cold()
	}
	return s, true, nil
}
