// Package lp implements a small dense linear-program solver used by the
// carrier-offload engine to solve the mode-fraction program of Eq. (1) in
// the paper, and by tests to cross-check the closed-form solution.
//
// The solver handles problems in standard form:
//
//	minimize    cᵀx
//	subject to  A x = b,  x ≥ 0
//
// using two-phase primal simplex with Bland's rule (which guarantees
// termination). The offload problem has three variables and two equality
// constraints, so numerical performance is a non-issue; the implementation
// favors clarity and robustness over speed.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a linear program in standard equality form.
type Problem struct {
	// C is the cost vector (length n).
	C []float64
	// A is the constraint matrix (m rows of length n).
	A [][]float64
	// B is the right-hand side (length m). Entries may be negative; the
	// solver normalizes signs internally.
	B []float64
}

// Solution is the result of solving a Problem.
type Solution struct {
	// X is the optimal point (length n).
	X []float64
	// Objective is cᵀx at the optimum.
	Objective float64
}

// Errors returned by Solve.
var (
	// ErrInfeasible reports that no x ≥ 0 satisfies Ax = b.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded reports that the objective decreases without bound.
	ErrUnbounded = errors.New("lp: unbounded")
)

const eps = 1e-9

// Validate checks the problem dimensions.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return errors.New("lp: empty cost vector")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	return nil
}

// tableau is a simplex tableau with an explicit basis.
type tableau struct {
	a     [][]float64 // m x n constraint coefficients
	b     []float64   // m right-hand side
	c     []float64   // n reduced-ish cost vector (original costs)
	basis []int       // m basic variable indices
	m, n  int
}

// pivot performs a pivot bringing column col into the basis at row.
func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	for j := 0; j < t.n; j++ {
		t.a[row][j] /= p
	}
	t.b[row] /= p
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// reducedCosts computes the simplex multipliers and the reduced cost of
// each column for the current basis, assuming the tableau rows have been
// kept in canonical form (basic columns are unit vectors).
func (t *tableau) reducedCosts() []float64 {
	r := make([]float64, t.n)
	copy(r, t.c)
	for i, bi := range t.basis {
		if bi < 0 {
			continue // redundant zeroed row
		}
		cb := t.c[bi]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			r[j] -= cb * t.a[i][j]
		}
	}
	return r
}

// iterate runs primal simplex with Bland's rule until optimal or
// unbounded.
func (t *tableau) iterate() error {
	for {
		r := t.reducedCosts()
		// Bland's rule: entering variable is the lowest-index column with
		// a negative reduced cost.
		col := -1
		for j := 0; j < t.n; j++ {
			if r[j] < -eps {
				col = j
				break
			}
		}
		if col < 0 {
			return nil // optimal
		}
		// Ratio test, again lowest index on ties (Bland).
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				ratio := t.b[i] / t.a[i][col]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (row < 0 || t.basis[i] < t.basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		t.pivot(row, col)
	}
}

// Solve solves the linear program. It returns ErrInfeasible or
// ErrUnbounded when appropriate.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	m := len(p.B)

	// Phase 1: introduce one artificial variable per row and minimize
	// their sum. Normalize b ≥ 0 first.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, n+m)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1
		}
		for j := 0; j < n; j++ {
			a[i][j] = sign * p.A[i][j]
		}
		a[i][n+i] = 1
		b[i] = sign * p.B[i]
	}
	c1 := make([]float64, n+m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		c1[n+i] = 1
		basis[i] = n + i
	}
	t := &tableau{a: a, b: b, c: c1, basis: basis, m: m, n: n + m}
	if err := t.iterate(); err != nil {
		// Phase 1 cannot be unbounded (costs are nonnegative), so any
		// error here is a genuine solver failure.
		return nil, err
	}
	phase1 := 0.0
	for i, bi := range t.basis {
		phase1 += t.c[bi] * t.b[i]
	}
	if phase1 > 1e-7 {
		return nil, ErrInfeasible
	}
	// Drive any artificial variables out of the basis (degenerate case).
	// Pivot on the largest-magnitude eligible column, not the first one
	// past the tolerance: a pivot element barely above eps divides the
	// whole row by a near-zero value, blowing its entries up by ~1/eps
	// and corrupting the well-scaled rows phase 2 then iterates on.
	for i := 0; i < m; i++ {
		if t.basis[i] >= n {
			col, colAbs := -1, eps
			for j := 0; j < n; j++ {
				if a := math.Abs(t.a[i][j]); a > colAbs {
					col, colAbs = j, a
				}
			}
			if col >= 0 {
				t.pivot(i, col)
			} else {
				// Redundant row: zero it so it cannot affect phase 2.
				for j := range t.a[i] {
					t.a[i][j] = 0
				}
				t.b[i] = 0
			}
		}
	}

	// Phase 2: drop the artificial columns (all non-basic now, except in
	// redundant zero rows marked inert above) and minimize the real
	// objective over the original variables.
	for i := range t.a {
		t.a[i] = t.a[i][:n]
	}
	t.n = n
	t.c = make([]float64, n)
	copy(t.c, p.C)
	for i, bi := range t.basis {
		if bi >= n {
			// Redundant zeroed row: mark it inert. The row is entirely
			// zero, so it never participates in pivots and contributes
			// nothing to the solution.
			t.basis[i] = -1
		}
	}
	if err := t.iterate(); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi >= 0 && bi < n && t.b[i] > eps {
			x[bi] = t.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{X: x, Objective: obj}, nil
}
