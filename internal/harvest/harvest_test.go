package harvest

import (
	"math"
	"strings"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

func TestEfficiencyShape(t *testing.T) {
	h := Default
	if got := h.Efficiency(10e-6); got != 0 {
		t.Errorf("below-threshold efficiency = %v, want 0", got)
	}
	if got := h.Efficiency(h.Threshold); got != 0 {
		t.Errorf("at-threshold efficiency = %v, want 0", got)
	}
	// Monotone rising toward the peak.
	prev := -1.0
	for _, in := range []units.Watt{20e-6, 50e-6, 200e-6, 1e-3, 10e-3} {
		e := h.Efficiency(in)
		if e <= prev {
			t.Fatalf("efficiency not increasing at %v", in)
		}
		if e >= h.PeakEfficiency {
			t.Fatalf("efficiency %v exceeded the peak %v", e, h.PeakEfficiency)
		}
		prev = e
	}
	// Approaches the plateau at high power.
	if e := h.Efficiency(0.1); e < 0.95*h.PeakEfficiency {
		t.Errorf("high-power efficiency = %v, want near %v", e, h.PeakEfficiency)
	}
}

func TestOutputConsistent(t *testing.T) {
	h := Default
	in := units.Watt(100e-6)
	if got, want := h.Output(in), units.Watt(float64(in)*h.Efficiency(in)); got != want {
		t.Errorf("Output = %v, want %v", got, want)
	}
}

func TestIncidentPowerFallsWithDistance(t *testing.T) {
	m := phy.NewModel()
	p1 := IncidentPower(m, 0.3)
	p2 := IncidentPower(m, 1)
	if p1 <= p2 {
		t.Errorf("incident power did not fall: %v at 0.3 m vs %v at 1 m", p1, p2)
	}
	// At 0.3 m with 13 dBm carrier and −2 dBi antennas: 9 dBm − FSPL(0.3)
	// ≈ −12.2 dBm ≈ 60 µW.
	if got := p1.Microwatts(); math.Abs(got-60) > 8 {
		t.Errorf("incident at 0.3 m = %v µW, want ≈60", got)
	}
	// The harvester taps before the SAW filter: incident exceeds what
	// the (lossy) receive chain sees.
	if IncidentPower(m, 0.3) <= m.ReceivedPower(phy.ModePassive, 0.3).Watts() {
		t.Error("harvester tap should bypass the front-end loss")
	}
}

// TestPerpetualTagNearReader is the extension's headline: at close range
// the harvested carrier power covers the 10 kbps tag draw entirely —
// battery-free backscatter.
func TestPerpetualTagNearReader(t *testing.T) {
	m := phy.NewModel()
	b := BudgetAt(Default, m, 0.3, units.Rate10k)
	if !b.SelfSustaining() {
		t.Errorf("tag not self-sustaining at 0.3 m/10 kbps: %v", b)
	}
	// At 1 Mbps the draw roughly doubles; check the budget is at least
	// reported coherently.
	b1M := BudgetAt(Default, m, 0.3, units.Rate1M)
	if b1M.Draw <= b.Draw {
		t.Error("1 Mbps tag should draw more than 10 kbps tag")
	}
}

func TestSelfSustainingRange(t *testing.T) {
	m := phy.NewModel()
	r10k, ok := SelfSustainingRange(Default, m, units.Rate10k)
	if !ok {
		t.Fatal("no self-sustaining range at 10 kbps")
	}
	if r10k < 0.25 || r10k > 1.0 {
		t.Errorf("self-sustaining range = %v m, want a few tens of cm", r10k)
	}
	// Exactly at the range the budget balances (unless capped by comm
	// range).
	b := BudgetAt(Default, m, r10k, units.Rate10k)
	if math.Abs(float64(b.Surplus())) > 1e-7 && r10k < m.Range(phy.ModeBackscatter, units.Rate10k)*0.999 {
		t.Errorf("budget at the boundary has surplus %v", b.Surplus())
	}
	// Slower rates sustain farther than faster ones.
	r1M, ok := SelfSustainingRange(Default, m, units.Rate1M)
	if ok && r1M > r10k {
		t.Errorf("1 Mbps sustains farther (%v) than 10 kbps (%v)", r1M, r10k)
	}
}

func TestSelfSustainingRangeImpossible(t *testing.T) {
	weak := Default
	weak.Threshold = 1 // 1 W turn-on: hopeless
	if _, ok := SelfSustainingRange(weak, phy.NewModel(), units.Rate10k); ok {
		t.Error("hopeless harvester reported a range")
	}
}

func TestUptime(t *testing.T) {
	m := phy.NewModel()
	if got := Uptime(Default, m, 0.3, units.Rate10k); got != 1 {
		t.Errorf("uptime at 0.3 m = %v, want 1 (perpetual)", got)
	}
	// Beyond the perpetual knee but above rectifier turn-on:
	// duty-cycled operation.
	mid := Uptime(Default, m, 0.5, units.Rate10k)
	if mid <= 0 || mid >= 1 {
		t.Errorf("uptime at 0.5 m = %v, want in (0,1)", mid)
	}
	// Far away: dead (below rectifier threshold).
	if got := Uptime(Default, m, 5, units.Rate10k); got != 0 {
		t.Errorf("uptime at 5 m = %v, want 0", got)
	}
	// Monotone non-increasing with distance.
	prev := 2.0
	for d := 0.2; d < 3; d += 0.2 {
		u := Uptime(Default, m, units.Meter(d), units.Rate10k)
		if u > prev+1e-12 {
			t.Fatalf("uptime rose with distance at %v m", d)
		}
		prev = u
	}
}

func TestBudgetString(t *testing.T) {
	m := phy.NewModel()
	s := BudgetAt(Default, m, 0.3, units.Rate10k).String()
	if !strings.Contains(s, "perpetual") {
		t.Errorf("budget string %q missing state", s)
	}
	far := BudgetAt(Default, m, 5, units.Rate10k).String()
	if !strings.Contains(far, "dead") {
		t.Errorf("far budget string %q missing state", far)
	}
}

func TestFreeSpaceCheck(t *testing.T) {
	// The [33] threshold of 16.7 µW at our carrier/antennas corresponds
	// to a turn-on distance of roughly 0.5–0.8 m.
	d := FreeSpaceCheck(phy.NewModel())
	if d < 0.3 || d > 1.2 {
		t.Errorf("turn-on distance = %v m, want ≈0.5–0.8", d)
	}
}

func TestAdjustLinks(t *testing.T) {
	m := phy.NewModel()
	links := m.Characterize(0.3)
	adj := AdjustLinks(Default, m, 0.3, links)
	if len(adj) != len(links) {
		t.Fatal("link count changed")
	}
	for i, l := range adj {
		switch l.Mode {
		case phy.ModeBackscatter:
			if l.T >= links[i].T {
				t.Errorf("backscatter cost not reduced: %v vs %v", l.T, links[i].T)
			}
		default:
			if l.T != links[i].T || l.R != links[i].R {
				t.Errorf("%v costs changed", l.Mode)
			}
		}
	}
	// At 0.3 m and 1 Mbps the tag draws 36.4 µW but harvests ~17 µW:
	// roughly half the cost disappears.
	var bs, bsAdj float64
	for i := range links {
		if links[i].Mode == phy.ModeBackscatter {
			bs, bsAdj = float64(links[i].T), float64(adj[i].T)
		}
	}
	if ratio := bsAdj / bs; ratio < 0.3 || ratio > 0.8 {
		t.Errorf("adjusted/raw tag cost = %v, want ≈0.5", ratio)
	}
	// Far away: no harvest, no change.
	far := m.Characterize(2.0)
	farAdj := AdjustLinks(Default, m, 2.0, far)
	for i := range far {
		if far[i].Mode == phy.ModeBackscatter && farAdj[i].T < far[i].T*0.999 {
			t.Error("cost reduced beyond harvest range")
		}
	}
}
