// Package harvest models RF energy harvesting at the backscatter tag —
// the extension the paper's lineage points at: Braidio's passive front
// end is the Moo/WISP charge pump, and those platforms run battery-free
// on harvested carrier power. When the harvested power at the tag meets
// the tag's draw, the backscatter transmitter is perpetual: the reader
// pays for the tag's radio *and* its energy.
//
// The harvester model follows the Karthaus–Fischer transponder analysis
// the paper cites [33]: a rectifier with a minimum input power (the
// turn-on threshold, 16.7 µW in [33]) and a conversion efficiency that
// improves with input power toward a plateau.
package harvest

import (
	"fmt"
	"math"

	"braidio/internal/phy"
	"braidio/internal/rf"
	"braidio/internal/units"
)

// Harvester is an RF-to-DC conversion model.
type Harvester struct {
	// Threshold is the minimum input power that produces any output
	// (rectifier turn-on). [33] reports 16.7 µW.
	Threshold units.Watt
	// PeakEfficiency is the asymptotic conversion efficiency at high
	// input power. UHF rectifiers reach 0.25–0.35.
	PeakEfficiency float64
	// HalfPoint is the input power at which efficiency reaches half the
	// peak, shaping the soft knee above threshold.
	HalfPoint units.Watt
}

// Default matches a Moo/WISP-class UHF harvester: 16.7 µW turn-on per
// [33], with the ~35% peak conversion efficiency state-of-the-art UHF
// rectifiers reach around −12 dBm input.
var Default = Harvester{
	Threshold:      16.7e-6,
	PeakEfficiency: 0.35,
	HalfPoint:      10e-6,
}

// Efficiency returns the conversion efficiency at a given input power:
// zero below threshold, rising along a saturating knee above it.
func (h Harvester) Efficiency(in units.Watt) float64 {
	if in <= h.Threshold {
		return 0
	}
	excess := float64(in - h.Threshold)
	return h.PeakEfficiency * excess / (excess + float64(h.HalfPoint))
}

// Output returns the harvested DC power for a given input power.
func (h Harvester) Output(in units.Watt) units.Watt {
	return units.Watt(float64(in) * h.Efficiency(in))
}

// IncidentPower returns the carrier power arriving at a tag at distance
// d from a Braidio board emitting its calibrated carrier, using the
// model's one-way budget minus the receive-path front-end loss (the
// harvester taps the antenna before the SAW filter).
func IncidentPower(m *phy.Model, d units.Meter) units.Watt {
	link := m.OneWay
	link.ExtraLoss = 0
	return link.Received(phy.CarrierPower, d).Watts()
}

// Budget compares harvest and draw for a tag at distance d backscattering
// at the given rate.
type Budget struct {
	Distance  units.Meter
	Rate      units.BitRate
	Incident  units.Watt
	Harvested units.Watt
	Draw      units.Watt
}

// Surplus returns harvested minus drawn power; non-negative means the
// tag is self-sustaining at this operating point.
func (b Budget) Surplus() units.Watt { return b.Harvested - b.Draw }

// SelfSustaining reports whether the tag can run forever here.
func (b Budget) SelfSustaining() bool { return b.Surplus() >= 0 }

// BudgetAt evaluates the harvest budget for a tag at distance d
// transmitting at rate r.
func BudgetAt(h Harvester, m *phy.Model, d units.Meter, r units.BitRate) Budget {
	in := IncidentPower(m, d)
	return Budget{
		Distance:  d,
		Rate:      r,
		Incident:  in,
		Harvested: h.Output(in),
		Draw:      phy.BackscatterTXPower(r),
	}
}

// SelfSustainingRange returns the maximum distance at which a tag
// backscattering at rate r is perpetual, found by bisection, and whether
// such a distance exists at all (the link must also still decode: the
// returned range is capped at the mode's communication range).
func SelfSustainingRange(h Harvester, m *phy.Model, r units.BitRate) (units.Meter, bool) {
	commRange := m.Range(phy.ModeBackscatter, r)
	if commRange <= 0 {
		return 0, false
	}
	at := func(d units.Meter) bool { return BudgetAt(h, m, d, r).SelfSustaining() }
	if !at(0.05) {
		return 0, false
	}
	if at(commRange) {
		return commRange, true
	}
	lo, hi := units.Meter(0.05), commRange
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if at(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// Uptime returns the duty cycle a tag can sustain at distance d and rate
// r by banking harvested energy while idle: harvested/draw, capped at 1.
// Below the harvester threshold it is zero. This is the WISP-style
// duty-cycled operation regime between "perpetual" and "dead".
func Uptime(h Harvester, m *phy.Model, d units.Meter, r units.BitRate) float64 {
	b := BudgetAt(h, m, d, r)
	if b.Harvested <= 0 {
		return 0
	}
	duty := float64(b.Harvested) / float64(b.Draw)
	return math.Min(duty, 1)
}

// String formats a budget line.
func (b Budget) String() string {
	state := "duty-cycled"
	if b.SelfSustaining() {
		state = "perpetual"
	} else if b.Harvested == 0 {
		state = "dead"
	}
	return fmt.Sprintf("%.2f m @ %v: incident %v, harvested %v, draw %v (%s)",
		float64(b.Distance), b.Rate, b.Incident, b.Harvested, b.Draw, state)
}

// FreeSpaceCheck confirms the harvester threshold corresponds to the
// free-space turn-on distance implied by [33]'s 16.7 µW at the
// calibrated carrier: useful as a sanity anchor in tests.
func FreeSpaceCheck(m *phy.Model) units.Meter {
	rx := func(d units.Meter) units.DBm {
		link := m.OneWay
		link.ExtraLoss = 0
		return link.Received(phy.CarrierPower, d)
	}
	d, ok := rf.RangeForSensitivity(rx, units.Watt(16.7e-6).DBm(), 0.01, 100)
	if !ok {
		return 0
	}
	return d
}

// AdjustLinks returns a copy of the characterized links in which the
// backscatter transmitter's per-bit cost is offset by harvested carrier
// power: while the reader's carrier is up for the tag's slots, the tag
// banks h.Output(incident) continuously, so its *net* drain is
// max(0, draw − harvested). Inside the perpetual radius the tag's cost
// reaches zero and the offload optimizer will lean on backscatter even
// harder than power-proportionality alone suggests.
func AdjustLinks(h Harvester, m *phy.Model, d units.Meter, links []phy.ModeLink) []phy.ModeLink {
	in := IncidentPower(m, d)
	harvested := h.Output(in)
	out := make([]phy.ModeLink, len(links))
	copy(out, links)
	for i, l := range out {
		if l.Mode != phy.ModeBackscatter {
			continue
		}
		draw := phy.BackscatterTXPower(l.Rate)
		net := draw - harvested
		if net < 0 {
			net = 0
		}
		out[i].T = units.PerBit(net+1e-15, l.Good)
	}
	return out
}
