package linecode

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzCode maps an arbitrary selector byte onto one of the two
// transition-guaranteed codes (NRZ round-trips trivially and is covered
// by the property test).
func fuzzCode(sel byte) Code {
	if sel&1 == 0 {
		return Manchester
	}
	return FM0
}

// FuzzRoundTrip drives Manchester/FM0 encode→decode with arbitrary
// payloads: the round trip must be lossless and violation-free, the
// Append variants must agree with the allocating ones, and the encoded
// stream must honor the codes' run-length bound of 2 — the property
// baseline wander depends on (§3.1).
func FuzzRoundTrip(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(0), []byte{1, 0, 1, 1, 0})
	f.Add(byte(1), []byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add(byte(1), bytes.Repeat([]byte{1}, 64))
	f.Fuzz(func(t *testing.T, sel byte, raw []byte) {
		c := fuzzCode(sel)
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		symbols := Encode(c, bits)
		if len(symbols) != c.SymbolsPerBit()*len(bits) {
			t.Fatalf("%v: %d symbols for %d bits", c, len(symbols), len(bits))
		}
		if got := EncodeAppend(nil, c, bits); !bytes.Equal(got, symbols) {
			t.Fatalf("%v: EncodeAppend diverged from Encode", c)
		}
		if len(bits) > 0 && MaxRunLength(symbols) > 2 {
			t.Fatalf("%v: run length %d > 2", c, MaxRunLength(symbols))
		}
		got, err := Decode(c, symbols)
		if err != nil {
			t.Fatalf("%v: clean stream rejected: %v", c, err)
		}
		if !bytes.Equal(got, bits) {
			t.Fatalf("%v: round trip %v -> %v", c, bits, got)
		}
		got2, err := DecodeAppend(make([]byte, 0, len(bits)), c, symbols)
		if err != nil || !bytes.Equal(got2, bits) {
			t.Fatalf("%v: DecodeAppend round trip failed: %v %v", c, got2, err)
		}
	})
}

// FuzzDecodeArbitrary feeds arbitrary symbol streams to the decoders:
// they must never panic, must only ever report ErrCodingViolation, and
// must never decode more bits than the stream can carry.
func FuzzDecodeArbitrary(f *testing.F) {
	f.Add(byte(0), []byte{})
	f.Add(byte(0), []byte{1, 1, 1, 1})
	f.Add(byte(1), []byte{0, 0})
	f.Add(byte(1), []byte{1, 0, 0, 1, 1})
	f.Fuzz(func(t *testing.T, sel byte, symbols []byte) {
		c := fuzzCode(sel)
		bits, err := Decode(c, symbols)
		if err != nil && !errors.Is(err, ErrCodingViolation) {
			t.Fatalf("%v: unexpected error type %v", c, err)
		}
		if len(bits) > len(symbols)/c.SymbolsPerBit() {
			t.Fatalf("%v: %d bits out of %d symbols", c, len(bits), len(symbols))
		}
		// A stream the decoder accepts must re-encode to the same
		// levels (decode is the inverse of encode on valid streams).
		if err == nil && len(symbols) > 0 {
			re := Encode(c, bits)
			for i := range re {
				if re[i] != symbols[i]&1 {
					t.Fatalf("%v: accepted stream is not an encoding fixpoint at symbol %d", c, i)
				}
			}
		}
	})
}
