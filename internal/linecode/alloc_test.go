//go:build !race

package linecode

import "testing"

// TestAppendPathsZeroAlloc gates the Append hot paths: with grown
// buffers, encode→decode round trips must not allocate. (Skipped under
// the race detector, which instruments allocations.)
func TestAppendPathsZeroAlloc(t *testing.T) {
	bits := randomBits(512, 7)
	for _, c := range []Code{NRZ, Manchester, FM0} {
		symbols := make([]byte, 0, c.SymbolsPerBit()*len(bits))
		decoded := make([]byte, 0, len(bits))
		avg := testing.AllocsPerRun(100, func() {
			symbols = EncodeAppend(symbols[:0], c, bits)
			var err error
			decoded, err = DecodeAppend(decoded[:0], c, symbols)
			if err != nil || len(decoded) != len(bits) {
				t.Fatal("round trip corrupted")
			}
		})
		if avg != 0 {
			t.Errorf("%v: steady-state round trip allocates %v per op, want 0", c, avg)
		}
	}
}
