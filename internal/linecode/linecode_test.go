package linecode

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/rng"
)

func randomBits(n int, seed uint64) []byte {
	r := rng.New(seed)
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = r.Bit()
	}
	return bits
}

func TestRoundTripAllCodes(t *testing.T) {
	bits := randomBits(1000, 1)
	for _, c := range []Code{NRZ, Manchester, FM0} {
		symbols := Encode(c, bits)
		if len(symbols) != len(bits)*c.SymbolsPerBit() {
			t.Errorf("%v: %d symbols for %d bits", c, len(symbols), len(bits))
		}
		got, err := Decode(c, symbols)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !bytes.Equal(got, bits) {
			t.Errorf("%v: round trip corrupted the stream", c)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range []Code{Manchester, FM0} {
		c := c
		f := func(raw []byte) bool {
			bits := make([]byte, len(raw))
			for i, b := range raw {
				bits[i] = b & 1
			}
			got, err := Decode(c, Encode(c, bits))
			return err == nil && bytes.Equal(got, bits)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", c, err)
		}
	}
}

// TestRunLengthBounded is the property the envelope link needs: no
// matter the data — including all-zeros and all-ones — the coded stream
// never holds a level for more than two symbols.
func TestRunLengthBounded(t *testing.T) {
	pathological := [][]byte{
		bytes.Repeat([]byte{1}, 500),
		bytes.Repeat([]byte{0}, 500),
		randomBits(500, 2),
	}
	for _, bits := range pathological {
		for _, c := range []Code{Manchester, FM0} {
			if run := MaxRunLength(Encode(c, bits)); run > 2 {
				t.Errorf("%v: run length %d > 2", c, run)
			}
		}
		// NRZ on constant data runs forever — the failure mode.
		if bits[0] == bits[len(bits)-1] && bits[0] == 1 {
			if run := MaxRunLength(Encode(NRZ, bits)); run != 500 {
				t.Errorf("NRZ run length = %d, want 500", run)
			}
		}
	}
}

func TestDCBalance(t *testing.T) {
	ones := bytes.Repeat([]byte{1}, 1000)
	// Manchester is exactly balanced for any input.
	if got := DCBalance(Encode(Manchester, ones)); got != 0 {
		t.Errorf("Manchester balance on all-ones = %v, want 0", got)
	}
	// FM0 is balanced to within one symbol on random data.
	if got := DCBalance(Encode(FM0, randomBits(10000, 3))); math.Abs(got) > 0.02 {
		t.Errorf("FM0 balance = %v, want ≈0", got)
	}
	// NRZ on all-ones is maximally unbalanced.
	if got := DCBalance(Encode(NRZ, ones)); got != 0.5 {
		t.Errorf("NRZ balance on all-ones = %v, want 0.5", got)
	}
	if DCBalance(nil) != 0 {
		t.Error("empty balance not 0")
	}
}

func TestManchesterViolationDetected(t *testing.T) {
	symbols := Encode(Manchester, []byte{1, 0, 1})
	symbols[2] = symbols[3] // make an invalid 00 or 11 pair
	_, err := Decode(Manchester, symbols)
	if !errors.Is(err, ErrCodingViolation) {
		t.Errorf("corrupted Manchester decoded: %v", err)
	}
	if _, err := Decode(Manchester, []byte{1}); !errors.Is(err, ErrCodingViolation) {
		t.Errorf("odd-length Manchester decoded: %v", err)
	}
}

func TestFM0ViolationDetected(t *testing.T) {
	symbols := Encode(FM0, []byte{1, 1, 0, 1})
	// Break the boundary-inversion rule: force symbol 2 equal to the
	// previous level.
	symbols[2] = symbols[1]
	_, err := Decode(FM0, symbols)
	if !errors.Is(err, ErrCodingViolation) {
		t.Errorf("corrupted FM0 decoded: %v", err)
	}
}

// TestFM0Structure pins the FM0 invariants: inversion at every bit
// boundary, mid-bit inversion exactly for zeros.
func TestFM0Structure(t *testing.T) {
	bits := randomBits(300, 4)
	symbols := Encode(FM0, bits)
	level := byte(1)
	for i, b := range bits {
		first, second := symbols[2*i], symbols[2*i+1]
		if first == level {
			t.Fatalf("bit %d: no boundary inversion", i)
		}
		if b == 1 && second != first {
			t.Fatalf("bit %d: data-1 has a mid-bit inversion", i)
		}
		if b == 0 && second == first {
			t.Fatalf("bit %d: data-0 lacks its mid-bit inversion", i)
		}
		level = second
	}
}

func TestCodeMeta(t *testing.T) {
	if NRZ.SymbolsPerBit() != 1 || Manchester.SymbolsPerBit() != 2 || FM0.SymbolsPerBit() != 2 {
		t.Error("symbol expansion wrong")
	}
	if NRZ.Rate() != 1 || Manchester.Rate() != 0.5 {
		t.Error("code rates wrong")
	}
	for _, c := range []Code{NRZ, Manchester, FM0, Code(9)} {
		if c.String() == "" {
			t.Error("empty code name")
		}
	}
}

func TestUnknownCodePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"encode": func() { Encode(Code(9), []byte{1}) },
		"decode": func() { Decode(Code(9), []byte{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMaxRunLengthEdge(t *testing.T) {
	if MaxRunLength(nil) != 0 {
		t.Error("empty run length not 0")
	}
	if MaxRunLength([]byte{1}) != 1 {
		t.Error("single symbol run length not 1")
	}
}

// TestAppendVariantsMatch: EncodeAppend/DecodeAppend agree with
// Encode/Decode and honor append semantics (prefix preserved, capacity
// reused).
func TestAppendVariantsMatch(t *testing.T) {
	bits := []byte{1, 0, 0, 1, 1, 1, 0, 1, 0, 0}
	for _, c := range []Code{NRZ, Manchester, FM0} {
		want := Encode(c, bits)
		buf := make([]byte, 0, 2*len(bits)+3)
		buf = append(buf, 9, 9, 9) // pre-existing prefix must survive
		got := EncodeAppend(buf, c, bits)
		if !bytes.Equal(got[:3], []byte{9, 9, 9}) {
			t.Fatalf("%v: EncodeAppend clobbered the prefix", c)
		}
		if !bytes.Equal(got[3:], want) {
			t.Fatalf("%v: EncodeAppend %v, want %v", c, got[3:], want)
		}
		if &got[0] != &buf[0] {
			t.Errorf("%v: EncodeAppend reallocated despite capacity", c)
		}

		wantBits, wantErr := Decode(c, want)
		decBuf := make([]byte, 0, len(bits))
		gotBits, gotErr := DecodeAppend(decBuf, c, want)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%v: error mismatch %v vs %v", c, gotErr, wantErr)
		}
		if !bytes.Equal(gotBits, wantBits) {
			t.Fatalf("%v: DecodeAppend %v, want %v", c, gotBits, wantBits)
		}
		if len(gotBits) > 0 && &gotBits[0] != &decBuf[:1][0] {
			t.Errorf("%v: DecodeAppend reallocated despite capacity", c)
		}
	}
}

// TestDecodeAppendViolationKeepsPrefix: on a coding violation the
// returned slice still starts with the caller's prefix plus the bits
// decoded before the violation, mirroring Decode's partial-result
// contract.
func TestDecodeAppendViolationKeepsPrefix(t *testing.T) {
	syms := Encode(Manchester, []byte{1, 1, 0})
	syms[4], syms[5] = 1, 1 // violation at bit 2
	prefix := []byte{7}
	got, err := DecodeAppend(append([]byte{}, prefix...), Manchester, syms)
	if !errors.Is(err, ErrCodingViolation) {
		t.Fatalf("error = %v, want coding violation", err)
	}
	if !bytes.Equal(got, []byte{7, 1, 1}) {
		t.Fatalf("partial decode %v, want prefix + 2 good bits", got)
	}
	// Odd symbol counts are rejected before any decoding.
	if got, err := DecodeAppend(prefix, FM0, []byte{1}); !errors.Is(err, ErrCodingViolation) || !bytes.Equal(got, prefix) {
		t.Fatalf("odd count: got %v err %v", got, err)
	}
}

// TestNRZDecodeMasksLevels: NRZ decode reduces arbitrary symbol bytes to
// their level bit, matching the historical contract.
func TestNRZDecodeMasksLevels(t *testing.T) {
	got, err := Decode(NRZ, []byte{0, 1, 2, 255})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 1, 0, 1}) {
		t.Fatalf("NRZ decode %v, want masked levels", got)
	}
}
