// Package linecode implements the DC-balanced line codes backscatter
// uplinks use: Manchester (the classic) and FM0 (bi-phase space, the EPC
// Gen2 tag-to-reader encoding). An envelope-detected link that is
// high-pass filtered to reject carrier self-interference (§3.1) cannot
// pass long runs of identical symbols — the baseline wanders into the
// comparator's threshold — so the tag's bit stream must carry its own
// transitions. Both codes guarantee at least one level transition per
// bit at the cost of doubling the symbol rate.
package linecode

import (
	"errors"
	"fmt"
)

// Code identifies a line code.
type Code int

// Supported codes.
const (
	// NRZ is no coding (one level per bit) — the baseline that fails
	// under baseline wander.
	NRZ Code = iota
	// Manchester encodes 1 as high→low and 0 as low→high.
	Manchester
	// FM0 inverts the level at every bit boundary and adds a mid-bit
	// inversion for 0 (EPC Gen2 convention).
	FM0
)

// String implements fmt.Stringer.
func (c Code) String() string {
	switch c {
	case NRZ:
		return "NRZ"
	case Manchester:
		return "Manchester"
	case FM0:
		return "FM0"
	default:
		return fmt.Sprintf("code(%d)", int(c))
	}
}

// SymbolsPerBit returns the on-air symbol expansion of the code.
func (c Code) SymbolsPerBit() int {
	if c == NRZ {
		return 1
	}
	return 2
}

// Rate returns the code rate (information bits per symbol).
func (c Code) Rate() float64 { return 1 / float64(c.SymbolsPerBit()) }

// Encode expands bits (0/1 bytes) into channel symbols (0/1 levels).
// FM0 encoding is stateful across the stream, starting from level 1.
func Encode(c Code, bits []byte) []byte {
	return EncodeAppend(make([]byte, 0, c.SymbolsPerBit()*len(bits)), c, bits)
}

// EncodeAppend appends the channel symbols for bits to dst and returns
// the extended slice, à la strconv.AppendInt: when dst has capacity for
// the c.SymbolsPerBit()*len(bits) new symbols, no allocation happens.
// Pass dst[:0] to reuse a frame buffer across calls.
func EncodeAppend(dst []byte, c Code, bits []byte) []byte {
	switch c {
	case NRZ:
		for _, b := range bits {
			dst = append(dst, b&1)
		}
		return dst
	case Manchester:
		for _, b := range bits {
			if b&1 == 1 {
				dst = append(dst, 1, 0)
			} else {
				dst = append(dst, 0, 1)
			}
		}
		return dst
	case FM0:
		level := byte(1)
		for _, b := range bits {
			// Invert at the bit boundary.
			level ^= 1
			first := level
			second := level
			if b&1 == 0 {
				// Data-0 adds a mid-bit inversion.
				second = level ^ 1
				level = second
			}
			dst = append(dst, first, second)
		}
		return dst
	default:
		panic(fmt.Sprintf("linecode: unknown code %d", int(c)))
	}
}

// ErrCodingViolation reports symbols that are not a valid codeword
// stream (a detected channel error).
var ErrCodingViolation = errors.New("linecode: coding violation")

// Decode recovers bits from channel symbols. For Manchester and FM0 a
// malformed pair returns ErrCodingViolation with the bits decoded so far
// — the violation detection is itself an error-detection mechanism the
// envelope link gets for free.
func Decode(c Code, symbols []byte) ([]byte, error) {
	return DecodeAppend(make([]byte, 0, len(symbols)/c.SymbolsPerBit()+1), c, symbols)
}

// DecodeAppend appends the decoded bits to dst and returns the extended
// slice; a coding violation returns dst plus the bits decoded before the
// violation, alongside ErrCodingViolation, matching Decode. When dst has
// capacity for the decoded bits, no allocation happens (violation error
// construction aside — errors are off the hot path by definition).
func DecodeAppend(dst []byte, c Code, symbols []byte) ([]byte, error) {
	switch c {
	case NRZ:
		for _, s := range symbols {
			dst = append(dst, s&1)
		}
		return dst, nil
	case Manchester:
		if len(symbols)%2 != 0 {
			return dst, fmt.Errorf("%w: odd symbol count", ErrCodingViolation)
		}
		for i := 0; i < len(symbols); i += 2 {
			a, b := symbols[i]&1, symbols[i+1]&1
			switch {
			case a == 1 && b == 0:
				dst = append(dst, 1)
			case a == 0 && b == 1:
				dst = append(dst, 0)
			default:
				return dst, fmt.Errorf("%w: symbols %d%d at bit %d", ErrCodingViolation, a, b, i/2)
			}
		}
		return dst, nil
	case FM0:
		if len(symbols)%2 != 0 {
			return dst, fmt.Errorf("%w: odd symbol count", ErrCodingViolation)
		}
		level := byte(1)
		for i := 0; i < len(symbols); i += 2 {
			a, b := symbols[i]&1, symbols[i+1]&1
			// A valid FM0 bit starts by inverting the previous level.
			if a == level {
				return dst, fmt.Errorf("%w: missing boundary inversion at bit %d", ErrCodingViolation, i/2)
			}
			switch {
			case b == a:
				dst = append(dst, 1)
				level = b
			default:
				dst = append(dst, 0)
				level = b
			}
		}
		return dst, nil
	default:
		panic(fmt.Sprintf("linecode: unknown code %d", int(c)))
	}
}

// MaxRunLength returns the longest run of identical symbols in a stream
// — the quantity baseline wander cares about. Manchester and FM0 bound
// it at 2 for any input.
func MaxRunLength(symbols []byte) int {
	if len(symbols) == 0 {
		return 0
	}
	best, run := 1, 1
	for i := 1; i < len(symbols); i++ {
		if symbols[i]&1 == symbols[i-1]&1 {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
		}
	}
	return best
}

// DCBalance returns the mean symbol level minus 0.5 — zero for a
// perfectly balanced stream.
func DCBalance(symbols []byte) float64 {
	if len(symbols) == 0 {
		return 0
	}
	sum := 0
	for _, s := range symbols {
		sum += int(s & 1)
	}
	return float64(sum)/float64(len(symbols)) - 0.5
}
