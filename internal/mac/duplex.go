package mac

import (
	"errors"

	"braidio/internal/energy"
	"braidio/internal/units"
)

// Duplex runs bidirectional traffic between two endpoints A and B at the
// packet level — the Fig. 17 scenario with real frames. It is two
// Sessions wired crosswise over the *same* two batteries, so energy
// spent in one direction is visible to the other direction's offload
// allocation at its next recompute.
//
// In a highly asymmetric pair the poor device ends up on the cheap side
// of both directions: backscattering when it talks, envelope-detecting
// when it listens.
type Duplex struct {
	// AB carries A→B traffic, BA carries B→A.
	AB, BA *Session

	battA, battB *energy.Battery
}

// NewDuplex creates the two crosswise sessions. The batteries are shared
// and mutated by both directions.
func NewDuplex(cfg Config, battA, battB *energy.Battery) (*Duplex, error) {
	if battA == nil || battB == nil {
		return nil, errors.New("mac: duplex needs two batteries")
	}
	abCfg := cfg
	abCfg.Seed = cfg.Seed*2 + 1
	ab, err := NewSession(abCfg, battA, battB)
	if err != nil {
		return nil, err
	}
	baCfg := cfg
	baCfg.Seed = cfg.Seed*2 + 2
	ba, err := NewSession(baCfg, battB, battA)
	if err != nil {
		return nil, err
	}
	return &Duplex{AB: ab, BA: ba, battA: battA, battB: battB}, nil
}

// Send moves one frame in the given direction (true = A→B).
func (d *Duplex) Send(aToB bool, payloadLen int) (bool, error) {
	if aToB {
		return d.AB.SendFrame(payloadLen)
	}
	return d.BA.SendFrame(payloadLen)
}

// Exchange moves one frame each way, returning how many of the two were
// delivered.
func (d *Duplex) Exchange(payloadLen int) (delivered int, err error) {
	for _, dir := range []bool{true, false} {
		ok, err := d.Send(dir, payloadLen)
		if err != nil {
			return delivered, err
		}
		if ok {
			delivered++
		}
	}
	return delivered, nil
}

// Dead reports whether either battery has been exhausted.
func (d *Duplex) Dead() bool { return d.AB.Dead() || d.BA.Dead() }

// Drains returns each endpoint's total energy spent across both
// directions.
func (d *Duplex) Drains() (a, b units.Joule) {
	return d.battA.Drained(), d.battB.Drained()
}

// SetDistance moves both directions (the endpoints share a geometry).
func (d *Duplex) SetDistance(m units.Meter) {
	d.AB.SetDistance(m)
	d.BA.SetDistance(m)
}
