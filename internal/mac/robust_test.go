package mac

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/linkcache"
	"braidio/internal/modem"
	"braidio/internal/phy"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// TestZeroFaultPathBitIdentical: an empty fault chain must reproduce the
// nil-chain session exactly — same stats, same drains, same draws. Fault
// injection is strictly opt-in; merely wiring the hook into the hot path
// must not perturb the channel. The lossy 2.6 m regime exercises
// retransmission and estimator updates, not just clean deliveries.
func TestZeroFaultPathBitIdentical(t *testing.T) {
	run := func(inj faults.Injector) (Stats, units.Joule, units.Joule) {
		cfg := DefaultConfig(phy.NewModel(), 2.6, 7)
		cfg.Faults = inj
		tx, rx := energy.NewBattery(0.01), energy.NewBattery(0.0001)
		s, err := NewSession(cfg, tx, rx)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1200 && !s.Dead(); i++ {
			if _, err := s.SendFrame(240); err != nil {
				t.Fatal(err)
			}
		}
		d1, d2 := s.Drains()
		return s.Stats(), d1, d2
	}
	aStats, aTX, aRX := run(nil)
	bStats, bTX, bRX := run(faults.Chain{})
	if !reflect.DeepEqual(aStats, bStats) {
		t.Errorf("empty chain diverged from nil chain:\n nil:   %+v\n empty: %+v", aStats, bStats)
	}
	if aTX != bTX || aRX != bRX {
		t.Errorf("drains diverged: nil (%v, %v) vs empty (%v, %v)", aTX, aRX, bTX, bRX)
	}
}

// TestSessionWalkDrivesLinkQuality: with a Walk configured, the true
// BER/FER follows the live distance — no SetDistance calls. Before walks
// were threaded in, SendFrame priced loss off the frozen construction
// distance, so a departing endpoint kept enjoying 0.3 m backscatter
// forever.
func TestSessionWalkDrivesLinkQuality(t *testing.T) {
	cfg := DefaultConfig(phy.NewModel(), 0.3, 42)
	cfg.Walk = sim.LinearWalk{Start: 0.3, End: 4, Duration: 0.5}
	s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().AirTime < 0.5 {
		t.Fatalf("test premise broken: %v s of air time has not finished the walk", float64(s.Stats().AirTime))
	}
	if got := s.Distance(); got != 4 {
		t.Errorf("session distance = %v, want the walk's end 4 m", float64(got))
	}
	// Backscatter does not decode at 4 m: after the walk settles, no
	// further backscatter frames may flow.
	bs := s.Stats().ModeFrames[phy.ModeBackscatter]
	delivered := s.Stats().FramesDelivered
	for i := 0; i < 400; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().ModeFrames[phy.ModeBackscatter]; got != bs {
		t.Errorf("backscatter frames kept flowing at 4 m: %d → %d", bs, got)
	}
	if s.Stats().FramesDelivered == delivered {
		t.Error("no frames delivered after the walk — active fallback should carry 4 m")
	}
}

// TestRecomputeErrorsWrapTyped: allocation errors escaping recompute must
// wrap the optimizer's typed causes so callers can errors.Is them instead
// of matching strings. An estimator corrupted far below every decode
// requirement makes the measured characterization empty.
func TestRecomputeErrorsWrapTyped(t *testing.T) {
	cfg := DefaultConfig(phy.NewModel(), 0.3, 42)
	cfg.Faults = faults.Chain{faults.NewSNRCorruptor(-200, 0, 1)}
	_, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
	if err == nil {
		t.Fatal("session built with a −200 dB estimator")
	}
	if !errors.Is(err, core.ErrOutOfRange) {
		t.Errorf("recompute error %v does not wrap core.ErrOutOfRange", err)
	}
	if !strings.Contains(err.Error(), "recompute") {
		t.Errorf("recompute error %q does not name its path", err)
	}
}

// TestLinkDeathTyped: a channel that stays flat through every retry and
// fallback must surface as core.ErrLinkDead after the bounded strike
// budget — not spin forever and not report battery exhaustion.
func TestLinkDeathTyped(t *testing.T) {
	cfg := DefaultConfig(phy.NewModel(), 0.3, 42)
	// A permanent Bad state losing every frame on every mode.
	cfg.Faults = faults.Chain{faults.NewGilbertElliott(1, 0, 0, 1, 3)}
	s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
	if err != nil {
		t.Fatal(err)
	}
	var sendErr error
	for i := 0; i < 20000; i++ {
		if _, sendErr = s.SendFrame(240); sendErr != nil {
			break
		}
	}
	if sendErr == nil {
		t.Fatal("flat channel never surfaced an error (livelock)")
	}
	if !errors.Is(sendErr, core.ErrLinkDead) {
		t.Errorf("terminal error %v does not wrap core.ErrLinkDead", sendErr)
	}
	if errors.Is(sendErr, ErrExhausted) {
		t.Errorf("link death misreported as battery exhaustion: %v", sendErr)
	}
	// The verdict is sticky: the session refuses further service.
	if _, err := s.SendFrame(240); !errors.Is(err, core.ErrLinkDead) {
		t.Errorf("dead link served another frame: %v", err)
	}
}

// TestDropoutOutageSurvived: a brief carrier dropout loses frames but the
// session rides it out on the strike budget, counts the outage, and
// resumes delivering.
func TestDropoutOutageSurvived(t *testing.T) {
	cfg := DefaultConfig(phy.NewModel(), 0.3, 42)
	cfg.Faults = faults.Chain{&faults.Dropout{Start: 0.1, Duration: 0.04}}
	s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatalf("frame %d: session did not survive a 40 ms dropout: %v", i, err)
		}
	}
	st := s.Stats()
	if st.FramesLost == 0 {
		t.Error("no frames lost across the dropout window")
	}
	if st.Outages == 0 {
		t.Error("outage not counted despite losses ending in recovery")
	}
	// Deliveries must have resumed after the window.
	tail := st.FramesDelivered
	for i := 0; i < 100; i++ {
		ok, err := s.SendFrame(240)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("post-dropout frame %d not delivered", i)
		}
	}
	if s.Stats().FramesDelivered != tail+100 {
		t.Error("deliveries did not fully resume after the dropout")
	}
}

// TestBrownoutScalesDrain: a TX-side brownout multiplies the
// transmitter's spend without touching the receiver's.
func TestBrownoutScalesDrain(t *testing.T) {
	run := func(inj faults.Injector) (tx, rx units.Joule) {
		cfg := DefaultConfig(phy.NewModel(), 0.3, 42)
		cfg.Faults = inj
		s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if _, err := s.SendFrame(240); err != nil {
				t.Fatal(err)
			}
		}
		return s.Drains()
	}
	baseTX, baseRX := run(nil)
	brownTX, brownRX := run(faults.Chain{&faults.Brownout{Duration: 1e9, Scale: 2.5, Affected: faults.SideTX}})
	if ratio := float64(brownTX / baseTX); ratio < 1.8 || ratio > 2.6 {
		t.Errorf("TX brownout drain ratio = %v, want ≈2.5 (switch/exchange overheads unscaled)", ratio)
	}
	if ratio := float64(brownRX / baseRX); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("RX drain ratio = %v under a TX-only brownout, want ≈1", ratio)
	}
}

// TestFallbackHysteresisBoundsFlapping: a session held at the decode
// margin by a noisy, biased estimator flaps — probes occasionally admit
// the marginal passive link, traffic observations promptly evict it.
// With hysteresis disabled (the pre-hardening behavior) every trigger
// executes a full fallback + probe + recompute; the cooldown and re-entry
// backoff must bound that churn and absorb triggers into
// FallbacksSuppressed.
func TestFallbackHysteresisBoundsFlapping(t *testing.T) {
	m := phy.NewModel()
	const d = units.Meter(2.6)
	const frames = 4000
	need := float64(units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(phy.ModePassive, units.Rate10k), phy.RangeBERTarget)))
	trueSNR := float64(linkcache.SNR(m, phy.ModePassive, units.Rate10k, d))
	// Mean perceived SNR pinned at the fallback threshold (need − margin),
	// with enough estimator variance that probes still re-admit the link.
	bias := (need - 3.0) - trueSNR

	run := func(seed uint64, hysteresis bool) Stats {
		cfg := DefaultConfig(m, d, seed)
		cfg.RecomputeFrames = 32
		cfg.Faults = faults.Chain{faults.NewSNRCorruptor(bias, 8, seed+1)}
		cfg.MaxLinkStrikes = 1 << 30 // measuring flap churn, not link death
		if hysteresis {
			cfg.FallbackCooldown = 64
			cfg.FallbackBackoffBase = 2
		} else {
			cfg.FallbackCooldown = 0
			cfg.FallbackBackoffBase = 0
		}
		// The tiny RX budget makes the optimizer lean on passive's cheap
		// envelope receiver, so the marginal link stays attractive.
		s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.001))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < frames && !s.Dead(); i++ {
			if _, err := s.SendFrame(240); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats()
	}

	seeds := []uint64{7, 21, 99}
	oldTotal, newTotal, suppressedTotal := 0, 0, 0
	for _, seed := range seeds {
		old := run(seed, false)
		hyst := run(seed, true)
		oldTotal += old.Fallbacks
		newTotal += hyst.Fallbacks
		suppressedTotal += hyst.FallbacksSuppressed
		// The cooldown is an absolute rate limit on executed fallbacks.
		if bound := frames/64 + 2; hyst.Fallbacks > bound {
			t.Errorf("seed %d: %d fallbacks exceed the cooldown bound %d", seed, hyst.Fallbacks, bound)
		}
		if old.FallbacksSuppressed != 0 {
			t.Errorf("seed %d: disabled hysteresis still suppressed %d triggers", seed, old.FallbacksSuppressed)
		}
	}
	// Regression pin on the old behavior: the margin-pinned link flaps.
	if oldTotal < 45 {
		t.Fatalf("test premise broken: only %d fallbacks across %d unhysteretic runs", oldTotal, len(seeds))
	}
	if newTotal*5 > oldTotal*4 {
		t.Errorf("hysteresis barely helped: %d fallbacks vs %d without", newTotal, oldTotal)
	}
	if suppressedTotal < 20 {
		t.Errorf("hysteresis engaged too rarely: %d suppressed triggers", suppressedTotal)
	}
}
