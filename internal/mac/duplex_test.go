package mac

import (
	"math"
	"testing"

	"braidio/internal/energy"
	"braidio/internal/phy"
	"braidio/internal/units"
)

func newDuplex(t *testing.T, c1, c2 units.WattHour) *Duplex {
	t.Helper()
	cfg := DefaultConfig(phy.NewModel(), 0.4, 77)
	d, err := NewDuplex(cfg, energy.NewBattery(c1), energy.NewBattery(c2))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDuplexExchanges(t *testing.T) {
	d := newDuplex(t, 0.01, 0.01)
	total := 0
	for i := 0; i < 500; i++ {
		n, err := d.Exchange(240)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 1000 {
		t.Errorf("delivered %d of 1000 frames at 0.4 m", total)
	}
	if d.Dead() {
		t.Error("duplex died on 10 mWh batteries")
	}
}

// TestDuplexAsymmetricRoles: with a tiny A and a big B, A ends up on the
// cheap side of both directions — backscatter when sending, passive
// (envelope) when receiving — so B pays nearly everything.
func TestDuplexAsymmetricRoles(t *testing.T) {
	d := newDuplex(t, 0.0005, 0.05) // 100:1
	for i := 0; i < 1500; i++ {
		if _, err := d.Exchange(240); err != nil {
			t.Fatal(err)
		}
	}
	abStats := d.AB.Stats() // A transmits
	baStats := d.BA.Stats() // B transmits
	if f := float64(abStats.ModeFrames[phy.ModeBackscatter]) / float64(abStats.FramesDelivered); f < 0.9 {
		t.Errorf("A→B backscatter share = %v, want ≈1 (A reflects B's carrier)", f)
	}
	if f := float64(baStats.ModeFrames[phy.ModePassive]) / float64(baStats.FramesDelivered); f < 0.9 {
		t.Errorf("B→A passive share = %v, want ≈1 (A envelope-detects B's carrier)", f)
	}
	a, b := d.Drains()
	if ratio := float64(b / a); ratio < 20 {
		t.Errorf("B/A drain ratio = %v, want large (B carries the carrier both ways)", ratio)
	}
}

// TestDuplexSharedBatteries: both directions drain the same batteries —
// the sum of the sessions' drains matches the battery accounting.
func TestDuplexSharedBatteries(t *testing.T) {
	d := newDuplex(t, 0.002, 0.002)
	for i := 0; i < 400; i++ {
		if _, err := d.Exchange(240); err != nil {
			t.Fatal(err)
		}
	}
	abTX, abRX := d.AB.Drains() // these report battery cumulative drains
	a, b := d.Drains()
	// Session Drains() returns the underlying batteries' totals, which
	// are shared: the AB view equals the duplex view.
	if float64(abTX) != float64(a) || float64(abRX) != float64(b) {
		t.Errorf("shared battery accounting diverged: %v/%v vs %v/%v", abTX, abRX, a, b)
	}
	// Equal devices exchanging equal traffic: drains roughly balance.
	if r := float64(a / b); math.Abs(math.Log(r)) > 0.35 {
		t.Errorf("equal-device duplex drain ratio = %v, want ≈1", r)
	}
}

// TestDuplexRunsToDeath: tiny batteries exhaust and Dead reports it.
func TestDuplexRunsToDeath(t *testing.T) {
	d := newDuplex(t, 2e-6, 2e-6)
	for i := 0; i < 100000 && !d.Dead(); i++ {
		if _, err := d.Exchange(240); err != nil {
			break
		}
	}
	if !d.Dead() {
		t.Fatal("duplex never exhausted 2 µWh batteries")
	}
}

func TestDuplexMobility(t *testing.T) {
	d := newDuplex(t, 0.01, 0.01)
	for i := 0; i < 200; i++ {
		if _, err := d.Exchange(240); err != nil {
			t.Fatal(err)
		}
	}
	d.SetDistance(3)
	for i := 0; i < 400; i++ {
		if _, err := d.Exchange(240); err != nil {
			t.Fatal(err)
		}
	}
	if d.AB.Stats().Fallbacks == 0 && d.BA.Stats().Fallbacks == 0 {
		t.Error("no fallbacks in either direction after moving to 3 m")
	}
}

func TestDuplexValidation(t *testing.T) {
	cfg := DefaultConfig(phy.NewModel(), 0.4, 1)
	if _, err := NewDuplex(cfg, nil, energy.NewBattery(1)); err == nil {
		t.Error("nil battery accepted")
	}
	bad := DefaultConfig(phy.NewModel(), 9000, 1)
	if _, err := NewDuplex(bad, energy.NewBattery(1), energy.NewBattery(1)); err == nil {
		t.Error("out-of-range duplex accepted")
	}
}
