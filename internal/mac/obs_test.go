package mac

import (
	"testing"

	"braidio/internal/energy"
	"braidio/internal/obs"
	"braidio/internal/phy"
)

// runSessionWith runs a fixed session workload and returns its stats;
// the recorder (may be nil) is attached through the config.
func runSessionWith(t *testing.T, rec *obs.Recorder) Stats {
	t.Helper()
	cfg := DefaultConfig(phy.NewModel(), 0.5, 7)
	cfg.Obs = rec
	s, err := NewSession(cfg, energy.NewBattery(0.05), energy.NewBattery(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600 && !s.Dead(); i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	return s.Stats()
}

// TestSessionRecorderObservational proves the MAC's recorder is
// strictly observational (identical Stats with and without it) and that
// the recorded counters match the session's own accounting.
func TestSessionRecorderObservational(t *testing.T) {
	bare := runSessionWith(t, nil)
	rec := obs.NewRecorder()
	rec.Tracer = obs.NewTracer(256)
	with := runSessionWith(t, rec)

	if bare.FramesDelivered != with.FramesDelivered || bare.AirTime != with.AirTime ||
		bare.ModeSwitches != with.ModeSwitches || bare.Recomputes != with.Recomputes {
		t.Errorf("recorder changed session behaviour:\nbare: %+v\nwith: %+v", bare, with)
	}

	s := rec.Snapshot()
	if s.FramesDelivered != uint64(with.FramesDelivered) {
		t.Errorf("FramesDelivered = %d, want %d", s.FramesDelivered, with.FramesDelivered)
	}
	if s.FramesLost != uint64(with.FramesLost) {
		t.Errorf("FramesLost = %d, want %d", s.FramesLost, with.FramesLost)
	}
	if s.Retransmissions != uint64(with.Retransmissions) {
		t.Errorf("Retransmissions = %d, want %d", s.Retransmissions, with.Retransmissions)
	}
	if s.Probes != uint64(with.Probes) {
		t.Errorf("Probes = %d, want %d", s.Probes, with.Probes)
	}
	if s.Recomputes != uint64(with.Recomputes) {
		t.Errorf("Recomputes = %d, want %d", s.Recomputes, with.Recomputes)
	}
	if s.Switches != uint64(with.ModeSwitches) {
		t.Errorf("Switches = %d, want %d", s.Switches, with.ModeSwitches)
	}
	if s.Fallbacks != uint64(with.Fallbacks) || s.FallbacksSuppressed != uint64(with.FallbacksSuppressed) {
		t.Errorf("fallback counters (%d/%d) disagree with stats (%d/%d)",
			s.Fallbacks, s.FallbacksSuppressed, with.Fallbacks, with.FallbacksSuppressed)
	}
	if diff := s.Bits - with.PayloadBits; diff > 1.0/256 || diff < -1.0/256 {
		t.Errorf("Bits = %v, want %v", s.Bits, with.PayloadBits)
	}
	// Every mode switch must have produced a trace event.
	switches := 0
	for _, ev := range rec.Tracer.Events() {
		if ev.Kind == obs.EvModeSwitch {
			switches++
		}
	}
	if rec.Tracer.Total() <= uint64(rec.Tracer.Cap()) && switches != with.ModeSwitches {
		t.Errorf("traced %d mode switches, stats say %d", switches, with.ModeSwitches)
	}
}
