// Package mac implements the packet-level braided MAC of §4.2: the
// protocol machinery above the PHY and below the application. A Session
// performs the initial battery exchange over the active radio, probes the
// passive and backscatter links to learn their SNR and best bitrates,
// asks the carrier-offload optimizer for mode fractions, executes the
// braided schedule frame by frame (with loss, retransmission, and
// mode-switch overheads), falls back to the active mode when the current
// mode's observed SNR collapses, and periodically re-computes the
// allocation as batteries drain or the channel changes.
//
// The chunked engine in internal/core answers "how many bits until a
// battery dies" analytically; this package exists to exercise the actual
// protocol dynamics — integration tests drive mobility and battery
// depletion through it.
package mac

import (
	"errors"
	"fmt"
	"io"
	"math"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/frame"
	"braidio/internal/linkcache"
	"braidio/internal/modem"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Config parameterizes a Session.
type Config struct {
	// Model is the calibrated PHY.
	Model *phy.Model
	// Distance is the initial separation.
	Distance units.Meter
	// Seed drives all stochastic elements (losses, SNR estimation
	// noise).
	Seed uint64
	// Window is the braided schedule window, in frames.
	Window int
	// RecomputeFrames is how often the allocation is re-solved.
	RecomputeFrames int
	// FallbackSNRMargin: when the EWMA SNR of the current mode drops
	// this far below its decode requirement, the session falls back to
	// the active mode and re-probes (§4.2's safety net).
	FallbackSNRMargin units.DB
	// SNRNoise is the standard deviation (dB) of per-frame SNR
	// estimates.
	SNRNoise float64
	// MaxRetries bounds retransmissions per frame before the frame is
	// counted lost and the link declared degraded.
	MaxRetries int
	// Trace, when non-nil, receives one CSV row per data frame:
	// frame,mode,rate,attempts,delivered,txJ,rxJ,snrEst. A header row is
	// written first. Trace output is for offline analysis of a
	// session's braiding behaviour.
	Trace io.Writer
}

// DefaultConfig returns the configuration used by the integration tests.
func DefaultConfig(m *phy.Model, d units.Meter, seed uint64) Config {
	return Config{
		Model:             m,
		Distance:          d,
		Seed:              seed,
		Window:            16,
		RecomputeFrames:   256,
		FallbackSNRMargin: 3,
		SNRNoise:          1.0,
		MaxRetries:        8,
	}
}

// Stats counts session events.
type Stats struct {
	// FramesDelivered and FramesLost count data frames.
	FramesDelivered, FramesLost int
	// Retransmissions counts extra transmission attempts.
	Retransmissions int
	// PayloadBits is the delivered payload volume.
	PayloadBits float64
	// Probes counts probe frames sent.
	Probes int
	// Recomputes counts allocation recomputations.
	Recomputes int
	// Fallbacks counts emergency reversions to the active mode.
	Fallbacks int
	// ModeSwitches counts radio reconfigurations.
	ModeSwitches int
	// ModeFrames attributes delivered frames to modes.
	ModeFrames map[phy.Mode]int
	// AirTime is the cumulative on-air duration.
	AirTime units.Second
}

// Session is a braided MAC session moving data from a transmitter to a
// receiver.
type Session struct {
	cfg          Config
	rng          *rng.Stream
	txBatt       *energy.Battery
	rxBatt       *energy.Battery
	alloc        *core.Allocation
	sched        *core.Scheduler
	current      phy.Mode
	snrEWMA      map[phy.Mode]float64
	frames       int
	nextSeq      uint16
	stats        Stats
	dead         bool
	traceStarted bool
}

// NewSession creates a session, performs the active-mode battery
// exchange, probes the links, and computes the initial allocation. It
// returns an error if no mode works at the configured distance or the
// configuration is invalid.
func NewSession(cfg Config, txBatt, rxBatt *energy.Battery) (*Session, error) {
	if cfg.Model == nil || txBatt == nil || rxBatt == nil {
		return nil, errors.New("mac: session needs a model and two batteries")
	}
	if cfg.Window < 1 || cfg.RecomputeFrames < 1 || cfg.MaxRetries < 1 {
		return nil, fmt.Errorf("mac: invalid config %+v", cfg)
	}
	s := &Session{
		cfg:     cfg,
		rng:     rng.New(cfg.Seed),
		txBatt:  txBatt,
		rxBatt:  rxBatt,
		current: phy.ModeActive,
		snrEWMA: make(map[phy.Mode]float64),
	}
	s.stats.ModeFrames = make(map[phy.Mode]int)
	if !s.cfg.Model.Available(phy.ModeActive, cfg.Distance) {
		return nil, core.ErrOutOfRange
	}
	s.exchangeBattery()
	s.probeAll()
	if err := s.recompute(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns a copy of the session counters.
func (s *Session) Stats() Stats { return s.stats }

// Allocation returns the current mode allocation.
func (s *Session) Allocation() *core.Allocation { return s.alloc }

// CurrentMode returns the mode the radios are configured in.
func (s *Session) CurrentMode() phy.Mode { return s.current }

// Dead reports whether a battery has been exhausted.
func (s *Session) Dead() bool { return s.dead }

// SetDistance moves the endpoints (mobility); the session notices
// degraded SNR through its estimator and falls back / re-probes on its
// own.
func (s *Session) SetDistance(d units.Meter) { s.cfg.Distance = d }

// chargeFrame drains both sides for one frame attempt in a mode/rate and
// advances air time. The airtime is stretched by the mode's protocol
// duty overhead (the passive transmitter keeps its carrier up through
// envelope-settling gaps — phy.ProtocolEfficiency). Returns false when a
// battery died.
func (s *Session) chargeFrame(m phy.Mode, r units.BitRate, wireBits float64) bool {
	t := units.Second(wireBits / float64(r) / phy.ProtocolEfficiency(m))
	okTX := s.txBatt.DrainPower(phy.TXPower(m, r), t)
	okRX := s.rxBatt.DrainPower(phy.RXPower(m, r), t)
	s.stats.AirTime += t
	if !okTX || !okRX {
		s.dead = true
		return false
	}
	return true
}

// exchangeBattery models the initial telemetry handshake: one battery
// frame in each direction over the active radio.
func (s *Session) exchangeBattery() {
	wire := float64(frame.WireBits(2))
	s.chargeFrame(phy.ModeActive, units.Rate1M, wire)
	s.chargeFrame(phy.ModeActive, units.Rate1M, wire)
}

// refRate is the reference rate each mode's SNR estimator is kept in:
// the slowest (quietest) rate for the envelope links, 1 Mbps for the
// active radio.
func refRate(m phy.Mode) units.BitRate {
	if m == phy.ModeActive {
		return units.Rate1M
	}
	return units.Rate10k
}

// measureSNR returns a noisy per-frame SNR observation for a mode at its
// reference rate. The true channel provides the mean (memoized per
// distance — this runs once per frame); the session only ever acts on
// the noisy estimate.
func (s *Session) measureSNR(m phy.Mode) (units.DB, units.BitRate) {
	r := refRate(m)
	snr := float64(linkcache.SNR(s.cfg.Model, m, r, s.cfg.Distance))
	return units.DB(snr + s.rng.Norm()*s.cfg.SNRNoise), r
}

// estimatedSNRAt converts the reference-rate estimate to the SNR the
// mode would see at another rate, using only calibration constants (the
// per-rate noise floors), never the true distance.
func (s *Session) estimatedSNRAt(m phy.Mode, r units.BitRate) units.DB {
	est, ok := s.snrEWMA[m]
	if !ok {
		return units.DB(math.Inf(-1))
	}
	ref := refRate(m)
	// SNR(r) − SNR(ref) = noise(ref) − noise(r), and each noise floor is
	// the calibrated sensitivity minus the scheme's decode requirement.
	needRef := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(m, ref), phy.RangeBERTarget))
	needR := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(m, r), phy.RangeBERTarget))
	noiseRef := phy.Sensitivity(m, ref).Sub(needRef)
	noiseR := phy.Sensitivity(m, r).Sub(needR)
	return units.DB(est) + units.DB(noiseRef-noiseR)
}

// adaptRate picks the fastest rate whose estimated SNR clears the decode
// requirement with 1 dB of headroom — the estimator-driven equivalent of
// the oracle's BestRate.
func (s *Session) adaptRate(m phy.Mode) (units.BitRate, bool) {
	const headroom = 1.0
	rates := phy.Rates[:]
	if m == phy.ModeActive {
		rates = []units.BitRate{units.Rate1M}
	}
	for _, r := range rates {
		need := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(m, r), phy.RangeBERTarget))
		if float64(s.estimatedSNRAt(m, r)) >= float64(need)+headroom {
			return r, true
		}
	}
	return 0, false
}

// probeBits is a probe's airtime: a preamble-and-RSSI-snapshot's worth,
// far shorter than a data frame (probes run at the slow reference rate,
// so their duration is what costs energy).
const probeBits = 32

// probeAll sends probe frames over every mode and seeds the SNR
// estimators (§4.2: "The two end-points use probe packets over the two
// links to determine the SNR and bitrate parameters").
func (s *Session) probeAll() {
	for _, m := range phy.Modes {
		snr, r := s.measureSNR(m)
		s.snrEWMA[m] = float64(snr)
		s.stats.Probes++
		s.chargeFrame(m, r, probeBits)
	}
}

// characterize builds the mode links from the session's own SNR
// estimates and rate adaptation — the measured equivalent of the PHY
// oracle's Characterize, using only quantities a real endpoint has:
// probe estimates and calibration constants.
func (s *Session) characterize() []phy.ModeLink {
	var links []phy.ModeLink
	for _, m := range phy.Modes {
		r, ok := s.adaptRate(m)
		if !ok {
			continue
		}
		good := units.BitRate(float64(r) * frame.Efficiency(frame.DefaultPayload) * phy.ProtocolEfficiency(m))
		links = append(links, phy.ModeLink{
			Mode: m, Rate: r, Good: good,
			T: units.PerBit(phy.TXPower(m, r), good),
			R: units.PerBit(phy.RXPower(m, r), good),
		})
	}
	return links
}

// recompute re-solves the allocation from current battery levels and
// the measured link characterization, and rebuilds the schedule.
func (s *Session) recompute() error {
	links := s.characterize()
	if len(links) == 0 {
		return core.ErrOutOfRange
	}
	alloc, err := core.Optimize(links, s.txBatt.Remaining(), s.rxBatt.Remaining())
	if err != nil {
		return err
	}
	s.alloc = alloc
	if s.sched == nil {
		s.sched = core.NewScheduler(alloc.Links, alloc.P)
	} else {
		s.sched.Retarget(alloc.Links, alloc.P)
	}
	s.stats.Recomputes++
	return nil
}

// switchTo reconfigures the radios, charging the Table 5 overheads.
func (s *Session) switchTo(m phy.Mode, r units.BitRate) {
	if m == s.current {
		return
	}
	tx, rx := phy.SwitchCost(m, r)
	s.txBatt.Drain(tx)
	s.rxBatt.Drain(rx)
	s.current = m
	s.stats.ModeSwitches++
}

// fallback reverts to the active mode after the current mode degraded
// (§4.2: "Braidio simply falls back to the active mode if the current
// operating mode is performing poorly"), then re-probes and re-computes.
func (s *Session) fallback() error {
	s.stats.Fallbacks++
	s.switchTo(phy.ModeActive, units.Rate1M)
	s.probeAll()
	return s.recompute()
}

// SendFrame moves one data frame of the given payload size through the
// braid, retransmitting on loss. It returns whether the frame was
// delivered; delivery fails when a battery dies or the frame exceeds
// MaxRetries (which triggers fallback).
func (s *Session) SendFrame(payloadLen int) (bool, error) {
	if s.dead {
		return false, errors.New("mac: session battery exhausted")
	}
	if payloadLen < 0 || payloadLen > frame.MaxPayload {
		return false, fmt.Errorf("mac: payload %d outside [0,%d]", payloadLen, frame.MaxPayload)
	}
	if s.frames > 0 && s.frames%s.cfg.RecomputeFrames == 0 {
		// Every few recomputes, re-probe to keep estimates fresh for
		// modes the current allocation never exercises — the only way
		// to notice a link that *improved* (moving closer never
		// triggers a fallback).
		if (s.frames/s.cfg.RecomputeFrames)%2 == 0 {
			s.probeAll()
		}
		if err := s.recompute(); err != nil {
			return false, err
		}
	}
	s.frames++

	mode := s.sched.Next().Mode
	rate, ok := s.adaptRate(mode)
	if !ok {
		// The estimator says the scheduled mode no longer decodes
		// (mobility): fall back and retry on the new schedule.
		if err := s.fallback(); err != nil {
			return false, err
		}
		mode, rate = phy.ModeActive, units.Rate1M
	}
	s.switchTo(mode, rate)

	ber := linkcache.BER(s.cfg.Model, mode, rate, s.cfg.Distance)
	fer := frame.FrameErrorRate(ber, payloadLen)
	wire := float64(frame.WireBits(payloadLen))

	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		if !s.chargeFrame(mode, rate, wire) {
			return false, nil
		}
		// Update the SNR estimator with this frame's observation.
		snr, _ := s.measureSNR(mode)
		s.snrEWMA[mode] = 0.9*s.snrEWMA[mode] + 0.1*float64(snr)
		if s.rng.Float64() >= fer {
			s.stats.FramesDelivered++
			s.stats.ModeFrames[mode]++
			s.stats.PayloadBits += float64(8 * payloadLen)
			s.nextSeq++
			s.trace(mode, rate, attempt+1, true)
			s.maybeFallback(mode, rate)
			return true, nil
		}
		s.stats.Retransmissions++
	}
	s.stats.FramesLost++
	s.trace(mode, rate, s.cfg.MaxRetries+1, false)
	if err := s.fallback(); err != nil {
		return false, err
	}
	return false, nil
}

// trace emits one per-frame CSV row when tracing is enabled.
func (s *Session) trace(mode phy.Mode, rate units.BitRate, attempts int, delivered bool) {
	if s.cfg.Trace == nil {
		return
	}
	if !s.traceStarted {
		fmt.Fprintln(s.cfg.Trace, "frame,mode,rate,attempts,delivered,txJ,rxJ,snrEst")
		s.traceStarted = true
	}
	tx, rx := s.Drains()
	fmt.Fprintf(s.cfg.Trace, "%d,%v,%v,%d,%t,%.6g,%.6g,%.2f\n",
		s.frames, mode, rate, attempts, delivered,
		float64(tx), float64(rx), s.snrEWMA[mode])
}

// maybeFallback checks the estimator against the fallback margin.
func (s *Session) maybeFallback(mode phy.Mode, rate units.BitRate) {
	if mode == phy.ModeActive {
		return
	}
	// The decode requirement in dB for the mode's scheme at the range
	// target; estimates below (requirement − margin) trigger fallback.
	need := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(mode, rate), phy.RangeBERTarget))
	if s.snrEWMA[mode] < float64(need)-float64(s.cfg.FallbackSNRMargin) {
		// Ignore the error: if even active is gone we notice on the
		// next SendFrame.
		_ = s.fallback()
	}
}

// Drains returns the energy drawn so far at each side.
func (s *Session) Drains() (tx, rx units.Joule) {
	return s.txBatt.Drained(), s.rxBatt.Drained()
}

// EffectiveGoodput returns delivered payload bits per second of air time.
func (s *Session) EffectiveGoodput() units.BitRate {
	if s.stats.AirTime <= 0 {
		return 0
	}
	return units.BitRate(s.stats.PayloadBits / float64(s.stats.AirTime))
}

// LossRate returns lost frames / attempted frames.
func (s *Session) LossRate() float64 {
	total := s.stats.FramesDelivered + s.stats.FramesLost
	if total == 0 {
		return 0
	}
	return float64(s.stats.FramesLost) / float64(total)
}

// SNREstimate returns the EWMA SNR estimate for a mode (NaN before any
// probe).
func (s *Session) SNREstimate(m phy.Mode) units.DB {
	v, ok := s.snrEWMA[m]
	if !ok {
		return units.DB(math.NaN())
	}
	return units.DB(v)
}
