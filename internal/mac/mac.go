// Package mac implements the packet-level braided MAC of §4.2: the
// protocol machinery above the PHY and below the application. A Session
// performs the initial battery exchange over the active radio, probes the
// passive and backscatter links to learn their SNR and best bitrates,
// asks the carrier-offload optimizer for mode fractions, executes the
// braided schedule frame by frame (with loss, retransmission, and
// mode-switch overheads), falls back to the active mode when the current
// mode's observed SNR collapses, and periodically re-computes the
// allocation as batteries drain or the channel changes.
//
// The chunked engine in internal/core answers "how many bits until a
// battery dies" analytically; this package exists to exercise the actual
// protocol dynamics — integration tests drive mobility, battery
// depletion, and injected channel faults (internal/faults) through it.
//
// The fallback path carries hysteresis: a cooldown bounds how often the
// safety net can fire, and consecutive fallbacks impose a jittered
// exponential backoff during which only the active mode is scheduled, so
// a link sitting at its decode margin cannot flap between fallback and
// passive re-entry every few frames. A link that stays down through
// bounded recovery attempts surfaces as core.ErrLinkDead.
package mac

import (
	"errors"
	"fmt"
	"io"
	"math"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/frame"
	"braidio/internal/linkcache"
	"braidio/internal/modem"
	"braidio/internal/obs"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// ErrExhausted reports a SendFrame on a session whose battery already
// died.
var ErrExhausted = errors.New("mac: session battery exhausted")

// Walk is the mobility source a Session can be driven by: the separation
// between the endpoints as a function of time. It is structurally
// identical to sim.Walk, so any of that package's mobility models plug
// in directly (the interface is redeclared here only to keep the import
// graph acyclic — sim's tests drive mac.Sessions).
type Walk interface {
	// DistanceAt returns the separation at absolute time t ≥ 0.
	DistanceAt(t units.Second) units.Meter
}

// Config parameterizes a Session.
type Config struct {
	// Model is the calibrated PHY.
	Model *phy.Model
	// Distance is the initial separation.
	Distance units.Meter
	// Walk, when non-nil, drives the separation from the session's air
	// time: link quality is re-read from the walk at probe and recompute
	// boundaries, so BER/FER track live mobility instead of the initial
	// Distance. SetDistance still works but the walk re-asserts itself
	// at the next boundary.
	Walk Walk
	// Faults, when non-nil, injects channel impairments (burst loss,
	// jamming, carrier dropout, brownout, estimator corruption) into
	// every frame attempt and probe. Nil — and equally an empty
	// faults.Chain — leaves the channel bit-identical to the fault-free
	// path.
	Faults faults.Injector
	// Seed drives all stochastic elements (losses, SNR estimation
	// noise).
	Seed uint64
	// Window is the braided schedule window, in frames.
	Window int
	// RecomputeFrames is how often the allocation is re-solved.
	RecomputeFrames int
	// FallbackSNRMargin: when the EWMA SNR of the current mode drops
	// this far below its decode requirement, the session falls back to
	// the active mode and re-probes (§4.2's safety net).
	FallbackSNRMargin units.DB
	// FallbackCooldown is the hysteresis floor: after a fallback the
	// safety net will not fire again for this many frames (suppressed
	// triggers are counted in Stats.FallbacksSuppressed). Zero disables
	// the cooldown — the pre-hysteresis behavior.
	FallbackCooldown int
	// FallbackBackoffBase is the re-entry backoff after a *repeated*
	// fallback, measured in recompute periods: the second consecutive
	// fallback keeps the schedule active-only for Base periods, the
	// third for 2×Base, doubling up to FallbackBackoffMax, with up to
	// +50% deterministic jitter so endpoints don't re-probe in lockstep.
	// Zero disables re-entry backoff.
	FallbackBackoffBase int
	// FallbackBackoffMax caps the backoff, in recompute periods.
	FallbackBackoffMax int
	// MaxLinkStrikes bounds consecutive failed recovery attempts (an
	// active-mode frame lost after all retries, or a fallback whose
	// re-probe still finds no usable link) before SendFrame returns
	// core.ErrLinkDead. Any delivered frame resets the count. Zero
	// means a single strike is fatal.
	MaxLinkStrikes int
	// SNRNoise is the standard deviation (dB) of per-frame SNR
	// estimates.
	SNRNoise float64
	// MaxRetries bounds retransmissions per frame before the frame is
	// counted lost and the link declared degraded.
	MaxRetries int
	// Trace, when non-nil, receives one CSV row per data frame:
	// frame,mode,rate,attempts,delivered,txJ,rxJ,snrEst. A header row is
	// written first. Trace output is for offline analysis of a
	// session's braiding behaviour.
	Trace io.Writer
	// Obs, when non-nil, receives frame/fallback/backoff counters and
	// energy totals. Nil falls back to the process default recorder
	// (obs.Active, resolved once at NewSession); attaching a recorder
	// never changes session behaviour.
	Obs *obs.Recorder
}

// DefaultConfig returns the configuration used by the integration tests.
func DefaultConfig(m *phy.Model, d units.Meter, seed uint64) Config {
	return Config{
		Model:               m,
		Distance:            d,
		Seed:                seed,
		Window:              16,
		RecomputeFrames:     256,
		FallbackSNRMargin:   3,
		FallbackCooldown:    16,
		FallbackBackoffBase: 1,
		FallbackBackoffMax:  8,
		MaxLinkStrikes:      12,
		SNRNoise:            1.0,
		MaxRetries:          8,
	}
}

// Stats counts session events.
type Stats struct {
	// FramesDelivered and FramesLost count data frames.
	FramesDelivered, FramesLost int
	// Retransmissions counts extra transmission attempts.
	Retransmissions int
	// PayloadBits is the delivered payload volume.
	PayloadBits float64
	// Probes counts probe frames sent.
	Probes int
	// Recomputes counts allocation recomputations.
	Recomputes int
	// Fallbacks counts emergency reversions to the active mode.
	Fallbacks int
	// FallbacksSuppressed counts fallback triggers absorbed by the
	// hysteresis cooldown — flaps the safety net declined to chase.
	FallbacksSuppressed int
	// BackoffWaits counts recompute boundaries spent waiting out a
	// re-entry backoff (probing and re-admission deferred).
	BackoffWaits int
	// Outages counts completed loss episodes the session survived: runs
	// of one or more lost frames that ended with a delivery.
	Outages int
	// ModeSwitches counts radio reconfigurations.
	ModeSwitches int
	// ModeFrames attributes delivered frames to modes.
	ModeFrames map[phy.Mode]int
	// AirTime is the cumulative on-air duration.
	AirTime units.Second
}

// carrierLostSNR is the estimator seed for a probe that found no carrier
// at all: far below any decode requirement, so the mode is not offered
// to the optimizer until a later probe hears it again.
const carrierLostSNR = -40.0

// Session is a braided MAC session moving data from a transmitter to a
// receiver.
type Session struct {
	cfg          Config
	rng          *rng.Stream
	txBatt       *energy.Battery
	rxBatt       *energy.Battery
	alloc        *core.Allocation
	sched        *core.Scheduler
	current      phy.Mode
	snrEWMA      map[phy.Mode]float64
	dist         units.Meter
	frames       int
	nextSeq      uint16
	stats        Stats
	dead         bool
	traceStarted bool
	rec          *obs.Recorder // resolved obs.Active(cfg.Obs), may be nil

	env faults.Env // scratch, reset per attempt

	// Hysteresis and link-death state.
	lastFallback    int // frame index of the last executed fallback
	flapDeadline    int // a fallback at or before this frame is a flap
	consecFallbacks int // current flap streak
	reentryUntil    int // frame before which only active is scheduled
	strikes         int // consecutive failed recovery attempts
	inOutage        bool
	fatal           error // deferred link-death from maybeFallback
}

// NewSession creates a session, performs the active-mode battery
// exchange, probes the links, and computes the initial allocation. It
// returns an error if no mode works at the configured distance or the
// configuration is invalid.
func NewSession(cfg Config, txBatt, rxBatt *energy.Battery) (*Session, error) {
	if cfg.Model == nil || txBatt == nil || rxBatt == nil {
		return nil, errors.New("mac: session needs a model and two batteries")
	}
	if cfg.Window < 1 || cfg.RecomputeFrames < 1 || cfg.MaxRetries < 1 {
		return nil, fmt.Errorf("mac: invalid config %+v", cfg)
	}
	if cfg.FallbackCooldown < 0 || cfg.FallbackBackoffBase < 0 || cfg.FallbackBackoffMax < 0 || cfg.MaxLinkStrikes < 0 {
		return nil, fmt.Errorf("mac: negative hysteresis parameters %+v", cfg)
	}
	s := &Session{
		cfg:          cfg,
		rng:          rng.New(cfg.Seed),
		txBatt:       txBatt,
		rxBatt:       rxBatt,
		current:      phy.ModeActive,
		snrEWMA:      make(map[phy.Mode]float64),
		dist:         cfg.Distance,
		lastFallback: math.MinInt / 2,
		flapDeadline: -1,
		rec:          obs.Active(cfg.Obs),
	}
	if cfg.Walk != nil {
		s.dist = cfg.Walk.DistanceAt(0)
	}
	s.stats.ModeFrames = make(map[phy.Mode]int)
	if !s.cfg.Model.Available(phy.ModeActive, s.dist) {
		return nil, core.ErrOutOfRange
	}
	s.exchangeBattery()
	s.probeAll()
	if err := s.recompute(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns a copy of the session counters.
func (s *Session) Stats() Stats { return s.stats }

// Allocation returns the current mode allocation.
func (s *Session) Allocation() *core.Allocation { return s.alloc }

// CurrentMode returns the mode the radios are configured in.
func (s *Session) CurrentMode() phy.Mode { return s.current }

// Dead reports whether a battery has been exhausted.
func (s *Session) Dead() bool { return s.dead }

// Distance returns the separation the session currently believes in —
// the walk's value at the last probe/recompute boundary, or the static
// configuration.
func (s *Session) Distance() units.Meter { return s.dist }

// SetDistance moves the endpoints (mobility); the session notices
// degraded SNR through its estimator and falls back / re-probes on its
// own. When a Walk is configured it re-asserts itself at the next
// boundary.
func (s *Session) SetDistance(d units.Meter) {
	s.cfg.Distance = d
	s.dist = d
}

// syncDistance re-reads the walk at a probe/recompute boundary so link
// quality tracks live mobility rather than the session's initial
// separation.
func (s *Session) syncDistance() {
	if s.cfg.Walk != nil {
		s.dist = s.cfg.Walk.DistanceAt(s.stats.AirTime)
	}
}

// impair resets the session's scratch Env for one frame attempt and runs
// the configured fault chain over it. With no faults configured it is
// the identity and costs no randomness.
func (s *Session) impair(m phy.Mode, r units.BitRate, fer float64) *faults.Env {
	s.env.Reset(s.stats.AirTime, m, r, fer)
	if s.cfg.Faults != nil {
		s.cfg.Faults.Impair(&s.env)
	}
	return &s.env
}

// inBackoff reports whether the session is waiting out a re-entry
// backoff window.
func (s *Session) inBackoff() bool {
	return s.reentryUntil > 0 && s.frames < s.reentryUntil
}

// chargeFrame drains both sides for one frame attempt in a mode/rate and
// advances air time. The airtime is stretched by the mode's protocol
// duty overhead (the passive transmitter keeps its carrier up through
// envelope-settling gaps — phy.ProtocolEfficiency). Returns false when a
// battery died.
func (s *Session) chargeFrame(m phy.Mode, r units.BitRate, wireBits float64) bool {
	return s.chargeFrameScaled(m, r, wireBits, 1, 1)
}

// chargeFrameScaled is chargeFrame with per-side drain multipliers — the
// hook brownout injection applies through (a scale of exactly 1 is
// bit-identical to the unscaled path).
func (s *Session) chargeFrameScaled(m phy.Mode, r units.BitRate, wireBits, txScale, rxScale float64) bool {
	t := units.Second(wireBits / float64(r) / phy.ProtocolEfficiency(m))
	eTX := units.Joule(txScale) * units.Energy(phy.TXPower(m, r), t)
	eRX := units.Joule(rxScale) * units.Energy(phy.RXPower(m, r), t)
	okTX := s.txBatt.Drain(eTX)
	okRX := s.rxBatt.Drain(eRX)
	s.stats.AirTime += t
	if s.rec != nil {
		s.rec.AirTime.Add(float64(t))
		s.rec.ModeTime[m].Add(float64(t))
		s.rec.DrainTX.Add(float64(eTX))
		s.rec.DrainRX.Add(float64(eRX))
	}
	if !okTX || !okRX {
		s.dead = true
		return false
	}
	return true
}

// exchangeBattery models the initial telemetry handshake: one battery
// frame in each direction over the active radio.
func (s *Session) exchangeBattery() {
	wire := float64(frame.WireBits(2))
	s.chargeFrame(phy.ModeActive, units.Rate1M, wire)
	s.chargeFrame(phy.ModeActive, units.Rate1M, wire)
}

// refRate is the reference rate each mode's SNR estimator is kept in:
// the slowest (quietest) rate for the envelope links, 1 Mbps for the
// active radio.
func refRate(m phy.Mode) units.BitRate {
	if m == phy.ModeActive {
		return units.Rate1M
	}
	return units.Rate10k
}

// measureSNR returns a noisy per-frame SNR observation for a mode at its
// reference rate. The true channel provides the mean (memoized per
// distance — this runs once per frame); the session only ever acts on
// the noisy estimate.
func (s *Session) measureSNR(m phy.Mode) (units.DB, units.BitRate) {
	r := refRate(m)
	snr := float64(linkcache.SNR(s.cfg.Model, m, r, s.dist))
	return units.DB(snr + s.rng.Norm()*s.cfg.SNRNoise), r
}

// estimatedSNRAt converts the reference-rate estimate to the SNR the
// mode would see at another rate, using only calibration constants (the
// per-rate noise floors), never the true distance.
func (s *Session) estimatedSNRAt(m phy.Mode, r units.BitRate) units.DB {
	est, ok := s.snrEWMA[m]
	if !ok {
		return units.DB(math.Inf(-1))
	}
	ref := refRate(m)
	// SNR(r) − SNR(ref) = noise(ref) − noise(r), and each noise floor is
	// the calibrated sensitivity minus the scheme's decode requirement.
	needRef := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(m, ref), phy.RangeBERTarget))
	needR := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(m, r), phy.RangeBERTarget))
	noiseRef := phy.Sensitivity(m, ref).Sub(needRef)
	noiseR := phy.Sensitivity(m, r).Sub(needR)
	return units.DB(est) + units.DB(noiseRef-noiseR)
}

// adaptRate picks the fastest rate whose estimated SNR clears the decode
// requirement with 1 dB of headroom — the estimator-driven equivalent of
// the oracle's BestRate.
func (s *Session) adaptRate(m phy.Mode) (units.BitRate, bool) {
	const headroom = 1.0
	rates := phy.Rates[:]
	if m == phy.ModeActive {
		rates = []units.BitRate{units.Rate1M}
	}
	for _, r := range rates {
		need := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(m, r), phy.RangeBERTarget))
		if float64(s.estimatedSNRAt(m, r)) >= float64(need)+headroom {
			return r, true
		}
	}
	return 0, false
}

// probeBits is a probe's airtime: a preamble-and-RSSI-snapshot's worth,
// far shorter than a data frame (probes run at the slow reference rate,
// so their duration is what costs energy).
const probeBits = 32

// probeAll sends probe frames over every mode and seeds the SNR
// estimators (§4.2: "The two end-points use probe packets over the two
// links to determine the SNR and bitrate parameters"). Probes read the
// walk-driven distance and pass through the fault chain: a jammed probe
// seeds a crushed estimate, a dropped carrier seeds carrierLostSNR.
func (s *Session) probeAll() {
	s.syncDistance()
	for _, m := range phy.Modes {
		r := refRate(m)
		env := s.impair(m, r, 0)
		if env.CarrierLost {
			s.snrEWMA[m] = carrierLostSNR
		} else {
			snr, _ := s.measureSNR(m)
			s.snrEWMA[m] = float64(snr) + env.SNROffset
		}
		s.stats.Probes++
		if s.rec != nil {
			s.rec.Probes.Add(1)
		}
		s.chargeFrameScaled(m, r, probeBits, env.TXDrain, env.RXDrain)
	}
}

// characterize builds the mode links from the session's own SNR
// estimates and rate adaptation — the measured equivalent of the PHY
// oracle's Characterize, using only quantities a real endpoint has:
// probe estimates and calibration constants. During a re-entry backoff
// only the active mode is offered, so a flapping link cannot be
// re-admitted until the backoff expires.
func (s *Session) characterize() []phy.ModeLink {
	backoff := s.inBackoff()
	var links []phy.ModeLink
	for _, m := range phy.Modes {
		if backoff && m != phy.ModeActive {
			continue
		}
		r, ok := s.adaptRate(m)
		if !ok {
			continue
		}
		good := units.BitRate(float64(r) * frame.Efficiency(frame.DefaultPayload) * phy.ProtocolEfficiency(m))
		links = append(links, phy.ModeLink{
			Mode: m, Rate: r, Good: good,
			T: units.PerBit(phy.TXPower(m, r), good),
			R: units.PerBit(phy.RXPower(m, r), good),
		})
	}
	return links
}

// recompute re-solves the allocation from current battery levels and
// the measured link characterization, and rebuilds the schedule. Errors
// wrap the optimizer's typed causes (core.ErrOutOfRange,
// core.ErrDegenerateAllocation, core.ErrNoLinks, …) so callers can
// errors.Is them.
func (s *Session) recompute() error {
	s.syncDistance()
	links := s.characterize()
	if len(links) == 0 {
		return fmt.Errorf("mac: recompute: %w", core.ErrOutOfRange)
	}
	alloc, err := core.Optimize(links, s.txBatt.Remaining(), s.rxBatt.Remaining())
	if err != nil {
		return fmt.Errorf("mac: recompute allocation: %w", err)
	}
	s.alloc = alloc
	if s.sched == nil {
		s.sched = core.NewScheduler(alloc.Links, alloc.P)
	} else {
		s.sched.Retarget(alloc.Links, alloc.P)
	}
	s.stats.Recomputes++
	if s.rec != nil {
		s.rec.Recomputes.Add(1)
	}
	return nil
}

// switchTo reconfigures the radios, charging the Table 5 overheads.
func (s *Session) switchTo(m phy.Mode, r units.BitRate) {
	if m == s.current {
		return
	}
	tx, rx := phy.SwitchCost(m, r)
	s.txBatt.Drain(tx)
	s.rxBatt.Drain(rx)
	s.current = m
	s.stats.ModeSwitches++
	if s.rec != nil {
		s.rec.Switches.Add(1)
		s.rec.SwitchEnergy.Add(float64(tx + rx))
		s.rec.Trace(obs.Event{Kind: obs.EvModeSwitch, Mode: m, Round: s.frames, Member: -1, Time: float64(s.stats.AirTime)})
	}
}

// strike records one failed recovery attempt. When the configured budget
// is exhausted it converts the cause into a core.ErrLinkDead that wraps
// it; any delivered frame resets the count.
func (s *Session) strike(cause error) error {
	s.strikes++
	limit := s.cfg.MaxLinkStrikes
	if limit < 1 {
		limit = 1
	}
	if s.strikes >= limit {
		if s.rec != nil {
			s.rec.LinkDeaths.Add(1)
			s.rec.Trace(obs.Event{Kind: obs.EvLinkDead, Round: s.frames, Member: -1, Time: float64(s.stats.AirTime)})
		}
		return fmt.Errorf("%w (%d attempts): %w", core.ErrLinkDead, s.strikes, cause)
	}
	return nil
}

// fallback reverts to the active mode after the current mode degraded
// (§4.2: "Braidio simply falls back to the active mode if the current
// operating mode is performing poorly"), then re-probes and re-computes.
// Hysteresis shapes it: triggers within FallbackCooldown frames of the
// last fallback are suppressed, and a *repeated* fallback additionally
// arms a jittered exponential re-entry backoff during which only the
// active mode is scheduled. A fallback whose re-probe still finds no
// usable link counts a strike; the error is non-nil only once the strike
// budget is gone (core.ErrLinkDead).
func (s *Session) fallback() error {
	if s.frames-s.lastFallback < s.cfg.FallbackCooldown {
		s.stats.FallbacksSuppressed++
		if s.rec != nil {
			s.rec.FallbacksSuppressed.Add(1)
		}
		return nil
	}
	flap := s.frames <= s.flapDeadline
	if flap {
		s.consecFallbacks++
	} else {
		s.consecFallbacks = 1
	}
	s.lastFallback = s.frames
	s.stats.Fallbacks++
	if s.rec != nil {
		s.rec.Fallbacks.Add(1)
		s.rec.Trace(obs.Event{Kind: obs.EvFallback, Round: s.frames, Member: -1, Time: float64(s.stats.AirTime)})
	}
	s.switchTo(phy.ModeActive, units.Rate1M)
	if flap && s.cfg.FallbackBackoffBase > 0 {
		s.reentryUntil = s.frames + s.backoffFrames()
	}
	s.probeAll()
	s.flapDeadline = max(s.frames, s.reentryUntil) + 2*s.cfg.RecomputeFrames
	if err := s.recompute(); err != nil {
		return s.strike(err)
	}
	return nil
}

// backoffFrames returns the current re-entry backoff in frames:
// Base recompute periods doubling per consecutive flap, capped at
// FallbackBackoffMax periods, plus up to +50% jitter drawn from the
// session stream so paired endpoints don't re-probe in lockstep.
func (s *Session) backoffFrames() int {
	periods := s.cfg.FallbackBackoffBase << uint(min(s.consecFallbacks-2, 30))
	if s.cfg.FallbackBackoffMax > 0 && periods > s.cfg.FallbackBackoffMax {
		periods = s.cfg.FallbackBackoffMax
	}
	frames := periods * s.cfg.RecomputeFrames
	return frames + int(0.5*float64(frames)*s.rng.Float64())
}

// SendFrame moves one data frame of the given payload size through the
// braid, retransmitting on loss. It returns whether the frame was
// delivered; delivery fails when a battery dies or the frame exceeds
// MaxRetries (which triggers fallback). A link that stays down through
// bounded recovery attempts returns an error wrapping core.ErrLinkDead.
func (s *Session) SendFrame(payloadLen int) (bool, error) {
	if s.fatal != nil {
		return false, s.fatal
	}
	if s.dead {
		return false, ErrExhausted
	}
	if payloadLen < 0 || payloadLen > frame.MaxPayload {
		return false, fmt.Errorf("mac: payload %d outside [0,%d]", payloadLen, frame.MaxPayload)
	}
	if s.frames > 0 && s.frames%s.cfg.RecomputeFrames == 0 {
		if s.reentryUntil > 0 && s.frames >= s.reentryUntil {
			// Backoff expired: probe immediately so the recompute sees
			// fresh estimates and can re-admit a recovered link.
			s.reentryUntil = 0
			s.probeAll()
		} else if s.inBackoff() {
			// Waiting out the backoff: defer probing and re-admission.
			s.stats.BackoffWaits++
			if s.rec != nil {
				s.rec.BackoffWaits.Add(1)
			}
		} else if (s.frames/s.cfg.RecomputeFrames)%2 == 0 {
			// Every few recomputes, re-probe to keep estimates fresh for
			// modes the current allocation never exercises — the only way
			// to notice a link that *improved* (moving closer never
			// triggers a fallback).
			s.probeAll()
		}
		if err := s.recompute(); err != nil {
			// Keep serving on the stale allocation; the link-death
			// strike budget bounds how long this can go on.
			if ferr := s.strike(err); ferr != nil {
				return false, ferr
			}
		}
	}
	s.frames++

	mode := s.sched.Next().Mode
	rate, ok := s.adaptRate(mode)
	if !ok {
		// The estimator says the scheduled mode no longer decodes
		// (mobility): fall back and retry on the new schedule.
		if err := s.fallback(); err != nil {
			return false, err
		}
		mode, rate = phy.ModeActive, units.Rate1M
	}
	s.switchTo(mode, rate)

	ber := linkcache.BER(s.cfg.Model, mode, rate, s.dist)
	fer := frame.FrameErrorRate(ber, payloadLen)
	wire := float64(frame.WireBits(payloadLen))

	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		env := s.impair(mode, rate, fer)
		if !s.chargeFrameScaled(mode, rate, wire, env.TXDrain, env.RXDrain) {
			return false, nil
		}
		if env.CarrierLost {
			// Nothing to decode and nothing to measure; the transmitter
			// paid anyway.
			s.stats.Retransmissions++
			continue
		}
		// Update the SNR estimator with this frame's observation.
		snr, _ := s.measureSNR(mode)
		s.snrEWMA[mode] = 0.9*s.snrEWMA[mode] + 0.1*(float64(snr)+env.SNROffset)
		if s.rng.Float64() >= env.FER {
			s.stats.FramesDelivered++
			s.stats.ModeFrames[mode]++
			s.stats.PayloadBits += float64(8 * payloadLen)
			if s.rec != nil {
				s.rec.FramesDelivered.Add(1)
				s.rec.Bits.Add(float64(8 * payloadLen))
				s.rec.ModeBits[mode].Add(float64(8 * payloadLen))
				s.rec.Retransmissions.Add(uint64(attempt))
			}
			s.nextSeq++
			s.strikes = 0
			if s.inOutage {
				s.inOutage = false
				s.stats.Outages++
			}
			s.trace(mode, rate, attempt+1, true)
			s.maybeFallback(mode, rate)
			return true, nil
		}
		s.stats.Retransmissions++
	}
	s.stats.FramesLost++
	s.inOutage = true
	if s.rec != nil {
		s.rec.FramesLost.Add(1)
		s.rec.Retransmissions.Add(uint64(s.cfg.MaxRetries + 1))
	}
	s.trace(mode, rate, s.cfg.MaxRetries+1, false)
	if mode == phy.ModeActive {
		// The safety net itself is failing: burn a strike.
		if ferr := s.strike(fmt.Errorf("mac: active mode lost a frame after %d attempts", s.cfg.MaxRetries+1)); ferr != nil {
			return false, ferr
		}
	}
	if err := s.fallback(); err != nil {
		return false, err
	}
	return false, nil
}

// trace emits one per-frame CSV row when tracing is enabled.
func (s *Session) trace(mode phy.Mode, rate units.BitRate, attempts int, delivered bool) {
	if s.cfg.Trace == nil {
		return
	}
	if !s.traceStarted {
		fmt.Fprintln(s.cfg.Trace, "frame,mode,rate,attempts,delivered,txJ,rxJ,snrEst")
		s.traceStarted = true
	}
	tx, rx := s.Drains()
	fmt.Fprintf(s.cfg.Trace, "%d,%v,%v,%d,%t,%.6g,%.6g,%.2f\n",
		s.frames, mode, rate, attempts, delivered,
		float64(tx), float64(rx), s.snrEWMA[mode])
}

// maybeFallback checks the estimator against the fallback margin. A
// fatal verdict (link dead after bounded attempts) is deferred to the
// next SendFrame so the just-delivered frame still counts.
func (s *Session) maybeFallback(mode phy.Mode, rate units.BitRate) {
	if mode == phy.ModeActive {
		return
	}
	// The decode requirement in dB for the mode's scheme at the range
	// target; estimates below (requirement − margin) trigger fallback.
	need := units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(mode, rate), phy.RangeBERTarget))
	if s.snrEWMA[mode] < float64(need)-float64(s.cfg.FallbackSNRMargin) {
		if err := s.fallback(); err != nil {
			s.fatal = err
		}
	}
}

// Drains returns the energy drawn so far at each side.
func (s *Session) Drains() (tx, rx units.Joule) {
	return s.txBatt.Drained(), s.rxBatt.Drained()
}

// EffectiveGoodput returns delivered payload bits per second of air time.
func (s *Session) EffectiveGoodput() units.BitRate {
	if s.stats.AirTime <= 0 {
		return 0
	}
	return units.BitRate(s.stats.PayloadBits / float64(s.stats.AirTime))
}

// LossRate returns lost frames / attempted frames.
func (s *Session) LossRate() float64 {
	total := s.stats.FramesDelivered + s.stats.FramesLost
	if total == 0 {
		return 0
	}
	return float64(s.stats.FramesLost) / float64(total)
}

// SNREstimate returns the EWMA SNR estimate for a mode (NaN before any
// probe).
func (s *Session) SNREstimate(m phy.Mode) units.DB {
	v, ok := s.snrEWMA[m]
	if !ok {
		return units.DB(math.NaN())
	}
	return units.DB(v)
}
