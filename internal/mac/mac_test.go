package mac

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"braidio/internal/energy"
	"braidio/internal/modem"
	"braidio/internal/phy"
	"braidio/internal/units"
)

func newSession(t *testing.T, d units.Meter, c1, c2 units.WattHour) *Session {
	t.Helper()
	s, err := NewSession(DefaultConfig(phy.NewModel(), d, 42), energy.NewBattery(c1), energy.NewBattery(c2))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionDeliversFrames(t *testing.T) {
	s := newSession(t, 0.3, 0.01, 0.01)
	for i := 0; i < 500; i++ {
		ok, err := s.SendFrame(240)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("frame %d not delivered at 0.3 m", i)
		}
	}
	st := s.Stats()
	if st.FramesDelivered != 500 {
		t.Errorf("delivered %d, want 500", st.FramesDelivered)
	}
	if st.PayloadBits != 500*240*8 {
		t.Errorf("payload bits %v", st.PayloadBits)
	}
	if st.AirTime <= 0 {
		t.Error("no air time recorded")
	}
	if g := s.EffectiveGoodput(); float64(g) < 1e5 {
		t.Errorf("goodput %v implausibly low at 0.3 m", g)
	}
}

func TestSessionBraidsModes(t *testing.T) {
	s := newSession(t, 0.3, 0.01, 0.01)
	for i := 0; i < 1000; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Equal batteries at 0.3 m: passive and backscatter both carry
	// roughly half the frames.
	pas, bs := st.ModeFrames[phy.ModePassive], st.ModeFrames[phy.ModeBackscatter]
	if pas < 300 || bs < 300 {
		t.Errorf("mode frames passive=%d backscatter=%d, want ≈500 each", pas, bs)
	}
	if st.ModeSwitches == 0 {
		t.Error("braiding without mode switches")
	}
}

func TestSessionEnergySplitTracksBudgets(t *testing.T) {
	// 10:1 budgets: drains should split roughly 10:1 (the §4 example).
	s := newSession(t, 0.3, 0.01, 0.001)
	for i := 0; i < 2000; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	tx, rx := s.Drains()
	ratio := float64(tx) / float64(rx)
	if ratio < 7 || ratio > 13 {
		t.Errorf("drain ratio = %v, want ≈10", ratio)
	}
}

func TestSessionDrainsUntilDeath(t *testing.T) {
	// Tiny batteries: the session must stop with dead=true.
	s := newSession(t, 0.3, 1e-6, 1e-6)
	delivered := 0
	for i := 0; i < 100000 && !s.Dead(); i++ {
		ok, err := s.SendFrame(240)
		if err != nil {
			break
		}
		if ok {
			delivered++
		}
	}
	if !s.Dead() {
		t.Fatal("session never exhausted 1 µWh batteries")
	}
	if delivered == 0 {
		t.Error("no frames delivered before death")
	}
}

func TestSessionFallsBackOnMobility(t *testing.T) {
	s := newSession(t, 0.3, 0.01, 0.01)
	for i := 0; i < 200; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	pre := s.Stats().Fallbacks
	// Walk out of backscatter range: 0.3 m → 4 m.
	s.SetDistance(4)
	for i := 0; i < 400; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Fallbacks <= pre {
		t.Error("no fallback after moving out of backscatter range")
	}
	// After settling, frames must flow without backscatter.
	tail := st.ModeFrames[phy.ModeBackscatter]
	for i := 0; i < 200; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().ModeFrames[phy.ModeBackscatter]; got != tail {
		t.Errorf("backscatter frames kept flowing at 4 m: %d → %d", tail, got)
	}
}

func TestSessionRecovers(t *testing.T) {
	s := newSession(t, 4, 0.01, 0.01)
	for i := 0; i < 100; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	// Walk back into range A; after the next recompute the braid should
	// resume using asymmetric modes.
	s.SetDistance(0.3)
	for i := 0; i < 600; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().ModeFrames[phy.ModeBackscatter]; got == 0 {
		t.Error("no backscatter frames after returning to 0.3 m")
	}
}

func TestSessionLossAndRetransmissions(t *testing.T) {
	// Operate where the passive link has a small but real frame error
	// rate (≈3% at 2.6 m / 100 kbps) and budgets that favor using it.
	// Right at the range edge the optimizer would simply avoid the
	// lossy link — its FER is priced into the per-bit costs — so the
	// interesting regime is moderate loss, not collapse.
	cfg := DefaultConfig(phy.NewModel(), 2.6, 7)
	s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.0001))
	if err != nil {
		t.Fatal(err)
	}
	if f := s.Allocation().Fraction(phy.ModePassive); f < 0.1 {
		t.Fatalf("test premise broken: passive fraction = %v", f)
	}
	for i := 0; i < 2000 && !s.Dead(); i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Retransmissions == 0 {
		t.Error("no retransmissions on a lossy link")
	}
	if s.LossRate() > 0.05 {
		t.Errorf("loss rate %v despite retransmission", s.LossRate())
	}
}

func TestSessionProbesAndRecomputes(t *testing.T) {
	s := newSession(t, 0.3, 0.01, 0.01)
	if s.Stats().Probes < 3 {
		t.Errorf("probes = %d, want at least one per mode", s.Stats().Probes)
	}
	pre := s.Stats().Recomputes
	for i := 0; i < 600; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Recomputes <= pre {
		t.Error("no periodic recomputation")
	}
}

func TestSNREstimates(t *testing.T) {
	s := newSession(t, 0.3, 0.01, 0.01)
	for _, m := range phy.Modes {
		est := float64(s.SNREstimate(m))
		if math.IsNaN(est) {
			t.Errorf("no SNR estimate for %v after probing", m)
		}
	}
	// Backscatter at 0.3 m should be comfortably decodable.
	if est := float64(s.SNREstimate(phy.ModeBackscatter)); est < 10 {
		t.Errorf("backscatter SNR estimate %v dB at 0.3 m", est)
	}
}

func TestSessionValidation(t *testing.T) {
	m := phy.NewModel()
	if _, err := NewSession(DefaultConfig(m, 0.3, 1), nil, energy.NewBattery(1)); err == nil {
		t.Error("nil battery accepted")
	}
	bad := DefaultConfig(m, 0.3, 1)
	bad.Window = 0
	if _, err := NewSession(bad, energy.NewBattery(1), energy.NewBattery(1)); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewSession(DefaultConfig(m, 9000, 1), energy.NewBattery(1), energy.NewBattery(1)); err == nil {
		t.Error("out-of-range session accepted")
	}
	s := newSession(t, 0.3, 0.01, 0.01)
	if _, err := s.SendFrame(10000); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := s.SendFrame(-1); err == nil {
		t.Error("negative payload accepted")
	}
}

func TestSessionDeterministic(t *testing.T) {
	run := func() Stats {
		s := newSession(t, 1.0, 0.005, 0.005)
		for i := 0; i < 300; i++ {
			if _, err := s.SendFrame(240); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats()
	}
	a, b := run(), run()
	if a.FramesDelivered != b.FramesDelivered || a.Retransmissions != b.Retransmissions ||
		a.ModeSwitches != b.ModeSwitches {
		t.Errorf("same-seed sessions diverged: %+v vs %+v", a, b)
	}
}

// TestRateAdaptationMatchesOracle: after probing, the estimator-driven
// rate choice agrees with the oracle BestRate at representative
// distances (the estimate is noisy but unbiased; the 1 dB headroom only
// flips decisions within ~1 dB of a boundary).
func TestRateAdaptationMatchesOracle(t *testing.T) {
	m := phy.NewModel()
	for _, d := range []float64{0.3, 1.2, 2.0, 3.0, 4.8} {
		s, err := NewSession(DefaultConfig(m, units.Meter(d), 11),
			energy.NewBattery(0.01), energy.NewBattery(0.01))
		if err != nil {
			t.Fatal(err)
		}
		// Settle the estimator with traffic.
		for i := 0; i < 200; i++ {
			if _, err := s.SendFrame(240); err != nil {
				t.Fatal(err)
			}
		}
		for _, mode := range phy.Modes {
			oracleRate, oracleOK := m.BestRate(mode, units.Meter(d))
			adaptRate, adaptOK := s.adaptRate(mode)
			if oracleOK != adaptOK {
				// Disagreement on availability only near a boundary.
				snr := float64(m.SNR(mode, refRate(mode), units.Meter(d)))
				need := float64(units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(mode, refRate(mode)), phy.RangeBERTarget)))
				if math.Abs(snr-need) > 2.5 {
					t.Errorf("d=%v %v: oracle ok=%v adapt ok=%v far from boundary (snr %v vs need %v)",
						d, mode, oracleOK, adaptOK, snr, need)
				}
				continue
			}
			if oracleOK && oracleRate != adaptRate {
				// Same tolerance near rate boundaries.
				snr := float64(m.SNR(mode, oracleRate, units.Meter(d)))
				need := float64(units.DBFromRatio(modem.SNRForBER(phy.SchemeAt(mode, oracleRate), phy.RangeBERTarget)))
				if math.Abs(snr-need) > 2.5 {
					t.Errorf("d=%v %v: oracle %v vs adapted %v far from boundary", d, mode, oracleRate, adaptRate)
				}
			}
		}
	}
}

// TestRateAdaptationReactsToMobility: moving out collapses the
// estimated rate after fresh observations arrive.
func TestRateAdaptationReactsToMobility(t *testing.T) {
	s := newSession(t, 0.3, 0.01, 0.01)
	for i := 0; i < 100; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if r, ok := s.adaptRate(phy.ModeBackscatter); !ok || r != units.Rate1M {
		t.Fatalf("backscatter at 0.3 m adapted to %v/%v, want 1 Mbps", r, ok)
	}
	s.SetDistance(2.0) // backscatter only decodes at 10 kbps here
	for i := 0; i < 400; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	if r, ok := s.adaptRate(phy.ModeBackscatter); ok && r == units.Rate1M {
		t.Errorf("estimator still believes 1 Mbps after moving to 2 m (rate=%v ok=%v)", r, ok)
	}
}

// TestSessionTrace: the per-frame CSV trace carries one row per data
// frame plus a header, with monotone cumulative drains.
func TestSessionTrace(t *testing.T) {
	var buf strings.Builder
	cfg := DefaultConfig(phy.NewModel(), 0.3, 21)
	cfg.Trace = &buf
	s, err := NewSession(cfg, energy.NewBattery(0.01), energy.NewBattery(0.01))
	if err != nil {
		t.Fatal(err)
	}
	const frames = 50
	for i := 0; i < frames; i++ {
		if _, err := s.SendFrame(240); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != frames+1 {
		t.Fatalf("trace has %d lines, want %d", len(lines), frames+1)
	}
	if !strings.HasPrefix(lines[0], "frame,mode,rate,") {
		t.Errorf("header = %q", lines[0])
	}
	prevTX := -1.0
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 8 {
			t.Fatalf("row %q has %d fields", line, len(fields))
		}
		var tx float64
		if _, err := fmt.Sscanf(fields[5], "%g", &tx); err != nil {
			t.Fatalf("unparseable txJ in %q", line)
		}
		if tx < prevTX {
			t.Fatal("cumulative drain went backwards")
		}
		prevTX = tx
	}
}
