// Package par provides the bounded worker pool the waveform engine and
// the experiment figures share. Every parallel sweep in the module —
// Monte-Carlo BER shards, rxchain config sweeps, figure cells — fans out
// through For/ForErr, so the whole repo has exactly one concurrency
// idiom to audit: a GOMAXPROCS-bounded pool pulling indices off an
// atomic counter, with results written to caller-owned, index-addressed
// slots.
//
// Determinism contract: For(workers, n, f) calls f(i) exactly once for
// every i in [0, n). Which goroutine runs which index (and in what
// order) is unspecified, so f must write only to state owned by index i;
// merge in index order after For returns. Under that discipline the
// outcome is byte-identical at any worker count — the property the
// golden bit-identity tests pin.
package par

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs f(i) for every i in [0, n) on a pool of at most workers
// goroutines and returns when all calls have finished. workers <= 0
// selects GOMAXPROCS; the pool never exceeds n. With one worker (or
// n <= 1) it degenerates to a plain sequential loop on the calling
// goroutine, so single-core runs pay no synchronization.
func For(workers, n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For with an error per index: all indices run (no early
// stop — cells are cheap and partial sweeps are never useful), and the
// non-nil errors are joined in index order, so the aggregate error is as
// deterministic as the results.
func ForErr(workers, n int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) {
		errs[i] = f(i)
	})
	return errors.Join(errs...)
}
