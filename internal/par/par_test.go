package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 16, 100} {
		const n = 257
		var hits [n]atomic.Int32
		For(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
	}
}

func TestForEmpty(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -3, func(int) { called = true })
	if called {
		t.Error("f called for empty range")
	}
}

func TestForErrJoinsInIndexOrder(t *testing.T) {
	sentinel := errors.New("cell failed")
	for _, workers := range []int{1, 4} {
		err := ForErr(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("%w: index %d", sentinel, i)
			}
			return nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: error %v does not wrap sentinel", workers, err)
		}
		// Index-ordered join: the message lists 3 before 7.
		want := "cell failed: index 3\ncell failed: index 7"
		if err.Error() != want {
			t.Fatalf("workers=%d: error %q, want %q", workers, err.Error(), want)
		}
	}
}

func TestForErrNil(t *testing.T) {
	if err := ForErr(4, 8, func(int) error { return nil }); err != nil {
		t.Fatalf("all-nil sweep returned %v", err)
	}
	if err := ForErr(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty sweep returned %v", err)
	}
}
