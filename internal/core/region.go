package core

import (
	"math"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// EffPoint is one corner of the Fig. 9 / Fig. 14 feasible region: a
// mode's transmitter and receiver energy efficiencies in bits per joule.
type EffPoint struct {
	Mode phy.Mode
	Rate units.BitRate
	// TXBitsPerJoule and RXBitsPerJoule are the axes of Fig. 9.
	TXBitsPerJoule, RXBitsPerJoule float64
}

// EfficiencyRatio returns the TX:RX efficiency ratio (>1 favors the
// transmitter, as in backscatter's 3546:1; <1 favors the receiver, as in
// passive's 1:2546).
func (p EffPoint) EfficiencyRatio() float64 {
	return p.TXBitsPerJoule / p.RXBitsPerJoule
}

// Region is the achievable operating region at one distance: the convex
// hull of the available modes' efficiency points (the shaded triangle of
// Fig. 9, degenerating to a line or point as modes drop out — Fig. 14).
type Region struct {
	Distance units.Meter
	Points   []EffPoint
}

// RegionAt characterizes the feasible region at a distance.
func RegionAt(m *phy.Model, d units.Meter) Region {
	var r Region
	r.Distance = d
	for _, l := range m.Characterize(d) {
		r.Points = append(r.Points, EffPoint{
			Mode:           l.Mode,
			Rate:           l.Rate,
			TXBitsPerJoule: l.T.BitsPerJoule(),
			RXBitsPerJoule: l.R.BitsPerJoule(),
		})
	}
	return r
}

// Degenerate reports whether the region has collapsed below a triangle
// (fewer than three available modes).
func (r Region) Degenerate() bool { return len(r.Points) < 3 }

// RatioSpan returns the extreme TX:RX efficiency ratios achievable by
// multiplexing — the dynamic range annotations of Fig. 9 ("1:2546 to
// 3546:1"). With no links it returns (NaN, NaN).
func (r Region) RatioSpan() (minRatio, maxRatio float64) {
	if len(r.Points) == 0 {
		return math.NaN(), math.NaN()
	}
	minRatio, maxRatio = math.Inf(1), math.Inf(-1)
	for _, p := range r.Points {
		ratio := p.EfficiencyRatio()
		minRatio = math.Min(minRatio, ratio)
		maxRatio = math.Max(maxRatio, ratio)
	}
	return minRatio, maxRatio
}

// DynamicRangeOrders returns how many orders of magnitude the ratio span
// covers (the paper's "seven orders of magnitude" at 0.3 m).
func (r Region) DynamicRangeOrders() float64 {
	min, max := r.RatioSpan()
	if math.IsNaN(min) || min <= 0 {
		return 0
	}
	return math.Log10(max / min)
}

// PointP returns the efficiency point a power-proportional pair with
// energy ratio e1:e2 would operate at — the paper's point P on line BC —
// by running the optimizer with that ratio over the region's links.
func PointP(m *phy.Model, d units.Meter, e1, e2 units.Joule) (EffPoint, error) {
	alloc, err := Optimize(m.Characterize(d), e1, e2)
	if err != nil {
		return EffPoint{}, err
	}
	return EffPoint{
		Mode:           alloc.Dominant(),
		TXBitsPerJoule: alloc.TX.BitsPerJoule(),
		RXBitsPerJoule: alloc.RX.BitsPerJoule(),
	}, nil
}
