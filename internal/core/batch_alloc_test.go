//go:build !race

package core

import (
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// TestOptimizeBatchZeroAlloc gates the batch hot path: once an arena is
// warmed to capacity, a full round of Reset + re-characterize +
// OptimizeBatch + block counting must allocate nothing — the columnar
// layout exists precisely so fleet-hour rounds stop round-tripping the
// allocator. Excluded under -race (the detector instruments
// allocations) and run at Workers=1 (par.For's worker goroutines
// allocate; their bounded per-round cost is gated by the hub-level
// alloc tests, not here).
func TestOptimizeBatchZeroAlloc(t *testing.T) {
	m := phy.NewModel()
	const n = 32
	var s BatchScratch
	s.Reset(n)
	s.Cols.Reset(n)
	dists := make([]units.Meter, n)
	for k := 0; k < n; k++ {
		dists[k] = units.Meter(0.1 + 3.2*float64(k)/float64(n))
	}
	round := func() {
		s.Reset(n)
		s.Cols.Reset(n)
		for k := 0; k < n; k++ {
			m.CharacterizeColumns(&s.Cols, k, dists[k])
			s.E1[k] = 4000
			s.E2[k] = 1000
		}
		OptimizeBatch(&s, 1)
		for k := 0; k < n; k++ {
			if s.Errs[k] == nil {
				s.BlockCountsRow(k, 100)
			}
		}
	}
	round() // warm the arena once
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("batch round allocates %.1f times, want 0", allocs)
	}
}
