package core

import (
	"errors"
	"math"
	"testing"

	"braidio/internal/energy"
	"braidio/internal/phy"
	"braidio/internal/units"
)

func TestScheduleProportions(t *testing.T) {
	links := linksAt(t, 0.3)
	p := []float64{0.5, 0.25, 0.25}
	seq := Schedule(links, p, 16)
	if len(seq) != 16 {
		t.Fatalf("sequence length %d, want 16", len(seq))
	}
	counts := map[phy.Mode]int{}
	for _, m := range seq {
		counts[m]++
	}
	if counts[links[0].Mode] != 8 || counts[links[1].Mode] != 4 || counts[links[2].Mode] != 4 {
		t.Errorf("counts %v, want 8/4/4", counts)
	}
}

func TestScheduleSpreadsEvenly(t *testing.T) {
	links := linksAt(t, 0.3)
	// 50/50 two-mode split must alternate, not burst.
	seq := Schedule(links[1:], []float64{0.5, 0.5}, 8)
	for i := 2; i < len(seq); i++ {
		if seq[i] == seq[i-1] && seq[i-1] == seq[i-2] {
			t.Fatalf("three consecutive %v in a 50/50 schedule: %v", seq[i], seq)
		}
	}
}

func TestSchedulePaperExample(t *testing.T) {
	// §4.2: p = (0.5, 0.25, 0.25) → a repetition like
	// Active-Active-Passive-Backscatter. Check period-4 structure: every
	// window of 4 has 2 active, 1 passive, 1 backscatter.
	links := linksAt(t, 0.3)
	seq := Schedule(links, []float64{0.5, 0.25, 0.25}, 32)
	for w := 0; w < len(seq); w += 4 {
		counts := map[phy.Mode]int{}
		for _, m := range seq[w : w+4] {
			counts[m]++
		}
		if counts[phy.ModeActive] != 2 || counts[phy.ModePassive] != 1 || counts[phy.ModeBackscatter] != 1 {
			t.Fatalf("window %d counts %v, want 2/1/1", w/4, counts)
		}
	}
}

func TestScheduleProportionsProperty(t *testing.T) {
	links := linksAt(t, 0.3)
	for _, pRaw := range [][3]float64{{1, 0, 0}, {0.9, 0.1, 0}, {0.3, 0.3, 0.4}, {0.01, 0.98, 0.01}} {
		p := pRaw[:]
		const window = 1000
		seq := Schedule(links, p, window)
		counts := map[phy.Mode]float64{}
		for _, m := range seq {
			counts[m]++
		}
		for i, l := range links {
			got := counts[l.Mode] / window
			if math.Abs(got-p[i]) > 1.0/window+1e-9 {
				t.Errorf("mode %v share %v, want %v", l.Mode, got, p[i])
			}
		}
	}
}

func TestSchedulePanics(t *testing.T) {
	links := linksAt(t, 0.3)
	for name, f := range map[string]func(){
		"mismatched": func() { Schedule(links, []float64{1}, 4) },
		"window 0":   func() { Schedule(links, []float64{1, 0, 0}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTransitions(t *testing.T) {
	seq := []phy.Mode{phy.ModeActive, phy.ModeActive, phy.ModePassive, phy.ModeBackscatter, phy.ModeBackscatter}
	if got := Transitions(seq, phy.ModeActive); got != 2 {
		t.Errorf("transitions = %d, want 2", got)
	}
	if got := Transitions(seq, phy.ModePassive); got != 3 {
		t.Errorf("transitions with different prev = %d, want 3", got)
	}
	if got := Transitions(nil, phy.ModeActive); got != 0 {
		t.Errorf("empty sequence transitions = %d", got)
	}
}

func TestSwitchEnergyOf(t *testing.T) {
	seq := []phy.Mode{phy.ModeBackscatter, phy.ModePassive}
	rates := map[phy.Mode]units.BitRate{phy.ModeBackscatter: units.Rate10k, phy.ModePassive: units.Rate1M}
	tx, rx := SwitchEnergyOf(seq, phy.ModeActive, rates)
	wantTX := float64(phy.SwitchOverhead[phy.ModeBackscatter].TX + phy.SwitchOverhead[phy.ModePassive].TX)
	wantRX := float64(phy.SwitchOverhead[phy.ModeBackscatter].RX + phy.SwitchOverhead[phy.ModePassive].RX)
	if tx != wantTX || rx != wantRX {
		t.Errorf("switch energies %v/%v, want %v/%v", tx, rx, wantTX, wantRX)
	}
	// At 1 Mbps the backscatter handshake is 100× faster and cheaper.
	rates[phy.ModeBackscatter] = units.Rate1M
	txFast, _ := SwitchEnergyOf(seq, phy.ModeActive, rates)
	wantFast := float64(phy.SwitchOverhead[phy.ModeBackscatter].TX)/100 + float64(phy.SwitchOverhead[phy.ModePassive].TX)
	if math.Abs(txFast-wantFast) > 1e-12 {
		t.Errorf("rate-scaled switch energy %v, want %v", txFast, wantFast)
	}
	// Unknown rate falls back to the worst case.
	txUnknown, _ := SwitchEnergyOf([]phy.Mode{phy.ModeBackscatter}, phy.ModeActive, nil)
	if txUnknown != float64(phy.SwitchOverhead[phy.ModeBackscatter].TX) {
		t.Errorf("unknown-rate switch energy %v, want worst case", txUnknown)
	}
}

func TestBraidRunConservesEnergy(t *testing.T) {
	b := NewBraid(phy.NewModel(), 0.3)
	b1 := energy.NewBattery(0.001) // 3.6 J each — a quick run
	b2 := energy.NewBattery(0.001)
	res, err := b.Run(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits <= 0 {
		t.Fatal("no bits delivered")
	}
	// Drains recorded must match the batteries' accounting.
	if math.Abs(float64(res.Drain1-b1.Drained())) > 1e-9 {
		t.Errorf("drain1 %v vs battery %v", res.Drain1, b1.Drained())
	}
	if math.Abs(float64(res.Drain2-b2.Drained())) > 1e-9 {
		t.Errorf("drain2 %v vs battery %v", res.Drain2, b2.Drained())
	}
	// At least one battery is (essentially) dead.
	if b1.Fraction() > 0.01 && b2.Fraction() > 0.01 {
		t.Errorf("run stopped with both batteries alive: %v / %v", b1.Fraction(), b2.Fraction())
	}
	// Mode bits sum to the total.
	var sum float64
	for _, v := range res.ModeBits {
		sum += v
	}
	if math.Abs(sum-res.Bits) > 1 {
		t.Errorf("mode bits sum %v vs total %v", sum, res.Bits)
	}
	if res.Duration <= 0 || res.Epochs <= 0 {
		t.Errorf("duration %v, epochs %d", res.Duration, res.Epochs)
	}
}

// TestBraidMatchesAnalyticBits: with switch overheads disabled, the braid
// engine's delivered bits must match the one-shot optimizer's projection
// (the allocation is scale-free, so re-computation doesn't change it).
func TestBraidMatchesAnalyticBits(t *testing.T) {
	m := phy.NewModel()
	links := m.Characterize(0.3)
	alloc, err := Optimize(links, units.WattHour(0.01).Joules(), units.WattHour(0.002).Joules())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBraid(m, 0.3)
	b.IncludeSwitchOverhead = false
	res, err := b.RunFresh(0.01, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Bits-alloc.Bits)/alloc.Bits > 0.02 {
		t.Errorf("braid delivered %v bits, analytic projection %v", res.Bits, alloc.Bits)
	}
}

// TestBraidPowerProportional: the drains divide in proportion to the
// starting budgets (within the interior regime).
func TestBraidPowerProportional(t *testing.T) {
	b := NewBraid(phy.NewModel(), 0.3)
	for _, ratio := range []float64{1, 5, 50} {
		b1 := energy.NewBattery(units.WattHour(0.001 * ratio))
		b2 := energy.NewBattery(0.001)
		res, err := b.Run(b1, b2)
		if err != nil {
			t.Fatal(err)
		}
		score := energy.Proportionality(res.Drain1, res.Drain2,
			units.WattHour(0.001*ratio).Joules(), units.WattHour(0.001).Joules())
		if score > 0.02 {
			t.Errorf("ratio %v: proportionality deviation %v (log scale)", ratio, score)
		}
	}
}

// TestSwitchOverheadNegligible reproduces the Table 5 conclusion: the
// braid delivers essentially the same bits with overheads on.
func TestSwitchOverheadNegligible(t *testing.T) {
	m := phy.NewModel()
	with := NewBraid(m, 0.3)
	without := NewBraid(m, 0.3)
	without.IncludeSwitchOverhead = false
	r1, err := with.RunFresh(0.002, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := without.RunFresh(0.002, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Switches == 0 {
		t.Fatal("no switches recorded with braiding active")
	}
	if loss := 1 - r1.Bits/r2.Bits; loss > 0.02 {
		t.Errorf("switch overhead cost %v of throughput, want negligible", loss)
	}
}

func TestBraidOutOfRange(t *testing.T) {
	// Even the active link dies out kilometers away in free space.
	b := NewBraid(phy.NewModel(), 5000)
	_, err := b.RunFresh(1, 1)
	if !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v, want ErrOutOfRange", err)
	}
}

func TestBraidValidation(t *testing.T) {
	b := NewBraid(phy.NewModel(), 0.3)
	if _, err := b.Run(nil, energy.NewBattery(1)); err == nil {
		t.Error("nil battery should error")
	}
	b.EpochFraction = 0
	if _, err := b.RunFresh(1, 1); err == nil {
		t.Error("zero epoch fraction should error")
	}
}

// TestBraidModeMixMatchesAllocation: the realized mode bit shares track
// the optimizer's fractions.
func TestBraidModeMixMatchesAllocation(t *testing.T) {
	m := phy.NewModel()
	links := m.Characterize(0.3)
	alloc, err := Optimize(links, units.WattHour(0.003).Joules(), units.WattHour(0.001).Joules())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBraid(m, 0.3)
	res, err := b.RunFresh(0.003, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range phy.Modes {
		want := alloc.Fraction(mode)
		got := res.ModeFraction(mode)
		if math.Abs(got-want) > 0.07 {
			t.Errorf("mode %v: realized %v vs allocated %v", mode, got, want)
		}
	}
}

// TestBraidRegimeB: at 3 m the braid still works using active+passive.
func TestBraidRegimeB(t *testing.T) {
	b := NewBraid(phy.NewModel(), 3)
	res, err := b.RunFresh(0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModeBits[phy.ModeBackscatter] != 0 {
		t.Error("backscatter bits at 3 m")
	}
	if res.Bits <= 0 {
		t.Error("no bits in regime B")
	}
}

func BenchmarkBraidRun(b *testing.B) {
	m := phy.NewModel()
	for i := 0; i < b.N; i++ {
		br := NewBraid(m, 0.3)
		if _, err := br.RunFresh(0.01, 0.001); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimize(b *testing.B) {
	links := phy.NewModel().Characterize(0.3)
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(links, 7200, 3600); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveEq1(b *testing.B) {
	links := phy.NewModel().Characterize(0.3)
	for i := 0; i < b.N; i++ {
		if _, err := SolveEq1(links, 7200, 3600); err != nil {
			b.Fatal(err)
		}
	}
}
