package core

import (
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// gridBest searches the 2-simplex on a fine grid for the maximum of
// min(E1/T̄, E2/R̄) — an independent (if approximate) check of
// Optimize's vertex enumeration.
func gridBest(links []phy.ModeLink, e1, e2 units.Joule, n int) float64 {
	best := 0.0
	for i := 0; i <= n; i++ {
		for j := 0; j <= n-i; j++ {
			p := []float64{float64(i) / float64(n), float64(j) / float64(n), float64(n-i-j) / float64(n)}
			var tbar, rbar float64
			for k, l := range links {
				tbar += p[k] * float64(l.T)
				rbar += p[k] * float64(l.R)
			}
			bits := math.Min(float64(e1)/tbar, float64(e2)/rbar)
			if bits > best {
				best = bits
			}
		}
	}
	return best
}

// TestOptimizeBeatsGridSearch: the closed-form optimum must always be at
// least as good as any grid point, and the grid must come close to it
// (confirming the optimum is genuine, not an artifact of the vertex
// enumeration missing interior maxima).
func TestOptimizeBeatsGridSearch(t *testing.T) {
	links := phy.NewModel().Characterize(0.3)
	if len(links) != 3 {
		t.Fatal("need all three links")
	}
	f := func(raw uint16) bool {
		ratio := math.Pow(10, float64(raw)/65535*10-5) // 1e-5 .. 1e5
		e1 := units.Joule(3600 * ratio)
		e2 := units.Joule(3600)
		alloc, err := Optimize(links, e1, e2)
		if err != nil {
			return false
		}
		grid := gridBest(links, e1, e2, 150)
		// Optimizer never below the grid; grid within 2% of optimizer
		// (grid resolution bounds the gap).
		return alloc.Bits >= grid*(1-1e-9) && grid >= alloc.Bits*0.98
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOptimizeRegimeBGrid repeats the check with only two links (regime
// B at 3 m).
func TestOptimizeRegimeBGrid(t *testing.T) {
	links := phy.NewModel().Characterize(3)
	if len(links) != 2 {
		t.Fatal("expected two links at 3 m")
	}
	for _, ratio := range []float64{0.001, 0.3, 1, 7, 5000} {
		e1 := units.Joule(3600 * ratio)
		e2 := units.Joule(3600)
		alloc, err := Optimize(links, e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		const n = 4000
		for i := 0; i <= n; i++ {
			p := float64(i) / n
			tbar := p*float64(links[0].T) + (1-p)*float64(links[1].T)
			rbar := p*float64(links[0].R) + (1-p)*float64(links[1].R)
			bits := math.Min(float64(e1)/tbar, float64(e2)/rbar)
			if bits > best {
				best = bits
			}
		}
		if alloc.Bits < best*(1-1e-9) {
			t.Errorf("ratio %v: optimizer %v below grid %v", ratio, alloc.Bits, best)
		}
		if best < alloc.Bits*0.995 {
			t.Errorf("ratio %v: grid %v far below optimizer %v", ratio, best, alloc.Bits)
		}
	}
}

// TestOptimizeTinyBudgets: the optimizer stays finite and sane at
// microscopic budgets (sub-millijoule coin cells).
func TestOptimizeTinyBudgets(t *testing.T) {
	links := phy.NewModel().Characterize(0.3)
	alloc, err := Optimize(links, 1e-6, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Bits <= 0 || math.IsInf(alloc.Bits, 0) || math.IsNaN(alloc.Bits) {
		t.Errorf("bits = %v", alloc.Bits)
	}
}

// TestBraidTinyBatteries: the braid engine terminates gracefully on
// batteries that hold less than one scheduling window of traffic.
func TestBraidTinyBatteries(t *testing.T) {
	b := NewBraid(phy.NewModel(), 0.3)
	res, err := b.RunFresh(1e-10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits < 0 {
		t.Errorf("negative bits %v", res.Bits)
	}
}
