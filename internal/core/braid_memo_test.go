package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// TestBraidDegenerateAllocation: a custom optimizer handing back
// zero-cost links used to make maxWin NaN/Inf, drain nothing, and spin
// until the opaque convergence failure; now it fails fast with a typed
// error.
func TestBraidDegenerateAllocation(t *testing.T) {
	b := NewBraid(phy.NewModel(), 0.3)
	b.Optimizer = func(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error) {
		free := []phy.ModeLink{{Mode: phy.ModeActive, Rate: units.Rate1M, Good: units.Rate1M, T: 0, R: 0}}
		return &Allocation{Links: free, P: []float64{1}, Bits: 1e12}, nil
	}
	_, err := b.RunFresh(0.001, 0.001)
	if !errors.Is(err, ErrDegenerateAllocation) {
		t.Fatalf("err = %v, want ErrDegenerateAllocation", err)
	}
}

// TestBraidSwitchCountRounding: fractional windows must not truncate the
// switch count to zero while SwitchEnergy still charges the fractional
// cost. Run exactly half a window of a forced two-mode mix: one block
// transition at 0.5 windows rounds to one switch.
func TestBraidSwitchCountRounding(t *testing.T) {
	m := phy.NewModel()
	b := NewBraid(m, 0.3)
	b.Optimizer = func(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error) {
		if len(links) < 2 {
			t.Fatal("need two links")
		}
		p := make([]float64, len(links))
		p[0], p[1] = 0.5, 0.5
		a := &Allocation{Links: links, P: p}
		a.TX, a.RX = mixture(links, p)
		a.Bits = bitsFor(a.TX, a.RX, e1, e2)
		return a, nil
	}
	b.MaxBits = float64(8*m.PayloadLen) * float64(b.ScheduleWindow) * 0.5
	res, err := b.RunFresh(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchEnergy1 <= 0 {
		t.Fatal("no switch energy charged — test setup broken")
	}
	if res.Switches < 1 {
		t.Errorf("Switches = %d with switch energy %v charged: fractional windows truncated",
			res.Switches, res.SwitchEnergy1)
	}
}

// sameResult compares two braid results bit-for-bit.
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Bits != b.Bits || a.Duration != b.Duration ||
		a.Drain1 != b.Drain1 || a.Drain2 != b.Drain2 ||
		a.Switches != b.Switches ||
		a.SwitchEnergy1 != b.SwitchEnergy1 || a.SwitchEnergy2 != b.SwitchEnergy2 ||
		a.Epochs != b.Epochs || !reflect.DeepEqual(a.ModeBits, b.ModeBits) {
		t.Errorf("%s: results differ:\n  memo on:  %+v\n  memo off: %+v", label, a, b)
	}
}

// TestBraidMemoBitIdentical: at tolerance 0 the allocation memo may only
// fire when the battery ratio is bit-identical, so every observable of a
// run must match an unmemoized run exactly — across regimes and battery
// asymmetries.
func TestBraidMemoBitIdentical(t *testing.T) {
	m := phy.NewModel()
	for _, tc := range []struct {
		name   string
		d      units.Meter
		c1, c2 units.WattHour
	}{
		{"regimeA-balanced", 0.3, 0.002, 0.002},
		{"regimeA-asymmetric", 0.5, 0.01, 0.0005},
		{"regimeA-reverse", 0.5, 0.0005, 0.01},
		{"regimeB", 3, 0.004, 0.001},
		{"regimeC", 10, 0.002, 0.002},
	} {
		on := NewBraid(m, tc.d)
		off := NewBraid(m, tc.d)
		off.DisableAllocationMemo = true
		rOn, errOn := on.RunFresh(tc.c1, tc.c2)
		rOff, errOff := off.RunFresh(tc.c1, tc.c2)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", tc.name, errOn, errOff)
		}
		if errOn != nil {
			continue
		}
		sameResult(t, tc.name, rOn, rOff)
		if rOn.LPSolves+rOn.AllocReuses != rOn.Epochs {
			t.Errorf("%s: LPSolves %d + AllocReuses %d != Epochs %d",
				tc.name, rOn.LPSolves, rOn.AllocReuses, rOn.Epochs)
		}
		if rOff.AllocReuses != 0 {
			t.Errorf("%s: memo-off run reused %d allocations", tc.name, rOff.AllocReuses)
		}
	}
}

// TestBraidToleranceReducesSolves: a positive tolerance must reuse
// allocations across ratio drift, cutting solver invocations while
// staying close to the exact answer.
func TestBraidToleranceReducesSolves(t *testing.T) {
	m := phy.NewModel()
	exact := NewBraid(m, 0.5)
	loose := NewBraid(m, 0.5)
	loose.AllocationTolerance = 0.05
	re, err := exact.RunFresh(0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := loose.RunFresh(0.01, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if rl.LPSolves >= re.LPSolves {
		t.Errorf("tolerance 0.05 solved %d LPs, exact solved %d — no reuse", rl.LPSolves, re.LPSolves)
	}
	if rl.AllocReuses == 0 {
		t.Error("tolerance 0.05 never reused an allocation")
	}
	if diff := math.Abs(rl.Bits-re.Bits) / re.Bits; diff > 0.01 {
		t.Errorf("tolerant run delivered %v bits vs exact %v (%.2f%% off)", rl.Bits, re.Bits, 100*diff)
	}
}

// TestRatioWithin pins the memo-reuse predicate, in particular the
// drained-endpoint path: a zero memoized ratio used to make tol·memo
// zero, silently demanding exact equality and defeating reuse for
// fully-drained hubs. The tolerance must also be symmetric — the
// verdict cannot depend on which value happens to be the memo.
func TestRatioWithin(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		tol  float64
		want bool
	}{
		{"identical, zero tol", 1.5, 1.5, 0, true},
		{"different, zero tol", 1.5, 1.5000001, 0, false},
		{"within 5%", 1.0, 1.04, 0.05, true},
		{"outside 5%", 1.0, 1.06, 0.05, false},
		{"both drained", 0, 0, 0.05, true},
		{"both drained, zero tol", 0, 0, 0, true},
		{"drained memo vs live ratio", 0, 0.5, 0.05, false},
		{"near-drained pair within tol", 1e-12, 1.04e-12, 0.05, true},
		{"near-drained pair outside tol", 1e-12, 2e-12, 0.05, false},
	}
	for _, tc := range cases {
		if got := RatioWithin(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("%s: RatioWithin(%v, %v, %v) = %v, want %v", tc.name, tc.a, tc.b, tc.tol, got, tc.want)
		}
		if fwd, rev := RatioWithin(tc.a, tc.b, tc.tol), RatioWithin(tc.b, tc.a, tc.tol); fwd != rev {
			t.Errorf("%s: asymmetric verdict: (a,b)=%v but (b,a)=%v", tc.name, fwd, rev)
		}
	}
}

// TestBraidLinkCacheBypass: DisableLinkCache must not change results.
func TestBraidLinkCacheBypass(t *testing.T) {
	m := phy.NewModel()
	cached := NewBraid(m, 0.5)
	direct := NewBraid(m, 0.5)
	direct.DisableLinkCache = true
	rc, err := cached.RunFresh(0.003, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := direct.RunFresh(0.003, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "link cache on/off", rc, rd)
}
