// Package core implements the paper's primary contribution: the
// energy-aware carrier offload layer of §4. Given the characterized link
// modes at the current distance (their per-bit costs T_i and R_i at both
// endpoints) and the two endpoints' energy budgets E1 and E2, it decides
// what fraction of traffic to carry in each mode so the endpoints spend
// energy in proportion to what they have — and it runs the resulting
// braided schedule against the batteries, including mode-switch
// overheads.
//
// Two solvers are provided and cross-checked in tests:
//
//   - SolveEq1 is the paper's formulation (Eq. 1) as a linear program:
//     minimize Σ p_i (T_i + R_i) subject to Σ p_i = 1 and
//     Σ p_i T_i / Σ p_i R_i = E1/E2. Infeasible when the battery ratio
//     lies outside the span of the available modes' cost ratios.
//
//   - Optimize maximizes delivered bits min(E1/T̄, E2/R̄) directly by
//     enumerating the candidate vertices and ratio-matched edge points.
//     It always has a solution and coincides with SolveEq1 whenever the
//     power-proportional constraint is feasible (power-proportionality
//     and bit-maximization agree in the interior — the paper's point P
//     on line BC of Fig. 9).
//
// Fractions are fractions of delivered bits, which at equal mode bitrates
// equal the paper's fractions of time.
package core

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/lp"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Allocation is the output of the offload optimizer.
type Allocation struct {
	// Links are the modes considered, as characterized by the PHY.
	Links []phy.ModeLink
	// P are the bit fractions per link, aligned with Links, summing to 1.
	P []float64
	// TX and RX are the mixture's average per-bit costs at each end.
	TX, RX units.JoulesPerBit
	// Bits is the total deliverable payload bits before one endpoint
	// dies, for the budgets passed to Optimize.
	Bits float64
}

// Fraction returns the allocation fraction for a mode (zero if the mode
// is not in the allocation).
func (a *Allocation) Fraction(m phy.Mode) float64 {
	for i, l := range a.Links {
		if l.Mode == m {
			return a.P[i]
		}
	}
	return 0
}

// Dominant returns the mode carrying the largest fraction.
func (a *Allocation) Dominant() phy.Mode {
	best, bestP := phy.ModeActive, -1.0
	for i, l := range a.Links {
		if a.P[i] > bestP {
			best, bestP = l.Mode, a.P[i]
		}
	}
	return best
}

// ErrNoLinks reports that no mode is available (out of range).
var ErrNoLinks = errors.New("core: no links available")

// validateInputs rejects nonsense budgets and dead links.
func validateInputs(links []phy.ModeLink, e1, e2 units.Joule) error {
	if len(links) == 0 {
		return ErrNoLinks
	}
	if e1 <= 0 || e2 <= 0 {
		return fmt.Errorf("core: non-positive budgets %v/%v", float64(e1), float64(e2))
	}
	for _, l := range links {
		if l.T <= 0 || l.R <= 0 || math.IsInf(float64(l.T), 1) || math.IsInf(float64(l.R), 1) {
			return fmt.Errorf("core: link %v has unusable costs %v/%v", l.Mode, l.T, l.R)
		}
	}
	return nil
}

// mixture computes the average costs of a fraction vector.
func mixture(links []phy.ModeLink, p []float64) (tx, rx units.JoulesPerBit) {
	var t, r float64
	for i, l := range links {
		t += p[i] * float64(l.T)
		r += p[i] * float64(l.R)
	}
	return units.JoulesPerBit(t), units.JoulesPerBit(r)
}

// bitsFor returns deliverable bits for a mixture under budgets.
func bitsFor(tx, rx units.JoulesPerBit, e1, e2 units.Joule) float64 {
	return math.Min(float64(e1)/float64(tx), float64(e2)/float64(rx))
}

// Optimize returns the bit-maximizing allocation for the given links and
// budgets (E1 at the transmitter, E2 at the receiver).
//
// The objective min(E1/T̄, E2/R̄) is quasi-concave over the simplex, so
// the optimum is either a pure mode or a two-mode mix whose consumption
// ratio exactly matches E1:E2; Optimize enumerates all of them.
func Optimize(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error) {
	a := &Allocation{}
	if err := optimizeInto(a, links, e1, e2); err != nil {
		return nil, err
	}
	return a, nil
}

// OptimizeInto is Optimize solving into caller-owned storage: dst's P
// slice is resized in place. scratch is retained for API compatibility
// and no longer used — the enumeration tracks the winning candidate by
// index instead of materializing fraction vectors. core.Braid's
// default-optimizer path and the serve daemon's epoch planner call this
// with persistent dst buffers so a solve performs no heap allocation.
func OptimizeInto(dst *Allocation, scratch []float64, links []phy.ModeLink, e1, e2 units.Joule) error {
	_ = scratch
	return optimizeInto(dst, links, e1, e2)
}

// optimizeInto is Optimize solving into caller-owned storage: dst's P
// slice is resized in place.
//
// The enumeration tracks the winner by candidate index instead of
// materializing each candidate's fraction vector. This is bit-identical
// to mixing the full vector: a pure mode's mixture is exactly (T_i, R_i)
// and a two-mode mix has exactly two nonzero terms, and in IEEE
// arithmetic 0·x = +0 and y + (+0) = y exactly (all costs are positive),
// so the zero terms of the generic dot product never change a bit.
// Candidate order (pure modes first, then pairs i<j) and the strict
// improvement comparison are preserved, so the winner — and every output
// bit — matches the generic enumeration. The hub's golden metrics pin
// this equivalence.
func optimizeInto(dst *Allocation, links []phy.ModeLink, e1, e2 units.Joule) error {
	if err := validateInputs(links, e1, e2); err != nil {
		return err
	}
	ratio := float64(e1) / float64(e2)
	if cap(dst.P) < len(links) {
		dst.P = make([]float64, len(links))
	}
	dst.Links, dst.P = links, dst.P[:len(links)]

	bestI, bestJ := -1, -1
	bestQ := 0.0
	var bestTX, bestRX units.JoulesPerBit
	bestBits := -1.0
	// Pure modes.
	for i := range links {
		bits := bitsFor(links[i].T, links[i].R, e1, e2)
		if bits > bestBits {
			bestI, bestJ = i, -1
			bestTX, bestRX, bestBits = links[i].T, links[i].R, bits
		}
	}
	// Ratio-matched two-mode mixes: solve
	// (q·T_i + (1−q)·T_j) / (q·R_i + (1−q)·R_j) = ratio for q ∈ (0,1).
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			ai := float64(links[i].T) - ratio*float64(links[i].R)
			aj := float64(links[j].T) - ratio*float64(links[j].R)
			den := ai - aj
			if den == 0 {
				continue
			}
			q := -aj / den
			if q <= 0 || q >= 1 {
				continue
			}
			qj := 1 - q
			var t, r float64
			t += q * float64(links[i].T)
			t += qj * float64(links[j].T)
			r += q * float64(links[i].R)
			r += qj * float64(links[j].R)
			tx, rx := units.JoulesPerBit(t), units.JoulesPerBit(r)
			bits := bitsFor(tx, rx, e1, e2)
			if bits > bestBits {
				bestI, bestJ, bestQ = i, j, q
				bestTX, bestRX, bestBits = tx, rx, bits
			}
		}
	}
	for k := range dst.P {
		dst.P[k] = 0
	}
	if bestJ < 0 {
		dst.P[bestI] = 1
	} else {
		dst.P[bestI], dst.P[bestJ] = bestQ, 1-bestQ
	}
	dst.TX, dst.RX, dst.Bits = bestTX, bestRX, bestBits
	return nil
}

// scaleRowMax normalizes a matrix row by its largest magnitude. Per-bit
// costs sit many orders of magnitude below 1, which puts the Eq. (1)
// proportionality row's entries near the simplex solver's absolute
// pivot tolerance and lets a near-eps pivot corrupt the well-scaled
// Σp = 1 row. Both the row (= 0) and the objective are invariant under
// positive scaling, so SolveEq1 and SolveEq1Batch normalize each by its
// largest magnitude — through this one function, so the two paths stay
// bit-identical.
func scaleRowMax(row []float64) {
	maxAbs := 0.0
	for _, v := range row {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		for i := range row {
			row[i] /= maxAbs
		}
	}
}

// SolveEq1 solves the paper's Eq. 1 exactly via the simplex solver:
// minimize total per-bit cost subject to power-proportional consumption.
// It returns lp.ErrInfeasible when the battery ratio is outside the
// achievable span (the regime where Optimize clamps to a pure mode).
func SolveEq1(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error) {
	if err := validateInputs(links, e1, e2); err != nil {
		return nil, err
	}
	ratio := float64(e1) / float64(e2)
	n := len(links)
	c := make([]float64, n)
	aRow := make([]float64, n)
	ones := make([]float64, n)
	for i, l := range links {
		c[i] = float64(l.T) + float64(l.R)
		aRow[i] = float64(l.T) - ratio*float64(l.R)
		ones[i] = 1
	}
	scaleRowMax(aRow)
	scaleRowMax(c)
	sol, err := lp.Solve(&lp.Problem{C: c, A: [][]float64{ones, aRow}, B: []float64{1, 0}})
	if err != nil {
		return nil, err
	}
	alloc := &Allocation{Links: links, P: sol.X}
	alloc.TX, alloc.RX = mixture(links, sol.X)
	alloc.Bits = bitsFor(alloc.TX, alloc.RX, e1, e2)
	return alloc, nil
}

// BestSingleMode returns the pure-mode allocation maximizing bits — the
// Fig. 16 baseline ("the best of the three modes in isolation").
func BestSingleMode(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error) {
	if err := validateInputs(links, e1, e2); err != nil {
		return nil, err
	}
	best := &Allocation{Links: links, P: make([]float64, len(links)), Bits: -1}
	for i := range links {
		bits := bitsFor(links[i].T, links[i].R, e1, e2)
		if bits > best.Bits {
			for j := range best.P {
				best.P[j] = 0
			}
			best.P[i] = 1
			best.TX, best.RX, best.Bits = links[i].T, links[i].R, bits
		}
	}
	return best, nil
}

// SingleMode returns the pure allocation for one specific mode, if
// available in links.
func SingleMode(links []phy.ModeLink, m phy.Mode, e1, e2 units.Joule) (*Allocation, error) {
	if err := validateInputs(links, e1, e2); err != nil {
		return nil, err
	}
	for i, l := range links {
		if l.Mode != m {
			continue
		}
		a := &Allocation{Links: links, P: make([]float64, len(links))}
		a.P[i] = 1
		a.TX, a.RX = l.T, l.R
		a.Bits = bitsFor(l.T, l.R, e1, e2)
		return a, nil
	}
	return nil, fmt.Errorf("core: mode %v not available", m)
}
