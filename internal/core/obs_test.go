package core

import (
	"math"
	"reflect"
	"testing"

	"braidio/internal/obs"
	"braidio/internal/phy"
)

// TestBraidRecorderObservational proves attaching a recorder changes no
// bits of the Result, and that the recorder's totals agree with it.
func TestBraidRecorderObservational(t *testing.T) {
	bare, err := NewBraid(phy.NewModel(), 0.5).RunFresh(1, 10)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	br := NewBraid(phy.NewModel(), 0.5)
	br.Obs = rec
	got, err := br.RunFresh(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, got) {
		t.Errorf("recorder changed the Result:\nbare: %+v\nwith: %+v", bare, got)
	}

	s := rec.Snapshot()
	if s.BraidRuns != 1 {
		t.Errorf("BraidRuns = %d, want 1", s.BraidRuns)
	}
	if s.Epochs != uint64(got.Epochs) || s.LPSolves != uint64(got.LPSolves) || s.AllocReuses != uint64(got.AllocReuses) {
		t.Errorf("solver counters (%d/%d/%d) disagree with Result (%d/%d/%d)",
			s.Epochs, s.LPSolves, s.AllocReuses, got.Epochs, got.LPSolves, got.AllocReuses)
	}
	if s.Switches != uint64(got.Switches) {
		t.Errorf("Switches = %d, want %d", s.Switches, got.Switches)
	}
	// Fixed-point totals: within half a quantization unit of the Result.
	checks := []struct {
		name      string
		rec, want float64
		tol       float64
	}{
		{"Bits", s.Bits, got.Bits, 1.0 / 256},
		{"AirTime", s.AirTime, float64(got.Duration), 1e-6},
		{"DrainTX", s.DrainTX, float64(got.Drain1), 1e-9},
		{"DrainRX", s.DrainRX, float64(got.Drain2), 1e-9},
		{"SwitchEnergy", s.SwitchEnergy, float64(got.SwitchEnergy1 + got.SwitchEnergy2), 1e-9},
	}
	for _, c := range checks {
		if math.Abs(c.rec-c.want) > c.tol {
			t.Errorf("%s = %v, want %v (±%v)", c.name, c.rec, c.want, c.tol)
		}
	}
	for m, bits := range got.ModeBits {
		if math.Abs(s.ModeBits[m]-bits) > 1.0/256 {
			t.Errorf("ModeBits[%v] = %v, want %v", m, s.ModeBits[m], bits)
		}
	}
	if s.EnergyPerBit.Count != 1 {
		t.Errorf("EnergyPerBit.Count = %d, want 1", s.EnergyPerBit.Count)
	}
	if s.LPSolveLatency.Count != uint64(got.LPSolves) {
		t.Errorf("LPSolveLatency.Count = %d, want %d solves", s.LPSolveLatency.Count, got.LPSolves)
	}
	// Mode *time* fractions must sum to 1 over a completed run.
	var timeSum float64
	for _, m := range phy.Modes {
		timeSum += s.ModeTimeFraction(m)
	}
	if math.Abs(timeSum-1) > 1e-3 {
		t.Errorf("mode time fractions sum to %v, want 1", timeSum)
	}
}

// TestBraidDefaultRecorder checks the process-default fallback: a braid
// with no explicit recorder reports to obs.Default.
func TestBraidDefaultRecorder(t *testing.T) {
	rec := obs.NewRecorder()
	obs.SetDefault(rec)
	defer obs.SetDefault(nil)
	if _, err := NewBraid(phy.NewModel(), 0.5).RunFresh(0.1, 1); err != nil {
		t.Fatal(err)
	}
	if rec.BraidRuns.Load() != 1 {
		t.Errorf("default recorder saw %d braid runs, want 1", rec.BraidRuns.Load())
	}
}
