package core

import (
	"math"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// TestRegionAtShortRange reproduces the Fig. 9 geometry: a triangle at
// 0.3 m whose corners carry the published efficiency ratios and whose
// span covers seven orders of magnitude.
func TestRegionAtShortRange(t *testing.T) {
	m := phy.NewModel()
	region := RegionAt(m, 0.3)
	if region.Degenerate() {
		t.Fatal("region at 0.3 m should be a full triangle")
	}
	if len(region.Points) != 3 {
		t.Fatalf("region has %d corners", len(region.Points))
	}
	min, max := region.RatioSpan()
	if !approx(min, 1.0/2546, 0.01) {
		t.Errorf("min ratio = %v, want 1:2546", min)
	}
	if !approx(max, 3546, 0.02) {
		t.Errorf("max ratio = %v, want 3546:1", max)
	}
	if orders := region.DynamicRangeOrders(); math.Abs(orders-6.96) > 0.1 {
		t.Errorf("dynamic range = %v orders, want ≈7", orders)
	}
	// Each corner's ratio agrees with its own EfficiencyRatio accessor.
	for _, p := range region.Points {
		want := p.TXBitsPerJoule / p.RXBitsPerJoule
		if got := p.EfficiencyRatio(); got != want {
			t.Errorf("%v: EfficiencyRatio = %v, want %v", p.Mode, got, want)
		}
	}
}

// TestRegionDegenerates tracks Fig. 14: triangle → line → point → empty.
func TestRegionDegenerates(t *testing.T) {
	m := phy.NewModel()
	cases := []struct {
		d    units.Meter
		want int
	}{{0.3, 3}, {3, 2}, {6, 1}, {5000, 0}}
	for _, c := range cases {
		region := RegionAt(m, c.d)
		if len(region.Points) != c.want {
			t.Errorf("region at %v m has %d corners, want %d", c.d, len(region.Points), c.want)
		}
		if c.want < 3 && !region.Degenerate() {
			t.Errorf("region at %v m should be degenerate", c.d)
		}
	}
	// Empty region edge cases.
	empty := RegionAt(m, 5000)
	if min, max := empty.RatioSpan(); !math.IsNaN(min) || !math.IsNaN(max) {
		t.Errorf("empty region span = %v..%v, want NaN", min, max)
	}
	if empty.DynamicRangeOrders() != 0 {
		t.Error("empty region orders should be 0")
	}
}

// TestPointP reproduces the Fig. 9 annotation: a 100:1 pair operates at
// a point on line BC, dominated by the passive mode (the TX-rich side
// carries the carrier).
func TestPointP(t *testing.T) {
	m := phy.NewModel()
	p, err := PointP(m, 0.3, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != phy.ModePassive {
		t.Errorf("point P dominant mode = %v, want passive", p.Mode)
	}
	// Power-proportional: the efficiency ratio is the budget ratio
	// inverted (TX spends 100× ⇒ 100× fewer bits per joule).
	if got := p.TXBitsPerJoule / p.RXBitsPerJoule; !approx(got, 0.01, 1e-3) {
		t.Errorf("P efficiency ratio = %v, want 0.01", got)
	}
	if _, err := PointP(m, 5000, 1, 1); err == nil {
		t.Error("out-of-range point P should error")
	}
}

// TestSchedulerConvergesExactly: the persistent scheduler realizes
// arbitrary fractions exactly in the long run, including ones far below
// the window resolution.
func TestSchedulerConvergesExactly(t *testing.T) {
	links := linksAt(t, 0.3)
	p := []float64{0.003, 0.75, 0.247}
	s := NewScheduler(links, p)
	counts := map[phy.Mode]float64{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Next().Mode]++
	}
	for i, l := range links {
		got := counts[l.Mode] / n
		if math.Abs(got-p[i]) > 2e-4 {
			t.Errorf("%v share = %v, want %v", l.Mode, got, p[i])
		}
	}
}

func TestSchedulerRetarget(t *testing.T) {
	links := linksAt(t, 0.3)
	s := NewScheduler(links, []float64{1, 0, 0})
	for i := 0; i < 10; i++ {
		if got := s.Next().Mode; got != links[0].Mode {
			t.Fatalf("pre-retarget slot %d = %v", i, got)
		}
	}
	s.Retarget(links, []float64{0, 1, 0})
	for i := 0; i < 10; i++ {
		if got := s.Next().Mode; got != links[1].Mode {
			t.Fatalf("post-retarget slot %d = %v", i, got)
		}
	}
}

func TestSchedulerPanics(t *testing.T) {
	links := linksAt(t, 0.3)
	for name, f := range map[string]func(){
		"new mismatch":      func() { NewScheduler(links, []float64{1}) },
		"retarget mismatch": func() { NewScheduler(links, []float64{1, 0, 0}).Retarget(links, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestScheduleBlocksRounding(t *testing.T) {
	links := linksAt(t, 0.3)
	// Fractions that don't divide the window evenly still fill it.
	seq := ScheduleBlocks(links, []float64{0.33, 0.33, 0.34}, 10)
	if len(seq) != 10 {
		t.Fatalf("block schedule length %d", len(seq))
	}
	if tr := Transitions(seq, seq[0]); tr > 2 {
		t.Errorf("block schedule has %d transitions, want ≤2", tr)
	}
}

func TestModeFractionEmpty(t *testing.T) {
	var r Result
	if r.ModeFraction(phy.ModeActive) != 0 {
		t.Error("empty result fraction should be 0")
	}
}
