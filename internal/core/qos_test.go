package core

import (
	"errors"
	"math"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

func TestQoSNoConstraintEqualsOptimize(t *testing.T) {
	links := linksAt(t, 0.3)
	plain, err := Optimize(links, 7200, 3600)
	if err != nil {
		t.Fatal(err)
	}
	qos, err := OptimizeQoS(links, 7200, 3600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Bits-qos.Bits) > 1e-6 {
		t.Errorf("zero-rate QoS %v != plain %v", qos.Bits, plain.Bits)
	}
}

// TestQoSLooseConstraint: at 0.3 m every link runs ~900 kbps goodput, so
// a 200 kbps floor changes nothing.
func TestQoSLooseConstraint(t *testing.T) {
	links := linksAt(t, 0.3)
	plain, _ := Optimize(links, 7200, 3600)
	qos, err := OptimizeQoS(links, 7200, 3600, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Bits-qos.Bits)/plain.Bits > 1e-6 {
		t.Errorf("loose QoS changed the solution: %v vs %v", qos.Bits, plain.Bits)
	}
	if qos.Throughput() < 200_000 {
		t.Errorf("throughput %v below the floor", qos.Throughput())
	}
}

// TestQoSBindsAtMidRange: at 2.0 m backscatter only runs 10 kbps. A
// small battery streaming 300 kbps video to a phone cannot use it, even
// though power-proportionality wants it; the QoS optimizer drops the
// slow mode and pays with lifetime.
func TestQoSBindsAtMidRange(t *testing.T) {
	links := linksAt(t, 2.0)
	e1, e2 := units.Joule(720), units.Joule(23580) // band → phone
	plain, err := Optimize(links, e1, e2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fraction(phy.ModeBackscatter) == 0 {
		t.Skip("premise: plain optimizer should braid some 10 kbps backscatter here")
	}
	qos, err := OptimizeQoS(links, e1, e2, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if qos.Throughput() < 300_000*0.999 {
		t.Errorf("QoS throughput %v below the 300 kbps floor", qos.Throughput())
	}
	// The floor costs delivered bits relative to unconstrained braiding.
	if qos.Bits > plain.Bits {
		t.Errorf("QoS delivered more bits (%v) than unconstrained (%v)?", qos.Bits, plain.Bits)
	}
	// And it sheds the slow mode (nearly) entirely: the residual 10 kbps
	// share is bounded by the throughput algebra.
	if f := qos.Fraction(phy.ModeBackscatter); f > 0.05 {
		t.Errorf("QoS kept %v backscatter@10k under a 300 kbps floor", f)
	}
}

// TestQoSRateUnreachable: beyond every link's speed.
func TestQoSRateUnreachable(t *testing.T) {
	links := linksAt(t, 0.3)
	_, err := OptimizeQoS(links, 3600, 3600, 10_000_000)
	if !errors.Is(err, ErrRateUnreachable) {
		t.Errorf("err = %v, want ErrRateUnreachable", err)
	}
}

// TestQoSFallbackKeepsDeadline: when power-proportionality and the rate
// floor conflict, the deadline wins and the mixture stays rate-feasible.
func TestQoSFallbackKeepsDeadline(t *testing.T) {
	links := linksAt(t, 2.0)
	// An extreme battery ratio whose proportional point needs lots of
	// slow backscatter.
	qos, err := OptimizeQoS(links, 1, 1e9, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if qos.Throughput() < 300_000*0.999 {
		t.Errorf("fallback mixture throughput %v below floor", qos.Throughput())
	}
	sum := 0.0
	for _, p := range qos.P {
		if p < -1e-9 {
			t.Errorf("negative fraction %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("fractions sum to %v", sum)
	}
}

// TestQoSMonotoneInRate: tightening the floor never increases delivered
// bits.
func TestQoSMonotoneInRate(t *testing.T) {
	links := linksAt(t, 2.0)
	e1, e2 := units.Joule(720), units.Joule(23580)
	prev := math.Inf(1)
	for _, rate := range []units.BitRate{0, 100_000, 300_000, 600_000, 900_000} {
		qos, err := OptimizeQoS(links, e1, e2, rate)
		if err != nil {
			t.Fatalf("rate %v: %v", rate, err)
		}
		if qos.Bits > prev*(1+1e-9) {
			t.Errorf("bits increased as the floor tightened to %v", rate)
		}
		prev = qos.Bits
	}
}

func TestAllocationThroughput(t *testing.T) {
	links := linksAt(t, 0.3)
	alloc, _ := Optimize(links, 3600, 3600)
	th := alloc.Throughput()
	// All links at ~900 kbps goodput (passive a bit lower): mixture in
	// the 800–940 kbps band.
	if float64(th) < 0.6e6 || float64(th) > 1e6 {
		t.Errorf("throughput = %v", th)
	}
	empty := &Allocation{Links: links, P: []float64{0, 0, 0}}
	if empty.Throughput() != 0 {
		t.Error("empty allocation throughput should be 0")
	}
}
