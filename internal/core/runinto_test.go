package core

import (
	"math"
	"reflect"
	"testing"

	"braidio/internal/energy"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// runBoth runs the same braid configuration through Run (fresh result,
// throwaway scratch) and through RunInto with the caller's persistent
// scratch, returning both results.
func runBoth(t *testing.T, b *Braid, s *RunScratch, c1, c2 units.WattHour, res *Result) *Result {
	t.Helper()
	want, err := b.Run(energy.NewBattery(c1), energy.NewBattery(c2))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RunInto(res, s, energy.NewBattery(c1), energy.NewBattery(c2)); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRunIntoMatchesRun: RunInto with a reused scratch and result is
// bit-identical to Run, across repeated calls, distances, and MaxBits
// caps — the contract that lets the hub's fleet engine reuse one
// scratch per member for thousands of rounds.
func TestRunIntoMatchesRun(t *testing.T) {
	m := phy.NewModel()
	var s RunScratch
	var res Result
	for _, tc := range []struct {
		d       units.Meter
		maxBits float64
	}{
		{0.4, 0}, {0.4, 5e5}, {1.2, 1e6}, {0.4, 5e5}, {2.0, 0}, {0.4, 5e5},
	} {
		b := NewBraid(m, tc.d)
		b.MaxBits = tc.maxBits
		want := runBoth(t, b, &s, 0.05, 0.8, &res)
		if !reflect.DeepEqual(*want, res) {
			t.Errorf("d=%v maxBits=%v: RunInto diverged from Run:\n got %+v\nwant %+v",
				float64(tc.d), tc.maxBits, res, *want)
		}
	}
}

// TestRunIntoCrossRunMemo: with persistent scratch, a second run from
// the same battery state reuses the previous run's allocation instead
// of re-solving — and still produces identical totals.
func TestRunIntoCrossRunMemo(t *testing.T) {
	m := phy.NewModel()
	b := NewBraid(m, 0.4)
	b.MaxBits = 1e5

	var s RunScratch
	var r1, r2 Result
	if err := b.RunInto(&r1, &s, energy.NewBattery(0.05), energy.NewBattery(0.8)); err != nil {
		t.Fatal(err)
	}
	if err := b.RunInto(&r2, &s, energy.NewBattery(0.05), energy.NewBattery(0.8)); err != nil {
		t.Fatal(err)
	}
	if r1.Bits != r2.Bits || r1.Drain1 != r2.Drain1 || r1.Drain2 != r2.Drain2 {
		t.Errorf("identical reruns diverged: %+v vs %+v", r1, r2)
	}
	// The second run starts from the exact same battery ratio, so its
	// first epoch must come from the memo carried across runs.
	if r2.AllocReuses < r1.AllocReuses {
		t.Errorf("cross-run memo never fired: run1 %d reuses, run2 %d", r1.AllocReuses, r2.AllocReuses)
	}
	if r2.LPSolves > r1.LPSolves {
		t.Errorf("scratch reuse increased solves: %d -> %d", r1.LPSolves, r2.LPSolves)
	}
}

// TestRunIntoQoSOptimizer: the custom-optimizer path through RunInto
// matches Run for a QoS-constrained braid.
func TestRunIntoQoSOptimizer(t *testing.T) {
	m := phy.NewModel()
	b := NewBraid(m, 2.0)
	b.MaxBits = 2e5
	b.Optimizer = func(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error) {
		return OptimizeQoS(links, e1, e2, 300000)
	}
	var s RunScratch
	var res Result
	want := runBoth(t, b, &s, 0.2, 6.55, &res)
	if math.Abs(want.Bits-res.Bits) > 0 || want.Drain1 != res.Drain1 {
		t.Errorf("QoS RunInto diverged: %+v vs %+v", res, *want)
	}
}
