package core

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/energy"
	"braidio/internal/frame"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Braid runs the carrier-offload layer against a pair of batteries: it
// periodically re-solves the allocation for the current energy levels
// (§4.2: "Braidio also periodically re-computes the ratio"), executes the
// braided schedule, charges mode-switch overheads, and drains both sides
// until one dies.
type Braid struct {
	// Model is the calibrated PHY.
	Model *phy.Model
	// Distance between the endpoints.
	Distance units.Meter
	// ScheduleWindow is the number of frames per scheduling window.
	ScheduleWindow int
	// EpochFraction is the fraction of the currently projected lifetime
	// transferred between allocation re-computations.
	EpochFraction float64
	// IncludeSwitchOverhead charges the Table 5 energies per mode
	// transition. The ablation bench turns this off.
	IncludeSwitchOverhead bool
	// Interleave uses the even-spread schedule instead of the default
	// contiguous blocks; it smooths instantaneous drain at the price of
	// a switch per frame boundary (the scheduler ablation).
	Interleave bool
	// Optimizer picks the allocation each epoch; nil means Optimize.
	// The Fig. 16 baseline passes BestSingleMode-derived optimizers.
	Optimizer func(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error)
	// MaxBits, when positive, stops the run after that many delivered
	// bits instead of waiting for a battery to die — used to interleave
	// directions in bidirectional scenarios.
	MaxBits float64
}

// NewBraid returns a Braid with the defaults used by the evaluation.
func NewBraid(m *phy.Model, d units.Meter) *Braid {
	return &Braid{
		Model:                 m,
		Distance:              d,
		ScheduleWindow:        128,
		EpochFraction:         0.02,
		IncludeSwitchOverhead: true,
	}
}

// Result summarizes a braid run.
type Result struct {
	// Bits is the total payload bits delivered.
	Bits float64
	// Duration is the on-air time spent.
	Duration units.Second
	// Drain1 and Drain2 are the energies drawn at transmitter and
	// receiver.
	Drain1, Drain2 units.Joule
	// ModeBits attributes delivered bits to modes.
	ModeBits map[phy.Mode]float64
	// Switches counts mode transitions; SwitchEnergy1/2 their cost.
	Switches                     int
	SwitchEnergy1, SwitchEnergy2 units.Joule
	// Epochs counts allocation re-computations.
	Epochs int
}

// ModeFraction returns the fraction of bits carried by a mode.
func (r *Result) ModeFraction(m phy.Mode) float64 {
	if r.Bits == 0 {
		return 0
	}
	return r.ModeBits[m] / r.Bits
}

// ErrOutOfRange reports that no mode works at the configured distance.
var ErrOutOfRange = errors.New("core: no mode available at this distance")

// Run drains the two batteries (b1 at the data transmitter, b2 at the
// data receiver) until either is empty, returning the totals. The
// batteries are mutated.
func (b *Braid) Run(b1, b2 *energy.Battery) (*Result, error) {
	if b.Model == nil || b1 == nil || b2 == nil {
		return nil, errors.New("core: braid needs a model and two batteries")
	}
	if b.ScheduleWindow < 1 || b.EpochFraction <= 0 || b.EpochFraction > 1 {
		return nil, fmt.Errorf("core: invalid braid parameters window=%d epoch=%v", b.ScheduleWindow, b.EpochFraction)
	}
	links := b.Model.Characterize(b.Distance)
	if len(links) == 0 {
		return nil, ErrOutOfRange
	}
	optimize := b.Optimizer
	if optimize == nil {
		optimize = Optimize
	}

	payloadBits := float64(8 * b.Model.PayloadLen)
	res := &Result{ModeBits: make(map[phy.Mode]float64)}
	prevMode := phy.ModeActive // sessions start on the active radio (§4.2)

	const maxEpochs = 1_000_000
	for !b1.Empty() && !b2.Empty() {
		if res.Epochs >= maxEpochs {
			return nil, errors.New("core: braid failed to converge")
		}
		alloc, err := optimize(links, b1.Remaining(), b2.Remaining())
		if err != nil {
			return nil, err
		}
		if alloc.Bits <= 0 || math.IsNaN(alloc.Bits) {
			break
		}
		res.Epochs++

		// Target bits this epoch: a slice of the projected lifetime, at
		// least one scheduling window so the loop always advances.
		epochBits := alloc.Bits * b.EpochFraction
		if min := payloadBits * float64(b.ScheduleWindow); epochBits < min {
			epochBits = min
		}
		if b.MaxBits > 0 {
			left := b.MaxBits - res.Bits
			if left <= 0 {
				break
			}
			if epochBits > left {
				epochBits = left
			}
		}

		// Expand one scheduling window to cost the braiding precisely.
		var seq []phy.Mode
		if b.Interleave {
			seq = Schedule(alloc.Links, alloc.P, b.ScheduleWindow)
		} else {
			seq = ScheduleBlocks(alloc.Links, alloc.P, b.ScheduleWindow)
		}
		windowBits := payloadBits * float64(b.ScheduleWindow)
		windows := epochBits / windowBits

		// Per-window energies: data plus (optionally) switch overheads.
		var winTX, winRX, winTime float64
		counts := make(map[phy.Mode]int, len(alloc.Links))
		for _, m := range seq {
			counts[m]++
		}
		for _, l := range alloc.Links {
			n := float64(counts[l.Mode])
			if n == 0 {
				continue
			}
			winTX += n * payloadBits * float64(l.T)
			winRX += n * payloadBits * float64(l.R)
			winTime += n * payloadBits / float64(l.Good)
		}
		transitions := Transitions(seq, prevMode)
		var swTX, swRX float64
		if b.IncludeSwitchOverhead {
			rates := make(map[phy.Mode]units.BitRate, len(alloc.Links))
			for _, l := range alloc.Links {
				rates[l.Mode] = l.Rate
			}
			swTX, swRX = SwitchEnergyOf(seq, prevMode, rates)
		}
		winTX += swTX
		winRX += swRX

		// How many whole windows fit in both remaining budgets?
		maxWin := math.Min(float64(b1.Remaining())/winTX, float64(b2.Remaining())/winRX)
		partial := false
		if windows > maxWin {
			windows = maxWin
			partial = true
		}
		if windows <= 0 {
			break
		}

		b1.Drain(units.Joule(windows * winTX))
		b2.Drain(units.Joule(windows * winRX))
		res.Drain1 += units.Joule(windows * winTX)
		res.Drain2 += units.Joule(windows * winRX)
		res.Bits += windows * windowBits
		res.Duration += units.Second(windows * winTime)
		res.Switches += int(windows * float64(transitions))
		res.SwitchEnergy1 += units.Joule(windows * swTX)
		res.SwitchEnergy2 += units.Joule(windows * swRX)
		for _, l := range alloc.Links {
			res.ModeBits[l.Mode] += windows * payloadBits * float64(counts[l.Mode])
		}
		prevMode = seq[len(seq)-1]
		if partial {
			break // one side is exhausted to within a rounding sliver
		}
	}
	return res, nil
}

// RunFresh creates full batteries of the given capacities and runs the
// braid over them, returning the result.
func (b *Braid) RunFresh(c1, c2 units.WattHour) (*Result, error) {
	return b.Run(energy.NewBattery(c1), energy.NewBattery(c2))
}

// FrameOverheadBits is the per-frame overhead the braid accounts for.
const FrameOverheadBits = 8 * frame.Overhead
