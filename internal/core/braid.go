package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"braidio/internal/energy"
	"braidio/internal/frame"
	"braidio/internal/linkcache"
	"braidio/internal/obs"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Braid runs the carrier-offload layer against a pair of batteries: it
// periodically re-solves the allocation for the current energy levels
// (§4.2: "Braidio also periodically re-computes the ratio"), executes the
// braided schedule, charges mode-switch overheads, and drains both sides
// until one dies.
type Braid struct {
	// Model is the calibrated PHY.
	Model *phy.Model
	// Distance between the endpoints.
	Distance units.Meter
	// ScheduleWindow is the number of frames per scheduling window.
	ScheduleWindow int
	// EpochFraction is the fraction of the currently projected lifetime
	// transferred between allocation re-computations.
	EpochFraction float64
	// IncludeSwitchOverhead charges the Table 5 energies per mode
	// transition. The ablation bench turns this off.
	IncludeSwitchOverhead bool
	// Interleave uses the even-spread schedule instead of the default
	// contiguous blocks; it smooths instantaneous drain at the price of
	// a switch per frame boundary (the scheduler ablation).
	Interleave bool
	// Optimizer picks the allocation each epoch; nil means Optimize.
	// The Fig. 16 baseline passes BestSingleMode-derived optimizers.
	Optimizer func(links []phy.ModeLink, e1, e2 units.Joule) (*Allocation, error)
	// MaxBits, when positive, stops the run after that many delivered
	// bits instead of waiting for a battery to die — used to interleave
	// directions in bidirectional scenarios.
	MaxBits float64
	// AllocationTolerance is the relative battery-ratio (E1:E2) drift
	// tolerated before the allocation is re-solved — the paper's
	// "periodically re-computes" made explicit. At the default 0 the
	// memoized allocation is reused only when the ratio is bit-identical
	// (which preserves results exactly, since the optimizer's fractions
	// depend on the budgets only through their ratio); any positive value
	// trades precision for fewer solver runs.
	AllocationTolerance float64
	// DisableAllocationMemo forces a fresh optimizer solve every epoch,
	// even when the ratio has not moved. The golden tests flip it to
	// prove memoization changes no bits.
	DisableAllocationMemo bool
	// DisableLinkCache bypasses the shared linkcache and characterizes
	// the PHY directly on every run.
	DisableLinkCache bool
	// Links, when non-nil, supplies the run's characterized links
	// directly and skips per-run characterization — the hub's plan
	// phase batch-characterizes every member up front and presets each
	// braid with the result. Callers must pass the canonical shared
	// slices linkcache returns for (Model, Distance): the cross-run
	// allocation memo compares slice identity to detect moved members,
	// and a private copy would defeat (or, if mutated in place, corrupt)
	// that check.
	Links []phy.ModeLink
	// Obs, when non-nil, receives run totals, per-mode occupancy, and
	// solver metrics. Nil falls back to the process default recorder
	// (obs.Active); attaching a recorder never changes a run's Result.
	Obs *obs.Recorder
}

// DefaultDisableAllocationMemo seeds NewBraid's DisableAllocationMemo
// field — golden tests and benchmarks flip it to compare memoized and
// unmemoized runs across code paths that construct braids internally.
var DefaultDisableAllocationMemo bool

// NewBraid returns a Braid with the defaults used by the evaluation.
func NewBraid(m *phy.Model, d units.Meter) *Braid {
	b := DefaultBraid(m, d)
	return &b
}

// DefaultBraid is NewBraid returning the braid by value, for callers
// (the hub's pooled per-member scratch) that embed the braid in their
// own storage instead of heap-allocating one per round.
func DefaultBraid(m *phy.Model, d units.Meter) Braid {
	return Braid{
		Model:                 m,
		Distance:              d,
		ScheduleWindow:        128,
		EpochFraction:         0.02,
		IncludeSwitchOverhead: true,
		DisableAllocationMemo: DefaultDisableAllocationMemo,
	}
}

// Result summarizes a braid run.
type Result struct {
	// Bits is the total payload bits delivered.
	Bits float64
	// Duration is the on-air time spent.
	Duration units.Second
	// Drain1 and Drain2 are the energies drawn at transmitter and
	// receiver.
	Drain1, Drain2 units.Joule
	// ModeBits attributes delivered bits to modes, indexed by phy.Mode
	// — a flat array rather than a map, so resetting a reused Result is
	// a zeroing store and per-epoch attribution is an indexed add with
	// no hashing (the hub commits one of these per member per round).
	ModeBits [phy.NumModes]float64
	// Switches counts mode transitions; SwitchEnergy1/2 their cost.
	Switches                     int
	SwitchEnergy1, SwitchEnergy2 units.Joule
	// Epochs counts allocation re-computations.
	Epochs int
	// LPSolves counts epochs whose allocation came from an actual
	// optimizer solve; AllocReuses counts epochs served from the
	// ratio-keyed memo instead. LPSolves+AllocReuses == Epochs.
	LPSolves, AllocReuses int
}

// ModeFraction returns the fraction of bits carried by a mode.
func (r *Result) ModeFraction(m phy.Mode) float64 {
	if r.Bits == 0 {
		return 0
	}
	return r.ModeBits[m] / r.Bits
}

// ErrOutOfRange reports that no mode works at the configured distance.
var ErrOutOfRange = errors.New("core: no mode available at this distance")

// ErrDegenerateAllocation reports an allocation whose scheduling window
// drains no energy at one of the endpoints — a degenerate (typically
// custom-Optimizer) allocation that would otherwise loop forever making
// no progress before dying with an opaque convergence failure.
var ErrDegenerateAllocation = errors.New("core: allocation drains no energy over a window")

// ErrLinkDead reports that a link failed permanently after bounded
// recovery attempts: §4.2's fallback safety net reverted to the active
// mode, re-probed, and still could not restore service. Protocol layers
// (the MAC session, the hub's member scheduler) wrap this error around
// the final cause so callers can errors.Is both the verdict and the
// reason.
var ErrLinkDead = errors.New("core: link dead after bounded recovery attempts")

// RunScratch holds the reusable buffers one braid needs across Run
// calls: the block-schedule count/remainder vectors, the default
// optimizer's allocation target, and the cross-run allocation memo. A
// zero RunScratch is ready to use. Reusing one scratch across many
// RunInto calls (the hub serves each member thousands of rounds) drops
// the per-call allocation count to zero on the default-optimizer path.
//
// A RunScratch is not safe for concurrent use and must not be shared
// between braids with different optimizers: the memo assumes the same
// allocation function throughout, and it is keyed on (model, distance,
// battery ratio) only.
type RunScratch struct {
	counts     []int
	remainders []float64
	// alloc backs the default optimizer's in-place solves.
	alloc Allocation
	// Allocation memo: the last solved fractions (owned copy — the
	// in-place solver overwrites alloc.P) and the state they were
	// solved at. Unlike the pre-scratch engine the memo survives across
	// Run calls, so a hub round can reuse the previous round's solve
	// when the battery ratio has not drifted past the tolerance.
	memoValid      bool
	memoRatio      float64
	memoLinks      []phy.ModeLink
	memoP          []float64
	memoTX, memoRX units.JoulesPerBit
}

// Reset invalidates the cross-run allocation memo while keeping the
// scratch buffers for reuse. Engines that recycle scratch across
// logically independent runs (the hub's sync.Pool) must call it so a
// run's results never depend on what the recycled scratch last solved.
func (s *RunScratch) Reset() { s.memoValid = false }

// Run drains the two batteries (b1 at the data transmitter, b2 at the
// data receiver) until either is empty, returning the totals. The
// batteries are mutated.
func (b *Braid) Run(b1, b2 *energy.Battery) (*Result, error) {
	res := &Result{}
	if err := b.RunInto(res, nil, b1, b2); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run with caller-owned result and scratch storage: res is
// reset in place and s, when non-nil,
// supplies the schedule/optimizer buffers and carries the allocation
// memo across calls. A nil s uses throwaway scratch, making RunInto
// byte-identical to Run. The hub's fleet engine calls this once per
// member per round with persistent per-member scratch, which is what
// takes the steady-state round to zero heap allocations.
func (b *Braid) RunInto(res *Result, s *RunScratch, b1, b2 *energy.Battery) error {
	if b.Model == nil || b1 == nil || b2 == nil {
		return errors.New("core: braid needs a model and two batteries")
	}
	if b.ScheduleWindow < 1 || b.EpochFraction <= 0 || b.EpochFraction > 1 {
		return fmt.Errorf("core: invalid braid parameters window=%d epoch=%v", b.ScheduleWindow, b.EpochFraction)
	}
	if s == nil {
		s = &RunScratch{}
	}
	*res = Result{}
	var links []phy.ModeLink
	switch {
	case b.Links != nil:
		links = b.Links
	case b.DisableLinkCache:
		links = b.Model.Characterize(b.Distance)
	default:
		links = linkcache.Characterize(b.Model, b.Distance)
	}
	if len(links) == 0 {
		return ErrOutOfRange
	}
	// The memo assumes the optimizer's fractions depend on the budgets
	// only through their ratio — true of Optimize (and OptimizeQoS /
	// BestSingleMode). Arbitrary custom optimizers get memoized only when
	// the caller opted into a tolerance.
	memoOK := !b.DisableAllocationMemo && (b.Optimizer == nil || b.AllocationTolerance > 0)
	// A memo carried over from an earlier Run is only meaningful while
	// the characterized links are literally the same slice (the cached
	// Characterize result for this model value and distance); a moved
	// member, a mutated model, or a disabled link cache all produce a
	// different slice and invalidate it.
	if s.memoValid && (len(links) != len(s.memoLinks) || &links[0] != &s.memoLinks[0]) {
		s.memoValid = false
	}

	payloadBits := float64(8 * b.Model.PayloadLen)
	windowBits := payloadBits * float64(b.ScheduleWindow)
	prevMode := phy.ModeActive // sessions start on the active radio (§4.2)

	// Observability: rec == nil is the common case and every record site
	// below guards on it, so the uninstrumented run costs one pointer
	// compare per site and zero allocations. Per-mode air time is
	// accumulated locally and recorded once per run (one fixed-point
	// quantization per mode per run, and no atomics inside the loop).
	rec := obs.Active(b.Obs)
	var modeTime [obs.NumModes]float64

	// Mode-switch counting accumulates fractional windows in float64 and
	// rounds once at the end; truncating per epoch (as this loop once
	// did) systematically undercounts while SwitchEnergy1/2 still charge
	// the full fractional cost.
	var switchesF float64
	counts := s.counts
	remainders := s.remainders

	const maxEpochs = 1_000_000
	for !b1.Empty() && !b2.Empty() {
		if res.Epochs >= maxEpochs {
			return errors.New("core: braid failed to converge")
		}
		e1, e2 := b1.Remaining(), b2.Remaining()
		ratio := float64(e1) / float64(e2)

		var aLinks []phy.ModeLink
		var p []float64
		var projBits float64
		if s.memoValid && RatioWithin(ratio, s.memoRatio, b.AllocationTolerance) {
			aLinks, p = s.memoLinks, s.memoP
			projBits = bitsFor(s.memoTX, s.memoRX, e1, e2)
			res.AllocReuses++
		} else {
			var alloc *Allocation
			var solveStart time.Time
			if rec != nil {
				solveStart = time.Now()
			}
			if b.Optimizer != nil {
				a, err := b.Optimizer(links, e1, e2)
				if err != nil {
					return err
				}
				alloc = a
			} else {
				if err := optimizeInto(&s.alloc, links, e1, e2); err != nil {
					return err
				}
				alloc = &s.alloc
			}
			if rec != nil {
				rec.LPSolveLatency.Observe(float64(time.Since(solveStart)))
			}
			aLinks, p, projBits = alloc.Links, alloc.P, alloc.Bits
			res.LPSolves++
			if memoOK && alloc.TX > 0 && alloc.RX > 0 {
				s.memoValid = true
				s.memoRatio = ratio
				s.memoLinks = alloc.Links
				s.memoP = append(s.memoP[:0], alloc.P...)
				s.memoTX, s.memoRX = alloc.TX, alloc.RX
				if alloc == &s.alloc {
					// The in-place solver will overwrite alloc.P on the
					// next solve; schedule this epoch from the owned copy.
					p = s.memoP
				}
			}
		}
		if projBits <= 0 || math.IsNaN(projBits) {
			break
		}
		res.Epochs++

		// Target bits this epoch: a slice of the projected lifetime, at
		// least one scheduling window so the loop always advances.
		epochBits := projBits * b.EpochFraction
		if min := windowBits; epochBits < min {
			epochBits = min
		}
		if b.MaxBits > 0 {
			left := b.MaxBits - res.Bits
			if left <= 0 {
				break
			}
			if epochBits > left {
				epochBits = left
			}
		}
		windows := epochBits / windowBits

		if cap(counts) < len(aLinks) {
			counts = make([]int, len(aLinks))
			remainders = make([]float64, len(aLinks))
		}
		counts = counts[:len(aLinks)]
		remainders = remainders[:len(aLinks)]

		// Price one scheduling window: data plus (optionally) switch
		// overheads. The default block schedule never needs the sequence
		// materialized — counts, transitions, and switch costs all follow
		// from the per-mode frame counts and the canonical block order.
		var winTX, winRX, winTime, swTX, swRX float64
		transitions := 0
		endMode := prevMode
		if b.Interleave {
			seq := Schedule(aLinks, p, b.ScheduleWindow)
			for i := range counts {
				counts[i] = 0
			}
			for _, mode := range seq {
				for i := range aLinks {
					if aLinks[i].Mode == mode {
						counts[i]++
						break
					}
				}
			}
			for i, l := range aLinks {
				if counts[i] == 0 {
					continue
				}
				n := float64(counts[i])
				winTX += n * payloadBits * float64(l.T)
				winRX += n * payloadBits * float64(l.R)
				winTime += n * payloadBits / float64(l.Good)
			}
			transitions = Transitions(seq, prevMode)
			if b.IncludeSwitchOverhead {
				rates := make(map[phy.Mode]units.BitRate, len(aLinks))
				for _, l := range aLinks {
					rates[l.Mode] = l.Rate
				}
				swTX, swRX = SwitchEnergyOf(seq, prevMode, rates)
			}
			endMode = seq[len(seq)-1]
		} else {
			blockCounts(p, b.ScheduleWindow, counts, remainders)
			prev := prevMode
			for i, l := range aLinks {
				if counts[i] == 0 {
					continue
				}
				n := float64(counts[i])
				winTX += n * payloadBits * float64(l.T)
				winRX += n * payloadBits * float64(l.R)
				winTime += n * payloadBits / float64(l.Good)
				if l.Mode != prev {
					transitions++
					if b.IncludeSwitchOverhead {
						t, rcv := phy.SwitchCost(l.Mode, l.Rate)
						swTX += float64(t)
						swRX += float64(rcv)
					}
					prev = l.Mode
				}
			}
			endMode = prev
		}
		winTX += swTX
		winRX += swRX

		// A window that drains neither endpoint would make maxWin below
		// NaN/Inf and spin forever without progress; the negated
		// comparisons also catch NaN costs.
		if !(winTX > 0) || !(winRX > 0) {
			return fmt.Errorf("%w: window energies tx=%v rx=%v", ErrDegenerateAllocation, winTX, winRX)
		}

		// How many whole windows fit in both remaining budgets?
		maxWin := math.Min(float64(e1)/winTX, float64(e2)/winRX)
		partial := false
		if windows > maxWin {
			windows = maxWin
			partial = true
		}
		if windows <= 0 {
			break
		}

		b1.Drain(units.Joule(windows * winTX))
		b2.Drain(units.Joule(windows * winRX))
		res.Drain1 += units.Joule(windows * winTX)
		res.Drain2 += units.Joule(windows * winRX)
		res.Bits += windows * windowBits
		res.Duration += units.Second(windows * winTime)
		switchesF += windows * float64(transitions)
		res.SwitchEnergy1 += units.Joule(windows * swTX)
		res.SwitchEnergy2 += units.Joule(windows * swRX)
		for i, l := range aLinks {
			res.ModeBits[l.Mode] += windows * payloadBits * float64(counts[i])
			if rec != nil && counts[i] > 0 {
				modeTime[l.Mode] += windows * payloadBits * float64(counts[i]) / float64(l.Good)
			}
		}
		prevMode = endMode
		if partial {
			break // one side is exhausted to within a rounding sliver
		}
	}
	res.Switches = int(math.Round(switchesF))
	s.counts, s.remainders = counts, remainders
	if rec != nil {
		rec.BraidRuns.Add(1)
		rec.Epochs.Add(uint64(res.Epochs))
		rec.LPSolves.Add(uint64(res.LPSolves))
		rec.AllocReuses.Add(uint64(res.AllocReuses))
		rec.Switches.Add(uint64(res.Switches))
		rec.Bits.Add(res.Bits)
		rec.AirTime.Add(float64(res.Duration))
		rec.DrainTX.Add(float64(res.Drain1))
		rec.DrainRX.Add(float64(res.Drain2))
		rec.SwitchEnergy.Add(float64(res.SwitchEnergy1 + res.SwitchEnergy2))
		for m, bits := range res.ModeBits {
			rec.ModeBits[m].Add(bits)
		}
		for i := range modeTime {
			rec.ModeTime[i].Add(modeTime[i])
		}
		if res.Bits > 0 {
			rec.EnergyPerBit.Observe(float64(res.Drain1+res.Drain2) / res.Bits)
		}
	}
	return nil
}

// RatioWithin reports whether two ratios agree to within a symmetric
// relative tolerance: |a−b| ≤ tol·max(|a|, |b|). A non-positive
// tolerance demands bit-identical values. It is the predicate behind
// the braid's allocation memo and the serve daemon's dirty-set
// scheduler (both reuse a plan while its input ratio has not drifted).
//
// The tolerance is symmetric in its arguments on purpose: the earlier
// |a−b| ≤ tol·b form made a zero memoized ratio — a fully drained
// endpoint — demand exact equality (tol·0 = 0), silently defeating memo
// reuse, and gave different verdicts depending on which value was the
// memo. Two zeros always agree.
func RatioWithin(a, b, tol float64) bool {
	if tol <= 0 {
		return a == b
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*m
}

// RunFresh creates full batteries of the given capacities and runs the
// braid over them, returning the result.
func (b *Braid) RunFresh(c1, c2 units.WattHour) (*Result, error) {
	return b.Run(energy.NewBattery(c1), energy.NewBattery(c2))
}

// FrameOverheadBits is the per-frame overhead the braid accounts for.
const FrameOverheadBits = 8 * frame.Overhead
