package core

import (
	"fmt"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// Schedule expands an allocation's fractions into a deterministic window
// of per-frame mode assignments, spreading modes as evenly as possible
// (Bresenham-style: each slot goes to the mode with the largest deficit
// between its target share and what it has received). Even spreading
// keeps both endpoints' instantaneous drain close to the allocation's
// average, instead of long single-mode bursts.
//
// The example in §4.2 — p = (0.5, 0.25, 0.25) yielding
// Active-Active-Passive-Backscatter repeated — is one such even spread.
func Schedule(links []phy.ModeLink, p []float64, window int) []phy.Mode {
	if len(links) != len(p) {
		panic(fmt.Sprintf("core: %d links but %d fractions", len(links), len(p)))
	}
	if window < 1 {
		panic("core: schedule window must be ≥ 1")
	}
	if len(links) == 0 {
		return nil // no modes, nothing to spread
	}
	seq := make([]phy.Mode, 0, window)
	given := make([]float64, len(links))
	for slot := 1; slot <= window; slot++ {
		best, bestDeficit := -1, 0.0
		for i := range links {
			deficit := p[i]*float64(slot) - given[i]
			if best < 0 || deficit > bestDeficit {
				best, bestDeficit = i, deficit
			}
		}
		given[best]++
		seq = append(seq, links[best].Mode)
	}
	return seq
}

// ScheduleBlocks expands fractions into a window of contiguous per-mode
// blocks (largest-remainder rounding of the counts, modes in canonical
// order). Blocks minimize mode transitions — at most one per mode per
// window — which matters when switch energy is non-trivial (the Table 5
// backscatter entry at low bitrates). The braid engine batches with
// blocks by default; the interleaved Schedule is the ablation
// alternative, smoother in instantaneous drain but switch-heavy.
func ScheduleBlocks(links []phy.ModeLink, p []float64, window int) []phy.Mode {
	if len(links) != len(p) {
		panic(fmt.Sprintf("core: %d links but %d fractions", len(links), len(p)))
	}
	if window < 1 {
		panic("core: schedule window must be ≥ 1")
	}
	if len(links) == 0 {
		return nil // no modes, nothing to block out
	}
	counts := make([]int, len(links))
	blockCounts(p, window, counts, make([]float64, len(links)))
	seq := make([]phy.Mode, 0, window)
	for i, l := range links {
		for k := 0; k < counts[i]; k++ {
			seq = append(seq, l.Mode)
		}
	}
	return seq
}

// blockCounts fills counts with the largest-remainder frame counts
// ScheduleBlocks realizes for the given fractions — the braid engine
// prices block windows from these counts directly, without materializing
// the sequence, so the rounding must live in exactly one place. counts
// and remainders are caller-provided scratch of len(p). The counts
// always total exactly window, even when float noise makes the
// fractions sum to 1±ε: a deficit is topped up from the largest
// remainders, an excess trimmed from the smallest (without either
// clamp, fractions summing to 1+ε can truncate to more than window
// frames — an over-long sequence and an over-priced block window — and
// an empty p would spin on remainders[best]).
func blockCounts(p []float64, window int, counts []int, remainders []float64) {
	if len(p) == 0 {
		return
	}
	total := 0
	for i, pi := range p {
		exact := pi * float64(window)
		counts[i] = int(exact)
		remainders[i] = exact - float64(counts[i])
		total += counts[i]
	}
	for total < window {
		best := 0
		for i := 1; i < len(remainders); i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		counts[best]++
		remainders[best] = -1
		total++
	}
	for total > window {
		best := -1
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			if best < 0 || remainders[i] < remainders[best] {
				best = i
			}
		}
		counts[best]--
		remainders[best] = 2 // above any real remainder: spread repeated trims
		total--
	}
}

// Scheduler is a persistent even-spread scheduler: unlike Schedule, its
// deficit state carries across calls, so the realized mode shares
// converge to the target fractions exactly even when a window is too
// coarse to represent them (e.g. a 3% backscatter share in a 16-frame
// window).
type Scheduler struct {
	links []phy.ModeLink
	p     []float64
	given []float64
	slots float64
}

// NewScheduler returns a scheduler for the given links and fractions.
func NewScheduler(links []phy.ModeLink, p []float64) *Scheduler {
	if len(links) != len(p) {
		panic(fmt.Sprintf("core: %d links but %d fractions", len(links), len(p)))
	}
	return &Scheduler{links: links, p: append([]float64(nil), p...), given: make([]float64, len(links))}
}

// Next returns the mode for the next frame slot.
func (s *Scheduler) Next() phy.ModeLink {
	s.slots++
	best, bestDeficit := -1, 0.0
	for i := range s.links {
		deficit := s.p[i]*s.slots - s.given[i]
		if best < 0 || deficit > bestDeficit {
			best, bestDeficit = i, deficit
		}
	}
	s.given[best]++
	return s.links[best]
}

// Retarget installs a new allocation, restarting the spread from a clean
// deficit state (a recompute changes the target going forward; it should
// not try to compensate for history accumulated under the old target).
func (s *Scheduler) Retarget(links []phy.ModeLink, p []float64) {
	if len(links) != len(p) {
		panic(fmt.Sprintf("core: %d links but %d fractions", len(links), len(p)))
	}
	s.links = links
	s.p = append(s.p[:0:0], p...)
	s.given = make([]float64, len(links))
	s.slots = 0
}

// Transitions counts the mode changes when executing seq after having
// been in prev — each change is a radio reconfiguration that costs the
// Table 5 overheads.
func Transitions(seq []phy.Mode, prev phy.Mode) int {
	n := 0
	for _, m := range seq {
		if m != prev {
			n++
			prev = m
		}
	}
	return n
}

// SwitchEnergyOf sums the per-side switch energies of executing seq after
// prev, using the Table 5 overheads (rate-scaled via phy.SwitchCost) for
// the mode being switched into. rates gives each mode's operating rate.
func SwitchEnergyOf(seq []phy.Mode, prev phy.Mode, rates map[phy.Mode]units.BitRate) (tx, rx float64) {
	for _, m := range seq {
		if m != prev {
			r, ok := rates[m]
			if !ok {
				r = units.Rate10k // worst case when unknown
			}
			t, rcv := phy.SwitchCost(m, r)
			tx += float64(t)
			rx += float64(rcv)
			prev = m
		}
	}
	return tx, rx
}
