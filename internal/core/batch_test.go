package core

import (
	"math"
	"testing"

	"braidio/internal/obs"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// batchRNG is the xorshift generator the batch differential corpora use.
type batchRNG uint64

func (s *batchRNG) next() float64 { // uniform in [0, 1)
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = batchRNG(x)
	return float64(x>>11) / (1 << 53)
}

// fillBatch characterizes n random slots (some deliberately out of
// range) into the arena and returns the matching AoS links for the
// per-member reference path.
func fillBatch(s *BatchScratch, m *phy.Model, rng *batchRNG, n int) [][]phy.ModeLink {
	s.Reset(n)
	s.Cols.Reset(n)
	refLinks := make([][]phy.ModeLink, n)
	for k := 0; k < n; k++ {
		d := units.Meter(0.1 + 3.4*rng.next())
		if rng.next() < 0.05 {
			d = 9.0 // out of range: zero links, ErrNoLinks
		}
		s.Dists[k] = d
		m.CharacterizeColumns(&s.Cols, k, d)
		refLinks[k] = m.Characterize(d)
		// Budgets spanning the paper's asymmetry regimes, 1 mJ – 10 kJ.
		s.E1[k] = units.Joule(math.Pow(10, -3+7*rng.next()))
		s.E2[k] = units.Joule(math.Pow(10, -3+7*rng.next()))
	}
	return refLinks
}

// checkSlot compares slot k of the arena against a per-member
// Allocation bit for bit.
func checkSlot(t *testing.T, s *BatchScratch, k int, want *Allocation, wantErr error) {
	t.Helper()
	gotErr := s.Errs[k]
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("slot %d: err=%v, reference err=%v", k, gotErr, wantErr)
	}
	if wantErr != nil {
		return
	}
	p := s.PRow(k)
	if len(p) != len(want.P) {
		t.Fatalf("slot %d: %d fractions, reference %d", k, len(p), len(want.P))
	}
	for i := range p {
		if math.Float64bits(p[i]) != math.Float64bits(want.P[i]) {
			t.Fatalf("slot %d link %d: p=%v, reference %v", k, i, p[i], want.P[i])
		}
	}
	if math.Float64bits(float64(s.TX[k])) != math.Float64bits(float64(want.TX)) ||
		math.Float64bits(float64(s.RX[k])) != math.Float64bits(float64(want.RX)) ||
		math.Float64bits(s.Bits[k]) != math.Float64bits(want.Bits) {
		t.Fatalf("slot %d: mixture %v/%v/%v, reference %v/%v/%v",
			k, s.TX[k], s.RX[k], s.Bits[k], want.TX, want.RX, want.Bits)
	}
}

// TestOptimizeBatchDifferential pins the batch kernel's golden
// contract: OptimizeBatch over the SoA arena is bit-identical to
// per-member Optimize over the equivalent []ModeLink — for every slot,
// at every worker count, including out-of-range and extreme-asymmetry
// slots.
func TestOptimizeBatchDifferential(t *testing.T) {
	m := phy.NewModel()
	rng := batchRNG(0x51f15eed)
	var s BatchScratch
	const n = 100 // above batchSeqThreshold so workers genuinely split
	refLinks := fillBatch(&s, m, &rng, n)

	want := make([]*Allocation, n)
	wantErr := make([]error, n)
	for k := 0; k < n; k++ {
		want[k], wantErr[k] = Optimize(refLinks[k], s.E1[k], s.E2[k])
	}
	for _, workers := range []int{1, 2, 8} {
		OptimizeBatch(&s, workers)
		for k := 0; k < n; k++ {
			checkSlot(t, &s, k, want[k], wantErr[k])
		}
	}
}

// TestSolveEq1BatchDifferential pins the simplex batch kernel: every
// slot agrees bit for bit with per-member SolveEq1, across rounds of
// budget drift where slots re-solve warm from their retained bases, at
// every worker count. The recorder cross-check asserts the warm path is
// genuinely exercised and that a first-ever solve counts as neither a
// warm start nor a cold fallback.
func TestSolveEq1BatchDifferential(t *testing.T) {
	m := phy.NewModel()
	rng := batchRNG(0xbadcaffe)
	var s BatchScratch
	const n = 100
	refLinks := fillBatch(&s, m, &rng, n)
	rec := obs.NewRecorder()

	const rounds = 5
	for round := 0; round < rounds; round++ {
		if round > 0 {
			// Drift budgets a fraction of a decade — consecutive solves
			// stay structurally close, the warm-start regime.
			for k := 0; k < n; k++ {
				s.E1[k] = units.Joule(float64(s.E1[k]) * math.Pow(10, 0.3*(rng.next()-0.5)))
				s.E2[k] = units.Joule(float64(s.E2[k]) * math.Pow(10, 0.3*(rng.next()-0.5)))
			}
		}
		workers := []int{1, 2, 8}[round%3]
		SolveEq1Batch(&s, workers, rec)
		if round == 0 {
			snap := rec.Snapshot()
			if snap.LPWarmStarts != 0 || snap.LPColdFallbacks != 0 {
				t.Fatalf("first round recorded warm=%d cold=%d, want 0/0 (no retained bases yet)",
					snap.LPWarmStarts, snap.LPColdFallbacks)
			}
		}
		for k := 0; k < n; k++ {
			want, wantErr := SolveEq1(refLinks[k], s.E1[k], s.E2[k])
			checkSlot(t, &s, k, want, wantErr)
		}
	}
	snap := rec.Snapshot()
	if snap.LPWarmStarts == 0 {
		t.Fatal("drift rounds never exercised the warm path")
	}
	t.Logf("warm starts: %d, cold fallbacks: %d over %d rounds × %d slots",
		snap.LPWarmStarts, snap.LPColdFallbacks, rounds, n)

	// InvalidateWarm drops the retained bases: the next round must count
	// neither warm starts nor cold fallbacks beyond the tally so far.
	s.InvalidateWarm()
	warmBefore, coldBefore := snap.LPWarmStarts, snap.LPColdFallbacks
	SolveEq1Batch(&s, 1, rec)
	snap = rec.Snapshot()
	if snap.LPWarmStarts != warmBefore || snap.LPColdFallbacks != coldBefore {
		t.Errorf("post-invalidate round recorded warm %d→%d cold %d→%d, want unchanged",
			warmBefore, snap.LPWarmStarts, coldBefore, snap.LPColdFallbacks)
	}
	for k := 0; k < n; k++ {
		want, wantErr := SolveEq1(refLinks[k], s.E1[k], s.E2[k])
		checkSlot(t, &s, k, want, wantErr)
	}
}

// TestBlockCountsRowMatchesSchedule pins the arena's no-materialize
// block counting against ScheduleBlocks' sequence on the same solved
// fractions.
func TestBlockCountsRowMatchesSchedule(t *testing.T) {
	m := phy.NewModel()
	var s BatchScratch
	s.Reset(1)
	s.Cols.Reset(1)
	m.CharacterizeColumns(&s.Cols, 0, 0.3)
	s.E1[0], s.E2[0] = 4000, 1000
	OptimizeBatch(&s, 1)
	if err := s.Errs[0]; err != nil {
		t.Fatal(err)
	}
	const window = 100
	counts := s.BlockCountsRow(0, window)

	links := m.Characterize(0.3)
	alloc, err := Optimize(links, 4000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	seq := ScheduleBlocks(links, alloc.P, window)
	seqCounts := make([]int, len(links))
	for _, slot := range seq {
		for i, l := range links {
			if l.Mode == slot {
				seqCounts[i]++
			}
		}
	}
	if len(counts) != len(seqCounts) {
		t.Fatalf("%d count slots, schedule has %d links", len(counts), len(seqCounts))
	}
	total := 0
	for i := range counts {
		if counts[i] != seqCounts[i] {
			t.Fatalf("link %d: count %d, schedule count %d", i, counts[i], seqCounts[i])
		}
		total += counts[i]
	}
	if total != window {
		t.Fatalf("counts sum to %d, want %d", total, window)
	}
}
