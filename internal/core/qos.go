package core

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/lp"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// OptimizeQoS extends the offload optimizer with a minimum-throughput
// constraint: the braided mixture must deliver at least minRate payload
// bits per second of air time. Time-sharing means the mixture's
// throughput is the harmonic combination 1/Σ(p_i/g_i), so the
// constraint Σ p_i/g_i ≤ 1/minRate is linear — the problem stays a
// small LP over the Eq. 1 structure with one extra inequality.
//
// A real-time source (the Pivothead's video) needs this: at distances
// where backscatter only runs at 10 kbps, pure power-proportionality
// would braid in slow slots that a 30 fps stream cannot absorb.
//
// It returns ErrQoSInfeasible when no feasible mixture meets the rate at
// the required power proportion, and ErrRateUnreachable when even the
// fastest single link is slower than minRate.
func OptimizeQoS(links []phy.ModeLink, e1, e2 units.Joule, minRate units.BitRate) (*Allocation, error) {
	if err := validateInputs(links, e1, e2); err != nil {
		return nil, err
	}
	if minRate <= 0 {
		return Optimize(links, e1, e2)
	}
	fastest := units.BitRate(0)
	for _, l := range links {
		if l.Good > fastest {
			fastest = l.Good
		}
	}
	if fastest < minRate {
		return nil, fmt.Errorf("%w: best link delivers %v < %v", ErrRateUnreachable, fastest, minRate)
	}

	// First try the power-proportional LP with the throughput row.
	ratio := float64(e1) / float64(e2)
	n := len(links)
	// Variables: p_1..p_n, slack s for the throughput inequality.
	c := make([]float64, n+1)
	ones := make([]float64, n+1)
	ratioRow := make([]float64, n+1)
	rateRow := make([]float64, n+1)
	for i, l := range links {
		c[i] = float64(l.T) + float64(l.R)
		ones[i] = 1
		ratioRow[i] = float64(l.T) - ratio*float64(l.R)
		rateRow[i] = 1 / float64(l.Good)
	}
	rateRow[n] = 1 // slack: Σ p/g + s = 1/minRate
	sol, err := lp.Solve(&lp.Problem{
		C: c,
		A: [][]float64{ones, ratioRow, rateRow},
		B: []float64{1, 0, 1 / float64(minRate)},
	})
	if err == nil {
		alloc := &Allocation{Links: links, P: sol.X[:n]}
		alloc.TX, alloc.RX = mixture(links, alloc.P)
		alloc.Bits = bitsFor(alloc.TX, alloc.RX, e1, e2)
		return alloc, nil
	}
	if !errors.Is(err, lp.ErrInfeasible) {
		return nil, err
	}

	// Power-proportionality and the rate floor cannot both hold: keep
	// the rate floor (a deadline is hard; a battery imbalance is not)
	// and maximize delivered bits over the rate-feasible simplex by
	// enumerating its vertices: pure fast modes and pairwise mixes where
	// either the rate constraint or the budget balance is active.
	best := &Allocation{Links: links, P: make([]float64, n), Bits: -1}
	consider := func(p []float64) {
		var invRate float64
		for i := range links {
			invRate += p[i] / float64(links[i].Good)
		}
		if invRate > 1/float64(minRate)+1e-12 {
			return
		}
		tx, rx := mixture(links, p)
		bits := bitsFor(tx, rx, e1, e2)
		if bits > best.Bits {
			copy(best.P, p)
			best.TX, best.RX, best.Bits = tx, rx, bits
		}
	}
	p := make([]float64, n)
	for i := range links {
		for j := range p {
			p[j] = 0
		}
		p[i] = 1
		consider(p)
	}
	for i := range links {
		for j := i + 1; j < n; j++ {
			for k := range p {
				p[k] = 0
			}
			// Budget-balance point on the (i, j) edge.
			ai := float64(links[i].T) - ratio*float64(links[i].R)
			aj := float64(links[j].T) - ratio*float64(links[j].R)
			if den := ai - aj; den != 0 {
				if q := -aj / den; q > 0 && q < 1 {
					p[i], p[j] = q, 1-q
					consider(p)
				}
			}
			// Rate-constraint-active point on the (i, j) edge:
			// q/g_i + (1−q)/g_j = 1/minRate.
			gi, gj := 1/float64(links[i].Good), 1/float64(links[j].Good)
			if den := gi - gj; den != 0 {
				if q := (1/float64(minRate) - gj) / den; q > 0 && q < 1 {
					p[i], p[j] = q, 1-q
					consider(p)
				}
			}
			p[i], p[j] = 0, 0
		}
	}
	if best.Bits < 0 {
		return nil, ErrQoSInfeasible
	}
	return best, nil
}

// Errors returned by OptimizeQoS.
var (
	// ErrRateUnreachable: no single link is fast enough.
	ErrRateUnreachable = errors.New("core: required rate exceeds every link")
	// ErrQoSInfeasible: no mixture satisfies the rate floor.
	ErrQoSInfeasible = errors.New("core: no rate-feasible mixture")
)

// Throughput returns an allocation's delivered payload rate under
// time-sharing: 1/Σ(p_i/g_i).
func (a *Allocation) Throughput() units.BitRate {
	var inv float64
	for i, l := range a.Links {
		if a.P[i] > 0 {
			inv += a.P[i] / float64(l.Good)
		}
	}
	if inv <= 0 || math.IsInf(inv, 0) {
		return 0
	}
	return units.BitRate(1 / inv)
}
