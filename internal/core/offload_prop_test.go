package core

import (
	"math"
	"testing"

	"braidio/internal/lp"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// randomLinks draws a random link set: 2–4 links with per-bit costs
// log-uniform over [1e-9, 1e-5] J/bit — the span from backscatter to a
// starved active radio. Optimize only reads T and R.
func randomLinks(stream *rng.Stream) []phy.ModeLink {
	n := 2 + stream.Intn(3)
	links := make([]phy.ModeLink, n)
	cost := func() units.JoulesPerBit {
		return units.JoulesPerBit(math.Pow(10, -9+4*stream.Float64()))
	}
	for i := range links {
		links[i] = phy.ModeLink{Mode: phy.Modes[i%len(phy.Modes)], Rate: units.Rate1M, Good: units.Rate1M, T: cost(), R: cost()}
	}
	return links
}

// randomBudgets draws battery budgets with a log-uniform E1:E2 ratio
// over [1e-3, 1e3] — the asymmetry span of the Fig. 1 catalog.
func randomBudgets(stream *rng.Stream) (units.Joule, units.Joule) {
	e2 := units.Joule(1 + 99*stream.Float64())
	ratio := math.Pow(10, -3+6*stream.Float64())
	return units.Joule(ratio) * e2, e2
}

// TestOptimizeProperties is the Eq. (1) property suite: for randomized
// link models and battery ratios the solver must return a valid simplex
// point, deliver positive bits, track the battery ratio with its
// consumption ratio whenever it mixes modes, and never fall below the
// exact Eq. (1) LP solution.
func TestOptimizeProperties(t *testing.T) {
	stream := rng.New(1)
	const trials = 500
	mixes, eq1Checked := 0, 0
	for trial := 0; trial < trials; trial++ {
		links := randomLinks(stream)
		e1, e2 := randomBudgets(stream)
		a, err := Optimize(links, e1, e2)
		if err != nil {
			t.Fatalf("trial %d: Optimize: %v", trial, err)
		}

		// Σp_i = 1 with every fraction in [0, 1].
		sum := 0.0
		positives := 0
		for i, p := range a.P {
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("trial %d: fraction %d = %v outside [0,1]", trial, i, p)
			}
			if p > 1e-9 {
				positives++
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: Σp = %v, want 1", trial, sum)
		}
		if !(a.Bits > 0) {
			t.Fatalf("trial %d: non-positive bits %v", trial, a.Bits)
		}

		// Consumption-ratio tracking: a mixed solution is ratio-matched by
		// construction — the energy drawn at the two endpoints, Bits·TX
		// and Bits·RX, must split exactly as the battery ratio E1:E2.
		batRatio := float64(e1) / float64(e2)
		if positives >= 2 {
			mixes++
			consRatio := float64(a.TX) / float64(a.RX)
			if math.Abs(consRatio-batRatio) > 1e-6*batRatio {
				t.Fatalf("trial %d: mixed solution consumption ratio %v does not track battery ratio %v",
					trial, consRatio, batRatio)
			}
		}

		// Cross-check against the exact Eq. (1) LP: when the proportional
		// program is feasible, its solution is one of the candidates
		// Optimize enumerates, so Optimize can never deliver fewer bits.
		if eq1, err := SolveEq1(links, e1, e2); err == nil {
			eq1Checked++
			eq1Sum := 0.0
			for _, p := range eq1.P {
				eq1Sum += p
			}
			if math.Abs(eq1Sum-1) > 1e-9 {
				t.Fatalf("trial %d: SolveEq1 Σp = %v, want 1", trial, eq1Sum)
			}
			consRatio := float64(eq1.TX) / float64(eq1.RX)
			if math.Abs(consRatio-batRatio) > 1e-6*batRatio {
				t.Fatalf("trial %d: SolveEq1 consumption ratio %v vs battery ratio %v", trial, consRatio, batRatio)
			}
			if a.Bits < eq1.Bits*(1-1e-9) {
				t.Fatalf("trial %d: Optimize bits %v below Eq.(1) bits %v", trial, a.Bits, eq1.Bits)
			}
		}
	}
	if mixes == 0 {
		t.Fatal("property suite never exercised a mixed allocation — generator broken")
	}
	if eq1Checked == 0 {
		t.Fatal("property suite never exercised a feasible Eq.(1) program — generator broken")
	}
	t.Logf("%d trials: %d mixed optima, %d Eq.(1)-feasible cross-checks", trials, mixes, eq1Checked)
}

// TestEq1RedundantRows extends the Eq. (1) property suite to redundant
// constraint systems: the paper's program with its rows duplicated (and
// scaled) must solve to the same allocation quality as the minimal
// two-row form. Redundant rows force the simplex solver through the
// phase-1→2 drive-out, whose pivot must come from the largest-magnitude
// column — the per-bit costs here are 1e-9..1e-5-scale, exactly the
// regime where a first-column near-eps pivot corrupts phase 2.
func TestEq1RedundantRows(t *testing.T) {
	stream := rng.New(9)
	const trials = 300
	feasible := 0
	for trial := 0; trial < trials; trial++ {
		links := randomLinks(stream)
		e1, e2 := randomBudgets(stream)
		ratio := float64(e1) / float64(e2)
		n := len(links)
		c := make([]float64, n)
		aRow := make([]float64, n)
		ones := make([]float64, n)
		for i, l := range links {
			c[i] = float64(l.T) + float64(l.R)
			aRow[i] = float64(l.T) - ratio*float64(l.R)
			ones[i] = 1
		}
		// Normalize like SolveEq1 does (both the = 0 row and the
		// objective are scale-invariant): the property under test is
		// redundancy handling, not raw row conditioning.
		normalize := func(row []float64) {
			maxAbs := 0.0
			for _, v := range row {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs > 0 {
				for i := range row {
					row[i] /= maxAbs
				}
			}
		}
		normalize(aRow)
		normalize(c)
		base := &lp.Problem{C: c, A: [][]float64{ones, aRow}, B: []float64{1, 0}}
		want, err := lp.Solve(base)
		if err != nil {
			continue // infeasible ratio: nothing to compare
		}
		feasible++
		// Duplicate both rows and add a scaled copy of the
		// proportionality row (scaling preserves = 0 exactly).
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = 0.7 * aRow[i]
		}
		aug := &lp.Problem{
			C: c,
			A: [][]float64{ones, aRow, ones, aRow, scaled},
			B: []float64{1, 0, 1, 0, 0},
		}
		got, err := lp.Solve(aug)
		if err != nil {
			t.Fatalf("trial %d: redundant Eq.(1) solve failed: %v", trial, err)
		}
		sum, prop := 0.0, 0.0
		for i, x := range got.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: fraction %d = %v negative", trial, i, x)
			}
			sum += x
			prop += aRow[i] * x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("trial %d: redundant Σp = %v, want 1", trial, sum)
		}
		// The proportionality row: compare against its own scale.
		scale := 0.0
		for _, v := range aRow {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if math.Abs(prop) > 1e-6*scale {
			t.Fatalf("trial %d: proportionality row violated: %v (scale %v)", trial, prop, scale)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6*want.Objective {
			t.Fatalf("trial %d: redundant objective %v, want %v", trial, got.Objective, want.Objective)
		}
	}
	if feasible == 0 {
		t.Fatal("redundant-row suite never exercised a feasible Eq.(1) program — generator broken")
	}
	t.Logf("%d trials: %d feasible redundant systems checked", trials, feasible)
}

// TestEnergyPerBitMonotoneInMargin is the monotonicity property: as the
// SNR margin grows — modelled as pointwise per-bit cost decreases, which
// is what a larger decode margin buys (faster rates at the same power) —
// the deliverable bits from fixed budgets cannot shrink, so energy per
// bit (E1+E2 spent per deliverable bit) is monotone non-increasing.
func TestEnergyPerBitMonotoneInMargin(t *testing.T) {
	stream := rng.New(2)
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		links := randomLinks(stream)
		e1, e2 := randomBudgets(stream)
		base, err := Optimize(links, e1, e2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Grow the margin in steps: each step improves every link's costs
		// by an independent factor in (0, 1].
		prevBits := base.Bits
		improved := append([]phy.ModeLink(nil), links...)
		for step := 0; step < 4; step++ {
			for i := range improved {
				improved[i].T *= units.JoulesPerBit(0.5 + 0.5*stream.Float64())
				improved[i].R *= units.JoulesPerBit(0.5 + 0.5*stream.Float64())
			}
			a, err := Optimize(improved, e1, e2)
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			if a.Bits < prevBits*(1-1e-12) {
				t.Fatalf("trial %d step %d: bits fell from %v to %v under pointwise better links (energy/bit rose from %v to %v J/bit)",
					trial, step, prevBits, a.Bits,
					float64(e1+e2)/prevBits, float64(e1+e2)/a.Bits)
			}
			prevBits = a.Bits
		}
	}
}

// TestEnergyPerBitMonotoneInModelMargin runs the same monotonicity
// claim through the real PHY: shrinking the calibrated model's fade
// margin (more SNR headroom) must never raise the braid's energy per
// delivered bit at a fixed distance and battery pair.
func TestEnergyPerBitMonotoneInModelMargin(t *testing.T) {
	prevEPB := math.Inf(1)
	for _, margin := range []float64{12, 9, 6, 3, 0} {
		m := phy.NewModel()
		m.FadeMargin = units.DB(margin)
		links := m.Characterize(0.5)
		if len(links) == 0 {
			continue
		}
		a, err := Optimize(links, 1, 10)
		if err != nil {
			t.Fatalf("margin %v: %v", margin, err)
		}
		epb := float64(1+10) / a.Bits
		if epb > prevEPB*(1+1e-12) {
			t.Errorf("energy/bit rose from %v to %v J/bit when fade margin shrank to %v dB", prevEPB, epb, margin)
		}
		prevEPB = epb
	}
	if math.IsInf(prevEPB, 1) {
		t.Fatal("no margin produced a usable link set")
	}
}
