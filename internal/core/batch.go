package core

import (
	"fmt"
	"math"

	"braidio/internal/lp"
	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// BatchScratch is the shared per-round column arena of the batched
// columnar solver: one flat structure-of-arrays workspace a round owner
// (the hub's plan phase, the serve daemon's epoch planner) resets once
// per round instead of round-tripping M per-member buffers through a
// pool. Every per-slot array is either a scalar column (one entry per
// member) or a stride-phy.NumModes row block, so batch kernels iterate
// linearly and parallel workers write only index-owned slots — the same
// determinism discipline as internal/par's other users: results are
// bit-identical at any worker count.
//
// A BatchScratch is not safe for concurrent use by multiple rounds; the
// kernels below parallelize internally across slots.
type BatchScratch struct {
	// Cols is the structure-of-arrays link characterization the column
	// kernels (OptimizeBatch, SolveEq1Batch) read.
	Cols phy.LinkColumns
	// Dists is the distance column the characterization consumes.
	Dists []units.Meter
	// Links holds per-slot canonical []ModeLink rows — the AoS twin of
	// Cols for consumers (the braid's allocation memo) that compare
	// slice identity against linkcache's canonical slices.
	Links [][]phy.ModeLink
	// Idx maps batch slots back to caller indices (e.g. hub member
	// index) when only a subset of a population is batched.
	Idx []int
	// E1 and E2 are the per-slot budget columns the solve kernels read.
	E1, E2 []units.Joule
	// P is the fraction output, one stride-phy.NumModes row per slot;
	// row k's live prefix is Cols.Len[k] long and sums to 1.
	P []float64
	// TX and RX are the mixture's average per-bit costs per slot; Bits
	// is the deliverable payload per slot.
	TX, RX []units.JoulesPerBit
	Bits   []float64
	// Counts and Rem are stride-phy.NumModes block-schedule scratch
	// rows (largest-remainder counts and remainders per slot).
	Counts []int
	Rem    []float64
	// Errs records per-slot solve failures (nil for solved slots).
	Errs []error
	// bases retains each slot's last simplex basis across rounds — the
	// warm-start seed SolveEq1Batch hands lp.SolveWarm. Reset keeps it.
	bases [][]int
	// c, aRow, ones are stride-phy.NumModes Eq. (1) matrix rows.
	c, aRow, ones []float64
}

// Reset sizes the arena for n slots, reusing every underlying array
// when capacity allows (zero allocations in steady state). Slot outputs
// are left stale — kernels overwrite their own slots — but Errs is
// cleared. Retained warm-start bases survive a Reset: slot k's basis
// keeps seeding slot k's next solve, which is exactly what a fixed
// registration order wants.
func (s *BatchScratch) Reset(n int) {
	flat := n * phy.NumModes
	if cap(s.Dists) < n {
		s.Dists = make([]units.Meter, n)
		s.Links = make([][]phy.ModeLink, n)
		s.Idx = make([]int, n)
		s.E1 = make([]units.Joule, n)
		s.E2 = make([]units.Joule, n)
		s.TX = make([]units.JoulesPerBit, n)
		s.RX = make([]units.JoulesPerBit, n)
		s.Bits = make([]float64, n)
		s.Errs = make([]error, n)
		s.P = make([]float64, flat)
		s.Counts = make([]int, flat)
		s.Rem = make([]float64, flat)
		s.c = make([]float64, flat)
		s.aRow = make([]float64, flat)
		s.ones = make([]float64, flat)
		grown := make([][]int, n)
		copy(grown, s.bases)
		s.bases = grown
	}
	s.Dists = s.Dists[:n]
	s.Links = s.Links[:n]
	s.Idx = s.Idx[:n]
	s.E1, s.E2 = s.E1[:n], s.E2[:n]
	s.TX, s.RX, s.Bits = s.TX[:n], s.RX[:n], s.Bits[:n]
	s.Errs = s.Errs[:n]
	s.P = s.P[:flat]
	s.Counts, s.Rem = s.Counts[:flat], s.Rem[:flat]
	s.c, s.aRow, s.ones = s.c[:flat], s.aRow[:flat], s.ones[:flat]
	s.bases = s.bases[:n]
	for i := range s.Errs {
		s.Errs[i] = nil
	}
}

// InvalidateWarm drops every retained warm-start basis; the next
// SolveEq1Batch round solves cold. Owners recycling one arena across
// logically unrelated populations must call it.
func (s *BatchScratch) InvalidateWarm() {
	for i := range s.bases {
		s.bases[i] = s.bases[i][:0]
	}
}

// PRow returns slot k's fraction row, trimmed to its live prefix and
// capacity-clamped so appends can never spill into slot k+1.
func (s *BatchScratch) PRow(k int) []float64 {
	base := k * phy.NumModes
	n := int(s.Cols.Len[k])
	return s.P[base : base+n : base+n]
}

// CountsRow returns slot k's block-count row (live prefix, clamped).
func (s *BatchScratch) CountsRow(k int) []int {
	base := k * phy.NumModes
	n := int(s.Cols.Len[k])
	return s.Counts[base : base+n : base+n]
}

// remRow returns slot k's largest-remainder scratch row.
func (s *BatchScratch) remRow(k int) []float64 {
	base := k * phy.NumModes
	n := int(s.Cols.Len[k])
	return s.Rem[base : base+n : base+n]
}

// BlockCountsRow expands slot k's solved fractions into contiguous
// per-mode frame counts over a window — blockCounts over the arena
// rows, no sequence materialized. The result row aligns with slot k's
// link slots (canonical mode order), exactly as core.ScheduleBlocks
// would count them.
func (s *BatchScratch) BlockCountsRow(k, window int) []int {
	counts := s.CountsRow(k)
	blockCounts(s.PRow(k), window, counts, s.remRow(k))
	return counts
}

// batchSeqThreshold is the slot count below which the batch kernels
// stay sequential — same rationale as linkcache's batch threshold.
const batchSeqThreshold = 64

// parSlots reports whether a kernel over n slots should stripe across
// par.For workers; below the threshold (or at Workers=1) kernels stay
// sequential — and allocation-free, since no worker closure is built.
func parSlots(workers, n int) bool {
	return n >= batchSeqThreshold && workers != 1
}

// OptimizeBatch runs the closed-form offload optimizer (Optimize) over
// every slot of the arena's columns: budgets from E1/E2, links from
// Cols, fractions into P rows, mixtures into TX/RX/Bits, failures into
// Errs. The per-slot enumeration performs bit-for-bit the arithmetic of
// optimizeInto — same candidate order, same strict comparison, same
// index-tracked mixture — so a slot's outputs are bit-identical to
// Optimize on the equivalent []ModeLink at any worker count. The hot
// path allocates nothing (gated by AllocsPerRun tests).
func OptimizeBatch(s *BatchScratch, workers int) {
	n := s.Cols.N
	if parSlots(workers, n) {
		par.For(workers, n, func(k int) { s.Errs[k] = s.optimizeSlot(k) })
		return
	}
	for k := 0; k < n; k++ {
		s.Errs[k] = s.optimizeSlot(k)
	}
}

// optimizeSlot is optimizeInto over slot k's column row.
func (s *BatchScratch) optimizeSlot(k int) error {
	c := &s.Cols
	base := k * phy.NumModes
	n := int(c.Len[k])
	e1, e2 := s.E1[k], s.E2[k]
	if n == 0 {
		return ErrNoLinks
	}
	if e1 <= 0 || e2 <= 0 {
		return fmt.Errorf("core: non-positive budgets %v/%v", float64(e1), float64(e2))
	}
	T := c.T[base : base+n]
	R := c.R[base : base+n]
	for i := 0; i < n; i++ {
		if T[i] <= 0 || R[i] <= 0 || math.IsInf(float64(T[i]), 1) || math.IsInf(float64(R[i]), 1) {
			return fmt.Errorf("core: link %v has unusable costs %v/%v", c.Mode[base+i], T[i], R[i])
		}
	}
	ratio := float64(e1) / float64(e2)

	bestI, bestJ := -1, -1
	bestQ := 0.0
	var bestTX, bestRX units.JoulesPerBit
	bestBits := -1.0
	for i := 0; i < n; i++ {
		bits := bitsFor(T[i], R[i], e1, e2)
		if bits > bestBits {
			bestI, bestJ = i, -1
			bestTX, bestRX, bestBits = T[i], R[i], bits
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ai := float64(T[i]) - ratio*float64(R[i])
			aj := float64(T[j]) - ratio*float64(R[j])
			den := ai - aj
			if den == 0 {
				continue
			}
			q := -aj / den
			if q <= 0 || q >= 1 {
				continue
			}
			qj := 1 - q
			var t, r float64
			t += q * float64(T[i])
			t += qj * float64(T[j])
			r += q * float64(R[i])
			r += qj * float64(R[j])
			tx, rx := units.JoulesPerBit(t), units.JoulesPerBit(r)
			bits := bitsFor(tx, rx, e1, e2)
			if bits > bestBits {
				bestI, bestJ, bestQ = i, j, q
				bestTX, bestRX, bestBits = tx, rx, bits
			}
		}
	}
	p := s.P[base : base+n]
	for i := range p {
		p[i] = 0
	}
	if bestJ < 0 {
		p[bestI] = 1
	} else {
		p[bestI], p[bestJ] = bestQ, 1-bestQ
	}
	s.TX[k], s.RX[k], s.Bits[k] = bestTX, bestRX, bestBits
	return nil
}

// SolveEq1Batch runs the paper's Eq. (1) simplex solve over every slot,
// warm-starting each from the basis its slot retained last round and
// falling back to a cold two-phase solve when the retained basis is
// stale or infeasible. Fractions land in P rows, mixtures in
// TX/RX/Bits, failures (including lp.ErrInfeasible) in Errs. Warm and
// cold solves are bit-identical (lp's canonical extraction), so the
// batch agrees bit-for-bit with per-slot SolveEq1 at any worker count,
// warm or cold. rec, when non-nil, counts warm starts and cold
// fallbacks (a first-ever solve with no retained basis is neither).
func SolveEq1Batch(s *BatchScratch, workers int, rec *obs.Recorder) {
	n := s.Cols.N
	if parSlots(workers, n) {
		par.For(workers, n, func(k int) { s.Errs[k] = s.solveEq1Slot(k, rec) })
		return
	}
	for k := 0; k < n; k++ {
		s.Errs[k] = s.solveEq1Slot(k, rec)
	}
}

// solveEq1Slot is SolveEq1 over slot k's column row, warm-started.
func (s *BatchScratch) solveEq1Slot(k int, rec *obs.Recorder) error {
	cols := &s.Cols
	base := k * phy.NumModes
	n := int(cols.Len[k])
	e1, e2 := s.E1[k], s.E2[k]
	if n == 0 {
		return ErrNoLinks
	}
	if e1 <= 0 || e2 <= 0 {
		return fmt.Errorf("core: non-positive budgets %v/%v", float64(e1), float64(e2))
	}
	T := cols.T[base : base+n]
	R := cols.R[base : base+n]
	for i := 0; i < n; i++ {
		if T[i] <= 0 || R[i] <= 0 || math.IsInf(float64(T[i]), 1) || math.IsInf(float64(R[i]), 1) {
			return fmt.Errorf("core: link %v has unusable costs %v/%v", cols.Mode[base+i], T[i], R[i])
		}
	}
	ratio := float64(e1) / float64(e2)
	c := s.c[base : base+n]
	aRow := s.aRow[base : base+n]
	ones := s.ones[base : base+n]
	for i := 0; i < n; i++ {
		c[i] = float64(T[i]) + float64(R[i])
		aRow[i] = float64(T[i]) - ratio*float64(R[i])
		ones[i] = 1
	}
	scaleRowMax(aRow)
	scaleRowMax(c)
	prob := &lp.Problem{C: c, A: [][]float64{ones, aRow}, B: []float64{1, 0}}
	var basis []int
	if len(s.bases[k]) > 0 {
		basis = s.bases[k]
	}
	sol, warm, err := lp.SolveWarm(prob, basis)
	if rec != nil {
		if warm {
			rec.LPWarmStarts.Add(1)
		} else if basis != nil {
			rec.LPColdFallbacks.Add(1)
		}
	}
	if err != nil {
		s.bases[k] = s.bases[k][:0]
		return err
	}
	s.bases[k] = append(s.bases[k][:0], sol.Basis...)
	p := s.P[base : base+n]
	copy(p, sol.X)
	// Mixture exactly as SolveEq1's: the generic dot product over every
	// slot, zeros included.
	var t, r float64
	for i := 0; i < n; i++ {
		t += p[i] * float64(T[i])
		r += p[i] * float64(R[i])
	}
	s.TX[k], s.RX[k] = units.JoulesPerBit(t), units.JoulesPerBit(r)
	s.Bits[k] = bitsFor(s.TX[k], s.RX[k], e1, e2)
	return nil
}
