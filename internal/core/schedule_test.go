package core

import (
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// scheduleLinks builds a minimal link set for schedule tests — the
// schedulers only read Mode (and SwitchEnergyOf reads Rate).
func scheduleLinks(n int) []phy.ModeLink {
	links := make([]phy.ModeLink, n)
	for i := range links {
		links[i] = phy.ModeLink{Mode: phy.Modes[i%len(phy.Modes)], Rate: units.Rate1M}
	}
	return links
}

// TestBlockCountsFloatNoise pins the clamp for fractions that carry
// float noise: at a window large enough that window·ε crosses a frame
// boundary, fractions summing to 1+ε used to truncate to more than
// window frames (an over-long sequence and an over-priced block
// window), and fractions summing to 1−ε must still be topped up to
// exactly window.
func TestBlockCountsFloatNoise(t *testing.T) {
	const window = 1 << 30
	cases := map[string][]float64{
		"sum 1+1e-9 two modes":   {0.5 + 1e-9, 0.5 + 1e-9},
		"sum 1-1e-9 two modes":   {0.5 - 1e-9, 0.5 - 1e-9},
		"sum 1+1e-9 three modes": {0.25 + 4e-10, 0.25 + 3e-10, 0.5 + 3e-10},
		"sum 1-1e-9 three modes": {0.25 - 4e-10, 0.25 - 3e-10, 0.5 - 3e-10},
		"exact":                  {0.25, 0.25, 0.5},
	}
	for name, p := range cases {
		counts := make([]int, len(p))
		blockCounts(p, window, counts, make([]float64, len(p)))
		total := 0
		for i, c := range counts {
			if c < 0 {
				t.Errorf("%s: count %d negative: %d", name, i, c)
			}
			total += c
		}
		if total != window {
			t.Errorf("%s: counts total %d, want %d", name, total, window)
		}
	}
}

// TestBlockCountsTrimSpreads checks that when several frames must be
// trimmed, the clamp spreads the cuts across modes instead of driving
// one mode's count negative.
func TestBlockCountsTrimSpreads(t *testing.T) {
	// Fractions summing to ~1.5: grossly invalid input, but the clamp
	// must still return a window-exact, non-negative split.
	p := []float64{0.5, 0.5, 0.5}
	const window = 12
	counts := make([]int, len(p))
	blockCounts(p, window, counts, make([]float64, len(p)))
	total := 0
	for i, c := range counts {
		if c < 0 {
			t.Fatalf("count %d negative: %d", i, c)
		}
		total += c
	}
	if total != window {
		t.Fatalf("counts total %d, want %d", total, window)
	}
}

// TestScheduleBlocksWindowExact checks the materialized sequence length
// for noisy fractions at a realistic window.
func TestScheduleBlocksWindowExact(t *testing.T) {
	links := scheduleLinks(3)
	for _, p := range [][]float64{
		{0.33, 0.33, 0.34},
		{1.0/3 + 1e-9, 1.0/3 + 1e-9, 1.0/3 + 1e-9},
		{1.0/3 - 1e-9, 1.0/3 - 1e-9, 1.0/3 - 1e-9},
	} {
		seq := ScheduleBlocks(links, p, 128)
		if len(seq) != 128 {
			t.Errorf("p=%v: block schedule length %d, want 128", p, len(seq))
		}
	}
}

// TestScheduleEmptyLinks pins the empty-links guard: both schedulers
// must return an empty sequence instead of panicking (blockCounts'
// top-up loop used to index remainders[0] on an empty slice).
func TestScheduleEmptyLinks(t *testing.T) {
	if seq := ScheduleBlocks(nil, nil, 16); len(seq) != 0 {
		t.Errorf("ScheduleBlocks(nil) returned %d modes", len(seq))
	}
	if seq := Schedule(nil, nil, 16); len(seq) != 0 {
		t.Errorf("Schedule(nil) returned %d modes", len(seq))
	}
	var counts []int
	blockCounts(nil, 16, counts, nil) // must not panic or spin
}
