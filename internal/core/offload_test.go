package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/phy"
	"braidio/internal/units"
)

func linksAt(t testing.TB, d units.Meter) []phy.ModeLink {
	t.Helper()
	links := phy.NewModel().Characterize(d)
	if len(links) == 0 {
		t.Fatalf("no links at %v m", d)
	}
	return links
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b)) }

func TestOptimizeEqualEnergyUsesBCMix(t *testing.T) {
	links := linksAt(t, 0.3)
	alloc, err := Optimize(links, 3600, 3600)
	if err != nil {
		t.Fatal(err)
	}
	// Equal budgets: the optimum braids passive and backscatter roughly
	// half-and-half and never uses active (line BC of Fig. 9).
	if f := alloc.Fraction(phy.ModeActive); f > 1e-9 {
		t.Errorf("active fraction = %v, want 0", f)
	}
	pas, bs := alloc.Fraction(phy.ModePassive), alloc.Fraction(phy.ModeBackscatter)
	// The exact split (≈0.43/0.57) balances the passive link's duty
	// overhead against backscatter's receiver cost.
	if pas < 0.35 || pas > 0.5 || bs < 0.5 || bs > 0.65 {
		t.Errorf("fractions pas=%v bs=%v, want ≈0.43/0.57", pas, bs)
	}
	// The mixture is power-proportional: TX and RX per-bit costs match
	// the 1:1 budget ratio.
	if !approx(float64(alloc.TX), float64(alloc.RX), 1e-6) {
		t.Errorf("TX/RX costs %v/%v not balanced for 1:1 budgets", alloc.TX, alloc.RX)
	}
}

func TestOptimizePowerProportionalAcrossRatios(t *testing.T) {
	links := linksAt(t, 0.3)
	for _, ratio := range []float64{0.01, 0.1, 1, 10, 100, 1000} {
		alloc, err := Optimize(links, units.Joule(3600*ratio), 3600)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(alloc.TX) / float64(alloc.RX)
		// Within the achievable span (1/2546 .. 3546) the consumption
		// ratio must match the budget ratio exactly.
		if ratio >= 1.0/2000 && ratio <= 2000 {
			if !approx(got, ratio, 1e-6) {
				t.Errorf("ratio %v: consumption ratio = %v", ratio, got)
			}
		}
		sum := 0.0
		for _, p := range alloc.P {
			if p < -1e-12 {
				t.Errorf("negative fraction %v", p)
			}
			sum += p
		}
		if !approx(sum, 1, 1e-9) {
			t.Errorf("fractions sum to %v", sum)
		}
	}
}

func TestOptimizeClampsAtExtremes(t *testing.T) {
	links := linksAt(t, 0.3)
	// Battery ratio way beyond the 2546:1 passive span: the rich
	// transmitter carries the carrier and the receiver sips — pure
	// passive is the bit-maximizing clamp.
	alloc, err := Optimize(links, 3600*1e6, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if f := alloc.Fraction(phy.ModePassive); !approx(f, 1, 1e-9) {
		t.Errorf("extreme TX-rich: passive fraction = %v, want 1", f)
	}
	// Opposite extreme — a tiny transmitter feeding a rich receiver —
	// is the paper's headline backscatter case.
	alloc, err = Optimize(links, 3600, 3600*1e6)
	if err != nil {
		t.Fatal(err)
	}
	if f := alloc.Fraction(phy.ModeBackscatter); !approx(f, 1, 1e-9) {
		t.Errorf("extreme RX-rich: backscatter fraction = %v, want 1", f)
	}
}

// TestOptimizeAgreesWithEq1 cross-checks the direct optimizer against the
// paper's LP formulation wherever the LP is feasible.
func TestOptimizeAgreesWithEq1(t *testing.T) {
	links := linksAt(t, 0.3)
	for _, ratio := range []float64{0.005, 0.05, 0.7, 1, 3, 40, 800} {
		e1 := units.Joule(1000 * ratio)
		e2 := units.Joule(1000)
		direct, err := Optimize(links, e1, e2)
		if err != nil {
			t.Fatal(err)
		}
		viaLP, err := SolveEq1(links, e1, e2)
		if err != nil {
			t.Fatalf("ratio %v: LP infeasible unexpectedly: %v", ratio, err)
		}
		if !approx(direct.Bits, viaLP.Bits, 1e-6) {
			t.Errorf("ratio %v: direct %v bits vs LP %v bits", ratio, direct.Bits, viaLP.Bits)
		}
	}
}

func TestEq1InfeasibleBeyondSpan(t *testing.T) {
	links := linksAt(t, 0.3)
	_, err := SolveEq1(links, 1e12, 1)
	if err == nil {
		t.Fatal("Eq. 1 should be infeasible beyond the achievable ratio span")
	}
}

// TestOptimizeBeatsSingleModes: braiding never delivers fewer bits than
// the best pure mode, and strictly more at moderate asymmetry (the
// Fig. 16 "up to 78% improvement" effect).
func TestOptimizeBeatsSingleModes(t *testing.T) {
	links := linksAt(t, 0.3)
	f := func(rawRatio uint16) bool {
		ratio := math.Pow(10, float64(rawRatio)/65535*8-4) // 1e-4 .. 1e4
		e1 := units.Joule(3600 * ratio)
		e2 := units.Joule(3600)
		braided, err := Optimize(links, e1, e2)
		if err != nil {
			return false
		}
		single, err := BestSingleMode(links, e1, e2)
		if err != nil {
			return false
		}
		return braided.Bits >= single.Bits*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Moderate asymmetry: strict improvement.
	braided, _ := Optimize(links, 3600*3, 3600)
	single, _ := BestSingleMode(links, 3600*3, 3600)
	if braided.Bits <= single.Bits*1.05 {
		t.Errorf("braiding gains only %v× at 3:1", braided.Bits/single.Bits)
	}
}

// TestFig16DiagonalGain pins the equal-energy braided-vs-best-mode gain
// at ≈1.43 (the diagonal of Fig. 16).
func TestFig16DiagonalGain(t *testing.T) {
	links := linksAt(t, 0.3)
	braided, err := Optimize(links, 3600, 3600)
	if err != nil {
		t.Fatal(err)
	}
	single, err := BestSingleMode(links, 3600, 3600)
	if err != nil {
		t.Fatal(err)
	}
	gain := braided.Bits / single.Bits
	if !approx(gain, 1.43, 0.02) {
		t.Errorf("equal-energy gain vs best mode = %v, want ≈1.43", gain)
	}
	// And the best single mode at 1:1 is the active link.
	if single.Dominant() != phy.ModeActive {
		t.Errorf("best single mode at 1:1 = %v, want active", single.Dominant())
	}
}

func TestSingleMode(t *testing.T) {
	links := linksAt(t, 0.3)
	a, err := SingleMode(links, phy.ModePassive, 3600, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if f := a.Fraction(phy.ModePassive); f != 1 {
		t.Errorf("passive fraction = %v, want 1", f)
	}
	if _, err := SingleMode(links[:1], phy.ModeBackscatter, 1, 1); err == nil {
		t.Error("requesting an absent mode should error")
	}
}

func TestValidation(t *testing.T) {
	links := linksAt(t, 0.3)
	if _, err := Optimize(nil, 1, 1); !errors.Is(err, ErrNoLinks) {
		t.Errorf("no links: %v", err)
	}
	if _, err := Optimize(links, 0, 1); err == nil {
		t.Error("zero budget should error")
	}
	dead := []phy.ModeLink{{Mode: phy.ModeActive, T: units.JoulesPerBit(math.Inf(1)), R: 1}}
	if _, err := Optimize(dead, 1, 1); err == nil {
		t.Error("infinite-cost link should error")
	}
}

func TestAllocationAccessors(t *testing.T) {
	links := linksAt(t, 0.3)
	alloc, err := Optimize(links, 3600, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Dominant() != phy.ModeBackscatter {
		t.Errorf("dominant mode = %v, want backscatter for RX-rich budgets", alloc.Dominant())
	}
	if alloc.Fraction(phy.Mode(9)) != 0 {
		t.Error("unknown mode fraction should be 0")
	}
}

// TestRegimeBAllocations: beyond backscatter range the asymmetry can only
// favor the receiver (§6.2: "the nature of asymmetry that is supported
// after 2.6m favors the receiver rather than transmitter").
func TestRegimeBAllocations(t *testing.T) {
	links := linksAt(t, 3)
	// RX-rich: passive mode still gives the receiver a huge efficiency
	// edge.
	alloc, err := Optimize(links, 3600*100, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Fraction(phy.ModePassive) < 0.9 {
		t.Errorf("passive fraction at 3 m TX-rich = %v, want ≈1", alloc.Fraction(phy.ModePassive))
	}
	// TX-rich beyond the active/passive span: clamped, but no
	// backscatter available.
	alloc, err = Optimize(links, 3600, 3600*1e6)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.Fraction(phy.ModeBackscatter) != 0 {
		t.Error("backscatter must be unavailable at 3 m")
	}
}
