// Package rng provides the deterministic random-number streams used by the
// Braidio simulator.
//
// Every stochastic element of the system — fading realizations, Monte-Carlo
// bit errors, traffic jitter — draws from a Stream created here, so an
// experiment run with the same seed reproduces bit-for-bit. The generator
// is xoshiro256** seeded through SplitMix64, the combination recommended by
// the xoshiro authors; both are implemented from the published reference
// algorithms rather than math/rand so that the sequence is stable across Go
// releases.
package rng

import "math"

// Stream is a deterministic pseudo-random stream. It is not safe for
// concurrent use; create one Stream per goroutine (see Split).
type Stream struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	gauss    float64
	hasGauss bool
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *Stream {
	var st Stream
	st.Reseed(seed)
	return &st
}

// Reseed reinitializes the stream in place to the state New(seed) would
// produce, discarding any cached Box-Muller variate. It exists so hot
// paths (rxchain.Runner, Monte-Carlo shards) can reuse one Stream value
// across runs without allocating; New(seed) and Reseed(seed) yield
// byte-identical sequences.
func (r *Stream) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro256** requires a nonzero state; SplitMix64 guarantees that
	// at least one word is nonzero for any seed, but be defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	r.gauss = 0
	r.hasGauss = false
}

// Clone returns an independent copy of the stream: both produce the same
// future sequence and then diverge as they are advanced separately.
func (r *Stream) Clone() *Stream {
	c := *r
	return &c
}

// Split derives a new independent Stream from this one. The child's seed
// consumes one value from the parent, so repeated Splits yield distinct
// streams and the parent sequence shifts deterministically.
func (r *Stream) Split() *Stream { return New(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill
	// here; modulo bias at n values far below 2^64 is negligible for the
	// simulator, but we still reject to keep exact uniformity.
	bound := uint64(n)
	limit := -bound % bound // 2^64 mod bound
	for {
		v := r.Uint64()
		if v >= limit {
			return int(v % bound)
		}
	}
}

// Bool returns a fair coin flip.
func (r *Stream) Bool() bool { return r.Uint64()&1 == 1 }

// Bit returns a fair random bit as a byte (0 or 1), convenient for
// generating payloads in BER Monte-Carlo runs.
func (r *Stream) Bit() byte {
	if r.Bool() {
		return 1
	}
	return 0
}

// Norm returns a standard normal variate (mean 0, standard deviation 1)
// via the Box-Muller transform.
func (r *Stream) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	v := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.gauss = mag * math.Sin(2*math.Pi*v)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*v)
}

// Rayleigh returns a Rayleigh-distributed variate with scale sigma: the
// envelope of a zero-mean complex Gaussian whose real and imaginary parts
// each have standard deviation sigma. Used for non-line-of-sight fading.
func (r *Stream) Rayleigh(sigma float64) float64 {
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return sigma * math.Sqrt(-2*math.Log(u))
}

// Rician returns a Rician-distributed envelope with line-of-sight
// amplitude nu and diffuse scale sigma. With nu = 0 it reduces to a
// Rayleigh variate.
func (r *Stream) Rician(nu, sigma float64) float64 {
	x := nu + sigma*r.Norm()
	y := sigma * r.Norm()
	return math.Hypot(x, y)
}

// Exp returns an exponentially distributed variate with the given mean,
// used for inter-arrival jitter in bursty traffic models.
func (r *Stream) Exp(mean float64) float64 {
	var u float64
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// jumpPoly is xoshiro256**'s published 2^128-step jump polynomial.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the stream by 2^128 steps in O(1) work, yielding a
// stream whose future output is disjoint from the original's next 2^128
// values — the canonical way to carve one seed into independent parallel
// streams with a hard non-overlap guarantee (Split gives statistical
// independence; Jump gives a proof).
func (r *Stream) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
	r.hasGauss = false
}

// Substreams carves one seed into n parallel streams by chaining Jump:
// stream i starts 2^128 × i steps into New(seed)'s sequence, so the
// streams are pairwise non-overlapping for at least 2^128 draws each.
// The layout depends only on (seed, n) — never on how many goroutines
// later consume the streams — which is what makes sharded Monte-Carlo
// sweeps bit-identical at any worker count.
func Substreams(seed uint64, n int) []*Stream {
	if n < 0 {
		panic("rng: negative substream count")
	}
	out := make([]*Stream, n)
	cur := New(seed)
	for i := range out {
		out[i] = cur.Clone()
		cur.Jump()
	}
	return out
}
