package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs across distinct seeds", same)
	}
}

func TestKnownSequenceStable(t *testing.T) {
	// Pin the first outputs for seed 0 so that any accidental change to
	// the generator (which would silently change every experiment) fails
	// loudly. Values were captured from this implementation.
	r := New(0)
	got := [4]uint64{r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(0)
	want := [4]uint64{r2.Uint64(), r2.Uint64(), r2.Uint64(), r2.Uint64()}
	if got != want {
		t.Fatalf("generator is not self-consistent: %v vs %v", got, want)
	}
	if got[0] == got[1] && got[1] == got[2] {
		t.Fatal("degenerate output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("bucket %d count %d deviates too far from %d", i, c, n/10)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRayleighMean(t *testing.T) {
	r := New(6)
	const n, sigma = 200000, 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Rayleigh(sigma)
	}
	want := sigma * math.Sqrt(math.Pi/2)
	if got := sum / n; math.Abs(got-want) > 0.02*want {
		t.Errorf("Rayleigh mean = %v, want ~%v", got, want)
	}
}

func TestRicianReducesToRayleigh(t *testing.T) {
	a, b := New(8), New(8)
	const n, sigma = 100000, 1.5
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += a.Rician(0, sigma)
		_ = b // Rayleigh uses a different draw pattern; compare means only.
		sb += b.Rayleigh(sigma)
	}
	ma, mb := sa/n, sb/n
	if math.Abs(ma-mb) > 0.03*mb {
		t.Errorf("Rician(0,σ) mean %v differs from Rayleigh mean %v", ma, mb)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n, mean = 200000, 0.25
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	if got := sum / n; math.Abs(got-mean) > 0.02*mean {
		t.Errorf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical outputs across split children", same)
	}
}

func TestBitBalance(t *testing.T) {
	r := New(17)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bit() == 1 {
			ones++
		}
	}
	if math.Abs(float64(ones)-n/2) > 4*math.Sqrt(n)/2 {
		t.Errorf("bit stream bias: %d ones of %d", ones, n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func TestJumpDisjointStreams(t *testing.T) {
	a := New(3)
	b := New(3)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/1000 collisions between a stream and its jump", same)
	}
	// Jump is deterministic.
	c := New(3)
	c.Jump()
	d := New(3)
	d.Jump()
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("jump is not deterministic")
		}
	}
}

func TestJumpClearsGaussianCache(t *testing.T) {
	a := New(5)
	_ = a.Norm() // prime the Box-Muller cache
	if !a.hasGauss {
		t.Fatal("premise: Norm should cache its second variate")
	}
	a.Jump()
	if a.hasGauss {
		t.Error("gaussian cache survived Jump; the cached variate belongs to the pre-jump stream")
	}
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	_ = r.Norm() // prime the Box-Muller cache so Reseed must clear it
	for i := 0; i < 100; i++ {
		_ = r.Uint64()
	}
	r.Reseed(42)
	fresh := New(42)
	for i := 0; i < 200; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatalf("Reseed(42) diverged from New(42) at draw %d", i)
		}
		if r.Norm() != fresh.Norm() {
			t.Fatalf("Reseed(42) normal sequence diverged at draw %d", i)
		}
	}
}

func TestCloneSharesFuture(t *testing.T) {
	a := New(7)
	for i := 0; i < 10; i++ {
		_ = a.Uint64()
	}
	b := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
	// Advancing one must not affect the other.
	_ = a.Uint64()
	c := a.Clone()
	_ = a.Uint64()
	if a.Uint64() == c.Uint64() {
		t.Error("original and stale clone should have diverged")
	}
}

func TestSubstreamsDeterministicAndDisjoint(t *testing.T) {
	a := Substreams(9, 4)
	b := Substreams(9, 4)
	for i := range a {
		for k := 0; k < 50; k++ {
			if a[i].Uint64() != b[i].Uint64() {
				t.Fatalf("substream %d not deterministic at draw %d", i, k)
			}
		}
	}
	// Pairwise disjoint prefixes (2^128-jump offsets cannot collide in
	// any observable prefix).
	streams := Substreams(9, 3)
	var draws [3][]uint64
	for i, s := range streams {
		for k := 0; k < 500; k++ {
			draws[i] = append(draws[i], s.Uint64())
		}
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			same := 0
			for k := range draws[i] {
				if draws[i][k] == draws[j][k] {
					same++
				}
			}
			if same > 0 {
				t.Errorf("substreams %d and %d collide on %d/500 draws", i, j, same)
			}
		}
	}
	// Substream 0 is the seed stream itself.
	s0 := Substreams(11, 1)[0]
	ref := New(11)
	for k := 0; k < 100; k++ {
		if s0.Uint64() != ref.Uint64() {
			t.Fatal("substream 0 should equal New(seed)")
		}
	}
	if got := Substreams(5, 0); len(got) != 0 {
		t.Errorf("zero substreams returned %d", len(got))
	}
}

func TestSubstreamsNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count did not panic")
		}
	}()
	Substreams(1, -1)
}
