// Package net scales Braidio from one star to a network of them: many
// hubs, each serving its own braided members, sharing one physical
// channel. Three couplings between stars — all absent from the
// isolated-fleet engine (internal/hub) — are modeled and scheduled:
//
//   - Shared carriers. A backscatter tag does not care whose carrier it
//     reflects. When a neighboring hub is already transmitting, a
//     member's braid can ride that hub's carrier (phy.SharedCarrierLink):
//     the home hub listens with its passive envelope chain instead of
//     funding the 129 mW monostatic reader, moving the carrier bill to
//     the donor who was paying it anyway. The Eq. (1) solve then sees a
//     hub-side backscatter cost three orders of magnitude cheaper.
//
//   - Interference. Every concurrently emitting hub raises the noise
//     floor at every other hub's receiver. The scheduler aggregates the
//     co-channel carrier power arriving at each receiver and threads it
//     through the link characterization as phy.Model.Interference, so
//     rates, BERs, and per-bit costs degrade exactly as rf.SINR says
//     they should. With no interferers the path is gated, not
//     recomputed: results are bit-identical to the isolated model.
//
//   - Relays. A member out of its home hub's range (or facing a brutal
//     direct link) can braid to a nearer foreign hub, which forwards
//     over the hub-to-hub trunk: two chained core.Optimize solves, with
//     per-hop energy billed to member, via, and home respectively. The
//     planner picks relay over direct only when it strictly lowers the
//     member's energy per bit — or when direct is infeasible.
//
// Plan appraises one round without draining anything (the testable,
// fuzzable entry point); Network.Run executes rounds against real
// batteries with the same two-phase determinism contract as hub.Run:
// plan concurrently against immutable snapshots writing only index-owned
// state, commit sequentially in topology order. Results are
// bit-identical at any Workers count, and with interference, carrier
// sharing, and relays all disabled the per-hub arithmetic reduces
// exactly — same canonical link slices, same memo behavior, same commit
// order — to an isolated hub.Run per hub.
package net

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/field"
	"braidio/internal/linkcache"
	"braidio/internal/obs"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Member is one wearable anchored to a home hub.
type Member struct {
	// Device identifies the wearable.
	Device energy.Device
	// Pos is the member's position in the shared plane.
	Pos field.Vec2
	// Load is the member's offered traffic in payload bits per second of
	// wall-clock time.
	Load units.BitRate
}

// Hub is one energy-rich device serving a set of members.
type Hub struct {
	// Device identifies the hub.
	Device energy.Device
	// Pos is the hub's position in the shared plane.
	Pos field.Vec2
	// Members are the wearables homed on this hub.
	Members []Member
}

// Topology is the static geometry of a network: hubs, their members,
// and everyone's position. All distances the scheduler uses derive from
// the positions; there are no free distance parameters to disagree with
// the geometry.
type Topology struct {
	Hubs []Hub
}

// Typed validation errors. Plan and New reject malformed topologies
// with these (wrapped with context) and never panic — the fuzz harness
// pins that contract.
var (
	// ErrNoHubs reports an empty topology.
	ErrNoHubs = errors.New("net: topology has no hubs")
	// ErrEmptyHub reports a hub with no members.
	ErrEmptyHub = errors.New("net: hub has no members")
	// ErrBadPosition reports a NaN or infinite coordinate.
	ErrBadPosition = errors.New("net: non-finite position")
	// ErrBadLoad reports a non-positive or non-finite member load.
	ErrBadLoad = errors.New("net: non-positive load")
	// ErrBadDevice reports a device whose battery capacity is not a
	// positive finite number (energy.NewBattery would panic).
	ErrBadDevice = errors.New("net: non-positive device capacity")
	// ErrCoincident reports two nodes (hub or member) at the exact same
	// position. Near-coincidence is fine — derived distances are clamped
	// to MinDistance — but exact duplicates are almost always a topology
	// generation bug, and the error is cheap to act on.
	ErrCoincident = errors.New("net: coincident node positions")
	// ErrBadRun reports an invalid horizon, slice, or round count.
	ErrBadRun = errors.New("net: invalid horizon or rounds")
)

// ErrMemberQuarantined reports that a member was removed from
// scheduling after exhausting its strike budget. MemberResult.Err wraps
// it together with the final failure's cause.
var ErrMemberQuarantined = errors.New("net: member quarantined")

// MinDistance is the near-field clamp applied to every derived
// distance: the free-space model (and its d⁻² interference aggregate)
// diverges as d→0, and rf.FreeSpacePathLoss rejects d ≤ 0 outright.
// 1 cm matches field.Scene's near-field clamp.
const MinDistance units.Meter = 0.01

// DefaultCarrierShareRange bounds the donor search: only emitting hubs
// within this distance of the member are considered as carrier donors.
// The bistatic link budget (phy.SharedCarrierLink) is the real gate —
// this only caps the search radius.
const DefaultCarrierShareRange units.Meter = 5

// defaultQuarantineStrikes matches hub.Run's strike budget.
const defaultQuarantineStrikes = 3

// Config tunes the network scheduler. The zero value (plus a nil Model)
// is a working default: calibrated PHY, GOMAXPROCS workers, all three
// network couplings enabled.
type Config struct {
	// Model is the calibrated PHY; nil selects phy.NewModel(). A nonzero
	// Model.Interference acts as an ambient noise-raising floor that the
	// scheduler's per-round aggregate adds on top of.
	Model *phy.Model
	// Workers bounds plan-phase concurrency: 0 selects GOMAXPROCS, 1
	// plans sequentially. Results are bit-identical at any value.
	Workers int
	// QuarantineStrikes is the consecutive-failure budget before a
	// member is quarantined; zero means the default of three.
	QuarantineStrikes int
	// AllocationTolerance is propagated to every member braid (see
	// core.Braid.AllocationTolerance).
	AllocationTolerance float64
	// CarrierShareRange caps the donor search radius; zero or negative
	// selects DefaultCarrierShareRange.
	CarrierShareRange units.Meter
	// DisableInterference ignores cross-hub interference: every link is
	// characterized against the isolated-pair model.
	DisableInterference bool
	// DisableCarrierShare never rides a neighbor's carrier.
	DisableCarrierShare bool
	// DisableRelay never considers 2-hop forwarding. With all three
	// Disable flags set, a Run reduces bit-for-bit to an isolated
	// hub.Run per hub.
	DisableRelay bool
	// Obs, when non-nil, receives network counters and is propagated to
	// every member braid. Nil falls back to the process default recorder.
	Obs *obs.Recorder
}

// Validate checks a topology against the typed error set. It is called
// by New (and hence Plan); exported so generators can pre-check.
func Validate(t *Topology) error {
	if t == nil || len(t.Hubs) == 0 {
		return ErrNoHubs
	}
	checkPos := func(p field.Vec2, what string) error {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("%w: %s at (%v, %v)", ErrBadPosition, what, p.X, p.Y)
		}
		return nil
	}
	checkDev := func(d energy.Device, what string) error {
		c := float64(d.Capacity)
		if !(c > 0) || math.IsInf(c, 1) {
			return fmt.Errorf("%w: %s %q capacity %v Wh", ErrBadDevice, what, d.Name, c)
		}
		return nil
	}
	seen := make(map[field.Vec2]string, len(t.Hubs)*4)
	for h := range t.Hubs {
		hub := &t.Hubs[h]
		if len(hub.Members) == 0 {
			return fmt.Errorf("%w: hub %d (%s)", ErrEmptyHub, h, hub.Device.Name)
		}
		if err := checkPos(hub.Pos, fmt.Sprintf("hub %d", h)); err != nil {
			return err
		}
		if err := checkDev(hub.Device, "hub"); err != nil {
			return err
		}
		if prev, dup := seen[hub.Pos]; dup {
			return fmt.Errorf("%w: hub %d and %s", ErrCoincident, h, prev)
		}
		seen[hub.Pos] = fmt.Sprintf("hub %d", h)
		for j := range hub.Members {
			m := &hub.Members[j]
			what := fmt.Sprintf("member %d/%d", h, j)
			if err := checkPos(m.Pos, what); err != nil {
				return err
			}
			if err := checkDev(m.Device, "member"); err != nil {
				return err
			}
			l := float64(m.Load)
			if !(l > 0) || math.IsInf(l, 1) {
				return fmt.Errorf("%w: %s load %v", ErrBadLoad, what, l)
			}
			if prev, dup := seen[m.Pos]; dup {
				return fmt.Errorf("%w: %s and %s", ErrCoincident, what, prev)
			}
			seen[m.Pos] = what
		}
	}
	return nil
}

// clampDist applies the near-field floor to a derived distance.
func clampDist(d float64) units.Meter {
	if !(d > float64(MinDistance)) {
		return MinDistance
	}
	return units.Meter(d)
}

// hubState is one hub's per-round sequential state.
type hubState struct {
	slotLo, slotHi int
	alive          bool
	emitting       bool
	snap           energy.Battery
}

// relayPlan is a slot's appraised 2-hop forwarding decision: the via
// hub, the planned bits, and the three per-bit bills the commit phase
// charges — member (hop-1 TX), via (hop-1 RX + hop-2 TX, one battery),
// home (hop-2 RX). The per-hop costs come verbatim from the two chained
// core.Optimize solves, so relay accounting is exactly the sum of two
// single-hop solves.
type relayPlan struct {
	ok                            bool
	via                           int
	bits                          float64
	txPerBit, viaPerBit, rxPerBit float64
	modeShare                     [phy.NumModes]float64
}

// slot is one (hub, member) pair's scratch: its persistent braid,
// plan-phase battery copies, private link buffers for interfered /
// carrier-shared rounds, and the round verdict the commit consumes.
// Everything here is owned by the slot's index — the plan phase may
// write it from any worker without synchronization.
type slot struct {
	hub, member int
	homeDist    units.Meter
	toHub       []units.Meter // clamped distance to every hub

	braid    core.Braid
	memoBase bool // braid's constructed DisableAllocationMemo
	scr      core.RunScratch
	plan     core.Result
	planB1   energy.Battery
	planB2   energy.Battery
	alloc    core.Allocation // direct / relay appraisal target
	alloc2   core.Allocation // relay hop-2 appraisal target

	// priv backs the slot's interfered or carrier-shared link set. It is
	// deliberately NOT the canonical linkcache slice, so the braid's
	// allocation memo is disabled for such rounds (the buffer address is
	// stable across rounds while its contents change — exactly the
	// stale-reuse hazard the memo's slice-identity check cannot see).
	priv      []phy.ModeLink
	relayBuf  []phy.ModeLink // hop-1 characterization scratch
	relayBuf2 []phy.ModeLink // hop-2 characterization scratch

	// Round verdict, reset in phase 0.
	err                          error
	active                       bool
	skipQuarantined, skipStarved bool
	private                      bool
	mw                           float64
	donor                        int
	shared                       phy.ModeLink
	sharedOK                     bool
	links                        []phy.ModeLink
	op                           Op
	directTX                     float64
	directBits                   float64
	relay                        relayPlan
}

// Network is a constructed scheduler over a validated topology. Create
// with New, then Run (or PlanRound). A Network owns its scratch and is
// not safe for concurrent use; the topology must not be mutated while
// the Network is alive.
type Network struct {
	cfg     Config
	model   *phy.Model
	view    *linkcache.View
	topo    *Topology
	hubs    []hubState
	slots   []slot
	strikes []int
	batch   core.BatchScratch
	// hubDist[a][b] is the clamped hub-to-hub trunk distance; intMW[a][b]
	// is the co-channel carrier power (linear mW, fade-derated) hub a's
	// emission lands at hub b's receiver — precomputed once, geometry is
	// static.
	hubDist [][]units.Meter
	intMW   [][]float64

	strikeLimit  int
	carrierRange units.Meter
}

// New validates the topology and builds a scheduler over it.
func New(t *Topology, cfg Config) (*Network, error) {
	if err := Validate(t); err != nil {
		return nil, err
	}
	if cfg.Model == nil {
		cfg.Model = phy.NewModel()
	}
	if cfg.Workers < 0 {
		cfg.Workers = 0
	}
	n := &Network{
		cfg:          cfg,
		model:        cfg.Model,
		view:         linkcache.NewView(cfg.Model),
		topo:         t,
		strikeLimit:  cfg.QuarantineStrikes,
		carrierRange: cfg.CarrierShareRange,
	}
	if n.strikeLimit <= 0 {
		n.strikeLimit = defaultQuarantineStrikes
	}
	if n.carrierRange <= 0 {
		n.carrierRange = DefaultCarrierShareRange
	}
	nh := len(t.Hubs)
	n.hubs = make([]hubState, nh)
	n.hubDist = make([][]units.Meter, nh)
	n.intMW = make([][]float64, nh)
	for a := 0; a < nh; a++ {
		n.hubDist[a] = make([]units.Meter, nh)
		n.intMW[a] = make([]float64, nh)
		for b := 0; b < nh; b++ {
			if a == b {
				continue
			}
			d := clampDist(t.Hubs[a].Pos.Dist(t.Hubs[b].Pos))
			n.hubDist[a][b] = d
			rx := n.model.OneWay.Received(phy.CarrierPower, d).Sub(n.model.FadeMargin)
			n.intMW[a][b] = rx.Watts().Milliwatts()
		}
	}
	lo := 0
	for h := range t.Hubs {
		hub := &t.Hubs[h]
		n.hubs[h].slotLo = lo
		for j := range hub.Members {
			m := &hub.Members[j]
			s := slot{
				hub:      h,
				member:   j,
				homeDist: clampDist(m.Pos.Dist(hub.Pos)),
				toHub:    make([]units.Meter, nh),
				donor:    -1,
			}
			for v := 0; v < nh; v++ {
				s.toHub[v] = clampDist(m.Pos.Dist(t.Hubs[v].Pos))
			}
			s.braid = core.DefaultBraid(n.model, s.homeDist)
			s.braid.Obs = cfg.Obs
			s.braid.AllocationTolerance = cfg.AllocationTolerance
			s.memoBase = s.braid.DisableAllocationMemo
			n.slots = append(n.slots, s)
			lo++
		}
		n.hubs[h].slotHi = lo
	}
	n.strikes = make([]int, len(n.slots))
	return n, nil
}

// Slots returns the number of (hub, member) pairs the scheduler serves.
func (n *Network) Slots() int { return len(n.slots) }

// interferenceAt aggregates the co-channel carrier power (linear mW)
// arriving at hub rx's receiver from every emitting hub, excluding rx
// itself and up to one additional hub (the carrier donor whose emission
// is the wanted signal, or the relay transmitter). Summation is in
// fixed hub-index order, so the aggregate is deterministic.
func (n *Network) interferenceAt(rx, exclude int) float64 {
	mw := 0.0
	for h := range n.hubs {
		if h == rx || h == exclude || !n.hubs[h].emitting {
			continue
		}
		mw += n.intMW[h][rx]
	}
	return mw
}

// newBatteries builds fresh batteries for every hub and member slot.
func (n *Network) newBatteries() (hubBatts, memberBatts []*energy.Battery) {
	hubBatts = make([]*energy.Battery, len(n.topo.Hubs))
	for h := range n.topo.Hubs {
		hubBatts[h] = n.topo.Hubs[h].Device.NewBattery()
	}
	memberBatts = make([]*energy.Battery, len(n.slots))
	for i := range n.slots {
		s := &n.slots[i]
		memberBatts[i] = n.topo.Hubs[s.hub].Members[s.member].Device.NewBattery()
	}
	return hubBatts, memberBatts
}
