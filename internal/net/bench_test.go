package net

import (
	"fmt"
	"testing"
)

// BenchmarkNetFleetHour plans and commits a one-hour horizon (12 rounds)
// over the dense golden grid — both network couplings active — at
// serial and parallel worker counts. Network state is rebuilt once per
// benchmark; each iteration is a full Run, so the number reported is
// the steady-state cost of an hour of fleet scheduling.
func BenchmarkNetFleetHour(b *testing.B) {
	topo := denseGrid(b)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			n, err := New(topo, Config{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := n.Run(3600, 12)
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalBits() <= 0 {
					b.Fatal("benchmark run delivered nothing")
				}
			}
		})
	}
}

// BenchmarkNetPlanRound isolates the planning half: one round's census,
// donor election, interference aggregation, link characterization, and
// per-slot appraisal, without the commit.
func BenchmarkNetPlanRound(b *testing.B) {
	n, err := New(denseGrid(b), Config{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.PlanRound(300); err != nil {
			b.Fatal(err)
		}
	}
}
