package net

import (
	"fmt"
	"math"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Op is the per-member operation the planner chose for a round.
type Op uint8

const (
	// OpSkip: the member was not served (dead home hub, quarantined, or
	// starved).
	OpSkip Op = iota
	// OpDirect: ordinary braid to the home hub on its own carrier.
	OpDirect
	// OpShared: braid to the home hub riding a neighbor hub's carrier
	// for the backscatter mode.
	OpShared
	// OpRelay: 2-hop forwarding through a foreign hub.
	OpRelay
	// OpUnreachable: no direct link closes and no relay is available.
	OpUnreachable
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpSkip:
		return "skip"
	case OpDirect:
		return "direct"
	case OpShared:
		return "shared"
	case OpRelay:
		return "relay"
	case OpUnreachable:
		return "unreachable"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// MemberPlan is one member's appraised round in a RoundPlan.
type MemberPlan struct {
	// Hub and Member locate the slot in the topology.
	Hub, Member int
	// Op is the chosen operation.
	Op Op
	// Donor is the carrier-donor hub for OpShared (-1 otherwise).
	Donor int
	// Via is the relay hub for OpRelay (-1 otherwise).
	Via int
	// InterferenceMW is the aggregate co-channel carrier power (linear
	// milliwatts) at the receiver serving this member.
	InterferenceMW float64
	// DirectTX is the member's appraised energy per bit on the direct
	// path (+Inf when no direct link closes); RelayTX is the same for
	// the best relay candidate (+Inf when none).
	DirectTX, RelayTX units.JoulesPerBit
	// Bits is the payload the chosen operation would deliver this round.
	Bits float64
}

// RoundPlan is the appraisal of one network round against fresh
// batteries: which hubs emit, and what every member would do. Nothing
// is drained — Plan is the pure, fuzzable view of the scheduler.
type RoundPlan struct {
	// Emitting flags the hubs whose carrier is on the air this round.
	Emitting []bool
	// Members holds one plan per (hub, member) slot, in topology order.
	Members []MemberPlan
}

// Plan validates the topology and appraises one round of length slice
// against fresh batteries. It never panics on malformed input: every
// failure is one of the package's typed errors.
func Plan(t *Topology, cfg Config, slice units.Second) (*RoundPlan, error) {
	n, err := New(t, cfg)
	if err != nil {
		return nil, err
	}
	return n.PlanRound(slice)
}

// PlanRound appraises one round of length slice against fresh
// batteries without draining anything.
func (n *Network) PlanRound(slice units.Second) (*RoundPlan, error) {
	if !(float64(slice) > 0) || math.IsInf(float64(slice), 1) {
		return nil, fmt.Errorf("%w: slice %v", ErrBadRun, float64(slice))
	}
	hubBatts, memberBatts := n.newBatteries()
	res := n.newResult(slice, 1)
	n.phase0(res, hubBatts, memberBatts)
	par.For(n.cfg.Workers, len(n.slots), func(i int) {
		n.planSlot(i, memberBatts, slice, true, false)
	})
	p := &RoundPlan{
		Emitting: make([]bool, len(n.hubs)),
		Members:  make([]MemberPlan, len(n.slots)),
	}
	for h := range n.hubs {
		p.Emitting[h] = n.hubs[h].emitting
	}
	for i := range n.slots {
		s := &n.slots[i]
		mp := MemberPlan{
			Hub: s.hub, Member: s.member,
			Op: s.op, Donor: -1, Via: -1,
			InterferenceMW: s.mw,
			DirectTX:       units.JoulesPerBit(math.Inf(1)),
			RelayTX:        units.JoulesPerBit(math.Inf(1)),
		}
		if s.active {
			mp.DirectTX = units.JoulesPerBit(s.directTX)
			if s.relay.ok {
				mp.RelayTX = units.JoulesPerBit(s.relay.txPerBit)
			}
			switch s.op {
			case OpShared:
				mp.Donor = s.donor
				mp.Bits = s.directBits
			case OpDirect:
				mp.Bits = s.directBits
			case OpRelay:
				mp.Via = s.relay.via
				mp.Bits = s.relay.bits
			}
		}
		p.Members[i] = mp
	}
	return p, nil
}

// phase0 is the sequential round prologue: hub liveness and energy
// snapshots, member eligibility, the emission census, donor selection,
// per-receiver interference aggregation, and link construction. Slots
// on the isolated path (no interference, no donor) get their canonical
// linkcache slices via one batched characterization — the same
// arithmetic, the same shared slices, and hence the same allocation-
// memo behavior as hub.Run. Interfered or carrier-shared slots get a
// private link build with the braid's allocation memo disabled for the
// round (see slot.priv).
func (n *Network) phase0(res *Result, hubBatts, memberBatts []*energy.Battery) {
	for h := range n.hubs {
		hs := &n.hubs[h]
		hs.alive = !hubBatts[h].Empty()
		hs.emitting = false
		hs.snap = *hubBatts[h]
	}
	// Pass A: eligibility and the emission census.
	for i := range n.slots {
		s := &n.slots[i]
		mr := &res.Hubs[s.hub].Members[s.member]
		s.err = nil
		s.active = false
		s.private = false
		s.mw = 0
		s.donor = -1
		s.sharedOK = false
		s.op = OpSkip
		s.links = nil
		s.braid.Links = nil
		s.relay = relayPlan{via: -1}
		s.directTX = math.Inf(1)
		s.directBits = 0
		s.skipQuarantined = mr.Quarantined
		s.skipStarved = !mr.Quarantined && memberBatts[i].Empty()
		if !n.hubs[s.hub].alive || s.skipQuarantined || s.skipStarved {
			continue
		}
		s.active = true
		n.hubs[s.hub].emitting = true
	}
	// Pass B: donors, interference, and the canonical/private split.
	n.batch.Reset(len(n.slots))
	nb := 0
	for i := range n.slots {
		s := &n.slots[i]
		if !s.active {
			continue
		}
		n.pickDonor(s)
		if s.donor < 0 && !n.cfg.DisableInterference {
			s.mw = n.interferenceAt(s.hub, -1)
		}
		s.private = s.mw > 0 || s.sharedOK
		if !s.private {
			n.batch.Dists[nb] = s.homeDist
			n.batch.Idx[nb] = i
			nb++
		}
	}
	n.view.CharacterizeBatch(n.cfg.Workers, n.batch.Dists[:nb], n.batch.Links[:nb])
	for r := 0; r < nb; r++ {
		n.slots[n.batch.Idx[r]].links = n.batch.Links[r]
	}
	for i := range n.slots {
		s := &n.slots[i]
		if !s.active || !s.private {
			continue
		}
		mi := *n.model
		mi.Interference = n.model.Interference + s.mw
		s.priv = mi.CharacterizeInto(s.priv, s.homeDist)
		if s.sharedOK {
			// Replace the monostatic backscatter entry (canonical mode
			// order puts it last) with the donor-carrier bistatic link;
			// if the monostatic round trip did not close, append.
			if k := len(s.priv); k > 0 && s.priv[k-1].Mode == phy.ModeBackscatter {
				s.priv[k-1] = s.shared
			} else {
				s.priv = append(s.priv, s.shared)
			}
		}
		s.links = s.priv
	}
}

// pickDonor selects the slot's carrier donor: the nearest emitting
// foreign hub within the carrier-share radius whose bistatic budget
// actually closes at this geometry (under the interference the member's
// home receiver would then see). No donor is chosen when the budget
// refuses — the nearest-first scan does not fall back to farther
// donors, keeping the policy trivially deterministic.
func (n *Network) pickDonor(s *slot) {
	if n.cfg.DisableCarrierShare {
		return
	}
	best, bestD := -1, n.carrierRange
	for v := range n.hubs {
		if v == s.hub || !n.hubs[v].emitting {
			continue
		}
		if d := s.toHub[v]; d < bestD {
			best, bestD = v, d
		}
	}
	if best < 0 {
		return
	}
	mw := 0.0
	if !n.cfg.DisableInterference {
		mw = n.interferenceAt(s.hub, best)
	}
	mi := *n.model
	mi.Interference = n.model.Interference + mw
	if sl, ok := mi.SharedCarrierLink(s.toHub[best], s.homeDist); ok {
		s.donor = best
		s.mw = mw
		s.shared = sl
		s.sharedOK = true
	}
}

// planSlot is the parallel plan phase for one slot: appraise direct
// versus relay (when appraise is set), then — for non-relay ops when
// execute is set — run the member's braid against battery copies,
// exactly as hub.planMember does. It writes only slot-owned state.
func (n *Network) planSlot(i int, memberBatts []*energy.Battery, slice units.Second, appraise, execute bool) {
	s := &n.slots[i]
	if !s.active {
		return
	}
	hs := &n.hubs[s.hub]
	m := &n.topo.Hubs[s.hub].Members[s.member]
	s.op = OpDirect
	if s.sharedOK {
		s.op = OpShared
	}
	load := float64(m.Load) * float64(slice)
	e1, e2 := memberBatts[i].Remaining(), hs.snap.Remaining()
	if appraise {
		if len(s.links) > 0 {
			if err := core.OptimizeInto(&s.alloc, nil, s.links, e1, e2); err == nil {
				s.directTX = float64(s.alloc.TX)
				s.directBits = math.Min(load, s.alloc.Bits)
			}
		}
		if !n.cfg.DisableRelay {
			n.appraiseRelay(i, e1, load)
			if s.relay.ok && (math.IsInf(s.directTX, 1) || s.relay.txPerBit < s.directTX) {
				s.op = OpRelay
			}
		}
		if s.op != OpRelay && math.IsInf(s.directTX, 1) && !execute {
			s.op = OpUnreachable
		}
	}
	if !execute || s.op == OpRelay {
		return
	}
	s.braid.Distance = s.homeDist
	s.braid.MaxBits = load
	s.braid.DisableAllocationMemo = s.memoBase || s.private
	s.planB1 = *memberBatts[i]
	s.planB2 = hs.snap
	if len(s.links) == 0 {
		// An empty canonical slice would make the braid re-characterize
		// internally; on the private path that would silently drop the
		// interference. Fail the round with the braid's own verdict.
		s.err = core.ErrOutOfRange
		return
	}
	s.braid.Links = s.links
	s.err = s.braid.RunInto(&s.plan, &s.scr, &s.planB1, &s.planB2)
}

// relayLinks characterizes one relay hop terminating at hub rx over
// distance d, excluding the hop's own transmitter from the interference
// aggregate. The zero-interference path returns the canonical cached
// slice; otherwise the hop is characterized into the slot-owned buffer.
func (n *Network) relayLinks(buf *[]phy.ModeLink, d units.Meter, rx, exclude int) []phy.ModeLink {
	mw := 0.0
	if !n.cfg.DisableInterference {
		mw = n.interferenceAt(rx, exclude)
	}
	if mw == 0 {
		return n.view.Characterize(d)
	}
	mi := *n.model
	mi.Interference = n.model.Interference + mw
	*buf = mi.CharacterizeInto(*buf, d)
	return *buf
}

// appraiseRelay searches the slot's 2-hop forwarding candidates: for
// every alive foreign hub, chain Optimize(member→via) with
// Optimize(via→home) against the round-start snapshots and keep the
// candidate minimizing the member's energy per bit (strict improvement,
// lowest hub index on ties). The planned bits are bounded by the load,
// the member's hop-1 budget, the via's combined hop-1 RX + hop-2 TX
// budget (one battery pays both), and the home hub's hop-2 RX budget.
func (n *Network) appraiseRelay(i int, e1 units.Joule, load float64) {
	s := &n.slots[i]
	home := s.hub
	eHome := n.hubs[home].snap.Remaining()
	bestTX := math.Inf(1)
	for v := range n.hubs {
		if v == home || !n.hubs[v].alive {
			continue
		}
		eVia := n.hubs[v].snap.Remaining()
		links1 := n.relayLinks(&s.relayBuf, s.toHub[v], v, -1)
		if len(links1) == 0 {
			continue
		}
		if err := core.OptimizeInto(&s.alloc, nil, links1, e1, eVia); err != nil {
			continue
		}
		if !(float64(s.alloc.TX) < bestTX) {
			continue
		}
		links2 := n.relayLinks(&s.relayBuf2, n.hubDist[v][home], home, v)
		if len(links2) == 0 {
			continue
		}
		if err := core.OptimizeInto(&s.alloc2, nil, links2, eVia, eHome); err != nil {
			continue
		}
		rp := relayPlan{
			ok:        true,
			via:       v,
			txPerBit:  float64(s.alloc.TX),
			viaPerBit: float64(s.alloc.RX) + float64(s.alloc2.TX),
			rxPerBit:  float64(s.alloc2.RX),
		}
		bits := load
		if c := float64(e1) / rp.txPerBit; c < bits {
			bits = c
		}
		if c := float64(eVia) / rp.viaPerBit; c < bits {
			bits = c
		}
		if c := float64(eHome) / rp.rxPerBit; c < bits {
			bits = c
		}
		rp.bits = bits
		for k := range s.alloc.Links {
			rp.modeShare[s.alloc.Links[k].Mode] += s.alloc.P[k]
		}
		s.relay = rp
		bestTX = rp.txPerBit
	}
}
