package net

import (
	"math"
	"math/rand"
	"testing"

	"braidio/internal/field"
	"braidio/internal/hub"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// randomTopology draws a topology the way braidio-sim's fleet mode
// draws populations: 2–4 hubs scattered over a 40 m court, 1–3 members
// each at arm's reach — except that a quarter of members camp near a
// *foreign* hub, the geometry where 2-hop relaying can genuinely beat
// the direct braid (the foreign hub offers the cheap sub-5 m modes the
// distant home hub cannot).
func randomTopology(r *rand.Rand, t testing.TB) *Topology {
	hubDev := dev(t, "iPhone 6S")
	watch := dev(t, "Apple Watch")
	nh := 2 + r.Intn(3)
	hubPos := make([]field.Vec2, nh)
	for h := range hubPos {
		hubPos[h] = field.Vec2{X: 40 * r.Float64(), Y: 40 * r.Float64()}
	}
	topo := &Topology{Hubs: make([]Hub, nh)}
	for h := 0; h < nh; h++ {
		nm := 1 + r.Intn(3)
		members := make([]Member, nm)
		for j := 0; j < nm; j++ {
			anchor := hubPos[h]
			if r.Float64() < 0.25 {
				anchor = hubPos[(h+1+r.Intn(nh-1))%nh]
			}
			rad := 0.2 + 1.8*r.Float64()
			ang := 2 * math.Pi * r.Float64()
			members[j] = Member{
				Device: watch,
				Pos:    field.Vec2{X: anchor.X + rad*math.Cos(ang), Y: anchor.Y + rad*math.Sin(ang)},
				Load:   units.BitRate(1000 + r.Intn(50000)),
			}
		}
		topo.Hubs[h] = Hub{Device: hubDev, Pos: hubPos[h], Members: members}
	}
	return topo
}

// propertyTopologies is the randomized-population count; -short trims
// it for quick local loops, CI runs the full wall.
func propertyTopologies(t *testing.T) int {
	if testing.Short() {
		return 60
	}
	return 500
}

// TestPlanProperties is the 500-topology property wall over net.Plan:
//
//   - a relay is chosen only when it strictly lowers the member's
//     energy per bit versus direct (or direct is infeasible — +Inf);
//   - carrier donors are real: a foreign, emitting hub;
//   - interference aggregates are finite and non-negative, and a
//     positive aggregate never *improves* a link (the SINR ≤ SNR
//     corollary at the link-characterization level);
//   - the plan is bit-identical across worker counts.
func TestPlanProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	const slice = units.Second(300)
	for trial := 0; trial < propertyTopologies(t); trial++ {
		topo := randomTopology(r, t)
		p, err := Plan(topo, Config{Workers: 1}, slice)
		if err != nil {
			t.Fatalf("trial %d: Plan: %v", trial, err)
		}
		p4, err := Plan(topo, Config{Workers: 4}, slice)
		if err != nil {
			t.Fatalf("trial %d: Plan workers=4: %v", trial, err)
		}
		if p.Digest() != p4.Digest() {
			t.Fatalf("trial %d: plan digest diverged across workers: %#x != %#x", trial, p.Digest(), p4.Digest())
		}
		model := phy.NewModel()
		for i, mp := range p.Members {
			if math.IsNaN(mp.InterferenceMW) || mp.InterferenceMW < 0 {
				t.Fatalf("trial %d member %d: bad interference %v", trial, i, mp.InterferenceMW)
			}
			if math.IsNaN(mp.Bits) || mp.Bits < 0 {
				t.Fatalf("trial %d member %d: bad bits %v", trial, i, mp.Bits)
			}
			switch mp.Op {
			case OpRelay:
				if !(float64(mp.RelayTX) < float64(mp.DirectTX)) {
					t.Errorf("trial %d member %d: relay chosen at %v J/bit, direct %v — not a strict improvement",
						trial, i, float64(mp.RelayTX), float64(mp.DirectTX))
				}
			case OpShared:
				if mp.Donor < 0 || mp.Donor == mp.Hub || !p.Emitting[mp.Donor] {
					t.Errorf("trial %d member %d: bogus donor %d (hub %d)", trial, i, mp.Donor, mp.Hub)
				}
			}
			if mp.InterferenceMW > 0 {
				// Interference never improves a link: every mode the
				// interfered model still offers exists clean, at no lower
				// goodput and no better BER at equal rate.
				d := clampDist(topo.Hubs[mp.Hub].Members[mp.Member].Pos.Dist(topo.Hubs[mp.Hub].Pos))
				clean := model.Characterize(d)
				noisy := *model
				noisy.Interference = mp.InterferenceMW
				dirty := noisy.Characterize(d)
				for _, dl := range dirty {
					found := false
					for _, cl := range clean {
						if cl.Mode != dl.Mode {
							continue
						}
						found = true
						if dl.Good > cl.Good {
							t.Errorf("trial %d member %d: interference raised %v goodput %v > %v",
								trial, i, dl.Mode, float64(dl.Good), float64(cl.Good))
						}
						if dl.Rate == cl.Rate && dl.BER < cl.BER {
							t.Errorf("trial %d member %d: interference lowered %v BER", trial, i, dl.Mode)
						}
					}
					if !found {
						t.Errorf("trial %d member %d: mode %v alive only under interference", trial, i, dl.Mode)
					}
				}
			}
		}
	}
}

// isolatedConfig is the anchor configuration: every network coupling
// off. A Run in this configuration must reduce, hub by hub, to the
// isolated star engine.
func isolatedConfig(workers int) Config {
	return Config{
		Workers:             workers,
		DisableInterference: true,
		DisableCarrierShare: true,
		DisableRelay:        true,
	}
}

// TestDisabledPathMatchesIsolatedHubs is the regression anchor the
// acceptance criteria demand: with interference, carrier sharing, and
// relays all disabled, a network Run's per-hub arithmetic is
// bit-for-bit the isolated fleet engine's — same canonical link
// slices, same allocation-memo behavior, same commit order, same
// starve/strike/replan/death bookkeeping — across randomized
// topologies.
func TestDisabledPathMatchesIsolatedHubs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const (
		horizon = units.Second(1800)
		rounds  = 6
	)
	trials := propertyTopologies(t)
	for trial := 0; trial < trials; trial++ {
		topo := randomTopology(r, t)
		res := runNet(t, topo, isolatedConfig(1+trial%8), horizon, rounds)
		for h := range topo.Hubs {
			th := &topo.Hubs[h]
			star := hub.New(th.Device, nil)
			skip := false
			for j := range th.Members {
				m := &th.Members[j]
				err := star.Add(hub.Member{
					Device:   m.Device,
					Distance: clampDist(m.Pos.Dist(th.Pos)),
					Load:     m.Load,
				})
				if err != nil {
					// A member out of every mode's range: hub.Add refuses
					// up front, the network quarantines it after striking
					// out. Equivalence is checked by the quarantine
					// assertions elsewhere; skip the star twin.
					skip = true
				}
			}
			if skip {
				continue
			}
			want, err := star.Run(horizon, rounds)
			if err != nil {
				t.Fatalf("trial %d hub %d: star run: %v", trial, h, err)
			}
			got := &res.Hubs[h]
			bitsEq := func(field string, a, b float64) {
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("trial %d hub %d: %s = %v, star %v", trial, h, field, a, b)
				}
			}
			bitsEq("Drain", float64(got.Drain), float64(want.HubDrain))
			if got.Exhausted != want.HubExhausted || got.DiedRound != want.HubDiedRound {
				t.Errorf("trial %d hub %d: death (%v, %d) vs star (%v, %d)",
					trial, h, got.Exhausted, got.DiedRound, want.HubExhausted, want.HubDiedRound)
			}
			if got.Replans != want.Replans || got.LPSolves != want.LPSolves || got.AllocReuses != want.AllocReuses {
				t.Errorf("trial %d hub %d: solver counters (%d, %d, %d) vs star (%d, %d, %d)",
					trial, h, got.Replans, got.LPSolves, got.AllocReuses,
					want.Replans, want.LPSolves, want.AllocReuses)
			}
			for j := range got.Members {
				gm, wm := &got.Members[j], &want.Members[j]
				bitsEq("member bits", gm.Bits, wm.Bits)
				bitsEq("member drain", float64(gm.MemberDrain), float64(wm.MemberDrain))
				bitsEq("hub drain", float64(gm.HubDrain), float64(wm.HubDrain))
				for mode := range gm.ModeBits {
					bitsEq("mode bits", gm.ModeBits[mode], wm.ModeBits[mode])
				}
				if gm.RelayBits != 0 || gm.ViaDrain != 0 || gm.SharedRounds != 0 || gm.InterferedRounds != 0 {
					t.Errorf("trial %d hub %d member %d: disabled run recorded couplings: %+v", trial, h, j, gm)
				}
				if gm.Starved != wm.Starved || gm.Quarantined != wm.Quarantined {
					t.Errorf("trial %d hub %d member %d: flags (%v, %v) vs star (%v, %v)",
						trial, h, j, gm.Starved, gm.Quarantined, wm.Starved, wm.Quarantined)
				}
				if gm.Quarantined && gm.QuarantinedRound != wm.QuarantinedRound {
					t.Errorf("trial %d hub %d member %d: quarantined round %d vs star %d",
						trial, h, j, gm.QuarantinedRound, wm.QuarantinedRound)
				}
			}
		}
		if res.RelayRounds != 0 || res.SharedRounds != 0 || res.InterferedRounds != 0 || res.RelayBits != 0 {
			t.Fatalf("trial %d: disabled run recorded network couplings: %+v", trial, res)
		}
	}
}

// TestDisabledRunBitIdenticalAcrossWorkers: the full engine (couplings
// on) is bit-identical across worker counts on random topologies too,
// not only the pinned golden geometries.
func TestRandomTopologyWorkerDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		topo := randomTopology(r, t)
		ref := runNet(t, topo, Config{Workers: 1}, 900, 3).Digest()
		for _, workers := range []int{2, 8} {
			if got := runNet(t, topo, Config{Workers: workers}, 900, 3).Digest(); got != ref {
				t.Fatalf("trial %d: workers=%d digest %#x != workers=1 %#x", trial, workers, got, ref)
			}
		}
	}
}
