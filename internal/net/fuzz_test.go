package net

import (
	"errors"
	"math"
	"testing"

	"braidio/internal/energy"
	"braidio/internal/field"
	"braidio/internal/units"
)

// typedPlanError reports whether err is one of net.Plan's documented
// failure modes. Anything else escaping Plan is a contract violation.
func typedPlanError(err error) bool {
	for _, want := range []error{
		ErrNoHubs, ErrEmptyHub, ErrBadPosition, ErrBadLoad,
		ErrBadDevice, ErrCoincident, ErrBadRun,
	} {
		if errors.Is(err, want) {
			return true
		}
	}
	return false
}

// FuzzPlan throws adversarial two-hub topologies at net.Plan — NaN and
// infinite coordinates, negative loads, zero-capacity devices, members
// stacked on hubs, negative slices — and requires the typed-error
// contract: Plan either succeeds with finite, deterministic output or
// returns one of the package's typed errors. It never panics.
func FuzzPlan(f *testing.F) {
	f.Add(0.0, 0.0, 1.6, 0.0, 0.3, 0.1, 20000.0, 6.55, 0.78, 300.0)
	f.Add(1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1000.0, 6.55, 0.78, 300.0)       // everything coincident
	f.Add(math.NaN(), 0.0, 1.0, 0.0, 0.5, 0.0, 1000.0, 6.55, 0.78, 60.0) // NaN position
	f.Add(0.0, 0.0, math.Inf(1), 0.0, 0.5, 0.0, 1000.0, 6.55, 0.78, 60.0)
	f.Add(0.0, 0.0, 2000.0, 0.0, 1800.0, 0.0, -5.0, 6.55, 0.78, 300.0) // negative load
	f.Add(0.0, 0.0, 1.0, 0.0, 0.5, 0.0, 1000.0, 0.0, 0.78, 300.0)      // zero-capacity hub
	f.Add(0.0, 0.0, 1.0, 0.0, 0.5, 0.0, 1000.0, 6.55, -1.0, 300.0)     // negative member battery
	f.Add(0.0, 0.0, 1.0, 0.0, 0.5, 0.0, 1000.0, 6.55, 0.78, -10.0)     // negative slice
	f.Add(1e308, 1e308, -1e308, -1e308, 0.0, 0.0, 1e18, 6.55, 0.78, 1e18)
	f.Fuzz(func(t *testing.T, h0x, h0y, h1x, h1y, mx, my, load, hubWh, memWh float64, slice float64) {
		topo := &Topology{Hubs: []Hub{
			{
				Device: energy.Device{Name: "fuzz-hub", Capacity: units.WattHour(hubWh)},
				Pos:    field.Vec2{X: h0x, Y: h0y},
				Members: []Member{
					{
						Device: energy.Device{Name: "fuzz-member", Capacity: units.WattHour(memWh)},
						Pos:    field.Vec2{X: mx, Y: my},
						Load:   units.BitRate(load),
					},
				},
			},
			{
				Device: energy.Device{Name: "fuzz-hub", Capacity: units.WattHour(hubWh)},
				Pos:    field.Vec2{X: h1x, Y: h1y},
				Members: []Member{
					{
						Device: energy.Device{Name: "fuzz-member", Capacity: units.WattHour(memWh)},
						Pos:    field.Vec2{X: mx + 0.25, Y: my - 0.25},
						Load:   units.BitRate(load),
					},
				},
			},
		}}
		p, err := Plan(topo, Config{Workers: 2}, units.Second(slice))
		if err != nil {
			if !typedPlanError(err) {
				t.Fatalf("untyped error escaped Plan: %v", err)
			}
			return
		}
		for i, mp := range p.Members {
			if math.IsNaN(mp.Bits) || mp.Bits < 0 {
				t.Fatalf("member %d: bad planned bits %v", i, mp.Bits)
			}
			if math.IsNaN(mp.InterferenceMW) || mp.InterferenceMW < 0 {
				t.Fatalf("member %d: bad interference %v", i, mp.InterferenceMW)
			}
			if math.IsNaN(float64(mp.DirectTX)) || math.IsNaN(float64(mp.RelayTX)) {
				t.Fatalf("member %d: NaN energy price %+v", i, mp)
			}
		}
		// A successful plan is deterministic: replanning the same inputs
		// yields the same bits.
		again, err := Plan(topo, Config{Workers: 7}, units.Second(slice))
		if err != nil {
			t.Fatalf("plan succeeded then failed on identical inputs: %v", err)
		}
		if p.Digest() != again.Digest() {
			t.Fatalf("plan digest unstable: %#x != %#x", p.Digest(), again.Digest())
		}
	})
}
