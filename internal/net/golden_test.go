package net

import (
	"testing"

	"braidio/internal/units"
)

// Golden digests, pinned on linux/amd64 (the CI architecture; Go's
// float64 arithmetic is deterministic per platform and these workloads
// avoid FMA-sensitive paths). If an intentional engine change moves a
// digest, re-pin it in the same commit and say why in the message.
const (
	goldenDenseRun   = 0x38713a5afdaa207d
	goldenSparseRun  = 0xbced00fedbf7aad7
	goldenDensePlan  = 0xaec2dd38023618a0
	goldenSparsePlan = 0x477b032785b711c2
)

// goldenWorkers is the grid of worker counts every golden topology runs
// at — results must be bit-identical across all of them.
var goldenWorkers = []int{1, 2, 8}

// TestGoldenDeterminism is the PR's golden wall: net.Plan and full
// fleet rounds are bit-identical at any worker count on both golden
// topologies, and the digests match the pinned constants.
func TestGoldenDeterminism(t *testing.T) {
	cases := []struct {
		name              string
		topo              *Topology
		wantRun, wantPlan uint64
	}{
		{"dense-grid", denseGrid(t), goldenDenseRun, goldenDensePlan},
		{"sparse-line", sparseLine(t), goldenSparseRun, goldenSparsePlan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var runRef, planRef uint64
			for wi, workers := range goldenWorkers {
				cfg := Config{Workers: workers}
				res := runNet(t, tc.topo, cfg, 1800, 6)
				n, err := New(tc.topo, cfg)
				if err != nil {
					t.Fatal(err)
				}
				p, err := n.PlanRound(300)
				if err != nil {
					t.Fatal(err)
				}
				rd, pd := res.Digest(), p.Digest()
				if wi == 0 {
					runRef, planRef = rd, pd
					if res.TotalBits() <= 0 {
						t.Fatal("golden topology delivered nothing; test is vacuous")
					}
					continue
				}
				if rd != runRef {
					t.Errorf("workers=%d: run digest %#x != workers=%d's %#x", workers, rd, goldenWorkers[0], runRef)
				}
				if pd != planRef {
					t.Errorf("workers=%d: plan digest %#x != workers=%d's %#x", workers, pd, goldenWorkers[0], planRef)
				}
			}
			if tc.wantRun != 0 && runRef != tc.wantRun {
				t.Errorf("run digest %#x, pinned %#x", runRef, tc.wantRun)
			}
			if tc.wantPlan != 0 && planRef != tc.wantPlan {
				t.Errorf("plan digest %#x, pinned %#x", planRef, tc.wantPlan)
			}
			t.Logf("run=%#x plan=%#x", runRef, planRef)
		})
	}
}

// TestGoldenSparseRelayDelivers pins the acceptance demo: the stranded
// member (hub 0, member 2) is unreachable directly — its home hub is
// 1800 m away, past the 1772.9 m active range — yet delivers its bits
// through the 2-hop relay, and every delivered bit is a relayed bit.
func TestGoldenSparseRelayDelivers(t *testing.T) {
	topo := sparseLine(t)
	res := runNet(t, topo, Config{Workers: 4}, 1800, 6)
	mr := &res.Hubs[0].Members[2]
	if mr.Bits <= 0 {
		t.Fatalf("stranded member delivered nothing: %+v", mr)
	}
	if mr.RelayBits != mr.Bits {
		t.Errorf("stranded member: %v of %v bits relayed, want all", mr.RelayBits, mr.Bits)
	}
	if mr.RelayRounds == 0 || mr.DirectRounds != 0 {
		t.Errorf("stranded member rounds: relay=%d direct=%d, want all relay", mr.RelayRounds, mr.DirectRounds)
	}
	// Direct really is infeasible: with relays disabled the member
	// delivers nothing and is quarantined.
	noRelay := runNet(t, topo, Config{Workers: 4, DisableRelay: true}, 1800, 6)
	nr := &noRelay.Hubs[0].Members[2]
	if nr.Bits != 0 || !nr.Quarantined {
		t.Errorf("without relays the stranded member should starve: bits=%v quarantined=%v", nr.Bits, nr.Quarantined)
	}
	// And somebody paid the forwarding bill: the via hub's drain exceeds
	// what its own members cost it.
	if res.Hubs[0].Members[2].ViaDrain <= 0 {
		t.Error("relay rounds recorded but no via-hub drain billed")
	}
}

// TestGoldenDenseCouplings: the dense grid actually exercises both
// couplings — carrier-shared rounds occur, and interference is seen at
// every hub (three concurrent carriers ~2 m apart).
func TestGoldenDenseCouplings(t *testing.T) {
	res := runNet(t, denseGrid(t), Config{Workers: 2}, 1800, 6)
	if res.SharedRounds == 0 {
		t.Error("dense grid produced no carrier-shared rounds")
	}
	if res.InterferedRounds == 0 {
		t.Error("dense grid produced no interfered rounds")
	}
	if res.TotalBits() <= 0 {
		t.Error("dense grid delivered nothing under interference")
	}
	// Turning interference off must not *reduce* anyone's delivered
	// bits: the clean channel dominates the interfered one.
	clean := runNet(t, denseGrid(t), Config{Workers: 2, DisableInterference: true}, 1800, 6)
	if clean.TotalBits() < res.TotalBits()*0.999 {
		t.Errorf("clean channel delivered %v bits < interfered %v", clean.TotalBits(), res.TotalBits())
	}
}

// TestRunRejectsBadArgs covers the run-parameter validation.
func TestRunRejectsBadArgs(t *testing.T) {
	n, err := New(denseGrid(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		horizon units.Second
		rounds  int
	}{{0, 6}, {-10, 6}, {1800, 0}, {1800, -2}} {
		if _, err := n.Run(tc.horizon, tc.rounds); err == nil {
			t.Errorf("Run(%v, %d) accepted", float64(tc.horizon), tc.rounds)
		}
	}
	if _, err := n.PlanRound(-1); err == nil {
		t.Error("PlanRound(-1) accepted")
	}
}
