package net

import (
	"testing"

	"braidio/internal/energy"
	"braidio/internal/field"
	"braidio/internal/units"
)

// dev looks up a catalog device or fails the test.
func dev(t testing.TB, name string) energy.Device {
	t.Helper()
	d, ok := energy.DeviceByName(name)
	if !ok {
		t.Fatalf("no catalog device %q", name)
	}
	return d
}

// denseGrid is the golden grid topology: a dense two-hub cluster plus a
// distant third hub. The clustered hubs (1.6 m apart) are carrier
// donors for each other's members — the bistatic budget closes and the
// only interference is the far hub's faded carrier, so carrier-shared
// rounds actually occur. The third hub 2 km away keeps every receiver
// under a small but nonzero interference floor (a close third carrier
// would bury the backscatter reverse link entirely — that regime is
// what TestSharedCarrierLinkInterference pins at the PHY layer).
func denseGrid(t testing.TB) *Topology {
	hub := dev(t, "iPhone 6S")
	watch := dev(t, "Apple Watch")
	mk := func(pos field.Vec2, members ...Member) Hub {
		return Hub{Device: hub, Pos: pos, Members: members}
	}
	m := func(x, y float64, load units.BitRate) Member {
		return Member{Device: watch, Pos: field.Vec2{X: x, Y: y}, Load: load}
	}
	return &Topology{Hubs: []Hub{
		mk(field.Vec2{X: 0, Y: 0},
			m(0.30, 0.00, 20000), m(-0.25, 0.35, 35000), m(0.10, -0.45, 50000)),
		mk(field.Vec2{X: 1.6, Y: 0},
			m(1.85, 0.10, 15000), m(1.30, -0.30, 42000), m(1.70, 0.50, 27000)),
		mk(field.Vec2{X: 2000, Y: 1.6},
			m(2000.3, 1.60, 33000), m(1999.6, 1.25, 18000), m(2000.0, 2.10, 46000)),
	}}
}

// sparseLine is the golden relay topology: two hubs 1.6 km apart,
// everyone's members at their feet — except hub 0's third member
// stranded at 1800 m, past the 1772.9 m active range of its home hub
// but 200 m from hub 1, whose trunk back to hub 0 is a comfortable
// 1600 m. Direct is infeasible; only the 2-hop relay delivers its
// bits. (Two hubs, not three: a third concurrent carrier anywhere
// nearer the home hub than the trunk's 1600 m would jam the trunk —
// d⁻² interference is unforgiving at these spans.)
func sparseLine(t testing.TB) *Topology {
	hub := dev(t, "iPhone 6S")
	watch := dev(t, "Apple Watch")
	m := func(x, y float64, load units.BitRate) Member {
		return Member{Device: watch, Pos: field.Vec2{X: x, Y: y}, Load: load}
	}
	return &Topology{Hubs: []Hub{
		{Device: hub, Pos: field.Vec2{X: 0, Y: 0}, Members: []Member{
			m(0.00, 0.40, 24000), m(0.55, -0.20, 31000), m(1800, 0, 12000),
		}},
		{Device: hub, Pos: field.Vec2{X: 1600, Y: 0}, Members: []Member{
			m(1600.0, 0.60, 22000), m(1599.2, 0.00, 36000),
		}},
	}}
}

// runNet builds and runs a network, failing the test on any error.
func runNet(t testing.TB, topo *Topology, cfg Config, horizon units.Second, rounds int) *Result {
	t.Helper()
	n, err := New(topo, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := n.Run(horizon, rounds)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}
