package net

import (
	"errors"
	"math"
	"testing"

	"braidio/internal/core"
	"braidio/internal/field"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// TestRelayAccountingDifferential is the satellite differential: the
// 2-hop relay's energy accounting equals the sum of the two single-hop
// core.Optimize solves — bit for bit, with no hub drain double-counted.
// The network's appraisal is recomputed here from first principles
// (two chained Optimize calls over the canonical characterizations)
// and every committed joule is checked against it.
func TestRelayAccountingDifferential(t *testing.T) {
	topo := sparseLine(t)
	cfg := Config{Workers: 1, DisableInterference: true, DisableCarrierShare: true}
	const slice = units.Second(300)

	p, err := Plan(topo, cfg, slice)
	if err != nil {
		t.Fatal(err)
	}
	// The stranded member is slot 2 (hub 0, member 2).
	mp := p.Members[2]
	if mp.Op != OpRelay || mp.Via != 1 {
		t.Fatalf("stranded member plan = %+v, want relay via hub 1", mp)
	}
	if !math.IsInf(float64(mp.DirectTX), 1) {
		t.Fatalf("direct path at 1800 m should be infeasible, got %v J/bit", float64(mp.DirectTX))
	}

	// First principles: hop 1 member→via, hop 2 via→home, both against
	// the round-start (full) budgets.
	model := phy.NewModel()
	home, via := &topo.Hubs[0], &topo.Hubs[1]
	stranded := &home.Members[2]
	e1 := stranded.Device.Capacity.Joules()
	eVia := via.Device.Capacity.Joules()
	eHome := home.Device.Capacity.Joules()
	a1, err := core.Optimize(model.Characterize(clampDist(stranded.Pos.Dist(via.Pos))), e1, eVia)
	if err != nil {
		t.Fatalf("hop 1 solve: %v", err)
	}
	a2, err := core.Optimize(model.Characterize(clampDist(via.Pos.Dist(home.Pos))), eVia, eHome)
	if err != nil {
		t.Fatalf("hop 2 solve: %v", err)
	}
	if math.Float64bits(float64(mp.RelayTX)) != math.Float64bits(float64(a1.TX)) {
		t.Errorf("plan RelayTX %v != hop-1 solve TX %v", float64(mp.RelayTX), float64(a1.TX))
	}
	viaPerBit := float64(a1.RX) + float64(a2.TX)
	wantB := float64(stranded.Load) * float64(slice)
	for _, c := range []float64{
		float64(e1) / float64(a1.TX),
		float64(eVia) / viaPerBit,
		float64(eHome) / float64(a2.RX),
	} {
		if c < wantB {
			wantB = c
		}
	}
	if math.Float64bits(mp.Bits) != math.Float64bits(wantB) {
		t.Errorf("plan bits %v != recomputed bound %v", mp.Bits, wantB)
	}

	// One committed round bills exactly those prices to exactly those
	// batteries.
	res := runNet(t, topo, cfg, slice, 1)
	mr := &res.Hubs[0].Members[2]
	bitsEq := func(name string, got, want float64) {
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	bitsEq("relayed bits", mr.Bits, wantB)
	bitsEq("RelayBits", mr.RelayBits, wantB)
	bitsEq("member drain", float64(mr.MemberDrain), wantB*float64(a1.TX))
	bitsEq("via drain", float64(mr.ViaDrain), wantB*viaPerBit)
	bitsEq("home drain", float64(mr.HubDrain), wantB*float64(a2.RX))
	bitsEq("result RelayBits", res.RelayBits, wantB)

	// No double-counting: the via hub's total drain is its own members'
	// bills plus exactly the relay's middle legs, and the home hub's is
	// its members' bills plus exactly the hop-2 RX.
	// (summed in commit order: hub 0's slots — including the relay's
	// forwarding bill — commit before hub 1's own members).
	viaTotal := wantB * viaPerBit
	for j := range res.Hubs[1].Members {
		viaTotal += float64(res.Hubs[1].Members[j].HubDrain)
	}
	bitsEq("via hub total", float64(res.Hubs[1].Drain), viaTotal)
	ownHome := 0.0
	for j := range res.Hubs[0].Members {
		ownHome += float64(res.Hubs[0].Members[j].HubDrain)
	}
	if got := float64(res.Hubs[0].Drain); got != ownHome {
		t.Errorf("home hub drain %v != sum of member bills %v", got, ownHome)
	}

	// Conservation: everything anyone spent on the relay is the two
	// solves' per-bit totals times the bits.
	total := float64(mr.MemberDrain) + float64(mr.ViaDrain) + float64(mr.HubDrain)
	want := wantB * (float64(a1.TX) + float64(a1.RX) + float64(a2.TX) + float64(a2.RX))
	if math.Abs(total-want) > 1e-9*want {
		t.Errorf("relay energy %v J != per-hop sum %v J", total, want)
	}
}

// TestRelayModeAttribution: relayed bits are attributed to modes by the
// member-side hop's allocation mix.
func TestRelayModeAttribution(t *testing.T) {
	topo := sparseLine(t)
	res := runNet(t, topo, Config{Workers: 1, DisableInterference: true, DisableCarrierShare: true}, 300, 1)
	mr := &res.Hubs[0].Members[2]
	sum := 0.0
	for _, b := range mr.ModeBits {
		sum += b
	}
	if math.Abs(sum-mr.Bits) > 1e-6*mr.Bits {
		t.Errorf("mode attribution %v != delivered %v", sum, mr.Bits)
	}
	// A 200 m hop is active-only: everything rides the active radio.
	if mr.ModeBits[phy.ModeActive] != sum {
		t.Errorf("200 m hop attributed off the active mode: %v", mr.ModeBits)
	}
}

// TestDegenerateGeometry is the coincident-position guard: distinct but
// sub-millimeter separations clamp to the 1 cm near field and plan
// finite numbers, while exact duplicates are a typed error.
func TestDegenerateGeometry(t *testing.T) {
	hubDev := dev(t, "iPhone 6S")
	watch := dev(t, "Apple Watch")
	near := &Topology{Hubs: []Hub{{
		Device: hubDev, Pos: field.Vec2{X: 0, Y: 0},
		Members: []Member{
			{Device: watch, Pos: field.Vec2{X: 1e-12, Y: 0}, Load: 1000},        // on top of the hub
			{Device: watch, Pos: field.Vec2{X: 1e-12, Y: 1e-12}, Load: 2000},    // on top of the other member
			{Device: watch, Pos: field.Vec2{X: -1e-300, Y: 1e-300}, Load: 500}, // denormal offsets
		},
	}}}
	p, err := Plan(near, Config{}, 300)
	if err != nil {
		t.Fatalf("near-coincident plan: %v", err)
	}
	for i, mp := range p.Members {
		if math.IsNaN(float64(mp.DirectTX)) || math.IsNaN(mp.Bits) || math.IsNaN(mp.InterferenceMW) {
			t.Errorf("member %d: NaN in plan %+v", i, mp)
		}
		if !(mp.Bits > 0) {
			t.Errorf("member %d at the hub's feet delivered no plan bits: %+v", i, mp)
		}
	}
	// And the engine runs it without panicking or NaN-ing.
	res := runNet(t, near, Config{}, 300, 1)
	if math.IsNaN(res.TotalBits()) || res.TotalBits() <= 0 {
		t.Errorf("degenerate run delivered %v bits", res.TotalBits())
	}

	dupMember := &Topology{Hubs: []Hub{{
		Device: hubDev, Pos: field.Vec2{X: 0, Y: 0},
		Members: []Member{
			{Device: watch, Pos: field.Vec2{X: 0.5, Y: 0}, Load: 1000},
			{Device: watch, Pos: field.Vec2{X: 0.5, Y: 0}, Load: 2000},
		},
	}}}
	if _, err := Plan(dupMember, Config{}, 300); !errors.Is(err, ErrCoincident) {
		t.Errorf("duplicate member positions: err = %v, want ErrCoincident", err)
	}
	dupHub := &Topology{Hubs: []Hub{
		{Device: hubDev, Pos: field.Vec2{X: 0, Y: 0},
			Members: []Member{{Device: watch, Pos: field.Vec2{X: 0.5, Y: 0}, Load: 1000}}},
		{Device: hubDev, Pos: field.Vec2{X: 0, Y: 0},
			Members: []Member{{Device: watch, Pos: field.Vec2{X: -0.5, Y: 0}, Load: 1000}}},
	}}
	if _, err := Plan(dupHub, Config{}, 300); !errors.Is(err, ErrCoincident) {
		t.Errorf("duplicate hub positions: err = %v, want ErrCoincident", err)
	}
	memberOnHub := &Topology{Hubs: []Hub{{
		Device: hubDev, Pos: field.Vec2{X: 0, Y: 0},
		Members: []Member{{Device: watch, Pos: field.Vec2{X: 0, Y: 0}, Load: 1000}},
	}}}
	if _, err := Plan(memberOnHub, Config{}, 300); !errors.Is(err, ErrCoincident) {
		t.Errorf("member on its hub: err = %v, want ErrCoincident", err)
	}
}
