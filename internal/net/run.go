package net

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"braidio/internal/energy"
	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// MemberResult is one member's share of a network run.
type MemberResult struct {
	// Member is the topology entry this result describes.
	Member Member
	// Bits delivered from the member to its home hub (directly or
	// through a relay); RelayBits is the relayed subset.
	Bits, RelayBits float64
	// MemberDrain is the member's radio energy. HubDrain is the home
	// hub's energy on this member's traffic; ViaDrain the relay hubs'.
	MemberDrain, HubDrain, ViaDrain units.Joule
	// ModeBits attributes delivered bits to modes, indexed by phy.Mode.
	// Relayed bits are attributed by the member-side hop's mix.
	ModeBits [phy.NumModes]float64
	// Round tallies by operation, plus rounds served under nonzero
	// interference.
	DirectRounds, SharedRounds, RelayRounds, InterferedRounds int
	// Starved reports the member's battery died before the horizon.
	Starved bool
	// Quarantined reports the member was removed from scheduling; Err
	// then wraps ErrMemberQuarantined and the cause.
	Quarantined      bool
	QuarantinedRound int
	Err              error
}

// HubResult is one hub's share of a network run.
type HubResult struct {
	// Hub is the topology entry this result describes.
	Hub *Hub
	// Drain is everything the hub's battery spent: home duty, relay
	// forwarding, and carrier donation are all drawn from it.
	Drain units.Joule
	// Exhausted reports the battery died before the horizon; DiedRound
	// records when (-1 if it survived).
	Exhausted bool
	DiedRound int
	// Replans counts commit-time re-solves against drifted budgets.
	Replans int
	// LPSolves and AllocReuses aggregate the braid solver counters
	// across the hub's members.
	LPSolves, AllocReuses int
	// Members holds per-member outcomes in registration order.
	Members []MemberResult
}

// TotalBits sums delivered bits across the hub's members.
func (h *HubResult) TotalBits() float64 {
	total := 0.0
	for i := range h.Members {
		total += h.Members[i].Bits
	}
	return total
}

// Result is the outcome of a network run.
type Result struct {
	// Horizon is the wall-clock span simulated; Rounds the round count.
	Horizon units.Second
	Rounds  int
	// Hubs holds per-hub outcomes in topology order.
	Hubs []HubResult
	// Quarantines counts members removed from scheduling; Replans the
	// commit-time re-solves.
	Quarantines, Replans int
	// RelayRounds, SharedRounds, and InterferedRounds count committed
	// member-rounds by coupling; RelayBits totals the relayed payload.
	RelayRounds, SharedRounds, InterferedRounds int
	RelayBits                                   float64
}

// TotalBits sums delivered bits across the network.
func (r *Result) TotalBits() float64 {
	total := 0.0
	for h := range r.Hubs {
		total += r.Hubs[h].TotalBits()
	}
	return total
}

// Digest is an order-sensitive FNV-1a fingerprint of every numeric
// outcome in the result — the golden determinism tests pin it across
// worker counts and topologies.
func (r *Result) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f := func(v float64) { w(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			w(1)
		} else {
			w(0)
		}
	}
	f(float64(r.Horizon))
	w(uint64(r.Rounds))
	w(uint64(r.Quarantines))
	w(uint64(r.Replans))
	w(uint64(r.RelayRounds))
	w(uint64(r.SharedRounds))
	w(uint64(r.InterferedRounds))
	f(r.RelayBits)
	for i := range r.Hubs {
		hr := &r.Hubs[i]
		f(float64(hr.Drain))
		b(hr.Exhausted)
		w(uint64(int64(hr.DiedRound)))
		w(uint64(hr.Replans))
		w(uint64(hr.LPSolves))
		w(uint64(hr.AllocReuses))
		for j := range hr.Members {
			mr := &hr.Members[j]
			f(mr.Bits)
			f(mr.RelayBits)
			f(float64(mr.MemberDrain))
			f(float64(mr.HubDrain))
			f(float64(mr.ViaDrain))
			for _, mb := range mr.ModeBits {
				f(mb)
			}
			w(uint64(mr.DirectRounds))
			w(uint64(mr.SharedRounds))
			w(uint64(mr.RelayRounds))
			w(uint64(mr.InterferedRounds))
			b(mr.Starved)
			b(mr.Quarantined)
			w(uint64(int64(mr.QuarantinedRound)))
			b(mr.Err != nil)
		}
	}
	return h.Sum64()
}

// Digest fingerprints a round plan the same way.
func (p *RoundPlan) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f := func(v float64) { w(math.Float64bits(v)) }
	for _, e := range p.Emitting {
		if e {
			w(1)
		} else {
			w(0)
		}
	}
	for i := range p.Members {
		mp := &p.Members[i]
		w(uint64(mp.Hub))
		w(uint64(mp.Member))
		w(uint64(mp.Op))
		w(uint64(int64(mp.Donor)))
		w(uint64(int64(mp.Via)))
		f(mp.InterferenceMW)
		f(float64(mp.DirectTX))
		f(float64(mp.RelayTX))
		f(mp.Bits)
	}
	return h.Sum64()
}

// newResult builds a zeroed result shell for this topology.
func (n *Network) newResult(horizon units.Second, rounds int) *Result {
	res := &Result{
		Horizon: horizon,
		Rounds:  rounds,
		Hubs:    make([]HubResult, len(n.topo.Hubs)),
	}
	for h := range n.topo.Hubs {
		hub := &n.topo.Hubs[h]
		res.Hubs[h] = HubResult{
			Hub:       hub,
			DiedRound: -1,
			Members:   make([]MemberResult, len(hub.Members)),
		}
		for j := range hub.Members {
			res.Hubs[h].Members[j] = MemberResult{Member: hub.Members[j]}
		}
	}
	return res
}

// strike records one failed round for a slot and quarantines the member
// once the strike budget is exhausted.
func (n *Network) strike(res *Result, mr *MemberResult, i, round int, rec *obs.Recorder,
	now units.Second, cause error) {
	n.strikes[i]++
	if n.strikes[i] < n.strikeLimit {
		return
	}
	mr.Quarantined = true
	mr.QuarantinedRound = round
	mr.Err = fmt.Errorf("%w after %d consecutive failed rounds: %w", ErrMemberQuarantined, n.strikes[i], cause)
	res.Quarantines++
	if rec != nil {
		rec.Quarantines.Add(1)
		rec.Trace(obs.Event{Kind: obs.EvQuarantine, Round: round, Member: i, Time: float64(now)})
	}
}

// Run simulates the network for a wall-clock horizon split into rounds.
// Each round: phase 0 decides eligibility, carriers, donors, and
// interference sequentially; phase 1 plans every member concurrently
// against immutable round-start snapshots; phase 2 commits drains in
// topology order, replicating hub.Run's commit discipline per hub
// (replan on drifted budgets, strikes and quarantine, hub-death
// mid-round cutoff) and settling relay rounds across the three
// batteries involved. The Result is bit-identical at any Workers count.
func (n *Network) Run(horizon units.Second, rounds int) (*Result, error) {
	if horizon <= 0 || rounds < 1 || math.IsInf(float64(horizon), 1) || math.IsNaN(float64(horizon)) {
		return nil, fmt.Errorf("%w: horizon %v / rounds %d", ErrBadRun, float64(horizon), rounds)
	}
	hubBatts, memberBatts := n.newBatteries()
	res := n.newResult(horizon, rounds)
	rec := obs.Active(n.cfg.Obs)
	for i := range n.slots {
		n.slots[i].scr.Reset()
		n.strikes[i] = 0
	}
	slice := horizon / units.Second(rounds)
	appraise := !n.cfg.DisableRelay
	var now units.Second
	plan := func(i int) { n.planSlot(i, memberBatts, slice, appraise, true) }

	for round := 0; round < rounds; round++ {
		now = units.Second(round) * slice
		n.phase0(res, hubBatts, memberBatts)
		anyAlive := false
		for h := range n.hubs {
			if n.hubs[h].alive {
				anyAlive = true
				if rec != nil {
					rec.HubRounds.Add(1)
				}
			}
		}
		if !anyAlive {
			break
		}
		if rec != nil {
			rec.NetRounds.Add(1)
			rec.BatchRounds.Add(1)
		}

		// Phase 1: plan all slots against the immutable snapshots.
		par.For(n.cfg.Workers, len(n.slots), plan)

		// Phase 2: commit in topology order.
		for h := range n.hubs {
			hs := &n.hubs[h]
			hr := &res.Hubs[h]
			if !hs.alive {
				continue
			}
			if hubBatts[h].Empty() {
				// An earlier hub's relay drained this hub to death before
				// its own commits ran: record the death and serve nobody —
				// striking every member for an external drain would
				// quarantine a healthy roster.
				if hr.DiedRound < 0 {
					hr.DiedRound = round
					if rec != nil {
						rec.HubDeaths.Add(1)
						rec.Trace(obs.Event{Kind: obs.EvHubDeath, Round: round, Member: -1, Time: float64(now)})
					}
				}
				continue
			}
			for i := hs.slotLo; i < hs.slotHi; i++ {
				s := &n.slots[i]
				mr := &hr.Members[s.member]
				if s.skipQuarantined {
					continue
				}
				if s.skipStarved {
					mr.Starved = true
					continue
				}
				m := &n.topo.Hubs[h].Members[s.member]
				bits := float64(m.Load) * float64(slice)
				if s.op == OpRelay {
					n.commitRelay(res, hr, mr, s, i, h, round, bits, rec, now, hubBatts, memberBatts)
				} else {
					if s.err == nil {
						run := &s.plan
						if hubBatts[h].Remaining() < run.Drain2 {
							// Earlier commits (this hub's members, or a
							// relay billed to this hub) drained it below
							// the snapshot: re-solve against the truth.
							res.Replans++
							hr.Replans++
							if rec != nil {
								rec.Replans.Add(1)
								rec.Trace(obs.Event{Kind: obs.EvReplan, Round: round, Member: i, Time: float64(now)})
							}
							s.err = s.braid.RunInto(&s.plan, &s.scr, memberBatts[i], hubBatts[h])
						} else {
							memberBatts[i].Drain(run.Drain1)
							hubBatts[h].Drain(run.Drain2)
						}
					}
					if s.err != nil {
						n.strike(res, mr, i, round, rec, now,
							fmt.Errorf("net: member %d/%d: %w", h, s.member, s.err))
						continue
					}
					run := &s.plan
					n.strikes[i] = 0
					if rec != nil {
						rec.MemberRounds.Add(1)
					}
					mr.Bits += run.Bits
					hr.LPSolves += run.LPSolves
					hr.AllocReuses += run.AllocReuses
					mr.MemberDrain += run.Drain1
					mr.HubDrain += run.Drain2
					hr.Drain += run.Drain2
					for mode, mb := range run.ModeBits {
						mr.ModeBits[mode] += mb
					}
					if s.op == OpShared {
						mr.SharedRounds++
						res.SharedRounds++
						if rec != nil {
							rec.CarrierShares.Add(1)
						}
					} else {
						mr.DirectRounds++
					}
					if s.mw > 0 {
						mr.InterferedRounds++
						res.InterferedRounds++
						if rec != nil {
							rec.InterferedRounds.Add(1)
						}
					}
					if run.Bits < bits*0.999 && memberBatts[i].Empty() {
						mr.Starved = true
					}
				}
				// Hub-death accounting: checked after every commit — a
				// dead hub must not keep serving the rest of the round.
				if hubBatts[h].Empty() {
					if hr.DiedRound < 0 {
						hr.DiedRound = round
						if rec != nil {
							rec.HubDeaths.Add(1)
							rec.Trace(obs.Event{Kind: obs.EvHubDeath, Round: round, Member: -1, Time: float64(now)})
						}
					}
					break
				}
			}
		}
	}
	for h := range n.hubs {
		res.Hubs[h].Exhausted = hubBatts[h].Empty()
	}
	return res, nil
}

// commitRelay settles one relayed member-round: re-clamp the planned
// bits against the *current* remaining budgets (earlier commits this
// round may have drained the via or home hub), then bill the member the
// hop-1 TX, the via hub both middle legs, and the home hub the hop-2
// RX — the three per-bit prices straight from the appraisal's two
// chained Optimize solves.
func (n *Network) commitRelay(res *Result, hr *HubResult, mr *MemberResult, s *slot,
	i, h, round int, bits float64, rec *obs.Recorder, now units.Second,
	hubBatts, memberBatts []*energy.Battery) {
	rp := &s.relay
	vres := &res.Hubs[rp.via]
	B := rp.bits
	if c := float64(memberBatts[i].Remaining()) / rp.txPerBit; c < B {
		B = c
	}
	if c := float64(hubBatts[rp.via].Remaining()) / rp.viaPerBit; c < B {
		B = c
	}
	if c := float64(hubBatts[h].Remaining()) / rp.rxPerBit; c < B {
		B = c
	}
	if B < rp.bits {
		res.Replans++
		hr.Replans++
		if rec != nil {
			rec.Replans.Add(1)
			rec.Trace(obs.Event{Kind: obs.EvReplan, Round: round, Member: i, Time: float64(now)})
		}
	}
	if !(B > 0) {
		n.strike(res, mr, i, round, rec, now,
			fmt.Errorf("net: member %d/%d: relay via hub %d has no budget", h, s.member, rp.via))
		return
	}
	memE := units.Joule(B * rp.txPerBit)
	viaE := units.Joule(B * rp.viaPerBit)
	homeE := units.Joule(B * rp.rxPerBit)
	memberBatts[i].Drain(memE)
	hubBatts[rp.via].Drain(viaE)
	hubBatts[h].Drain(homeE)
	n.strikes[i] = 0
	if rec != nil {
		rec.MemberRounds.Add(1)
		rec.RelayRounds.Add(1)
		rec.RelayBits.Add(B)
	}
	mr.Bits += B
	mr.RelayBits += B
	mr.MemberDrain += memE
	mr.HubDrain += homeE
	mr.ViaDrain += viaE
	hr.Drain += homeE
	vres.Drain += viaE
	for mode := range rp.modeShare {
		mr.ModeBits[mode] += B * rp.modeShare[mode]
	}
	mr.RelayRounds++
	res.RelayRounds++
	res.RelayBits += B
	if s.mw > 0 {
		mr.InterferedRounds++
		res.InterferedRounds++
		if rec != nil {
			rec.InterferedRounds.Add(1)
		}
	}
	if B < bits*0.999 && memberBatts[i].Empty() {
		mr.Starved = true
	}
	// A relay can kill the via hub mid-round; its own commit loop (or
	// the next round's census) observes the death, but the round of
	// death is recorded here so it is attributed correctly.
	if hubBatts[rp.via].Empty() && vres.DiedRound < 0 {
		vres.DiedRound = round
		if rec != nil {
			rec.HubDeaths.Add(1)
			rec.Trace(obs.Event{Kind: obs.EvHubDeath, Round: round, Member: -1, Time: float64(now)})
		}
	}
}
