// Package ascii renders the experiment outputs — tables, device-matrix
// heatmaps, and line charts — as plain text for the terminal, plus CSV
// for downstream plotting. No dependencies beyond the standard library,
// matching the module's offline constraint.
package ascii

import (
	"fmt"
	"io"
	"math"
	"strings"

	"braidio/internal/stats"
)

// Table renders rows under a header with columns padded to the widest
// cell. An empty header renders rows only.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len([]rune(cell)); pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(header) > 0 {
		if err := writeRow(header); err != nil {
			return err
		}
		rule := make([]string, len(header))
		for i := range rule {
			rule[i] = strings.Repeat("-", widths[i])
		}
		if err := writeRow(rule); err != nil {
			return err
		}
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes a header and rows as comma-separated values, quoting cells
// that contain commas or quotes.
func CSV(w io.Writer, header []string, rows [][]string) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if len(header) > 0 {
		if err := writeRow(header); err != nil {
			return err
		}
	}
	for _, row := range rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// heatRamp maps a normalized value in [0,1] to a shading glyph.
var heatRamp = []rune(" .:-=+*#%@")

// Heatmap renders a matrix of values as shaded cells with the value
// printed inside, log-scaling the shading when the dynamic range spans
// more than two decades (as the Fig. 15 gains do).
func Heatmap(w io.Writer, rowLabels, colLabels []string, cells [][]float64, format string) error {
	if format == "" {
		format = "%.3g"
	}
	min, max := math.Inf(1), math.Inf(-1)
	for _, row := range cells {
		for _, v := range row {
			min = math.Min(min, v)
			max = math.Max(max, v)
		}
	}
	logScale := min > 0 && max/min > 100
	norm := func(v float64) float64 {
		if max == min {
			return 0.5
		}
		if logScale {
			return math.Log(v/min) / math.Log(max/min)
		}
		return (v - min) / (max - min)
	}
	header := append([]string{""}, colLabels...)
	rows := make([][]string, len(cells))
	for i, row := range cells {
		out := make([]string, len(row)+1)
		if i < len(rowLabels) {
			out[0] = rowLabels[i]
		}
		for j, v := range row {
			shade := heatRamp[int(norm(v)*float64(len(heatRamp)-1)+0.5)]
			out[j+1] = fmt.Sprintf("%c%s", shade, fmt.Sprintf(format, v))
		}
		rows[i] = out
	}
	return Table(w, header, rows)
}

// LineChart renders a series as a fixed-size ASCII plot with axis
// annotations. Y values of -Inf are clipped to the plot floor.
func LineChart(w io.Writer, s stats.Series, width, height int, title string) error {
	if width < 10 || height < 3 {
		return fmt.Errorf("ascii: chart too small (%dx%d)", width, height)
	}
	if len(s) == 0 {
		return fmt.Errorf("ascii: empty series")
	}
	minX, maxX := s[0].X, s[len(s)-1].X
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s {
		if math.IsInf(p.Y, 0) {
			continue
		}
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	if math.IsInf(minY, 0) {
		return fmt.Errorf("ascii: series has no finite values")
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		frac := float64(x) / float64(width-1)
		y := s.Interpolate(minX + frac*(maxX-minX))
		if math.IsInf(y, -1) {
			y = minY
		}
		ry := int((y - minY) / (maxY - minY) * float64(height-1))
		if ry < 0 {
			ry = 0
		}
		if ry >= height {
			ry = height - 1
		}
		grid[height-1-ry][x] = '*'
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%.3g", minY)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%10s  %-10.3g%*s\n", "", minX, width-10, fmt.Sprintf("%.3g", maxX))
	return err
}

// SeriesCSV writes one or more named series as long-format CSV
// (series,x,y).
func SeriesCSV(w io.Writer, names []string, series []stats.Series) error {
	if len(names) != len(series) {
		return fmt.Errorf("ascii: %d names for %d series", len(names), len(series))
	}
	rows := make([][]string, 0)
	for i, s := range series {
		for _, p := range s {
			rows = append(rows, []string{names[i], fmt.Sprintf("%g", p.X), fmt.Sprintf("%g", p.Y)})
		}
	}
	return CSV(w, []string{"series", "x", "y"}, rows)
}

// chartGlyphs distinguish series in MultiChart.
var chartGlyphs = []rune{'*', '+', 'o', 'x', '#', '@'}

// MultiChart renders up to six series on one set of axes, each with its
// own glyph, plus a legend — used to overlay the with/without-diversity
// curves of Fig. 6 or the two BER curves of Fig. 12.
func MultiChart(w io.Writer, names []string, series []stats.Series, width, height int, title string) error {
	if len(names) != len(series) {
		return fmt.Errorf("ascii: %d names for %d series", len(names), len(series))
	}
	if len(series) == 0 || len(series) > len(chartGlyphs) {
		return fmt.Errorf("ascii: MultiChart supports 1–%d series, got %d", len(chartGlyphs), len(series))
	}
	if width < 10 || height < 3 {
		return fmt.Errorf("ascii: chart too small (%dx%d)", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s) == 0 {
			return fmt.Errorf("ascii: empty series")
		}
		minX = math.Min(minX, s[0].X)
		maxX = math.Max(maxX, s[len(s)-1].X)
		for _, p := range s {
			if math.IsInf(p.Y, 0) {
				continue
			}
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minY, 0) {
		return fmt.Errorf("ascii: no finite values")
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := chartGlyphs[si]
		for x := 0; x < width; x++ {
			frac := float64(x) / float64(width-1)
			y := s.Interpolate(minX + frac*(maxX-minX))
			if math.IsInf(y, -1) {
				y = minY
			}
			ry := int((y - minY) / (maxY - minY) * float64(height-1))
			if ry < 0 {
				ry = 0
			}
			if ry >= height {
				ry = height - 1
			}
			grid[height-1-ry][x] = g
		}
	}
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	for i, name := range names {
		if _, err := fmt.Fprintf(w, "%12c %s\n", chartGlyphs[i], name); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%.3g", maxY)
		case height - 1:
			label = fmt.Sprintf("%.3g", minY)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%10s  %-10.3g%*s\n", "", minX, width-10, fmt.Sprintf("%.3g", maxX))
	return err
}
