package ascii

import (
	"strings"
	"testing"

	"braidio/internal/stats"
)

func TestTable(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"Mode", "TX", "RX"}, [][]string{
		{"active", "105 mW", "100 mW"},
		{"backscatter", "16.5 µW", "129 mW"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Mode") || !strings.Contains(lines[0], "TX") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule missing: %q", lines[1])
	}
	if !strings.Contains(lines[3], "backscatter") {
		t.Errorf("row missing: %q", lines[3])
	}
	// Columns align: "TX" appears at the same offset in header and rows.
	col := strings.Index(lines[0], "TX")
	if lines[2][col-1] == 0 {
		t.Error("unreachable")
	}
}

func TestTableNoHeader(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, nil, [][]string{{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != "a  b\n" {
		t.Errorf("no-header table = %q", got)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"name", "value"}, [][]string{
		{"plain", "1"},
		{"with,comma", "2"},
		{`with"quote`, "3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "name,value\nplain,1\n\"with,comma\",2\n\"with\"\"quote\",3\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestHeatmapLogScale(t *testing.T) {
	var b strings.Builder
	err := Heatmap(&b,
		[]string{"r1", "r2"},
		[]string{"c1", "c2"},
		[][]float64{{1.43, 397}, {299, 1.43}},
		"%.3g")
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "397") || !strings.Contains(out, "1.43") {
		t.Errorf("heatmap missing values:\n%s", out)
	}
	// Large values shade darker than small ones.
	if !strings.Contains(out, "@397") && !strings.Contains(out, "%397") {
		t.Errorf("max cell not darkest:\n%s", out)
	}
	if !strings.Contains(out, " 1.43") {
		t.Errorf("min cell not lightest:\n%s", out)
	}
}

func TestHeatmapUniform(t *testing.T) {
	var b strings.Builder
	if err := Heatmap(&b, []string{"r"}, []string{"c"}, [][]float64{{5}}, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "5") {
		t.Error("uniform heatmap lost its value")
	}
}

func TestLineChart(t *testing.T) {
	s := stats.Series{{X: 0, Y: 0}, {X: 5, Y: 10}, {X: 10, Y: 0}}
	var b strings.Builder
	if err := LineChart(&b, s, 40, 8, "triangle"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "triangle") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data points plotted")
	}
	if !strings.Contains(out, "10") {
		t.Error("y-axis max label missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 { // title + 8 rows + x axis
		t.Errorf("chart has %d lines, want 10:\n%s", len(lines), out)
	}
}

func TestLineChartErrors(t *testing.T) {
	var b strings.Builder
	if err := LineChart(&b, stats.Series{{X: 0, Y: 1}}, 5, 2, ""); err == nil {
		t.Error("tiny chart accepted")
	}
	if err := LineChart(&b, nil, 40, 8, ""); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b,
		[]string{"a", "b"},
		[]stats.Series{{{X: 1, Y: 2}}, {{X: 3, Y: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	want := "series,x,y\na,1,2\nb,3,4\n"
	if b.String() != want {
		t.Errorf("SeriesCSV = %q, want %q", b.String(), want)
	}
	if err := SeriesCSV(&b, []string{"a"}, nil); err == nil {
		t.Error("mismatched names accepted")
	}
}

func TestMultiChart(t *testing.T) {
	a := stats.Series{{X: 0, Y: 0}, {X: 10, Y: 10}}
	b := stats.Series{{X: 0, Y: 10}, {X: 10, Y: 0}}
	var buf strings.Builder
	if err := MultiChart(&buf, []string{"up", "down"}, []stats.Series{a, b}, 40, 8, "cross"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cross", "up", "down", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("MultiChart output missing %q:\n%s", want, out)
		}
	}
}

func TestMultiChartErrors(t *testing.T) {
	var buf strings.Builder
	s := stats.Series{{X: 0, Y: 1}}
	if err := MultiChart(&buf, []string{"a"}, nil, 40, 8, ""); err == nil {
		t.Error("mismatched inputs accepted")
	}
	if err := MultiChart(&buf, nil, nil, 40, 8, ""); err == nil {
		t.Error("zero series accepted")
	}
	if err := MultiChart(&buf, []string{"a"}, []stats.Series{s}, 2, 2, ""); err == nil {
		t.Error("tiny chart accepted")
	}
	if err := MultiChart(&buf, []string{"a", "b"}, []stats.Series{s, {}}, 40, 8, ""); err == nil {
		t.Error("empty series accepted")
	}
}
