package baseline

import (
	"math"
	"testing"

	"braidio/internal/units"
)

// TestTable1Ratios pins the TX/RX power ratios the paper's Table 1
// reports: CC2541 in 0.82–1.0, CC2640 in 1.1–1.6.
func TestTable1Ratios(t *testing.T) {
	if r := CC2541.PowerRatio(); r < 0.82 || r > 1.0 {
		t.Errorf("CC2541 ratio = %v, want within 0.82–1.0", r)
	}
	if r := CC2640.PowerRatio(); r < 1.1 || r > 1.6 {
		t.Errorf("CC2640 ratio = %v, want within 1.1–1.6", r)
	}
}

func TestTable1PowerEnvelopes(t *testing.T) {
	if CC2541.TXPower < 55e-3 || CC2541.TXPower > 60e-3 {
		t.Errorf("CC2541 TX = %v, want 55–60 mW", CC2541.TXPower)
	}
	if CC2541.RXPower < 59e-3 || CC2541.RXPower > 67e-3 {
		t.Errorf("CC2541 RX = %v, want 59–67 mW", CC2541.RXPower)
	}
	if CC2640.TXPower < 21e-3 || CC2640.TXPower > 30e-3 {
		t.Errorf("CC2640 TX = %v, want 21–30 mW", CC2640.TXPower)
	}
}

func TestGoodput(t *testing.T) {
	g := Default.Goodput()
	// Calibrated baseline: ≈0.54 Mbps delivered from the 1 Mbps PHY.
	if float64(g) < 0.45e6 || float64(g) > 0.6e6 {
		t.Errorf("goodput = %v, want ≈0.54 Mbps", g)
	}
	if b := CC2640.Goodput(); float64(b) < 0.25e6 || float64(b) > 0.35e6 {
		t.Errorf("CC2640 goodput = %v, want ≈0.3 Mbps (BLE class)", b)
	}
}

func TestPerBit(t *testing.T) {
	tx, rx := Default.PerBit()
	if tx <= 0 || rx <= 0 {
		t.Fatal("non-positive per-bit costs")
	}
	// The default baseline is symmetric (see CC2541's doc comment).
	if tx != rx {
		t.Errorf("tx %v and rx %v should match for the symmetric default", tx, rx)
	}
	// Order of magnitude: ~1e-7 J/bit.
	if float64(tx) < 5e-8 || float64(tx) > 2e-7 {
		t.Errorf("tx per-bit = %v, want O(1e-7)", tx)
	}
}

func TestBitsUntilDeath(t *testing.T) {
	b := Default
	tx, rx := b.PerBit()
	// Symmetric budgets and symmetric radio: either side limits.
	bits := b.BitsUntilDeath(3600, 3600)
	if want := 3600 / float64(tx); math.Abs(bits-want)/want > 1e-9 {
		t.Errorf("symmetric bits = %v, want %v", bits, want)
	}
	_ = rx
	// Huge TX budget: the RX side limits.
	bits = b.BitsUntilDeath(1e9, 3600)
	if want := 3600 / float64(rx); math.Abs(bits-want)/want > 1e-9 {
		t.Errorf("rx-limited bits = %v, want %v", bits, want)
	}
	if b.BitsUntilDeath(0, 100) != 0 || b.BitsUntilDeath(100, -1) != 0 {
		t.Error("dead budgets should move zero bits")
	}
}

func TestBitsUntilDeathScalesLinearly(t *testing.T) {
	b := Default
	one := b.BitsUntilDeath(1000, 1000)
	ten := b.BitsUntilDeath(10000, 10000)
	if math.Abs(ten/one-10) > 1e-9 {
		t.Errorf("bits did not scale linearly: %v vs %v", one, ten)
	}
}

// TestTable2Catalog pins the commercial reader table.
func TestTable2Catalog(t *testing.T) {
	if len(Readers) != 6 {
		t.Fatalf("catalog has %d readers, want the 6 of Table 2", len(Readers))
	}
	as, ok := ReaderByModel("AS3993")
	if !ok {
		t.Fatal("AS3993 missing")
	}
	if as.Power != 0.64 || as.TXOut != 17 || as.CostUSD != 397 {
		t.Errorf("AS3993 = %+v, mismatches Table 2", as)
	}
	if _, ok := ReaderByModel("nonesuch"); ok {
		t.Error("unknown reader found")
	}
	// All readers draw hundreds of mW to watts — the motivating gap.
	for _, r := range Readers {
		if r.Power < 0.5 || r.Power > 5 {
			t.Errorf("%s power %v outside the table's range", r.Model, r.Power)
		}
		if r.RXPower > r.Power {
			t.Errorf("%s RX estimate exceeds total", r.Model)
		}
	}
}

// TestLowestPowerReaderIsAS3993: the paper picks the AS3993 because it is
// the lowest-power reader available.
func TestLowestPowerReaderIsAS3993(t *testing.T) {
	if got := LowestPowerReader(); got.Model != "AS3993" {
		t.Errorf("lowest-power reader = %s, want AS3993", got.Model)
	}
}

func TestReaderString(t *testing.T) {
	if s := Readers[0].String(); s == "" {
		t.Error("empty reader description")
	}
}

func TestDefaultGoodputFactorCalibrated(t *testing.T) {
	// The Fig. 15 diagonal calibration (EXPERIMENTS.md) depends on this
	// value; pin it so accidental changes fail loudly.
	if Default.GoodputFactor != 0.536 {
		t.Errorf("default goodput factor = %v, want 0.536", Default.GoodputFactor)
	}
	if Default.PowerRatio() != 1 {
		t.Errorf("default baseline must be symmetric, ratio %v", Default.PowerRatio())
	}
	if Default.PHYRate != units.Rate1M {
		t.Errorf("default PHY rate = %v, want 1 Mbps", Default.PHYRate)
	}
}

func TestDutyCycled(t *testing.T) {
	d := DutyCycled{Radio: Default, Interval: 1, Window: 0.01, SleepPower: 3e-6}
	if got := d.Duty(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("duty = %v, want 0.01", got)
	}
	// Average idle power ≈ 1% of 60 mW + sleep ≈ 0.6 mW.
	if got := d.IdlePower().Milliwatts(); got < 0.5 || got > 0.7 {
		t.Errorf("idle power = %v mW, want ≈0.6", got)
	}
	if got := d.WorstCaseLatency(); got != 1 {
		t.Errorf("latency = %v, want 1 s", got)
	}
	// Always-on degenerate case.
	on := DutyCycled{Radio: Default, Interval: 0, Window: 1}
	if on.Duty() != 1 || on.WorstCaseLatency() != 0 || on.IdlePower() != Default.RXPower {
		t.Error("always-on duty cycle wrong")
	}
	// Window longer than interval clamps to always-on.
	clamped := DutyCycled{Radio: Default, Interval: 1, Window: 5}
	if clamped.Duty() != 1 {
		t.Errorf("clamped duty = %v", clamped.Duty())
	}
}

func TestDutyCycledTradeoffMonotone(t *testing.T) {
	// Longer intervals: less power, more latency — the classic curve.
	prevP, prevL := math.Inf(1), -1.0
	for _, iv := range []units.Second{0.1, 0.5, 2, 10} {
		d := DutyCycled{Radio: Default, Interval: iv, Window: 0.005, SleepPower: 3e-6}
		p := float64(d.IdlePower())
		l := float64(d.WorstCaseLatency())
		if p >= prevP || l <= prevL {
			t.Fatalf("tradeoff not monotone at interval %v", iv)
		}
		prevP, prevL = p, l
	}
}
