// Package baseline implements the systems Braidio is evaluated against:
// the Bluetooth / BLE radios of Table 1, the commercial RFID readers of
// Table 2, and the best-single-mode baseline of Fig. 16.
package baseline

import (
	"fmt"

	"braidio/internal/units"
)

// Bluetooth models a symmetric active radio as the paper's baseline.
type Bluetooth struct {
	// Name of the chip.
	Name string
	// TXPower and RXPower are the active power draws.
	TXPower, RXPower units.Watt
	// PHYRate is the on-air bitrate.
	PHYRate units.BitRate
	// GoodputFactor is delivered-bits / PHY-bits: BLE connection
	// events, inter-frame spacing, headers, and ACKs. BLE 4.x tops out
	// around 0.3 of the 1 Mbps PHY.
	GoodputFactor float64
}

// CC2541 is the Bluetooth chip of Table 1 (55–60 mW TX, 59–67 mW RX at
// 3 V). The evaluation baseline uses the symmetric 60/60 mW operating
// point at the top of the TX range: symmetry is required for the
// equal-device diagonals of Fig. 15 and Fig. 17 to coincide at 1.43×
// (role-swapping leaves a symmetric radio's per-side cost unchanged).
var CC2541 = Bluetooth{
	Name:          "CC2541",
	TXPower:       60e-3,
	RXPower:       60e-3,
	PHYRate:       units.Rate1M,
	GoodputFactor: 0.536,
}

// CC2640 is the BLE chip of Table 1 (21–30 mW TX, 19 mW RX; the paper's
// quoted TX/RX ratio range is 1.1–1.6). BLE 4.x protocol overhead caps
// delivered throughput near 0.3 of the 1 Mbps PHY.
var CC2640 = Bluetooth{
	Name:          "CC2640",
	TXPower:       30e-3,
	RXPower:       22.2e-3,
	PHYRate:       units.Rate1M,
	GoodputFactor: 0.305,
}

// Default is the Bluetooth baseline used by the evaluation. Its per-bit
// cost (power over delivered goodput) is calibrated so the equal-energy
// diagonal of Fig. 15 lands at the paper's 1.43× — see EXPERIMENTS.md.
var Default = CC2541

// PowerRatio returns the chip's TX/RX power ratio (the Table 1 column).
func (b Bluetooth) PowerRatio() float64 { return float64(b.TXPower / b.RXPower) }

// Goodput returns the delivered bitrate.
func (b Bluetooth) Goodput() units.BitRate {
	return units.BitRate(float64(b.PHYRate) * b.GoodputFactor)
}

// PerBit returns the transmit- and receive-side energy per delivered bit.
func (b Bluetooth) PerBit() (tx, rx units.JoulesPerBit) {
	g := b.Goodput()
	return units.PerBit(b.TXPower, g), units.PerBit(b.RXPower, g)
}

// BitsUntilDeath returns the total bits a TX/RX pair with the given
// energy budgets moves before either battery dies. Both sides drain
// concurrently, so the bottleneck side sets the total.
func (b Bluetooth) BitsUntilDeath(txBudget, rxBudget units.Joule) float64 {
	if txBudget <= 0 || rxBudget <= 0 {
		return 0
	}
	tx, rx := b.PerBit()
	bitsTX := float64(txBudget) / float64(tx)
	bitsRX := float64(rxBudget) / float64(rx)
	if bitsTX < bitsRX {
		return bitsTX
	}
	return bitsRX
}

// Reader is a commercial RFID reader chip from Table 2.
type Reader struct {
	// Model name.
	Model string
	// Power is the total draw at the quoted output power.
	Power units.Watt
	// TXOut is the quoted RF output.
	TXOut units.DBm
	// RXPower is the estimated receive-path draw from Table 2.
	RXPower units.Watt
	// CostUSD is the quoted unit cost.
	CostUSD float64
}

// Readers is the Table 2 catalog.
var Readers = []Reader{
	{Model: "AS3993", Power: 0.64, TXOut: 17, RXPower: 0.25, CostUSD: 397},
	{Model: "AS3992", Power: 0.73, TXOut: 20, RXPower: 0.26, CostUSD: 303},
	{Model: "R2000", Power: 1.0, TXOut: 12, RXPower: 0.88, CostUSD: 419},
	{Model: "R1000", Power: 1.0, TXOut: 12, RXPower: 0.95, CostUSD: 500},
	{Model: "M6e", Power: 4.2, TXOut: 17, RXPower: 4.0, CostUSD: 398},
	{Model: "M6micro", Power: 2.5, TXOut: 23, RXPower: 2.5, CostUSD: 285},
}

// ReaderByModel looks up a Table 2 entry.
func ReaderByModel(model string) (Reader, bool) {
	for _, r := range Readers {
		if r.Model == model {
			return r, true
		}
	}
	return Reader{}, false
}

// LowestPowerReader returns the reader the paper benchmarks against
// ("the AS3993 is the lowest power reader that we found").
func LowestPowerReader() Reader {
	best := Readers[0]
	for _, r := range Readers[1:] {
		if r.Power < best.Power {
			best = r
		}
	}
	return best
}

// String implements fmt.Stringer.
func (r Reader) String() string {
	return fmt.Sprintf("%s (%v @ %g dBm, $%g)", r.Model, r.Power, float64(r.TXOut), r.CostUSD)
}

// DutyCycled models the classic low-power listening alternative the
// related work surveys ([21, 38, 43, 49]): the radio sleeps and wakes
// every Interval to listen for Window. Braidio's passive receiver mode
// attacks the same problem — idle listening — from the other side, with
// a continuously-on envelope detector at tens of microwatts.
type DutyCycled struct {
	// Radio is the underlying active radio.
	Radio Bluetooth
	// Interval between wakeups.
	Interval units.Second
	// Window is the awake listening time per wakeup.
	Window units.Second
	// SleepPower is the radio's draw while asleep.
	SleepPower units.Watt
}

// Duty returns the awake fraction.
func (d DutyCycled) Duty() float64 {
	if d.Interval <= 0 {
		return 1
	}
	duty := float64(d.Window / d.Interval)
	if duty > 1 {
		return 1
	}
	return duty
}

// IdlePower returns the average listening power.
func (d DutyCycled) IdlePower() units.Watt {
	duty := d.Duty()
	return units.Watt(duty*float64(d.Radio.RXPower) + (1-duty)*float64(d.SleepPower))
}

// WorstCaseLatency returns the longest a sender may wait for the
// listener's next window.
func (d DutyCycled) WorstCaseLatency() units.Second {
	if d.Duty() >= 1 {
		return 0
	}
	return d.Interval
}
