// Package fading models the time-varying component of the wireless
// channel: Rayleigh/Rician block fading with a coherence time, and the
// slowly varying self-interference channel whose dynamics motivate
// Braidio's passive cancellation.
//
// §3.1 of the paper argues that even a dynamic self-interference channel
// has a coherence time in the order of milliseconds, so its spectral
// content sits below ~1 kHz and a high-pass filter separates it from the
// (tens of kHz and up) backscatter signal. SelfInterference exposes that
// residual low-frequency process so the receiver chain can demonstrate
// exactly that separation.
package fading

import (
	"fmt"
	"math"

	"braidio/internal/iq"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Channel is a multiplicative fading process sampled at absolute times.
// Implementations must be deterministic functions of their seed stream so
// experiments reproduce.
type Channel interface {
	// Gain returns the channel's complex gain at time t. Magnitude is the
	// linear amplitude factor (1 = no fading) and phase is the channel
	// phase rotation.
	Gain(t units.Second) iq.Phasor
}

// Static is a frequency-flat, time-invariant channel with unit gain and
// fixed phase — the paper's "empty 6 m × 6 m room, area cleared" setting.
type Static struct {
	// Phase is the fixed channel phase in radians.
	Phase float64
}

// Gain implements Channel.
func (s Static) Gain(units.Second) iq.Phasor { return iq.FromPolar(1, s.Phase) }

// Block is block fading: the gain holds for one coherence interval and
// then redraws independently. Envelope is Rician with parameter K (the
// ratio of line-of-sight to diffuse power, in linear terms); K → ∞
// degenerates to Static and K = 0 is Rayleigh.
type Block struct {
	// CoherenceTime is the interval over which the gain holds. Must be
	// positive.
	CoherenceTime units.Second
	// K is the Rician K-factor (linear, not dB).
	K float64

	stream *rng.Stream
	// cache of drawn blocks so that repeated queries are consistent:
	// block index → gain. Blocks are drawn on demand in order.
	blocks []iq.Phasor
}

// NewBlock returns a block-fading channel drawing from the given stream.
func NewBlock(coherence units.Second, k float64, stream *rng.Stream) *Block {
	if coherence <= 0 {
		panic(fmt.Sprintf("fading: non-positive coherence time %v", float64(coherence)))
	}
	if k < 0 {
		panic(fmt.Sprintf("fading: negative K-factor %v", k))
	}
	if stream == nil {
		panic("fading: nil stream")
	}
	return &Block{CoherenceTime: coherence, K: k, stream: stream}
}

// Gain implements Channel. Queries must not go backwards by more than the
// cached history (all blocks since t=0 are cached, so any t ≥ 0 works).
func (b *Block) Gain(t units.Second) iq.Phasor {
	if t < 0 {
		panic(fmt.Sprintf("fading: negative time %v", float64(t)))
	}
	idx := int(float64(t) / float64(b.CoherenceTime))
	for len(b.blocks) <= idx {
		b.blocks = append(b.blocks, b.draw())
	}
	return b.blocks[idx]
}

// draw samples one block gain: a Rician envelope normalized to unit mean
// power, with uniform phase.
func (b *Block) draw() iq.Phasor {
	// Decompose unit mean power into LOS and diffuse parts:
	// nu² = K/(K+1), 2σ² = 1/(K+1).
	nu := math.Sqrt(b.K / (b.K + 1))
	sigma := math.Sqrt(1 / (2 * (b.K + 1)))
	env := b.stream.Rician(nu, sigma)
	phase := 2 * math.Pi * b.stream.Float64()
	return iq.FromPolar(env, phase)
}

// SelfInterference models the residual carrier leakage seen by the
// passive receiver: a large DC (static) component plus a small
// low-frequency drift whose bandwidth is set by the coherence time. After
// the charge pump converts it to baseband, a high-pass filter with a
// cutoff above the drift bandwidth removes it (§3.1).
type SelfInterference struct {
	// Level is the static leakage amplitude (linear, in the envelope
	// domain of the charge-pump output).
	Level float64
	// DriftFraction is the relative amplitude of the low-frequency
	// drift component (e.g. 0.05 for ±5% sway).
	DriftFraction float64
	// CoherenceTime sets the drift rate; the drift completes one cycle
	// in roughly 2π coherence times, keeping its spectrum below
	// 1/CoherenceTime Hz.
	CoherenceTime units.Second
	// PhaseOffset decorrelates multiple instances.
	PhaseOffset float64
}

// DefaultSelfInterference matches the paper's assumption: millisecond
// coherence (spectral content under 1 kHz).
func DefaultSelfInterference(level float64) SelfInterference {
	return SelfInterference{Level: level, DriftFraction: 0.05, CoherenceTime: 2e-3}
}

// Sample returns the leakage amplitude at time t.
func (s SelfInterference) Sample(t units.Second) float64 {
	if s.CoherenceTime <= 0 {
		return s.Level
	}
	drift := s.DriftFraction * math.Sin(float64(t)/float64(s.CoherenceTime)+s.PhaseOffset)
	return s.Level * (1 + drift)
}

// MaxDriftRate returns an upper bound on |d/dt Sample| / Level, the
// normalized slew of the interference. A high-pass filter whose cutoff
// (rad/s) exceeds this rate passes backscatter while rejecting the drift.
func (s SelfInterference) MaxDriftRate() float64 {
	if s.CoherenceTime <= 0 {
		return 0
	}
	return s.DriftFraction / float64(s.CoherenceTime)
}

// CoherenceFromDoppler converts a maximum Doppler shift (from relative
// motion v at carrier wavelength λ) to the standard coherence-time
// estimate T_c ≈ 0.423 / f_d used in the mobile-channel literature.
func CoherenceFromDoppler(speed float64, wavelength units.Meter) units.Second {
	if speed <= 0 || wavelength <= 0 {
		panic("fading: speed and wavelength must be positive")
	}
	fd := speed / float64(wavelength)
	return units.Second(0.423 / fd)
}
