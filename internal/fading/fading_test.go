package fading

import (
	"math"
	"testing"

	"braidio/internal/rng"
	"braidio/internal/units"
)

func TestStaticGain(t *testing.T) {
	c := Static{Phase: 1.2}
	g0 := c.Gain(0)
	g1 := c.Gain(100)
	if g0 != g1 {
		t.Error("static channel changed over time")
	}
	if math.Abs(g0.Mag()-1) > 1e-12 {
		t.Errorf("static gain magnitude = %v, want 1", g0.Mag())
	}
	if math.Abs(g0.Phase()-1.2) > 1e-12 {
		t.Errorf("static phase = %v, want 1.2", g0.Phase())
	}
}

func TestBlockHoldsWithinCoherence(t *testing.T) {
	b := NewBlock(1e-3, 3, rng.New(1))
	g := b.Gain(0)
	for _, tm := range []units.Second{1e-4, 5e-4, 9.9e-4} {
		if b.Gain(tm) != g {
			t.Errorf("gain changed within a coherence block at t=%v", tm)
		}
	}
	if b.Gain(1.5e-3) == g {
		t.Error("gain did not redraw across blocks (vanishingly unlikely)")
	}
}

func TestBlockConsistentOnRevisit(t *testing.T) {
	b := NewBlock(1e-3, 0, rng.New(2))
	g5 := b.Gain(5.5e-3)
	_ = b.Gain(9e-3)
	if b.Gain(5.5e-3) != g5 {
		t.Error("revisiting an earlier time returned a different gain")
	}
}

func TestBlockUnitMeanPower(t *testing.T) {
	for _, k := range []float64{0, 1, 5, 50} {
		b := NewBlock(1e-3, k, rng.New(3))
		sum := 0.0
		const n = 50000
		for i := 0; i < n; i++ {
			g := b.Gain(units.Second(float64(i) * 1e-3))
			sum += g.Power()
		}
		if mean := sum / n; math.Abs(mean-1) > 0.03 {
			t.Errorf("K=%v: mean power = %v, want ~1", k, mean)
		}
	}
}

func TestBlockHighKApproachesStatic(t *testing.T) {
	b := NewBlock(1e-3, 1e6, rng.New(4))
	for i := 0; i < 1000; i++ {
		g := b.Gain(units.Second(float64(i) * 1e-3))
		if math.Abs(g.Mag()-1) > 0.01 {
			t.Fatalf("K→∞ envelope = %v, want ≈1", g.Mag())
		}
	}
}

func TestBlockDeterministicAcrossRuns(t *testing.T) {
	a := NewBlock(1e-3, 2, rng.New(9))
	b := NewBlock(1e-3, 2, rng.New(9))
	for i := 0; i < 100; i++ {
		tm := units.Second(float64(i) * 1e-3)
		if a.Gain(tm) != b.Gain(tm) {
			t.Fatal("same-seed block channels diverged")
		}
	}
}

func TestNewBlockValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero coherence": func() { NewBlock(0, 1, rng.New(1)) },
		"negative K":     func() { NewBlock(1e-3, -1, rng.New(1)) },
		"nil stream":     func() { NewBlock(1e-3, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("negative time did not panic")
		}
	}()
	NewBlock(1e-3, 1, rng.New(1)).Gain(-1)
}

func TestSelfInterferenceBounds(t *testing.T) {
	s := DefaultSelfInterference(2.0)
	for i := 0; i < 1000; i++ {
		v := s.Sample(units.Second(float64(i) * 1e-4))
		if v < 2.0*0.95-1e-9 || v > 2.0*1.05+1e-9 {
			t.Fatalf("leakage %v outside ±5%% band", v)
		}
	}
}

// TestSelfInterferenceIsLowFrequency verifies the paper's separation
// argument: the drift's maximum slew corresponds to spectral content well
// below 1 kHz for millisecond coherence, so a high-pass filter at a few
// kHz removes it without touching a 100 kbps backscatter signal.
func TestSelfInterferenceIsLowFrequency(t *testing.T) {
	s := DefaultSelfInterference(1.0)
	// Max normalized drift rate: DriftFraction/CoherenceTime = 25 rad/s,
	// i.e. ~4 Hz equivalent — three orders below a 10 kHz signal edge.
	if rate := s.MaxDriftRate(); rate > 2*math.Pi*1000 {
		t.Errorf("drift rate %v rad/s reaches into the signal band", rate)
	}
	// Empirically confirm: the largest sample-to-sample change over a
	// 100 kbps bit period is tiny compared to the level.
	const bit = 1e-5
	maxDelta := 0.0
	for i := 0; i < 100000; i++ {
		d := math.Abs(s.Sample(units.Second(float64(i+1)*bit)) - s.Sample(units.Second(float64(i)*bit)))
		if d > maxDelta {
			maxDelta = d
		}
	}
	if maxDelta > 1e-3 {
		t.Errorf("per-bit leakage change %v is not negligible", maxDelta)
	}
}

func TestSelfInterferenceStaticFallback(t *testing.T) {
	s := SelfInterference{Level: 3}
	if got := s.Sample(10); got != 3 {
		t.Errorf("static leakage = %v, want 3", got)
	}
	if got := s.MaxDriftRate(); got != 0 {
		t.Errorf("static drift rate = %v, want 0", got)
	}
}

func TestCoherenceFromDoppler(t *testing.T) {
	// Walking speed 1.4 m/s at 915 MHz: f_d ≈ 4.27 Hz, T_c ≈ 99 ms.
	tc := CoherenceFromDoppler(1.4, units.Meter(0.32764))
	if math.Abs(float64(tc)-0.099) > 0.005 {
		t.Errorf("coherence = %v s, want ≈0.099", tc)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero speed did not panic")
		}
	}()
	CoherenceFromDoppler(0, 0.3)
}
