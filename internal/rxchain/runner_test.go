package rxchain

import (
	"strings"
	"testing"

	"braidio/internal/linecode"
	"braidio/internal/units"
)

// TestRunnerMatchesRun is the golden identity for the pooled engine: a
// reused Runner must reproduce the allocating Run/RunCoded results
// field-for-field, run after run, across configs of different sizes (so
// stale scratch contents would be caught).
func TestRunnerMatchesRun(t *testing.T) {
	ru := NewRunner()
	cfgs := []Config{
		DefaultConfig(units.Rate100k, 1),
		DefaultConfig(units.Rate1M, 2),
		DefaultConfig(units.Rate10k, 3),
		DefaultConfig(units.Rate100k, 1), // repeat: scratch reuse must not drift
	}
	sizes := []int{2000, 500, 1200, 2000}
	for i, cfg := range cfgs {
		want, err := Run(cfg, sizes[i])
		if err != nil {
			t.Fatal(err)
		}
		var got Result
		if err := ru.Run(cfg, sizes[i], &got); err != nil {
			t.Fatal(err)
		}
		if got != *want {
			t.Fatalf("cfg %d: Runner.Run %+v, Run %+v", i, got, *want)
		}
	}
}

func TestRunnerRunCodedMatchesRunCoded(t *testing.T) {
	ru := NewRunner()
	for i, code := range []linecode.Code{linecode.NRZ, linecode.Manchester, linecode.FM0} {
		cfg := DefaultCodedConfig(units.Rate100k, uint64(i+1))
		cfg.Code = code
		// Generated payload path (data == nil).
		want, err := RunCoded(cfg, nil, 800)
		if err != nil {
			t.Fatal(err)
		}
		var got Result
		if err := ru.RunCoded(cfg, nil, 800, &got); err != nil {
			t.Fatal(err)
		}
		if got != *want {
			t.Fatalf("%v generated: Runner %+v vs %+v", code, got, *want)
		}
		// Explicit payload path.
		data := []byte{1, 0, 1, 1, 1, 0, 0, 1}
		want, err = RunCoded(cfg, data, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := ru.RunCoded(cfg, data, 0, &got); err != nil {
			t.Fatal(err)
		}
		if got != *want {
			t.Fatalf("%v explicit: Runner %+v vs %+v", code, got, *want)
		}
	}
}

// TestRunAllBitIdenticalAtAnyWorkerCount pins the sweep determinism
// contract: the parallel sweep equals the sequential loop exactly, for
// every worker count.
func TestRunAllBitIdenticalAtAnyWorkerCount(t *testing.T) {
	var cfgs []Config
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := DefaultConfig(units.Rate100k, seed)
		cfg.NoiseRMS = 2e-3 * float64(seed)
		cfgs = append(cfgs, cfg)
	}
	const n = 1500
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Run(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = *r
	}
	for _, workers := range []int{1, 2, 3, 8, 0} {
		got, err := RunAll(cfgs, n, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d cfg %d: %+v vs sequential %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunCodedAllBitIdenticalAtAnyWorkerCount(t *testing.T) {
	var cfgs []CodedConfig
	for i, code := range []linecode.Code{linecode.NRZ, linecode.Manchester, linecode.FM0} {
		cfg := DefaultCodedConfig(units.Rate100k, uint64(i+5))
		cfg.Code = code
		cfgs = append(cfgs, cfg)
	}
	data := []byte{1, 1, 0, 1, 0, 0, 0, 1, 1, 0}
	want := make([]Result, len(cfgs))
	for i, cfg := range cfgs {
		r, err := RunCoded(cfg, data, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = *r
	}
	for _, workers := range []int{1, 2, 4, 0} {
		got, err := RunCodedAll(cfgs, data, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d cfg %d: %+v vs sequential %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	good := DefaultConfig(units.Rate100k, 1)
	bad := good
	bad.SamplesPerBit = 1
	if _, err := RunAll([]Config{good, bad, good}, 100, 2); err == nil {
		t.Fatal("invalid config did not surface")
	} else if !strings.Contains(err.Error(), "too coarse") {
		t.Fatalf("unexpected error %v", err)
	}
	if _, err := RunAll(nil, 100, 2); err != nil {
		t.Fatalf("empty sweep errored: %v", err)
	}
	var codedBad CodedConfig
	if _, err := RunCodedAll([]CodedConfig{codedBad}, nil, 0, 1); err == nil {
		t.Fatal("zero coded config did not surface")
	}
}

func TestSweepBERPairsConfigs(t *testing.T) {
	cfgs := []Config{DefaultConfig(units.Rate100k, 1), DefaultConfig(units.Rate100k, 2)}
	points, err := SweepBER(cfgs, 400, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for i := range points {
		if points[i].Config.Seed != cfgs[i].Seed {
			t.Fatalf("point %d paired with wrong config", i)
		}
		if points[i].Result.Bits != 400 {
			t.Fatalf("point %d ran %d bits", i, points[i].Result.Bits)
		}
	}
	if _, err := SweepBER([]Config{{}}, 10, 1); err == nil {
		t.Fatal("invalid sweep config did not surface")
	}
}

// TestRunnerValidation mirrors TestRunValidation for the pooled entry
// points.
func TestRunnerValidation(t *testing.T) {
	ru := NewRunner()
	var res Result
	if err := ru.Run(DefaultConfig(units.Rate100k, 1), 0, &res); err == nil {
		t.Error("n=0 accepted")
	}
	if err := ru.RunCoded(DefaultCodedConfig(units.Rate100k, 1), nil, 0, &res); err == nil {
		t.Error("coded n=0 with nil data accepted")
	}
}
