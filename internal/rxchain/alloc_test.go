//go:build !race

package rxchain

import (
	"testing"

	"braidio/internal/units"
)

// TestRunnerZeroAlloc gates the pooled waveform engine: after the first
// (buffer-growing) run, Runner.Run and Runner.RunCoded must allocate
// nothing per run. (Skipped under the race detector, which instruments
// allocations; the race gate covers the same code through the ordinary
// tests.)
func TestRunnerZeroAlloc(t *testing.T) {
	ru := NewRunner()
	cfg := DefaultConfig(units.Rate100k, 1)
	var res Result
	if err := ru.Run(cfg, 500, &res); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := ru.Run(cfg, 500, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Runner.Run allocates %v per run, want 0", avg)
	}

	coded := DefaultCodedConfig(units.Rate100k, 2)
	if err := ru.RunCoded(coded, nil, 400, &res); err != nil {
		t.Fatal(err)
	}
	avg = testing.AllocsPerRun(20, func() {
		if err := ru.RunCoded(coded, nil, 400, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Runner.RunCoded allocates %v per run, want 0", avg)
	}
}
