package rxchain

import (
	"sync"

	"braidio/internal/par"
	"braidio/internal/rng"
)

// Runner runs waveform simulations with reusable scratch buffers and an
// in-place reseeded rng stream, so steady-state Run/RunCoded calls
// allocate zero bytes. A Runner is not safe for concurrent use; the
// sweep functions below hand one Runner per worker out of a pool.
//
// Runner.Run(cfg, n, res) computes exactly what Run(cfg, n) computes —
// rng.Reseed reproduces rng.New's state byte-for-byte, and the buffers
// only change where results are stored, never what is computed.
type Runner struct {
	stream rng.Stream
	// payload holds generated random data bits for coded runs.
	payload []byte
	// symbols holds the line-coded channel symbols.
	symbols []byte
	// decided holds the comparator's per-symbol decisions.
	decided []byte
	// decoded holds the tolerant-decoded bits.
	decoded []byte
}

// NewRunner returns an empty Runner; buffers grow on first use and are
// reused afterwards.
func NewRunner() *Runner { return &Runner{} }

// Run is the zero-allocation equivalent of the package-level Run,
// overwriting *res with the result.
func (ru *Runner) Run(cfg Config, n int, res *Result) error {
	ru.stream.Reseed(cfg.Seed)
	return run(cfg, n, &ru.stream, res)
}

// growBytes returns buf resized to n, reusing its storage when the
// capacity suffices.
func growBytes(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// runnerPool recycles Runners (and their grown scratch buffers) across
// sweep calls.
var runnerPool = sync.Pool{New: func() any { return NewRunner() }}

// RunAll runs each config through the chain on a GOMAXPROCS-bounded
// worker pool (workers <= 0 selects GOMAXPROCS) and returns the results
// in config order. Every config carries its own seed, so each cell's
// computation is self-contained and the sweep is bit-identical to
// calling Run(cfgs[i], n) sequentially, at any worker count. Errors are
// joined in config order.
func RunAll(cfgs []Config, n int, workers int) ([]Result, error) {
	out := make([]Result, len(cfgs))
	err := par.ForErr(workers, len(cfgs), func(i int) error {
		ru := runnerPool.Get().(*Runner)
		defer runnerPool.Put(ru)
		return ru.Run(cfgs[i], n, &out[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunCodedAll is RunAll for line-coded configs: each config runs through
// RunCoded with the shared read-only data (or its own seed-derived
// payload when data is nil), in parallel, with results in config order.
func RunCodedAll(cfgs []CodedConfig, data []byte, n int, workers int) ([]Result, error) {
	out := make([]Result, len(cfgs))
	err := par.ForErr(workers, len(cfgs), func(i int) error {
		ru := runnerPool.Get().(*Runner)
		defer runnerPool.Put(ru)
		return ru.RunCoded(cfgs[i], data, n, &out[i])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BERPoint is one cell of a waveform BER sweep.
type BERPoint struct {
	// Config that produced the cell.
	Config Config
	// Result of the run.
	Result Result
}

// SweepBER runs n bits through every config and pairs each with its
// result — the building block the waveform figures use to scan BER over
// amplitude, cutoff, or rate on the shared pool.
func SweepBER(cfgs []Config, n int, workers int) ([]BERPoint, error) {
	results, err := RunAll(cfgs, n, workers)
	if err != nil {
		return nil, err
	}
	out := make([]BERPoint, len(cfgs))
	for i := range cfgs {
		out[i] = BERPoint{Config: cfgs[i], Result: results[i]}
	}
	return out, nil
}
