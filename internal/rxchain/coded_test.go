package rxchain

import (
	"bytes"
	"testing"

	"braidio/internal/linecode"
	"braidio/internal/units"
)

// TestBaselineWanderKillsNRZ is the demonstration that motivates line
// coding: under an aggressive high-pass cutoff (rate/4), a long run of
// identical bits wanders the NRZ baseline through the comparator
// threshold and decoding collapses, while FM0 — one transition per bit —
// sails through.
func TestBaselineWanderKillsNRZ(t *testing.T) {
	// 200 ones in the middle of random data: the worst case for a
	// high-passed envelope link.
	data := append([]byte{}, bytes.Repeat([]byte{1, 0}, 50)...)
	data = append(data, bytes.Repeat([]byte{1}, 200)...)
	data = append(data, bytes.Repeat([]byte{0, 1}, 50)...)

	nrz := DefaultCodedConfig(units.Rate100k, 1)
	nrz.Code = linecode.NRZ
	resNRZ, err := RunCoded(nrz, data, 0)
	if err != nil {
		t.Fatal(err)
	}

	fm0 := DefaultCodedConfig(units.Rate100k, 1)
	resFM0, err := RunCoded(fm0, data, 0)
	if err != nil {
		t.Fatal(err)
	}

	if resNRZ.BER() < 0.1 {
		t.Errorf("NRZ survived baseline wander: BER %v (expected collapse on the long run)", resNRZ.BER())
	}
	if resFM0.BER() > 0.01 {
		t.Errorf("FM0 failed under wander: BER %v", resFM0.BER())
	}
}

// TestManchesterAlsoSurvives: both balanced codes handle the hostile
// cutoff on pathological data.
func TestManchesterAlsoSurvives(t *testing.T) {
	data := bytes.Repeat([]byte{0}, 400)
	cfg := DefaultCodedConfig(units.Rate100k, 2)
	cfg.Code = linecode.Manchester
	res, err := RunCoded(cfg, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() > 0.01 {
		t.Errorf("Manchester BER on all-zeros = %v", res.BER())
	}
}

// TestCodedRandomDataAllCodes: on balanced random data with a gentle
// cutoff, all three codes decode cleanly — coding only matters for runs.
func TestCodedRandomDataAllCodes(t *testing.T) {
	for _, code := range []linecode.Code{linecode.NRZ, linecode.Manchester, linecode.FM0} {
		cfg := DefaultCodedConfig(units.Rate100k, 3)
		cfg.HighPass.Cutoff = units.Hertz(float64(cfg.Rate) / 30)
		cfg.Code = code
		res, err := RunCoded(cfg, nil, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if res.BER() > 0.01 {
			t.Errorf("%v: BER on random data = %v", code, res.BER())
		}
	}
}

// TestCodedSelfInterference: the coded chain still rejects the 50×
// carrier leakage.
func TestCodedSelfInterference(t *testing.T) {
	cfg := DefaultCodedConfig(units.Rate100k, 4)
	res, err := RunCoded(cfg, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() > 1e-3 {
		t.Errorf("coded BER under self-interference = %v", res.BER())
	}
}

func TestRunCodedValidation(t *testing.T) {
	cfg := DefaultCodedConfig(units.Rate100k, 1)
	if _, err := RunCoded(cfg, nil, 0); err == nil {
		t.Error("no bits accepted")
	}
	bad := cfg
	bad.SamplesPerBit = 1
	if _, err := RunCoded(bad, nil, 10); err == nil {
		t.Error("coarse sampling accepted")
	}
}

func TestDecodeTolerant(t *testing.T) {
	// FM0 tolerant decode ignores boundary violations but keeps the
	// intra-pair data rule.
	bits := []byte{1, 0, 1, 1, 0}
	syms := linecode.Encode(linecode.FM0, bits)
	got := decodeTolerant(linecode.FM0, syms)
	if !bytes.Equal(got, bits) {
		t.Errorf("tolerant FM0 = %v, want %v", got, bits)
	}
	// Manchester tolerant decode maps the first half-symbol.
	msyms := linecode.Encode(linecode.Manchester, bits)
	if got := decodeTolerant(linecode.Manchester, msyms); !bytes.Equal(got, bits) {
		t.Errorf("tolerant Manchester = %v, want %v", got, bits)
	}
	if got := decodeTolerant(linecode.NRZ, []byte{1, 0}); !bytes.Equal(got, []byte{1, 0}) {
		t.Errorf("tolerant NRZ = %v", got)
	}
}

func BenchmarkRunCodedFM0(b *testing.B) {
	cfg := DefaultCodedConfig(units.Rate100k, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunCoded(cfg, nil, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
