package rxchain

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/linecode"
	"braidio/internal/units"
)

// CodedConfig extends the chain with a line code on the tag's bit
// stream. With an aggressive high-pass cutoff (needed when the
// self-interference drifts fast), uncoded NRZ data suffers baseline
// wander on long runs of identical bits; Manchester/FM0 coding bounds
// every run at two symbols and survives. This is why real backscatter
// uplinks (EPC Gen2) are FM0/Miller coded.
type CodedConfig struct {
	Config
	// Code is the tag's line code.
	Code linecode.Code
}

// DefaultCodedConfig returns an FM0-coded chain with a high cutoff
// (rate/4 — the hostile setting where NRZ wanders).
func DefaultCodedConfig(rate units.BitRate, seed uint64) CodedConfig {
	cfg := DefaultConfig(rate, seed)
	cfg.HighPass.Cutoff = units.Hertz(float64(rate) / 4)
	return CodedConfig{Config: cfg, Code: linecode.FM0}
}

// RunCoded pushes the given data bits (random when nil, using n) through
// the chain with the configured line code. The symbol rate is the bit
// rate times the code's expansion, keeping the information rate fixed;
// the detector integrates per symbol and the decoder maps symbols back
// to bits, counting coding violations as bit errors. It is the
// allocating convenience wrapper around Runner.RunCoded.
func RunCoded(cfg CodedConfig, data []byte, n int) (*Result, error) {
	res := new(Result)
	if err := NewRunner().RunCoded(cfg, data, n, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunCoded is the zero-allocation equivalent of the package-level
// RunCoded: payload, symbol, decision, and decode buffers all come from
// the Runner's reusable scratch, and *res is overwritten with the
// result. The computation — including the draw sequence when data is
// nil — is byte-identical to the package-level function's.
func (ru *Runner) RunCoded(cfg CodedConfig, data []byte, n int, res *Result) error {
	if data == nil {
		if n <= 0 {
			return errors.New("rxchain: need bits")
		}
		// The payload stream is independent of the noise stream (seed ^
		// 0x5eed) and fully consumed before the noise stream starts, so
		// one reseeded Stream serves both roles.
		ru.stream.Reseed(cfg.Seed ^ 0x5eed)
		ru.payload = growBytes(ru.payload, n)
		for i := range ru.payload {
			ru.payload[i] = ru.stream.Bit()
		}
		data = ru.payload
	}
	if cfg.SamplesPerBit < 4 {
		return fmt.Errorf("rxchain: %d samples/symbol is too coarse", cfg.SamplesPerBit)
	}
	if cfg.Rate <= 0 || cfg.SignalAmplitude <= 0 || cfg.NoiseRMS < 0 {
		return fmt.Errorf("rxchain: invalid config")
	}

	ru.symbols = linecode.EncodeAppend(ru.symbols[:0], cfg.Code, data)
	symbols := ru.symbols
	spb := cfg.Code.SymbolsPerBit()
	symbolRate := float64(cfg.Rate) * float64(spb)
	dt := 1 / (symbolRate * float64(cfg.SamplesPerBit))

	alpha := 1.0
	if cfg.HighPass.Cutoff > 0 {
		rc := 1 / (2 * math.Pi * float64(cfg.HighPass.Cutoff))
		alpha = rc / (rc + dt)
	}

	ru.stream.Reseed(cfg.Seed)
	stream := &ru.stream
	var prevIn, prevOut float64
	var initialized bool
	state := false
	warmSymbols := cfg.WarmupBits * spb

	// Warmup preamble: alternating symbols, as a real preamble would be.
	decided := growBytes(ru.decided, len(symbols))[:0]
	process := func(idx int, level float64) byte {
		var integral float64
		for s := 0; s < cfg.SamplesPerBit; s++ {
			t := units.Second((float64(idx)*float64(cfg.SamplesPerBit) + float64(s)) * dt)
			x := level + cfg.SelfInterference.Sample(t) + cfg.NoiseRMS*stream.Norm()
			var y float64
			if cfg.HighPass.Cutoff > 0 {
				if !initialized {
					prevIn, prevOut = x, 0
					initialized = true
				}
				y = alpha * (prevOut + x - prevIn)
				prevIn, prevOut = x, y
			} else {
				y = x
			}
			integral += y
		}
		mean := integral / float64(cfg.SamplesPerBit)
		state = cfg.Comparator.Decide(mean, state)
		if state {
			return 1
		}
		return 0
	}
	idx := 0
	for w := 0; w < warmSymbols; w++ {
		process(idx, float64(w%2)*cfg.SignalAmplitude)
		idx++
	}
	for _, sym := range symbols {
		level := 0.0
		if sym&1 == 1 {
			level = cfg.SignalAmplitude
		}
		decided = append(decided, process(idx, level))
		idx++
	}
	ru.decided = decided

	// Decode tolerantly — a symbol error corrupts its own bit, not the
	// rest of the stream (the strict linecode.Decode is for framing;
	// here we measure BER).
	*res = Result{Bits: len(data)}
	ru.decoded = decodeTolerantAppend(ru.decoded[:0], cfg.Code, decided)
	got := ru.decoded
	for i, b := range data {
		if i >= len(got) || got[i] != b {
			res.Errors++
		}
	}
	return nil
}

// decodeTolerant maps symbols to bits pairwise, pushing violations into
// the affected bit only.
func decodeTolerant(c linecode.Code, symbols []byte) []byte {
	return decodeTolerantAppend(nil, c, symbols)
}

// decodeTolerantAppend appends the tolerant decode of symbols to dst.
func decodeTolerantAppend(dst []byte, c linecode.Code, symbols []byte) []byte {
	switch c {
	case linecode.NRZ:
		return append(dst, symbols...)
	case linecode.Manchester:
		for i := 0; i+1 < len(symbols); i += 2 {
			// 1,0 → 1; 0,1 → 0; violations fall back to the first
			// half-symbol.
			dst = append(dst, symbols[i]&1)
		}
		return dst
	case linecode.FM0:
		for i := 0; i+1 < len(symbols); i += 2 {
			// Data-1 has no mid-bit inversion; data-0 has one. The
			// boundary inversion carries no data, so this intra-pair
			// rule is violation-proof.
			if symbols[i]&1 == symbols[i+1]&1 {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		}
		return dst
	default:
		panic(fmt.Sprintf("rxchain: unknown code %d", int(c)))
	}
}
