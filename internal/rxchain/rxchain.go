// Package rxchain simulates Braidio's passive receive chain at the
// waveform level: a backscatter-modulated envelope riding on carrier
// self-interference passes through the charge-pump detector, the
// high-pass filter, the instrumentation amplifier, and the comparator,
// sample by sample, and the recovered bits are compared with what the
// tag sent.
//
// This is the end-to-end demonstration of §3.1's key insight — the
// static (and slowly drifting) self-interference becomes a DC/
// low-frequency component that the high-pass filter removes, leaving the
// kHz-and-up backscatter signal for the comparator — and the
// ground-truth validator for the analytic BER models the PHY uses.
package rxchain

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/analog"
	"braidio/internal/fading"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Config describes one waveform-level run.
type Config struct {
	// Rate is the backscatter bitrate.
	Rate units.BitRate
	// SamplesPerBit is the simulation oversampling (≥4).
	SamplesPerBit int
	// SignalAmplitude is the backscatter envelope swing at the detector
	// input, in volts (after the charge pump's small-signal boost).
	SignalAmplitude float64
	// NoiseRMS is the additive noise at the detector output, in volts
	// (amp input-referred noise over the signal bandwidth).
	NoiseRMS float64
	// SelfInterference is the carrier leakage process; its Level is in
	// the same detector-output volts. Zero Level disables it.
	SelfInterference fading.SelfInterference
	// HighPass is the DC-rejection filter. A zero cutoff disables
	// filtering (the ablation case, where self-interference saturates
	// the comparator's operating point).
	HighPass analog.HighPass
	// Comparator slices the filtered waveform.
	Comparator analog.Comparator
	// WarmupBits run through the chain before error counting starts,
	// letting the high-pass filter charge past the self-interference
	// step — the role the frame preamble plays on the real board.
	WarmupBits int
	// Seed drives noise and payload generation.
	Seed uint64
}

// DefaultConfig returns a chain at the given rate with the paper's
// component values and a healthy signal.
func DefaultConfig(rate units.BitRate, seed uint64) Config {
	return Config{
		Rate:             rate,
		SamplesPerBit:    8,
		SignalAmplitude:  20e-3,
		NoiseRMS:         2e-3,
		SelfInterference: fading.DefaultSelfInterference(1.0),
		HighPass:         analog.HighPass{Cutoff: units.Hertz(float64(rate) / 30)},
		Comparator:       analog.DefaultComparator,
		WarmupBits:       64,
		Seed:             seed,
	}
}

// Result summarizes a run.
type Result struct {
	// Bits transmitted.
	Bits int
	// Errors counted against the sent payload.
	Errors int
	// ResidualDC is the mean of the filtered waveform — how much
	// self-interference leaked past the high-pass filter.
	ResidualDC float64
	// SwingAtComparator is the separation between the mean comparator
	// input on one-bits and on zero-bits — the effective eye opening.
	SwingAtComparator float64
}

// BER returns the measured bit error rate.
func (r Result) BER() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Bits)
}

// Run pushes n random bits through the chain and returns the result.
// It is the allocating convenience wrapper around Runner.Run; steady-
// state callers (sweeps, Monte-Carlo loops) should hold a Runner.
func Run(cfg Config, n int) (*Result, error) {
	res := new(Result)
	var stream rng.Stream
	stream.Reseed(cfg.Seed)
	if err := run(cfg, n, &stream, res); err != nil {
		return nil, err
	}
	return res, nil
}

// run is the waveform loop shared by Run and Runner.Run. stream must be
// freshly reseeded with cfg.Seed; res is overwritten. The sample-level
// arithmetic (and therefore every draw and every float operation) is the
// golden contract the experiment notes pin — optimizations here must be
// bit-exact.
func run(cfg Config, n int, stream *rng.Stream, res *Result) error {
	if n <= 0 {
		return errors.New("rxchain: need at least one bit")
	}
	if cfg.SamplesPerBit < 4 {
		return fmt.Errorf("rxchain: %d samples/bit is too coarse", cfg.SamplesPerBit)
	}
	if cfg.Rate <= 0 || cfg.SignalAmplitude <= 0 || cfg.NoiseRMS < 0 {
		return fmt.Errorf("rxchain: invalid config %+v", cfg)
	}
	dt := 1 / (float64(cfg.Rate) * float64(cfg.SamplesPerBit))

	// Single-pole high-pass: y[k] = a·(y[k-1] + x[k] − x[k-1]).
	alpha := 1.0
	if cfg.HighPass.Cutoff > 0 {
		rc := 1 / (2 * math.Pi * float64(cfg.HighPass.Cutoff))
		alpha = rc / (rc + dt)
	}

	*res = Result{Bits: n}
	var prevIn, prevOut float64
	var initialized bool
	var oneSum, zeroSum float64
	var oneN, zeroN int
	var dcSum float64
	var samples int
	state := false // comparator latch

	total := n + cfg.WarmupBits
	for i := 0; i < total; i++ {
		warm := i < cfg.WarmupBits
		bit := stream.Bool()
		// Integrate the filtered waveform over the bit for a matched
		// decision, mimicking the comparator+controller sampling.
		var integral float64
		for s := 0; s < cfg.SamplesPerBit; s++ {
			t := units.Second((float64(i)*float64(cfg.SamplesPerBit) + float64(s)) * dt)
			level := 0.0
			if bit {
				level = cfg.SignalAmplitude
			}
			x := level + cfg.SelfInterference.Sample(t) + cfg.NoiseRMS*stream.Norm()
			var y float64
			if cfg.HighPass.Cutoff > 0 {
				if !initialized {
					prevIn, prevOut = x, 0
					initialized = true
				}
				y = alpha * (prevOut + x - prevIn)
				prevIn, prevOut = x, y
			} else {
				y = x
			}
			integral += y
			if !warm {
				dcSum += y
				samples++
			}
		}
		mean := integral / float64(cfg.SamplesPerBit)
		// The comparator slices around zero (the high-pass filter has
		// centred the waveform); hysteresis holds weak inputs.
		decided := cfg.Comparator.Decide(mean, state)
		state = decided
		if warm {
			continue
		}
		if bit {
			oneSum += mean
			oneN++
		} else {
			zeroSum += mean
			zeroN++
		}
		if decided != bit {
			res.Errors++
		}
	}
	res.ResidualDC = dcSum / float64(samples)
	if oneN > 0 && zeroN > 0 {
		res.SwingAtComparator = oneSum/float64(oneN) - zeroSum/float64(zeroN)
	}
	return nil
}

// SNR returns the chain's effective per-bit SNR (linear): the matched
// decision statistic's signal-to-noise after integrating SamplesPerBit
// samples.
func (cfg Config) SNR() float64 {
	if cfg.NoiseRMS <= 0 {
		return math.Inf(1)
	}
	// The decision variable is the bit mean: signal separation
	// amplitude/2 around the slicing point, noise σ/√spb.
	sigma := cfg.NoiseRMS / math.Sqrt(float64(cfg.SamplesPerBit))
	a := cfg.SignalAmplitude / 2
	return a * a / (sigma * sigma)
}
