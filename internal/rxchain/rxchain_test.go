package rxchain

import (
	"math"
	"testing"

	"braidio/internal/analog"
	"braidio/internal/fading"
	"braidio/internal/modem"
	"braidio/internal/units"
)

// TestCleanChainIsErrorFree: a healthy signal (SNR ≈ 23 dB) through the
// full chain — self-interference, high-pass, comparator — decodes
// without errors.
func TestCleanChainIsErrorFree(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 1)
	res, err := Run(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("%d errors at SNR %.0f (%.1f dB)", res.Errors, cfg.SNR(), 10*math.Log10(cfg.SNR()))
	}
	if res.Bits != 20000 {
		t.Errorf("bits = %d", res.Bits)
	}
}

// TestSelfInterferenceRejection is §3.1 end-to-end: a self-interference
// level 50× the signal amplitude leaves only a negligible residual after
// the high-pass filter, and decoding still works.
func TestSelfInterferenceRejection(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 2)
	cfg.SelfInterference = fading.DefaultSelfInterference(1.0) // 1 V vs 20 mV signal
	res, err := Run(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.BER() > 1e-3 {
		t.Errorf("BER %v under 50× self-interference", res.BER())
	}
	// The residual mean must be small relative to the interference.
	if math.Abs(res.ResidualDC) > 0.05*cfg.SelfInterference.Level {
		t.Errorf("residual DC %.3g vs interference %.3g", res.ResidualDC, cfg.SelfInterference.Level)
	}
}

// TestNoFilterFails is the ablation: without the high-pass filter the
// self-interference parks the comparator input far above threshold and
// half the bits (all the zeros) decode wrong.
func TestNoFilterFails(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 3)
	cfg.HighPass = analog.HighPass{}
	res, err := Run(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if ber := res.BER(); ber < 0.4 {
		t.Errorf("BER without DC rejection = %v; expected ≈0.5 (all zero-bits wrong)", ber)
	}
}

// TestDynamicInterferenceStillRejected: the drifting (millisecond-
// coherence) interference of §3.1 is still below the filter's cutoff.
func TestDynamicInterferenceStillRejected(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 4)
	cfg.SelfInterference = fading.SelfInterference{
		Level: 1.0, DriftFraction: 0.1, CoherenceTime: 2e-3,
	}
	res, err := Run(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if ber := res.BER(); ber > 1e-3 {
		t.Errorf("BER under dynamic interference = %v", ber)
	}
}

// TestBERTrackingAnalytic sweeps the noise level and compares the
// measured BER with the coherent-slicing analytic curve within an order
// of magnitude — the cross-validation DESIGN.md promises.
func TestBERTrackingAnalytic(t *testing.T) {
	for _, snrDB := range []float64{6, 9, 12} {
		cfg := DefaultConfig(units.Rate100k, uint64(100+int(snrDB)))
		// Dial NoiseRMS for the target SNR.
		target := math.Pow(10, snrDB/10)
		cfg.NoiseRMS = cfg.SignalAmplitude / 2 * math.Sqrt(float64(cfg.SamplesPerBit)/target)
		// Disable hysteresis, self-interference, and (mostly) baseline
		// wander for a clean comparison with the memoryless analytic
		// detector: what remains is the slicer in Gaussian noise.
		cfg.Comparator.Hysteresis = 0
		cfg.SelfInterference = fading.SelfInterference{}
		cfg.HighPass = analog.HighPass{Cutoff: units.Hertz(float64(cfg.Rate) / 300)}
		cfg.WarmupBits = 2000
		res, err := Run(cfg, 300000)
		if err != nil {
			t.Fatal(err)
		}
		measured := res.BER()
		// The integrated slicer is antipodal-like around the threshold:
		// Pb = Q(√snr) for OOK with optimal threshold.
		analytic := 0.5 * math.Erfc(math.Sqrt(target)/math.Sqrt2)
		if measured == 0 {
			t.Errorf("snr %v dB: measured zero errors, analytic %v — sample size too small?", snrDB, analytic)
			continue
		}
		ratio := measured / analytic
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("snr %v dB: measured %v vs analytic %v (ratio %v)", snrDB, measured, analytic, ratio)
		}
	}
}

// TestBERMonotoneInNoise: more noise, more errors.
func TestBERMonotoneInNoise(t *testing.T) {
	prev := -1.0
	for _, noise := range []float64{5e-3, 8e-3, 12e-3, 18e-3} {
		cfg := DefaultConfig(units.Rate100k, 9)
		cfg.NoiseRMS = noise
		cfg.Comparator.Hysteresis = 0
		res, err := Run(cfg, 100000)
		if err != nil {
			t.Fatal(err)
		}
		ber := res.BER()
		if ber < prev {
			t.Errorf("BER fell from %v to %v as noise rose to %v", prev, ber, noise)
		}
		prev = ber
	}
	if prev == 0 {
		t.Error("no errors even at the highest noise level; sweep too easy")
	}
}

// TestHysteresisSuppressesChatter: with borderline signal, hysteresis
// reduces error bursts compared to a zero-hysteresis comparator.
func TestHysteresisSuppressesChatter(t *testing.T) {
	base := DefaultConfig(units.Rate100k, 10)
	base.SignalAmplitude = 6e-3
	base.NoiseRMS = 3e-3

	with := base
	with.Comparator.Hysteresis = 1e-3
	without := base
	without.Comparator.Hysteresis = 0

	rw, err := Run(with, 100000)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Run(without, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Hysteresis is not a win for independent symbol decisions — it is
	// for runtime chatter — so only require it not to be catastrophic.
	if rw.BER() > 5*ro.BER()+0.01 {
		t.Errorf("hysteresis BER %v vs none %v", rw.BER(), ro.BER())
	}
}

func TestSwingReported(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 11)
	res, err := Run(cfg, 5000)
	if err != nil {
		t.Fatal(err)
	}
	// The eye opening at the comparator should be on the order of the
	// signal amplitude (the high-pass filter preserves the bit-to-bit
	// separation while stripping the DC).
	if res.SwingAtComparator < 0.5*cfg.SignalAmplitude || res.SwingAtComparator > 1.5*cfg.SignalAmplitude {
		t.Errorf("swing %.3g vs signal amplitude %.3g", res.SwingAtComparator, cfg.SignalAmplitude)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 1)
	if _, err := Run(cfg, 0); err == nil {
		t.Error("zero bits accepted")
	}
	bad := cfg
	bad.SamplesPerBit = 2
	if _, err := Run(bad, 10); err == nil {
		t.Error("coarse sampling accepted")
	}
	bad = cfg
	bad.SignalAmplitude = 0
	if _, err := Run(bad, 10); err == nil {
		t.Error("zero amplitude accepted")
	}
}

func TestSNRHelper(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 1)
	if snr := cfg.SNR(); snr < 100 {
		t.Errorf("default SNR = %v, want comfortably high", snr)
	}
	cfg.NoiseRMS = 0
	if !math.IsInf(cfg.SNR(), 1) {
		t.Error("noiseless SNR should be +Inf")
	}
	// The helper feeds the same scheme the modem uses.
	_ = modem.OOKNonCoherent
}

func TestDeterministic(t *testing.T) {
	a, err := Run(DefaultConfig(units.Rate100k, 42), 10000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(units.Rate100k, 42), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Errors != b.Errors || a.ResidualDC != b.ResidualDC {
		t.Error("same-seed runs diverged")
	}
}

func BenchmarkRun(b *testing.B) {
	cfg := DefaultConfig(units.Rate100k, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, 1000); err != nil {
			b.Fatal(err)
		}
	}
}
