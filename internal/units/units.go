// Package units provides the physical-unit helpers used throughout the
// Braidio simulator: power in watts and dBm, dimensionless dB ratios,
// energy in joules and watt-hours, and the frequency/wavelength relations
// needed for link budgets.
//
// All quantities are represented by distinct named float64 types so that a
// power level cannot be accidentally passed where an energy is expected.
// Conversions are explicit and lossless (up to floating point).
package units

import (
	"fmt"
	"math"
)

// SpeedOfLight is the propagation speed of radio waves in vacuum, in m/s.
const SpeedOfLight = 299_792_458.0

// Watt is a power level in watts.
type Watt float64

// Common power scales.
const (
	Milliwatt Watt = 1e-3
	Microwatt Watt = 1e-6
	Nanowatt  Watt = 1e-9
)

// DBm is a power level in decibels relative to one milliwatt.
type DBm float64

// DB is a dimensionless ratio expressed in decibels (gains, losses, SNR).
type DB float64

// Joule is an amount of energy in joules (watt-seconds).
type Joule float64

// WattHour is an amount of energy in watt-hours, the unit battery
// capacities are quoted in (Fig. 1 of the paper).
type WattHour float64

// Hertz is a frequency in hertz.
type Hertz float64

// Common frequency scales.
const (
	Kilohertz Hertz = 1e3
	Megahertz Hertz = 1e6
	Gigahertz Hertz = 1e9
)

// Meter is a distance in meters.
type Meter float64

// Second is a duration in seconds. The simulator uses float seconds rather
// than time.Duration because event times routinely involve sub-nanosecond
// fractions of a bit at megabit rates and joule integration over hours.
type Second float64

// BitRate is a link speed in bits per second.
type BitRate float64

// Common bit rates used by Braidio's three calibrated operating points.
const (
	Rate10k  BitRate = 10_000
	Rate100k BitRate = 100_000
	Rate1M   BitRate = 1_000_000
)

// DBm converts a power in watts to dBm. It panics if w is not positive,
// since zero or negative power has no decibel representation; callers model
// "radio off" by omitting the term from the budget instead.
func (w Watt) DBm() DBm {
	if w <= 0 {
		panic(fmt.Sprintf("units: cannot express %v W in dBm", float64(w)))
	}
	return DBm(10 * math.Log10(float64(w)/1e-3))
}

// Watts converts a power in dBm to watts.
func (d DBm) Watts() Watt {
	return Watt(1e-3 * math.Pow(10, float64(d)/10))
}

// Milliwatts reports the power in milliwatts.
func (w Watt) Milliwatts() float64 { return float64(w) / 1e-3 }

// Microwatts reports the power in microwatts.
func (w Watt) Microwatts() float64 { return float64(w) / 1e-6 }

// Add returns the power level raised by a gain (or lowered by a negative
// gain / loss) expressed in dB.
func (d DBm) Add(g DB) DBm { return d + DBm(g) }

// Sub returns the power level lowered by a loss expressed in dB.
func (d DBm) Sub(l DB) DBm { return d - DBm(l) }

// Ratio converts a dB value to a linear power ratio.
func (g DB) Ratio() float64 { return math.Pow(10, float64(g)/10) }

// DBFromRatio converts a linear power ratio to dB. It panics on
// non-positive ratios.
func DBFromRatio(r float64) DB {
	if r <= 0 {
		panic(fmt.Sprintf("units: cannot express ratio %v in dB", r))
	}
	return DB(10 * math.Log10(r))
}

// Joules converts watt-hours to joules.
func (wh WattHour) Joules() Joule { return Joule(float64(wh) * 3600) }

// WattHours converts joules to watt-hours.
func (j Joule) WattHours() WattHour { return WattHour(float64(j) / 3600) }

// Energy returns the energy drawn by a constant power over a duration.
func Energy(p Watt, t Second) Joule { return Joule(float64(p) * float64(t)) }

// Duration returns how long an energy budget lasts at a constant power
// draw. It returns +Inf when p is zero and panics when p is negative.
func Duration(e Joule, p Watt) Second {
	if p < 0 {
		panic(fmt.Sprintf("units: negative power %v", float64(p)))
	}
	if p == 0 {
		return Second(math.Inf(1))
	}
	return Second(float64(e) / float64(p))
}

// Wavelength returns the free-space wavelength of a carrier frequency.
func (f Hertz) Wavelength() Meter {
	if f <= 0 {
		panic(fmt.Sprintf("units: non-positive frequency %v", float64(f)))
	}
	return Meter(SpeedOfLight / float64(f))
}

// BitDuration returns the on-air time of a single bit at rate r.
func (r BitRate) BitDuration() Second {
	if r <= 0 {
		panic(fmt.Sprintf("units: non-positive bit rate %v", float64(r)))
	}
	return Second(1 / float64(r))
}

// JoulesPerBit is the energy cost of moving one bit, the unit the carrier
// offload algorithm of §4.2 reasons in (its reciprocal is bits/joule).
type JoulesPerBit float64

// PerBit returns the per-bit energy cost of running at power p while
// sustaining bit rate r.
func PerBit(p Watt, r BitRate) JoulesPerBit {
	if r <= 0 {
		panic(fmt.Sprintf("units: non-positive bit rate %v", float64(r)))
	}
	return JoulesPerBit(float64(p) / float64(r))
}

// BitsPerJoule reports the energy efficiency (the axes of Fig. 9).
func (c JoulesPerBit) BitsPerJoule() float64 {
	if c <= 0 {
		return math.Inf(1)
	}
	return 1 / float64(c)
}

// String formats the power with an SI prefix, e.g. "129 mW" or "16.5 µW".
func (w Watt) String() string {
	v := float64(w)
	switch {
	case v == 0:
		return "0 W"
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.3g W", v)
	case math.Abs(v) >= 1e-3:
		return fmt.Sprintf("%.3g mW", v*1e3)
	case math.Abs(v) >= 1e-6:
		return fmt.Sprintf("%.3g µW", v*1e6)
	default:
		return fmt.Sprintf("%.3g nW", v*1e9)
	}
}

// String formats the rate compactly, e.g. "100 kbps" or "1 Mbps".
func (r BitRate) String() string {
	v := float64(r)
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.4g Mbps", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.4g kbps", v/1e3)
	default:
		return fmt.Sprintf("%.4g bps", v)
	}
}
