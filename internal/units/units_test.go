package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func closeTo(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDBmRoundTrip(t *testing.T) {
	cases := []struct {
		w   Watt
		dbm DBm
	}{
		{1e-3, 0},
		{1, 30},
		{0.129, 21.106}, // Braidio backscatter reader
		{16.5e-6, -17.825},
		{0.640, 28.062}, // AS3993 reader
	}
	for _, c := range cases {
		if got := c.w.DBm(); !closeTo(float64(got), float64(c.dbm), 1e-3) {
			t.Errorf("(%v).DBm() = %v, want %v", c.w, got, c.dbm)
		}
		if got := c.dbm.Watts(); !closeTo(float64(got), float64(c.w), 1e-3) {
			t.Errorf("(%v).Watts() = %v, want %v", c.dbm, got, c.w)
		}
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(exp float64) bool {
		// Constrain to a physically plausible power range: 1 pW .. 10 W.
		d := DBm(math.Mod(math.Abs(exp), 100) - 90)
		back := d.Watts().DBm()
		return closeTo(float64(back), float64(d), 1e-9) ||
			math.Abs(float64(back-d)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmOfNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Watt(0).DBm() did not panic")
		}
	}()
	Watt(0).DBm()
}

func TestDBRatio(t *testing.T) {
	if got := DB(3.0103).Ratio(); !closeTo(got, 2, 1e-4) {
		t.Errorf("3.01 dB ratio = %v, want 2", got)
	}
	if got := DBFromRatio(1000); !closeTo(float64(got), 30, 1e-9) {
		t.Errorf("DBFromRatio(1000) = %v, want 30", got)
	}
}

func TestDBRatioRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		g := DB(math.Mod(math.Abs(x), 200) - 100)
		return closeTo(float64(DBFromRatio(g.Ratio())), float64(g), 1e-9) ||
			math.Abs(float64(DBFromRatio(g.Ratio())-g)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyConversions(t *testing.T) {
	if got := WattHour(1).Joules(); got != 3600 {
		t.Errorf("1 Wh = %v J, want 3600", got)
	}
	if got := Joule(7200).WattHours(); got != 2 {
		t.Errorf("7200 J = %v Wh, want 2", got)
	}
	if got := Energy(0.1, 10); got != 1 {
		t.Errorf("Energy(0.1 W, 10 s) = %v, want 1 J", got)
	}
	if got := Duration(10, 2); got != 5 {
		t.Errorf("Duration(10 J, 2 W) = %v, want 5 s", got)
	}
	if got := Duration(10, 0); !math.IsInf(float64(got), 1) {
		t.Errorf("Duration at zero power = %v, want +Inf", got)
	}
}

func TestEnergyDurationInverseProperty(t *testing.T) {
	f := func(p, tm uint16) bool {
		pw := Watt(float64(p)/100 + 1e-6)
		ts := Second(float64(tm)/10 + 1e-6)
		e := Energy(pw, ts)
		return closeTo(float64(Duration(e, pw)), float64(ts), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWavelength(t *testing.T) {
	// 915 MHz ISM band used by Braidio's UHF front end.
	got := (915 * Megahertz).Wavelength()
	if !closeTo(float64(got), 0.32764, 1e-3) {
		t.Errorf("915 MHz wavelength = %v, want ~0.3276 m", got)
	}
}

func TestPerBit(t *testing.T) {
	// 129 mW at 1 Mbps = 129 nJ/bit = 7.75 Mbit/J.
	c := PerBit(0.129, Rate1M)
	if !closeTo(float64(c), 1.29e-7, 1e-9) {
		t.Errorf("PerBit = %v, want 1.29e-7", c)
	}
	if !closeTo(c.BitsPerJoule(), 7.7519e6, 1e-3) {
		t.Errorf("BitsPerJoule = %v, want ~7.75e6", c.BitsPerJoule())
	}
}

func TestBitDuration(t *testing.T) {
	if got := Rate10k.BitDuration(); got != 1e-4 {
		t.Errorf("10 kbps bit duration = %v, want 1e-4 s", got)
	}
}

func TestWattString(t *testing.T) {
	cases := []struct {
		w    Watt
		want string
	}{
		{0.129, "129 mW"},
		{16.5e-6, "16.5 µW"},
		{2.5, "2.5 W"},
		{3e-9, "3 nW"},
		{0, "0 W"},
	}
	for _, c := range cases {
		if got := c.w.String(); got != c.want {
			t.Errorf("(%v W).String() = %q, want %q", float64(c.w), got, c.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	for _, c := range []struct {
		r    BitRate
		want string
	}{{Rate1M, "1 Mbps"}, {Rate100k, "100 kbps"}, {Rate10k, "10 kbps"}, {500, "500 bps"}} {
		if got := c.r.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"DBFromRatio(0)":  func() { DBFromRatio(0) },
		"DBFromRatio(-1)": func() { DBFromRatio(-1) },
		"Wavelength(0)":   func() { Hertz(0).Wavelength() },
		"BitDuration(0)":  func() { BitRate(0).BitDuration() },
		"PerBit rate 0":   func() { PerBit(1, 0) },
		"Duration p<0":    func() { Duration(1, -1) },
		"DBm of negative": func() { Watt(-1).DBm() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestStringContainsUnits(t *testing.T) {
	if !strings.Contains(Watt(0.05).String(), "mW") {
		t.Error("expected mW suffix for 50 mW")
	}
}
