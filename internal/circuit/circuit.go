// Package circuit is a small nodal transient circuit simulator — just
// enough SPICE to reproduce the RF charge pump of Fig. 3 from first
// principles.
//
// It implements modified nodal analysis with backward-Euler companion
// models for capacitors and Newton-Raphson iteration for the exponential
// diode. Node 0 is ground. Voltage sources get one auxiliary current
// variable each, as in standard MNA.
package circuit

import (
	"errors"
	"fmt"
	"math"
)

// Circuit is a netlist under construction. The zero value is an empty
// circuit with only the ground node.
type Circuit struct {
	nodes    int // highest node index + 1 (including ground)
	rs       []resistor
	cs       []capacitor
	ds       []diode
	vs       []vsource
	switches []vswitch
}

type resistor struct {
	a, b int
	r    float64
}

type capacitor struct {
	a, b int
	c    float64
}

type diode struct {
	anode, cathode int
	is             float64 // saturation current
	nvt            float64 // emission coefficient × thermal voltage
}

type vsource struct {
	pos, neg int
	v        func(t float64) float64
}

type vswitch struct {
	a, b   int
	ron    float64
	roff   float64
	closed func(t float64) bool
}

func (c *Circuit) touch(nodes ...int) {
	for _, n := range nodes {
		if n < 0 {
			panic(fmt.Sprintf("circuit: negative node %d", n))
		}
		if n+1 > c.nodes {
			c.nodes = n + 1
		}
	}
}

// Node allocates and returns a fresh non-ground node index.
func (c *Circuit) Node() int {
	if c.nodes == 0 {
		c.nodes = 1 // reserve node 0 for ground
	}
	n := c.nodes
	c.nodes++
	return n
}

// Resistor connects a resistance r (ohms) between nodes a and b.
func (c *Circuit) Resistor(a, b int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("circuit: non-positive resistance %v", r))
	}
	c.touch(a, b)
	c.rs = append(c.rs, resistor{a, b, r})
}

// Capacitor connects a capacitance f (farads) between nodes a and b.
func (c *Circuit) Capacitor(a, b int, f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("circuit: non-positive capacitance %v", f))
	}
	c.touch(a, b)
	c.cs = append(c.cs, capacitor{a, b, f})
}

// Diode connects a diode from anode to cathode with the given saturation
// current (amps) and emission-coefficient×thermal-voltage product nVt
// (volts). Schottky detector diodes like the HSMS-285x have Is around
// 3 µA and n·Vt around 27 mV, giving the low turn-on voltage RF
// detectors rely on.
func (c *Circuit) Diode(anode, cathode int, is, nvt float64) {
	if is <= 0 || nvt <= 0 {
		panic("circuit: diode parameters must be positive")
	}
	c.touch(anode, cathode)
	c.ds = append(c.ds, diode{anode, cathode, is, nvt})
}

// SchottkyDiode adds a diode with typical RF-detector Schottky
// parameters.
func (c *Circuit) SchottkyDiode(anode, cathode int) {
	c.Diode(anode, cathode, 3e-6, 0.027)
}

// VSource connects a time-varying ideal voltage source (pos relative to
// neg).
func (c *Circuit) VSource(pos, neg int, v func(t float64) float64) {
	if v == nil {
		panic("circuit: nil source function")
	}
	c.touch(pos, neg)
	c.vs = append(c.vs, vsource{pos, neg, v})
}

// Sine connects a sinusoidal source of the given amplitude (volts) and
// frequency (hertz).
func (c *Circuit) Sine(pos, neg int, amplitude, freq float64) {
	w := 2 * math.Pi * freq
	c.VSource(pos, neg, func(t float64) float64 { return amplitude * math.Sin(w*t) })
}

// Switch connects a voltage-controlled ideal switch with on/off
// resistances; closed reports whether the switch conducts at time t. Used
// to model the backscatter RF transistor toggling the antenna impedance.
func (c *Circuit) Switch(a, b int, ron, roff float64, closed func(t float64) bool) {
	if ron <= 0 || roff <= ron {
		panic("circuit: switch needs 0 < ron < roff")
	}
	if closed == nil {
		panic("circuit: nil switch control")
	}
	c.touch(a, b)
	c.switches = append(c.switches, vswitch{a, b, ron, roff, closed})
}

// Result holds a transient simulation's sampled node voltages.
type Result struct {
	// Time holds the sample instants.
	Time []float64
	// V[n] holds the voltage waveform of node n.
	V [][]float64
}

// Voltage returns the waveform of one node.
func (r *Result) Voltage(node int) []float64 { return r.V[node] }

// Final returns the last sampled voltage of a node.
func (r *Result) Final(node int) float64 { return r.V[node][len(r.V[node])-1] }

// errNoConverge is returned when Newton iteration fails; exposed as a
// sentinel for tests.
var errNoConverge = errors.New("circuit: Newton iteration did not converge")

// Transient runs a backward-Euler transient analysis from t=0 to tStop
// with fixed step dt, sampling every node at every step. All initial node
// voltages are zero.
func (c *Circuit) Transient(dt, tStop float64) (*Result, error) {
	if dt <= 0 || tStop <= dt {
		return nil, fmt.Errorf("circuit: invalid time grid dt=%v tStop=%v", dt, tStop)
	}
	n := c.nodes - 1 // unknown node voltages (ground eliminated)
	if n < 1 {
		return nil, errors.New("circuit: no nodes beyond ground")
	}
	nv := len(c.vs)
	dim := n + nv

	steps := int(math.Ceil(tStop / dt))
	res := &Result{Time: make([]float64, 0, steps+1), V: make([][]float64, c.nodes)}
	for i := range res.V {
		res.V[i] = make([]float64, 0, steps+1)
	}

	vPrev := make([]float64, c.nodes) // previous-step node voltages
	record := func(t float64, v []float64) {
		res.Time = append(res.Time, t)
		for i := range res.V {
			res.V[i] = append(res.V[i], v[i])
		}
	}
	record(0, vPrev)

	// Workspace reused across steps.
	a := make([][]float64, dim)
	for i := range a {
		a[i] = make([]float64, dim+1)
	}
	vGuess := make([]float64, c.nodes)

	for step := 1; step <= steps; step++ {
		t := float64(step) * dt
		copy(vGuess, vPrev)
		converged := false
		for iter := 0; iter < 200; iter++ {
			c.stamp(a, vGuess, vPrev, t, dt, n)
			sol, err := solveDense(a, dim)
			if err != nil {
				return nil, err
			}
			maxDelta := 0.0
			for i := 1; i < c.nodes; i++ {
				nv := sol[i-1]
				if d := math.Abs(nv - vGuess[i]); d > maxDelta {
					maxDelta = d
				}
				// Damp large Newton steps to keep the diode exponential
				// under control.
				if d := nv - vGuess[i]; d > 0.5 {
					nv = vGuess[i] + 0.5
				} else if d < -0.5 {
					nv = vGuess[i] - 0.5
				}
				vGuess[i] = nv
			}
			if maxDelta < 1e-9 {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("%w at t=%v", errNoConverge, t)
		}
		copy(vPrev, vGuess)
		record(t, vPrev)
	}
	return res, nil
}

// stamp assembles the MNA matrix (dim × dim) and RHS (last column) for
// the current Newton guess.
func (c *Circuit) stamp(a [][]float64, vGuess, vPrev []float64, t, dt float64, n int) {
	dim := len(a)
	for i := range a {
		for j := range a[i] {
			a[i][j] = 0
		}
	}
	addG := func(x, y int, g float64) {
		// Node indices are 1-based (0 is ground); matrix rows 0..n-1.
		if x > 0 && y > 0 {
			a[x-1][y-1] += g
		}
	}
	addI := func(x int, i float64) {
		if x > 0 {
			a[x-1][dim] += i
		}
	}
	stampConductance := func(x, y int, g float64) {
		addG(x, x, g)
		addG(y, y, g)
		addG(x, y, -g)
		addG(y, x, -g)
	}
	for _, r := range c.rs {
		stampConductance(r.a, r.b, 1/r.r)
	}
	for _, sw := range c.switches {
		r := sw.roff
		if sw.closed(t) {
			r = sw.ron
		}
		stampConductance(sw.a, sw.b, 1/r)
	}
	for _, cap := range c.cs {
		g := cap.c / dt
		stampConductance(cap.a, cap.b, g)
		ieq := g * (vPrev[cap.a] - vPrev[cap.b])
		addI(cap.a, ieq)
		addI(cap.b, -ieq)
	}
	for _, d := range c.ds {
		vd := vGuess[d.anode] - vGuess[d.cathode]
		// Clamp the exponent for numerical safety; the damped Newton
		// steps keep the operating point honest.
		x := vd / d.nvt
		if x > 80 {
			x = 80
		}
		e := math.Exp(x)
		id := d.is * (e - 1)
		gd := d.is / d.nvt * e
		if gd < 1e-12 {
			gd = 1e-12 // keep the matrix non-singular when fully off
		}
		ieq := id - gd*vd
		stampConductance(d.anode, d.cathode, gd)
		addI(d.anode, -ieq)
		addI(d.cathode, ieq)
	}
	for k, s := range c.vs {
		row := n + k
		if s.pos > 0 {
			a[row][s.pos-1] += 1
			a[s.pos-1][row] += 1
		}
		if s.neg > 0 {
			a[row][s.neg-1] -= 1
			a[s.neg-1][row] -= 1
		}
		a[row][dim] = s.v(t)
	}
}

// solveDense solves the dim×dim system in-place with partial pivoting;
// the augmented column holds the RHS.
func solveDense(a [][]float64, dim int) ([]float64, error) {
	for col := 0; col < dim; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-18 {
			return nil, errors.New("circuit: singular matrix (floating node?)")
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for r := 0; r < dim; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / piv
			if f == 0 {
				continue
			}
			for j := col; j <= dim; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	x := make([]float64, dim)
	for i := 0; i < dim; i++ {
		x[i] = a[i][dim] / a[i][i]
	}
	return x, nil
}
