package circuit

import (
	"math"
	"testing"
)

func TestVoltageDivider(t *testing.T) {
	var c Circuit
	in := c.Node() // node 1
	if in != 1 {
		t.Fatalf("first allocated node = %d, want 1", in)
	}
	mid := c.Node()
	c.VSource(in, 0, func(float64) float64 { return 10 })
	c.Resistor(in, mid, 1000)
	c.Resistor(mid, 0, 1000)
	res, err := c.Transient(1e-6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Final(mid); math.Abs(got-5) > 1e-6 {
		t.Errorf("divider mid = %v V, want 5", got)
	}
	if got := res.Final(in); math.Abs(got-10) > 1e-9 {
		t.Errorf("source node = %v V, want 10", got)
	}
}

func TestRCCharging(t *testing.T) {
	var c Circuit
	in := c.Node()
	out := c.Node()
	const r, cap = 1000.0, 1e-6 // τ = 1 ms
	c.VSource(in, 0, func(float64) float64 { return 1 })
	c.Resistor(in, out, r)
	c.Capacitor(out, 0, cap)
	res, err := c.Transient(1e-5, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	// After 1τ the capacitor is at 1−e⁻¹ ≈ 0.632.
	idx := len(res.Time) / 5
	if got := res.V[out][idx]; math.Abs(got-0.632) > 0.01 {
		t.Errorf("v(τ) = %v, want ≈0.632", got)
	}
	// After 5τ it is essentially full.
	if got := res.Final(out); math.Abs(got-1) > 0.01 {
		t.Errorf("v(5τ) = %v, want ≈1", got)
	}
}

func TestDiodeRectifies(t *testing.T) {
	var c Circuit
	in := c.Node()
	out := c.Node()
	c.Sine(in, 0, 1, 1000)
	c.SchottkyDiode(in, out)
	c.Capacitor(out, 0, 1e-6)
	c.Resistor(out, 0, 1e6)
	res, err := c.Transient(1e-6, 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final(out)
	// A half-wave rectifier with a Schottky should hold close to the
	// peak minus a small drop.
	if final < 0.7 || final > 1.0 {
		t.Errorf("rectified output = %v V, want ≈0.8–1.0", final)
	}
	// The output must never go significantly negative.
	for i, v := range res.V[out] {
		if v < -0.05 {
			t.Fatalf("output negative (%v) at step %d", v, i)
		}
	}
}

func TestDiodeBlocksReverse(t *testing.T) {
	var c Circuit
	in := c.Node()
	out := c.Node()
	c.VSource(in, 0, func(float64) float64 { return -5 })
	c.SchottkyDiode(in, out)
	c.Resistor(out, 0, 1000)
	res, err := c.Transient(1e-6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse-biased: almost no current, output stays near 0.
	if got := math.Abs(res.Final(out)); got > 0.01 {
		t.Errorf("reverse leakage output = %v V, want ≈0", got)
	}
}

func TestSwitchToggles(t *testing.T) {
	var c Circuit
	in := c.Node()
	out := c.Node()
	c.VSource(in, 0, func(float64) float64 { return 1 })
	c.Switch(in, out, 1, 1e9, func(t float64) bool { return t > 5e-5 })
	c.Resistor(out, 0, 1000)
	res, err := c.Transient(1e-6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	early := res.V[out][10]
	late := res.Final(out)
	if early > 0.01 {
		t.Errorf("open switch leaked %v V", early)
	}
	if late < 0.99 {
		t.Errorf("closed switch output = %v V, want ≈1", late)
	}
}

func TestFloatingNodeFails(t *testing.T) {
	var c Circuit
	a := c.Node()
	b := c.Node()
	_ = b
	c.VSource(a, 0, func(float64) float64 { return 1 })
	// Node b is entirely disconnected → singular matrix.
	if _, err := c.Transient(1e-6, 1e-5); err == nil {
		t.Error("floating node should fail")
	}
}

func TestInvalidGrid(t *testing.T) {
	var c Circuit
	a := c.Node()
	c.VSource(a, 0, func(float64) float64 { return 1 })
	if _, err := c.Transient(0, 1); err == nil {
		t.Error("dt=0 should fail")
	}
	if _, err := c.Transient(1, 0.5); err == nil {
		t.Error("tStop<dt should fail")
	}
}

func TestEmptyCircuit(t *testing.T) {
	var c Circuit
	if _, err := c.Transient(1e-6, 1e-5); err == nil {
		t.Error("empty circuit should fail")
	}
}

func TestComponentValidation(t *testing.T) {
	var c Circuit
	for name, f := range map[string]func(){
		"zero R":        func() { c.Resistor(0, 1, 0) },
		"zero C":        func() { c.Capacitor(0, 1, 0) },
		"bad diode":     func() { c.Diode(0, 1, 0, 0.025) },
		"nil source":    func() { c.VSource(0, 1, nil) },
		"bad switch":    func() { c.Switch(0, 1, 10, 5, func(float64) bool { return true }) },
		"nil switch fn": func() { c.Switch(0, 1, 1, 1e9, nil) },
		"negative node": func() { c.Resistor(-1, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestResultAccessors(t *testing.T) {
	var c Circuit
	in := c.Node()
	c.VSource(in, 0, func(float64) float64 { return 2 })
	c.Resistor(in, 0, 100)
	res, err := c.Transient(1e-6, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Voltage(in)) != len(res.Time) {
		t.Error("waveform and time axis lengths differ")
	}
	if res.Final(in) != res.Voltage(in)[len(res.Time)-1] {
		t.Error("Final disagrees with Voltage")
	}
}

func BenchmarkTransientRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var c Circuit
		in := c.Node()
		out := c.Node()
		c.Sine(in, 0, 1, 1000)
		c.Resistor(in, out, 1000)
		c.Capacitor(out, 0, 1e-6)
		if _, err := c.Transient(1e-6, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
