package hub

import (
	"errors"
	"math"
	"testing"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/phy"
	"braidio/internal/sim"
	"braidio/internal/units"
)

func dev(t testing.TB, name string) energy.Device {
	t.Helper()
	d, ok := energy.DeviceByName(name)
	if !ok {
		t.Fatalf("unknown device %q", name)
	}
	return d
}

func bodyNetwork(t testing.TB) *Hub {
	t.Helper()
	h := New(dev(t, "iPhone 6S"), nil)
	for _, m := range []Member{
		{Device: dev(t, "Nike Fuel Band"), Distance: 0.4, Load: 1000},
		{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 5000},
		{Device: dev(t, "Pivothead"), Distance: 0.6, Load: 200000},
	} {
		if err := h.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestHubDeliversAllLoads(t *testing.T) {
	h := bodyNetwork(t)
	const horizon = 3600 // one hour
	res, err := h.Run(horizon, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.HubExhausted {
		t.Fatal("hub died within an hour")
	}
	for _, mr := range res.Members {
		want := float64(mr.Member.Load) * horizon
		if math.Abs(mr.Bits-want)/want > 0.01 {
			t.Errorf("%s delivered %v bits, offered %v", mr.Member.Device.Name, mr.Bits, want)
		}
		if mr.Starved {
			t.Errorf("%s starved", mr.Member.Device.Name)
		}
	}
}

// TestHubAllocationTolerance: the tolerance knob must propagate to the
// member braids — a loose hub reuses allocations across ratio drift
// (fewer LP solves, nonzero memo reuse) while delivering essentially
// the same bits as the exact hub.
func TestHubAllocationTolerance(t *testing.T) {
	exact := bodyNetwork(t)
	loose := bodyNetwork(t)
	loose.AllocationTolerance = 0.05
	re, err := exact.Run(3600, 12)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := loose.Run(3600, 12)
	if err != nil {
		t.Fatal(err)
	}
	if rl.LPSolves >= re.LPSolves {
		t.Errorf("tolerant hub solved %d LPs, exact solved %d — tolerance not propagated", rl.LPSolves, re.LPSolves)
	}
	if rl.AllocReuses <= re.AllocReuses {
		t.Errorf("tolerant hub reused %d allocations, exact %d", rl.AllocReuses, re.AllocReuses)
	}
	if diff := math.Abs(rl.TotalBits()-re.TotalBits()) / re.TotalBits(); diff > 0.01 {
		t.Errorf("tolerant hub delivered %v bits vs exact %v (%.2f%% off)", rl.TotalBits(), re.TotalBits(), 100*diff)
	}
}

// TestHubCarriesTheBill: the hub pays the power-proportional share of
// every member's radio bill — capacity_hub / (capacity_member +
// capacity_hub), i.e. the lion's share for every wearable.
func TestHubCarriesTheBill(t *testing.T) {
	h := bodyNetwork(t)
	res, err := h.Run(3600, 12)
	if err != nil {
		t.Fatal(err)
	}
	hubCap := float64(dev(t, "iPhone 6S").Capacity)
	for _, mr := range res.Members {
		want := hubCap / (hubCap + float64(mr.Member.Device.Capacity))
		if share := mr.HubShare(); math.Abs(share-want) > 0.03 {
			t.Errorf("%s: hub share = %v, want power-proportional %v", mr.Member.Device.Name, share, want)
		}
		// Backscatter dominates every member's uplink.
		bs := mr.ModeBits[phy.ModeBackscatter] / mr.Bits
		if bs < 0.75 {
			t.Errorf("%s: backscatter fraction = %v", mr.Member.Device.Name, bs)
		}
	}
	if res.HubDrain <= 0 {
		t.Fatal("hub paid nothing")
	}
	// Sanity: total bits accounted.
	if res.TotalBits() <= 0 {
		t.Fatal("no bits")
	}
}

// TestHubDrainSharedAcrossMembers: the hub's drain equals the sum of the
// per-member hub drains, and the heavy member dominates it.
func TestHubDrainSharedAcrossMembers(t *testing.T) {
	h := bodyNetwork(t)
	res, err := h.Run(3600, 6)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Joule
	heaviest := 0.0
	for _, mr := range res.Members {
		sum += mr.HubDrain
		if f := float64(mr.HubDrain); f > heaviest {
			heaviest = f
		}
	}
	if math.Abs(float64(res.HubDrain-sum)) > 1e-9 {
		t.Errorf("hub drain %v != member sum %v", res.HubDrain, sum)
	}
	// The camera (200 kbps) should dominate the band (1 kbps).
	if heaviest < 0.9*float64(res.HubDrain) {
		t.Errorf("camera share of hub drain = %v, want dominant", heaviest/float64(res.HubDrain))
	}
}

// TestHubExhaustion: a tiny hub battery dies mid-run and the result
// says so.
func TestHubExhaustion(t *testing.T) {
	tiny := energy.Device{Name: "dying-hub", Capacity: 0.00002, Class: "custom"}
	h := New(tiny, nil)
	if err := h.Add(Member{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 500000}); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(3600, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HubExhausted {
		t.Error("20 µWh hub survived an hour of half-megabit service")
	}
	if res.TotalBits() <= 0 {
		t.Error("nothing delivered before exhaustion")
	}
}

// TestMemberStarvation: a member with a micro battery starves while
// others continue.
func TestMemberStarvation(t *testing.T) {
	h := New(dev(t, "iPhone 6S"), nil)
	micro := energy.Device{Name: "coin-cell", Capacity: 1e-7, Class: "custom"}
	if err := h.Add(Member{Device: micro, Distance: 0.4, Load: 800000}); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(Member{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 1000}); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(7200, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Members[0].Starved {
		t.Error("micro member did not starve")
	}
	if res.Members[1].Starved {
		t.Error("healthy member starved")
	}
	if res.Members[1].Bits <= 0 {
		t.Error("healthy member stopped delivering")
	}
}

func TestHubValidation(t *testing.T) {
	h := New(dev(t, "iPhone 6S"), nil)
	if _, err := h.Run(3600, 10); !errors.Is(err, ErrNoMembers) {
		t.Errorf("empty hub: %v", err)
	}
	if err := h.Add(Member{Device: dev(t, "Apple Watch"), Distance: 0.4}); err == nil {
		t.Error("zero load accepted")
	}
	if err := h.Add(Member{Device: dev(t, "Apple Watch"), Distance: 9000, Load: 1}); err == nil {
		t.Error("out-of-range member accepted")
	}
	if err := h.Add(Member{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(0, 10); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := h.Run(10, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	if got := len(h.Members()); got != 1 {
		t.Errorf("members = %d", got)
	}
}

func TestMemberLifetime(t *testing.T) {
	h := bodyNetwork(t)
	res, err := h.Run(3600, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The fitness band's hourly radio bill is microscopic: its battery
	// funds years of hours.
	band := res.Members[0]
	if life := band.Lifetime(); life < 10000 {
		t.Errorf("band lifetime = %v horizons, want enormous", life)
	}
}

func BenchmarkHubHour(b *testing.B) {
	h := bodyNetwork(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Run(3600, 12); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHubQoSFloor: a member at 2 m with a rate floor gets a braid that
// sheds the slow 10 kbps backscatter slots.
func TestHubQoSFloor(t *testing.T) {
	h := New(dev(t, "iPhone 6S"), nil)
	if err := h.Add(Member{Device: dev(t, "Nike Fuel Band"), Distance: 2.0, Load: 50000, MinRate: 300000}); err != nil {
		t.Fatal(err)
	}
	res, err := h.Run(600, 4)
	if err != nil {
		t.Fatal(err)
	}
	mr := res.Members[0]
	if mr.Bits <= 0 {
		t.Fatal("no bits delivered under the floor")
	}
	if f := mr.ModeBits[phy.ModeBackscatter] / mr.Bits; f > 0.05 {
		t.Errorf("QoS member still used %v backscatter@10k", f)
	}
	// The same member without a floor leans on backscatter.
	h2 := New(dev(t, "iPhone 6S"), nil)
	if err := h2.Add(Member{Device: dev(t, "Nike Fuel Band"), Distance: 2.0, Load: 50000}); err != nil {
		t.Fatal(err)
	}
	res2, err := h2.Run(600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f := res2.Members[0].ModeBits[phy.ModeBackscatter] / res2.Members[0].Bits; f < 0.1 {
		t.Errorf("unconstrained member used only %v backscatter", f)
	}
}

// TestHubQuarantinesWanderingMember: a member that walks out of range
// mid-run is quarantined with a typed error after its strike budget,
// while the healthy members' deliveries match a run without it.
func TestHubQuarantinesWanderingMember(t *testing.T) {
	build := func(withWanderer bool) *Hub {
		h := New(dev(t, "iPhone 6S"), nil)
		for _, m := range []Member{
			{Device: dev(t, "Nike Fuel Band"), Distance: 0.4, Load: 1000},
			{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 5000},
		} {
			if err := h.Add(m); err != nil {
				t.Fatal(err)
			}
		}
		if withWanderer {
			err := h.Add(Member{
				Device:   dev(t, "Pivothead"),
				Distance: 0.6,
				Walk:     sim.LinearWalk{Start: 0.6, End: 2000, Duration: 1800},
				Load:     200000,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	const horizon = 3600
	res, err := build(true).Run(horizon, 12)
	if err != nil {
		t.Fatalf("a wandering member aborted the whole run: %v", err)
	}
	wanderer := res.Members[2]
	if !wanderer.Quarantined {
		t.Fatal("member at 2 km was never quarantined")
	}
	if !errors.Is(wanderer.Err, ErrMemberQuarantined) {
		t.Errorf("quarantine error %v does not wrap ErrMemberQuarantined", wanderer.Err)
	}
	if !errors.Is(wanderer.Err, core.ErrOutOfRange) {
		t.Errorf("quarantine error %v does not carry its out-of-range cause", wanderer.Err)
	}
	if res.Quarantines != 1 {
		t.Errorf("quarantines = %d, want 1", res.Quarantines)
	}
	if wanderer.Bits <= 0 {
		t.Error("wanderer delivered nothing while still in range")
	}

	// The healthy members must be unaffected (switch-overhead tolerance).
	ref, err := build(false).Run(horizon, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, want := res.Members[i], ref.Members[i]
		if got.Quarantined || got.Err != nil {
			t.Errorf("healthy member %s: quarantined=%v err=%v", got.Member.Device.Name, got.Quarantined, got.Err)
		}
		if want.Bits <= 0 {
			t.Fatalf("reference member %s delivered nothing", want.Member.Device.Name)
		}
		if diff := math.Abs(got.Bits-want.Bits) / want.Bits; diff > 0.01 {
			t.Errorf("%s: %v bits with wanderer vs %v without (%.2f%% off)",
				got.Member.Device.Name, got.Bits, want.Bits, 100*diff)
		}
	}
}

// TestHubMemberOutageRounds: a periodic carrier dropout costs the member
// its affected rounds — counted, not quarantined, because successful
// rounds in between reset the strike count.
func TestHubMemberOutageRounds(t *testing.T) {
	h := New(dev(t, "iPhone 6S"), nil)
	err := h.Add(Member{
		Device:   dev(t, "Apple Watch"),
		Distance: 0.4,
		Load:     5000,
		Faults:   &faults.Dropout{Start: 0, Period: 900, Duration: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 3600
	res, err := h.Run(horizon, 12) // 300 s rounds; outages hit rounds 0, 3, 6, 9
	if err != nil {
		t.Fatal(err)
	}
	mr := res.Members[0]
	if mr.OutageRounds != 4 || res.OutageRounds != 4 {
		t.Errorf("outage rounds = %d (total %d), want 4", mr.OutageRounds, res.OutageRounds)
	}
	if mr.Quarantined {
		t.Errorf("isolated outages quarantined the member: %v", mr.Err)
	}
	want := float64(mr.Member.Load) * horizon * 8 / 12
	if math.Abs(mr.Bits-want)/want > 0.01 {
		t.Errorf("bits = %v, want the 8 clean rounds' %v", mr.Bits, want)
	}
}

// TestHubBrownoutChargesMember: a TX-side brownout charges the member's
// battery for the harvesting shortfall while the hub's bill is unchanged.
func TestHubBrownoutChargesMember(t *testing.T) {
	run := func(inj faults.Injector) MemberResult {
		h := New(dev(t, "iPhone 6S"), nil)
		if err := h.Add(Member{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 5000, Faults: inj}); err != nil {
			t.Fatal(err)
		}
		res, err := h.Run(3600, 12)
		if err != nil {
			t.Fatal(err)
		}
		return res.Members[0]
	}
	base := run(nil)
	brown := run(&faults.Brownout{Duration: 1e9, Scale: 2, Affected: faults.SideTX})
	if ratio := float64(brown.MemberDrain / base.MemberDrain); ratio < 1.8 || ratio > 2.2 {
		t.Errorf("member drain ratio = %v under a 2× TX brownout, want ≈2", ratio)
	}
	if ratio := float64(brown.HubDrain / base.HubDrain); ratio < 0.95 || ratio > 1.05 {
		t.Errorf("hub drain ratio = %v under a TX-only brownout, want ≈1", ratio)
	}
	if math.Abs(brown.Bits-base.Bits)/base.Bits > 0.01 {
		t.Errorf("bits changed under brownout: %v vs %v", brown.Bits, base.Bits)
	}
}
