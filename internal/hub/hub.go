// Package hub extends Braidio's pairwise carrier offload to a star
// network: one energy-rich hub (a phone or laptop) serving several
// wearables, each over its own braided pair, with the hub's single
// battery shared across all of them.
//
// The paper evaluates pairs; the introduction's motivation — "a
// significant fraction of the energy cost of communication [can] be
// offloaded to the device that has more energy i.e. the mobile phone" —
// is inherently multi-device. The hub schedules its members round-robin
// (one radio, one link at a time), re-solving each member's offload
// allocation against the hub's *remaining* budget so that early traffic
// from one wearable is reflected in the braiding chosen for the others.
package hub

import (
	"errors"
	"fmt"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/linkcache"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Member is one wearable served by the hub.
type Member struct {
	// Device identifies the wearable.
	Device energy.Device
	// Distance from the hub.
	Distance units.Meter
	// Load is the member's offered traffic in payload bits per second
	// of wall-clock time.
	Load units.BitRate
	// MinRate, when positive, applies the QoS-constrained offload
	// (core.OptimizeQoS): the member's braid must sustain at least this
	// delivered throughput while its slot is active — a live stream's
	// floor.
	MinRate units.BitRate
}

// Hub is a star network under construction. Create with New, add
// members, then Run.
type Hub struct {
	device  energy.Device
	model   *phy.Model
	members []Member
}

// New creates a hub on the given device using the calibrated model when
// m is nil.
func New(device energy.Device, m *phy.Model) *Hub {
	if m == nil {
		m = phy.NewModel()
	}
	return &Hub{device: device, model: m}
}

// Add registers a member. It returns an error if no link mode reaches
// the member or the load is not positive.
func (h *Hub) Add(m Member) error {
	if m.Load <= 0 {
		return fmt.Errorf("hub: member %s has non-positive load", m.Device.Name)
	}
	if len(linkcache.Characterize(h.model, m.Distance)) == 0 {
		return fmt.Errorf("hub: member %s at %v m is out of range", m.Device.Name, float64(m.Distance))
	}
	h.members = append(h.members, m)
	return nil
}

// Members returns the registered members.
func (h *Hub) Members() []Member { return h.members }

// MemberResult is one member's share of a hub run.
type MemberResult struct {
	Member Member
	// Bits delivered from the member to the hub.
	Bits float64
	// MemberDrain and HubDrain are the energies each side spent on this
	// member's traffic.
	MemberDrain, HubDrain units.Joule
	// ModeBits attributes the member's bits to modes.
	ModeBits map[phy.Mode]float64
	// Starved reports that the member's battery died before the horizon.
	Starved bool
}

// Result is the outcome of a hub run.
type Result struct {
	// Horizon is the wall-clock span simulated.
	Horizon units.Second
	// HubDrain is the hub's total radio energy.
	HubDrain units.Joule
	// HubExhausted reports the hub battery died before the horizon.
	HubExhausted bool
	// Members holds per-member outcomes in registration order.
	Members []MemberResult
	// LPSolves and AllocReuses aggregate the braid engine's offload
	// solver counters across every member run: how many allocations were
	// actually solved versus served from the ratio-keyed memo.
	LPSolves, AllocReuses int
}

// TotalBits sums delivered bits across members.
func (r *Result) TotalBits() float64 {
	total := 0.0
	for _, m := range r.Members {
		total += m.Bits
	}
	return total
}

// ErrNoMembers reports an empty hub.
var ErrNoMembers = errors.New("hub: no members")

// Run simulates the star for a wall-clock horizon, delivering each
// member's offered load in rounds. Each round covers a slice of the
// horizon; within a round every member moves its offered bits through a
// braid whose allocation is re-solved against the member's and the
// hub's current remaining energy. Run stops early if the hub dies.
func (h *Hub) Run(horizon units.Second, rounds int) (*Result, error) {
	if len(h.members) == 0 {
		return nil, ErrNoMembers
	}
	if horizon <= 0 || rounds < 1 {
		return nil, fmt.Errorf("hub: invalid horizon %v / rounds %d", float64(horizon), rounds)
	}
	hubBatt := h.device.NewBattery()
	memberBatts := make([]*energy.Battery, len(h.members))
	for i, m := range h.members {
		memberBatts[i] = m.Device.NewBattery()
	}
	res := &Result{
		Horizon: horizon,
		Members: make([]MemberResult, len(h.members)),
	}
	for i, m := range h.members {
		res.Members[i] = MemberResult{Member: m, ModeBits: make(map[phy.Mode]float64)}
	}

	slice := horizon / units.Second(rounds)
	for round := 0; round < rounds && !hubBatt.Empty(); round++ {
		for i, m := range h.members {
			mr := &res.Members[i]
			if memberBatts[i].Empty() {
				mr.Starved = true
				continue
			}
			bits := float64(m.Load) * float64(slice)
			braid := core.NewBraid(h.model, m.Distance)
			braid.MaxBits = bits
			if m.MinRate > 0 {
				minRate := m.MinRate
				braid.Optimizer = func(links []phy.ModeLink, e1, e2 units.Joule) (*core.Allocation, error) {
					return core.OptimizeQoS(links, e1, e2, minRate)
				}
			}
			run, err := braid.Run(memberBatts[i], hubBatt)
			if err != nil {
				return nil, fmt.Errorf("hub: member %s: %w", m.Device.Name, err)
			}
			mr.Bits += run.Bits
			res.LPSolves += run.LPSolves
			res.AllocReuses += run.AllocReuses
			mr.MemberDrain += run.Drain1
			mr.HubDrain += run.Drain2
			res.HubDrain += run.Drain2
			for mode, b := range run.ModeBits {
				mr.ModeBits[mode] += b
			}
			if run.Bits < bits*0.999 {
				if memberBatts[i].Empty() {
					mr.Starved = true
				}
				if hubBatt.Empty() {
					break
				}
			}
		}
	}
	res.HubExhausted = hubBatt.Empty()
	return res, nil
}

// HubShare returns the fraction of the joint radio bill the hub paid
// for a member — the offload the star achieves.
func (r *MemberResult) HubShare() float64 {
	total := float64(r.MemberDrain + r.HubDrain)
	if total == 0 {
		return 0
	}
	return float64(r.HubDrain) / total
}

// Lifetime estimates how many horizons the member's battery funds at
// the observed drain rate (+Inf for a zero drain).
func (r *MemberResult) Lifetime() float64 {
	if r.MemberDrain <= 0 {
		return 0
	}
	return float64(r.Member.Device.Capacity.Joules()) / float64(r.MemberDrain)
}
