// Package hub extends Braidio's pairwise carrier offload to a star
// network: one energy-rich hub (a phone or laptop) serving several
// wearables, each over its own braided pair, with the hub's single
// battery shared across all of them.
//
// The paper evaluates pairs; the introduction's motivation — "a
// significant fraction of the energy cost of communication [can] be
// offloaded to the device that has more energy i.e. the mobile phone" —
// is inherently multi-device. The hub schedules its members round-robin
// (one radio, one link at a time), re-solving each member's offload
// allocation against the hub's *remaining* budget so that early traffic
// from one wearable is reflected in the braiding chosen for the others.
//
// Members are fault-isolated: a member whose link dies (it walked out of
// range, its carrier dropped, its QoS floor became infeasible) is
// quarantined after a bounded number of consecutive failed rounds —
// its MemberResult carries a typed error wrapping ErrMemberQuarantined
// and the cause — while the round-robin keeps serving healthy members.
// Pre-quarantine, one degraded member could sink the whole run.
//
// # Two-phase rounds
//
// Run is a deterministic parallel engine. Each round is two phases:
//
//  1. Plan: every eligible member solves and executes its braid against
//     an immutable snapshot of the hub's round-start energy and a copy
//     of its own battery, concurrently over the shared worker pool
//     (internal/par). Plans write only per-member scratch.
//  2. Commit: in registration order, each plan's drains are applied to
//     the real batteries, strikes/quarantines are charged, and totals
//     are accumulated. If earlier commits drained the hub below what a
//     later plan assumed, that member is re-solved against the true
//     remaining energies (counted in Result.Replans).
//
// Because plans touch only state owned by their member index and the
// commit order is fixed, the Result is bit-identical at any Workers
// count — the same discipline as modem.MonteCarloBERParallel. The one
// obligation on callers: a Member's Walk and Faults state must be
// private to that member (they are advanced once per round from
// whatever goroutine plans the member; sharing one stateful injector
// across members would race).
package hub

import (
	"errors"
	"fmt"
	"sync"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/linkcache"
	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// Member is one wearable served by the hub.
type Member struct {
	// Device identifies the wearable.
	Device energy.Device
	// Distance from the hub.
	Distance units.Meter
	// Walk, when non-nil, drives the member's distance from wall-clock
	// time (evaluated at each round's start), overriding Distance — a
	// member that wanders out of range mid-run fails its rounds and is
	// eventually quarantined.
	Walk sim.Walk
	// Faults, when non-nil, injects link faults into the member's
	// rounds: a carrier dropout window makes the round an outage, and
	// brownout drain scales are charged on top of the braid's nominal
	// energy (TX side = the member, RX side = the hub).
	Faults faults.Injector
	// Load is the member's offered traffic in payload bits per second
	// of wall-clock time.
	Load units.BitRate
	// MinRate, when positive, applies the QoS-constrained offload
	// (core.OptimizeQoS): the member's braid must sustain at least this
	// delivered throughput while its slot is active — a live stream's
	// floor.
	MinRate units.BitRate
}

// Hub is a star network under construction. Create with New, add
// members, then Run.
type Hub struct {
	// QuarantineStrikes is how many consecutive failed rounds (link
	// error, outage, infeasible QoS floor) a member survives before it
	// is quarantined for the rest of the run. Zero means the default of
	// three; a successful round resets the member's count.
	QuarantineStrikes int
	// Workers bounds the plan phase's concurrency: 0 selects
	// GOMAXPROCS, 1 plans sequentially on the calling goroutine. The
	// Result is bit-identical at any value — Workers trades only
	// wall-clock.
	Workers int
	// AllocationTolerance is propagated to every member braid (see
	// core.Braid.AllocationTolerance): the relative battery-ratio drift
	// tolerated before a member's allocation is re-solved. Zero keeps
	// the exact bit-identical memo; positive values trade precision for
	// fewer solver runs — the knob the serve daemon and large fleets
	// turn to keep epoch re-plans proportional to drift, not membership.
	AllocationTolerance float64
	// Obs, when non-nil, receives round/replan/quarantine counters and
	// is propagated to every member braid. Nil falls back to the process
	// default recorder (obs.Active). Canonical metric snapshots are
	// bit-identical at any Workers count; attaching a recorder never
	// changes a Result.
	Obs *obs.Recorder

	device  energy.Device
	model   *phy.Model
	view    *linkcache.View
	members []Member
}

// defaultQuarantineStrikes is the strike budget when the caller leaves
// QuarantineStrikes at zero.
const defaultQuarantineStrikes = 3

// New creates a hub on the given device using the calibrated model when
// m is nil.
func New(device energy.Device, m *phy.Model) *Hub {
	if m == nil {
		m = phy.NewModel()
	}
	return &Hub{device: device, model: m, view: linkcache.NewView(m)}
}

// Add registers a member. It returns an error if no link mode reaches
// the member or the load is not positive.
func (h *Hub) Add(m Member) error {
	if m.Load <= 0 {
		return fmt.Errorf("hub: member %s has non-positive load", m.Device.Name)
	}
	if len(h.view.Characterize(m.Distance)) == 0 {
		return fmt.Errorf("hub: member %s at %v m is out of range", m.Device.Name, float64(m.Distance))
	}
	h.members = append(h.members, m)
	return nil
}

// Members returns the registered members.
func (h *Hub) Members() []Member { return h.members }

// ErrMemberQuarantined reports that a member was removed from the
// round-robin after exhausting its strike budget. MemberResult.Err wraps
// it together with the final failure's cause, so both
// errors.Is(err, ErrMemberQuarantined) and errors.Is against the cause
// (e.g. core.ErrOutOfRange) hold.
var ErrMemberQuarantined = errors.New("hub: member quarantined")

// MemberResult is one member's share of a hub run.
type MemberResult struct {
	Member Member
	// Bits delivered from the member to the hub.
	Bits float64
	// MemberDrain and HubDrain are the energies each side spent on this
	// member's traffic.
	MemberDrain, HubDrain units.Joule
	// ModeBits attributes the member's bits to modes, indexed by
	// phy.Mode.
	ModeBits [phy.NumModes]float64
	// Starved reports that the member's battery died before the horizon.
	Starved bool
	// Quarantined reports the member was removed from the round-robin;
	// Err then wraps ErrMemberQuarantined and the final cause, and
	// QuarantinedRound records when.
	Quarantined      bool
	QuarantinedRound int
	// Err is the member's terminal failure, nil for a healthy member.
	Err error
	// OutageRounds counts rounds lost to injected carrier dropouts.
	OutageRounds int
}

// Result is the outcome of a hub run.
type Result struct {
	// Horizon is the wall-clock span simulated.
	Horizon units.Second
	// HubDrain is the hub's total radio energy.
	HubDrain units.Joule
	// HubExhausted reports the hub battery died before the horizon.
	HubExhausted bool
	// Members holds per-member outcomes in registration order.
	Members []MemberResult
	// Quarantines counts members removed from the round-robin.
	Quarantines int
	// OutageRounds totals rounds lost to injected outages across
	// members.
	OutageRounds int
	// LPSolves and AllocReuses aggregate the braid engine's offload
	// solver counters across every member run: how many allocations were
	// actually solved versus served from the ratio-keyed memo.
	LPSolves, AllocReuses int
	// HubDiedRound is the round during which the hub battery hit empty
	// (checked after every member commit), or -1 if it survived the
	// horizon. Members later in the commit order than the fatal drain
	// are not served for the rest of the run.
	HubDiedRound int
	// Replans counts commit-time re-solves: rounds where earlier
	// commits drained the hub below what a member's snapshot plan
	// assumed, so the member was re-run against the true remaining
	// energies. Nonzero only in the hub's dying rounds.
	Replans int
}

// TotalBits sums delivered bits across members.
func (r *Result) TotalBits() float64 {
	total := 0.0
	for _, m := range r.Members {
		total += m.Bits
	}
	return total
}

// ErrNoMembers reports an empty hub.
var ErrNoMembers = errors.New("hub: no members")

// strikeLimit returns the configured quarantine strike budget.
func (h *Hub) strikeLimit() int {
	if h.QuarantineStrikes > 0 {
		return h.QuarantineStrikes
	}
	return defaultQuarantineStrikes
}

// memberScratch is one member's slot in the pooled run scratch: its
// persistent braid (re-pointed at the round's distance and bit budget),
// the braid's allocation scratch and reusable result, the plan-phase
// battery copies, and the plan verdict the commit phase consumes.
type memberScratch struct {
	braid  core.Braid
	scr    core.RunScratch
	plan   core.Result
	planB1 energy.Battery // copy of the member battery
	planB2 energy.Battery // copy of the hub's round-start snapshot

	err              error
	outage           bool
	skipQuarantined  bool
	skipStarved      bool
	active           bool
	dist             units.Meter
	txScale, rxScale float64
}

// runScratch is the per-Run working set recycled through a sync.Pool so
// that repeated runs — a fleet shard simulating thousands of hub
// rounds — stop churning braids, schedule buffers, and result slots.
// batch is the round's shared column arena: one reset per round feeds
// the batched characterization instead of M per-member cache lookups.
type runScratch struct {
	members []memberScratch
	strikes []int
	batch   core.BatchScratch
}

// scratchPool recycles runScratch values across Run calls.
var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// acquireScratch returns a scratch sized for n members with every slot
// reset: stale allocation memos are invalidated so a run's results can
// never depend on what a recycled scratch last solved.
func acquireScratch(n int) *runScratch {
	s := scratchPool.Get().(*runScratch)
	if cap(s.members) < n {
		s.members = make([]memberScratch, n)
		s.strikes = make([]int, n)
	}
	s.members = s.members[:n]
	s.strikes = s.strikes[:n]
	for i := range s.members {
		ms := &s.members[i]
		ms.scr.Reset()
		ms.err = nil
		s.strikes[i] = 0
	}
	return s
}

// Run simulates the star for a wall-clock horizon, delivering each
// member's offered load in rounds. Each round plans every member's
// braid concurrently against the hub's round-start energy snapshot,
// then commits the drains in registration order (see the package
// comment for the two-phase determinism contract). Run stops early —
// mid-round, after the fatal commit — if the hub dies, recording the
// round in Result.HubDiedRound.
//
// Member failures do not abort the run: a round that errors (the member
// walked out of range, its QoS floor is infeasible, its carrier dropped)
// counts a strike, and a member that exhausts its strike budget is
// quarantined — recorded in its MemberResult — while the remaining
// members keep being served.
func (h *Hub) Run(horizon units.Second, rounds int) (*Result, error) {
	if len(h.members) == 0 {
		return nil, ErrNoMembers
	}
	if horizon <= 0 || rounds < 1 {
		return nil, fmt.Errorf("hub: invalid horizon %v / rounds %d", float64(horizon), rounds)
	}
	hubBatt := h.device.NewBattery()
	memberBatts := make([]*energy.Battery, len(h.members))
	for i, m := range h.members {
		memberBatts[i] = m.Device.NewBattery()
	}
	res := &Result{
		Horizon:      horizon,
		Members:      make([]MemberResult, len(h.members)),
		HubDiedRound: -1,
	}
	for i, m := range h.members {
		res.Members[i] = MemberResult{Member: m}
	}
	scr := acquireScratch(len(h.members))
	defer scratchPool.Put(scr)
	rec := obs.Active(h.Obs)
	for i, m := range h.members {
		ms := &scr.members[i]
		ms.braid = core.DefaultBraid(h.model, m.Distance)
		ms.braid.Obs = h.Obs
		ms.braid.AllocationTolerance = h.AllocationTolerance
		if m.MinRate > 0 {
			minRate := m.MinRate
			ms.braid.Optimizer = func(links []phy.ModeLink, e1, e2 units.Joule) (*core.Allocation, error) {
				return core.OptimizeQoS(links, e1, e2, minRate)
			}
		}
	}

	slice := horizon / units.Second(rounds)
	// The plan closure reads the round state through these variables so
	// par.For gets one closure for the whole run, not one per round.
	var (
		now     units.Second
		hubSnap energy.Battery
	)
	plan := func(i int) { h.planMember(i, scr, memberBatts, &hubSnap, slice) }

	for round := 0; round < rounds && !hubBatt.Empty(); round++ {
		now = units.Second(round) * slice
		hubSnap = *hubBatt
		if rec != nil {
			rec.HubRounds.Add(1)
			rec.BatchRounds.Add(1)
		}

		// Phase 0: advance each member's walk and fault state
		// sequentially (each injector is advanced exactly once per
		// round, same as the old in-plan advancement), decide round
		// eligibility, and collect the eligible distances into the
		// round arena.
		scr.batch.Reset(len(h.members))
		nb := 0
		for i := range h.members {
			ms := &scr.members[i]
			mr := &res.Members[i]
			m := &h.members[i]
			ms.err = nil
			ms.outage = false
			ms.active = false
			ms.braid.Links = nil
			ms.skipQuarantined = mr.Quarantined
			ms.skipStarved = !mr.Quarantined && memberBatts[i].Empty()
			ms.txScale, ms.rxScale = 1, 1
			if ms.skipQuarantined || ms.skipStarved {
				continue
			}
			d := m.Distance
			if m.Walk != nil {
				d = m.Walk.DistanceAt(now)
			}
			if m.Faults != nil {
				var env faults.Env
				env.Reset(now, phy.ModeActive, units.Rate1M, 0)
				m.Faults.Impair(&env)
				if env.CarrierLost {
					ms.outage = true
					continue
				}
				ms.txScale, ms.rxScale = env.TXDrain, env.RXDrain
			}
			ms.dist = d
			ms.active = true
			scr.batch.Dists[nb] = d
			scr.batch.Idx[nb] = i
			nb++
		}
		// Batched link characterization: one striped pass fills every
		// eligible member's canonical link slice (the same shared
		// slices linkcache.Characterize returns, so the braids'
		// allocation memos keep their slice-identity semantics).
		h.view.CharacterizeBatch(h.Workers, scr.batch.Dists[:nb], scr.batch.Links[:nb])
		for r := 0; r < nb; r++ {
			scr.members[scr.batch.Idx[r]].braid.Links = scr.batch.Links[r]
		}

		// Phase 1: plan all members against the immutable snapshot.
		par.For(h.Workers, len(h.members), plan)

		// Phase 2: commit in registration order.
		for i := range h.members {
			ms := &scr.members[i]
			mr := &res.Members[i]
			m := &h.members[i]
			if ms.skipQuarantined {
				continue
			}
			if ms.skipStarved {
				mr.Starved = true
				continue
			}
			if ms.outage {
				mr.OutageRounds++
				res.OutageRounds++
				if rec != nil {
					rec.OutageRounds.Add(1)
					rec.Trace(obs.Event{Kind: obs.EvOutage, Round: round, Member: i, Time: float64(now)})
				}
				h.strikeMember(mr, &scr.strikes[i], round, i, rec, now,
					fmt.Errorf("hub: member %s: carrier lost at t=%vs", m.Device.Name, float64(now)), res)
				continue
			}
			if ms.err == nil {
				run := &ms.plan
				hubNeed := run.Drain2
				if ms.rxScale > 1 {
					hubNeed += run.Drain2 * units.Joule(ms.rxScale-1)
				}
				if hubBatt.Remaining() < hubNeed {
					// Earlier commits this round drained the hub below
					// what the snapshot promised: re-solve against the
					// true remaining energies. RunInto drains the real
					// batteries directly in this path.
					res.Replans++
					if rec != nil {
						rec.Replans.Add(1)
						rec.Trace(obs.Event{Kind: obs.EvReplan, Round: round, Member: i, Time: float64(now)})
					}
					ms.err = ms.braid.RunInto(&ms.plan, &ms.scr, memberBatts[i], hubBatt)
				} else {
					memberBatts[i].Drain(run.Drain1)
					hubBatt.Drain(run.Drain2)
				}
			}
			if ms.err != nil {
				h.strikeMember(mr, &scr.strikes[i], round, i, rec, now,
					fmt.Errorf("hub: member %s: %w", m.Device.Name, ms.err), res)
				continue
			}
			run := &ms.plan
			scr.strikes[i] = 0
			if rec != nil {
				rec.MemberRounds.Add(1)
			}
			mr.Bits += run.Bits
			res.LPSolves += run.LPSolves
			res.AllocReuses += run.AllocReuses
			mr.MemberDrain += run.Drain1
			mr.HubDrain += run.Drain2
			res.HubDrain += run.Drain2
			if ms.txScale > 1 {
				extra := run.Drain1 * units.Joule(ms.txScale-1)
				memberBatts[i].Drain(extra)
				mr.MemberDrain += extra
			}
			if ms.rxScale > 1 {
				extra := run.Drain2 * units.Joule(ms.rxScale-1)
				hubBatt.Drain(extra)
				mr.HubDrain += extra
				res.HubDrain += extra
			}
			for mode, b := range run.ModeBits {
				mr.ModeBits[mode] += b
			}
			bits := float64(m.Load) * float64(slice)
			if run.Bits < bits*0.999 && memberBatts[i].Empty() {
				mr.Starved = true
			}
			// Hub-death accounting: checked after *every* commit, not
			// only on under-delivery — a dead hub must not keep serving
			// the rest of the round.
			if hubBatt.Empty() {
				if res.HubDiedRound < 0 {
					res.HubDiedRound = round
					if rec != nil {
						rec.HubDeaths.Add(1)
						rec.Trace(obs.Event{Kind: obs.EvHubDeath, Round: round, Member: -1, Time: float64(now)})
					}
				}
				break
			}
		}
	}
	res.HubExhausted = hubBatt.Empty()
	return res, nil
}

// planMember runs one member's plan phase: solve and execute its braid
// — links preset by the round's batched characterization — against a
// copy of its battery and the hub's round-start snapshot. Eligibility,
// walks, and fault state were already decided in the sequential
// phase 0, so this writes only to the member's scratch slot (and reads
// only member-owned state), which is what makes the phase safe and
// deterministic under par.For at any worker count.
func (h *Hub) planMember(i int, scr *runScratch, memberBatts []*energy.Battery,
	hubSnap *energy.Battery, slice units.Second) {
	ms := &scr.members[i]
	m := &h.members[i]
	if !ms.active {
		return
	}
	ms.braid.Distance = ms.dist
	ms.braid.MaxBits = float64(m.Load) * float64(slice)
	ms.planB1 = *memberBatts[i]
	ms.planB2 = *hubSnap
	ms.err = ms.braid.RunInto(&ms.plan, &ms.scr, &ms.planB1, &ms.planB2)
}

// strikeMember records one failed round for a member and quarantines it
// once the strike budget is exhausted, wrapping ErrMemberQuarantined
// around the final cause. member and now feed the quarantine trace
// event; rec may be nil.
func (h *Hub) strikeMember(mr *MemberResult, strikes *int, round, member int, rec *obs.Recorder,
	now units.Second, cause error, res *Result) {
	*strikes++
	if *strikes < h.strikeLimit() {
		return
	}
	mr.Quarantined = true
	mr.QuarantinedRound = round
	mr.Err = fmt.Errorf("%w after %d consecutive failed rounds: %w", ErrMemberQuarantined, *strikes, cause)
	res.Quarantines++
	if rec != nil {
		rec.Quarantines.Add(1)
		rec.Trace(obs.Event{Kind: obs.EvQuarantine, Round: round, Member: member, Time: float64(now)})
	}
}

// HubShare returns the fraction of the joint radio bill the hub paid
// for a member — the offload the star achieves.
func (r *MemberResult) HubShare() float64 {
	total := float64(r.MemberDrain + r.HubDrain)
	if total == 0 {
		return 0
	}
	return float64(r.HubDrain) / total
}

// Lifetime estimates how many horizons the member's battery funds at
// the observed drain rate (+Inf for a zero drain).
func (r *MemberResult) Lifetime() float64 {
	if r.MemberDrain <= 0 {
		return 0
	}
	return float64(r.Member.Device.Capacity.Joules()) / float64(r.MemberDrain)
}
