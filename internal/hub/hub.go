// Package hub extends Braidio's pairwise carrier offload to a star
// network: one energy-rich hub (a phone or laptop) serving several
// wearables, each over its own braided pair, with the hub's single
// battery shared across all of them.
//
// The paper evaluates pairs; the introduction's motivation — "a
// significant fraction of the energy cost of communication [can] be
// offloaded to the device that has more energy i.e. the mobile phone" —
// is inherently multi-device. The hub schedules its members round-robin
// (one radio, one link at a time), re-solving each member's offload
// allocation against the hub's *remaining* budget so that early traffic
// from one wearable is reflected in the braiding chosen for the others.
//
// Members are fault-isolated: a member whose link dies (it walked out of
// range, its carrier dropped, its QoS floor became infeasible) is
// quarantined after a bounded number of consecutive failed rounds —
// its MemberResult carries a typed error wrapping ErrMemberQuarantined
// and the cause — while the round-robin keeps serving healthy members.
// Pre-quarantine, one degraded member could sink the whole run.
package hub

import (
	"errors"
	"fmt"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/linkcache"
	"braidio/internal/phy"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// Member is one wearable served by the hub.
type Member struct {
	// Device identifies the wearable.
	Device energy.Device
	// Distance from the hub.
	Distance units.Meter
	// Walk, when non-nil, drives the member's distance from wall-clock
	// time (evaluated at each round's start), overriding Distance — a
	// member that wanders out of range mid-run fails its rounds and is
	// eventually quarantined.
	Walk sim.Walk
	// Faults, when non-nil, injects link faults into the member's
	// rounds: a carrier dropout window makes the round an outage, and
	// brownout drain scales are charged on top of the braid's nominal
	// energy (TX side = the member, RX side = the hub).
	Faults faults.Injector
	// Load is the member's offered traffic in payload bits per second
	// of wall-clock time.
	Load units.BitRate
	// MinRate, when positive, applies the QoS-constrained offload
	// (core.OptimizeQoS): the member's braid must sustain at least this
	// delivered throughput while its slot is active — a live stream's
	// floor.
	MinRate units.BitRate
}

// Hub is a star network under construction. Create with New, add
// members, then Run.
type Hub struct {
	// QuarantineStrikes is how many consecutive failed rounds (link
	// error, outage, infeasible QoS floor) a member survives before it
	// is quarantined for the rest of the run. Zero means the default of
	// three; a successful round resets the member's count.
	QuarantineStrikes int

	device  energy.Device
	model   *phy.Model
	members []Member
}

// defaultQuarantineStrikes is the strike budget when the caller leaves
// QuarantineStrikes at zero.
const defaultQuarantineStrikes = 3

// New creates a hub on the given device using the calibrated model when
// m is nil.
func New(device energy.Device, m *phy.Model) *Hub {
	if m == nil {
		m = phy.NewModel()
	}
	return &Hub{device: device, model: m}
}

// Add registers a member. It returns an error if no link mode reaches
// the member or the load is not positive.
func (h *Hub) Add(m Member) error {
	if m.Load <= 0 {
		return fmt.Errorf("hub: member %s has non-positive load", m.Device.Name)
	}
	if len(linkcache.Characterize(h.model, m.Distance)) == 0 {
		return fmt.Errorf("hub: member %s at %v m is out of range", m.Device.Name, float64(m.Distance))
	}
	h.members = append(h.members, m)
	return nil
}

// Members returns the registered members.
func (h *Hub) Members() []Member { return h.members }

// ErrMemberQuarantined reports that a member was removed from the
// round-robin after exhausting its strike budget. MemberResult.Err wraps
// it together with the final failure's cause, so both
// errors.Is(err, ErrMemberQuarantined) and errors.Is against the cause
// (e.g. core.ErrOutOfRange) hold.
var ErrMemberQuarantined = errors.New("hub: member quarantined")

// MemberResult is one member's share of a hub run.
type MemberResult struct {
	Member Member
	// Bits delivered from the member to the hub.
	Bits float64
	// MemberDrain and HubDrain are the energies each side spent on this
	// member's traffic.
	MemberDrain, HubDrain units.Joule
	// ModeBits attributes the member's bits to modes.
	ModeBits map[phy.Mode]float64
	// Starved reports that the member's battery died before the horizon.
	Starved bool
	// Quarantined reports the member was removed from the round-robin;
	// Err then wraps ErrMemberQuarantined and the final cause, and
	// QuarantinedRound records when.
	Quarantined      bool
	QuarantinedRound int
	// Err is the member's terminal failure, nil for a healthy member.
	Err error
	// OutageRounds counts rounds lost to injected carrier dropouts.
	OutageRounds int
}

// Result is the outcome of a hub run.
type Result struct {
	// Horizon is the wall-clock span simulated.
	Horizon units.Second
	// HubDrain is the hub's total radio energy.
	HubDrain units.Joule
	// HubExhausted reports the hub battery died before the horizon.
	HubExhausted bool
	// Members holds per-member outcomes in registration order.
	Members []MemberResult
	// Quarantines counts members removed from the round-robin.
	Quarantines int
	// OutageRounds totals rounds lost to injected outages across
	// members.
	OutageRounds int
	// LPSolves and AllocReuses aggregate the braid engine's offload
	// solver counters across every member run: how many allocations were
	// actually solved versus served from the ratio-keyed memo.
	LPSolves, AllocReuses int
}

// TotalBits sums delivered bits across members.
func (r *Result) TotalBits() float64 {
	total := 0.0
	for _, m := range r.Members {
		total += m.Bits
	}
	return total
}

// ErrNoMembers reports an empty hub.
var ErrNoMembers = errors.New("hub: no members")

// strikeLimit returns the configured quarantine strike budget.
func (h *Hub) strikeLimit() int {
	if h.QuarantineStrikes > 0 {
		return h.QuarantineStrikes
	}
	return defaultQuarantineStrikes
}

// Run simulates the star for a wall-clock horizon, delivering each
// member's offered load in rounds. Each round covers a slice of the
// horizon; within a round every member moves its offered bits through a
// braid whose allocation is re-solved against the member's and the
// hub's current remaining energy. Run stops early if the hub dies.
//
// Member failures do not abort the run: a round that errors (the member
// walked out of range, its QoS floor is infeasible, its carrier dropped)
// counts a strike, and a member that exhausts its strike budget is
// quarantined — recorded in its MemberResult — while the remaining
// members keep being served.
func (h *Hub) Run(horizon units.Second, rounds int) (*Result, error) {
	if len(h.members) == 0 {
		return nil, ErrNoMembers
	}
	if horizon <= 0 || rounds < 1 {
		return nil, fmt.Errorf("hub: invalid horizon %v / rounds %d", float64(horizon), rounds)
	}
	hubBatt := h.device.NewBattery()
	memberBatts := make([]*energy.Battery, len(h.members))
	for i, m := range h.members {
		memberBatts[i] = m.Device.NewBattery()
	}
	res := &Result{
		Horizon: horizon,
		Members: make([]MemberResult, len(h.members)),
	}
	for i, m := range h.members {
		res.Members[i] = MemberResult{Member: m, ModeBits: make(map[phy.Mode]float64)}
	}
	strikes := make([]int, len(h.members))

	slice := horizon / units.Second(rounds)
	for round := 0; round < rounds && !hubBatt.Empty(); round++ {
		now := units.Second(round) * slice
		for i, m := range h.members {
			mr := &res.Members[i]
			if mr.Quarantined {
				continue
			}
			if memberBatts[i].Empty() {
				mr.Starved = true
				continue
			}
			d := m.Distance
			if m.Walk != nil {
				d = m.Walk.DistanceAt(now)
			}
			txScale, rxScale := 1.0, 1.0
			if m.Faults != nil {
				var env faults.Env
				env.Reset(now, phy.ModeActive, units.Rate1M, 0)
				m.Faults.Impair(&env)
				if env.CarrierLost {
					mr.OutageRounds++
					res.OutageRounds++
					h.strikeMember(mr, &strikes[i], round,
						fmt.Errorf("hub: member %s: carrier lost at t=%vs", m.Device.Name, float64(now)), res)
					continue
				}
				txScale, rxScale = env.TXDrain, env.RXDrain
			}
			bits := float64(m.Load) * float64(slice)
			braid := core.NewBraid(h.model, d)
			braid.MaxBits = bits
			if m.MinRate > 0 {
				minRate := m.MinRate
				braid.Optimizer = func(links []phy.ModeLink, e1, e2 units.Joule) (*core.Allocation, error) {
					return core.OptimizeQoS(links, e1, e2, minRate)
				}
			}
			run, err := braid.Run(memberBatts[i], hubBatt)
			if err != nil {
				h.strikeMember(mr, &strikes[i], round,
					fmt.Errorf("hub: member %s: %w", m.Device.Name, err), res)
				continue
			}
			strikes[i] = 0
			mr.Bits += run.Bits
			res.LPSolves += run.LPSolves
			res.AllocReuses += run.AllocReuses
			mr.MemberDrain += run.Drain1
			mr.HubDrain += run.Drain2
			res.HubDrain += run.Drain2
			if txScale > 1 {
				extra := run.Drain1 * units.Joule(txScale-1)
				memberBatts[i].Drain(extra)
				mr.MemberDrain += extra
			}
			if rxScale > 1 {
				extra := run.Drain2 * units.Joule(rxScale-1)
				hubBatt.Drain(extra)
				mr.HubDrain += extra
				res.HubDrain += extra
			}
			for mode, b := range run.ModeBits {
				mr.ModeBits[mode] += b
			}
			if run.Bits < bits*0.999 {
				if memberBatts[i].Empty() {
					mr.Starved = true
				}
				if hubBatt.Empty() {
					break
				}
			}
		}
	}
	res.HubExhausted = hubBatt.Empty()
	return res, nil
}

// strikeMember records one failed round for a member and quarantines it
// once the strike budget is exhausted, wrapping ErrMemberQuarantined
// around the final cause.
func (h *Hub) strikeMember(mr *MemberResult, strikes *int, round int, cause error, res *Result) {
	*strikes++
	if *strikes < h.strikeLimit() {
		return
	}
	mr.Quarantined = true
	mr.QuarantinedRound = round
	mr.Err = fmt.Errorf("%w after %d consecutive failed rounds: %w", ErrMemberQuarantined, *strikes, cause)
	res.Quarantines++
}

// HubShare returns the fraction of the joint radio bill the hub paid
// for a member — the offload the star achieves.
func (r *MemberResult) HubShare() float64 {
	total := float64(r.MemberDrain + r.HubDrain)
	if total == 0 {
		return 0
	}
	return float64(r.HubDrain) / total
}

// Lifetime estimates how many horizons the member's battery funds at
// the observed drain rate (+Inf for a zero drain).
func (r *MemberResult) Lifetime() float64 {
	if r.MemberDrain <= 0 {
		return 0
	}
	return float64(r.Member.Device.Capacity.Joules()) / float64(r.MemberDrain)
}
