package hub

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"braidio/internal/rng"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// testBuilder builds a shard hub with member count, distances, loads,
// walks, and fault seeds all drawn from the shard's stream — the
// randomized-population shape braidio-sim's -fleet mode uses.
func testBuilder(t testing.TB, members int) Builder {
	t.Helper()
	return func(shard int, stream *rng.Stream) (*Hub, error) {
		h := New(dev(t, "iPhone 6S"), nil)
		for j := 0; j < members; j++ {
			m := Member{
				Device:   dev(t, "Apple Watch"),
				Distance: units.Meter(0.3 + 1.5*stream.Float64()),
				Load:     units.BitRate(1000 + stream.Intn(50000)),
			}
			if stream.Bool() {
				m.Walk = sim.NewRandomWaypoint(0.2, 2.0, 0.4, 20, stream.Split())
			}
			if err := h.Add(m); err != nil {
				return nil, err
			}
		}
		return h, nil
	}
}

// runFleetAt runs a fixed fleet configuration at the given worker count.
func runFleetAt(t *testing.T, workers int) *FleetResult {
	t.Helper()
	f := &Fleet{Shards: 6, Workers: workers, Seed: 42, Build: testBuilder(t, 4)}
	res, err := f.Run(1800, 6)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// TestFleetBitIdenticalAcrossWorkers: a fleet run is bit-identical at
// any worker count — per-shard substreams plus shard-order merge, the
// same contract the two-phase hub engine gives one level down.
func TestFleetBitIdenticalAcrossWorkers(t *testing.T) {
	ref := runFleetAt(t, 1)
	if ref.TotalBits() <= 0 {
		t.Fatal("reference fleet delivered nothing; test is vacuous")
	}
	refNorms := make([]*Result, len(ref.Shards))
	for i, r := range ref.Shards {
		n, _ := normalize(r)
		refNorms[i] = n
	}
	for _, workers := range []int{2, 8} {
		got := runFleetAt(t, workers)
		for i, r := range got.Shards {
			n, _ := normalize(r)
			if !reflect.DeepEqual(refNorms[i], n) {
				t.Errorf("workers=%d shard %d diverged:\n got %+v\nwant %+v", workers, i, n, refNorms[i])
			}
		}
	}
}

// TestFleetSeedDecorrelation: distinct shards draw distinct member
// populations (substreams actually decorrelate), while the same seed
// reproduces the same fleet.
func TestFleetSeedDecorrelation(t *testing.T) {
	res := runFleetAt(t, 1)
	if res.Shards[0].TotalBits() == res.Shards[1].TotalBits() {
		t.Error("shards 0 and 1 delivered identical bits; substreams look correlated")
	}
	again := runFleetAt(t, 4)
	if res.TotalBits() != again.TotalBits() {
		t.Errorf("same seed, different fleets: %v vs %v bits", res.TotalBits(), again.TotalBits())
	}
}

// TestFleetShardErrorIsolated: one shard failing to build leaves a nil
// slot and a joined error, not an aborted fleet.
func TestFleetShardErrorIsolated(t *testing.T) {
	boom := errors.New("boom")
	inner := testBuilder(t, 2)
	f := &Fleet{
		Shards: 4, Workers: 2, Seed: 7,
		Build: func(shard int, stream *rng.Stream) (*Hub, error) {
			if shard == 2 {
				return nil, boom
			}
			return inner(shard, stream)
		},
	}
	res, err := f.Run(600, 3)
	if !errors.Is(err, boom) {
		t.Fatalf("joined error %v does not wrap the shard failure", err)
	}
	if res.Shards[2] != nil {
		t.Error("failed shard left a non-nil result")
	}
	healthy := 0
	for i, r := range res.Shards {
		if i != 2 && r != nil {
			healthy++
		}
	}
	if healthy != 3 {
		t.Errorf("%d healthy shards survived, want 3", healthy)
	}
}

// TestFleetValidation covers the config errors.
func TestFleetValidation(t *testing.T) {
	if _, err := (&Fleet{Shards: 0, Build: testBuilder(t, 1)}).Run(600, 3); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := (&Fleet{Shards: 1}).Run(600, 3); err == nil {
		t.Error("nil builder accepted")
	}
}

// TestRunFleetConvenience: the one-call form matches an explicit Fleet.
func TestRunFleetConvenience(t *testing.T) {
	a, err := RunFleet(3, 11, testBuilder(t, 2), 900, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Fleet{Shards: 3, Seed: 11, Build: testBuilder(t, 2)}).Run(900, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalBits() != b.TotalBits() {
		t.Errorf("RunFleet diverged from Fleet.Run: %v vs %v bits", a.TotalBits(), b.TotalBits())
	}
}

// TestFleetRaceSmoke exists for -race runs: many shards over many
// workers, stateful walks included, exercising the sharded link cache
// and the scratch pool concurrently.
func TestFleetRaceSmoke(t *testing.T) {
	f := &Fleet{Shards: 12, Workers: 8, Seed: 5, Build: testBuilder(t, 3)}
	res, err := f.Run(900, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBits() <= 0 {
		t.Fatal("race-smoke fleet delivered nothing")
	}
	if lp, _ := res.Solves(); lp <= 0 {
		t.Error("fleet reported zero LP solves")
	}
}

// BenchmarkFleetHour is the batched-solver headline workload: 8 hubs ×
// 8 members × a simulated hour, every member on a random-waypoint walk
// so distances drift each round — consecutive plans stay structurally
// close, exactly the regime the warm-started columnar solver targets.
// make bench diffs this against the committed baseline.
func BenchmarkFleetHour(b *testing.B) {
	build := func(shard int, stream *rng.Stream) (*Hub, error) {
		h := New(dev(b, "iPhone 6S"), nil)
		for j := 0; j < 8; j++ {
			m := Member{
				Device:   dev(b, "Apple Watch"),
				Distance: units.Meter(0.3 + 1.5*stream.Float64()),
				Load:     units.BitRate(1000 + stream.Intn(50000)),
				Walk:     sim.NewRandomWaypoint(0.2, 2.0, 0.4, 20, stream.Split()),
			}
			if err := h.Add(m); err != nil {
				return nil, err
			}
		}
		return h, nil
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f := &Fleet{Shards: 8, Workers: workers, Seed: 42, Build: build}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.Run(3600, 12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleet measures the fleet engine end to end: 8 shards × 4
// members × a simulated hour. make bench diffs this against the
// committed baseline.
func BenchmarkFleet(b *testing.B) {
	build := testBuilder(b, 4)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f := &Fleet{Shards: 8, Workers: workers, Seed: 42, Build: build}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.Run(3600, 12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
