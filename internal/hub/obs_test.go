package hub

import (
	"reflect"
	"testing"

	"braidio/internal/obs"
	"braidio/internal/units"
)

// runMixedWithMetrics runs the mixed-population hub (static members,
// walkers, fault injectors, a QoS floor) at a worker count with a fresh
// recorder and returns the canonical snapshot.
func runMixedWithMetrics(t *testing.T, workers int) obs.Snapshot {
	t.Helper()
	rec := obs.NewRecorder()
	h := buildMixedHub(t, workers)
	h.Obs = rec
	if _, err := h.Run(3600, 24); err != nil {
		t.Fatal(err)
	}
	return rec.Snapshot().Canonical()
}

// TestHubMetricsIdenticalAcrossWorkers pins the observability layer's
// determinism contract one level above the Result guarantee: the
// *metrics* a run records — including the concurrently-recorded braid
// series from the plan phase — must be bit-identical at any worker
// count once the canonical projection drops the wall-clock and
// process-global sections.
func TestHubMetricsIdenticalAcrossWorkers(t *testing.T) {
	ref := runMixedWithMetrics(t, 1)
	for _, workers := range []int{2, 8} {
		got := runMixedWithMetrics(t, workers)
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("canonical metrics diverge between Workers=1 and Workers=%d:\nref: %+v\ngot: %+v",
				workers, ref, got)
		}
	}
}

// TestHubMetricsGolden pins the canonical snapshot of the deterministic
// body-network run to exact values. RawBits is the fixed-point
// accumulator verbatim, so any engine or quantization change shows up
// as a bit-level diff here. Regenerate by running with -v and copying
// the logged values after an intentional engine change.
func TestHubMetricsGolden(t *testing.T) {
	rec := obs.NewRecorder()
	h := bodyNetwork(t)
	h.Workers = 1
	h.Obs = rec
	if _, err := h.Run(3600, 12); err != nil {
		t.Fatal(err)
	}
	s := rec.Snapshot().Canonical()
	t.Logf("golden: HubRounds=%d MemberRounds=%d BraidRuns=%d Epochs=%d LPSolves=%d AllocReuses=%d RawBits=%d EnergyPerBitCount=%d",
		s.HubRounds, s.MemberRounds, s.BraidRuns, s.Epochs, s.LPSolves, s.AllocReuses, s.RawBits, s.EnergyPerBit.Count)
	golden := map[string][2]uint64{
		"HubRounds":    {s.HubRounds, 12},
		"MemberRounds": {s.MemberRounds, 36},
		"BraidRuns":    {s.BraidRuns, 36},
		"Epochs":       {s.Epochs, 72},
		"LPSolves":     {s.LPSolves, 72},
		"AllocReuses":  {s.AllocReuses, 0},
		"Replans":      {s.Replans, 0},
		"Quarantines":  {s.Quarantines, 0},
		"HubDeaths":    {s.HubDeaths, 0},
		"RawBits":      {s.RawBits, 189849600000},
		"EPBCount":     {s.EnergyPerBit.Count, 36},
	}
	for name, v := range golden {
		if v[0] != v[1] {
			t.Errorf("%s = %d, want %d", name, v[0], v[1])
		}
	}
}

// TestHubResultUnchangedByRecorder proves attaching a recorder is
// strictly observational: the Result with metrics on is structurally
// identical to the uninstrumented run.
func TestHubResultUnchangedByRecorder(t *testing.T) {
	plain := buildMixedHub(t, 2)
	bare, err := plain.Run(3600, 24)
	if err != nil {
		t.Fatal(err)
	}
	instr := buildMixedHub(t, 2)
	instr.Obs = obs.NewRecorder()
	instr.Obs.Tracer = obs.NewTracer(256)
	withRec, err := instr.Run(3600, 24)
	if err != nil {
		t.Fatal(err)
	}
	aN, aE := normalize(bare)
	bN, bE := normalize(withRec)
	if !reflect.DeepEqual(aN, bN) || !reflect.DeepEqual(aE, bE) {
		t.Errorf("attaching a recorder changed the Result:\nbare: %+v\nwith: %+v", aN, bN)
	}
}

// TestFleetMetricsIdenticalAcrossWorkers extends the guarantee to the
// fleet: shards recording concurrently into one shared recorder still
// snapshot canonically identical at any worker count.
func TestFleetMetricsIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) obs.Snapshot {
		rec := obs.NewRecorder()
		f := &Fleet{Shards: 6, Workers: workers, Seed: 99, Obs: rec, Build: testBuilder(t, 3)}
		if _, err := f.Run(1800, 8); err != nil {
			t.Fatal(err)
		}
		return rec.Snapshot().Canonical()
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(ref, got) {
			t.Errorf("fleet canonical metrics diverge between Workers=1 and Workers=%d", workers)
		}
	}
}

// TestHubTraceEvents checks quarantine and outage events reach the
// tracer with member attribution from the mixed population's dropout
// member.
func TestHubTraceEvents(t *testing.T) {
	rec := obs.NewRecorder()
	rec.Tracer = obs.NewTracer(512)
	h := buildMixedHub(t, 1)
	h.Obs = rec
	res, err := h.Run(3600, 24)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[obs.EventKind]int{}
	for _, ev := range rec.Tracer.Events() {
		kinds[ev.Kind]++
		if ev.Kind == obs.EvQuarantine && (ev.Member < 0 || ev.Member >= len(res.Members)) {
			t.Errorf("quarantine event has bad member index %d", ev.Member)
		}
	}
	if res.OutageRounds > 0 && kinds[obs.EvOutage] != res.OutageRounds {
		t.Errorf("traced %d outages, Result has %d", kinds[obs.EvOutage], res.OutageRounds)
	}
	if res.Quarantines > 0 && kinds[obs.EvQuarantine] != res.Quarantines {
		t.Errorf("traced %d quarantines, Result has %d", kinds[obs.EvQuarantine], res.Quarantines)
	}
	if s := rec.Snapshot(); s.Quarantines != uint64(res.Quarantines) || s.OutageRounds != uint64(res.OutageRounds) {
		t.Errorf("snapshot counters (%d quarantines, %d outages) disagree with Result (%d, %d)",
			s.Quarantines, s.OutageRounds, res.Quarantines, res.OutageRounds)
	}
}

// BenchmarkHubHourMetrics is BenchmarkHubHour with a recorder attached —
// the pair quantifies the instrumentation overhead DESIGN.md §10 quotes.
func BenchmarkHubHourMetrics(b *testing.B) {
	h := bodyNetwork(b)
	h.Obs = obs.NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Run(units.Second(3600), 12); err != nil {
			b.Fatal(err)
		}
	}
}
