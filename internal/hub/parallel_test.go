package hub

import (
	"reflect"
	"testing"

	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/rng"
	"braidio/internal/sim"
)

// buildMixedHub assembles a hub exercising every planning path at once:
// static members, a deterministic wanderer, a random-waypoint walker
// with its own rng stream, dropout and Gilbert-Elliott fault injectors,
// and a QoS-floored member. Walk and Faults state is stateful, so the
// hub is rebuilt from scratch for every run.
func buildMixedHub(t testing.TB, workers int) *Hub {
	t.Helper()
	h := New(dev(t, "iPhone 6S"), nil)
	h.Workers = workers
	members := []Member{
		{Device: dev(t, "Nike Fuel Band"), Distance: 0.4, Load: 1000},
		{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 5000},
		{Device: dev(t, "Pivothead"), Distance: 0.6, Load: 200000},
		{
			Device:   dev(t, "Apple Watch"),
			Distance: 0.6,
			Walk:     sim.LinearWalk{Start: 0.6, End: 2000, Duration: 1800},
			Load:     100000,
		},
		{
			Device:   dev(t, "Nike Fuel Band"),
			Distance: 0.5,
			Walk:     sim.NewRandomWaypoint(0.2, 2.5, 0.5, 30, rng.New(77)),
			Load:     20000,
		},
		{
			Device:   dev(t, "Apple Watch"),
			Distance: 0.4,
			Load:     5000,
			Faults:   &faults.Dropout{Start: 0, Period: 900, Duration: 300},
		},
		{
			Device:   dev(t, "Apple Watch"),
			Distance: 0.5,
			Load:     4000,
			Faults:   faults.NewGilbertElliott(0.2, 0.5, 0, 0.4, 99),
		},
		{Device: dev(t, "Nike Fuel Band"), Distance: 2.0, Load: 50000, MinRate: 300000},
	}
	for _, m := range members {
		if err := h.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// normalize strips the fields that cannot be compared structurally
// across independently built hubs: the embedded Member (its Walk/Faults
// pointers differ per build) and the error values (compared as
// strings). Everything else — every float, counter, and mode-bit map —
// must match to the bit.
func normalize(r *Result) (*Result, []string) {
	cp := *r
	cp.Members = make([]MemberResult, len(r.Members))
	errs := make([]string, len(r.Members))
	for i, m := range r.Members {
		cp.Members[i] = m
		cp.Members[i].Member = Member{}
		cp.Members[i].Err = nil
		if m.Err != nil {
			errs[i] = m.Err.Error()
		}
	}
	return &cp, errs
}

// TestHubRunParallelBitIdentical is the tentpole's golden test: the
// two-phase engine must produce bit-identical Results at any worker
// count, across static, mobile, fault-injected, and QoS members. This
// is what licenses every parallel-speedup claim the fleet engine makes.
func TestHubRunParallelBitIdentical(t *testing.T) {
	const horizon, rounds = 3600, 24
	ref, err := buildMixedHub(t, 1).Run(horizon, rounds)
	if err != nil {
		t.Fatal(err)
	}
	refNorm, refErrs := normalize(ref)
	if ref.TotalBits() <= 0 {
		t.Fatal("reference run delivered nothing; test is vacuous")
	}
	for _, workers := range []int{2, 8} {
		got, err := buildMixedHub(t, workers).Run(horizon, rounds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotNorm, gotErrs := normalize(got)
		if !reflect.DeepEqual(refNorm, gotNorm) {
			t.Errorf("workers=%d: Result diverged from sequential run:\n got %+v\nwant %+v",
				workers, gotNorm, refNorm)
		}
		if !reflect.DeepEqual(refErrs, gotErrs) {
			t.Errorf("workers=%d: member errors diverged:\n got %v\nwant %v", workers, gotErrs, refErrs)
		}
	}
}

// TestHubRunRepeatIdentical: the same hub configuration rebuilt and
// re-run must reproduce itself exactly — pooled scratch from a previous
// run (including a different test's run) must never leak into results.
func TestHubRunRepeatIdentical(t *testing.T) {
	const horizon, rounds = 1800, 12
	a, err := buildMixedHub(t, 4).Run(horizon, rounds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildMixedHub(t, 4).Run(horizon, rounds)
	if err != nil {
		t.Fatal(err)
	}
	aN, aE := normalize(a)
	bN, bE := normalize(b)
	if !reflect.DeepEqual(aN, bN) || !reflect.DeepEqual(aE, bE) {
		t.Errorf("identical rebuilt runs diverged:\n got %+v\nwant %+v", bN, aN)
	}
}

// TestHubDiedRoundAccounting: a hub sized to die mid-run records the
// fatal round, and the death is checked after every member commit — the
// members after the fatal drain in that round deliver nothing further.
func TestHubDiedRoundAccounting(t *testing.T) {
	build := func(workers int) *Hub {
		tiny := energy.Device{Name: "dying-hub", Capacity: 0.00002, Class: "custom"}
		h := New(tiny, nil)
		h.Workers = workers
		for _, m := range []Member{
			{Device: dev(t, "Apple Watch"), Distance: 0.4, Load: 500000},
			{Device: dev(t, "Nike Fuel Band"), Distance: 0.4, Load: 500000},
		} {
			if err := h.Add(m); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	res, err := build(1).Run(3600, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HubExhausted {
		t.Fatal("20 µWh hub survived two 500 kbit/s members; test is vacuous")
	}
	if res.HubDiedRound < 0 || res.HubDiedRound >= 12 {
		t.Errorf("HubDiedRound = %d, want a round in [0,12)", res.HubDiedRound)
	}
	for _, workers := range []int{2, 8} {
		par, err := build(workers).Run(3600, 12)
		if err != nil {
			t.Fatal(err)
		}
		if par.HubDiedRound != res.HubDiedRound {
			t.Errorf("workers=%d: HubDiedRound = %d, want %d", workers, par.HubDiedRound, res.HubDiedRound)
		}
	}

	// A comfortably provisioned hub must report -1.
	healthy, err := bodyNetwork(t).Run(3600, 12)
	if err != nil {
		t.Fatal(err)
	}
	if healthy.HubDiedRound != -1 {
		t.Errorf("healthy hub HubDiedRound = %d, want -1", healthy.HubDiedRound)
	}
}
