//go:build !race

package hub

import (
	"testing"

	"braidio/internal/obs"
)

// TestHubRunSteadyStateAllocs gates the pooled-scratch claim: once a
// run's fixed setup (Result, batteries, pooled scratch warm-up) is paid,
// additional rounds must be allocation-free. Before the scratch pool,
// every member-round built a fresh core.Braid, schedule buffers, and a
// ModeBits map (~11 allocs per member-round); the gate pins the
// steady-state at effectively zero. Excluded under -race (the detector
// instruments allocations) and run at Workers=1 (par.For spawns
// goroutines, which allocate, at higher counts — worker goroutine cost
// is bounded per round, not per member, and is not what this gate
// measures).
func TestHubRunSteadyStateAllocs(t *testing.T) {
	run := func(rounds int) float64 {
		return testing.AllocsPerRun(20, func() {
			h := bodyNetwork(t)
			h.Workers = 1
			if _, err := h.Run(3600, rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	const extra = 100
	short := run(5)
	long := run(5 + extra)
	perRound := (long - short) / extra
	t.Logf("fixed setup ≈ %.0f allocs; steady-state ≈ %.3f allocs/round (%d members)", short, perRound, 3)
	if perRound > 0.5 {
		t.Errorf("steady-state allocations: %.2f allocs/round, want ~0 (pooled scratch regressed)", perRound)
	}
}

// TestHubRunSteadyStateAllocsInstrumented is the same gate with a
// metrics recorder attached: the instrumented hot path must add zero
// steady-state allocations per round — every record primitive is an
// atomic add into preallocated storage.
func TestHubRunSteadyStateAllocsInstrumented(t *testing.T) {
	rec := obs.NewRecorder()
	run := func(rounds int) float64 {
		return testing.AllocsPerRun(20, func() {
			h := bodyNetwork(t)
			h.Workers = 1
			h.Obs = rec
			if _, err := h.Run(3600, rounds); err != nil {
				t.Fatal(err)
			}
		})
	}
	const extra = 100
	short := run(5)
	long := run(5 + extra)
	perRound := (long - short) / extra
	t.Logf("instrumented: fixed setup ≈ %.0f allocs; steady-state ≈ %.3f allocs/round", short, perRound)
	if perRound > 0.5 {
		t.Errorf("instrumented steady-state allocations: %.2f allocs/round, want ~0", perRound)
	}
}
