// Fleet-scale simulation: many independent hub stars run concurrently
// over the shared worker pool. A fleet is the unit the paper's
// population-level questions need — "across a building of N phones each
// serving M wearables, what fraction of hubs survive the day?" — and
// the unit the engine's performance work targets: shards are
// embarrassingly parallel, each shard reuses one pooled scratch for its
// whole run, and the sharded link cache keeps concurrent planners from
// serializing on one lock.
//
// Determinism: shard i draws every randomized parameter from
// rng.Substreams(Seed, Shards)[i], whose layout depends only on (Seed,
// Shards); shards write only their own result slot and are merged in
// shard order. A fleet run is therefore bit-identical at any Workers
// count, extending the two-phase engine's guarantee one level up.

package hub

import (
	"errors"
	"fmt"

	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Builder constructs one fleet shard's hub. It receives the shard index
// and the shard's private random stream — every randomized member
// parameter (distance, load, walk, fault seed) must be drawn from that
// stream, never from shared state, so shards stay independent and the
// fleet deterministic. The returned hub must not be shared between
// shards.
type Builder func(shard int, stream *rng.Stream) (*Hub, error)

// Fleet is a population of independent hub stars simulated over one
// worker pool. Configure the fields, then call Run.
type Fleet struct {
	// Shards is the number of independent hubs to simulate.
	Shards int
	// Workers bounds the pool running shards concurrently: 0 selects
	// GOMAXPROCS, 1 runs shards sequentially. Results are bit-identical
	// at any value. Shard hubs always plan with Workers=1 — the fleet
	// parallelizes across shards, not within them, so the pool is never
	// oversubscribed.
	Workers int
	// Seed keys the per-shard rng substreams. Same seed, same fleet.
	Seed uint64
	// Build constructs each shard's hub.
	Build Builder
	// Obs, when non-nil, is propagated to every shard hub whose Builder
	// left Obs unset. Shards record concurrently into one recorder; all
	// record operations commute, so Canonical snapshots stay
	// bit-identical at any Workers count.
	Obs *obs.Recorder
}

// FleetResult aggregates a fleet run.
type FleetResult struct {
	// Horizon is the wall-clock span each shard simulated.
	Horizon units.Second
	// Shards holds per-shard outcomes in shard order (nil for shards
	// whose build or run failed — see Run's joined error).
	Shards []*Result
}

// TotalBits sums delivered bits across every shard and member.
func (f *FleetResult) TotalBits() float64 {
	total := 0.0
	for _, r := range f.Shards {
		if r != nil {
			total += r.TotalBits()
		}
	}
	return total
}

// HubDrain sums the hubs' radio energy across shards.
func (f *FleetResult) HubDrain() units.Joule {
	var total units.Joule
	for _, r := range f.Shards {
		if r != nil {
			total += r.HubDrain
		}
	}
	return total
}

// Exhausted counts shards whose hub battery died before the horizon.
func (f *FleetResult) Exhausted() int {
	n := 0
	for _, r := range f.Shards {
		if r != nil && r.HubExhausted {
			n++
		}
	}
	return n
}

// Quarantines counts quarantined members across the whole fleet.
func (f *FleetResult) Quarantines() int {
	n := 0
	for _, r := range f.Shards {
		if r != nil {
			n += r.Quarantines
		}
	}
	return n
}

// Solves returns the fleet-wide LP solve and allocation-reuse totals —
// the cache-effectiveness counters the perf work tracks.
func (f *FleetResult) Solves() (lpSolves, allocReuses int) {
	for _, r := range f.Shards {
		if r != nil {
			lpSolves += r.LPSolves
			allocReuses += r.AllocReuses
		}
	}
	return lpSolves, allocReuses
}

// Run simulates every shard for the horizon, fanning shards out over
// the worker pool. Shard errors do not abort the fleet: failed shards
// leave a nil slot in FleetResult.Shards and their errors are joined in
// shard order alongside the partial result.
func (f *Fleet) Run(horizon units.Second, rounds int) (*FleetResult, error) {
	if f.Shards < 1 {
		return nil, fmt.Errorf("hub: fleet needs at least one shard, have %d", f.Shards)
	}
	if f.Build == nil {
		return nil, errors.New("hub: fleet has no Build function")
	}
	streams := rng.Substreams(f.Seed, f.Shards)
	res := &FleetResult{
		Horizon: horizon,
		Shards:  make([]*Result, f.Shards),
	}
	errs := make([]error, f.Shards)
	par.For(f.Workers, f.Shards, func(i int) {
		h, err := f.Build(i, streams[i])
		if err != nil {
			errs[i] = fmt.Errorf("hub: fleet shard %d build: %w", i, err)
			return
		}
		// The fleet parallelizes across shards; nested per-member pools
		// would oversubscribe GOMAXPROCS for no gain.
		h.Workers = 1
		if h.Obs == nil {
			h.Obs = f.Obs
		}
		r, err := h.Run(horizon, rounds)
		if err != nil {
			errs[i] = fmt.Errorf("hub: fleet shard %d: %w", i, err)
			return
		}
		res.Shards[i] = r
	})
	return res, errors.Join(errs...)
}

// RunFleet is the one-call form of Fleet: n shards built by build,
// seeded substreams, GOMAXPROCS workers.
func RunFleet(n int, seed uint64, build Builder, horizon units.Second, rounds int) (*FleetResult, error) {
	f := &Fleet{Shards: n, Seed: seed, Build: build}
	return f.Run(horizon, rounds)
}
