package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// population variance is 4; sample variance is 32/7.
	if got := r.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty Running should report NaN")
	}
	r.Add(1)
	if !math.IsNaN(r.Variance()) {
		t.Error("variance of single observation should be NaN")
	}
}

func TestRunningMeanWithinBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		any := false
		for _, x := range xs {
			// Welford's update overflows for magnitudes near MaxFloat64;
			// restrict the property to the physically meaningful range.
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				continue
			}
			r.Add(x)
			any = true
		}
		if !any {
			return true
		}
		m := r.Mean()
		return m >= r.Min()-1e-9 && m <= r.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Errorf("p0 = %v, want 15", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Errorf("p100 = %v, want 50", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Errorf("p50 = %v, want 35", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Errorf("p25 = %v, want 20", got)
	}
	// Input must be untouched.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { Percentile(nil, 50) },
		"negative": func() { Percentile([]float64{1}, -1) },
		"over100":  func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, -1, 10, 12} {
		h.Add(x)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d/%d, want 1/2", under, over)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
}

func TestHistogramEdgeRounding(t *testing.T) {
	h := NewHistogram(0, 0.3, 3)
	// 0.3 - tiny epsilon can round to bin index 3 without the guard.
	h.Add(math.Nextafter(0.3, 0))
	if h.Counts[2] != 1 {
		t.Errorf("edge value landed in %v", h.Counts)
	}
}

func TestSeriesInterpolate(t *testing.T) {
	s := Series{{0, 0}, {1, 10}, {2, 40}}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 25}, {2, 40}, {3, 40},
	}
	for _, c := range cases {
		if got := s.Interpolate(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interpolate(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCrossBelow(t *testing.T) {
	// Monotone decreasing curve like SNR vs distance.
	s := Series{{0, 30}, {1, 20}, {2, 10}, {3, 0}}
	x, ok := s.CrossBelow(15)
	if !ok || math.Abs(x-1.5) > 1e-12 {
		t.Errorf("CrossBelow(15) = %v,%v, want 1.5,true", x, ok)
	}
	if _, ok := s.CrossBelow(-5); ok {
		t.Error("CrossBelow below the series range should fail")
	}
	x, ok = s.CrossBelow(30)
	if !ok || x != 0 {
		t.Errorf("CrossBelow at first point = %v,%v", x, ok)
	}
}

func TestCrossAbove(t *testing.T) {
	// Monotone increasing curve like BER vs distance.
	s := Series{{0, 1e-4}, {1, 1e-3}, {2, 1e-1}}
	x, ok := s.CrossAbove(1e-2)
	if !ok || x <= 1 || x >= 2 {
		t.Errorf("CrossAbove(1e-2) = %v,%v, want within (1,2)", x, ok)
	}
	if _, ok := s.CrossAbove(1); ok {
		t.Error("CrossAbove beyond the series range should fail")
	}
}

func TestCrossConsistencyProperty(t *testing.T) {
	// For any decreasing series, the crossing point interpolates back to
	// approximately the threshold.
	s := Series{{0, 100}, {0.5, 71}, {1.1, 38}, {2, 11}, {4, 2}}
	f := func(raw uint8) bool {
		th := 3 + float64(raw%97)
		x, ok := s.CrossBelow(th)
		if !ok {
			return th < 2
		}
		return math.Abs(s.Interpolate(x)-th) < 1e-9 || x == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %v, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}
