// Package stats provides the small statistical toolkit the experiments
// use: running summaries, percentiles, histograms, series interpolation,
// and crossover detection for range/regime boundaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming summary statistics in O(1) memory using
// Welford's algorithm for numerically stable variance.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	if r.n == 0 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N reports the number of observations.
func (r *Running) N() int { return r.n }

// Mean reports the sample mean; it returns NaN with no observations.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance reports the unbiased sample variance; NaN with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev reports the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min reports the smallest observation; NaN with no observations.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max reports the largest observation; NaN with no observations.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty slice
// or out-of-range p. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts observations into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
}

// NewHistogram creates a histogram with n bins spanning [min, max).
// It panics if n <= 0 or max <= min.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if max <= min {
		panic("stats: histogram max must exceed min")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add places an observation into its bin; values outside [min, max) are
// tallied separately and reported by Outliers.
func (h *Histogram) Add(x float64) {
	if x < h.Min {
		h.under++
		return
	}
	if x >= h.Max {
		h.over++
		return
	}
	i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i == len(h.Counts) { // guard against floating rounding at the edge
		i--
	}
	h.Counts[i]++
}

// Outliers reports how many observations fell below min and at-or-above
// max.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// Total reports the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Point is one (X, Y) sample of a series.
type Point struct{ X, Y float64 }

// Series is an ordered set of samples with strictly increasing X, the
// shape every figure's curve is reported in.
type Series []Point

// Interpolate returns the linearly interpolated Y at x. X values outside
// the series range clamp to the endpoint values. It panics on an empty
// series.
func (s Series) Interpolate(x float64) float64 {
	if len(s) == 0 {
		panic("stats: interpolate on empty series")
	}
	if x <= s[0].X {
		return s[0].Y
	}
	if x >= s[len(s)-1].X {
		return s[len(s)-1].Y
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].X >= x })
	a, b := s[i-1], s[i]
	frac := (x - a.X) / (b.X - a.X)
	return a.Y + frac*(b.Y-a.Y)
}

// CrossBelow returns the smallest X at which the series first drops to or
// below the threshold, interpolating between samples, and whether such a
// crossing exists. This is how operating ranges are extracted from BER
// curves (e.g. "the distance where BER exceeds 1%" scans the inverted
// curve).
func (s Series) CrossBelow(threshold float64) (float64, bool) {
	for i, p := range s {
		if p.Y <= threshold {
			if i == 0 {
				return p.X, true
			}
			a := s[i-1]
			if a.Y == p.Y {
				return p.X, true
			}
			frac := (a.Y - threshold) / (a.Y - p.Y)
			return a.X + frac*(p.X-a.X), true
		}
	}
	return 0, false
}

// CrossAbove returns the smallest X at which the series first rises to or
// above the threshold, interpolating between samples, and whether such a
// crossing exists.
func (s Series) CrossAbove(threshold float64) (float64, bool) {
	for i, p := range s {
		if p.Y >= threshold {
			if i == 0 {
				return p.X, true
			}
			a := s[i-1]
			if a.Y == p.Y {
				return p.X, true
			}
			frac := (threshold - a.Y) / (p.Y - a.Y)
			return a.X + frac*(p.X-a.X), true
		}
	}
	return 0, false
}

// GeoMean returns the geometric mean of xs; it panics if any value is
// non-positive or the slice is empty. Gain matrices are summarized this
// way because the gains span orders of magnitude.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty slice")
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
