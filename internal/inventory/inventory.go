// Package inventory implements dynamic framed slotted ALOHA with the
// EPC Gen2 Q algorithm — the protocol a backscatter reader uses to
// enumerate many tags sharing its carrier. Braidio's backscatter mode is
// a one-tag link; this package extends it to the swarm setting the RFID
// lineage (Moo/WISP, the AS3993 baseline) comes from: one Braidio board
// as reader, N battery-free tags in range.
//
// Protocol sketch: the reader opens a frame of 2^Q slots; each tag draws
// a uniform slot counter; a slot with exactly one responder succeeds
// (the tag is read and silenced), zero responders is a cheap empty slot,
// two or more collide. The reader nudges Q up on collisions and down on
// empties (the Gen2 Q-algorithm with step C), keeping the frame size
// near the remaining population where slotted ALOHA peaks at 1/e
// efficiency.
package inventory

import (
	"errors"
	"fmt"
	"math"

	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Config parameterizes an inventory round.
type Config struct {
	// Rate is the backscatter link rate.
	Rate units.BitRate
	// QInit is the initial Q (Gen2 default 4).
	QInit float64
	// C is the Q adjustment step (Gen2 allows 0.1–0.5).
	C float64
	// EmptyBits, CollisionBits, SuccessBits are the slot airtime costs
	// in bit times: an empty slot is a short timeout, a collision burns
	// a preamble's worth, a success carries the tag's 128-bit
	// RN16+EPC-class reply plus the ACK exchange.
	EmptyBits, CollisionBits, SuccessBits int
	// Seed drives the tags' slot draws.
	Seed uint64
}

// DefaultConfig returns Gen2-flavoured parameters at the given rate.
func DefaultConfig(rate units.BitRate, seed uint64) Config {
	return Config{
		Rate:          rate,
		QInit:         4,
		C:             0.3,
		EmptyBits:     8,
		CollisionBits: 32,
		SuccessBits:   192,
		Seed:          seed,
	}
}

// Result summarizes an inventory round.
type Result struct {
	// Tags read (always the full population on success).
	Tags int
	// Slots, Empties, Collisions, Successes count slot outcomes.
	Slots, Empties, Collisions, Successes int
	// Duration is the total airtime.
	Duration units.Second
	// ReaderEnergy is the reader's carrier+receive cost over the round.
	ReaderEnergy units.Joule
	// TagEnergy is the mean per-tag modulator energy (tags only spend
	// while responding).
	TagEnergy units.Joule
	// FinalQ is the Q value when the round ended.
	FinalQ float64
}

// Efficiency returns successes per slot — slotted ALOHA tops out at
// 1/e ≈ 0.368 with an oracle frame size.
func (r *Result) Efficiency() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Slots)
}

// SlotsPerTag returns the inventory cost in slots per tag.
func (r *Result) SlotsPerTag() float64 {
	if r.Tags == 0 {
		return 0
	}
	return float64(r.Slots) / float64(r.Tags)
}

// Run inventories n tags and returns the accounting. It errors on a
// non-positive population or nonsensical configuration.
func Run(cfg Config, n int) (*Result, error) {
	if n <= 0 {
		return nil, errors.New("inventory: need at least one tag")
	}
	if cfg.Rate <= 0 || cfg.QInit < 0 || cfg.C <= 0 || cfg.C > 1 {
		return nil, fmt.Errorf("inventory: invalid config %+v", cfg)
	}
	if cfg.EmptyBits <= 0 || cfg.CollisionBits <= 0 || cfg.SuccessBits <= 0 {
		return nil, fmt.Errorf("inventory: slot costs must be positive")
	}
	stream := rng.New(cfg.Seed)
	bitTime := float64(cfg.Rate.BitDuration())
	readerPower := float64(phy.BackscatterRXPower)
	tagPower := float64(phy.BackscatterTXPower(cfg.Rate))

	res := &Result{Tags: n}
	remaining := n
	q := cfg.QInit
	var tagSeconds float64 // summed over all tags

	// Safety valve far above any sane round length.
	maxSlots := 1000 * (n + 16)
	for remaining > 0 {
		if res.Slots >= maxSlots {
			return nil, errors.New("inventory: failed to converge")
		}
		frameQ := int(math.Round(clampQ(q)))
		frame := 1 << frameQ
		// Each remaining tag picks one slot in the frame.
		slotOf := make([]int, remaining)
		for i := range slotOf {
			slotOf[i] = stream.Intn(frame)
		}
		counts := make(map[int]int, remaining)
		for _, s := range slotOf {
			counts[s]++
		}
		for slot := 0; slot < frame && remaining > 0; slot++ {
			res.Slots++
			switch counts[slot] {
			case 0:
				res.Empties++
				res.Duration += units.Second(float64(cfg.EmptyBits) * bitTime)
				q = clampQ(q - cfg.C)
			case 1:
				res.Successes++
				res.Duration += units.Second(float64(cfg.SuccessBits) * bitTime)
				tagSeconds += float64(cfg.SuccessBits) * bitTime
				remaining--
			default:
				res.Collisions++
				res.Duration += units.Second(float64(cfg.CollisionBits) * bitTime)
				// Colliding tags burned their reply airtime too.
				tagSeconds += float64(counts[slot]) * float64(cfg.CollisionBits) * bitTime
				q = clampQ(q + cfg.C)
			}
			// QueryAdjust: when the running Q rounds to a different
			// frame size, the reader aborts the frame and re-queries —
			// this is what lets Gen2 converge onto the population
			// instead of overshooting a whole frame at a time.
			if int(math.Round(clampQ(q))) != frameQ {
				break
			}
		}
		// Unread tags re-draw in the next frame (Gen2 re-query).
	}
	res.FinalQ = q
	res.ReaderEnergy = units.Joule(readerPower * float64(res.Duration))
	res.TagEnergy = units.Joule(tagPower * tagSeconds / float64(n))
	return res, nil
}

// clampQ keeps Q in Gen2's [0, 15].
func clampQ(q float64) float64 {
	if q < 0 {
		return 0
	}
	if q > 15 {
		return 15
	}
	return q
}

// TheoreticalMinSlots returns the oracle-frame lower bound on expected
// slots: n·e (slotted ALOHA at peak efficiency).
func TheoreticalMinSlots(n int) float64 { return float64(n) * math.E }
