package inventory

import (
	"math"
	"testing"

	"braidio/internal/units"
)

func TestInventoriesEveryone(t *testing.T) {
	for _, n := range []int{1, 5, 50, 500} {
		res, err := Run(DefaultConfig(units.Rate100k, 1), n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Successes != n {
			t.Errorf("n=%d: %d successes", n, res.Successes)
		}
		if res.Slots != res.Empties+res.Collisions+res.Successes {
			t.Errorf("n=%d: slot accounting broken", n)
		}
		if res.Duration <= 0 || res.ReaderEnergy <= 0 {
			t.Errorf("n=%d: non-positive duration/energy", n)
		}
	}
}

// TestEfficiencyNearALOHAOptimum: the Q algorithm should land within a
// factor of ~2 of the 1/e slotted-ALOHA peak for medium populations.
func TestEfficiencyNearALOHAOptimum(t *testing.T) {
	res, err := Run(DefaultConfig(units.Rate100k, 2), 200)
	if err != nil {
		t.Fatal(err)
	}
	eff := res.Efficiency()
	if eff < 0.18 || eff > 0.5 {
		t.Errorf("efficiency = %v, want in the 1/e neighbourhood", eff)
	}
	if res.SlotsPerTag() > 2.5*math.E {
		t.Errorf("slots/tag = %v vs theoretical minimum %v", res.SlotsPerTag(), math.E)
	}
}

// TestQAdaptsToPopulation: a big swarm drives Q up.
func TestQAdaptsToPopulation(t *testing.T) {
	small, err := Run(DefaultConfig(units.Rate100k, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(DefaultConfig(units.Rate100k, 3), 2000)
	if err != nil {
		t.Fatal(err)
	}
	// The big round must have seen far more collisions handled by frame
	// growth; its cost per tag should not blow up.
	if big.SlotsPerTag() > 4*small.SlotsPerTag()+4 {
		t.Errorf("large-population cost %v slots/tag vs small %v", big.SlotsPerTag(), small.SlotsPerTag())
	}
}

// TestReaderEnergyScalesLinearly: inventorying 10× the tags costs
// roughly 10× the reader energy.
func TestReaderEnergyScalesLinearly(t *testing.T) {
	a, err := Run(DefaultConfig(units.Rate100k, 4), 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(DefaultConfig(units.Rate100k, 4), 500)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b.ReaderEnergy / a.ReaderEnergy)
	if ratio < 6 || ratio > 16 {
		t.Errorf("energy scaling = %v for 10× tags, want ≈10", ratio)
	}
}

// TestTagEnergyTiny: a tag's share of an inventory round is microjoules
// — the asymmetry the whole architecture is about.
func TestTagEnergyTiny(t *testing.T) {
	res, err := Run(DefaultConfig(units.Rate100k, 5), 100)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(res.ReaderEnergy) / float64(res.TagEnergy); ratio < 1000 {
		t.Errorf("reader/tag energy ratio = %v, want thousands", ratio)
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Run(DefaultConfig(units.Rate100k, 9), 100)
	b, _ := Run(DefaultConfig(units.Rate100k, 9), 100)
	if a.Slots != b.Slots || a.Collisions != b.Collisions || a.FinalQ != b.FinalQ {
		t.Error("same-seed rounds diverged")
	}
}

func TestValidation(t *testing.T) {
	cfg := DefaultConfig(units.Rate100k, 1)
	if _, err := Run(cfg, 0); err == nil {
		t.Error("zero tags accepted")
	}
	bad := cfg
	bad.C = 0
	if _, err := Run(bad, 5); err == nil {
		t.Error("zero step accepted")
	}
	bad = cfg
	bad.EmptyBits = 0
	if _, err := Run(bad, 5); err == nil {
		t.Error("zero slot cost accepted")
	}
	bad = cfg
	bad.Rate = 0
	if _, err := Run(bad, 5); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestClampQ(t *testing.T) {
	if clampQ(-1) != 0 || clampQ(20) != 15 || clampQ(7.5) != 7.5 {
		t.Error("clampQ wrong")
	}
}

func TestTheoreticalMinSlots(t *testing.T) {
	if got := TheoreticalMinSlots(100); math.Abs(got-100*math.E) > 1e-9 {
		t.Errorf("min slots = %v", got)
	}
}

func TestEmptyResultAccessors(t *testing.T) {
	var r Result
	if r.Efficiency() != 0 || r.SlotsPerTag() != 0 {
		t.Error("zero-value accessors should be 0")
	}
}

func BenchmarkInventory500(b *testing.B) {
	cfg := DefaultConfig(units.Rate100k, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, 500); err != nil {
			b.Fatal(err)
		}
	}
}
