package faults

import (
	"math"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

func attempt(inj Injector, t units.Second, fer float64) Env {
	var env Env
	env.Reset(t, phy.ModePassive, units.Rate100k, fer)
	inj.Impair(&env)
	return env
}

func TestEnvResetIsIdentity(t *testing.T) {
	var env Env
	env.Reset(3, phy.ModeActive, units.Rate1M, 0.25)
	if env.FER != 0.25 || env.SNROffset != 0 || env.TXDrain != 1 || env.RXDrain != 1 || env.CarrierLost {
		t.Errorf("reset env not identity: %+v", env)
	}
}

func TestEmptyChainIsIdentity(t *testing.T) {
	env := attempt(Chain{}, 1, 0.1)
	if env.FER != 0.1 || env.SNROffset != 0 || env.TXDrain != 1 || env.RXDrain != 1 || env.CarrierLost {
		t.Errorf("empty chain mutated env: %+v", env)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	ge := NewGilbertElliott(0.05, 0.2, 0, 1, 7)
	lost, runs, inBurst := 0, 0, false
	const n = 20000
	for i := 0; i < n; i++ {
		env := attempt(ge, units.Second(i), 0)
		if env.FER == 1 {
			lost++
			if !inBurst {
				runs++
			}
			inBurst = true
		} else {
			inBurst = false
		}
	}
	// Stationary bad-state probability = pEnter/(pEnter+pExit) = 0.2.
	frac := float64(lost) / n
	if frac < 0.12 || frac > 0.30 {
		t.Errorf("bad-state fraction = %v, want ≈0.2", frac)
	}
	// Mean burst length = 1/pExit = 5 attempts — far from i.i.d.
	meanBurst := float64(lost) / float64(runs)
	if meanBurst < 3 || meanBurst > 8 {
		t.Errorf("mean burst length = %v, want ≈5", meanBurst)
	}
	if ge.Events() != runs {
		t.Errorf("Events() = %d, observed %d bursts", ge.Events(), runs)
	}
}

func TestGilbertElliottDeterministic(t *testing.T) {
	trace := func() []float64 {
		ge := NewGilbertElliott(0.1, 0.3, 0.01, 0.9, 42)
		out := make([]float64, 500)
		for i := range out {
			out[i] = attempt(ge, units.Second(i), 0.02).FER
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed channels diverged at attempt %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range probability accepted")
		}
	}()
	NewGilbertElliott(1.5, 0, 0, 0, 1)
}

func TestJammerWindows(t *testing.T) {
	j := &Jammer{Start: 10, Period: 100, Duration: 5, SNRCrush: 30, Loss: 1}
	cases := []struct {
		t    units.Second
		want bool
	}{
		{0, false}, {9.9, false}, {10, true}, {14.9, true}, {15, false},
		{109.9, false}, {110, true}, {114, true}, {115, false}, {210, true},
	}
	for _, c := range cases {
		env := attempt(j, c.t, 0.01)
		jammed := env.SNROffset == -30
		if jammed != c.want {
			t.Errorf("t=%v jammed=%v, want %v", float64(c.t), jammed, c.want)
		}
		if c.want && env.FER != 1 {
			t.Errorf("t=%v FER=%v under Loss=1", float64(c.t), env.FER)
		}
	}
	if j.Events() != 3 {
		t.Errorf("jam bursts = %d, want 3", j.Events())
	}
}

func TestJammerSingleBurst(t *testing.T) {
	j := &Jammer{Start: 5, Duration: 2, SNRCrush: 10}
	if env := attempt(j, 6, 0); env.SNROffset != -10 {
		t.Error("burst not active at t=6")
	}
	if env := attempt(j, 100, 0); env.SNROffset != 0 {
		t.Error("period-0 jammer re-fired")
	}
}

func TestDropoutKillsCarrier(t *testing.T) {
	d := &Dropout{Start: 0, Period: 10, Duration: 2}
	env := attempt(d, 1, 0.01)
	if !env.CarrierLost || env.FER != 1 {
		t.Errorf("dropout window: %+v", env)
	}
	env = attempt(d, 5, 0.01)
	if env.CarrierLost || env.FER != 0.01 {
		t.Errorf("outside window: %+v", env)
	}
}

func TestBrownoutSides(t *testing.T) {
	for _, c := range []struct {
		side   Side
		tx, rx float64
	}{
		{SideTX, 3, 1},
		{SideRX, 1, 3},
		{SideBoth, 3, 3},
	} {
		b := &Brownout{Start: 0, Duration: 10, Scale: 3, Affected: c.side}
		env := attempt(b, 1, 0)
		if env.TXDrain != c.tx || env.RXDrain != c.rx {
			t.Errorf("side %v: tx=%v rx=%v, want %v/%v", c.side, env.TXDrain, env.RXDrain, c.tx, c.rx)
		}
	}
	// Sub-unity scales clamp to 1: brownouts never *save* energy.
	b := &Brownout{Start: 0, Duration: 10, Scale: 0.5, Affected: SideBoth}
	if env := attempt(b, 1, 0); env.TXDrain != 1 || env.RXDrain != 1 {
		t.Error("scale < 1 not clamped")
	}
}

func TestSNRCorruptorBiasAndNoise(t *testing.T) {
	c := NewSNRCorruptor(-4, 2, 9)
	sum, sumSq := 0.0, 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		off := attempt(c, units.Second(i), 0).SNROffset
		sum += off
		sumSq += off * off
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean+4) > 0.2 {
		t.Errorf("mean offset = %v, want ≈ -4", mean)
	}
	if math.Abs(sd-2) > 0.2 {
		t.Errorf("offset sd = %v, want ≈ 2", sd)
	}
}

func TestChainComposesAndCounts(t *testing.T) {
	ch := Chain{
		&Jammer{Start: 0, Duration: 100, SNRCrush: 10, Loss: 0.5},
		&Dropout{Start: 0, Duration: 100},
		NewSNRCorruptor(-1, 0, 3),
	}
	env := attempt(ch, 1, 0.1)
	if env.SNROffset != -11 {
		t.Errorf("offsets did not add: %v", env.SNROffset)
	}
	if !env.CarrierLost || env.FER != 1 {
		t.Errorf("dropout lost in chain: %+v", env)
	}
	ctr := ch.Counters()
	if ctr["jammer"] != 1 || ctr["dropout"] != 1 {
		t.Errorf("counters = %v", ctr)
	}
}

func TestCompoundLoss(t *testing.T) {
	var env Env
	env.Reset(0, phy.ModeActive, units.Rate1M, 0.5)
	env.compound(0.5)
	if math.Abs(env.FER-0.75) > 1e-12 {
		t.Errorf("compound(0.5, 0.5) = %v, want 0.75", env.FER)
	}
	env.compound(0)
	if env.FER != 0.75 {
		t.Error("compound(0) changed FER")
	}
	env.compound(1)
	if env.FER != 1 {
		t.Error("compound(1) != certain loss")
	}
}
