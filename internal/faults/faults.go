// Package faults is a deterministic, seed-driven fault-injection
// framework for the Braidio simulator. The paper's §4.2 safety net —
// "Braidio simply falls back to the active mode if the current operating
// mode is performing poorly" — only earns its keep under the correlated
// outages backscatter links actually suffer: interference bursts that
// crush SNR, shadowing dips, carrier dropouts, and harvesting brownouts.
// The stock channel model gives the MAC i.i.d. per-frame loss, which
// never exercises the fallback, retry, and re-probe machinery; this
// package supplies the missing fault processes.
//
// An Injector transforms a per-frame-attempt Env: it can raise the frame
// error rate (replacing the i.i.d. loss draw with a channel-state
// process), bias the SNR observations the MAC's estimator sees, scale
// battery drain (brownout), or declare the carrier gone entirely.
// Injectors compose through Chain and are strictly opt-in: a session or
// hub with no injector configured takes the exact pre-fault code path,
// bit-identical to a fault-free build.
//
// Determinism: every stochastic injector owns a private rng.Stream
// seeded at construction, so injectors never consume draws from the
// session's stream — the same seed reproduces the same fault schedule
// regardless of which impairments are chained around it.
package faults

import (
	"fmt"

	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Env is the channel context for one frame attempt (or probe). The
// session fills in the attempt's time, mode, rate, and base i.i.d. frame
// error rate; injectors mutate the remaining fields. The zero scales are
// normalized by Reset.
type Env struct {
	// Time is the session air time at the attempt.
	Time units.Second
	// Mode and Rate identify the link the attempt uses.
	Mode phy.Mode
	Rate units.BitRate
	// FER is the frame error probability. It starts at the PHY's i.i.d.
	// value; injectors compound extra loss into it.
	FER float64
	// SNROffset is added (in dB) to every SNR observation the MAC makes
	// during this attempt — jamming and estimator corruption act here.
	SNROffset float64
	// TXDrain and RXDrain scale the energy each side spends on the
	// attempt (brownout: a harvesting interruption forces the radio to
	// pull full power from the cell).
	TXDrain, RXDrain float64
	// CarrierLost reports the carrier is gone entirely: the frame cannot
	// be delivered and no SNR observation is possible. The transmitter
	// still burns energy transmitting into the void.
	CarrierLost bool
}

// Reset prepares an Env for one attempt: the identity transform at the
// given time/mode/rate/fer.
func (e *Env) Reset(t units.Second, m phy.Mode, r units.BitRate, fer float64) {
	e.Time, e.Mode, e.Rate, e.FER = t, m, r, fer
	e.SNROffset = 0
	e.TXDrain, e.RXDrain = 1, 1
	e.CarrierLost = false
}

// compound folds an extra independent loss probability into the Env's
// frame error rate.
func (e *Env) compound(loss float64) {
	if loss <= 0 {
		return
	}
	if loss >= 1 {
		e.FER = 1
		return
	}
	e.FER = 1 - (1-e.FER)*(1-loss)
}

// Injector is one composable impairment. Impair mutates the Env for a
// single frame attempt; implementations draw randomness only from their
// own streams so that chains compose deterministically. Injectors are
// stateful (burst processes advance per attempt) and not safe for
// concurrent use; build one chain per session.
type Injector interface {
	// Name identifies the impairment in counters and logs.
	Name() string
	// Impair transforms the channel state for one frame attempt.
	Impair(env *Env)
}

// Chain applies injectors in order. A nil or empty Chain is the identity.
type Chain []Injector

// Name implements Injector.
func (c Chain) Name() string { return "chain" }

// Impair implements Injector by applying every element in order.
func (c Chain) Impair(env *Env) {
	for _, inj := range c {
		inj.Impair(env)
	}
}

// Counters flattens every chained injector's event counts into one map
// keyed by injector name (duplicate names aggregate).
func (c Chain) Counters() map[string]int {
	out := map[string]int{}
	for _, inj := range c {
		if ctr, ok := inj.(interface{ Events() int }); ok {
			out[inj.Name()] += ctr.Events()
		}
	}
	return out
}

// window reports whether t falls inside a periodic burst window that
// first opens at start and then repeats every period, staying open for
// duration each time. A non-positive period means a single window.
func window(t, start, period, duration units.Second) bool {
	if duration <= 0 || t < start {
		return false
	}
	off := t - start
	if period > 0 {
		off = units.Second(float64(off) - float64(period)*float64(int(off/period)))
	}
	return off < duration
}

// GilbertElliott is the classic two-state Markov burst-loss channel: a
// Good state with negligible extra loss and a Bad state (an interference
// or fading burst) with heavy loss. State transitions happen once per
// frame attempt, so mean burst length is 1/PExit attempts — exactly the
// correlated-loss structure i.i.d. draws cannot produce.
type GilbertElliott struct {
	// PEnter is P(Good→Bad) per attempt; PExit is P(Bad→Good).
	PEnter, PExit float64
	// GoodLoss and BadLoss are the extra loss probabilities compounded
	// into the frame error rate in each state.
	GoodLoss, BadLoss float64

	stream *rng.Stream
	bad    bool
	bursts int
}

// NewGilbertElliott builds a burst-loss channel starting in the Good
// state. Probabilities must be in [0, 1]; the channel is deterministic
// given the seed.
func NewGilbertElliott(pEnter, pExit, goodLoss, badLoss float64, seed uint64) *GilbertElliott {
	for _, p := range []float64{pEnter, pExit, goodLoss, badLoss} {
		if p < 0 || p > 1 {
			panic(fmt.Sprintf("faults: probability %v outside [0,1]", p))
		}
	}
	return &GilbertElliott{PEnter: pEnter, PExit: pExit, GoodLoss: goodLoss, BadLoss: badLoss, stream: rng.New(seed)}
}

// Name implements Injector.
func (g *GilbertElliott) Name() string { return "gilbert-elliott" }

// Impair implements Injector: advance the Markov state one step, then
// compound the state's loss into the frame error rate.
func (g *GilbertElliott) Impair(env *Env) {
	if g.bad {
		if g.stream.Float64() < g.PExit {
			g.bad = false
		}
	} else if g.stream.Float64() < g.PEnter {
		g.bad = true
		g.bursts++
	}
	if g.bad {
		env.compound(g.BadLoss)
	} else {
		env.compound(g.GoodLoss)
	}
}

// Events returns how many Good→Bad transitions (bursts) have begun.
func (g *GilbertElliott) Events() int { return g.bursts }

// Bad reports whether the channel is currently in the burst state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// Jammer models timed interference bursts — a microwave oven, a WiFi
// neighbour — that crush SNR by a fixed number of dB and impose a loss
// floor while active. Windows are strictly periodic so schedules are
// reproducible from the config alone.
type Jammer struct {
	// Start is when the first burst begins; Period repeats it (0 = one
	// burst only); Duration is each burst's length.
	Start, Period, Duration units.Second
	// SNRCrush is subtracted (dB) from every SNR observation while the
	// jammer is on.
	SNRCrush float64
	// Loss is the loss probability compounded while jammed (default 0
	// means SNR corruption only — set 1 to flatten the link).
	Loss float64

	events int
	active bool
}

// Name implements Injector.
func (j *Jammer) Name() string { return "jammer" }

// Impair implements Injector.
func (j *Jammer) Impair(env *Env) {
	on := window(env.Time, j.Start, j.Period, j.Duration)
	if on && !j.active {
		j.events++
	}
	j.active = on
	if on {
		env.SNROffset -= j.SNRCrush
		env.compound(j.Loss)
	}
}

// Events returns how many jamming bursts have begun.
func (j *Jammer) Events() int { return j.events }

// Dropout models a carrier disappearing entirely — the peer's oscillator
// gating off, a deep shadow — for timed windows. While dropped, frames
// cannot be delivered and the estimator gets no observation, but the
// transmitter still pays to transmit.
type Dropout struct {
	// Start, Period, Duration shape the periodic outage windows as in
	// Jammer.
	Start, Period, Duration units.Second

	events int
	active bool
}

// Name implements Injector.
func (d *Dropout) Name() string { return "dropout" }

// Impair implements Injector.
func (d *Dropout) Impair(env *Env) {
	on := window(env.Time, d.Start, d.Period, d.Duration)
	if on && !d.active {
		d.events++
	}
	d.active = on
	if on {
		env.CarrierLost = true
		env.FER = 1
	}
}

// Events returns how many dropout windows have begun.
func (d *Dropout) Events() int { return d.events }

// Side selects which endpoint an asymmetric impairment applies to.
type Side int

// The endpoints a Brownout can starve.
const (
	// SideTX is the transmitting endpoint (the energy-poor wearable in
	// the canonical uplink).
	SideTX Side = iota
	// SideRX is the receiving endpoint.
	SideRX
	// SideBoth starves both endpoints.
	SideBoth
)

// Brownout models a harvesting interruption or DC-DC brownout: during
// timed windows one side's radio pulls Scale× the nominal energy from
// its battery (the harvester's contribution is gone, conversion
// efficiency collapses). Scale must be ≥ 1.
type Brownout struct {
	// Start, Period, Duration shape the periodic windows as in Jammer.
	Start, Period, Duration units.Second
	// Scale multiplies the affected side's drain while active.
	Scale float64
	// Affected selects the starved endpoint.
	Affected Side

	events int
	active bool
}

// Name implements Injector.
func (b *Brownout) Name() string { return "brownout" }

// Impair implements Injector.
func (b *Brownout) Impair(env *Env) {
	on := window(env.Time, b.Start, b.Period, b.Duration)
	if on && !b.active {
		b.events++
	}
	b.active = on
	if !on {
		return
	}
	scale := b.Scale
	if scale < 1 {
		scale = 1
	}
	if b.Affected == SideTX || b.Affected == SideBoth {
		env.TXDrain *= scale
	}
	if b.Affected == SideRX || b.Affected == SideBoth {
		env.RXDrain *= scale
	}
}

// Events returns how many brownout windows have begun.
func (b *Brownout) Events() int { return b.events }

// SNRCorruptor models a broken or biased SNR estimator: every
// observation is shifted by Bias dB plus zero-mean Gaussian noise of the
// given Sigma, on top of the session's own estimation noise. A negative
// bias makes links look worse than they are (spurious fallbacks); a
// positive one hides real degradation (missed fallbacks).
type SNRCorruptor struct {
	// Bias shifts every observation (dB).
	Bias float64
	// Sigma is the extra noise standard deviation (dB).
	Sigma float64

	stream *rng.Stream
}

// NewSNRCorruptor builds an estimator corruptor with its own stream.
func NewSNRCorruptor(bias, sigma float64, seed uint64) *SNRCorruptor {
	if sigma < 0 {
		panic(fmt.Sprintf("faults: negative sigma %v", sigma))
	}
	return &SNRCorruptor{Bias: bias, Sigma: sigma, stream: rng.New(seed)}
}

// Name implements Injector.
func (c *SNRCorruptor) Name() string { return "snr-corruptor" }

// Impair implements Injector.
func (c *SNRCorruptor) Impair(env *Env) {
	off := c.Bias
	if c.Sigma > 0 {
		off += c.Sigma * c.stream.Norm()
	}
	env.SNROffset += off
}
