// Chaos soak: many seeded, randomized fault schedules driven through
// full MAC sessions and hub runs. The invariants are the robustness
// contract of the fault-injection layer — no panic, no livelock, no
// negative battery, every terminal failure a typed error — not any
// particular throughput. The test lives outside package faults because it
// pulls in mac and hub, which themselves import faults.
package faults_test

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/faults"
	"braidio/internal/hub"
	"braidio/internal/mac"
	"braidio/internal/phy"
	"braidio/internal/rng"
	"braidio/internal/sim"
	"braidio/internal/units"
)

// typedFailure reports whether err wraps one of the failure types the
// robustness contract allows a session to die with.
func typedFailure(err error) bool {
	for _, target := range []error{
		core.ErrLinkDead,
		core.ErrOutOfRange,
		core.ErrNoLinks,
		core.ErrDegenerateAllocation,
		core.ErrRateUnreachable,
		core.ErrQoSInfeasible,
		mac.ErrExhausted,
	} {
		if errors.Is(err, target) {
			return true
		}
	}
	return false
}

// randomChain draws a fault schedule from the seed: any subset of the
// five impairments with randomized parameters. Stochastic injectors get
// salts derived from the seed so the schedule is reproducible.
func randomChain(r *rng.Stream, seed uint64) faults.Chain {
	var chain faults.Chain
	if r.Float64() < 0.6 {
		chain = append(chain, faults.NewGilbertElliott(
			0.005+0.045*r.Float64(), 0.1+0.4*r.Float64(), 0, 0.5+0.5*r.Float64(), seed*3+1))
	}
	if r.Float64() < 0.5 {
		chain = append(chain, &faults.Jammer{
			Start:    units.Second(2 * r.Float64()),
			Period:   units.Second(1 + 9*r.Float64()),
			Duration: units.Second(0.1 + 1.9*r.Float64()),
			SNRCrush: 10 + 30*r.Float64(),
			Loss:     1,
		})
	}
	if r.Float64() < 0.5 {
		chain = append(chain, &faults.Dropout{
			Start:    units.Second(2 * r.Float64()),
			Period:   units.Second(2 + 8*r.Float64()),
			Duration: units.Second(0.02 + 0.3*r.Float64()),
		})
	}
	if r.Float64() < 0.5 {
		chain = append(chain, &faults.Brownout{
			Start:    units.Second(r.Float64()),
			Period:   units.Second(1 + 4*r.Float64()),
			Duration: units.Second(0.2 + 2*r.Float64()),
			Scale:    1.5 + 3.5*r.Float64(),
			Affected: faults.Side(int(3 * r.Float64())),
		})
	}
	if r.Float64() < 0.5 {
		chain = append(chain, faults.NewSNRCorruptor(-6+12*r.Float64(), 3*r.Float64(), seed*5+2))
	}
	return chain
}

// soakOutcome is everything one soak schedule produced, for the
// determinism cross-check.
type soakOutcome struct {
	stats     mac.Stats
	txDrained units.Joule
	rxDrained units.Joule
	err       string
	frames    int
}

// runSoakSchedule drives one randomized schedule to completion and checks
// the per-run invariants.
func runSoakSchedule(t *testing.T, seed uint64) soakOutcome {
	t.Helper()
	r := rng.New(seed)
	chain := randomChain(r, seed)
	d := units.Meter(0.3 + 2.7*r.Float64())

	cfg := mac.DefaultConfig(phy.NewModel(), d, seed*7+1)
	cfg.Faults = chain
	if r.Float64() < 0.5 {
		cfg.RecomputeFrames = 32
	}
	if r.Float64() < 0.3 {
		// Some schedules also wander, possibly out of range.
		cfg.Walk = sim.LinearWalk{
			Start:    d,
			End:      d + units.Meter(8*r.Float64()),
			Duration: units.Second(0.5 + 2*r.Float64()),
		}
	}
	// Batteries spanning 10 µWh – 1 mWh: some die mid-run (typed
	// exhaustion), most survive.
	tx := energy.NewBattery(units.WattHour(1e-5 * math.Pow(10, 2*r.Float64())))
	rx := energy.NewBattery(units.WattHour(1e-5 * math.Pow(10, 2*r.Float64())))

	out := soakOutcome{}
	s, err := mac.NewSession(cfg, tx, rx)
	if err != nil {
		if !typedFailure(err) {
			t.Fatalf("seed %d: NewSession died untyped: %v", seed, err)
		}
		out.err = err.Error()
		return out
	}
	const maxFrames = 2500
	for out.frames < maxFrames {
		ok, err := s.SendFrame(240)
		out.frames++
		if err != nil {
			if !typedFailure(err) {
				t.Fatalf("seed %d: frame %d died untyped: %v", seed, out.frames, err)
			}
			out.err = err.Error()
			break
		}
		_ = ok
		if s.Dead() {
			break
		}
	}
	st := s.Stats()
	// No negative battery, no over-drain, ever.
	for side, b := range map[string]*energy.Battery{"tx": tx, "rx": rx} {
		if b.Remaining() < 0 {
			t.Errorf("seed %d: %s battery went negative: %v J", seed, side, float64(b.Remaining()))
		}
		if float64(b.Drained()) > float64(b.Capacity())+1e-9 {
			t.Errorf("seed %d: %s drained %v J from a %v J battery", seed, side, float64(b.Drained()), float64(b.Capacity()))
		}
	}
	// No livelock: every frame attempt spent airtime.
	if out.frames > 0 && st.AirTime <= 0 {
		t.Errorf("seed %d: %d frames consumed no air time", seed, out.frames)
	}
	out.stats = st
	out.txDrained, out.rxDrained = tx.Drained(), rx.Drained()
	return out
}

// TestChaosSoakSessions runs ≥50 seeded fault schedules through full MAC
// sessions and re-runs a sample of them to prove the schedules are
// reproducible bit-for-bit.
func TestChaosSoakSessions(t *testing.T) {
	const schedules = 60
	died := 0
	for seed := uint64(0); seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule-%02d", seed), func(t *testing.T) {
			out := runSoakSchedule(t, seed)
			if out.err != "" {
				died++
			}
			if seed%10 != 0 {
				return
			}
			// Determinism: the same seed reproduces the same run exactly.
			again := runSoakSchedule(t, seed)
			if !reflect.DeepEqual(out, again) {
				t.Errorf("seed %d not reproducible:\n first:  %+v\n second: %+v", seed, out, again)
			}
		})
	}
	t.Logf("%d/%d schedules ended in a typed failure", died, schedules)
}

// TestChaosSoakHub: hub runs where one member is faulted — dropped
// carrier or walked out of range — must still deliver the healthy
// members' full loads, and any quarantine must carry a typed error.
func TestChaosSoakHub(t *testing.T) {
	iphone, _ := energy.DeviceByName("iPhone 6S")
	watch, _ := energy.DeviceByName("Apple Watch")
	band, _ := energy.DeviceByName("Nike Fuel Band")
	const horizon = 3600
	for seed := uint64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			r := rng.New(seed + 1000)
			h := hub.New(iphone, nil)
			if err := h.Add(hub.Member{Device: watch, Distance: 0.4, Load: 5000}); err != nil {
				t.Fatal(err)
			}
			if err := h.Add(hub.Member{Device: band, Distance: 0.4, Load: 1000}); err != nil {
				t.Fatal(err)
			}
			victim := hub.Member{Device: watch, Distance: 0.5, Load: 20000}
			if r.Float64() < 0.5 {
				victim.Faults = &faults.Dropout{
					Start:    units.Second(horizon * r.Float64() * 0.5),
					Duration: horizon, // dead for the rest of the run
				}
			} else {
				// The active radio reaches ~1–2 km in this model; walk well
				// past it so the member's rounds genuinely fail.
				victim.Walk = sim.LinearWalk{
					Start:    0.5,
					End:      units.Meter(3000 + 3000*r.Float64()),
					Duration: units.Second(horizon * (0.2 + 0.3*r.Float64())),
				}
			}
			if err := h.Add(victim); err != nil {
				t.Fatal(err)
			}
			res, err := h.Run(horizon, 12)
			if err != nil {
				t.Fatalf("faulted member aborted the run: %v", err)
			}
			for i := 0; i < 2; i++ {
				mr := res.Members[i]
				want := float64(mr.Member.Load) * horizon
				if math.Abs(mr.Bits-want)/want > 0.01 {
					t.Errorf("healthy %s delivered %v of %v bits", mr.Member.Device.Name, mr.Bits, want)
				}
				if mr.Err != nil {
					t.Errorf("healthy %s carries error %v", mr.Member.Device.Name, mr.Err)
				}
			}
			vr := res.Members[2]
			if vr.Quarantined {
				if !errors.Is(vr.Err, hub.ErrMemberQuarantined) {
					t.Errorf("quarantine error untyped: %v", vr.Err)
				}
			}
			if res.Quarantines != 1 {
				t.Errorf("quarantines = %d, want the victim and only the victim", res.Quarantines)
			}
		})
	}
}
