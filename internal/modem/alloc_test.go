//go:build !race

package modem

import (
	"testing"

	"braidio/internal/rng"
)

// TestFramePathZeroAlloc is the allocation-regression gate for the
// frame-level hot path: once the reusable buffers have grown, a full
// modulate→add-noise→detect cycle must allocate nothing. (Skipped under
// the race detector, which instruments allocations; the race gate runs
// the same code via the ordinary tests.)
func TestFramePathZeroAlloc(t *testing.T) {
	r := rng.New(1)
	bits := make([]byte, 512)
	for i := range bits {
		bits[i] = r.Bit()
	}
	var wave []float64
	var det []byte
	// Prime the buffers outside the measured region.
	wave = OOKWaveformInto(wave, bits, 8, 0, 1)
	det, _ = DetectOOKInto(det, wave, 8, 0, 1)

	avg := testing.AllocsPerRun(100, func() {
		wave = OOKWaveformInto(wave, bits, 8, 0, 1)
		for i := range wave {
			wave[i] += 0.05 * r.Norm()
		}
		var consumed int
		det, consumed = DetectOOKInto(det, wave, 8, 0, 1)
		if consumed != len(wave) || len(det) != len(bits) {
			t.Fatal("frame path corrupted")
		}
	})
	if avg != 0 {
		t.Errorf("steady-state frame path allocates %v per op, want 0", avg)
	}
}
