// Package modem implements the modulation and detection layer: OOK/ASK
// (what the backscatter tag and envelope detector speak), binary FSK
// (what the tag uses at higher rates), and the bit-error-rate models that
// the link characterization (Figs. 12 and 13) is built on.
//
// Analytic BER expressions for non-coherent detection are the standard
// ones from digital-communications texts:
//
//	non-coherent OOK : Pb = ½·exp(−γ/4)·(1 + erfc-ish corrections) ≈ ½·exp(−γ/4)
//	non-coherent FSK : Pb = ½·exp(−γ/2)
//	coherent    PSK  : Pb = Q(√(2γ))
//
// where γ is the per-bit SNR. We use the dominant exponential terms; the
// Monte-Carlo detector in this package validates them within the accuracy
// the experiments need.
package modem

import (
	"fmt"
	"math"

	"braidio/internal/par"
	"braidio/internal/rng"
	"braidio/internal/units"
)

// Scheme identifies a modulation / detection scheme.
type Scheme int

// Supported schemes.
const (
	// OOKNonCoherent is on-off keying with envelope detection: the
	// backscatter uplink and the passive-receiver downlink.
	OOKNonCoherent Scheme = iota
	// FSKNonCoherent is binary FSK with non-coherent discrimination,
	// used by the tag's several-MHz-clock FSK option.
	FSKNonCoherent
	// PSKCoherent is coherent BPSK, the active radio's class of
	// detection.
	PSKCoherent
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case OOKNonCoherent:
		return "OOK(non-coherent)"
	case FSKNonCoherent:
		return "FSK(non-coherent)"
	case PSKCoherent:
		return "PSK(coherent)"
	case QAM16Coherent:
		return "16-QAM(coherent)"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BER returns the analytic bit error rate for a given per-bit SNR
// (linear). SNR ≤ 0 yields 0.5 (pure guessing).
func BER(s Scheme, snr float64) float64 {
	if snr <= 0 {
		return 0.5
	}
	var p float64
	switch s {
	case OOKNonCoherent:
		// Optimal-threshold envelope detection of OOK.
		p = 0.5 * math.Exp(-snr/4)
	case FSKNonCoherent:
		p = 0.5 * math.Exp(-snr/2)
	case PSKCoherent:
		p = qfunc(math.Sqrt(2 * snr))
	case QAM16Coherent:
		p = qam16BER(snr)
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
	if p > 0.5 {
		p = 0.5
	}
	return p
}

// BERFromDB is BER with the SNR given in dB.
func BERFromDB(s Scheme, snr units.DB) float64 { return BER(s, snr.Ratio()) }

// SNRForBER inverts BER: the per-bit SNR (linear) needed to reach a
// target error rate. It panics for targets outside (0, 0.5).
func SNRForBER(s Scheme, target float64) float64 {
	if target <= 0 || target >= 0.5 {
		panic(fmt.Sprintf("modem: BER target %v outside (0, 0.5)", target))
	}
	switch s {
	case OOKNonCoherent:
		return -4 * math.Log(2*target)
	case FSKNonCoherent:
		return -2 * math.Log(2*target)
	case PSKCoherent, QAM16Coherent:
		// Bisection on the monotone tail expressions.
		lo, hi := 0.0, 1000.0
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if BER(s, mid) > target {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
}

// Waveform synthesis: the tag's view of a bit stream as envelope samples.

// OOKWaveform expands bits into an envelope waveform with the given
// samples per bit and high/low levels (e.g. the two reflection states of
// the RF transistor).
func OOKWaveform(bits []byte, samplesPerBit int, low, high float64) []float64 {
	return OOKWaveformInto(nil, bits, samplesPerBit, low, high)
}

// OOKWaveformInto is OOKWaveform writing into dst's storage: the result
// reuses dst's capacity when it suffices (zero allocations steady-state)
// and is freshly allocated otherwise. Pass the previous return value back
// in to amortize the buffer across frames.
func OOKWaveformInto(dst []float64, bits []byte, samplesPerBit int, low, high float64) []float64 {
	if samplesPerBit < 1 {
		panic("modem: samplesPerBit must be ≥ 1")
	}
	n := len(bits) * samplesPerBit
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i, b := range bits {
		level := low
		if b != 0 {
			level = high
		}
		period := dst[i*samplesPerBit : (i+1)*samplesPerBit]
		for s := range period {
			period[s] = level
		}
	}
	return dst
}

// DetectOOK integrates each bit period of a (possibly noisy) envelope
// waveform and slices against the midpoint threshold, returning the
// recovered bits.
//
// Truncation contract: only complete bit periods are decoded. A trailing
// partial period (the last len(wave) % samplesPerBit samples) carries no
// decidable bit and is silently discarded; callers that need to resume
// mid-stream should use DetectOOKInto, which reports how many samples
// were consumed so the remainder can be carried into the next call.
func DetectOOK(wave []float64, samplesPerBit int, low, high float64) []byte {
	bits, _ := DetectOOKInto(nil, wave, samplesPerBit, low, high)
	return bits
}

// DetectOOKInto is DetectOOK writing into dst's storage, returning the
// recovered bits and the number of samples consumed (always a multiple
// of samplesPerBit; the unconsumed tail wave[consumed:] is a partial bit
// period awaiting more samples). The result reuses dst's capacity when
// it suffices and is freshly allocated otherwise.
func DetectOOKInto(dst []byte, wave []float64, samplesPerBit int, low, high float64) (bits []byte, consumed int) {
	if samplesPerBit < 1 {
		panic("modem: samplesPerBit must be ≥ 1")
	}
	n := len(wave) / samplesPerBit
	threshold := (low + high) / 2
	if cap(dst) < n {
		dst = make([]byte, n)
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		period := wave[i*samplesPerBit : (i+1)*samplesPerBit]
		sum := 0.0
		for _, v := range period {
			sum += v
		}
		if sum/float64(samplesPerBit) > threshold {
			dst[i] = 1
		} else {
			dst[i] = 0
		}
	}
	return dst, n * samplesPerBit
}

// MonteCarloBER estimates the OOK envelope-detection error rate at a
// per-bit SNR by simulating transmission of n random bits through an
// additive-noise envelope channel with single-sample-per-bit matched
// integration. It exists to validate the analytic model; agreement within
// a factor of ~2 in the 1e-1..1e-4 regime is expected for the simplified
// detector.
//
// The n bits are drawn in fixed 64 Ki shards, shard i from the i-th
// Jump-chained substream of the passed stream's current state — exactly
// the layout MonteCarloBERParallel uses — so the sequential and parallel
// estimators are bit-identical: MonteCarloBER(s, snr, n, rng.New(seed))
// == MonteCarloBERParallel(s, snr, n, seed, w) for every worker count w.
// The stream is advanced by one Jump (2^128 steps) per shard, so
// successive calls on one stream still draw disjoint sequences.
func MonteCarloBER(s Scheme, snr float64, n int, stream *rng.Stream) float64 {
	if n <= 0 {
		panic("modem: non-positive sample count")
	}
	if stream == nil {
		panic("modem: nil stream")
	}
	if snr <= 0 {
		return 0.5
	}
	shards := (n + mcShardBits - 1) / mcShardBits
	total := 0
	for i := 0; i < shards; i++ {
		size := mcShardBits
		if i == shards-1 {
			size = n - (shards-1)*mcShardBits
		}
		// Stack copy of the shard's substream start state; the original
		// jumps past it, mirroring rng.Substreams' Clone-then-Jump chain
		// without allocating.
		sub := *stream
		total += monteCarloErrors(s, snr, size, &sub)
		stream.Jump()
	}
	return float64(total) / float64(n)
}

// monteCarloErrors simulates n bits through the scheme's envelope/noise
// channel on the given stream and returns the error count. It is the
// shared core of the sequential MonteCarloBER and the sharded
// MonteCarloBERParallel; the draw sequence per (scheme, n, stream) is
// part of the golden contract.
func monteCarloErrors(s Scheme, snr float64, n int, stream *rng.Stream) int {
	errs := 0
	switch s {
	case OOKNonCoherent:
		// Envelope detection: "on" bits ride a Rician envelope, "off"
		// bits a Rayleigh envelope; threshold at half the signal
		// amplitude (the practical comparator setting).
		amp := math.Sqrt(2 * snr) // signal amplitude for unit-σ noise
		th := amp / 2
		for i := 0; i < n; i++ {
			bit := stream.Bool()
			var env float64
			if bit {
				env = stream.Rician(amp, 1)
			} else {
				env = stream.Rayleigh(1)
			}
			if (env > th) != bit {
				errs++
			}
		}
	case FSKNonCoherent:
		// Two envelope branches; the bit selects which branch carries
		// the tone, and the detector picks the larger envelope.
		amp := math.Sqrt(2 * snr)
		for i := 0; i < n; i++ {
			bit := stream.Bool()
			var b0, b1 float64
			if bit {
				b1 = stream.Rician(amp, 1)
				b0 = stream.Rayleigh(1)
			} else {
				b0 = stream.Rician(amp, 1)
				b1 = stream.Rayleigh(1)
			}
			if (b1 > b0) != bit {
				errs++
			}
		}
	case PSKCoherent:
		// Antipodal signaling in Gaussian noise.
		amp := math.Sqrt(2 * snr)
		for i := 0; i < n; i++ {
			bit := stream.Bool()
			sig := amp
			if !bit {
				sig = -amp
			}
			if (sig+stream.Norm() > 0) != bit {
				errs++
			}
		}
	default:
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
	return errs
}

// mcShardBits is the fixed Monte-Carlo shard size. The shard layout for
// n bits — how many shards, each shard's size, and each shard's rng
// substream — is a pure function of (n, seed), never of the worker
// count, so a sweep's result is byte-identical whether it runs on one
// core or sixty-four. 64 Ki bits per shard keeps per-shard dispatch
// overhead ≪ 1% while still splitting the experiment-sized runs
// (400k–1M bits) into enough pieces to load every core.
const mcShardBits = 1 << 16

// MonteCarloBERParallel estimates the same error rate as MonteCarloBER
// but shards the n bits over a GOMAXPROCS-bounded worker pool (workers
// <= 0 selects GOMAXPROCS). Each shard draws from its own rng substream
// (rng.Substreams: 2^128-step Jump offsets of the seed, the
// reader-side sharding discipline of the WISP/backscatter simulators),
// and shard error counts merge in index order. The result is a
// deterministic function of (s, snr, n, seed) alone, byte-identical to
// the sequential MonteCarloBER(s, snr, n, rng.New(seed)) — the golden
// bit-identity test pins the sequential path against every worker
// count.
func MonteCarloBERParallel(s Scheme, snr float64, n int, seed uint64, workers int) float64 {
	if n <= 0 {
		panic("modem: non-positive sample count")
	}
	switch s {
	case OOKNonCoherent, FSKNonCoherent, PSKCoherent:
	default:
		// Reject on the caller's goroutine, not inside a worker.
		panic(fmt.Sprintf("modem: unknown scheme %d", int(s)))
	}
	if snr <= 0 {
		return 0.5
	}
	shards := (n + mcShardBits - 1) / mcShardBits
	streams := rng.Substreams(seed, shards)
	errs := make([]int, shards)
	par.For(workers, shards, func(i int) {
		size := mcShardBits
		if i == shards-1 {
			size = n - (shards-1)*mcShardBits
		}
		errs[i] = monteCarloErrors(s, snr, size, streams[i])
	})
	total := 0
	for _, e := range errs {
		total += e
	}
	return float64(total) / float64(n)
}

// SchemeForMode returns the detection scheme each Braidio mode uses:
// the active link is a coherent radio; both envelope-detected links are
// non-coherent OOK.
func SchemeForMode(passiveOrBackscatter bool) Scheme {
	if passiveOrBackscatter {
		return OOKNonCoherent
	}
	return PSKCoherent
}

// QAM16Coherent is 16-QAM with coherent detection — the high-order
// backscatter modulation of Thomas & Reynolds [48] that quadruples
// throughput per symbol. Added as an extension; Braidio's prototype
// links are binary.
const QAM16Coherent Scheme = 3

// QAM16BitsPerSymbol is the spectral advantage over the binary schemes.
const QAM16BitsPerSymbol = 4

// qam16BER returns the standard Gray-coded 16-QAM bit error
// approximation: Pb ≈ (3/4)·Q(√(0.8·γb)).
func qam16BER(snr float64) float64 {
	p := 0.75 * qfunc(math.Sqrt(0.8*snr))
	if p > 0.5 {
		p = 0.5
	}
	return p
}
