package modem

import (
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/rng"
	"braidio/internal/units"
)

func TestBERBoundaries(t *testing.T) {
	for _, s := range []Scheme{OOKNonCoherent, FSKNonCoherent, PSKCoherent} {
		if got := BER(s, 0); got != 0.5 {
			t.Errorf("%v: BER at zero SNR = %v, want 0.5", s, got)
		}
		if got := BER(s, -3); got != 0.5 {
			t.Errorf("%v: BER at negative SNR = %v, want 0.5", s, got)
		}
		if got := BER(s, 1e6); got > 1e-12 {
			t.Errorf("%v: BER at huge SNR = %v, want ≈0", s, got)
		}
	}
}

func TestBERMonotoneDecreasing(t *testing.T) {
	for _, s := range []Scheme{OOKNonCoherent, FSKNonCoherent, PSKCoherent} {
		f := func(raw uint16) bool {
			snr := float64(raw%1000)/10 + 0.1
			return BER(s, snr+1) < BER(s, snr)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", s, err)
		}
	}
}

// TestSchemeOrdering: at the same SNR, coherent PSK beats non-coherent
// FSK, which beats non-coherent OOK — the robustness hierarchy behind the
// modes' different ranges.
func TestSchemeOrdering(t *testing.T) {
	for _, snr := range []float64{4, 8, 16} {
		ook := BER(OOKNonCoherent, snr)
		fsk := BER(FSKNonCoherent, snr)
		psk := BER(PSKCoherent, snr)
		if !(psk < fsk && fsk < ook) {
			t.Errorf("snr=%v: ordering violated: psk=%v fsk=%v ook=%v", snr, psk, fsk, ook)
		}
	}
}

func TestSNRForBERInverts(t *testing.T) {
	for _, s := range []Scheme{OOKNonCoherent, FSKNonCoherent, PSKCoherent} {
		for _, target := range []float64{1e-2, 1e-3, 1e-4} {
			snr := SNRForBER(s, target)
			if got := BER(s, snr); math.Abs(math.Log10(got)-math.Log10(target)) > 0.02 {
				t.Errorf("%v target %v: BER(SNRForBER) = %v", s, target, got)
			}
		}
	}
}

func TestSNRForBERKnownValue(t *testing.T) {
	// OOK at 1% BER: γ = −4·ln(0.02) ≈ 15.6 (≈11.9 dB).
	got := SNRForBER(OOKNonCoherent, 0.01)
	if math.Abs(got-15.65) > 0.05 {
		t.Errorf("OOK SNR@1%% = %v, want ≈15.65", got)
	}
}

func TestSNRForBERPanics(t *testing.T) {
	for _, bad := range []float64{0, 0.5, 1, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("target %v did not panic", bad)
				}
			}()
			SNRForBER(OOKNonCoherent, bad)
		}()
	}
}

func TestBERFromDB(t *testing.T) {
	if got, want := BERFromDB(OOKNonCoherent, 10), BER(OOKNonCoherent, 10.0); got != want {
		t.Errorf("BERFromDB(10 dB) = %v, want BER(10×) = %v", got, want)
	}
	_ = units.DB(0)
}

func TestOOKWaveformRoundTrip(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0}
	wave := OOKWaveform(bits, 8, 0.1, 1.0)
	if len(wave) != len(bits)*8 {
		t.Fatalf("waveform length %d, want %d", len(wave), len(bits)*8)
	}
	got := DetectOOK(wave, 8, 0.1, 1.0)
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("noiseless round trip corrupted bit %d", i)
		}
	}
}

func TestOOKWaveformRoundTripNoisy(t *testing.T) {
	r := rng.New(1)
	bits := make([]byte, 512)
	for i := range bits {
		bits[i] = r.Bit()
	}
	wave := OOKWaveform(bits, 16, 0, 1)
	for i := range wave {
		wave[i] += 0.15 * r.Norm()
	}
	got := DetectOOK(wave, 16, 0, 1)
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	// Integration over 16 samples cuts the effective noise to σ/4;
	// errors should be essentially zero.
	if errs > 2 {
		t.Errorf("%d errors out of %d at high SNR", errs, len(bits))
	}
}

func TestOOKRoundTripProperty(t *testing.T) {
	f := func(raw []byte, spbRaw uint8) bool {
		spb := int(spbRaw%8) + 1
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		wave := OOKWaveform(bits, spb, 0, 1)
		got := DetectOOK(wave, spb, 0, 1)
		if len(got) != len(bits) {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMonteCarloValidatesAnalytic runs the simulated detector against the
// analytic expressions in the regime the experiments use.
func TestMonteCarloValidatesAnalytic(t *testing.T) {
	r := rng.New(99)
	for _, s := range []Scheme{OOKNonCoherent, FSKNonCoherent, PSKCoherent} {
		for _, snr := range []float64{6, 10, 16} {
			analytic := BER(s, snr)
			if analytic < 5e-5 {
				continue // would need too many samples
			}
			mc := MonteCarloBER(s, snr, 400000, r)
			ratio := mc / analytic
			if ratio < 0.3 || ratio > 3 {
				t.Errorf("%v snr=%v: Monte-Carlo %v vs analytic %v (ratio %v)", s, snr, mc, analytic, ratio)
			}
		}
	}
}

func TestMonteCarloZeroSNR(t *testing.T) {
	r := rng.New(5)
	if got := MonteCarloBER(OOKNonCoherent, 0, 100, r); got != 0.5 {
		t.Errorf("MC at zero SNR = %v, want 0.5", got)
	}
}

func TestMonteCarloPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":        func() { MonteCarloBER(OOKNonCoherent, 1, 0, rng.New(1)) },
		"nil stream": func() { MonteCarloBER(OOKNonCoherent, 1, 10, nil) },
		"bad scheme": func() { MonteCarloBER(Scheme(99), 1, 10, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSchemeString(t *testing.T) {
	if OOKNonCoherent.String() == "" || Scheme(42).String() == "" {
		t.Error("empty scheme names")
	}
}

func TestSchemeForMode(t *testing.T) {
	if SchemeForMode(true) != OOKNonCoherent {
		t.Error("passive/backscatter should use OOK envelope detection")
	}
	if SchemeForMode(false) != PSKCoherent {
		t.Error("active should use coherent detection")
	}
}

func TestWaveformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("samplesPerBit=0 did not panic")
		}
	}()
	OOKWaveform([]byte{1}, 0, 0, 1)
}

func BenchmarkAnalyticBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = BER(OOKNonCoherent, 12.3)
	}
}

func BenchmarkMonteCarloBER(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		_ = MonteCarloBER(OOKNonCoherent, 10, 1000, r)
	}
}

// TestQAM16 pins the extension modulation: at the same per-bit SNR,
// 16-QAM errs more than BPSK (denser constellation) but carries 4
// bits/symbol; SNRForBER inverts it like the others.
func TestQAM16(t *testing.T) {
	for _, snr := range []float64{4, 10, 20} {
		if BER(QAM16Coherent, snr) <= BER(PSKCoherent, snr) {
			t.Errorf("snr %v: 16-QAM should err more than BPSK", snr)
		}
	}
	for _, target := range []float64{1e-2, 1e-4} {
		snr := SNRForBER(QAM16Coherent, target)
		if got := BER(QAM16Coherent, snr); math.Abs(math.Log10(got)-math.Log10(target)) > 0.02 {
			t.Errorf("target %v: BER(SNRForBER) = %v", target, got)
		}
	}
	if QAM16Coherent.String() == "" {
		t.Error("empty scheme name")
	}
	if QAM16BitsPerSymbol != 4 {
		t.Error("16-QAM carries 4 bits/symbol")
	}
	if got := BER(QAM16Coherent, 0); got != 0.5 {
		t.Errorf("zero-SNR BER = %v", got)
	}
}

// TestDetectOOKTruncatesPartialBit pins the truncation contract: a
// trailing partial bit period decodes no bit, and DetectOOKInto reports
// exactly the whole-period sample count as consumed.
func TestDetectOOKTruncatesPartialBit(t *testing.T) {
	bits := []byte{1, 0, 1}
	wave := OOKWaveform(bits, 8, 0, 1)
	// Append 5 samples of a fourth, partial bit period.
	partial := append(append([]float64{}, wave...), 1, 1, 1, 1, 1)
	got := DetectOOK(partial, 8, 0, 1)
	if len(got) != len(bits) {
		t.Fatalf("decoded %d bits from %d samples, want %d (partial period discarded)", len(got), len(partial), len(bits))
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d corrupted", i)
		}
	}
	dec, consumed := DetectOOKInto(nil, partial, 8, 0, 1)
	if consumed != len(bits)*8 {
		t.Errorf("consumed %d samples, want %d", consumed, len(bits)*8)
	}
	if len(partial)-consumed != 5 {
		t.Errorf("unconsumed tail %d samples, want the 5 partial-period samples", len(partial)-consumed)
	}
	if len(dec) != len(bits) {
		t.Errorf("DetectOOKInto decoded %d bits, want %d", len(dec), len(bits))
	}
	// An exact multiple consumes everything.
	if _, consumed := DetectOOKInto(nil, wave, 8, 0, 1); consumed != len(wave) {
		t.Errorf("full periods: consumed %d of %d", consumed, len(wave))
	}
	// Fewer samples than one period: nothing decoded, nothing consumed.
	if dec, consumed := DetectOOKInto(nil, wave[:7], 8, 0, 1); len(dec) != 0 || consumed != 0 {
		t.Errorf("sub-period input decoded %d bits, consumed %d", len(dec), consumed)
	}
}

// TestIntoVariantsMatchAndReuse: the Into variants produce identical
// results to the allocating functions and reuse caller buffers.
func TestIntoVariantsMatchAndReuse(t *testing.T) {
	r := rng.New(3)
	bits := make([]byte, 257)
	for i := range bits {
		bits[i] = r.Bit()
	}
	want := OOKWaveform(bits, 8, 0.1, 0.9)
	waveBuf := make([]float64, 0, len(bits)*8)
	got := OOKWaveformInto(waveBuf, bits, 8, 0.1, 0.9)
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	if &got[0] != &waveBuf[:1][0] {
		t.Error("OOKWaveformInto did not reuse the caller's buffer")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	for i := range got {
		got[i] += 0.02 * r.Norm()
	}
	wantBits := DetectOOK(got, 8, 0.1, 0.9)
	bitBuf := make([]byte, 0, len(bits))
	gotBits, consumed := DetectOOKInto(bitBuf, got, 8, 0.1, 0.9)
	if consumed != len(got) {
		t.Fatalf("consumed %d of %d", consumed, len(got))
	}
	if len(gotBits) != len(wantBits) {
		t.Fatalf("bit count %d vs %d", len(gotBits), len(wantBits))
	}
	if &gotBits[0] != &bitBuf[:1][0] {
		t.Error("DetectOOKInto did not reuse the caller's buffer")
	}
	for i := range wantBits {
		if gotBits[i] != wantBits[i] {
			t.Fatalf("bit %d differs", i)
		}
	}
}

// TestMonteCarloBERParallelBitIdentical is the golden bit-identity test
// for the sharded sweep: any worker count must reproduce the sequential
// MonteCarloBER result exactly, for sizes below, at, and straddling
// shard boundaries.
func TestMonteCarloBERParallelBitIdentical(t *testing.T) {
	for _, s := range []Scheme{OOKNonCoherent, FSKNonCoherent, PSKCoherent} {
		for _, n := range []int{100, 65536, 65537, 200001} {
			want := MonteCarloBER(s, 8, n, rng.New(77))
			if got := MonteCarloBERParallel(s, 8, n, 77, 1); got != want {
				t.Fatalf("%v n=%d: workers=1 gave %v, sequential gave %v", s, n, got, want)
			}
			for _, workers := range []int{2, 3, 7, 16, 0} {
				if got := MonteCarloBERParallel(s, 8, n, 77, workers); got != want {
					t.Fatalf("%v n=%d: workers=%d gave %v, workers=1 gave %v", s, n, workers, got, want)
				}
			}
		}
	}
}

// TestMonteCarloBERParallelMatchesShardLoop pins the shard layout
// itself: the parallel result equals summing monteCarloErrors over
// explicit 64 Ki shards drawn from rng.Substreams in index order.
func TestMonteCarloBERParallelMatchesShardLoop(t *testing.T) {
	const n, seed = 150000, 12345
	streams := rng.Substreams(seed, 3) // ceil(150000/65536) = 3 shards
	errs := 0
	for i, size := range []int{65536, 65536, n - 2*65536} {
		errs += monteCarloErrors(OOKNonCoherent, 9, size, streams[i])
	}
	want := float64(errs) / float64(n)
	if got := MonteCarloBERParallel(OOKNonCoherent, 9, n, seed, 4); got != want {
		t.Fatalf("parallel %v vs explicit shard loop %v", got, want)
	}
}

func TestMonteCarloBERParallelValidatesAnalytic(t *testing.T) {
	for _, s := range []Scheme{OOKNonCoherent, FSKNonCoherent, PSKCoherent} {
		for _, snr := range []float64{6, 10} {
			analytic := BER(s, snr)
			if analytic < 5e-5 {
				continue
			}
			mc := MonteCarloBERParallel(s, snr, 400000, 99, 0)
			if ratio := mc / analytic; ratio < 0.3 || ratio > 3 {
				t.Errorf("%v snr=%v: parallel Monte-Carlo %v vs analytic %v", s, snr, mc, analytic)
			}
		}
	}
}

func TestMonteCarloBERParallelEdges(t *testing.T) {
	if got := MonteCarloBERParallel(OOKNonCoherent, 0, 100, 1, 4); got != 0.5 {
		t.Errorf("zero SNR = %v, want 0.5", got)
	}
	for name, f := range map[string]func(){
		"n=0":        func() { MonteCarloBERParallel(OOKNonCoherent, 1, 0, 1, 4) },
		"bad scheme": func() { MonteCarloBERParallel(Scheme(99), 1, 10, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func BenchmarkMonteCarloBERSequential1M(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MonteCarloBER(OOKNonCoherent, 10, 1_000_000, r)
	}
}

func BenchmarkMonteCarloBERParallel1M(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MonteCarloBERParallel(OOKNonCoherent, 10, 1_000_000, 1, 0)
	}
}
