package energy

import (
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/units"
)

func TestBatteryBasics(t *testing.T) {
	b := NewBattery(1) // 1 Wh = 3600 J
	if b.Capacity() != 3600 || b.Remaining() != 3600 {
		t.Fatalf("capacity/remaining = %v/%v, want 3600/3600", b.Capacity(), b.Remaining())
	}
	if !b.Drain(600) {
		t.Error("drain within budget returned false")
	}
	if b.Remaining() != 3000 || b.Drained() != 600 {
		t.Errorf("remaining/drained = %v/%v, want 3000/600", b.Remaining(), b.Drained())
	}
	if got := b.Fraction(); math.Abs(got-3000.0/3600) > 1e-12 {
		t.Errorf("fraction = %v", got)
	}
	if b.Empty() {
		t.Error("battery with charge reports empty")
	}
}

func TestBatteryOverdraw(t *testing.T) {
	b := NewBattery(0.001) // 3.6 J
	if b.Drain(10) {
		t.Error("overdraw returned true")
	}
	if !b.Empty() || b.Remaining() != 0 {
		t.Errorf("overdrawn battery: remaining %v", b.Remaining())
	}
	if b.Drained() != 3.6 {
		t.Errorf("drained = %v, want exactly the capacity", b.Drained())
	}
}

func TestBatteryConservationProperty(t *testing.T) {
	f := func(draws []uint16) bool {
		b := NewBattery(0.01) // 36 J
		for _, d := range draws {
			b.Drain(units.Joule(float64(d) / 1000))
		}
		total := float64(b.Remaining() + b.Drained())
		return math.Abs(total-36) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDrainPowerAndTimeLeft(t *testing.T) {
	b := NewBattery(0.1) // 360 J
	if got := b.TimeLeft(1); got != 360 {
		t.Errorf("TimeLeft(1 W) = %v, want 360 s", got)
	}
	b.DrainPower(0.5, 100) // 50 J
	if b.Remaining() != 310 {
		t.Errorf("remaining = %v, want 310", b.Remaining())
	}
	if got := b.TimeLeft(0); !math.IsInf(float64(got), 1) {
		t.Errorf("TimeLeft at zero power = %v, want +Inf", got)
	}
}

func TestTelemetry(t *testing.T) {
	b := NewBattery(1)
	if got := b.Telemetry(); got != 255 {
		t.Errorf("full telemetry = %d, want 255", got)
	}
	b.Drain(1800)
	if got := b.Telemetry(); got != 128 {
		t.Errorf("half telemetry = %d, want 128", got)
	}
	b.Drain(1e9)
	if got := b.Telemetry(); got != 0 {
		t.Errorf("empty telemetry = %d, want 0", got)
	}
}

func TestNewBatteryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewBattery(0)
}

func TestNegativeDrainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative drain did not panic")
		}
	}()
	NewBattery(1).Drain(-1)
}

func TestCatalogMatchesFig1(t *testing.T) {
	if len(Catalog) != 10 {
		t.Fatalf("catalog has %d devices, want the 10 of Fig. 1", len(Catalog))
	}
	// The catalog must be ordered smallest to largest, like the figure.
	for i := 1; i < len(Catalog); i++ {
		if Catalog[i].Capacity <= Catalog[i-1].Capacity {
			t.Errorf("catalog out of order at %s", Catalog[i].Name)
		}
	}
	// "Three orders of magnitude between laptops and wearables."
	if span := CapacitySpan(); span < 300 || span > 3000 {
		t.Errorf("capacity span = %v, want roughly three orders of magnitude", span)
	}
	// Spot checks against the intro's claims: laptop ≈ two orders above
	// a smartwatch, one order above a phone.
	mbp, _ := DeviceByName("MacBook Pro 15")
	watch, _ := DeviceByName("Apple Watch")
	phone, _ := DeviceByName("iPhone 6S")
	if r := float64(mbp.Capacity / watch.Capacity); r < 50 || r > 300 {
		t.Errorf("laptop/watch ratio = %v, want ~two orders", r)
	}
	if r := float64(mbp.Capacity / phone.Capacity); r < 5 || r > 50 {
		t.Errorf("laptop/phone ratio = %v, want ~one order", r)
	}
}

func TestDeviceByName(t *testing.T) {
	d, ok := DeviceByName("Pebble Watch")
	if !ok || d.Capacity != 0.48 {
		t.Errorf("Pebble lookup = %+v, %v", d, ok)
	}
	if _, ok := DeviceByName("Nokia 3310"); ok {
		t.Error("unknown device found")
	}
	b := d.NewBattery()
	if b.Capacity() != d.Capacity.Joules() {
		t.Error("device battery capacity mismatch")
	}
}

func TestProportionality(t *testing.T) {
	// Perfect proportionality: drains in exactly the budget ratio.
	if got := Proportionality(100, 10, 1000, 100); got != 0 {
		t.Errorf("perfect proportionality = %v, want 0", got)
	}
	// Off by 2× in either direction gives the same (symmetric) score.
	a := Proportionality(200, 10, 1000, 100)
	b := Proportionality(50, 10, 1000, 100)
	if math.Abs(a-b) > 1e-12 || math.Abs(a-math.Log(2)) > 1e-12 {
		t.Errorf("asymmetric scores %v, %v; want both ln 2", a, b)
	}
	defer func() {
		if recover() == nil {
			t.Error("zero drain did not panic")
		}
	}()
	Proportionality(0, 1, 1, 1)
}

func TestLifetimeWithSelfDischarge(t *testing.T) {
	e := units.Joule(720) // the Fuel Band
	// No leak: exactly e/p.
	if got := LifetimeWithSelfDischarge(e, 1e-3, 0); math.Abs(float64(got)-720000) > 1 {
		t.Errorf("leak-free lifetime = %v, want 7.2e5 s", got)
	}
	// With a 2.5%/month leak, a 16.5 µW draw no longer lasts the naive
	// 500+ days; self-discharge dominates and caps it near the leak
	// time constant.
	naive := float64(units.Duration(e, 16.5e-6)) / 86400
	leaky := float64(LifetimeWithSelfDischarge(e, 16.5e-6, 0.025)) / 86400
	if naive < 500 {
		t.Fatalf("premise: naive lifetime = %v days", naive)
	}
	if leaky >= naive*0.9 {
		t.Errorf("leak barely mattered: %v vs %v days", leaky, naive)
	}
	if leaky < 100 || leaky > naive {
		t.Errorf("leaky lifetime = %v days, want substantial but reduced", leaky)
	}
	// Monotone in leak.
	l1 := LifetimeWithSelfDischarge(e, 1e-4, 0.01)
	l2 := LifetimeWithSelfDischarge(e, 1e-4, 0.05)
	if l2 >= l1 {
		t.Errorf("more leak gave longer life: %v vs %v", l2, l1)
	}
	// Zero draw: infinite by this model.
	if !math.IsInf(float64(LifetimeWithSelfDischarge(e, 0, 0.02)), 1) {
		t.Error("zero-draw lifetime should be +Inf")
	}
	if LifetimeWithSelfDischarge(0, 1, 0.01) != 0 {
		t.Error("empty battery lifetime should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid leak did not panic")
		}
	}()
	LifetimeWithSelfDischarge(e, 1, 1.5)
}
