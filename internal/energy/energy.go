// Package energy models the batteries whose asymmetry motivates Braidio:
// capacity accounting, drain tracking, the device catalog of Fig. 1, and
// the power-proportionality metric the carrier-offload algorithm targets.
package energy

import (
	"fmt"
	"math"

	"braidio/internal/units"
)

// Battery is an energy budget being drained. The zero value is an empty
// battery; use NewBattery.
type Battery struct {
	capacity  units.Joule
	remaining units.Joule
	drained   units.Joule
}

// NewBattery returns a full battery of the given capacity.
func NewBattery(capacity units.WattHour) *Battery {
	if capacity <= 0 {
		panic(fmt.Sprintf("energy: non-positive capacity %v Wh", float64(capacity)))
	}
	j := capacity.Joules()
	return &Battery{capacity: j, remaining: j}
}

// Capacity returns the battery's full capacity.
func (b *Battery) Capacity() units.Joule { return b.capacity }

// Remaining returns the remaining energy.
func (b *Battery) Remaining() units.Joule { return b.remaining }

// Drained returns the cumulative energy drawn.
func (b *Battery) Drained() units.Joule { return b.drained }

// Fraction returns the remaining fraction in [0, 1].
func (b *Battery) Fraction() float64 {
	if b.capacity == 0 {
		return 0
	}
	return float64(b.remaining / b.capacity)
}

// Empty reports whether the battery is exhausted.
func (b *Battery) Empty() bool { return b.remaining <= 0 }

// Drain removes energy from the battery. Draining more than remains
// empties the battery and returns false; the overdraw is not recorded (a
// real device browns out). Negative drains panic.
func (b *Battery) Drain(e units.Joule) bool {
	if e < 0 {
		panic(fmt.Sprintf("energy: negative drain %v J", float64(e)))
	}
	if e > b.remaining {
		b.drained += b.remaining
		b.remaining = 0
		return false
	}
	b.remaining -= e
	b.drained += e
	return true
}

// DrainPower drains at constant power for a duration.
func (b *Battery) DrainPower(p units.Watt, t units.Second) bool {
	return b.Drain(units.Energy(p, t))
}

// TimeLeft returns how long the battery lasts at a constant power draw.
func (b *Battery) TimeLeft(p units.Watt) units.Second {
	return units.Duration(b.remaining, p)
}

// Telemetry quantizes the remaining fraction to the 8-bit field carried
// in frame headers for the offload exchange.
func (b *Battery) Telemetry() uint8 {
	return uint8(math.Round(b.Fraction() * 255))
}

// Device is an entry of the Fig. 1 catalog.
type Device struct {
	// Name as the paper labels it.
	Name string
	// Capacity is the battery capacity in watt-hours. Values are from
	// the public teardowns/spec sheets the paper cites ([3]–[17]);
	// where a product line spans capacities we use the value consistent
	// with Fig. 1's log-scale placement.
	Capacity units.WattHour
	// Class is a coarse grouping used in reports.
	Class string
}

// NewBattery returns a full battery for the device.
func (d Device) NewBattery() *Battery { return NewBattery(d.Capacity) }

// Catalog is the Fig. 1 device list in the paper's order (smallest to
// largest battery).
var Catalog = []Device{
	{Name: "Nike Fuel Band", Capacity: 0.20, Class: "wearable"},
	{Name: "Pebble Watch", Capacity: 0.48, Class: "wearable"},
	{Name: "Apple Watch", Capacity: 0.78, Class: "wearable"},
	{Name: "Pivothead", Capacity: 1.63, Class: "wearable"},
	{Name: "iPhone 6S", Capacity: 6.55, Class: "phone"},
	{Name: "iPhone 6 Plus", Capacity: 11.1, Class: "phone"},
	{Name: "Nexus 6P", Capacity: 13.26, Class: "phone"},
	{Name: "Surface Book", Capacity: 70.0, Class: "laptop"},
	{Name: "MacBook Pro 13", Capacity: 74.9, Class: "laptop"},
	{Name: "MacBook Pro 15", Capacity: 99.5, Class: "laptop"},
}

// DeviceByName looks up a catalog entry.
func DeviceByName(name string) (Device, bool) {
	for _, d := range Catalog {
		if d.Name == name {
			return d, true
		}
	}
	return Device{}, false
}

// CapacitySpan returns the catalog's max/min capacity ratio — the "three
// orders of magnitude" the introduction leads with.
func CapacitySpan() float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, d := range Catalog {
		c := float64(d.Capacity)
		min = math.Min(min, c)
		max = math.Max(max, c)
	}
	return max / min
}

// Proportionality measures how closely two drains match a target energy
// ratio: it returns |log((d1/d2)/(e1/e2))|, zero when the split is
// perfectly power-proportional. Both drains must be positive.
func Proportionality(drain1, drain2 units.Joule, budget1, budget2 units.Joule) float64 {
	if drain1 <= 0 || drain2 <= 0 || budget1 <= 0 || budget2 <= 0 {
		panic("energy: proportionality needs positive drains and budgets")
	}
	return math.Abs(math.Log(float64(drain1/drain2) / float64(budget1/budget2)))
}

// LifetimeWithSelfDischarge returns how long a battery of energy e lasts
// under a constant external draw p when the cell also self-discharges at
// a fractional rate λ (per second of stored energy):
//
//	dE/dt = −p − λE  ⇒  t_death = ln(1 + λE/p) / λ
//
// As λ→0 this approaches the ideal e/p. Real lithium cells leak roughly
// 2–3% per month, which caps the multi-year "radio-only lifetime"
// numbers microwatt radios otherwise suggest.
func LifetimeWithSelfDischarge(e units.Joule, p units.Watt, leakPerMonth float64) units.Second {
	if e <= 0 {
		return 0
	}
	if p < 0 || leakPerMonth < 0 || leakPerMonth >= 1 {
		panic(fmt.Sprintf("energy: invalid lifetime inputs p=%v leak=%v", float64(p), leakPerMonth))
	}
	const month = 30 * 24 * 3600.0
	lambda := -math.Log(1-leakPerMonth) / month
	if lambda == 0 {
		return units.Duration(e, p)
	}
	if p == 0 {
		return units.Second(math.Inf(1)) // decays asymptotically, never "dies" by draw
	}
	return units.Second(math.Log(1+lambda*float64(e)/float64(p)) / lambda)
}
