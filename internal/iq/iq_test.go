package iq

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromPolarRoundTrip(t *testing.T) {
	p := FromPolar(2, math.Pi/3)
	if !approx(p.Mag(), 2, 1e-12) {
		t.Errorf("Mag = %v, want 2", p.Mag())
	}
	if !approx(p.Phase(), math.Pi/3, 1e-12) {
		t.Errorf("Phase = %v, want π/3", p.Phase())
	}
}

func TestFromPower(t *testing.T) {
	p := FromPower(4, 0)
	if !approx(p.Power(), 4, 1e-12) {
		t.Errorf("Power = %v, want 4", p.Power())
	}
	if !approx(p.Mag(), 2, 1e-12) {
		t.Errorf("Mag = %v, want 2", p.Mag())
	}
	defer func() {
		if recover() == nil {
			t.Error("FromPower(-1, 0) did not panic")
		}
	}()
	FromPower(-1, 0)
}

func TestIQComponents(t *testing.T) {
	p := FromPolar(1, math.Pi/2)
	if !approx(p.I(), 0, 1e-12) || !approx(p.Q(), 1, 1e-12) {
		t.Errorf("I/Q = %v/%v, want 0/1", p.I(), p.Q())
	}
}

func TestRotatePreservesMagnitude(t *testing.T) {
	f := func(mag, phase, rot float64) bool {
		m := math.Abs(math.Mod(mag, 1e6))
		p := FromPolar(m, math.Mod(phase, math.Pi))
		q := p.Rotate(math.Mod(rot, 10*math.Pi))
		return approx(q.Mag(), m, 1e-6*(1+m))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddOpposes(t *testing.T) {
	p := FromPolar(1, 0)
	q := FromPolar(1, math.Pi)
	if got := p.Add(q).Mag(); !approx(got, 0, 1e-12) {
		t.Errorf("destructive sum magnitude = %v, want 0", got)
	}
	if got := p.Sub(q).Mag(); !approx(got, 2, 1e-12) {
		t.Errorf("difference magnitude = %v, want 2", got)
	}
}

func TestScale(t *testing.T) {
	p := FromPolar(3, 1).Scale(2)
	if !approx(p.Mag(), 6, 1e-12) || !approx(p.Phase(), 1, 1e-12) {
		t.Errorf("Scale changed phase or wrong magnitude: %v @ %v", p.Mag(), p.Phase())
	}
}

// TestEnvelopeDeltaOrthogonalNull reproduces the geometry of Fig. 4(a):
// when the tag's differential vector is orthogonal to the background, the
// envelope change collapses; when aligned, it is maximal.
func TestEnvelopeDeltaOrthogonalNull(t *testing.T) {
	bg := FromPolar(10, 0) // strong self-interference along I
	// Tag states symmetric around zero with differential 2·0.1.
	aligned0, aligned1 := FromPolar(0.1, math.Pi), FromPolar(0.1, 0)
	ortho0, ortho1 := FromPolar(0.1, -math.Pi/2), FromPolar(0.1, math.Pi/2)

	da := EnvelopeDelta(bg, aligned0, aligned1)
	do := EnvelopeDelta(bg, ortho0, ortho1)
	if !approx(da, 0.2, 1e-9) {
		t.Errorf("aligned envelope delta = %v, want 0.2", da)
	}
	// Orthogonal: |bg ± j0.1| are equal ⇒ delta ≈ 0.
	if do > 1e-9 {
		t.Errorf("orthogonal envelope delta = %v, want ~0", do)
	}
}

// TestEnvelopeDeltaCosineLaw checks the paper's A = 2cos(θ)|Vtx0| relation
// for a strong background: the detectable amplitude scales with cos θ.
func TestEnvelopeDeltaCosineLaw(t *testing.T) {
	bg := FromPolar(100, 0)
	const amp = 0.05
	for _, theta := range []float64{0, math.Pi / 6, math.Pi / 4, math.Pi / 3, 0.47 * math.Pi} {
		s1 := FromPolar(amp, theta)
		s0 := s1.Scale(-1)
		got := EnvelopeDelta(bg, s0, s1)
		want := 2 * amp * math.Abs(math.Cos(theta))
		if !approx(got, want, 0.02*want+1e-6) {
			t.Errorf("θ=%v: delta = %v, want ≈ %v", theta, got, want)
		}
	}
}

func TestPathPhase(t *testing.T) {
	// Integer wavelengths come back to zero phase.
	if got := PathPhase(3*0.3277, 0.3277); !approx(got, 0, 1e-9) {
		t.Errorf("3λ path phase = %v, want 0", got)
	}
	// Half wavelength is π.
	if got := PathPhase(0.3277/2, 0.3277); !approx(got, math.Pi, 1e-9) {
		t.Errorf("λ/2 path phase = %v, want π", got)
	}
}

func TestPathPhaseRange(t *testing.T) {
	f := func(d float64) bool {
		dist := math.Abs(math.Mod(d, 1000))
		ph := PathPhase(dist, 0.3277)
		return ph >= 0 && ph < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PathPhase with zero wavelength did not panic")
		}
	}()
	PathPhase(1, 0)
}
