// Package iq provides complex-baseband (in-phase/quadrature) signal
// helpers used by the field simulator and the modem. A Phasor is the
// complex amplitude of a narrowband signal; its magnitude squared is
// proportional to power and its argument is the carrier phase.
//
// The phase-cancellation analysis of §3.2 of the paper (Fig. 4 and 5) is
// entirely a statement about phasors: the envelope detector sees only the
// magnitude |V_bg + V_tag|, so when the tag's two states move the resultant
// along a circle centred on the background vector, the magnitude change —
// and hence the detectable signal — collapses as the tag vector becomes
// orthogonal to the background.
package iq

import (
	"math"
	"math/cmplx"
)

// Phasor is a complex baseband amplitude. The convention throughout the
// simulator: |p|² is power in watts (so |p| is in √W), and arg(p) is the
// carrier phase in radians.
type Phasor complex128

// FromPolar builds a phasor from magnitude and phase (radians).
func FromPolar(mag, phase float64) Phasor {
	return Phasor(cmplx.Rect(mag, phase))
}

// FromPower builds a phasor carrying the given power (watts) at the given
// phase. It panics on negative power.
func FromPower(p, phase float64) Phasor {
	if p < 0 {
		panic("iq: negative power")
	}
	return FromPolar(math.Sqrt(p), phase)
}

// Mag returns the magnitude (envelope) of the phasor.
func (p Phasor) Mag() float64 { return cmplx.Abs(complex128(p)) }

// Power returns the power carried by the phasor, |p|².
func (p Phasor) Power() float64 {
	m := p.Mag()
	return m * m
}

// Phase returns the argument in radians, in (-π, π].
func (p Phasor) Phase() float64 { return cmplx.Phase(complex128(p)) }

// Add returns the superposition of two phasors.
func (p Phasor) Add(q Phasor) Phasor { return p + q }

// Sub returns the difference of two phasors.
func (p Phasor) Sub(q Phasor) Phasor { return p - q }

// Scale multiplies the magnitude by a real factor.
func (p Phasor) Scale(k float64) Phasor { return p * Phasor(complex(k, 0)) }

// Rotate advances the phase by the given angle in radians, e.g. the phase
// accumulated over a propagation path.
func (p Phasor) Rotate(rad float64) Phasor {
	return p * Phasor(cmplx.Rect(1, rad))
}

// I returns the in-phase component.
func (p Phasor) I() float64 { return real(complex128(p)) }

// Q returns the quadrature component.
func (p Phasor) Q() float64 { return imag(complex128(p)) }

// EnvelopeDelta returns the change in envelope magnitude seen by a
// non-coherent detector when a backscatter tag switches its reflection
// between states s0 and s1 on top of a static background bg (carrier
// self-interference plus environmental reflections):
//
//	Δ = | |bg + s1| − |bg + s0| |
//
// This is the quantity that collapses at phase-cancellation nulls even
// though |s1 − s0| is unchanged.
func EnvelopeDelta(bg, s0, s1 Phasor) float64 {
	return math.Abs(bg.Add(s1).Mag() - bg.Add(s0).Mag())
}

// PathPhase returns the carrier phase accumulated over a path of the given
// length at the given wavelength: 2π·d/λ, reduced to [0, 2π).
func PathPhase(distance, wavelength float64) float64 {
	if wavelength <= 0 {
		panic("iq: non-positive wavelength")
	}
	turns := distance / wavelength
	frac := turns - math.Floor(turns)
	return 2 * math.Pi * frac
}
