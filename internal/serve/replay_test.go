package serve

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"braidio/internal/units"
)

// captureSession runs a deterministic multi-epoch session with a
// journal attached and returns the captured JSONL.
func captureSession(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := testConfig(nil)
	cfg.Workers = workers
	e := NewEngine(cfg)
	var buf bytes.Buffer
	j := NewJournal(&buf, e.Config())
	e.AttachJournal(j)

	for i := 0; i < 24; i++ {
		if err := e.Register(fmt.Sprintf("dev-%02d", i), units.Joule(0.4+0.07*float64(i)), units.Meter(0.6+0.12*float64(i))); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	mustEpoch(t, e)

	for round := 0; round < 3; round++ {
		for i := round; i < 24; i += 3 {
			// Rotate through drifts: past tolerance, within, past.
			energy := 0.4 + 0.07*float64(i)
			if i%2 == 0 {
				energy /= 2
			} else {
				energy *= 1.01
			}
			if err := e.Update(fmt.Sprintf("dev-%02d", i), units.Joule(energy), units.Meter(0.6+0.12*float64(i))); err != nil {
				t.Fatalf("update: %v", err)
			}
		}
		if round == 1 {
			if err := e.SetHubEnergy(6); err != nil {
				t.Fatalf("hub: %v", err)
			}
		}
		mustEpoch(t, e)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("journal close: %v", err)
	}
	return buf.Bytes()
}

// TestReplayBitIdentity captures a session and replays it: every epoch
// digest must match the live run's.
func TestReplayBitIdentity(t *testing.T) {
	journal := captureSession(t, 4)
	res, err := Replay(bytes.NewReader(journal))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Epochs != 4 || res.Matched != 4 {
		t.Fatalf("replayed %d epochs, matched %d, want 4/4", res.Epochs, res.Matched)
	}
	if res.Ops != 24+24+1 {
		t.Fatalf("replayed %d ops, want 49", res.Ops)
	}
}

// TestReplayWorkerInvariance captures at one worker count and replays
// what is byte-identical journalling from another — the digests in the
// journal itself must already agree, and replay (at default workers)
// must match both.
func TestReplayWorkerInvariance(t *testing.T) {
	j1 := captureSession(t, 1)
	j8 := captureSession(t, 8)
	if !bytes.Equal(j1, j8) {
		t.Fatal("journals differ across worker counts")
	}
	if _, err := Replay(bytes.NewReader(j1)); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestReplayDetectsTampering flips one digest nibble — re-framing the
// line with a freshly computed CRC, so the checksum passes and the
// semantic digest comparison is what must catch it — and checks the
// replay reports divergence.
func TestReplayDetectsTampering(t *testing.T) {
	journal := string(captureSession(t, 2))
	lines := strings.Split(strings.TrimRight(journal, "\n"), "\n")
	tampered := -1
	for i, l := range lines {
		if !strings.Contains(l, `"digest":"`) {
			continue
		}
		pos := strings.Index(l, `"digest":"`) + len(`"digest":"`)
		flipped := byte('0')
		if l[pos] == '0' {
			flipped = '1'
		}
		payload := []byte(l[frameLen:pos] + string(flipped) + l[pos+1:])
		lines[i] = strings.TrimSuffix(string(frameLine(payload)), "\n")
		tampered = i
	}
	if tampered < 0 {
		t.Fatal("no digest in journal")
	}
	in := strings.Join(lines, "\n") + "\n"
	if _, err := Replay(strings.NewReader(in)); err == nil {
		t.Fatal("replay accepted a tampered digest")
	} else if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestReplayDetectsCRCCorruption flips a payload byte mid-file without
// fixing the frame: the CRC must catch it, and because valid records
// follow, it is corruption (hard error), not a tolerated torn tail.
func TestReplayDetectsCRCCorruption(t *testing.T) {
	journal := captureSession(t, 2)
	lines := bytes.Split(bytes.TrimRight(journal, "\n"), []byte("\n"))
	if len(lines) < 3 {
		t.Fatal("journal too short")
	}
	mid := lines[len(lines)/2]
	mid[frameLen] ^= 0x01 // first payload byte
	in := append(bytes.Join(lines, []byte("\n")), '\n')
	_, err := Replay(bytes.NewReader(in))
	if err == nil {
		t.Fatal("replay accepted a CRC-corrupt record with valid history after it")
	}
	if !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestReplayToleratesCorruptFinalRecord corrupts only the last record:
// with nothing readable after it, that is indistinguishable from a torn
// tail and must be tolerated, reported in Torn.
func TestReplayToleratesCorruptFinalRecord(t *testing.T) {
	journal := captureSession(t, 2)
	trimmed := bytes.TrimRight(journal, "\n")
	corrupt := append([]byte(nil), trimmed...)
	corrupt[len(corrupt)-2] ^= 0x01
	corrupt = append(corrupt, '\n')
	res, err := Replay(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("replay of journal with corrupt final record: %v", err)
	}
	if res.Torn != 1 {
		t.Fatalf("Torn = %d, want 1", res.Torn)
	}
}

// TestReplayTruncatedTail checks a journal cut after a drain marker
// (daemon killed mid-epoch) still replays cleanly.
func TestReplayTruncatedTail(t *testing.T) {
	journal := string(captureSession(t, 2))
	idx := strings.LastIndex(journal, `{"t":"epoch"`)
	if idx < 0 {
		t.Fatal("no epoch record")
	}
	res, err := Replay(strings.NewReader(journal[:idx]))
	if err != nil {
		t.Fatalf("replay of truncated journal: %v", err)
	}
	if res.Epochs != res.Matched+1 {
		t.Fatalf("epochs %d, matched %d: trailing drain should be unmatched", res.Epochs, res.Matched)
	}
}

// TestReplayRejectsGarbage checks headerless and malformed journals
// error out instead of panicking.
func TestReplayRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		`{"t":"reg","id":"x","e":1,"d":1}`,
		"not json\n",
	} {
		if _, err := Replay(strings.NewReader(in)); err == nil {
			t.Errorf("Replay(%q) accepted garbage", in)
		}
	}
}

// TestJournalConcurrentAdmissionsReplay journals a session whose
// admissions race from many goroutines. Whatever interleaving the
// journal captured is the ground truth — replay must still match every
// digest, because journal order is admission order by construction.
func TestJournalConcurrentAdmissionsReplay(t *testing.T) {
	e := NewEngine(testConfig(nil))
	var buf bytes.Buffer
	j := NewJournal(&buf, e.Config())
	e.AttachJournal(j)

	const writers, perWriter = 6, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := e.Register(id, 1.0, units.Meter(0.5+0.1*float64(i%30))); err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if err := e.Update(id, 0.5, units.Meter(0.5+0.1*float64(i%30))); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	epochs := 1
loop:
	for {
		mustEpoch(t, e)
		select {
		case <-done:
			mustEpoch(t, e)
			epochs++
			break loop
		default:
			epochs++
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	res, err := Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Matched != epochs {
		t.Fatalf("matched %d epochs, want %d", res.Matched, epochs)
	}
	if res.Ops != writers*perWriter*2 {
		t.Fatalf("replayed %d ops, want %d", res.Ops, writers*perWriter*2)
	}
}
