// Snapshot records: the full engine state — membership in registration
// order with every member's committed plan, the hub budget, the epoch
// counter, the cumulative admitted-operation count, and the pending
// admission queue — serialized as one journal record. Every segment
// begins with a snapshot, so recovery restores the newest snapshot and
// replays only that segment's tail instead of the whole history from
// genesis.
//
// Exactness contract: every float crosses JSON via Go's shortest
// round-trippable encoding, so a restored engine holds bit-identical
// energies, distances, ratios, and plan fractions — which is what lets
// recovery re-verify tail epoch digests bit for bit and resume with
// digests indistinguishable from an uninterrupted run.

package serve

import (
	"fmt"

	"braidio/internal/units"
)

// journalConfig is the planner-semantic slice of Config embedded in
// snapshots (and, flat, in legacy config headers): the fields that must
// match the capture for digests to reproduce. Operational fields
// (Workers, QueueCap, Rec, JournalFailStop) are deliberately absent —
// they never affect plan bits and are taken from the restarting
// daemon's own flags.
type journalConfig struct {
	RatioTol float64 `json:"ratio_tol,omitempty"`
	DistTol  float64 `json:"dist_tol,omitempty"`
	Window   int     `json:"window,omitempty"`
	HubJ     float64 `json:"hub_j,omitempty"`
	FadeDB   float64 `json:"fade_db,omitempty"`
	Payload  int     `json:"payload,omitempty"`
}

// journalConfigOf extracts the planner-semantic fields of cfg.
func journalConfigOf(cfg Config) journalConfig {
	return journalConfig{
		RatioTol: cfg.RatioTolerance, DistTol: cfg.DistanceTolerance,
		Window: cfg.Window, HubJ: float64(cfg.HubEnergy),
		FadeDB: float64(cfg.FadeMargin), Payload: cfg.PayloadLen,
	}
}

// mergeConfig overlays the journal's planner-semantic fields onto the
// caller's operational ones: tolerances, window, budgets, and PHY
// framing come from the capture (digest continuity), worker count and
// queue bound from the restarting process.
func mergeConfig(caller Config, jc journalConfig) Config {
	caller.RatioTolerance = jc.RatioTol
	caller.DistanceTolerance = jc.DistTol
	caller.Window = jc.Window
	caller.HubEnergy = units.Joule(jc.HubJ)
	caller.FadeMargin = units.DB(jc.FadeDB)
	caller.PayloadLen = jc.Payload
	return caller
}

// memberRecord is one member's snapshot state: inputs, dirty flag, and
// the committed plan (nil when no epoch has planned it yet).
type memberRecord struct {
	ID    string  `json:"id"`
	E     float64 `json:"e"`
	D     float64 `json:"d"`
	Dirty bool    `json:"dirty,omitempty"`
	Plan  *Plan   `json:"plan,omitempty"`
}

// queuedOp is one pending admission captured inside a snapshot: an
// operation admitted (and journaled) after the last drain but not yet
// applied. The snapshot carries the queue so rotation can delete the
// old segment — including those ops' records — without losing them.
type queuedOp struct {
	T  string  `json:"t"`
	ID string  `json:"id,omitempty"`
	E  float64 `json:"e,omitempty"`
	D  float64 `json:"d,omitempty"`
}

// snapshotRecord is the full durable engine state at an epoch boundary.
type snapshotRecord struct {
	// Epoch is the last completed epoch; recovery resumes the counter
	// here and the first replayed drain must carry Epoch+1.
	Epoch uint64 `json:"epoch"`
	// Ops is the cumulative admitted-operation count (including the
	// pending Queue), letting operators and soak tests locate a
	// recovered engine's exact position in an operation schedule.
	Ops uint64 `json:"ops"`
	// HubJ is the current hub-side budget (tracks SetHubEnergy, unlike
	// the config's initial value).
	HubJ float64 `json:"hub_j"`
	// Cfg is the planner-semantic configuration; see journalConfig.
	Cfg journalConfig `json:"cfg"`
	// Members is the membership in registration order — the order the
	// digest commits in, so it must be preserved exactly.
	Members []memberRecord `json:"members,omitempty"`
	// Queue is the pending admission queue in admission order.
	Queue []queuedOp `json:"queue,omitempty"`
}

// wireType maps an op kind to its journal record type tag.
func (o op) wireType() string {
	switch o.kind {
	case opRegister:
		return "reg"
	case opUpdate:
		return "upd"
	default:
		return "hub"
	}
}

// opFromWire reverses wireType; ok is false for unknown tags.
func opFromWire(t, id string, e, d float64) (op, bool) {
	o := op{id: id, energy: units.Joule(e), distance: units.Meter(d)}
	switch t {
	case "reg":
		o.kind = opRegister
	case "upd":
		o.kind = opUpdate
	case "hub":
		o.kind = opHub
	default:
		return op{}, false
	}
	return o, true
}

// buildSnapshot assembles the engine's snapshot record. The caller must
// hold e.queueMu (freezing the pending queue and the admitted counter
// against concurrent admissions — and, because journal writes happen
// inside that same critical section, freezing the journal stream at
// exactly this point); committed state is read under e.mu.RLock plus
// every shard's read lock (taken in index order, after e.mu — the one
// place both levels nest), and the membership is walked in the global
// registration order, so snapshot bytes are identical at any shard
// count. Read locks only: concurrent /v1/plan reads stay unblocked.
func (e *Engine) buildSnapshot() *snapshotRecord {
	e.mu.RLock()
	for _, s := range e.shards {
		s.mu.RLock()
	}
	snap := &snapshotRecord{
		Epoch: e.epoch,
		Ops:   e.admitted,
		HubJ:  float64(e.hubEnergy),
		Cfg:   journalConfigOf(e.cfg),
	}
	if n := len(e.order); n > 0 {
		snap.Members = make([]memberRecord, 0, n)
	}
	for _, m := range e.order {
		mr := memberRecord{ID: m.id, E: float64(m.energy), D: float64(m.distance), Dirty: m.dirty}
		if m.hasPlan {
			p := m.plan
			mr.Plan = &p
		}
		snap.Members = append(snap.Members, mr)
	}
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.RUnlock()
	}
	e.mu.RUnlock()
	if n := len(e.queue); n > 0 {
		snap.Queue = make([]queuedOp, 0, n)
	}
	for _, o := range e.queue {
		snap.Queue = append(snap.Queue, queuedOp{T: o.wireType(), ID: o.id, E: float64(o.energy), D: float64(o.distance)})
	}
	return snap
}

// restoreSnapshot loads a snapshot into a freshly built engine (no
// traffic yet): membership in order, plans, hub budget, epoch counter,
// admitted count, and the pending queue. It validates structural
// invariants so a corrupted-but-CRC-valid snapshot cannot seed an
// engine that panics later.
func (e *Engine) restoreSnapshot(s *snapshotRecord) error {
	if s.HubJ <= 0 {
		return fmt.Errorf("serve: snapshot has non-positive hub energy %v", s.HubJ)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epoch = s.Epoch
	e.hubEnergy = units.Joule(s.HubJ)
	for _, mr := range s.Members {
		if mr.ID == "" {
			return fmt.Errorf("serve: snapshot member with empty id")
		}
		if mr.E <= 0 || mr.D <= 0 {
			return fmt.Errorf("serve: snapshot member %q has non-positive energy %v or distance %v", mr.ID, mr.E, mr.D)
		}
		sh := e.shardFor(mr.ID)
		if _, dup := sh.members[mr.ID]; dup {
			return fmt.Errorf("serve: snapshot member %q duplicated", mr.ID)
		}
		// Seq numbers are reassigned in snapshot (registration) order, so
		// the cross-shard digest merge reproduces the capture's order.
		m := &member{id: mr.ID, seq: e.nextSeq, live: true, energy: units.Joule(mr.E), distance: units.Meter(mr.D), dirty: mr.Dirty}
		e.nextSeq++
		if mr.Plan != nil {
			m.plan = *mr.Plan
			m.hasPlan = true
		}
		sh.members[m.id] = m
		sh.order = append(sh.order, m)
		e.order = append(e.order, m)
	}
	e.queueMu.Lock()
	defer e.queueMu.Unlock()
	e.admitted = s.Ops
	for i, q := range s.Queue {
		o, ok := opFromWire(q.T, q.ID, q.E, q.D)
		if !ok {
			return fmt.Errorf("serve: snapshot queue entry %d has unknown type %q", i, q.T)
		}
		e.queue = append(e.queue, o)
	}
	return nil
}

// snapshotNow builds a snapshot under the admission lock and hands it
// to the journal for a rotate-and-compact. Called from RunEpoch (under
// epochMu) right after the epoch record, so the snapshot state is the
// just-committed epoch plus whatever the queue has gathered since the
// drain — and every op journaled after this point lands in the new
// segment, keeping journal order equal to admission order across the
// rotation boundary.
func (e *Engine) snapshotNow(j *Journal) {
	e.queueMu.Lock()
	defer e.queueMu.Unlock()
	j.snapshotRotate(e.buildSnapshot())
}
