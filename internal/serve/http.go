// HTTP/JSON surface of the planning daemon. Handlers translate wire
// requests into engine admissions and reads; they hold no state of
// their own, so the daemon's lifecycle (epoch ticker, graceful
// shutdown) stays in cmd/braidio-serve.

package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"braidio/internal/obs"
	"braidio/internal/units"
)

// Server exposes an Engine over HTTP. Rec, when set, backs /metrics
// and is normally the same recorder the engine counts into.
type Server struct {
	Engine *Engine
	Rec    *obs.Recorder
	// EpochInterval is the daemon's epoch ticker period; shed responses
	// derive their Retry-After from it and the queue depth, so
	// backpressure scales with the actual drain rate. Zero falls back to
	// a one-second hint.
	EpochInterval time.Duration
	// MaxBodyBytes caps POST request bodies (http.MaxBytesReader; 413 on
	// overflow). Zero selects 64 MiB — comfortably above the load
	// generator's largest batches.
	MaxBodyBytes int64
}

// defaultMaxBodyBytes is the POST body cap when MaxBodyBytes is zero.
const defaultMaxBodyBytes = 64 << 20

// DeviceRequest is the wire shape for register and update: who, how
// much battery is left, and how far the link currently reaches.
type DeviceRequest struct {
	ID        string  `json:"id"`
	EnergyJ   float64 `json:"energy_j"`
	DistanceM float64 `json:"distance_m"`
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", s.device(s.Engine.Register))
	mux.HandleFunc("/v1/update", s.device(s.Engine.Update))
	mux.HandleFunc("/v1/hub", s.hub)
	mux.HandleFunc("/v1/epoch", s.epoch)
	mux.HandleFunc("/v1/plan", s.plan)
	mux.HandleFunc("/v1/stats", s.stats)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	return mux
}

// healthz reports liveness — and durability: a broken journal turns the
// daemon unhealthy (503) so orchestrators restart it into recovery
// instead of letting it admit operations it cannot replay.
func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	if err := s.Engine.JournalErr(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "journal broken", "error": err.Error(),
		})
		return
	}
	io.WriteString(w, "ok\n")
}

// writeJSON writes v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds derives a shed response's Retry-After from how long
// the backlog will take to drain: a full queue is at least one epoch
// behind, and every additional queue-capacity's worth of depth is
// another epoch. A non-positive interval (manual epochs only) falls
// back to a one-second hint.
func retryAfterSeconds(depth, queueCap int, interval time.Duration) int {
	if interval <= 0 {
		return 1
	}
	epochs := 1
	if queueCap > 0 {
		epochs += depth / queueCap
	}
	secs := int(math.Ceil(float64(epochs) * interval.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeErr maps engine errors onto status codes: a shed — queue full or
// journal broken under fail-stop — is 503 with a drain-rate-derived
// Retry-After; anything else from admission is the caller's fault. A
// body over MaxBodyBytes is 413.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, ErrShed), errors.Is(err, ErrJournalBroken):
		code = http.StatusServiceUnavailable
		st := s.Engine.Stats()
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterSeconds(st.QueueDepth, st.QueueCap, s.EpochInterval)))
	case errors.As(err, &tooBig):
		code = http.StatusRequestEntityTooLarge
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// device builds the handler shared by register and update. The body is
// one DeviceRequest or an array of them (the load generator batches
// thousands per request); admission is all-or-error in body order.
func (s *Server) device(admit func(string, units.Joule, units.Meter) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		limit := s.MaxBodyBytes
		if limit <= 0 {
			limit = defaultMaxBodyBytes
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
		if err != nil {
			s.writeErr(w, err)
			return
		}
		var reqs []DeviceRequest
		if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
			err = json.Unmarshal(body, &reqs)
		} else {
			reqs = make([]DeviceRequest, 1)
			err = json.Unmarshal(body, &reqs[0])
		}
		if err != nil {
			s.writeErr(w, fmt.Errorf("serve: bad request body: %w", err))
			return
		}
		for i, q := range reqs {
			if err := admit(q.ID, units.Joule(q.EnergyJ), units.Meter(q.DistanceM)); err != nil {
				s.writeErr(w, fmt.Errorf("entry %d: %w", i, err))
				return
			}
		}
		writeJSON(w, http.StatusAccepted, map[string]int{"admitted": len(reqs)})
	}
}

// hub admits a hub-side budget change.
func (s *Server) hub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var q struct {
		EnergyJ float64 `json:"energy_j"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&q); err != nil {
		s.writeErr(w, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	if err := s.Engine.SetHubEnergy(units.Joule(q.EnergyJ)); err != nil {
		s.writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]int{"admitted": 1})
}

// epoch forces an epoch boundary now — how tests and the load
// generator step the batcher deterministically instead of waiting out
// the ticker.
func (s *Server) epoch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	res, err := s.Engine.RunEpoch()
	if err != nil {
		// Plans that did solve are committed; report both.
		writeJSON(w, http.StatusConflict, map[string]any{"result": res, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// plan serves a member's current plan.
func (s *Server) plan(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeErr(w, errors.New("serve: missing id parameter"))
		return
	}
	p, ok := s.Engine.PlanFor(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no plan for " + id})
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// stats serves the engine's instantaneous state.
func (s *Server) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Engine.Stats())
}

// metrics serves Prometheus text exposition: the recorder's snapshot
// plus the serve-local gauges (membership and queue depth) that only
// the engine knows.
func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var buf strings.Builder
	if s.Rec != nil {
		snap := s.Rec.Snapshot()
		snap.WritePrometheus(&buf)
	}
	st := s.Engine.Stats()
	fmt.Fprintf(&buf, "# TYPE braidio_serve_members gauge\nbraidio_serve_members %d\n", st.Members)
	fmt.Fprintf(&buf, "# TYPE braidio_serve_shards gauge\nbraidio_serve_shards %d\n", st.Shards)
	fmt.Fprintf(&buf, "# TYPE braidio_serve_queue_depth gauge\nbraidio_serve_queue_depth %d\n", st.QueueDepth)
	fmt.Fprintf(&buf, "# TYPE braidio_serve_epoch gauge\nbraidio_serve_epoch %d\n", st.Epoch)
	io.WriteString(w, buf.String())
}
