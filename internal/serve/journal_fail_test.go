package serve

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"braidio/internal/obs"
)

// errWriter fails every write with a fixed error.
type errWriter struct{ err error }

func (w errWriter) Write([]byte) (int, error) { return 0, w.err }

// shortWriter accepts one byte fewer than offered and reports no error —
// the misbehaviour bufio surfaces as io.ErrShortWrite.
type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return len(p) - 1, nil
}

// brokenJournal builds a journal whose first record already failed: a
// tiny bufio buffer in front of a failing writer, so the config header
// flush hits the error immediately.
func brokenJournal(rec *obs.Recorder) *Journal {
	j := &Journal{w: bufio.NewWriterSize(errWriter{err: errors.New("disk gone")}, 8), rec: rec}
	j.writeConfigHeader(testConfig(nil))
	return j
}

// TestJournalStickyErrorAndCounter checks the first write failure is
// sticky, surfaced by Err, returned by Close, and that every dropped
// record afterwards bumps the journal-error counter.
func TestJournalStickyErrorAndCounter(t *testing.T) {
	rec := &obs.Recorder{}
	j := brokenJournal(rec)
	first := j.Err()
	if first == nil {
		t.Fatal("Err() nil after a failed write")
	}
	if got := rec.ServeJournalErrors.Load(); got != 1 {
		t.Fatalf("ServeJournalErrors = %d after first failure, want 1", got)
	}
	j.drain(1) // dropped on the sticky error
	if got := rec.ServeJournalErrors.Load(); got != 2 {
		t.Fatalf("ServeJournalErrors = %d after a dropped record, want 2", got)
	}
	if err := j.Close(); !errors.Is(err, first) && err.Error() != first.Error() {
		t.Fatalf("Close() = %v, want the first error %v", err, first)
	}
}

// TestJournalShortWrite checks a writer that under-reports its write is
// caught (bufio turns it into io.ErrShortWrite) instead of silently
// losing bytes.
func TestJournalShortWrite(t *testing.T) {
	// The record sits in the bufio buffer; the flush at Close is what
	// hands it to the misbehaving writer.
	j := &Journal{w: bufio.NewWriterSize(shortWriter{}, 1<<16)}
	j.writeConfigHeader(testConfig(nil))
	if err := j.Close(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Close() = %v, want io.ErrShortWrite", err)
	}
	if err := j.Err(); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("Err() = %v, want io.ErrShortWrite", err)
	}
}

// TestJournalSyncFailure drives the file-backed path: fsync against a
// closed descriptor must surface through Err, not vanish.
func TestJournalSyncFailure(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close() // journal writes will flush and fsync into a closed fd
	rec := &obs.Recorder{}
	j := NewJournalFile(f, testConfig(nil), JournalOptions{Sync: SyncAlways, Rec: rec})
	if j.Err() == nil {
		t.Fatal("Err() nil after sync against a closed file")
	}
	if rec.ServeJournalErrors.Load() == 0 {
		t.Fatal("ServeJournalErrors stayed 0")
	}
}

// TestJournalFailStop checks the fail-stop admission policy: once the
// journal is broken the engine sheds with ErrJournalBroken and reports
// the error in Stats; without fail-stop it keeps admitting.
func TestJournalFailStop(t *testing.T) {
	rec := &obs.Recorder{}
	cfg := testConfig(rec)
	cfg.JournalFailStop = true
	e := NewEngine(cfg)
	e.AttachJournal(brokenJournal(rec))

	err := e.Register("a", 1, 1)
	if !errors.Is(err, ErrJournalBroken) {
		t.Fatalf("Register under fail-stop = %v, want ErrJournalBroken", err)
	}
	if rec.ServeSheds.Load() == 0 {
		t.Error("ServeSheds stayed 0 after a fail-stop shed")
	}
	if st := e.Stats(); st.JournalError == "" {
		t.Error("Stats().JournalError empty with a broken journal attached")
	}
	if e.JournalErr() == nil {
		t.Error("JournalErr() nil with a broken journal attached")
	}

	// Without fail-stop the same situation keeps admitting: the journal
	// is degraded, not the service.
	cfg.JournalFailStop = false
	e2 := NewEngine(cfg)
	e2.AttachJournal(brokenJournal(rec))
	if err := e2.Register("a", 1, 1); err != nil {
		t.Fatalf("Register without fail-stop = %v, want nil", err)
	}
}

// TestReplayRejectsOverlongLine checks Replay bounds line length with a
// clear error instead of buffering unbounded input.
func TestReplayRejectsOverlongLine(t *testing.T) {
	var buf bytes.Buffer
	e := NewEngine(testConfig(nil))
	j := NewJournal(&buf, e.Config())
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A syntactically valid framed record, just far past the 1 MiB cap.
	huge := []byte(`{"t":"reg","id":"` + strings.Repeat("x", replayMaxLine+1024) + `","e":1,"d":1}`)
	buf.Write(frameLine(huge))
	_, err := Replay(&buf)
	if err == nil {
		t.Fatal("Replay accepted an overlong line")
	}
	if !strings.Contains(err.Error(), "journal line 2 too long") {
		t.Fatalf("unexpected error: %v", err)
	}
}
