package serve

import (
	"fmt"
	"sync"
	"testing"

	"braidio/internal/obs"
	"braidio/internal/units"
)

// testConfig is the common engine setup: 5% tolerances so tests can
// place updates on either side of the threshold.
func testConfig(rec *obs.Recorder) Config {
	return Config{
		RatioTolerance:    0.05,
		DistanceTolerance: 0.05,
		Window:            64,
		HubEnergy:         10,
		Rec:               rec,
	}
}

func mustEpoch(t *testing.T, e *Engine) EpochResult {
	t.Helper()
	res, err := e.RunEpoch()
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	return res
}

// TestDirtySetTolerance walks one member across the tolerance boundary
// in both directions — ratio via energy, then distance — and checks
// exactly the crossings trigger re-plans.
func TestDirtySetTolerance(t *testing.T) {
	e := NewEngine(testConfig(nil))
	if err := e.Register("m1", 1.0, 2.0); err != nil {
		t.Fatalf("register: %v", err)
	}
	res := mustEpoch(t, e)
	if res.Planned != 1 || res.Clean != 0 {
		t.Fatalf("first epoch: planned %d clean %d, want 1/0", res.Planned, res.Clean)
	}
	base, ok := e.PlanFor("m1")
	if !ok {
		t.Fatal("no plan after first epoch")
	}

	steps := []struct {
		name      string
		energy    float64
		distance  float64
		wantPlans int
	}{
		// 1% energy drift: ratio moves 10/1.0 -> 10/1.01, ~1% < 5%.
		{"within ratio tol", 1.01, 2.0, 0},
		// halved battery: ratio doubles, far past 5%.
		{"ratio crosses down", 0.505, 2.0, 1},
		// recover upward past tolerance the other way.
		{"ratio crosses up", 1.0, 2.0, 1},
		// 2% distance drift stays clean.
		{"within distance tol", 1.0, 2.04, 0},
		// 50% distance jump re-characterizes the link.
		{"distance crosses up", 1.0, 3.0, 1},
		// and back down again.
		{"distance crosses down", 1.0, 2.0, 1},
	}
	for _, s := range steps {
		if err := e.Update("m1", units.Joule(s.energy), units.Meter(s.distance)); err != nil {
			t.Fatalf("%s: update: %v", s.name, err)
		}
		res = mustEpoch(t, e)
		if res.Planned != s.wantPlans {
			t.Errorf("%s: planned %d, want %d", s.name, res.Planned, s.wantPlans)
		}
		if res.Planned+res.Clean != 1 {
			t.Errorf("%s: planned+clean = %d, want 1", s.name, res.Planned+res.Clean)
		}
	}

	// The member's plan must reflect the final (restored) inputs.
	final, ok := e.PlanFor("m1")
	if !ok {
		t.Fatal("no final plan")
	}
	if final.Distance != base.Distance || final.Ratio != base.Ratio {
		t.Errorf("final plan inputs (%v, %v) differ from base (%v, %v)",
			final.Ratio, final.Distance, base.Ratio, base.Distance)
	}
	for i := range final.Fractions {
		if final.Fractions[i] != base.Fractions[i] {
			t.Errorf("fraction %d: %v != base %v — same inputs must re-solve identically",
				i, final.Fractions[i], base.Fractions[i])
		}
	}
}

// TestHubEnergyDirtiesAll checks a hub-side budget change past
// tolerance re-plans the whole membership, and one within tolerance
// re-plans nobody.
func TestHubEnergyDirtiesAll(t *testing.T) {
	e := NewEngine(testConfig(nil))
	const n = 8
	for i := 0; i < n; i++ {
		if err := e.Register(fmt.Sprintf("m%d", i), 1.0, units.Meter(1.0+0.2*float64(i))); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	if res := mustEpoch(t, e); res.Planned != n {
		t.Fatalf("first epoch planned %d, want %d", res.Planned, n)
	}

	// 1% hub change: every ratio moves 1%, inside the 5% tolerance.
	if err := e.SetHubEnergy(10.1); err != nil {
		t.Fatalf("hub: %v", err)
	}
	if res := mustEpoch(t, e); res.Planned != 0 || res.Clean != n {
		t.Fatalf("within-tolerance hub change: planned %d clean %d, want 0/%d", res.Planned, res.Clean, n)
	}

	// Halved hub budget: everybody is stale.
	if err := e.SetHubEnergy(5); err != nil {
		t.Fatalf("hub: %v", err)
	}
	if res := mustEpoch(t, e); res.Planned != n {
		t.Fatalf("past-tolerance hub change: planned %d, want %d", res.Planned, n)
	}
}

// TestZeroToleranceAlwaysReplans checks the exact-equality regime: with
// zero tolerances every admitted update dirties its member, even a
// bit-identical one... except truly identical inputs still match the
// RatioWithin exact-equality predicate, so they stay clean.
func TestZeroToleranceAlwaysReplans(t *testing.T) {
	cfg := testConfig(nil)
	cfg.RatioTolerance, cfg.DistanceTolerance = 0, 0
	e := NewEngine(cfg)
	if err := e.Register("m1", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	mustEpoch(t, e)

	// Identical re-send: a == b exactly, stays clean.
	if err := e.Update("m1", 1.0, 2.0); err != nil {
		t.Fatal(err)
	}
	if res := mustEpoch(t, e); res.Planned != 0 {
		t.Errorf("identical update at zero tol: planned %d, want 0", res.Planned)
	}
	// Any drift at all re-plans.
	if err := e.Update("m1", 1.0000001, 2.0); err != nil {
		t.Fatal(err)
	}
	if res := mustEpoch(t, e); res.Planned != 1 {
		t.Errorf("epsilon update at zero tol: planned %d, want 1", res.Planned)
	}
}

// TestQueueShedding fills the bounded admission queue and checks the
// overflow is shed with ErrShed and counted, then that an epoch drain
// reopens admission.
func TestQueueShedding(t *testing.T) {
	rec := &obs.Recorder{}
	cfg := testConfig(rec)
	cfg.QueueCap = 4
	e := NewEngine(cfg)

	shed := 0
	for i := 0; i < 10; i++ {
		err := e.Register(fmt.Sprintf("m%d", i), 1.0, 1.0)
		if err != nil {
			if err != ErrShed {
				t.Fatalf("register %d: unexpected error %v", i, err)
			}
			shed++
		}
	}
	if shed != 6 {
		t.Fatalf("shed %d of 10 at cap 4, want 6", shed)
	}
	if got := rec.ServeSheds.Load(); got != 6 {
		t.Fatalf("ServeSheds = %d, want 6", got)
	}
	if res := mustEpoch(t, e); res.Members != 4 {
		t.Fatalf("members after drain = %d, want 4", res.Members)
	}
	// Queue drained: admission is open again.
	if err := e.Register("late", 1.0, 1.0); err != nil {
		t.Fatalf("post-drain register: %v", err)
	}
}

// TestConcurrentUpdatesUnderEpochs hammers the admission surface from
// many goroutines while epochs run concurrently — the scenario the
// race detector checks. Every member must end up planned.
func TestConcurrentUpdatesUnderEpochs(t *testing.T) {
	rec := &obs.Recorder{}
	e := NewEngine(testConfig(rec))
	const writers, perWriter = 8, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-m%d", w, i)
				if err := e.Register(id, 1.0, units.Meter(1.0+float64(i%40)*0.1)); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				// Half drift past tolerance, half jitter within it.
				energy := 1.0
				if i%2 == 0 {
					energy = 0.5
				} else {
					energy = 1.004
				}
				if err := e.Update(id, units.Joule(energy), units.Meter(1.0+float64(i%40)*0.1)); err != nil {
					t.Errorf("update %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for {
		if _, err := e.RunEpoch(); err != nil {
			t.Errorf("RunEpoch: %v", err)
		}
		select {
		case <-done:
			// Final epoch picks up anything admitted after the last drain.
			res := mustEpoch(t, e)
			if res.Members != writers*perWriter {
				t.Fatalf("members = %d, want %d", res.Members, writers*perWriter)
			}
			for w := 0; w < writers; w++ {
				for i := 0; i < perWriter; i++ {
					if _, ok := e.PlanFor(fmt.Sprintf("w%d-m%d", w, i)); !ok {
						t.Fatalf("w%d-m%d has no plan after final epoch", w, i)
					}
				}
			}
			if got := rec.ServeRegisters.Load(); got != writers*perWriter {
				t.Fatalf("ServeRegisters = %d, want %d", got, writers*perWriter)
			}
			return
		default:
		}
	}
}

// TestEpochDigestWorkerInvariance runs the identical admitted sequence
// through engines at worker counts 1, 2, and 8 and demands identical
// per-epoch digests — the par determinism contract surfacing at the
// serve layer.
func TestEpochDigestWorkerInvariance(t *testing.T) {
	run := func(workers int) []string {
		cfg := testConfig(nil)
		cfg.Workers = workers
		e := NewEngine(cfg)
		var digests []string
		for i := 0; i < 32; i++ {
			if err := e.Register(fmt.Sprintf("m%d", i), units.Joule(0.5+0.05*float64(i)), units.Meter(0.5+0.15*float64(i))); err != nil {
				t.Fatalf("register: %v", err)
			}
		}
		digests = append(digests, mustEpoch(t, e).Digest)
		for i := 0; i < 32; i += 2 {
			if err := e.Update(fmt.Sprintf("m%d", i), units.Joule(0.2+0.05*float64(i)), units.Meter(0.5+0.15*float64(i))); err != nil {
				t.Fatalf("update: %v", err)
			}
		}
		digests = append(digests, mustEpoch(t, e).Digest)
		if err := e.SetHubEnergy(4); err != nil {
			t.Fatalf("hub: %v", err)
		}
		digests = append(digests, mustEpoch(t, e).Digest)
		return digests
	}

	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("epoch %d digest at %d workers = %s, want %s (1 worker)", i+1, workers, got[i], base[i])
			}
		}
	}
}

// TestPlanShape sanity-checks a solved plan: fractions sum to 1, block
// counts fill the window, modes align.
func TestPlanShape(t *testing.T) {
	e := NewEngine(testConfig(nil))
	if err := e.Register("m1", 0.5, 1.5); err != nil {
		t.Fatal(err)
	}
	mustEpoch(t, e)
	p, ok := e.PlanFor("m1")
	if !ok {
		t.Fatal("no plan")
	}
	if len(p.Modes) == 0 || len(p.Modes) != len(p.Fractions) || len(p.Modes) != len(p.Blocks) {
		t.Fatalf("misaligned plan: %d modes, %d fractions, %d blocks", len(p.Modes), len(p.Fractions), len(p.Blocks))
	}
	sum, blocks := 0.0, 0
	for i := range p.Fractions {
		sum += p.Fractions[i]
		blocks += p.Blocks[i]
	}
	if d := sum - 1; d > 1e-9 || d < -1e-9 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
	if blocks != e.Config().Window {
		t.Errorf("blocks sum to %d, want window %d", blocks, e.Config().Window)
	}
	if p.Bits <= 0 {
		t.Errorf("non-positive deliverable bits %v", p.Bits)
	}
}

// TestUpdateUnknownMember checks an update whose register was shed is
// quietly skipped at apply time rather than creating ghost members.
func TestUpdateUnknownMember(t *testing.T) {
	e := NewEngine(testConfig(nil))
	if err := e.Update("ghost", 1.0, 1.0); err != nil {
		t.Fatalf("update admission: %v", err)
	}
	res := mustEpoch(t, e)
	if res.Members != 0 {
		t.Fatalf("members = %d, want 0", res.Members)
	}
	if _, ok := e.PlanFor("ghost"); ok {
		t.Fatal("ghost member acquired a plan")
	}
}
