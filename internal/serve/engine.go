// Package serve is the online planning engine behind the braidio-serve
// daemon: a multi-tenant, epoch-batched version of the Eq. (1) offload
// planner. Devices register once, stream energy and link updates, and
// read back mode-fraction plans; the engine re-solves only for members
// whose inputs drifted past tolerance since their last plan (the
// dirty-set generalization of core.Braid's allocation memo), batches
// admissions per epoch, sheds load when the admission queue is full,
// and journals every admitted operation so a captured session replays
// bit-identically through the same batch planner.
//
// Determinism contract: plans are solved concurrently over internal/par
// but each worker writes only its index-owned result slot and results
// are committed in registration order, so an epoch's plan set — and the
// FNV-1a digest over it — is bit-identical at any worker count. That is
// what Replay checks.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"braidio/internal/core"
	"braidio/internal/linkcache"
	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Config parameterizes an Engine. The zero value is unusable; call
// (*Config).withDefaults via NewEngine to fill gaps.
type Config struct {
	// Workers bounds the planning pool (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueCap bounds the admission queue; operations arriving when the
	// queue is full are shed (Enqueue returns false, HTTP returns 503).
	QueueCap int
	// RatioTolerance is the symmetric relative tolerance on the battery
	// ratio E_hub/E_member within which a member's existing plan is
	// reused — the serve-side analogue of core.Braid's
	// AllocationTolerance. Zero demands exact equality (every update
	// dirties its member).
	RatioTolerance float64
	// DistanceTolerance is the same predicate applied to the reported
	// link distance, the input to PHY characterization.
	DistanceTolerance float64
	// Window is the block-schedule window length handed to
	// core.ScheduleBlocks when expanding fractions into frame slots.
	Window int
	// HubEnergy is the hub-side budget E1 shared by every member's
	// solve (the carrier/hub battery of the paper's asymmetric setup).
	HubEnergy units.Joule
	// FadeMargin derates the PHY model's link budgets (dB).
	FadeMargin units.DB
	// PayloadLen sets the PHY framing (bytes); 0 keeps the model default.
	PayloadLen int
	// JournalFailStop, when a journal is attached, sheds every admission
	// (ErrJournalBroken, HTTP 503) once the journal has failed — the
	// engine stops accepting operations it cannot make durable. Off, the
	// engine keeps serving and the broken journal is visible only through
	// Stats and /healthz.
	JournalFailStop bool
	// Rec receives serve counters; nil disables recording.
	Rec *obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 16
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.HubEnergy <= 0 {
		c.HubEnergy = 10
	}
	return c
}

// Plan is one member's current mode-fraction plan.
type Plan struct {
	// Epoch is the epoch the plan was solved in.
	Epoch uint64 `json:"epoch"`
	// Ratio is the battery ratio E_hub/E_member the plan was solved at;
	// the dirty-set predicate compares fresh updates against it.
	Ratio float64 `json:"ratio"`
	// Distance is the link distance the plan was characterized at.
	Distance float64 `json:"distance_m"`
	// Modes and Fractions are the allocation, aligned: bit fractions
	// per available mode, summing to 1.
	Modes     []string  `json:"modes"`
	Fractions []float64 `json:"fractions"`
	// Blocks is the largest-remainder expansion of Fractions into
	// contiguous per-mode slot counts over the configured window.
	Blocks []int `json:"blocks"`
	// Bits is the deliverable payload before one endpoint drains.
	Bits float64 `json:"bits"`
}

// opKind discriminates admitted operations.
type opKind uint8

const (
	opRegister opKind = iota
	opUpdate
	opHub
)

// op is one admitted mutation, applied in admission order at the next
// epoch boundary.
type op struct {
	kind     opKind
	id       string
	energy   units.Joule
	distance units.Meter
}

// member is one registered device's engine-side state.
type member struct {
	id       string
	energy   units.Joule
	distance units.Meter
	dirty    bool
	plan     Plan
	hasPlan  bool
}

// EpochResult summarizes one RunEpoch: how many members were re-planned
// versus served by their existing plan, and the deterministic digest
// over every plan solved this epoch.
type EpochResult struct {
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
	Planned int    `json:"planned"`
	Clean   int    `json:"clean"`
	Members int    `json:"members"`
	// Digest is the FNV-1a 64 hash over (epoch, id, fraction bits,
	// blocks, bit count) of every plan solved this epoch, in
	// registration order. Bit-identical across replays and worker
	// counts.
	Digest string `json:"digest"`
}

// Engine is the epoch-batched multi-tenant planner. All methods are
// safe for concurrent use; RunEpoch itself must not be called
// concurrently with another RunEpoch (the daemon drives it from a
// single ticker goroutine).
type Engine struct {
	cfg   Config
	model *phy.Model
	view  *linkcache.View

	queueMu  sync.Mutex
	queue    []op
	admitted uint64 // cumulative ops admitted, ever (incl. restored history)

	mu        sync.RWMutex
	hubEnergy units.Joule
	members   map[string]*member
	order     []*member // registration order — the deterministic commit order
	epoch     uint64

	epochMu sync.Mutex // serializes RunEpoch
	// batch is the epoch's shared column arena (guarded by epochMu):
	// one reset per epoch replaces the old per-solve scratch pool.
	batch core.BatchScratch

	// Plan-phase latency, guarded by mu: wall time of each planning
	// epoch's characterize+solve+build phase, for /v1/stats percentiles.
	// Only epochs that planned at least one member are recorded.
	// Strictly observational — never touches EpochResult or the digest.
	planLat   []float64 // ns ring, planRingCap entries
	planIdx   int
	planCount int
	planFirst float64 // ns, first planning epoch (the cold bulk plan)
	planLast  float64 // ns, most recent planning epoch

	journal *Journal // nil when capture is off
}

// planRingCap bounds the plan-latency ring Stats percentiles are
// computed over.
const planRingCap = 256

// NewEngine builds an engine from a config, applying defaults.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	m := phy.NewModel()
	m.FadeMargin = cfg.FadeMargin
	if cfg.PayloadLen > 0 {
		m.PayloadLen = cfg.PayloadLen
	}
	return &Engine{
		cfg:       cfg,
		model:     m,
		view:      linkcache.NewView(m),
		queue:     make([]op, 0, cfg.QueueCap),
		hubEnergy: cfg.HubEnergy,
		members:   make(map[string]*member),
	}
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// AttachJournal starts capturing admitted operations and epoch digests
// to j. Attach before serving traffic — operations admitted earlier are
// not in the journal and the replay would diverge.
func (e *Engine) AttachJournal(j *Journal) {
	e.queueMu.Lock()
	e.journal = j
	e.queueMu.Unlock()
}

// ErrShed reports an operation dropped because the admission queue was
// full — the backpressure signal the HTTP layer maps to 503.
var ErrShed = errors.New("serve: admission queue full, operation shed")

// ErrJournalBroken reports an operation shed under the fail-stop policy
// because the attached journal has failed: the engine refuses to admit
// what it cannot make durable. Also mapped to HTTP 503.
var ErrJournalBroken = errors.New("serve: journal broken, admission refused (fail-stop)")

// enqueue admits an operation or sheds it when the queue is full (or,
// under fail-stop, when the journal is broken).
func (e *Engine) enqueue(o op) error {
	e.queueMu.Lock()
	if e.cfg.JournalFailStop && e.journal != nil {
		if err := e.journal.Err(); err != nil {
			e.queueMu.Unlock()
			if e.cfg.Rec != nil {
				e.cfg.Rec.ServeSheds.Add(1)
			}
			return fmt.Errorf("%w: %v", ErrJournalBroken, err)
		}
	}
	if len(e.queue) >= e.cfg.QueueCap {
		e.queueMu.Unlock()
		if e.cfg.Rec != nil {
			e.cfg.Rec.ServeSheds.Add(1)
		}
		return ErrShed
	}
	e.queue = append(e.queue, o)
	e.admitted++
	// Journal inside the critical section: journal order must be
	// admission order or the replay diverges.
	if e.journal != nil {
		e.journal.op(o)
	}
	e.queueMu.Unlock()
	return nil
}

// JournalErr returns the attached journal's sticky error, nil when no
// journal is attached or it is healthy. Surfaced by /healthz and Stats.
func (e *Engine) JournalErr() error {
	e.queueMu.Lock()
	j := e.journal
	e.queueMu.Unlock()
	if j == nil {
		return nil
	}
	return j.Err()
}

// Register admits a new member (or re-registers an existing one; the
// later admission wins, as with any update).
func (e *Engine) Register(id string, energy units.Joule, distance units.Meter) error {
	if id == "" {
		return errors.New("serve: empty member id")
	}
	if energy <= 0 || distance <= 0 {
		return fmt.Errorf("serve: member %q has non-positive energy %v or distance %v", id, float64(energy), float64(distance))
	}
	return e.enqueue(op{kind: opRegister, id: id, energy: energy, distance: distance})
}

// Update admits an energy/link update for a registered member. Unknown
// ids are rejected at apply time (counted, not fatal).
func (e *Engine) Update(id string, energy units.Joule, distance units.Meter) error {
	if id == "" {
		return errors.New("serve: empty member id")
	}
	if energy <= 0 || distance <= 0 {
		return fmt.Errorf("serve: member %q has non-positive energy %v or distance %v", id, float64(energy), float64(distance))
	}
	return e.enqueue(op{kind: opUpdate, id: id, energy: energy, distance: distance})
}

// SetHubEnergy admits a hub-side budget change. Since every member's
// ratio shares the hub term, the apply step rechecks the whole
// membership against tolerance.
func (e *Engine) SetHubEnergy(energy units.Joule) error {
	if energy <= 0 {
		return fmt.Errorf("serve: non-positive hub energy %v", float64(energy))
	}
	return e.enqueue(op{kind: opHub, energy: energy})
}

// PlanFor returns the member's current plan. ok is false when the id is
// unknown or not yet planned (registered but no epoch has run).
func (e *Engine) PlanFor(id string) (Plan, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	m, found := e.members[id]
	if !found || !m.hasPlan {
		return Plan{}, false
	}
	return m.plan, true
}

// Stats is the engine's instantaneous state for /v1/stats.
type Stats struct {
	Members    int     `json:"members"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	Epoch      uint64  `json:"epoch"`
	HubEnergy  float64 `json:"hub_energy_j"`
	// Admitted is the cumulative count of operations ever admitted,
	// surviving restarts (recovery restores it from the snapshot and
	// replayed tail) — an engine's exact position in an op schedule.
	Admitted uint64 `json:"admitted"`
	// JournalError carries the attached journal's sticky error, empty
	// when healthy or no journal is attached.
	JournalError string `json:"journal_error,omitempty"`
	// PlanP50Millis and PlanP99Millis are percentiles of the per-epoch
	// plan-phase wall time (characterize + batch solve + plan build)
	// over the most recent planning epochs; FirstPlanMillis is the
	// first planning epoch — typically the cold bulk plan of the whole
	// membership — and LastPlanMillis the most recent (warm) one. Zero
	// until an epoch has planned at least one member.
	PlanP50Millis   float64 `json:"plan_p50_ms"`
	PlanP99Millis   float64 `json:"plan_p99_ms"`
	FirstPlanMillis float64 `json:"first_plan_ms"`
	LastPlanMillis  float64 `json:"last_plan_ms"`
}

// planQuantile returns the q-quantile of sorted latencies in ns.
func planQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// Stats reports membership, queue depth, and the last completed epoch.
func (e *Engine) Stats() Stats {
	e.queueMu.Lock()
	depth := len(e.queue)
	admitted := e.admitted
	journal := e.journal
	e.queueMu.Unlock()
	var jerr string
	if journal != nil {
		if err := journal.Err(); err != nil {
			jerr = err.Error()
		}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	s := Stats{
		Members:      len(e.order),
		QueueDepth:   depth,
		QueueCap:     e.cfg.QueueCap,
		Epoch:        e.epoch,
		HubEnergy:    float64(e.hubEnergy),
		Admitted:     admitted,
		JournalError: jerr,
	}
	if e.planCount > 0 {
		lat := append([]float64(nil), e.planLat...)
		sort.Float64s(lat)
		const ms = 1e6
		s.PlanP50Millis = planQuantile(lat, 0.50) / ms
		s.PlanP99Millis = planQuantile(lat, 0.99) / ms
		s.FirstPlanMillis = e.planFirst / ms
		s.LastPlanMillis = e.planLast / ms
	}
	return s
}

// dirtyAgainst reports whether fresh inputs have drifted out of
// tolerance from the member's planned inputs. A member with no plan yet
// is always dirty.
func (e *Engine) dirtyAgainst(m *member) bool {
	if !m.hasPlan {
		return true
	}
	ratio := float64(e.hubEnergy) / float64(m.energy)
	if !core.RatioWithin(ratio, m.plan.Ratio, e.cfg.RatioTolerance) {
		return true
	}
	return !core.RatioWithin(float64(m.distance), m.plan.Distance, e.cfg.DistanceTolerance)
}

// planJob snapshots one dirty member's solve inputs; results land in
// index-owned slots for deterministic in-order commit.
type planJob struct {
	m        *member
	energy   units.Joule
	distance units.Meter
	plan     Plan
	err      error
}

// RunEpoch drains the admission queue, applies the operations in
// admission order, re-plans exactly the dirty members over the worker
// pool, commits the plans in registration order, and returns the epoch
// summary with its deterministic digest. Journaling (if any) is the
// caller's job — the Journal wrapper logs ops and results around this.
func (e *Engine) RunEpoch() (EpochResult, error) {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()

	e.mu.Lock()
	e.epoch++
	epoch := e.epoch
	e.mu.Unlock()

	e.queueMu.Lock()
	ops := e.queue
	e.queue = make([]op, 0, e.cfg.QueueCap)
	// The drain marker sits in the same critical section, so every
	// journaled op unambiguously belongs to exactly one epoch.
	journal := e.journal
	if journal != nil {
		journal.drain(epoch)
	}
	e.queueMu.Unlock()

	e.mu.Lock()
	applied := e.applyLocked(ops)

	// Collect the dirty set in registration order and snapshot inputs.
	jobs := make([]planJob, 0, len(e.order))
	for _, m := range e.order {
		if m.dirty {
			jobs = append(jobs, planJob{m: m, energy: m.energy, distance: m.distance})
		}
	}
	hubE := e.hubEnergy
	total := len(e.order)
	e.mu.Unlock()

	// Batch plan phase, outside the state lock: one arena reset, one
	// striped columnar characterization, one striped offload kernel,
	// then per-job plan construction into index-owned slots — the par
	// determinism contract at every stage, so the epoch's plan set is
	// bit-identical at any worker count. The wall clock around it feeds
	// only the latency metrics, never the results.
	var planStart time.Time
	if len(jobs) > 0 {
		planStart = time.Now()
		e.batch.Reset(len(jobs))
		for i := range jobs {
			e.batch.Dists[i] = jobs[i].distance
			e.batch.E1[i] = hubE
			e.batch.E2[i] = jobs[i].energy
		}
		e.view.CharacterizeColumns(e.cfg.Workers, e.batch.Dists, &e.batch.Cols)
		core.OptimizeBatch(&e.batch, e.cfg.Workers)
		par.For(e.cfg.Workers, len(jobs), func(i int) { e.buildPlan(&jobs[i], i, epoch, hubE) })
		if e.cfg.Rec != nil {
			e.cfg.Rec.BatchRounds.Add(1)
		}
	}

	// Commit in registration order.
	e.mu.Lock()
	var solveErr error
	planned := 0
	for i := range jobs {
		j := &jobs[i]
		if j.err != nil {
			// Out of range or drained: keep the member dirty so a
			// recovering update re-plans it, surface the first error.
			if solveErr == nil {
				solveErr = fmt.Errorf("serve: member %q: %w", j.m.id, j.err)
			}
			continue
		}
		j.m.plan = j.plan
		j.m.hasPlan = true
		j.m.dirty = false
		planned++
	}
	e.mu.Unlock()

	if len(jobs) > 0 {
		ns := float64(time.Since(planStart))
		if e.cfg.Rec != nil {
			e.cfg.Rec.LPSolveLatency.Observe(ns)
		}
		e.mu.Lock()
		if e.planLat == nil {
			e.planLat = make([]float64, 0, planRingCap)
		}
		if len(e.planLat) < planRingCap {
			e.planLat = append(e.planLat, ns)
		} else {
			e.planLat[e.planIdx] = ns
		}
		e.planIdx = (e.planIdx + 1) % planRingCap
		if e.planCount == 0 {
			e.planFirst = ns
		}
		e.planCount++
		e.planLast = ns
		e.mu.Unlock()
	}

	clean := total - len(jobs)
	if e.cfg.Rec != nil {
		e.cfg.Rec.ServeEpochs.Add(1)
		e.cfg.Rec.ServePlans.Add(uint64(planned))
		e.cfg.Rec.ServeClean.Add(uint64(clean))
	}
	res := EpochResult{
		Epoch:   epoch,
		Applied: applied,
		Planned: planned,
		Clean:   clean,
		Members: total,
		Digest:  digest(epoch, jobs),
	}
	if journal != nil {
		journal.epoch(res)
		// Snapshot-triggered rotation: every SnapshotEvery epochs the
		// journal starts a new segment headed by a full-state snapshot
		// (which carries the pending queue) and compacts the old ones.
		if journal.wantSnapshot(epoch) {
			e.snapshotNow(journal)
		}
	}
	return res, solveErr
}

// applyLocked applies admitted operations in order under e.mu and
// returns how many took effect.
func (e *Engine) applyLocked(ops []op) int {
	applied := 0
	for _, o := range ops {
		switch o.kind {
		case opRegister:
			m, found := e.members[o.id]
			if !found {
				m = &member{id: o.id}
				e.members[o.id] = m
				e.order = append(e.order, m)
			}
			m.energy, m.distance, m.dirty = o.energy, o.distance, true
			if e.cfg.Rec != nil {
				e.cfg.Rec.ServeRegisters.Add(1)
			}
			applied++
		case opUpdate:
			m, found := e.members[o.id]
			if !found {
				continue // raced a shed register; nothing to update
			}
			m.energy, m.distance = o.energy, o.distance
			if !m.dirty {
				m.dirty = e.dirtyAgainst(m)
			}
			if e.cfg.Rec != nil {
				e.cfg.Rec.ServeUpdates.Add(1)
			}
			applied++
		case opHub:
			e.hubEnergy = o.energy
			for _, m := range e.order {
				if !m.dirty {
					m.dirty = e.dirtyAgainst(m)
				}
			}
			applied++
		}
	}
	return applied
}

// modeNames[mask] is the canonical shared Plan.Modes slice for an
// availability bitmask (bit m set when phy.Mode m is present, names in
// canonical order). Plans share these immutable slices instead of
// allocating per-plan name slices — there are only 2^NumModes of them.
var modeNames = func() (t [1 << phy.NumModes][]string) {
	for mask := range t {
		names := []string{}
		for _, m := range phy.Modes {
			if mask&(1<<uint(m)) != 0 {
				names = append(names, m.String())
			}
		}
		t[mask] = names
	}
	return
}()

// buildPlan constructs job i's plan from the arena's slot i: fractions
// and mixture from the batch offload kernel, blocks from the
// largest-remainder counts directly (the exact per-mode counts
// core.ScheduleBlocks would realize, without materializing the
// sequence), mode names from the canonical shared table. Fractions and
// Blocks are freshly allocated — committed plans are retained and
// concurrently marshaled by PlanFor readers, so arena rows must never
// escape into them.
func (e *Engine) buildPlan(j *planJob, i int, epoch uint64, hubE units.Joule) {
	n := int(e.batch.Cols.Len[i])
	if n == 0 {
		j.err = fmt.Errorf("out of range at %.2fm", float64(j.distance))
		return
	}
	if err := e.batch.Errs[i]; err != nil {
		j.err = err
		return
	}
	p := Plan{
		Epoch:     epoch,
		Ratio:     float64(hubE) / float64(j.energy),
		Distance:  float64(j.distance),
		Fractions: make([]float64, n),
		Blocks:    make([]int, n),
		Bits:      e.batch.Bits[i],
	}
	copy(p.Fractions, e.batch.PRow(i))
	copy(p.Blocks, e.batch.BlockCountsRow(i, e.cfg.Window))
	mask := 0
	base := i * phy.NumModes
	for s := 0; s < n; s++ {
		mask |= 1 << uint(e.batch.Cols.Mode[base+s])
	}
	p.Modes = modeNames[mask]
	j.plan = p
}

// digest hashes the epoch's solved plans in commit order: member id,
// the exact fraction bit patterns, block counts, and deliverable bits.
// Failed solves contribute their member id with an error marker so a
// replay diverging into an error is caught too.
func digest(epoch uint64, jobs []planJob) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(epoch)
	put(uint64(len(jobs)))
	for i := range jobs {
		j := &jobs[i]
		h.Write([]byte(j.m.id))
		if j.err != nil {
			put(^uint64(0))
			continue
		}
		for _, f := range j.plan.Fractions {
			put(math.Float64bits(f))
		}
		for _, n := range j.plan.Blocks {
			put(uint64(n))
		}
		put(math.Float64bits(j.plan.Bits))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
