// Package serve is the online planning engine behind the braidio-serve
// daemon: a multi-tenant, epoch-batched version of the Eq. (1) offload
// planner. Devices register once, stream energy and link updates, and
// read back mode-fraction plans; the engine re-solves only for members
// whose inputs drifted past tolerance since their last plan (the
// dirty-set generalization of core.Braid's allocation memo), batches
// admissions per epoch, sheds load when the admission queue is full,
// and journals every admitted operation so a captured session replays
// bit-identically through the same batch planner.
//
// Member state is sharded (see shard.go): each power-of-two shard owns
// its members behind its own lock, epochs pipeline apply → plan →
// commit per shard over internal/par, and /v1/plan reads touch only the
// owning shard — so a million-member epoch no longer serializes every
// read behind one engine-wide mutex.
//
// Determinism contract: a single sequenced router preserves admission
// order within each shard (hub ops broadcast at their admission
// position), plans are solved into index-owned slots, and the epoch
// digest folds the shards' seq-ordered job lists back into global
// registration order — so an epoch's plan set, and the FNV-1a digest
// over it, is bit-identical at any shard count and any worker count.
// That is what Replay checks.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"braidio/internal/linkcache"
	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// Config parameterizes an Engine. The zero value is unusable; call
// (*Config).withDefaults via NewEngine to fill gaps.
type Config struct {
	// Workers bounds the planning pool (<= 0 selects GOMAXPROCS).
	Workers int
	// Shards is the member-state shard count, rounded up to a power of
	// two (<= 0 selects a power of two at least GOMAXPROCS, capped at
	// 64). Purely operational: digests, journals, and snapshots are
	// bit-identical at any shard count.
	Shards int
	// QueueCap bounds the admission queue; operations arriving when the
	// queue is full are shed (Enqueue returns false, HTTP returns 503).
	QueueCap int
	// RatioTolerance is the symmetric relative tolerance on the battery
	// ratio E_hub/E_member within which a member's existing plan is
	// reused — the serve-side analogue of core.Braid's
	// AllocationTolerance. Zero demands exact equality (every update
	// dirties its member).
	RatioTolerance float64
	// DistanceTolerance is the same predicate applied to the reported
	// link distance, the input to PHY characterization.
	DistanceTolerance float64
	// Window is the block-schedule window length handed to
	// core.ScheduleBlocks when expanding fractions into frame slots.
	Window int
	// HubEnergy is the hub-side budget E1 shared by every member's
	// solve (the carrier/hub battery of the paper's asymmetric setup).
	HubEnergy units.Joule
	// FadeMargin derates the PHY model's link budgets (dB).
	FadeMargin units.DB
	// PayloadLen sets the PHY framing (bytes); 0 keeps the model default.
	PayloadLen int
	// JournalFailStop, when a journal is attached, sheds every admission
	// (ErrJournalBroken, HTTP 503) once the journal has failed — the
	// engine stops accepting operations it cannot make durable. Off, the
	// engine keeps serving and the broken journal is visible only through
	// Stats and /healthz.
	JournalFailStop bool
	// Rec receives serve counters; nil disables recording.
	Rec *obs.Recorder
}

// maxShards bounds the shard table; beyond this the per-shard fixed
// costs (arena, lock, stage bookkeeping) outweigh any contention win.
const maxShards = 1 << 10

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 1 << 16
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.HubEnergy <= 0 {
		c.HubEnergy = 10
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	c.Shards = ceilPow2(c.Shards)
	if c.Shards > maxShards {
		c.Shards = maxShards
	}
	return c
}

// Plan is one member's current mode-fraction plan.
type Plan struct {
	// Epoch is the epoch the plan was solved in.
	Epoch uint64 `json:"epoch"`
	// Ratio is the battery ratio E_hub/E_member the plan was solved at;
	// the dirty-set predicate compares fresh updates against it.
	Ratio float64 `json:"ratio"`
	// Distance is the link distance the plan was characterized at.
	Distance float64 `json:"distance_m"`
	// Modes and Fractions are the allocation, aligned: bit fractions
	// per available mode, summing to 1.
	Modes     []string  `json:"modes"`
	Fractions []float64 `json:"fractions"`
	// Blocks is the largest-remainder expansion of Fractions into
	// contiguous per-mode slot counts over the configured window.
	Blocks []int `json:"blocks"`
	// Bits is the deliverable payload before one endpoint drains.
	Bits float64 `json:"bits"`
}

// opKind discriminates admitted operations.
type opKind uint8

const (
	opRegister opKind = iota
	opUpdate
	opHub
)

// op is one admitted mutation, applied in admission order at the next
// epoch boundary.
type op struct {
	kind     opKind
	id       string
	energy   units.Joule
	distance units.Meter
}

// member is one registered device's engine-side state. id and seq are
// immutable after creation; everything else is guarded by the owning
// shard's lock. seq is the member's global registration index — the
// cross-shard sort key that reassembles registration order for the
// digest. live distinguishes a member whose register op has applied
// from one the router pre-created for an op later in the same drain
// (updates admitted before the register must still be skipped, exactly
// as the single-lock engine skipped unknown ids).
type member struct {
	id       string
	seq      uint64
	live     bool
	energy   units.Joule
	distance units.Meter
	dirty    bool
	plan     Plan
	hasPlan  bool
}

// EpochResult summarizes one RunEpoch: how many members were re-planned
// versus served by their existing plan, and the deterministic digest
// over every plan solved this epoch.
type EpochResult struct {
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
	Planned int    `json:"planned"`
	Clean   int    `json:"clean"`
	Members int    `json:"members"`
	// Digest is the FNV-1a 64 hash over (epoch, id, fraction bits,
	// blocks, bit count) of every plan solved this epoch, in
	// registration order. Bit-identical across replays, worker counts,
	// and shard counts.
	Digest string `json:"digest"`
}

// Engine is the epoch-batched multi-tenant planner. All methods are
// safe for concurrent use; RunEpoch itself must not be called
// concurrently with another RunEpoch (the daemon drives it from a
// single ticker goroutine).
type Engine struct {
	cfg   Config
	model *phy.Model
	view  *linkcache.View

	queueMu  sync.Mutex
	queue    []op
	admitted uint64 // cumulative ops admitted, ever (incl. restored history)

	// mu is the residual global lock: hub budget, epoch counter, and
	// the global registration order (the snapshot/digest iteration
	// order). All member state lives in the shards.
	mu        sync.RWMutex
	hubEnergy units.Joule
	order     []*member // registration order — the deterministic commit order
	epoch     uint64

	// shards own the member state; shardFor masks a SplitMix64 hash of
	// the id into the power-of-two table.
	shards    []*shard
	shardMask uint64
	// nextSeq is the next member's registration index. Written only by
	// the epoch router (under epochMu) and restoreSnapshot (pre-traffic).
	nextSeq uint64

	epochMu sync.Mutex // serializes RunEpoch

	// Stage latency rings for /v1/stats percentiles: wall time of each
	// epoch's apply phase (drain-to-applied, max across shards) and plan
	// phase (characterize + batch solve + plan build, max across
	// planning shards). Only epochs that applied (resp. planned) at
	// least one op (member) are recorded. Strictly observational —
	// never touches EpochResult or the digest.
	latMu    sync.Mutex
	planLat  latRing
	applyLat latRing

	journal *Journal // nil when capture is off
}

// NewEngine builds an engine from a config, applying defaults.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	m := phy.NewModel()
	m.FadeMargin = cfg.FadeMargin
	if cfg.PayloadLen > 0 {
		m.PayloadLen = cfg.PayloadLen
	}
	e := &Engine{
		cfg:       cfg,
		model:     m,
		view:      linkcache.NewView(m),
		queue:     make([]op, 0, cfg.QueueCap),
		hubEnergy: cfg.HubEnergy,
		shards:    make([]*shard, cfg.Shards),
		shardMask: uint64(cfg.Shards - 1),
	}
	for i := range e.shards {
		e.shards[i] = &shard{members: make(map[string]*member)}
	}
	return e
}

// Config returns the engine's effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// AttachJournal starts capturing admitted operations and epoch digests
// to j. Attach before serving traffic — operations admitted earlier are
// not in the journal and the replay would diverge.
func (e *Engine) AttachJournal(j *Journal) {
	e.queueMu.Lock()
	e.journal = j
	e.queueMu.Unlock()
}

// ErrShed reports an operation dropped because the admission queue was
// full — the backpressure signal the HTTP layer maps to 503.
var ErrShed = errors.New("serve: admission queue full, operation shed")

// ErrJournalBroken reports an operation shed under the fail-stop policy
// because the attached journal has failed: the engine refuses to admit
// what it cannot make durable. Also mapped to HTTP 503.
var ErrJournalBroken = errors.New("serve: journal broken, admission refused (fail-stop)")

// enqueue admits an operation or sheds it when the queue is full (or,
// under fail-stop, when the journal is broken).
func (e *Engine) enqueue(o op) error {
	e.queueMu.Lock()
	if e.cfg.JournalFailStop && e.journal != nil {
		if err := e.journal.Err(); err != nil {
			e.queueMu.Unlock()
			if e.cfg.Rec != nil {
				e.cfg.Rec.ServeSheds.Add(1)
			}
			return fmt.Errorf("%w: %v", ErrJournalBroken, err)
		}
	}
	if len(e.queue) >= e.cfg.QueueCap {
		e.queueMu.Unlock()
		if e.cfg.Rec != nil {
			e.cfg.Rec.ServeSheds.Add(1)
		}
		return ErrShed
	}
	e.queue = append(e.queue, o)
	e.admitted++
	// Journal inside the critical section: journal order must be
	// admission order or the replay diverges.
	if e.journal != nil {
		e.journal.op(o)
	}
	e.queueMu.Unlock()
	return nil
}

// JournalErr returns the attached journal's sticky error, nil when no
// journal is attached or it is healthy. Surfaced by /healthz and Stats.
func (e *Engine) JournalErr() error {
	e.queueMu.Lock()
	j := e.journal
	e.queueMu.Unlock()
	if j == nil {
		return nil
	}
	return j.Err()
}

// Register admits a new member (or re-registers an existing one; the
// later admission wins, as with any update).
func (e *Engine) Register(id string, energy units.Joule, distance units.Meter) error {
	if id == "" {
		return errors.New("serve: empty member id")
	}
	if energy <= 0 || distance <= 0 {
		return fmt.Errorf("serve: member %q has non-positive energy %v or distance %v", id, float64(energy), float64(distance))
	}
	return e.enqueue(op{kind: opRegister, id: id, energy: energy, distance: distance})
}

// Update admits an energy/link update for a registered member. Unknown
// ids are rejected at apply time (counted, not fatal).
func (e *Engine) Update(id string, energy units.Joule, distance units.Meter) error {
	if id == "" {
		return errors.New("serve: empty member id")
	}
	if energy <= 0 || distance <= 0 {
		return fmt.Errorf("serve: member %q has non-positive energy %v or distance %v", id, float64(energy), float64(distance))
	}
	return e.enqueue(op{kind: opUpdate, id: id, energy: energy, distance: distance})
}

// SetHubEnergy admits a hub-side budget change. Since every member's
// ratio shares the hub term, the apply step rechecks the whole
// membership against tolerance.
func (e *Engine) SetHubEnergy(energy units.Joule) error {
	if energy <= 0 {
		return fmt.Errorf("serve: non-positive hub energy %v", float64(energy))
	}
	return e.enqueue(op{kind: opHub, energy: energy})
}

// PlanFor returns the member's current plan. ok is false when the id is
// unknown or not yet planned (registered but no epoch has run). Only
// the owning shard's read lock is taken — plan reads never contend with
// other shards' apply or commit, nor with the engine's global lock.
func (e *Engine) PlanFor(id string) (Plan, bool) {
	s := e.shardFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, found := s.members[id]
	if !found || !m.hasPlan {
		return Plan{}, false
	}
	return m.plan, true
}

// Stats is the engine's instantaneous state for /v1/stats.
type Stats struct {
	Members    int     `json:"members"`
	Shards     int     `json:"shards"`
	QueueDepth int     `json:"queue_depth"`
	QueueCap   int     `json:"queue_cap"`
	Epoch      uint64  `json:"epoch"`
	HubEnergy  float64 `json:"hub_energy_j"`
	// Admitted is the cumulative count of operations ever admitted,
	// surviving restarts (recovery restores it from the snapshot and
	// replayed tail) — an engine's exact position in an op schedule.
	Admitted uint64 `json:"admitted"`
	// JournalError carries the attached journal's sticky error, empty
	// when healthy or no journal is attached.
	JournalError string `json:"journal_error,omitempty"`
	// PlanP50Millis and PlanP99Millis are percentiles of the per-epoch
	// plan-phase wall time (characterize + batch solve + plan build)
	// over the most recent planning epochs; FirstPlanMillis is the
	// first planning epoch — typically the cold bulk plan of the whole
	// membership — and LastPlanMillis the most recent (warm) one. Zero
	// until an epoch has planned at least one member.
	PlanP50Millis   float64 `json:"plan_p50_ms"`
	PlanP99Millis   float64 `json:"plan_p99_ms"`
	FirstPlanMillis float64 `json:"first_plan_ms"`
	LastPlanMillis  float64 `json:"last_plan_ms"`
	// ApplyP50Millis and ApplyP99Millis are the same percentiles for the
	// apply phase (queue drain through per-shard op apply). Zero until
	// an epoch has applied at least one operation.
	ApplyP50Millis float64 `json:"apply_p50_ms"`
	ApplyP99Millis float64 `json:"apply_p99_ms"`
}

// planQuantile returns the q-quantile of sorted latencies in ns.
func planQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ringPercentiles copies and sorts a latency ring, returning its
// p50/p99 in milliseconds.
func ringPercentiles(r *latRing) (p50, p99 float64) {
	lat := append([]float64(nil), r.buf...)
	sort.Float64s(lat)
	const ms = 1e6
	return planQuantile(lat, 0.50) / ms, planQuantile(lat, 0.99) / ms
}

// Stats reports membership, queue depth, and the last completed epoch.
// It aggregates from the queue, coordination, and latency locks only —
// no shard lock is taken, so stats never stop-the-world a running
// epoch or block plan reads.
func (e *Engine) Stats() Stats {
	e.queueMu.Lock()
	depth := len(e.queue)
	admitted := e.admitted
	journal := e.journal
	e.queueMu.Unlock()
	var jerr string
	if journal != nil {
		if err := journal.Err(); err != nil {
			jerr = err.Error()
		}
	}
	e.mu.RLock()
	s := Stats{
		Members:      len(e.order),
		Shards:       len(e.shards),
		QueueDepth:   depth,
		QueueCap:     e.cfg.QueueCap,
		Epoch:        e.epoch,
		HubEnergy:    float64(e.hubEnergy),
		Admitted:     admitted,
		JournalError: jerr,
	}
	e.mu.RUnlock()
	e.latMu.Lock()
	if e.planLat.count > 0 {
		s.PlanP50Millis, s.PlanP99Millis = ringPercentiles(&e.planLat)
		const ms = 1e6
		s.FirstPlanMillis = e.planLat.first / ms
		s.LastPlanMillis = e.planLat.last / ms
	}
	if e.applyLat.count > 0 {
		s.ApplyP50Millis, s.ApplyP99Millis = ringPercentiles(&e.applyLat)
	}
	e.latMu.Unlock()
	return s
}

// planJob snapshots one dirty member's solve inputs; results land in
// index-owned slots for deterministic in-order commit.
type planJob struct {
	m        *member
	energy   units.Joule
	distance units.Meter
	plan     Plan
	err      error
}

// RunEpoch drains the admission queue, routes the operations to their
// owning shards (admission order preserved per shard, hub ops broadcast
// at their admission position), pipelines apply → plan → commit across
// the shards over the worker pool, and folds the shards' results back
// into global registration order for the epoch summary and its
// deterministic digest. Journaling (if any) is the caller's job — the
// Journal wrapper logs ops and results around this.
func (e *Engine) RunEpoch() (EpochResult, error) {
	e.epochMu.Lock()
	defer e.epochMu.Unlock()

	e.mu.Lock()
	e.epoch++
	epoch := e.epoch
	hubE := e.hubEnergy
	e.mu.Unlock()

	e.queueMu.Lock()
	ops := e.queue
	e.queue = make([]op, 0, e.cfg.QueueCap)
	// The drain marker sits in the same critical section, so every
	// journaled op unambiguously belongs to exactly one epoch.
	journal := e.journal
	if journal != nil {
		journal.drain(epoch)
	}
	e.queueMu.Unlock()

	applyStart := time.Now()

	// Sequenced router: one pass over the drained queue, fanning each op
	// to its owning shard's queue. Unknown register targets are
	// pre-created here (live=false until their register applies) so the
	// router is the only writer of shard maps and the global order —
	// member seq numbers, and therefore the digest's registration-order
	// merge, are fixed before any shard stage runs.
	hubApplied := 0
	finalHub := hubE
	var newMembers []*member
	for i := range ops {
		o := &ops[i]
		if o.kind == opHub {
			// Broadcast at this admission position: every shard sees the
			// budget change at exactly the sequence point a single-lock
			// apply would have. Counted as applied once, here.
			for _, s := range e.shards {
				s.ops = append(s.ops, *o)
			}
			finalHub = o.energy
			hubApplied++
			continue
		}
		s := e.shardFor(o.id)
		if o.kind == opRegister {
			if _, found := s.members[o.id]; !found {
				m := &member{id: o.id, seq: e.nextSeq}
				e.nextSeq++
				// Map insert under the shard lock: /v1/plan readers may
				// hold the read side right now. The unlocked lookup above
				// is safe — this router is the map's only writer.
				s.mu.Lock()
				s.members[o.id] = m
				s.mu.Unlock()
				s.order = append(s.order, m)
				newMembers = append(newMembers, m)
			}
		}
		s.ops = append(s.ops, *o)
	}
	if len(newMembers) > 0 {
		e.mu.Lock()
		e.order = append(e.order, newMembers...)
		e.mu.Unlock()
	}

	// Pipelined shard stages: each shard applies its ops, plans its
	// dirty set through its own arena, and commits — independently, so
	// one shard can be solving while another is still applying. The
	// worker pool splits into shard fan-out × intra-shard kernel
	// workers; determinism does not depend on either split.
	W := e.cfg.Workers
	if W <= 0 {
		W = runtime.GOMAXPROCS(0)
	}
	P := len(e.shards)
	outer := W
	if outer > P {
		outer = P
	}
	inner := W / P
	if inner < 1 {
		inner = 1
	}
	par.For(outer, P, func(si int) {
		e.shards[si].runStage(e, epoch, hubE, inner, applyStart)
	})

	// Commit the hub budget (shards tracked their own local copies).
	if hubApplied > 0 {
		e.mu.Lock()
		e.hubEnergy = finalHub
		e.mu.Unlock()
	}

	// Fold shard results. The first solve error across shards is the one
	// with the lowest member seq — the same "first in registration
	// order" the single-lock engine surfaced.
	applied := hubApplied
	jobsTotal := 0
	planned := 0
	var solveErr error
	var solveErrSeq uint64
	applyNs, planNs := 0.0, 0.0
	for _, s := range e.shards {
		applied += s.applied
		jobsTotal += len(s.jobs)
		planned += s.planned
		if s.firstErr != nil && (solveErr == nil || s.firstErrSeq < solveErrSeq) {
			solveErr, solveErrSeq = s.firstErr, s.firstErrSeq
		}
		if s.applyEndNs > applyNs {
			applyNs = s.applyEndNs
		}
		if len(s.jobs) > 0 && s.planNs > planNs {
			planNs = s.planNs
		}
	}

	if len(ops) > 0 {
		if e.cfg.Rec != nil {
			e.cfg.Rec.ServeApplyLatency.Observe(applyNs)
		}
		e.latMu.Lock()
		e.applyLat.observe(applyNs)
		e.latMu.Unlock()
	}
	if jobsTotal > 0 {
		if e.cfg.Rec != nil {
			e.cfg.Rec.LPSolveLatency.Observe(planNs)
			e.cfg.Rec.BatchRounds.Add(1)
		}
		e.latMu.Lock()
		e.planLat.observe(planNs)
		e.latMu.Unlock()
	}

	e.mu.RLock()
	total := len(e.order)
	e.mu.RUnlock()
	clean := total - jobsTotal
	if e.cfg.Rec != nil {
		e.cfg.Rec.ServeEpochs.Add(1)
		e.cfg.Rec.ServePlans.Add(uint64(planned))
		e.cfg.Rec.ServeClean.Add(uint64(clean))
	}
	res := EpochResult{
		Epoch:   epoch,
		Applied: applied,
		Planned: planned,
		Clean:   clean,
		Members: total,
		Digest:  e.epochDigest(epoch, jobsTotal),
	}
	if journal != nil {
		journal.epoch(res)
		// Snapshot-triggered rotation: every SnapshotEvery epochs the
		// journal starts a new segment headed by a full-state snapshot
		// (which carries the pending queue) and compacts the old ones.
		if journal.wantSnapshot(epoch) {
			e.snapshotNow(journal)
		}
	}
	return res, solveErr
}

// forEachJobInOrder walks this epoch's planned jobs across all shards
// in ascending member seq — reassembling global registration order from
// the shard-local (already seq-sorted) job lists by linear k-way merge.
// Called after the stage barrier, so the job slices are quiescent; ids,
// seqs, and the job-local plan copies are read without shard locks
// (id/seq are immutable, the plan copy is stage-owned).
func (e *Engine) forEachJobInOrder(fn func(*planJob)) {
	if len(e.shards) == 1 {
		s := e.shards[0]
		for i := range s.jobs {
			fn(&s.jobs[i])
		}
		return
	}
	idx := make([]int, len(e.shards))
	for {
		best := -1
		var bestSeq uint64
		for si, s := range e.shards {
			if idx[si] < len(s.jobs) {
				if seq := s.jobs[idx[si]].m.seq; best < 0 || seq < bestSeq {
					best, bestSeq = si, seq
				}
			}
		}
		if best < 0 {
			return
		}
		fn(&e.shards[best].jobs[idx[best]])
		idx[best]++
	}
}

// modeNames[mask] is the canonical shared Plan.Modes slice for an
// availability bitmask (bit m set when phy.Mode m is present, names in
// canonical order). Plans share these immutable slices instead of
// allocating per-plan name slices — there are only 2^NumModes of them.
var modeNames = func() (t [1 << phy.NumModes][]string) {
	for mask := range t {
		names := []string{}
		for _, m := range phy.Modes {
			if mask&(1<<uint(m)) != 0 {
				names = append(names, m.String())
			}
		}
		t[mask] = names
	}
	return
}()

// epochDigest hashes the epoch's solved plans in commit (registration)
// order: member id, the exact fraction bit patterns, block counts, and
// deliverable bits. Failed solves contribute their member id with an
// error marker so a replay diverging into an error is caught too. The
// byte stream is identical to the pre-shard engine's digest.
func (e *Engine) epochDigest(epoch uint64, jobsTotal int) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(epoch)
	put(uint64(jobsTotal))
	e.forEachJobInOrder(func(j *planJob) {
		h.Write([]byte(j.m.id))
		if j.err != nil {
			put(^uint64(0))
			return
		}
		for _, f := range j.plan.Fractions {
			put(math.Float64bits(f))
		}
		for _, n := range j.plan.Blocks {
			put(uint64(n))
		}
		put(math.Float64bits(j.plan.Bits))
	})
	return fmt.Sprintf("%016x", h.Sum64())
}
