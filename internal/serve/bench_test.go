// Serve engine benchmarks: warm drift-only epoch throughput and the
// contention profile of /v1/plan reads racing a running epoch — the
// numbers the sharded member state exists to move. The shards=1
// sub-benchmarks approximate the pre-shard single-lock engine (one
// shard's lock serializes exactly what the global mutex used to), so
// the shards=16 deltas measure the sharding win directly.

package serve

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"braidio/internal/units"
)

// benchEngine registers n members and runs the cold bulk plan, leaving
// a warm arena and a fully planned membership.
func benchEngine(b *testing.B, shards, workers, n int) *Engine {
	b.Helper()
	cfg := Config{
		Shards:            shards,
		Workers:           workers,
		RatioTolerance:    0.05,
		DistanceTolerance: 0.05,
		Window:            64,
		HubEnergy:         10,
		QueueCap:          2*n + 1024,
	}
	e := NewEngine(cfg)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%d", i)
		if err := e.Register(id, units.Joule(0.4+0.01*float64(i%40)), units.Meter(0.5+0.015*float64(i%200))); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := e.RunEpoch(); err != nil {
		b.Fatal(err)
	}
	return e
}

// driftEpoch pushes the members in [lo, lo+k) past tolerance (flipping
// between two energy levels so every round re-dirties) and runs one
// epoch.
func driftEpoch(b *testing.B, e *Engine, round, lo, k int) {
	updateRange(b, e, round, lo, k, 0.5)
	if _, err := e.RunEpoch(); err != nil {
		b.Fatal(err)
	}
}

// updateRange admits updates for members [lo, lo+k) at scale× their
// registration energy (alternating back on odd rounds); 0.5 drifts past
// the 5% tolerance, 1.004 jitters within it.
func updateRange(b *testing.B, e *Engine, round, lo, k int, scale float64) {
	if round%2 == 1 {
		scale = 1 / scale
	}
	for i := lo; i < lo+k; i++ {
		energy := (0.4 + 0.01*float64(i%40)) * scale
		if err := e.Update(fmt.Sprintf("m%d", i), units.Joule(energy), units.Meter(0.5+0.015*float64(i%200))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeEpochWarmDrift is the steady-state epoch: 50k members,
// 1% drifting per round, everyone else served by their existing plan.
func BenchmarkServeEpochWarmDrift(b *testing.B) {
	const n, k = 50_000, 500
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, shards, 0, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				driftEpoch(b, e, i, 0, k)
			}
		})
	}
}

// BenchmarkServePlanReadDuringEpoch measures GET /v1/plan's engine path
// (PlanFor) issued while RunEpoch's apply phase holds a member-state
// write lock — the reader stall the single global lock caused and
// sharding removes. Each iteration admits a 50k-member jitter wave
// (within tolerance, so the epoch is pure apply — the phase that must
// hold the write lock), starts the epoch, waits until the apply stage
// actually holds some shard's write lock, and times one read against
// that shard. With one shard the read waits out the rest of a 50k-op
// critical section; with 16 shards only that shard's ~3k slice.
//
// Workers is pinned to 1 so lock granularity is the only variable
// between the configs, and GOMAXPROCS is raised to at least 2 so the
// probe goroutine interleaves with the apply stage even on a single
// CPU (kernel preemption between the two OS threads). Reads that miss
// every apply window (the epoch finished first) are skipped, not
// counted. Reports stalled-read p50/p99 in ns and the hit rate.
func BenchmarkServePlanReadDuringEpoch(b *testing.B) {
	const n, wave = 100_000, 50_000
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, shards, 1, n)
			// One probe member per shard, so whichever shard the apply
			// stage is holding can be read through.
			probes := make([]string, len(e.shards))
			found := 0
			for i := 0; i < n && found < len(probes); i++ {
				id := fmt.Sprintf("m%d", i)
				for si, s := range e.shards {
					if probes[si] == "" && e.shardFor(id) == s {
						probes[si] = id
						found++
						break
					}
				}
			}
			if found < len(probes) {
				b.Fatal("some shard has no probe member")
			}
			lat := make([]float64, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				updateRange(b, e, i, 0, wave, 1.004)
				var epochDone atomic.Bool
				done := make(chan error, 1)
				go func() {
					_, err := e.RunEpoch()
					epochDone.Store(true)
					done <- err
				}()
				// Spin until the apply stage holds a shard's write lock,
				// then read through it. TryRLock fails exactly while a
				// writer holds (or waits for) the lock.
			spin:
				for !epochDone.Load() {
					for si, s := range e.shards {
						if s.mu.TryRLock() {
							s.mu.RUnlock()
							continue
						}
						t0 := time.Now()
						if _, ok := e.PlanFor(probes[si]); !ok {
							b.Fatalf("no plan for %s", probes[si])
						}
						lat = append(lat, float64(time.Since(t0)))
						break spin
					}
					runtime.Gosched()
				}
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if len(lat) == 0 {
				// Too few iterations to land a read in an apply window
				// (1x smoke runs); nothing to report.
				return
			}
			sort.Float64s(lat)
			b.ReportMetric(planQuantile(lat, 0.50), "p50-stall-ns")
			b.ReportMetric(planQuantile(lat, 0.99), "p99-stall-ns")
			b.ReportMetric(float64(len(lat))/float64(b.N), "hit-rate")
		})
	}
}
