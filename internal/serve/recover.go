// Startup recovery for segmented journals: restore the newest intact
// snapshot, replay the segment tail re-verifying every epoch digest bit
// for bit, truncate a crash-torn tail, and hand back a ready engine
// with a fresh snapshot-headed segment attached.
//
// Recovery state machine:
//
//	scan segments ──► pick base: newest segment with a valid snapshot
//	      │            head (a torn head is tolerated only on the
//	      │            newest segment — rotation fsyncs a head before
//	      │            deleting anything older, so a crash can tear at
//	      │            most the newest; anything else is bit rot and a
//	      │            hard error)
//	      ▼
//	restore snapshot ─► membership + plans + hub budget + epoch counter
//	      ▼              + pending queue + admitted-op count
//	replay tail ──────► re-admit ops in journal order; at each drain,
//	      │             re-run the epoch and demand the journaled digest
//	      │             matches the recomputed one bit for bit
//	      ▼
//	torn tail ────────► first partial/corrupt record with nothing
//	      │             readable after it: truncate (count records and
//	      │             bytes); a corrupt record with valid records
//	      │             after it is pre-crash corruption — hard error
//	      ▼
//	rotate ───────────► write a fresh snapshot of the recovered state as
//	                    the head of a new segment, compact older ones

package serve

import (
	"errors"
	"fmt"
	"io"
	"os"

	"braidio/internal/units"
)

// RecoveryStats reports what startup recovery found and did.
type RecoveryStats struct {
	// Segments is how many segment files the directory held at startup;
	// BaseSegment is the index recovery restored from.
	Segments    int `json:"segments"`
	BaseSegment int `json:"base_segment"`
	// SnapshotEpoch and SnapshotMembers describe the restored snapshot.
	SnapshotEpoch   uint64 `json:"snapshot_epoch"`
	SnapshotMembers int    `json:"snapshot_members"`
	// Ops counts post-snapshot operations replayed from the tail —
	// recovery work is proportional to this, not to history length.
	Ops int `json:"ops"`
	// Epochs counts drains re-run; Matched counts digests verified
	// bit-for-bit against journaled epoch records (Epochs can exceed
	// Matched by one when the crash cut the final epoch record).
	Epochs  int `json:"epochs"`
	Matched int `json:"matched"`
	// TornRecords and TornBytes quantify the truncated tail;
	// TornSegments is 1 when the newest segment's head itself was torn
	// (crash mid-rotation) and recovery fell back to the previous one.
	TornRecords  int   `json:"torn_records"`
	TornBytes    int64 `json:"torn_bytes"`
	TornSegments int   `json:"torn_segments"`
	// Resumed is the epoch counter after recovery; the next epoch will
	// be Resumed+1, exactly as if the daemon had never died.
	Resumed uint64 `json:"resumed_epoch"`
	// Digests are the digests of the epochs re-run during tail replay,
	// in order — the continuity proof soak tests compare against an
	// uninterrupted reference run.
	Digests []string `json:"-"`
}

// errNoSegments distinguishes "empty directory, start fresh" from a
// recovery failure.
var errNoSegments = errors.New("serve: journal directory has no segments")

// readSegmentHead opens a segment and returns its head snapshot and a
// reader positioned at the tail. Any head defect — missing, torn,
// CRC-mismatched, or not a snapshot — is an error; the caller decides
// whether that is a tolerable torn rotation or corruption.
func readSegmentHead(seg segmentInfo) (*snapshotRecord, *os.File, *lineReader, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, nil, nil, err
	}
	// Snapshot lines scale with membership (a plan per member), so the
	// cap is generous; it exists only to bound memory on garbage input.
	lr := newLineReader(f, 1<<30)
	data, complete, err := lr.read()
	if err != nil {
		f.Close()
		if err == io.EOF {
			return nil, nil, nil, fmt.Errorf("segment %s: empty", seg.path)
		}
		return nil, nil, nil, fmt.Errorf("segment %s: %w", seg.path, err)
	}
	if !complete {
		f.Close()
		return nil, nil, nil, fmt.Errorf("segment %s: torn snapshot head", seg.path)
	}
	rec, derr := decodeJournalLine(data, false)
	if derr != nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("segment %s: snapshot head: %w", seg.path, derr)
	}
	if rec.T != "snap" || rec.Snap == nil {
		f.Close()
		return nil, nil, nil, fmt.Errorf("segment %s: head record is %q, want snapshot", seg.path, rec.T)
	}
	return rec.Snap, f, lr, nil
}

// recoverEngine restores an engine from the journal directory. cfg
// supplies the operational fields (Workers, QueueCap, Rec,
// JournalFailStop); planner-semantic fields come from the recovered
// snapshot. Returns errNoSegments when the directory holds no segments.
func recoverEngine(dir string, cfg Config) (*Engine, RecoveryStats, error) {
	var stats RecoveryStats
	segs, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	stats.Segments = len(segs)
	if len(segs) == 0 {
		return nil, stats, errNoSegments
	}

	// Pick the recovery base: the newest segment with an intact
	// snapshot head. A torn head is a crash mid-rotation and is legal
	// only on the newest segment; rotation's write ordering (head
	// fsynced before deletions) guarantees the previous segment is
	// still whole.
	base := len(segs) - 1
	snap, f, lr, headErr := readSegmentHead(segs[base])
	if headErr != nil {
		if len(segs) < 2 {
			return nil, stats, fmt.Errorf("serve: no intact snapshot to recover from (pre-snapshot corruption): %w", headErr)
		}
		stats.TornSegments = 1
		stats.TornRecords++
		stats.TornBytes += segs[base].size
		base--
		snap, f, lr, err = readSegmentHead(segs[base])
		if err != nil {
			return nil, stats, fmt.Errorf("serve: newest segment torn (%v) and fallback also unusable (pre-snapshot corruption): %w", headErr, err)
		}
	}
	defer f.Close()
	stats.BaseSegment = segs[base].idx
	stats.SnapshotEpoch = snap.Epoch
	stats.SnapshotMembers = len(snap.Members)

	eng := NewEngine(mergeConfig(cfg, snap.Cfg))
	if err := eng.restoreSnapshot(snap); err != nil {
		return nil, stats, fmt.Errorf("serve: segment %s: %w", segs[base].path, err)
	}

	// Replay the tail: re-admit in journal order, re-run each drained
	// epoch, verify digests. Only records in this one segment matter —
	// everything older is superseded by the snapshot, everything newer
	// (at most one torn segment) was discarded above.
	var pending *EpochResult
	for {
		data, _, rerr := lr.read()
		if rerr == io.EOF {
			break
		}
		line := lr.line
		tornAt := func() {
			stats.TornRecords++
			stats.TornBytes += segs[base].size - lr.off
		}
		if rerr != nil {
			return nil, stats, fmt.Errorf("serve: segment %s line %d: %w", segs[base].path, line, rerr)
		}
		if len(data) == 0 {
			continue
		}
		rec, derr := decodeJournalLine(data, false)
		if derr != nil {
			// Torn tail only if nothing readable follows; a corrupt
			// record with valid history after it predates the crash.
			if _, _, nerr := lr.read(); nerr == io.EOF {
				tornAt()
				break
			}
			return nil, stats, fmt.Errorf("serve: segment %s line %d: corrupt record with valid records after it: %w", segs[base].path, line, derr)
		}
		var aerr error
		switch rec.T {
		case "reg":
			aerr = eng.Register(rec.ID, units.Joule(rec.E), units.Meter(rec.D))
			stats.Ops++
		case "upd":
			aerr = eng.Update(rec.ID, units.Joule(rec.E), units.Meter(rec.D))
			stats.Ops++
		case "hub":
			aerr = eng.SetHubEnergy(units.Joule(rec.E))
			stats.Ops++
		case "drain":
			if want := eng.Stats().Epoch + 1; rec.Epoch != want {
				return nil, stats, fmt.Errorf("serve: segment %s line %d: drain epoch %d, want %d", segs[base].path, line, rec.Epoch, want)
			}
			got, _ := eng.RunEpoch()
			pending = &got
			stats.Epochs++
			stats.Digests = append(stats.Digests, got.Digest)
		case "epoch":
			if pending == nil {
				return nil, stats, fmt.Errorf("serve: segment %s line %d: epoch record with no preceding drain", segs[base].path, line)
			}
			if pending.Digest != rec.Digest {
				return nil, stats, fmt.Errorf("serve: epoch %d diverged on recovery: recomputed digest %s, journal %s",
					rec.Epoch, pending.Digest, rec.Digest)
			}
			if pending.Planned != rec.Planned || pending.Members != rec.Members {
				return nil, stats, fmt.Errorf("serve: epoch %d diverged on recovery: recomputed planned %d/%d members, journal %d/%d",
					rec.Epoch, pending.Planned, pending.Members, rec.Planned, rec.Members)
			}
			pending = nil
			stats.Matched++
		case "snap":
			return nil, stats, fmt.Errorf("serve: segment %s line %d: unexpected snapshot record mid-segment", segs[base].path, line)
		default:
			return nil, stats, fmt.Errorf("serve: segment %s line %d: unknown record type %q", segs[base].path, line, rec.T)
		}
		if aerr != nil {
			if errors.Is(aerr, ErrShed) {
				return nil, stats, fmt.Errorf("serve: segment %s line %d: admission shed during recovery — raise the queue cap to at least the capture's: %w", segs[base].path, line, aerr)
			}
			return nil, stats, fmt.Errorf("serve: segment %s line %d: %w", segs[base].path, line, aerr)
		}
	}
	stats.Resumed = eng.Stats().Epoch
	return eng, stats, nil
}

// VerifyDir replays a journal directory read-only — the directory-mode
// analogue of Replay: restore the newest snapshot, replay the tail,
// verify every epoch digest bit for bit. Nothing is written.
func VerifyDir(dir string) (RecoveryStats, error) {
	_, stats, err := recoverEngine(dir, Config{})
	if errors.Is(err, errNoSegments) {
		return stats, fmt.Errorf("serve: %s: no journal segments to verify", dir)
	}
	if err != nil {
		return stats, err
	}
	return stats, nil
}

// Open opens (creating if needed) a segmented journal directory,
// recovers engine state from the newest snapshot plus the journal tail,
// writes a fresh snapshot of the recovered state as the head of a new
// segment, compacts, and returns the ready engine with the journal
// attached. The returned engine resumes exactly where the previous
// process stopped: same membership, same plans, same epoch counter,
// bit-identical future digests.
func Open(dir string, cfg Config, opts JournalOptions) (*Engine, *Journal, RecoveryStats, error) {
	opts = opts.withDefaults()
	if opts.Rec == nil {
		opts.Rec = cfg.Rec
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryStats{}, err
	}
	eng, stats, err := recoverEngine(dir, cfg)
	switch {
	case errors.Is(err, errNoSegments):
		eng = NewEngine(cfg)
	case err != nil:
		return nil, nil, stats, err
	default:
		if opts.Rec != nil {
			opts.Rec.ServeRecoveries.Add(1)
			opts.Rec.ServeTornRecords.Add(uint64(stats.TornRecords))
		}
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, stats, err
	}
	nextAfter := -1 // rotation starts at idx+1, so -1 yields seg-0000
	if len(segs) > 0 {
		nextAfter = segs[len(segs)-1].idx
	}
	j := &Journal{
		policy: opts.Sync, rec: opts.Rec,
		dir: dir, idx: nextAfter,
		every: opts.SnapshotEvery, retain: opts.Retain,
		ownsFile: true,
	}
	// Seed the new segment with a snapshot of the recovered (or fresh)
	// state; the rotation also compacts everything it supersedes.
	eng.snapshotNow(j)
	if jerr := j.Err(); jerr != nil {
		return nil, nil, stats, fmt.Errorf("serve: starting journal segment: %w", jerr)
	}
	eng.AttachJournal(j)
	return eng, j, stats, nil
}
