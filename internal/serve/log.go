// Journal capture and deterministic replay. A journal is a JSONL
// stream: one config record, then admitted operations interleaved with
// epoch boundaries. Operation records are written inside the admission
// queue's critical section, so journal order IS admission order; the
// "drain" marker is written in the same critical section that empties
// the queue, so replay knows exactly which operations each epoch saw.
// The "epoch" record that follows carries the plan digest the live run
// produced — Replay re-runs the batch planner over the journaled
// operations and demands the digests match bit for bit.

package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"braidio/internal/units"
)

// record is the single flat JSONL record shape; T discriminates.
type record struct {
	T string `json:"t"`

	// op fields (t = "reg" | "upd" | "hub")
	ID string  `json:"id,omitempty"`
	E  float64 `json:"e,omitempty"`
	D  float64 `json:"d,omitempty"`

	// epoch fields (t = "drain" | "epoch")
	Epoch   uint64 `json:"epoch,omitempty"`
	Planned int    `json:"planned,omitempty"`
	Clean   int    `json:"clean,omitempty"`
	Members int    `json:"members,omitempty"`
	Digest  string `json:"digest,omitempty"`

	// config fields (t = "config")
	RatioTol float64 `json:"ratio_tol,omitempty"`
	DistTol  float64 `json:"dist_tol,omitempty"`
	Window   int     `json:"window,omitempty"`
	HubJ     float64 `json:"hub_j,omitempty"`
	FadeDB   float64 `json:"fade_db,omitempty"`
	Payload  int     `json:"payload,omitempty"`
	QueueCap int     `json:"queue_cap,omitempty"`
}

// Journal captures a session for replay. Safe for concurrent writers;
// the engine calls it from inside its admission-queue critical section
// so record order matches admission order.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJournal starts a journal on w by writing the engine config header.
func NewJournal(w io.Writer, cfg Config) *Journal {
	j := &Journal{w: bufio.NewWriterSize(w, 1<<16)}
	j.write(record{
		T: "config", RatioTol: cfg.RatioTolerance, DistTol: cfg.DistanceTolerance,
		Window: cfg.Window, HubJ: float64(cfg.HubEnergy), FadeDB: float64(cfg.FadeMargin),
		Payload: cfg.PayloadLen, QueueCap: cfg.QueueCap,
	})
	return j
}

func (j *Journal) write(r record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		j.err = err
		return
	}
	b = append(b, '\n')
	_, j.err = j.w.Write(b)
}

// Close flushes buffered records and returns the first write error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Flush(); j.err == nil {
		j.err = err
	}
	return j.err
}

func (j *Journal) op(o op) {
	r := record{ID: o.id, E: float64(o.energy), D: float64(o.distance)}
	switch o.kind {
	case opRegister:
		r.T = "reg"
	case opUpdate:
		r.T = "upd"
	case opHub:
		r.T = "hub"
	}
	j.write(r)
}

func (j *Journal) drain(epoch uint64) {
	j.write(record{T: "drain", Epoch: epoch})
}

func (j *Journal) epoch(res EpochResult) {
	j.write(record{
		T: "epoch", Epoch: res.Epoch, Planned: res.Planned,
		Clean: res.Clean, Members: res.Members, Digest: res.Digest,
	})
}

// ReplayResult summarizes a verified replay.
type ReplayResult struct {
	Epochs  int // epoch boundaries re-run
	Ops     int // operations re-admitted
	Matched int // epoch digests compared against the journal
}

// Replay reads a captured journal, rebuilds a fresh engine from its
// config header, re-admits every operation, re-runs every epoch at the
// journaled boundaries, and verifies each recomputed plan digest
// against the captured one. Any divergence — digest, planned count, or
// membership — is an error. A trailing drain with no epoch record
// (daemon killed mid-epoch) is tolerated.
func Replay(r io.Reader) (ReplayResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)

	var res ReplayResult
	var eng *Engine
	var pending *EpochResult
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return res, fmt.Errorf("serve: journal line %d: %w", line, err)
		}
		if eng == nil {
			if rec.T != "config" {
				return res, fmt.Errorf("serve: journal line %d: want config header, got %q", line, rec.T)
			}
			eng = NewEngine(Config{
				RatioTolerance:    rec.RatioTol,
				DistanceTolerance: rec.DistTol,
				Window:            rec.Window,
				HubEnergy:         units.Joule(rec.HubJ),
				FadeMargin:        units.DB(rec.FadeDB),
				PayloadLen:        rec.Payload,
				QueueCap:          rec.QueueCap,
			})
			continue
		}
		var err error
		switch rec.T {
		case "reg":
			err = eng.Register(rec.ID, units.Joule(rec.E), units.Meter(rec.D))
			res.Ops++
		case "upd":
			err = eng.Update(rec.ID, units.Joule(rec.E), units.Meter(rec.D))
			res.Ops++
		case "hub":
			err = eng.SetHubEnergy(units.Joule(rec.E))
			res.Ops++
		case "drain":
			got, _ := eng.RunEpoch() // solve errors are part of the digest
			pending = &got
			res.Epochs++
		case "epoch":
			if pending == nil {
				return res, fmt.Errorf("serve: journal line %d: epoch record with no preceding drain", line)
			}
			if pending.Digest != rec.Digest {
				return res, fmt.Errorf("serve: epoch %d diverged: replay digest %s, journal %s",
					rec.Epoch, pending.Digest, rec.Digest)
			}
			if pending.Planned != rec.Planned || pending.Members != rec.Members {
				return res, fmt.Errorf("serve: epoch %d diverged: replay planned %d/%d members, journal %d/%d",
					rec.Epoch, pending.Planned, pending.Members, rec.Planned, rec.Members)
			}
			pending = nil
			res.Matched++
		default:
			return res, fmt.Errorf("serve: journal line %d: unknown record type %q", line, rec.T)
		}
		if err != nil {
			return res, fmt.Errorf("serve: journal line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return res, err
	}
	if eng == nil {
		return res, fmt.Errorf("serve: empty journal")
	}
	return res, nil
}
