// Journal capture and deterministic replay. A journal is a stream of
// CRC-framed JSONL records (see segment.go): one header record, then
// admitted operations interleaved with epoch boundaries. Operation
// records are written inside the admission queue's critical section, so
// journal order IS admission order; the "drain" marker is written in
// the same critical section that empties the queue, so replay knows
// exactly which operations each epoch saw. The "epoch" record that
// follows carries the plan digest the live run produced — Replay
// re-runs the batch planner over the journaled operations and demands
// the digests match bit for bit.
//
// Two storage modes share this encoder. Writer mode (NewJournal /
// NewJournalFile) appends a single stream headed by a "config" record.
// Directory mode (serve.Open) writes snapshot-headed segments with
// rotation and compaction; see segment.go and recover.go.
//
// Unlike the pre-durability journal, write failures are not silently
// deferred to Close: the first error is sticky, Err surfaces it to
// /healthz and Stats, every subsequently dropped record bumps the
// journal-error counter, and with Config.JournalFailStop the engine
// sheds admissions (503) rather than admit operations it cannot make
// durable.

package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"braidio/internal/obs"
	"braidio/internal/units"
)

// record is the single flat JSONL record shape; T discriminates.
type record struct {
	T string `json:"t"`

	// op fields (t = "reg" | "upd" | "hub")
	ID string  `json:"id,omitempty"`
	E  float64 `json:"e,omitempty"`
	D  float64 `json:"d,omitempty"`

	// epoch fields (t = "drain" | "epoch")
	Epoch   uint64 `json:"epoch,omitempty"`
	Planned int    `json:"planned,omitempty"`
	Clean   int    `json:"clean,omitempty"`
	Members int    `json:"members,omitempty"`
	Digest  string `json:"digest,omitempty"`

	// config fields (t = "config")
	RatioTol float64 `json:"ratio_tol,omitempty"`
	DistTol  float64 `json:"dist_tol,omitempty"`
	Window   int     `json:"window,omitempty"`
	HubJ     float64 `json:"hub_j,omitempty"`
	FadeDB   float64 `json:"fade_db,omitempty"`
	Payload  int     `json:"payload,omitempty"`
	QueueCap int     `json:"queue_cap,omitempty"`

	// snapshot payload (t = "snap"; segment heads only)
	Snap *snapshotRecord `json:"snap,omitempty"`
}

// JournalOptions tune the durability layer; the zero value is a safe
// default (no fsync, 16-epoch snapshots in directory mode, keep no
// pre-snapshot segments).
type JournalOptions struct {
	// Sync is the fsync policy; see SyncPolicy.
	Sync SyncPolicy
	// SnapshotEvery is the epoch interval between snapshots (and the
	// segment rotations they trigger) in directory mode; 0 selects 16.
	SnapshotEvery uint64
	// Retain keeps that many pre-snapshot segments past compaction
	// (0 deletes everything older than the newest snapshot).
	Retain int
	// Rec receives the durability counters (snapshots, rotations, torn
	// records, journal errors); nil disables recording.
	Rec *obs.Recorder
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 16
	}
	if o.Retain < 0 {
		o.Retain = 0
	}
	return o
}

// Journal captures a session for replay and recovery. Safe for
// concurrent writers; the engine calls it from inside its
// admission-queue critical section so record order matches admission
// order.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File // fsync target; nil for plain writers
	err error

	policy SyncPolicy
	rec    *obs.Recorder

	// directory mode (nil dir = single-stream writer mode)
	dir      string
	idx      int
	every    uint64
	retain   int
	ownsFile bool
}

// NewJournal starts a single-stream journal on w by writing the engine
// config header. Records are CRC-framed but never fsynced (w need not
// be a file); use NewJournalFile for a durable single-file capture or
// Open for the segmented directory form.
func NewJournal(w io.Writer, cfg Config) *Journal {
	j := &Journal{w: bufio.NewWriterSize(w, 1<<16)}
	j.writeConfigHeader(cfg)
	return j
}

// NewJournalFile starts a single-file journal on f with a sync policy.
// The journal does not take ownership of f: Close flushes and fsyncs
// but leaves closing the descriptor to the caller.
func NewJournalFile(f *os.File, cfg Config, opts JournalOptions) *Journal {
	j := &Journal{w: bufio.NewWriterSize(f, 1<<16), f: f, policy: opts.Sync, rec: opts.Rec}
	j.writeConfigHeader(cfg)
	return j
}

func (j *Journal) writeConfigHeader(cfg Config) {
	j.write(record{
		T: "config", RatioTol: cfg.RatioTolerance, DistTol: cfg.DistanceTolerance,
		Window: cfg.Window, HubJ: float64(cfg.HubEnergy), FadeDB: float64(cfg.FadeMargin),
		Payload: cfg.PayloadLen, QueueCap: cfg.QueueCap,
	})
}

// fail records the journal's first error; dropped counts every record
// lost to it. Both feed the journal-error counter so a broken journal
// is visible in /metrics long before Close.
func (j *Journal) fail(err error) {
	if j.err == nil {
		j.err = err
	}
	if j.rec != nil {
		j.rec.ServeJournalErrors.Add(1)
	}
}

func (j *Journal) write(r record) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.writeLocked(r)
}

func (j *Journal) writeLocked(r record) {
	if j.err != nil {
		// Sticky failure: count the dropped record, keep the first error.
		if j.rec != nil {
			j.rec.ServeJournalErrors.Add(1)
		}
		return
	}
	b, err := json.Marshal(r)
	if err != nil {
		j.fail(err)
		return
	}
	if _, err := j.w.Write(frameLine(b)); err != nil {
		j.fail(err)
		return
	}
	if j.policy == SyncAlways {
		j.syncLocked()
	}
}

// syncLocked flushes the buffer and, when file-backed, fsyncs.
func (j *Journal) syncLocked() {
	if j.err != nil {
		return
	}
	if err := j.w.Flush(); err != nil {
		j.fail(err)
		return
	}
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			j.fail(err)
		}
	}
}

// Err returns the journal's first write/sync error, or nil. A non-nil
// value means records have been dropped: the capture is no longer a
// faithful prefix of the admission stream, /healthz reports it, and a
// fail-stop engine sheds admissions until restarted.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and fsyncs buffered records and returns the first
// error. Directory-mode journals also close their segment file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncLocked()
	if j.ownsFile && j.f != nil {
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = err
		}
		j.f = nil
	}
	return j.err
}

func (j *Journal) op(o op) {
	j.write(record{T: o.wireType(), ID: o.id, E: float64(o.energy), D: float64(o.distance)})
}

func (j *Journal) drain(epoch uint64) {
	j.write(record{T: "drain", Epoch: epoch})
}

func (j *Journal) epoch(res EpochResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.writeLocked(record{
		T: "epoch", Epoch: res.Epoch, Planned: res.Planned,
		Clean: res.Clean, Members: res.Members, Digest: res.Digest,
	})
	if j.policy == SyncEpoch {
		// The epoch boundary is the durability point: the fsync covers
		// this epoch's operations, drain marker, and digest at once.
		j.syncLocked()
	}
}

// wantSnapshot reports whether the epoch boundary just recorded should
// trigger a snapshot + rotation (directory mode only).
func (j *Journal) wantSnapshot(epoch uint64) bool {
	return j.dir != "" && j.every > 0 && epoch%j.every == 0
}

// snapshotRotate seals the current segment, starts the next one with
// snap as its head record, makes it durable, and compacts segments
// older than the new snapshot. The write ordering is the crash-safety
// argument: the old segment is flushed and fsynced first, the new head
// is fsynced before any deletion, so at every instant the directory
// holds at least one intact recovery chain.
func (j *Journal) snapshotRotate(snap *snapshotRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dir == "" {
		return
	}
	if j.err != nil {
		if j.rec != nil {
			j.rec.ServeJournalErrors.Add(1)
		}
		return
	}
	// Seal the current segment (nil on the very first rotation).
	if j.f != nil {
		j.syncLocked()
		if j.err != nil {
			return
		}
	}
	next := j.idx + 1
	f, err := createSegment(j.dir, next)
	if err != nil {
		j.fail(err)
		return
	}
	old := j.f
	j.f = f
	j.w = bufio.NewWriterSize(f, 1<<16)
	j.idx = next
	j.writeLocked(record{T: "snap", Snap: snap})
	j.syncLocked()
	if j.err != nil {
		return
	}
	if old != nil {
		if err := old.Close(); err != nil {
			j.fail(err)
			return
		}
	}
	if _, err := removeSegmentsBelow(j.dir, next-j.retain); err != nil {
		j.fail(err)
		return
	}
	if j.rec != nil {
		j.rec.ServeSnapshots.Add(1)
		j.rec.ServeRotations.Add(1)
	}
}

// ReplayResult summarizes a verified replay.
type ReplayResult struct {
	Epochs  int // epoch boundaries re-run
	Ops     int // operations re-admitted
	Matched int // epoch digests compared against the journal
	Torn    int // torn trailing records tolerated (crash mid-write)
}

// replayMaxLine bounds a single journal line in Replay. Snapshot-free
// single-stream journals hold small records, so the bound mostly guards
// memory against corrupt or non-journal input.
const replayMaxLine = 1 << 20

// Replay reads a captured single-stream journal, rebuilds a fresh
// engine from its config header, re-admits every operation, re-runs
// every epoch at the journaled boundaries, and verifies each recomputed
// plan digest against the captured one. Any divergence — digest,
// planned count, or membership — is an error, as is a corrupt record
// with valid records after it. A torn tail — a trailing partial record,
// or a trailing drain with no epoch record (daemon killed mid-epoch) —
// is tolerated. Records are CRC-verified when framed; bare legacy JSONL
// lines are accepted for pre-CRC captures.
func Replay(r io.Reader) (ReplayResult, error) {
	return replayWith(r, Config{})
}

// replayWith is Replay with operational overrides: the replaying
// engine's worker and shard counts come from operational (zero values
// keep the defaults). Planner-semantic fields still come from the
// journal's config header — they are what digest fidelity depends on;
// workers and shards, by the determinism contract, cannot change a bit.
func replayWith(r io.Reader, operational Config) (ReplayResult, error) {
	lr := newLineReader(r, replayMaxLine)

	var res ReplayResult
	var eng *Engine
	var pending *EpochResult
	for {
		data, _, err := lr.read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		if len(data) == 0 {
			continue
		}
		line := lr.line
		rec, derr := decodeJournalLine(data, true)
		if derr != nil {
			// A bad record is a tolerated torn tail only when nothing
			// readable follows it; otherwise history itself is corrupt.
			if _, _, nerr := lr.read(); nerr == io.EOF {
				res.Torn++
				break
			}
			return res, fmt.Errorf("serve: journal line %d: %w", line, derr)
		}
		if eng == nil {
			if rec.T != "config" {
				return res, fmt.Errorf("serve: journal line %d: want config header, got %q", line, rec.T)
			}
			eng = NewEngine(Config{
				Workers:           operational.Workers,
				Shards:            operational.Shards,
				RatioTolerance:    rec.RatioTol,
				DistanceTolerance: rec.DistTol,
				Window:            rec.Window,
				HubEnergy:         units.Joule(rec.HubJ),
				FadeMargin:        units.DB(rec.FadeDB),
				PayloadLen:        rec.Payload,
				QueueCap:          rec.QueueCap,
			})
			continue
		}
		var err2 error
		switch rec.T {
		case "reg":
			err2 = eng.Register(rec.ID, units.Joule(rec.E), units.Meter(rec.D))
			res.Ops++
		case "upd":
			err2 = eng.Update(rec.ID, units.Joule(rec.E), units.Meter(rec.D))
			res.Ops++
		case "hub":
			err2 = eng.SetHubEnergy(units.Joule(rec.E))
			res.Ops++
		case "drain":
			got, _ := eng.RunEpoch() // solve errors are part of the digest
			pending = &got
			res.Epochs++
		case "epoch":
			if pending == nil {
				return res, fmt.Errorf("serve: journal line %d: epoch record with no preceding drain", line)
			}
			if pending.Digest != rec.Digest {
				return res, fmt.Errorf("serve: epoch %d diverged: replay digest %s, journal %s",
					rec.Epoch, pending.Digest, rec.Digest)
			}
			if pending.Planned != rec.Planned || pending.Members != rec.Members {
				return res, fmt.Errorf("serve: epoch %d diverged: replay planned %d/%d members, journal %d/%d",
					rec.Epoch, pending.Planned, pending.Members, rec.Planned, rec.Members)
			}
			pending = nil
			res.Matched++
		default:
			return res, fmt.Errorf("serve: journal line %d: unknown record type %q", line, rec.T)
		}
		if err2 != nil {
			return res, fmt.Errorf("serve: journal line %d: %w", line, err2)
		}
	}
	if eng == nil {
		return res, fmt.Errorf("serve: empty journal")
	}
	return res, nil
}

// decodeJournalLine validates the CRC frame (when present) and
// unmarshals the record. allowLegacy accepts bare unframed JSON lines —
// single-file Replay keeps old captures readable; segment recovery is
// strict, since every segment record was written framed.
func decodeJournalLine(data []byte, allowLegacy bool) (record, error) {
	payload, framed, err := unframeLine(data)
	if err != nil {
		return record{}, err
	}
	if !framed {
		if !allowLegacy {
			return record{}, fmt.Errorf("unframed record in segmented journal")
		}
		payload = data
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, err
	}
	return rec, nil
}
