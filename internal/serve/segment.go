// Crash-safe journal storage: per-record CRC framing, sync policies,
// and the segmented journal directory (journal.d/seg-NNNN.jsonl).
//
// Framing. Every journal line is `CCCCCCCC <json>\n` where CCCCCCCC is
// the lowercase-hex CRC32-C of the JSON payload. The frame makes torn
// and bit-rotted records detectable: a crash mid-write leaves either a
// line without its newline or a line whose checksum no longer matches,
// and recovery can tell "tail torn by the crash" (truncate and keep
// going) from "history corrupted" (hard error) by where the bad record
// sits. Readers accept bare legacy JSONL lines only where explicitly
// allowed (single-file Replay of pre-CRC captures).
//
// Segments. In directory mode the journal is a sequence of segment
// files; every segment begins with a full-state snapshot record, so
// recovery never reads more than one segment: restore the newest
// segment's head snapshot, replay its tail. Rotation (a new segment)
// happens exactly when a snapshot is written, and compaction deletes
// segments older than the newest snapshot (minus a configurable retain
// count). Rotation orders its writes for crash safety: the new
// segment's snapshot is flushed and fsynced before any old segment is
// deleted, so a crash at any instant leaves either a valid new head or
// the intact previous segment.

package serve

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// SyncPolicy selects when journal writes are flushed and fsynced to
// stable storage — the durability/throughput trade-off.
type SyncPolicy uint8

const (
	// SyncNone never fsyncs: flushing is left to the bufio layer and
	// the OS page cache. Fastest; a crash can lose everything since the
	// last incidental flush.
	SyncNone SyncPolicy = iota
	// SyncEpoch flushes and fsyncs once per epoch record (the default):
	// every completed epoch — its operations, drain marker, and digest —
	// is durable; operations admitted after the last epoch boundary may
	// be lost to a crash.
	SyncEpoch
	// SyncAlways flushes and fsyncs after every record: an admitted
	// operation is durable before the admission call returns. Slowest —
	// one fsync per admission, inside the admission critical section.
	SyncAlways
)

// ParseSyncPolicy parses "none", "epoch", or "always".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "epoch":
		return SyncEpoch, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNone, fmt.Errorf("serve: unknown sync policy %q (want none|epoch|always)", s)
}

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncEpoch:
		return "epoch"
	case SyncAlways:
		return "always"
	default:
		return "none"
	}
}

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64) shared by framing and verification.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameLen is the fixed framing overhead: 8 hex CRC digits + 1 space.
const frameLen = 9

// frameLine wraps one marshalled JSON record in the CRC frame,
// returning the full journal line including the trailing newline.
func frameLine(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+frameLen+1)
	out = appendCRCHex(out, crc32.Checksum(payload, crcTable))
	out = append(out, ' ')
	out = append(out, payload...)
	return append(out, '\n')
}

// appendCRCHex appends exactly 8 lowercase hex digits of v.
func appendCRCHex(dst []byte, v uint32) []byte {
	const hexdigits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, hexdigits[(v>>shift)&0xf])
	}
	return dst
}

// parseCRCHex parses 8 lowercase/uppercase hex digits; ok is false on
// any non-hex byte.
func parseCRCHex(b []byte) (v uint32, ok bool) {
	for _, c := range b {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint32(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint32(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint32(c-'A'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// unframeLine validates and strips the CRC frame from one journal line
// (without its newline). framed is false when the line does not carry a
// frame at all (a legacy bare-JSON line); err is non-nil when the line
// is framed but the checksum does not match its payload.
func unframeLine(line []byte) (payload []byte, framed bool, err error) {
	if len(line) < frameLen || line[frameLen-1] != ' ' {
		return nil, false, nil
	}
	want, ok := parseCRCHex(line[:frameLen-1])
	if !ok {
		return nil, false, nil
	}
	payload = line[frameLen:]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, true, fmt.Errorf("crc mismatch: frame %08x, payload %08x", want, got)
	}
	return payload, true, nil
}

// lineReader reads journal lines from a stream, tracking line numbers
// and byte offsets so recovery can report exactly where a tail tore.
type lineReader struct {
	rd *bufio.Reader
	// max bounds a single line; 0 means unbounded. Replay uses 1 MiB to
	// bound memory on untrusted files; recovery readers use a far larger
	// cap because snapshot records scale with membership.
	max int
	// line is the 1-based number of the line most recently returned.
	line int
	// off is the byte offset of the start of that line; next is the
	// offset just past it.
	off, next int64
}

func newLineReader(r io.Reader, max int) *lineReader {
	return &lineReader{rd: bufio.NewReaderSize(r, 1<<16), max: max}
}

// read returns the next line without its trailing newline. complete is
// false when the stream ended mid-line (no newline — the classic torn
// tail). A clean end of stream returns io.EOF.
func (lr *lineReader) read() (data []byte, complete bool, err error) {
	data, err = lr.rd.ReadBytes('\n')
	if len(data) == 0 {
		if err == nil || err == io.EOF {
			return nil, false, io.EOF
		}
		return nil, false, err
	}
	lr.line++
	lr.off = lr.next
	lr.next += int64(len(data))
	complete = data[len(data)-1] == '\n'
	if complete {
		data = data[:len(data)-1]
	}
	if lr.max > 0 && len(data) > lr.max {
		return nil, complete, fmt.Errorf("serve: journal line %d too long (exceeds %d bytes)", lr.line, lr.max)
	}
	if err != nil && err != io.EOF {
		return nil, complete, err
	}
	return data, complete, nil
}

// segmentInfo describes one on-disk segment file.
type segmentInfo struct {
	idx  int
	path string
	size int64
}

// segPattern names segment idx; %04d grows naturally past 9999.
func segPath(dir string, idx int) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%04d.jsonl", idx))
}

// listSegments returns the directory's segment files sorted by index.
// Files that do not match the seg-NNNN.jsonl pattern are ignored.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var idx int
		if n, err := fmt.Sscanf(e.Name(), "seg-%d.jsonl", &idx); n != 1 || err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, segmentInfo{idx: idx, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// syncDir fsyncs a directory so file creations and deletions inside it
// are durable (the metadata half of crash-safe rotation).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// createSegment creates a fresh segment file (failing if it already
// exists — indices never repeat) and makes the creation durable.
func createSegment(dir string, idx int) (*os.File, error) {
	f, err := os.OpenFile(segPath(dir, idx), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// removeSegmentsBelow deletes every segment with index < keep and
// returns how many were removed. Deletion order is oldest-first and the
// directory is fsynced afterwards; a crash mid-compaction leaves a
// suffix of the old segments, which the next compaction removes.
func removeSegmentsBelow(dir string, keep int) (int, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range segs {
		if s.idx >= keep {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, err
		}
		removed++
	}
	if removed > 0 {
		if err := syncDir(dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}
