package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"braidio/internal/obs"
	"braidio/internal/units"
)

// soakOp is one schedule entry for the crash soaks: a deterministic,
// position-indexed operation both the reference run and every recovered
// run apply identically.
type soakOp struct {
	kind string // "reg" | "upd" | "hub"
	id   string
	e, d float64
}

// soakSchedule is the fixed op schedule: 6 registrations, two update
// rounds (alternating past-tolerance and within-tolerance drifts), one
// hub-budget change mid-stream. Kept deliberately small — the byte-
// offset soaks replay it thousands of times — while still exercising
// every record type, the dirty-set predicate, and a pending tail op.
func soakSchedule() []soakOp {
	var ops []soakOp
	for i := 0; i < 6; i++ {
		ops = append(ops, soakOp{"reg", fmt.Sprintf("s%02d", i), 0.5 + 0.1*float64(i), 0.7 + 0.15*float64(i)})
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 3; i++ {
			n := 3*round + i
			e := 0.5 + 0.1*float64(n)
			if i%2 == 0 {
				e /= 2 // past ratio tolerance
			} else {
				e *= 1.01 // within
			}
			ops = append(ops, soakOp{"upd", fmt.Sprintf("s%02d", n), e, 0.7 + 0.15*float64(n)})
		}
		if round == 0 {
			ops = append(ops, soakOp{"hub", "", 6, 0})
		}
	}
	return ops
}

// soakMembers is the schedule's membership count.
const soakMembers = 6

// soakEpochEvery is the schedule's epoch cadence: a drain after every
// soakEpochEvery admitted ops. 13 ops at cadence 4 means three epochs
// and one op left pending in the queue — the torn-tail soaks cover a
// mid-epoch crash for free.
const soakEpochEvery = 4

func applySoakOpE(e *Engine, o soakOp) error {
	switch o.kind {
	case "reg":
		return e.Register(o.id, units.Joule(o.e), units.Meter(o.d))
	case "upd":
		return e.Update(o.id, units.Joule(o.e), units.Meter(o.d))
	case "hub":
		return e.SetHubEnergy(units.Joule(o.e))
	}
	return fmt.Errorf("unknown soak op kind %q", o.kind)
}

func applySoakOp(t *testing.T, e *Engine, o soakOp) {
	t.Helper()
	if err := applySoakOpE(e, o); err != nil {
		t.Fatalf("apply %v: %v", o, err)
	}
}

// driveSoakE applies ops[from:] with the schedule's epoch boundaries,
// skipping boundaries the engine has already completed (a recovered
// engine resumes mid-schedule with its epoch counter intact).
func driveSoakE(e *Engine, ops []soakOp, from int) error {
	for i := from; i < len(ops); i++ {
		if err := applySoakOpE(e, ops[i]); err != nil {
			return fmt.Errorf("apply %v: %w", ops[i], err)
		}
		if (i+1)%soakEpochEvery == 0 && e.Stats().Epoch < uint64((i+1)/soakEpochEvery) {
			if _, err := e.RunEpoch(); err != nil {
				return fmt.Errorf("epoch after op %d: %w", i, err)
			}
		}
	}
	want := uint64(len(ops) / soakEpochEvery)
	for e.Stats().Epoch < want {
		if _, err := e.RunEpoch(); err != nil {
			return fmt.Errorf("catch-up epoch: %w", err)
		}
	}
	return nil
}

func driveSoak(t *testing.T, e *Engine, ops []soakOp, from int) {
	t.Helper()
	if err := driveSoakE(e, ops, from); err != nil {
		t.Fatal(err)
	}
}

// soakFinalDigestE forces a hub change past every member's tolerance
// and runs one more epoch: the digest covers every member's freshly
// solved plan bits, so equal digests mean bit-equal engine state.
func soakFinalDigestE(e *Engine) (string, error) {
	if err := e.SetHubEnergy(3); err != nil {
		return "", fmt.Errorf("final hub change: %w", err)
	}
	res, err := e.RunEpoch()
	if err != nil {
		return "", fmt.Errorf("final epoch: %w", err)
	}
	if res.Planned != res.Members {
		return "", fmt.Errorf("final epoch planned %d of %d members — digest would not cover full state", res.Planned, res.Members)
	}
	return res.Digest, nil
}

func soakFinalDigest(t *testing.T, e *Engine) string {
	t.Helper()
	d, err := soakFinalDigestE(e)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// soakReference runs the schedule on a journal-less engine and returns
// the final full-coverage digest plus the total epoch count.
func soakReference(t *testing.T) (string, uint64) {
	t.Helper()
	e := NewEngine(testConfig(nil))
	driveSoak(t, e, soakSchedule(), 0)
	epochs := e.Stats().Epoch
	return soakFinalDigest(t, e), epochs + 1
}

// captureSoakDir runs the schedule under a segmented journal and
// returns the directory. snapshotEvery controls rotation cadence;
// retain keeps old segments so torn-head recovery has a fallback.
func captureSoakDir(t *testing.T, snapshotEvery uint64, retain int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "journal.d")
	eng, j, _, err := Open(dir, testConfig(nil), JournalOptions{SnapshotEvery: snapshotEvery, Retain: retain})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	driveSoak(t, eng, soakSchedule(), 0)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return dir
}

// copySoakDir copies every segment of src into a fresh directory under
// base, truncating the newest segment at cut bytes. Safe to call from
// soak worker goroutines (no *testing.T involvement).
func copySoakDir(base, src string, cut int64) (string, error) {
	segs, err := listSegments(src)
	if err != nil {
		return "", err
	}
	dst := filepath.Join(base, fmt.Sprintf("cut-%06d.d", cut))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return "", err
	}
	for i, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return "", err
		}
		if i == len(segs)-1 && cut < int64(len(data)) {
			data = data[:cut]
		}
		if err := os.WriteFile(segPath(dst, s.idx), data, 0o644); err != nil {
			return "", err
		}
	}
	return dst, nil
}

func copyDirTo(t *testing.T, src string, cut int64) string {
	t.Helper()
	dst, err := copySoakDir(t.TempDir(), src, cut)
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// runSoakCuts fans truncation offsets [0, size) at the given stride
// across workers; soakOne returns a failure description or "".
func runSoakCuts(t *testing.T, size, stride int64, soakOne func(cut int64) string) {
	t.Helper()
	var (
		mu       sync.Mutex
		failures []string
	)
	cuts := make(chan int64)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cut := range cuts {
				if msg := soakOne(cut); msg != "" {
					mu.Lock()
					failures = append(failures, msg)
					mu.Unlock()
				}
			}
		}()
	}
	for cut := int64(0); cut < size; cut += stride {
		cuts <- cut
	}
	close(cuts)
	wg.Wait()
	for i, f := range failures {
		if i >= 10 {
			t.Errorf("... and %d more failures", len(failures)-10)
			break
		}
		t.Error(f)
	}
}

// TestOpenReopenRoundTrip closes a journaled session cleanly and
// reopens it: membership, plans, hub budget, epoch counter, and the
// admitted-op count must all survive, and the next epochs must be
// digest-identical to an uninterrupted run.
func TestOpenReopenRoundTrip(t *testing.T) {
	refDigest, refEpochs := soakReference(t)
	dir := captureSoakDir(t, 2, 0)

	eng, j, st, err := Open(dir, testConfig(nil), JournalOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	ops := soakSchedule()
	stats := eng.Stats()
	if stats.Admitted != uint64(len(ops)) {
		t.Fatalf("admitted %d, want %d", stats.Admitted, len(ops))
	}
	if stats.Members != soakMembers {
		t.Fatalf("members %d, want %d", stats.Members, soakMembers)
	}
	if stats.Epoch != uint64(len(ops)/soakEpochEvery) {
		t.Fatalf("epoch %d, want %d", stats.Epoch, len(ops)/soakEpochEvery)
	}
	if st.SnapshotEpoch == 0 {
		t.Fatalf("recovered from genesis snapshot, want a later one: %+v", st)
	}
	if _, ok := eng.PlanFor("s03"); !ok {
		t.Fatal("recovered engine lost s03's plan")
	}
	if got := soakFinalDigest(t, eng); got != refDigest {
		t.Fatalf("final digest %s, want %s", got, refDigest)
	}
	if eng.Stats().Epoch != refEpochs {
		t.Fatalf("final epoch %d, want %d", eng.Stats().Epoch, refEpochs)
	}
}

// TestOpenCompaction checks rotation deletes pre-snapshot segments:
// with Retain 0 the directory never holds more than the active segment
// plus the one being superseded at the instant of rotation.
func TestOpenCompaction(t *testing.T) {
	dir := captureSoakDir(t, 2, 0)
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1", len(segs))
	}
	// Retained history: snapshot every epoch rotates three times past
	// genesis, and Retain 2 keeps two pre-snapshot segments around.
	dir2 := captureSoakDir(t, 1, 2)
	segs2, err := listSegments(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs2) != 3 {
		t.Fatalf("retain=2 left %d segments, want 3", len(segs2))
	}
}

// TestRecoveryReplaysOnlyPostSnapshotOps pins the point of snapshots:
// recovery work is the post-snapshot tail, not the whole history.
func TestRecoveryReplaysOnlyPostSnapshotOps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal.d")
	eng, j, _, err := Open(dir, testConfig(nil), JournalOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	ops := soakSchedule()
	driveSoak(t, eng, ops, 0) // three epochs; the snapshot rotated at epoch 2
	// Admit three more ops after the last epoch; they land in the
	// current segment's tail, pending in the queue.
	for _, o := range ops[:3] {
		o.id = "tail-" + o.id
		applySoakOp(t, eng, o)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, j2, st, err := Open(dir, testConfig(nil), JournalOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	// The snapshot at epoch 2 carries the first two epochs' worth of
	// ops; the tail holds the rest of the schedule, the epoch-3 records,
	// and the three post-epoch admissions.
	if st.SnapshotEpoch != 2 {
		t.Fatalf("snapshot epoch %d, want 2", st.SnapshotEpoch)
	}
	wantTail := (len(ops) - 2*soakEpochEvery) + 3
	if st.Ops != wantTail {
		t.Fatalf("recovery replayed %d ops, want only the %d post-snapshot ones", st.Ops, wantTail)
	}
	if st.Epochs != 1 || st.Matched != 1 {
		t.Fatalf("recovery re-ran %d epochs (%d matched), want 1/1", st.Epochs, st.Matched)
	}
}

// TestRecoveryConfigMerge reopens with different flags: the
// planner-semantic fields must come from the journal (digest
// continuity), the operational ones from the caller.
func TestRecoveryConfigMerge(t *testing.T) {
	dir := captureSoakDir(t, 2, 0)
	caller := testConfig(nil)
	caller.RatioTolerance = 0.5 // wrong on purpose; journal must win
	caller.HubEnergy = 99
	caller.QueueCap = 123 // operational; caller must win
	eng, j, _, err := Open(dir, caller, JournalOptions{SnapshotEvery: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	got := eng.Config()
	if got.RatioTolerance != 0.05 {
		t.Errorf("ratio tolerance %v, want journal's 0.05", got.RatioTolerance)
	}
	if got.QueueCap != 123 {
		t.Errorf("queue cap %d, want caller's 123", got.QueueCap)
	}
	// The hub budget is live state, not config: the snapshot's tracked
	// value (6 after the schedule's hub op) wins over both.
	if st := eng.Stats(); st.HubEnergy != 6 {
		t.Errorf("hub energy %v, want snapshot's 6", st.HubEnergy)
	}
}

// TestVerifyDirCleanAndTorn checks the read-only verifier on a clean
// directory and on one with a torn tail.
func TestVerifyDirCleanAndTorn(t *testing.T) {
	dir := captureSoakDir(t, 2, 0)
	st, err := VerifyDir(dir)
	if err != nil {
		t.Fatalf("verify clean: %v", err)
	}
	if st.TornRecords != 0 {
		t.Fatalf("clean dir reported %d torn records", st.TornRecords)
	}
	segs, _ := listSegments(dir)
	newest := segs[len(segs)-1]
	torn := copyDirTo(t, dir, newest.size-3)
	st, err = VerifyDir(torn)
	if err != nil {
		t.Fatalf("verify torn: %v", err)
	}
	if st.TornRecords != 1 {
		t.Fatalf("torn dir reported %d torn records, want 1", st.TornRecords)
	}
}

// TestVerifyDirRejectsMidFileCorruption flips a byte in the middle of
// the newest segment's tail: a corrupt record with valid records after
// it is pre-crash corruption, a hard error — never silently truncated.
func TestVerifyDirRejectsMidFileCorruption(t *testing.T) {
	dir := captureSoakDir(t, 2, 0) // last snapshot at epoch 4: epoch 5's records form the tail
	segs, _ := listSegments(dir)
	newest := segs[len(segs)-1]
	data, err := os.ReadFile(newest.path)
	if err != nil {
		t.Fatal(err)
	}
	headEnd := bytes.IndexByte(data, '\n') + 1
	if headEnd <= 0 || headEnd >= len(data)-2 {
		t.Fatalf("segment %s has no tail to corrupt", newest.path)
	}
	data[headEnd+frameLen] ^= 0x01 // first payload byte of the first tail record
	if err := os.WriteFile(newest.path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(dir); err == nil {
		t.Fatal("VerifyDir accepted mid-file corruption")
	} else if !strings.Contains(err.Error(), "corrupt record with valid records after it") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestTruncationSoakMultiSegment is the crash soak over a multi-segment
// directory: truncate the newest segment at every byte offset (stride
// in -short mode), recover, drive the rest of the schedule, and demand
// the final full-coverage digest is bit-identical to the uninterrupted
// reference. A truncation inside the newest head must fall back to the
// previous segment (retained history) — recovery never fails.
func TestTruncationSoakMultiSegment(t *testing.T) {
	refDigest, _ := soakReference(t)
	dir := captureSoakDir(t, 2, 100) // retain everything: fallback always exists
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("soak needs >= 2 segments, got %d", len(segs))
	}
	newest := segs[len(segs)-1]
	head, err := os.ReadFile(newest.path)
	if err != nil {
		t.Fatal(err)
	}
	headLen := int64(bytes.IndexByte(head, '\n') + 1)

	stride := int64(1)
	if testing.Short() {
		stride = 47
	}
	ops := soakSchedule()
	// The huge SnapshotEvery keeps the continuation from rotating at
	// every even epoch — recovery itself is what is under test.
	opts := JournalOptions{SnapshotEvery: 1 << 40}
	base := t.TempDir()
	runSoakCuts(t, newest.size, stride, func(cut int64) string {
		cdir, err := copySoakDir(base, dir, cut)
		if err != nil {
			return fmt.Sprintf("cut %d: copy: %v", cut, err)
		}
		defer os.RemoveAll(cdir)
		eng, j, st, err := Open(cdir, testConfig(nil), opts)
		if err != nil {
			return fmt.Sprintf("cut %d: recovery failed: %v", cut, err)
		}
		defer j.Close()
		if cut < headLen && st.TornSegments != 1 {
			return fmt.Sprintf("cut %d (inside head): TornSegments = %d, want 1", cut, st.TornSegments)
		}
		admitted := int(eng.Stats().Admitted)
		if admitted > len(ops) {
			return fmt.Sprintf("cut %d: admitted %d > schedule length %d", cut, admitted, len(ops))
		}
		if err := driveSoakE(eng, ops, admitted); err != nil {
			return fmt.Sprintf("cut %d: continuation: %v", cut, err)
		}
		got, err := soakFinalDigestE(eng)
		if err != nil {
			return fmt.Sprintf("cut %d: %v", cut, err)
		}
		if got != refDigest {
			return fmt.Sprintf("cut %d: final digest %s, want %s (recovered from op %d)", cut, got, refDigest, admitted)
		}
		return ""
	})
}

// TestTruncationSoakSingleSegment soaks a session captured in one
// genesis segment: every byte offset inside the head snapshot must be a
// hard error (no older segment to fall back to — pre-snapshot
// corruption), and every offset past it must recover to digest parity.
func TestTruncationSoakSingleSegment(t *testing.T) {
	refDigest, _ := soakReference(t)
	dir := captureSoakDir(t, 1<<40, 0) // no rotation: everything in seg-0000
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want a single genesis segment, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	headLen := int64(bytes.IndexByte(data, '\n') + 1)

	stride := int64(1)
	if testing.Short() {
		stride = 31
	}
	ops := soakSchedule()
	opts := JournalOptions{SnapshotEvery: 1 << 40}
	base := t.TempDir()
	runSoakCuts(t, segs[0].size, stride, func(cut int64) string {
		cdir, err := copySoakDir(base, dir, cut)
		if err != nil {
			return fmt.Sprintf("cut %d: copy: %v", cut, err)
		}
		defer os.RemoveAll(cdir)
		eng, j, _, err := Open(cdir, testConfig(nil), opts)
		if cut < headLen {
			if err == nil {
				j.Close()
				return fmt.Sprintf("cut %d (inside the only snapshot): recovery succeeded, want hard error", cut)
			}
			return ""
		}
		if err != nil {
			return fmt.Sprintf("cut %d: recovery failed: %v", cut, err)
		}
		defer j.Close()
		if err := driveSoakE(eng, ops, int(eng.Stats().Admitted)); err != nil {
			return fmt.Sprintf("cut %d: continuation: %v", cut, err)
		}
		got, err := soakFinalDigestE(eng)
		if err != nil {
			return fmt.Sprintf("cut %d: %v", cut, err)
		}
		if got != refDigest {
			return fmt.Sprintf("cut %d: final digest %s, want %s", cut, got, refDigest)
		}
		return ""
	})
}

// TestRecoveryCounters checks the durability path is visible in obs:
// snapshots, rotations, and recoveries all count.
func TestRecoveryCounters(t *testing.T) {
	rec := &obs.Recorder{}
	cfg := testConfig(rec)
	dir := filepath.Join(t.TempDir(), "journal.d")
	eng, j, _, err := Open(dir, cfg, JournalOptions{SnapshotEvery: 2, Rec: rec})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	driveSoak(t, eng, soakSchedule(), 0)
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := rec.ServeSnapshots.Load(); got == 0 {
		t.Error("ServeSnapshots stayed 0")
	}
	if got := rec.ServeRotations.Load(); got == 0 {
		t.Error("ServeRotations stayed 0")
	}
	if got := rec.ServeRecoveries.Load(); got != 0 {
		t.Errorf("ServeRecoveries = %d before any recovery", got)
	}
	_, j2, _, err := Open(dir, cfg, JournalOptions{SnapshotEvery: 2, Rec: rec})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := rec.ServeRecoveries.Load(); got != 1 {
		t.Errorf("ServeRecoveries = %d after recovery, want 1", got)
	}
}
