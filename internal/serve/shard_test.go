// Shard-count invariance: the sharded engine's whole observable record
// — epoch digests, journal bytes, snapshot bytes — must be bit-identical
// at any shard count and any worker count, and journals captured by the
// pre-shard (PR 7 era) single-lock engine must replay and recover
// digest-identically through it.

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"braidio/internal/units"
)

// shardGrid is the shard × worker matrix the invariance tests sweep.
var shardGrid = []struct{ shards, workers int }{
	{1, 1}, {1, 2}, {1, 8},
	{4, 1}, {4, 2}, {4, 8},
	{16, 1}, {16, 2}, {16, 8},
}

// driveSchedule runs a fixed, deterministic op schedule through an
// engine: a registration wave (with one member planted out of range, so
// the error path is part of the invariant), drift and jitter updates,
// an update racing ahead of its register in the same epoch, a hub
// budget change mid-stream, and a final quiet epoch. Returns the epoch
// results in order.
func driveSchedule(t *testing.T, e *Engine) []EpochResult {
	t.Helper()
	const n = 300
	for i := 0; i < n; i++ {
		energy := 0.4 + 0.01*float64(i%40)
		dist := 0.5 + 0.015*float64(i%200)
		if err := e.Register(fmt.Sprintf("m%d", i), units.Joule(energy), units.Meter(dist)); err != nil {
			t.Fatalf("register m%d: %v", i, err)
		}
	}
	// Planted failure: far outside the PHY model's reach.
	if err := e.Register("far", 1, 1e6); err != nil {
		t.Fatalf("register far: %v", err)
	}
	var results []EpochResult
	epoch := func() {
		res, _ := e.RunEpoch() // "far" fails every epoch; the digest covers it
		results = append(results, res)
	}
	epoch()

	// Round of drift (past 5% tolerance) + jitter (within it).
	for i := 0; i < 60; i++ {
		if err := e.Update(fmt.Sprintf("m%d", i), units.Joule(0.2+0.005*float64(i)), units.Meter(0.5+0.015*float64(i%200))); err != nil {
			t.Fatalf("update m%d: %v", i, err)
		}
	}
	for i := 60; i < 120; i++ {
		energy := (0.4 + 0.01*float64(i%40)) * 1.01
		if err := e.Update(fmt.Sprintf("m%d", i), units.Joule(energy), units.Meter(0.5+0.015*float64(i%200))); err != nil {
			t.Fatalf("update m%d: %v", i, err)
		}
	}
	epoch()

	// Same-epoch ordering hazards: an update admitted before its
	// member's register (must be skipped), then the register, then a
	// post-register update (must apply); plus a hub change that every
	// shard must observe at the same admission position.
	if err := e.Update("late", 2, 2); err != nil {
		t.Fatalf("update late: %v", err)
	}
	if err := e.Register("late", 1, 1); err != nil {
		t.Fatalf("register late: %v", err)
	}
	if err := e.Update("late", 1.5, 1.2); err != nil {
		t.Fatalf("update late: %v", err)
	}
	if err := e.SetHubEnergy(6); err != nil {
		t.Fatalf("set hub: %v", err)
	}
	for i := 0; i < 30; i++ {
		energy := 0.4 + 0.01*float64(i%40)
		if err := e.Update(fmt.Sprintf("m%d", i*7%300), units.Joule(energy*1.004), units.Meter(0.5+0.015*float64(i*7%200))); err != nil {
			t.Fatalf("update: %v", err)
		}
	}
	epoch()
	epoch() // quiet epoch: only "far" re-plans (and re-fails)
	return results
}

// snapshotBytes marshals the engine's snapshot record (the exact bytes
// a segment head would carry, minus framing).
func snapshotBytes(t *testing.T, e *Engine) []byte {
	t.Helper()
	e.queueMu.Lock()
	snap := e.buildSnapshot()
	e.queueMu.Unlock()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return b
}

// TestShardCountInvariance sweeps the shard × worker grid and demands
// identical epoch digests, identical journal bytes, and identical
// snapshot bytes everywhere.
func TestShardCountInvariance(t *testing.T) {
	type outcome struct {
		results  []EpochResult
		journal  []byte
		snapshot []byte
	}
	var ref *outcome
	var refLabel string
	for _, g := range shardGrid {
		label := fmt.Sprintf("shards=%d/workers=%d", g.shards, g.workers)
		cfg := testConfig(nil)
		cfg.Shards = g.shards
		cfg.Workers = g.workers
		e := NewEngine(cfg)
		var buf bytes.Buffer
		e.AttachJournal(NewJournal(&buf, e.Config()))
		results := driveSchedule(t, e)
		got := &outcome{results: results, journal: buf.Bytes(), snapshot: snapshotBytes(t, e)}
		if ref == nil {
			ref, refLabel = got, label
			continue
		}
		if len(got.results) != len(ref.results) {
			t.Fatalf("%s: %d epochs, %s had %d", label, len(got.results), refLabel, len(ref.results))
		}
		for i := range got.results {
			if got.results[i] != ref.results[i] {
				t.Errorf("%s epoch %d: %+v\n%s: %+v", label, i+1, got.results[i], refLabel, ref.results[i])
			}
		}
		if !bytes.Equal(got.journal, ref.journal) {
			t.Errorf("%s: journal bytes diverge from %s (%d vs %d bytes)", label, refLabel, len(got.journal), len(ref.journal))
		}
		if !bytes.Equal(got.snapshot, ref.snapshot) {
			t.Errorf("%s: snapshot bytes diverge from %s:\n%s\nvs\n%s", label, refLabel, got.snapshot, ref.snapshot)
		}
	}
	// The planted out-of-range member must actually exercise the error
	// path, or the invariance claim above is weaker than advertised.
	if ref.results[0].Planned != ref.results[0].Members-1 {
		t.Fatalf("expected exactly one failed plan, got %d planned of %d members",
			ref.results[0].Planned, ref.results[0].Members)
	}
}

// TestUpdateBeforeRegisterSameEpoch pins the pre-shard semantics the
// router's live flag preserves: an update admitted before its member's
// register in the same drain is skipped (it would have hit an unknown
// id under the single-lock engine), while one admitted after applies.
func TestUpdateBeforeRegisterSameEpoch(t *testing.T) {
	e := NewEngine(testConfig(nil))
	if err := e.Update("m", 2, 2); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := e.Register("m", 1, 1); err != nil {
		t.Fatalf("register: %v", err)
	}
	res := mustEpoch(t, e)
	// The early update must not apply: 1 register only.
	if res.Applied != 1 {
		t.Fatalf("applied = %d, want 1 (early update skipped)", res.Applied)
	}
	p, ok := e.PlanFor("m")
	if !ok {
		t.Fatal("no plan for m")
	}
	if p.Ratio != 10 { // hub 10 / register energy 1, not update energy 2
		t.Fatalf("plan ratio = %v, want 10 (register inputs, not the skipped update's)", p.Ratio)
	}
}

// TestPR7SingleStreamReplay replays a journal captured by the PR-7-era
// single-lock engine through the sharded engine across the full grid:
// every digest must still match bit for bit.
func TestPR7SingleStreamReplay(t *testing.T) {
	for _, g := range shardGrid {
		f, err := os.Open(filepath.Join("testdata", "pr7_single_stream.journal"))
		if err != nil {
			t.Fatal(err)
		}
		res, rerr := replayWith(f, Config{Shards: g.shards, Workers: g.workers})
		f.Close()
		if rerr != nil {
			t.Fatalf("shards=%d workers=%d: replay: %v", g.shards, g.workers, rerr)
		}
		if res.Matched != 8 {
			t.Fatalf("shards=%d workers=%d: matched %d digests, want 8", g.shards, g.workers, res.Matched)
		}
	}
}

// TestPR7JournalDirRecovery recovers a PR-7-era segmented journal
// directory (snapshot head + digest-bearing tail) through the sharded
// engine at several shard counts and verifies the tail digests are
// recomputed bit-identically.
func TestPR7JournalDirRecovery(t *testing.T) {
	want := []string{"ae28fa75b3c19866", "15feac3aa2d6ad17"}
	for _, g := range shardGrid {
		eng, stats, err := recoverEngine(filepath.Join("testdata", "pr7_journal_dir"), Config{Shards: g.shards, Workers: g.workers})
		if err != nil {
			t.Fatalf("shards=%d workers=%d: recover: %v", g.shards, g.workers, err)
		}
		if stats.Matched != 2 {
			t.Fatalf("shards=%d workers=%d: matched %d tail digests, want 2", g.shards, g.workers, stats.Matched)
		}
		for i, d := range stats.Digests {
			if d != want[i] {
				t.Fatalf("shards=%d workers=%d: tail digest %d = %s, want %s", g.shards, g.workers, i, d, want[i])
			}
		}
		if got := eng.Stats().Members; got != 200 {
			t.Fatalf("shards=%d workers=%d: recovered %d members, want 200", g.shards, g.workers, got)
		}
	}
}

// TestShardDefaultsPowerOfTwo pins the config normalization: shard
// counts round up to a power of two and respect the cap.
func TestShardDefaultsPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {100, 128}, {1 << 20, maxShards},
	} {
		cfg := Config{Shards: tc.in}.withDefaults()
		if cfg.Shards != tc.want {
			t.Errorf("Shards %d normalized to %d, want %d", tc.in, cfg.Shards, tc.want)
		}
	}
	if d := (Config{}).withDefaults().Shards; d&(d-1) != 0 || d < 1 {
		t.Errorf("default shard count %d is not a power of two", d)
	}
}

// TestConcurrentReadsDuringEpochs is the contention smoke: readers
// hammer PlanFor and Stats while registers stream in and epochs run.
// Run under -race in CI; correctness here is "no race, no panic, reads
// always see either no plan or a complete one".
func TestConcurrentReadsDuringEpochs(t *testing.T) {
	cfg := testConfig(nil)
	cfg.Shards = 8
	e := NewEngine(cfg)
	const n = 400
	for i := 0; i < n; i++ {
		if err := e.Register(fmt.Sprintf("m%d", i), 1, units.Meter(0.5+0.01*float64(i%100))); err != nil {
			t.Fatal(err)
		}
	}
	mustEpoch(t, e)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				if p, ok := e.PlanFor(fmt.Sprintf("m%d", i%n)); ok {
					if len(p.Fractions) == 0 || len(p.Fractions) != len(p.Blocks) {
						t.Error("torn plan read")
						return
					}
				}
				_ = e.Stats()
				i++
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = e.Update(fmt.Sprintf("m%d", i%n), units.Joule(0.5+0.001*float64(i)), units.Meter(0.5+0.01*float64(i%100)))
		}
	}()
	for i := 0; i < 10; i++ {
		mustEpoch(t, e)
	}
	close(stop)
	wg.Wait()
}

// TestApplyLatencySurfaced checks the satellite metric: epochs that
// applied operations must populate the apply-latency percentiles in
// Stats.
func TestApplyLatencySurfaced(t *testing.T) {
	e := NewEngine(testConfig(nil))
	if err := e.Register("m", 1, 1); err != nil {
		t.Fatal(err)
	}
	mustEpoch(t, e)
	st := e.Stats()
	if st.ApplyP50Millis <= 0 || st.ApplyP99Millis <= 0 {
		t.Fatalf("apply latency not recorded: p50 %v p99 %v", st.ApplyP50Millis, st.ApplyP99Millis)
	}
	if st.ApplyP99Millis < st.ApplyP50Millis {
		t.Fatalf("apply p99 %v < p50 %v", st.ApplyP99Millis, st.ApplyP50Millis)
	}
	if st.Shards < 1 {
		t.Fatalf("stats shards = %d", st.Shards)
	}
}
