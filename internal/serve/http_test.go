package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"braidio/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*httptest.Server, *Engine) {
	t.Helper()
	e := NewEngine(cfg)
	ts := httptest.NewServer((&Server{Engine: e, Rec: cfg.Rec}).Handler())
	t.Cleanup(ts.Close)
	return ts, e
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

// TestHTTPRoundTrip drives the full wire path: batch register, epoch,
// plan fetch, stats, update, second epoch, metrics scrape.
func TestHTTPRoundTrip(t *testing.T) {
	rec := &obs.Recorder{}
	ts, _ := newTestServer(t, testConfig(rec))

	// Batch register 10 members in one request.
	batch := make([]DeviceRequest, 10)
	for i := range batch {
		batch[i] = DeviceRequest{ID: fmt.Sprintf("d%d", i), EnergyJ: 1, DistanceM: 0.5 + 0.3*float64(i)}
	}
	resp, body := postJSON(t, ts.URL+"/v1/register", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/epoch", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch: %d %s", resp.StatusCode, body)
	}
	var res EpochResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("epoch body: %v", err)
	}
	if res.Planned != 10 {
		t.Fatalf("planned %d, want 10", res.Planned)
	}

	// Fetch one plan.
	r2, err := http.Get(ts.URL + "/v1/plan?id=d3")
	if err != nil {
		t.Fatal(err)
	}
	var plan Plan
	if err := json.NewDecoder(r2.Body).Decode(&plan); err != nil {
		t.Fatalf("plan body: %v", err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK || len(plan.Fractions) == 0 {
		t.Fatalf("plan: status %d, %d fractions", r2.StatusCode, len(plan.Fractions))
	}

	// Unknown member is a 404.
	r3, err := http.Get(ts.URL + "/v1/plan?id=nobody")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown plan: %d, want 404", r3.StatusCode)
	}

	// Single-object update, then a second epoch re-plans exactly it.
	resp, body = postJSON(t, ts.URL+"/v1/update", DeviceRequest{ID: "d3", EnergyJ: 0.4, DistanceM: 0.5 + 0.9})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/epoch", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch 2: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Planned != 1 || res.Clean != 9 {
		t.Fatalf("epoch 2: planned %d clean %d, want 1/9", res.Planned, res.Clean)
	}

	// Stats and metrics.
	r4, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r4.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if st.Members != 10 || st.Epoch != 2 {
		t.Fatalf("stats: %+v", st)
	}

	r5, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(r5.Body)
	r5.Body.Close()
	for _, want := range []string{
		"braidio_serve_registers_total 10",
		"braidio_serve_updates_total 1",
		"braidio_serve_epochs_total 2",
		"braidio_serve_plans_total 11",
		"braidio_serve_clean_total 9",
		"braidio_serve_members 10",
		"braidio_serve_queue_depth 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPSheds fills the queue over the wire and checks 503 +
// Retry-After on the overflow.
func TestHTTPSheds(t *testing.T) {
	cfg := testConfig(nil)
	cfg.QueueCap = 2
	ts, _ := newTestServer(t, cfg)

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: fmt.Sprintf("d%d", i), EnergyJ: 1, DistanceM: 1})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("register %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: "overflow", EnergyJ: 1, DistanceM: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
}

// TestHTTPValidation checks malformed and invalid bodies are 400s and
// method misuse is 405.
func TestHTTPValidation(t *testing.T) {
	ts, _ := newTestServer(t, testConfig(nil))

	resp, err := http.Post(ts.URL+"/v1/register", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: "x", EnergyJ: -1, DistanceM: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative energy: %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/hub", map[string]float64{"energy_j": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero hub energy: %d, want 400", resp.StatusCode)
	}

	r, err := http.Get(ts.URL + "/v1/register")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET register: %d, want 405", r.StatusCode)
	}

	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", r.StatusCode)
	}
}

// TestRetryAfterSeconds pins the derived backpressure hint: one epoch
// for any backlog, plus one per additional queue-capacity of depth,
// scaled by the epoch interval.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		depth, cap int
		interval   time.Duration
		want       int
	}{
		{0, 100, 0, 1},                      // no interval: fixed hint
		{0, 100, -time.Second, 1},           // negative interval: fixed hint
		{0, 100, 2 * time.Second, 2},        // one epoch to drain
		{100, 100, 2 * time.Second, 4},      // a full extra queue: two epochs
		{250, 100, 2 * time.Second, 6},      // deep backlog: three epochs
		{0, 0, 2 * time.Second, 2},          // unbounded cap: one epoch
		{0, 100, 100 * time.Millisecond, 1}, // sub-second rounds up
		{0, 100, 1500 * time.Millisecond, 2},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.cap, c.interval); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d, %v) = %d, want %d", c.depth, c.cap, c.interval, got, c.want)
		}
	}
}

// TestHTTPShedRetryAfterDerived checks the header on the wire carries
// the drain-rate-derived value, not the old hardcoded 1.
func TestHTTPShedRetryAfterDerived(t *testing.T) {
	cfg := testConfig(nil)
	cfg.QueueCap = 2
	e := NewEngine(cfg)
	ts := httptest.NewServer((&Server{Engine: e, EpochInterval: 3 * time.Second}).Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: fmt.Sprintf("d%d", i), EnergyJ: 1, DistanceM: 1})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("register %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: "overflow", EnergyJ: 1, DistanceM: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow: %d, want 503", resp.StatusCode)
	}
	// Depth 2 at cap 2 is a full queue: 2 epochs x 3s.
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After = %q, want \"6\"", got)
	}
}

// TestHTTPBodyLimit checks oversized POST bodies are rejected with 413
// instead of being buffered whole.
func TestHTTPBodyLimit(t *testing.T) {
	e := NewEngine(testConfig(nil))
	ts := httptest.NewServer((&Server{Engine: e, MaxBodyBytes: 256}).Handler())
	t.Cleanup(ts.Close)

	big := make([]DeviceRequest, 64)
	for i := range big {
		big[i] = DeviceRequest{ID: fmt.Sprintf("pad-%032d", i), EnergyJ: 1, DistanceM: 1}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/register", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}
	// A small request on the same server still goes through.
	resp, body := postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: "ok", EnergyJ: 1, DistanceM: 1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small body: %d %s", resp.StatusCode, body)
	}
}

// TestHTTPJournalBroken checks the durability surface over the wire: a
// broken journal under fail-stop turns /healthz unhealthy, sheds
// admissions with 503 + Retry-After, and shows up in /v1/stats.
func TestHTTPJournalBroken(t *testing.T) {
	rec := &obs.Recorder{}
	cfg := testConfig(rec)
	cfg.JournalFailStop = true
	ts, e := newTestServer(t, cfg)
	e.AttachJournal(brokenJournal(rec))

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with broken journal: %d, want 503", r.StatusCode)
	}
	if !strings.Contains(string(hb), "journal broken") {
		t.Errorf("healthz body %q does not name the journal", hb)
	}

	resp, body := postJSON(t, ts.URL+"/v1/register", DeviceRequest{ID: "x", EnergyJ: 1, DistanceM: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("register with broken journal: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("fail-stop shed missing Retry-After")
	}

	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.JournalError == "" {
		t.Error("stats JournalError empty with broken journal")
	}
}
