// Sharded member state: the engine's membership is striped into a
// power-of-two number of shards selected by a SplitMix64-mixed hash of
// the member id (the same recipe as internal/linkcache's 32-stripe
// table). Each shard owns its members' inputs, dirty flags, and
// committed plans behind its own RWMutex, so admission apply, plan
// commit, and HTTP plan reads contend only per shard — the global lock
// that used to serialize a million-member epoch against every
// /v1/plan read is reduced to hub-budget and epoch-counter bookkeeping.
//
// Epoch pipeline: RunEpoch routes the drained admission queue into
// per-shard op queues with a single sequenced router (admission order is
// preserved within a shard, and hub-budget ops are broadcast to every
// shard at their admission position, so each member observes exactly
// the op sequence it would have under a single lock). Shards then run
// apply → plan → commit independently over internal/par — shard A can
// be solving while shard B is still applying — each with its own
// core.BatchScratch arena. A final fold walks the planned jobs in
// global registration order (k-way merge over the shards' seq-sorted
// job lists), so the FNV-1a epoch digest is bit-identical to the
// single-lock engine's at any shard or worker count.

package serve

import (
	"fmt"
	"sync"
	"time"

	"braidio/internal/core"
	"braidio/internal/obs"
	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// shard owns one stripe of the membership. The mutex guards members,
// order, and every member's mutable fields; the stage scratch (ops,
// jobs, batch) is owned by the epoch pipeline, which runs at most one
// stage per shard at a time (under the engine's epochMu).
type shard struct {
	mu      sync.RWMutex
	members map[string]*member
	// order is the shard-local registration order — the subsequence of
	// the engine's global order that hashes here. Appended only by the
	// sequenced router, read by the apply and plan stages.
	order []*member

	// Epoch-stage scratch, reused across epochs. ops is this epoch's
	// routed admission slice; jobs the dirty set in shard order; batch
	// the shard's private column arena (its warm state survives epochs,
	// which is exactly what a stable shard assignment wants).
	ops   []op
	jobs  []planJob
	batch core.BatchScratch

	// Per-epoch stage results, merged by RunEpoch after the pipeline
	// barrier: ops applied, plans committed, the first solve error in
	// shard order (with its member's global seq for cross-shard
	// ordering), and the stage latencies feeding the observability rings.
	applied     int
	planned     int
	firstErr    error
	firstErrSeq uint64
	applyEndNs  float64
	planNs      float64
}

// mix64 is SplitMix64's finalizer — the same cheap high-quality mixer
// internal/linkcache stripes its lock shards with.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shardFor selects a member id's owning shard: FNV-1a over the id
// bytes, finalized through mix64 so sequential ids ("m1", "m2", ...)
// spread evenly, masked into the power-of-two shard table.
func (e *Engine) shardFor(id string) *shard {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return e.shards[mix64(h)&e.shardMask]
}

// dirtyAgainst reports whether fresh inputs have drifted out of
// tolerance from the member's planned inputs, against the hub budget at
// the op's sequence point. A member with no plan yet is always dirty.
func dirtyAgainst(m *member, hubE units.Joule, cfg *Config) bool {
	if !m.hasPlan {
		return true
	}
	ratio := float64(hubE) / float64(m.energy)
	if !core.RatioWithin(ratio, m.plan.Ratio, cfg.RatioTolerance) {
		return true
	}
	return !core.RatioWithin(float64(m.distance), m.plan.Distance, cfg.DistanceTolerance)
}

// runStage is one shard's slice of the epoch pipeline: apply the routed
// ops in admission order under the shard lock, collect the dirty set,
// solve it through the shard's private column arena with no lock held,
// and commit the plans back under the lock. hubE is the hub budget at
// epoch start; broadcast hub markers advance the local copy at their
// admission positions, so dirtiness is evaluated against exactly the
// budget a single-lock apply would have seen. workers bounds the
// intra-shard kernel parallelism (1 when the shard fan-out already
// saturates the pool).
func (s *shard) runStage(e *Engine, epoch uint64, hubE units.Joule, workers int, applyStart time.Time) {
	rec := e.cfg.Rec

	s.mu.Lock()
	localHub := hubE
	applied := 0
	for i := range s.ops {
		o := &s.ops[i]
		switch o.kind {
		case opRegister:
			// The router pre-created unknown ids, so the member always
			// exists; the first applied register makes it live.
			m := s.members[o.id]
			m.live = true
			m.energy, m.distance, m.dirty = o.energy, o.distance, true
			if rec != nil {
				rec.ServeRegisters.Add(1)
			}
			applied++
		case opUpdate:
			m, found := s.members[o.id]
			if !found || !m.live {
				continue // raced a shed register, or register not yet applied
			}
			m.energy, m.distance = o.energy, o.distance
			if !m.dirty {
				m.dirty = dirtyAgainst(m, localHub, &e.cfg)
			}
			if rec != nil {
				rec.ServeUpdates.Add(1)
			}
			applied++
		case opHub:
			// Broadcast marker: every member's ratio shares the hub
			// term, so recheck the whole stripe at this sequence point.
			// (Counted as applied once, by the router.)
			localHub = o.energy
			for _, m := range s.order {
				if m.live && !m.dirty {
					m.dirty = dirtyAgainst(m, localHub, &e.cfg)
				}
			}
		}
	}
	// Collect the dirty set in shard registration order and snapshot its
	// solve inputs, so planning can proceed without the lock.
	s.jobs = s.jobs[:0]
	for _, m := range s.order {
		if m.live && m.dirty {
			s.jobs = append(s.jobs, planJob{m: m, energy: m.energy, distance: m.distance})
		}
	}
	s.mu.Unlock()
	s.applied = applied
	s.applyEndNs = float64(time.Since(applyStart))
	s.ops = s.ops[:0]

	// Plan phase, lock-free: the shard's own arena reset, columnar
	// characterization, offload kernel, and plan construction into
	// index-owned job slots. solveHub is the post-apply hub budget —
	// identical across shards, since every shard saw every hub marker.
	planStart := time.Now()
	n := len(s.jobs)
	if n > 0 {
		solveHub := localHub
		s.batch.Reset(n)
		for i := range s.jobs {
			s.batch.Dists[i] = s.jobs[i].distance
			s.batch.E1[i] = solveHub
			s.batch.E2[i] = s.jobs[i].energy
		}
		e.view.CharacterizeColumns(workers, s.batch.Dists, &s.batch.Cols)
		core.OptimizeBatch(&s.batch, workers)
		if workers != 1 && n >= shardPlanParThreshold {
			par.For(workers, n, func(i int) { s.buildPlan(e, i, epoch, solveHub) })
		} else {
			for i := 0; i < n; i++ {
				s.buildPlan(e, i, epoch, solveHub)
			}
		}
	}

	// Commit under the shard lock; readers of other shards never notice.
	s.mu.Lock()
	s.firstErr, s.firstErrSeq = nil, 0
	plannedLocal := 0
	for i := range s.jobs {
		j := &s.jobs[i]
		if j.err != nil {
			// Out of range or drained: keep the member dirty so a
			// recovering update re-plans it; surface the shard's first
			// error (jobs are seq-ascending, so first is lowest).
			if s.firstErr == nil {
				s.firstErr = fmt.Errorf("serve: member %q: %w", j.m.id, j.err)
				s.firstErrSeq = j.m.seq
			}
			continue
		}
		j.m.plan = j.plan
		j.m.hasPlan = true
		j.m.dirty = false
		plannedLocal++
	}
	s.mu.Unlock()
	s.planned = plannedLocal
	s.planNs = float64(time.Since(planStart))
}

// shardPlanParThreshold is the per-shard job count below which plan
// construction stays sequential (same rationale as the batch kernels'
// threshold: fanning out a handful of copies costs more than it saves).
const shardPlanParThreshold = 64

// buildPlan constructs job i's plan from the shard arena's slot i:
// fractions and mixture from the batch offload kernel, blocks from the
// largest-remainder counts directly, mode names from the canonical
// shared table. Fractions and Blocks are freshly allocated — committed
// plans are retained and concurrently marshaled by PlanFor readers, so
// arena rows must never escape into them.
func (s *shard) buildPlan(e *Engine, i int, epoch uint64, hubE units.Joule) {
	j := &s.jobs[i]
	n := int(s.batch.Cols.Len[i])
	if n == 0 {
		j.err = fmt.Errorf("out of range at %.2fm", float64(j.distance))
		return
	}
	if err := s.batch.Errs[i]; err != nil {
		j.err = err
		return
	}
	p := Plan{
		Epoch:     epoch,
		Ratio:     float64(hubE) / float64(j.energy),
		Distance:  float64(j.distance),
		Fractions: make([]float64, n),
		Blocks:    make([]int, n),
		Bits:      s.batch.Bits[i],
	}
	copy(p.Fractions, s.batch.PRow(i))
	copy(p.Blocks, s.batch.BlockCountsRow(i, e.cfg.Window))
	mask := 0
	base := i * phy.NumModes
	for sl := 0; sl < n; sl++ {
		mask |= 1 << uint(s.batch.Cols.Mode[base+sl])
	}
	p.Modes = modeNames[mask]
	j.plan = p
}

// latRing is a bounded ring of per-epoch wall-clock latencies (ns) the
// /v1/stats percentiles are computed over. Strictly observational —
// never touches EpochResult or the digest. Guarded by the engine's
// latMu.
type latRing struct {
	buf         []float64
	idx         int
	count       int
	first, last float64
}

// latRingCap bounds both stage-latency rings.
const latRingCap = 256

// observe records one epoch's latency.
func (r *latRing) observe(ns float64) {
	if r.buf == nil {
		r.buf = make([]float64, 0, latRingCap)
	}
	if len(r.buf) < latRingCap {
		r.buf = append(r.buf, ns)
	} else {
		r.buf[r.idx] = ns
	}
	r.idx = (r.idx + 1) % latRingCap
	if r.count == 0 {
		r.first = ns
	}
	r.count++
	r.last = ns
}

// observeInto records the ring's state into a histogram as well; a nil
// histogram (no recorder) skips that half.
func observeLatency(r *latRing, h *obs.Histogram, ns float64) {
	if h != nil {
		h.Observe(ns)
	}
	r.observe(ns)
}
