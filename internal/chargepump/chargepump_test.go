package chargepump

import (
	"math"
	"testing"

	"braidio/internal/circuit"
)

// circuitResultStub is a minimal result for validation tests.
var circuitResultStub = circuit.Result{Time: []float64{0}, V: [][]float64{{0}}}

// TestFig3Reproduction drives the single-stage pump with the paper's 1 V
// sine and checks the three traces of Fig. 3(b): input swings ±1 V, the
// node between the diodes swings roughly 0..2 V, and the output settles
// near 2 V DC.
func TestFig3Reproduction(t *testing.T) {
	p := Default()
	res, a, b, c, err := p.Transient(1.0, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Input: ±1 V sine.
	var inMin, inMax float64
	for _, v := range res.Voltage(a) {
		inMin = math.Min(inMin, v)
		inMax = math.Max(inMax, v)
	}
	if math.Abs(inMax-1) > 0.01 || math.Abs(inMin+1) > 0.01 {
		t.Errorf("input swings %v..%v, want ±1", inMin, inMax)
	}
	// Between diodes: clamped sine, roughly -0.2..2 V by the end.
	wave := res.Voltage(b)
	tail := wave[len(wave)*3/4:]
	var bMin, bMax = math.Inf(1), math.Inf(-1)
	for _, v := range tail {
		bMin = math.Min(bMin, v)
		bMax = math.Max(bMax, v)
	}
	if bMin < -0.5 {
		t.Errorf("pump node dips to %v, the clamp diode is not clamping", bMin)
	}
	if bMax < 1.4 || bMax > 2.2 {
		t.Errorf("pump node peak %v, want ≈1.6–2", bMax)
	}
	// Output: near 2 V minus two Schottky drops, monotone-ish rise.
	out := res.Final(c)
	if out < 1.5 || out > 2.0 {
		t.Errorf("DC output = %v V, want ≈1.6–1.9 (2 V minus diode drops)", out)
	}
	// Ripple must be small relative to the DC value.
	if r := Ripple(res, c); r > 0.1*out {
		t.Errorf("output ripple %v too large vs DC %v", r, out)
	}
}

// TestTransientMatchesAnalytic cross-checks the two views: the transient
// result should equal the analytic 2N(Va − Vd) once Vd is set to the
// Schottky's effective drop.
func TestTransientMatchesAnalytic(t *testing.T) {
	p := Default()
	res, _, _, c, err := p.Transient(1.0, 1e6, 12)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Final(c)
	// Infer the effective per-diode drop from the transient and check it
	// is Schottky-like (0.05–0.25 V), then confirm the analytic model
	// with that drop agrees.
	drop := (2 - got) / 2
	if drop < 0.03 || drop > 0.3 {
		t.Fatalf("effective diode drop %v V is not Schottky-like", drop)
	}
	p.DiodeDrop = drop
	if want := p.OutputDC(1.0); math.Abs(got-want) > 0.05 {
		t.Errorf("transient %v vs analytic %v", got, want)
	}
}

func TestOutputDCIdealDiode(t *testing.T) {
	p := Default()
	p.DiodeDrop = 0
	if got := p.OutputDC(1); got != 2 {
		t.Errorf("ideal single-stage doubler = %v, want 2", got)
	}
	p.Stages = 3
	if got := p.OutputDC(1); got != 6 {
		t.Errorf("ideal 3-stage = %v, want 6 (2N boost)", got)
	}
}

func TestOutputDCClampsAtZero(t *testing.T) {
	p := Default()
	if got := p.OutputDC(0.05); got != 0 {
		t.Errorf("below-threshold output = %v, want 0", got)
	}
}

// TestBoostVsStages verifies the paper's "2N times" claim: output grows
// linearly in stage count for a fixed input.
func TestBoostVsStages(t *testing.T) {
	for n := 1; n <= 5; n++ {
		p := Default()
		p.Stages = n
		want := 2 * float64(n) * (1 - p.DiodeDrop)
		if got := p.OutputDC(1); math.Abs(got-want) > 1e-12 {
			t.Errorf("N=%d: output %v, want %v", n, got, want)
		}
	}
}

// TestOutputImpedanceGrowsWithStages verifies the sensitivity trade-off
// §3.2 describes: more boost means higher output impedance, which is why
// the instrumentation amplifier must be high-impedance.
func TestOutputImpedanceGrowsWithStages(t *testing.T) {
	p := Default()
	z1 := p.OutputImpedance(1e6)
	p.Stages = 4
	z4 := p.OutputImpedance(1e6)
	if z4 <= z1 {
		t.Errorf("impedance did not grow with stages: %v vs %v", z1, z4)
	}
	if math.Abs(z4/z1-4) > 1e-9 {
		t.Errorf("impedance ratio %v, want 4", z4/z1)
	}
}

func TestLoadedOutputSags(t *testing.T) {
	p := Default()
	open := p.LoadedOutput(1, 1e6)
	p.LoadResistance = p.OutputImpedance(1e6) // matched load: half voltage
	loaded := p.LoadedOutput(1, 1e6)
	if math.Abs(loaded-open/2) > 0.01*open {
		t.Errorf("matched-load output %v, want half of %v", loaded, open)
	}
	p.LoadResistance = math.Inf(1)
	if got := p.LoadedOutput(1, 1e6); got != p.OutputDC(1) {
		t.Errorf("open-circuit LoadedOutput %v != OutputDC %v", got, p.OutputDC(1))
	}
}

// TestMultiStageTransient runs a 2-stage ladder and confirms it out-boosts
// the single stage.
func TestMultiStageTransient(t *testing.T) {
	p1 := Default()
	res1, _, _, c1, err := p1.Transient(1, 1e6, 15)
	if err != nil {
		t.Fatal(err)
	}
	p2 := Default()
	p2.Stages = 2
	res2, _, _, c2, err := p2.Transient(1, 1e6, 30)
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := res1.Final(c1), res2.Final(c2)
	if v2 <= v1*1.3 {
		t.Errorf("2-stage output %v does not meaningfully exceed 1-stage %v", v2, v1)
	}
}

func TestSettlingTime(t *testing.T) {
	p := Default()
	res, _, _, c, err := p.Transient(1, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := SettlingTime(res, c, 0.9)
	if !ok {
		t.Fatal("output never settled")
	}
	if ts <= 0 || ts > 10e-6 {
		t.Errorf("settling time %v s out of range", ts)
	}
	// Smaller capacitors settle no slower (paper: reduced Cs/Cp to
	// improve bitrate).
	fast := Default()
	fast.StageCapacitance = 20e-12
	resF, _, _, cF, err := fast.Transient(1, 1e6, 10)
	if err != nil {
		t.Fatal(err)
	}
	tsF, ok := SettlingTime(resF, cF, 0.9)
	if !ok {
		t.Fatal("fast pump never settled")
	}
	if tsF > ts+1e-9 {
		t.Errorf("smaller caps settled slower: %v vs %v", tsF, ts)
	}
}

func TestValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero stages":   func() { (Pump{Stages: 0, StageCapacitance: 1e-12}).OutputDC(1) },
		"zero cap":      func() { (Pump{Stages: 1}).OutputDC(1) },
		"neg drop":      func() { (Pump{Stages: 1, StageCapacitance: 1e-12, DiodeDrop: -1}).OutputDC(1) },
		"neg amplitude": func() { Default().OutputDC(-1) },
		"zero freq":     func() { Default().OutputImpedance(0) },
		"bad fraction":  func() { SettlingTime(&circuitResultStub, 0, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
	if _, _, _, _, err := Default().Transient(-1, 1e6, 10); err == nil {
		t.Error("negative amplitude should error")
	}
}
