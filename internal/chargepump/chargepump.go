// Package chargepump models the Dickson RF charge pump at the heart of
// Braidio's passive receiver (§3.2, Fig. 3): a diode-capacitor ladder
// that boosts the envelope of a weak RF input into a DC voltage while
// presenting the large static carrier self-interference as a DC offset
// that downstream high-pass filtering removes.
//
// Two views are provided, which the tests cross-check against each other:
//
//   - Transient: a netlist built on internal/circuit and integrated in the
//     time domain, reproducing the TINA simulation of Fig. 3(b).
//   - Analytic: the classic Dickson steady-state model — output voltage
//     2N·(Va − Vd) for N stages of a doubler ladder, with an output
//     impedance that grows with stage count (the reason the paper's
//     instrumentation amplifier must be high-impedance).
package chargepump

import (
	"fmt"
	"math"

	"braidio/internal/circuit"
)

// Pump describes a Dickson charge-pump configuration.
type Pump struct {
	// Stages is the number of voltage-doubling stages N (≥1). Fig. 3
	// shows a single stage (two diodes, two capacitors).
	Stages int
	// StageCapacitance is the pump/storage capacitance per stage, in
	// farads. The paper notes the Moo/WISP front end's Cs and Cp were
	// reduced to improve bitrate: smaller capacitors settle faster but
	// ripple more.
	StageCapacitance float64
	// DiodeDrop is the effective forward drop of each diode at the
	// operating current, in volts. RF Schottky detector diodes sit
	// around 0.15 V.
	DiodeDrop float64
	// LoadResistance is the DC load on the output, in ohms. The INA2331
	// instrumentation amplifier presents an essentially open circuit
	// (>10 GΩ); use math.Inf(1) or a large value for that.
	LoadResistance float64
}

// Default returns the single-stage pump of Fig. 3 with detector-grade
// components and a light load.
func Default() Pump {
	return Pump{
		Stages:           1,
		StageCapacitance: 100e-12,
		DiodeDrop:        0.15,
		LoadResistance:   1e8,
	}
}

// validate panics on nonsensical configurations.
func (p Pump) validate() {
	if p.Stages < 1 {
		panic(fmt.Sprintf("chargepump: %d stages", p.Stages))
	}
	if p.StageCapacitance <= 0 {
		panic("chargepump: non-positive capacitance")
	}
	if p.DiodeDrop < 0 {
		panic("chargepump: negative diode drop")
	}
}

// OutputDC returns the analytic open-circuit DC output for a sine input
// of the given amplitude: 2N·(Va − Vd), clamped at zero. With ideal
// diodes (Vd = 0) and a 1 V input the single-stage pump produces the 2 V
// of Fig. 3(b).
func (p Pump) OutputDC(amplitude float64) float64 {
	p.validate()
	if amplitude < 0 {
		panic("chargepump: negative amplitude")
	}
	v := 2 * float64(p.Stages) * (amplitude - p.DiodeDrop)
	if v < 0 {
		return 0
	}
	return v
}

// OutputImpedance returns the analytic output impedance N/(f·C) at pump
// frequency f — the reason a loaded pump sags and the paper's amplifier
// must present high impedance and low input capacitance.
func (p Pump) OutputImpedance(freq float64) float64 {
	p.validate()
	if freq <= 0 {
		panic("chargepump: non-positive frequency")
	}
	return float64(p.Stages) / (freq * p.StageCapacitance)
}

// LoadedOutput returns the analytic DC output under the configured
// resistive load: the open-circuit voltage divided between the pump's
// output impedance and the load.
func (p Pump) LoadedOutput(amplitude, freq float64) float64 {
	open := p.OutputDC(amplitude)
	if math.IsInf(p.LoadResistance, 1) || p.LoadResistance <= 0 {
		return open
	}
	zout := p.OutputImpedance(freq)
	return open * p.LoadResistance / (p.LoadResistance + zout)
}

// Transient integrates the pump netlist driven by a sine of the given
// amplitude and frequency for the given number of carrier cycles,
// reproducing Fig. 3(b). It returns the circuit result plus the node
// indices of the input (A), the node between the diodes (B), and the
// output (C) for the paper's three traces — for a multi-stage pump, B is
// the pump node of the first stage.
//
// The diode model in the netlist is an exponential Schottky, so the
// transient output lands a little below the ideal-diode analytic value;
// the tests assert the two agree once the analytic model is given the
// diode's effective drop.
func (p Pump) Transient(amplitude, freq float64, cycles int) (res *circuit.Result, a, b, c int, err error) {
	p.validate()
	if amplitude <= 0 || freq <= 0 || cycles < 1 {
		return nil, 0, 0, 0, fmt.Errorf("chargepump: invalid drive amplitude=%v freq=%v cycles=%d", amplitude, freq, cycles)
	}
	var ckt circuit.Circuit
	a = ckt.Node()
	ckt.Sine(a, 0, amplitude, freq)

	in := a
	b = 0
	for s := 0; s < p.Stages; s++ {
		pumpNode := ckt.Node() // between the diodes
		outNode := ckt.Node()  // stage output (DC rail)
		if s == 0 {
			b = pumpNode
		}
		// Coupling capacitor from the driven side into the pump node.
		ckt.Capacitor(in, pumpNode, p.StageCapacitance)
		// Clamp diode from the previous DC rail (ground for stage 0)
		// into the pump node, and series diode onward to the rail.
		prevRail := 0
		if s > 0 {
			prevRail = c
		}
		ckt.SchottkyDiode(prevRail, pumpNode)
		ckt.SchottkyDiode(pumpNode, outNode)
		// Storage capacitor on the rail.
		ckt.Capacitor(outNode, 0, p.StageCapacitance)
		c = outNode
		in = a // every stage is pumped from the RF input in a Dickson ladder
	}
	if !math.IsInf(p.LoadResistance, 1) && p.LoadResistance > 0 {
		ckt.Resistor(c, 0, p.LoadResistance)
	}

	period := 1 / freq
	dt := period / 200
	res, err = ckt.Transient(dt, float64(cycles)*period)
	return res, a, b, c, err
}

// SettlingTime returns the simulated time for the transient output to
// first reach the given fraction of its final value. It returns false if
// the output never gets there.
func SettlingTime(res *circuit.Result, node int, fraction float64) (float64, bool) {
	if fraction <= 0 || fraction >= 1 {
		panic("chargepump: fraction must be in (0,1)")
	}
	final := res.Final(node)
	target := final * fraction
	for i, v := range res.Voltage(node) {
		if v >= target && final > 0 {
			return res.Time[i], true
		}
	}
	return 0, false
}

// Ripple returns the peak-to-peak variation of a node over the final
// quarter of the simulation, a measure of how well the pump smooths the
// carrier.
func Ripple(res *circuit.Result, node int) float64 {
	wave := res.Voltage(node)
	start := len(wave) * 3 / 4
	min, max := math.Inf(1), math.Inf(-1)
	for _, v := range wave[start:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}
