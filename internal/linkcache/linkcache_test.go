package linkcache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// resetAll restores a pristine cache between tests (the cache is
// process-global).
func resetAll() {
	Flush()
	ResetStats()
	SetEnabled(true)
}

func TestCharacterizeMatchesDirect(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for _, d := range []units.Meter{0.1, 0.5, 3, 10} {
		direct := m.Characterize(d)
		cached := Characterize(m, d)
		if !reflect.DeepEqual(direct, cached) {
			t.Errorf("d=%v: cached links differ from direct characterization", float64(d))
		}
		again := Characterize(m, d)
		if !reflect.DeepEqual(direct, again) {
			t.Errorf("d=%v: second lookup differs", float64(d))
		}
	}
	s := Snapshot()
	if s.Misses != 4 || s.Hits != 4 {
		t.Errorf("stats = %d hits / %d misses, want 4/4", s.Hits, s.Misses)
	}
}

// TestModelValueKeying: mutating a model keys a different entry, so the
// cache can never serve stale links.
func TestModelValueKeying(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	plain := Characterize(m, 0.5)
	m.FadeMargin = 20
	faded := Characterize(m, 0.5)
	if reflect.DeepEqual(plain, faded) {
		t.Fatal("fade-margin model served the free-space entry")
	}
	if !reflect.DeepEqual(faded, m.Characterize(0.5)) {
		t.Fatal("faded entry differs from direct characterization")
	}
}

func TestSNRAndBERMatchDirect(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for _, mode := range phy.Modes {
		for _, r := range phy.Rates {
			for _, d := range []units.Meter{0.2, 1.5} {
				if got, want := SNR(m, mode, r, d), m.SNR(mode, r, d); got != want {
					t.Errorf("SNR(%v,%v,%v) = %v, want %v", mode, r, float64(d), got, want)
				}
				if got, want := BER(m, mode, r, d), m.BER(mode, r, d); got != want {
					t.Errorf("BER(%v,%v,%v) = %v, want %v", mode, r, float64(d), got, want)
				}
				// Second lookups must serve the memo with identical bits.
				if got, want := SNR(m, mode, r, d), m.SNR(mode, r, d); got != want {
					t.Errorf("memoized SNR differs: %v vs %v", got, want)
				}
			}
		}
	}
}

func TestDisabledBypassesCache(t *testing.T) {
	resetAll()
	SetEnabled(false)
	defer SetEnabled(true)
	m := phy.NewModel()
	if !reflect.DeepEqual(Characterize(m, 0.5), m.Characterize(0.5)) {
		t.Fatal("disabled cache returned wrong links")
	}
	if s := Snapshot(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Errorf("disabled cache touched state: %+v", s)
	}
	if Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
}

// TestEvictionBounded: the tables flush rather than grow without bound
// under continuous-mobility key churn.
func TestEvictionBounded(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for i := 0; i < maxEntries+100; i++ {
		Characterize(m, units.Meter(0.1+float64(i)*1e-4))
	}
	if s := Snapshot(); s.Entries > maxEntries {
		t.Errorf("%d resident entries, cap is %d", s.Entries, maxEntries)
	}
}

// TestChurnKeepsHitRate is the eviction-stampede regression test: a
// cyclic mobility scan over a working set slightly larger than the
// cache's capacity. The old clear-all eviction flushed the whole table
// every time an insert crossed maxEntries, so a repeated scan re-missed
// essentially every key (MRU pathology: ~0% hits after the first
// cycle). Per-shard random-victim eviction keeps most of the working
// set resident, so later cycles must see a healthy hit rate.
func TestChurnKeepsHitRate(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	keys := maxEntries + maxEntries/4 // 25% overflow
	distance := func(i int) units.Meter { return units.Meter(0.1 + float64(i)*1e-4) }
	// Cold cycle populates; do not count its misses against the policy.
	for i := 0; i < keys; i++ {
		Characterize(m, distance(i))
	}
	ResetStats()
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < keys; i++ {
			Characterize(m, distance(i))
		}
	}
	s := Snapshot()
	rate := float64(s.Hits) / float64(s.Hits+s.Misses)
	t.Logf("hit rate %.3f over %d churn lookups (%d shards)", rate, s.Hits+s.Misses, s.Shards)
	if rate < 0.3 {
		t.Errorf("hit rate %.3f under 25%%-overflow churn; clear-all eviction regressed (want > 0.3)", rate)
	}
	if s.Entries > maxEntries {
		t.Errorf("%d resident entries, cap is %d", s.Entries, maxEntries)
	}
}

// TestConcurrentChurnKeepsHitRate runs the overflow scan from many
// goroutines at once — the "concurrent writers clear() each other's
// fresh entries" stampede. Under -race this is also the sharded write
// path's race test.
func TestConcurrentChurnKeepsHitRate(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	keys := maxEntries + maxEntries/4
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for cycle := 0; cycle < 2; cycle++ {
				for i := g; i < keys; i += 8 {
					Characterize(m, units.Meter(0.1+float64(i)*1e-4))
				}
			}
		}(g)
	}
	wg.Wait()
	ResetStats()
	for i := 0; i < keys; i++ {
		Characterize(m, units.Meter(0.1+float64(i)*1e-4))
	}
	s := Snapshot()
	rate := float64(s.Hits) / float64(s.Hits+s.Misses)
	if rate <= 0 {
		t.Errorf("hit rate %.3f after concurrent churn, want > 0", rate)
	}
}

// TestShardSpread: the key hash must actually stripe a mobility sweep
// across shards, not pile everything onto a few locks.
func TestShardSpread(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for i := 0; i < 1024; i++ {
		Characterize(m, units.Meter(0.1+float64(i)*1e-3))
	}
	occupied := 0
	for i := range shards {
		shards[i].mu.RLock()
		if len(shards[i].links) > 0 {
			occupied++
		}
		shards[i].mu.RUnlock()
	}
	if occupied < shardCount/2 {
		t.Errorf("1024 distinct distances landed on only %d/%d shards", occupied, shardCount)
	}
}

// TestConcurrentAccess hammers all three memo tables from many
// goroutines; run under -race this is the cache's data-race test.
func TestConcurrentAccess(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	want := m.Characterize(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := units.Meter(0.1 + float64((g+i)%7)*0.3)
				Characterize(m, d)
				SNR(m, phy.ModePassive, units.Rate100k, d)
				BER(m, phy.ModeBackscatter, units.Rate10k, d)
			}
			if got := Characterize(m, 0.5); !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("goroutine %d saw wrong links", g))
			}
		}(g)
	}
	wg.Wait()
}
