package linkcache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// resetAll restores a pristine cache between tests (the cache is
// process-global).
func resetAll() {
	Flush()
	ResetStats()
	SetEnabled(true)
}

func TestCharacterizeMatchesDirect(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for _, d := range []units.Meter{0.1, 0.5, 3, 10} {
		direct := m.Characterize(d)
		cached := Characterize(m, d)
		if !reflect.DeepEqual(direct, cached) {
			t.Errorf("d=%v: cached links differ from direct characterization", float64(d))
		}
		again := Characterize(m, d)
		if !reflect.DeepEqual(direct, again) {
			t.Errorf("d=%v: second lookup differs", float64(d))
		}
	}
	s := Snapshot()
	if s.Misses != 4 || s.Hits != 4 {
		t.Errorf("stats = %d hits / %d misses, want 4/4", s.Hits, s.Misses)
	}
}

// TestModelValueKeying: mutating a model keys a different entry, so the
// cache can never serve stale links.
func TestModelValueKeying(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	plain := Characterize(m, 0.5)
	m.FadeMargin = 20
	faded := Characterize(m, 0.5)
	if reflect.DeepEqual(plain, faded) {
		t.Fatal("fade-margin model served the free-space entry")
	}
	if !reflect.DeepEqual(faded, m.Characterize(0.5)) {
		t.Fatal("faded entry differs from direct characterization")
	}
}

func TestSNRAndBERMatchDirect(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for _, mode := range phy.Modes {
		for _, r := range phy.Rates {
			for _, d := range []units.Meter{0.2, 1.5} {
				if got, want := SNR(m, mode, r, d), m.SNR(mode, r, d); got != want {
					t.Errorf("SNR(%v,%v,%v) = %v, want %v", mode, r, float64(d), got, want)
				}
				if got, want := BER(m, mode, r, d), m.BER(mode, r, d); got != want {
					t.Errorf("BER(%v,%v,%v) = %v, want %v", mode, r, float64(d), got, want)
				}
				// Second lookups must serve the memo with identical bits.
				if got, want := SNR(m, mode, r, d), m.SNR(mode, r, d); got != want {
					t.Errorf("memoized SNR differs: %v vs %v", got, want)
				}
			}
		}
	}
}

func TestDisabledBypassesCache(t *testing.T) {
	resetAll()
	SetEnabled(false)
	defer SetEnabled(true)
	m := phy.NewModel()
	if !reflect.DeepEqual(Characterize(m, 0.5), m.Characterize(0.5)) {
		t.Fatal("disabled cache returned wrong links")
	}
	if s := Snapshot(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Errorf("disabled cache touched state: %+v", s)
	}
	if Enabled() {
		t.Error("Enabled() = true after SetEnabled(false)")
	}
}

// TestEvictionBounded: the tables flush rather than grow without bound
// under continuous-mobility key churn.
func TestEvictionBounded(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	for i := 0; i < maxEntries+100; i++ {
		Characterize(m, units.Meter(0.1+float64(i)*1e-4))
	}
	if s := Snapshot(); s.Entries > maxEntries {
		t.Errorf("%d resident entries, cap is %d", s.Entries, maxEntries)
	}
}

// TestConcurrentAccess hammers all three memo tables from many
// goroutines; run under -race this is the cache's data-race test.
func TestConcurrentAccess(t *testing.T) {
	resetAll()
	m := phy.NewModel()
	want := m.Characterize(0.5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d := units.Meter(0.1 + float64((g+i)%7)*0.3)
				Characterize(m, d)
				SNR(m, phy.ModePassive, units.Rate100k, d)
				BER(m, phy.ModeBackscatter, units.Rate10k, d)
			}
			if got := Characterize(m, 0.5); !reflect.DeepEqual(got, want) {
				panic(fmt.Sprintf("goroutine %d saw wrong links", g))
			}
		}(g)
	}
	wg.Wait()
}
