// Package linkcache memoizes the deterministic PHY computations the
// scheduling layer re-runs constantly: link characterization
// (phy.Model.Characterize), per-mode SNR, and per-mode BER at a given
// distance. A phy.Model is a plain value struct that is immutable after
// calibration, so every one of these is a pure function of (model,
// distance[, mode, rate]) — the Fig. 15–17 gain matrices, the hub
// scheduler, and the bidirectional scenarios otherwise recompute
// identical answers thousands of times per run.
//
// Keys embed the model *by value*: mutating a model (fade margin, ARQ
// accounting, payload length) simply keys a different entry, so stale
// reads are impossible. Cached slices are shared between callers and
// must be treated as read-only.
//
// The cache is process-global and safe for concurrent use. To keep a
// fleet of parallel hub engines from serializing on one lock, it is
// striped into 2^k independent shards selected by a hash of the lookup
// key; each shard holds its own tables, lock, and hit/miss counters
// (Snapshot aggregates them). Eviction is per-shard and bounded: a full
// shard drops one resident victim to admit the new entry, so a mobility
// workload that overflows the cache degrades smoothly instead of
// repeatedly flushing whole tables out from under concurrent readers
// (the clear-all stampede the pre-sharded cache suffered).
//
// SetEnabled turns the cache off globally (the golden tests prove
// results are bit-identical either way); core.Braid additionally has a
// per-braid bypass. Because every cached value is a pure function of
// its key, eviction policy and shard layout can never change results —
// only hit rates.
package linkcache

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"braidio/internal/par"
	"braidio/internal/phy"
	"braidio/internal/units"
)

// maxEntries bounds the total resident entries per table kind across
// all shards. Steady workloads (fixed scenario distances) stay far
// below it; continuous-mobility workloads churn against the per-shard
// bound instead of growing without bound.
const maxEntries = 4096

// shardBits selects the stripe count: 2^shardBits independent shards.
// 32 shards keep lock hold times negligible for dozens of concurrent
// hub planners while staying small enough that per-shard capacity
// (maxEntries / shardCount) is still useful.
const shardBits = 5

// shardCount is the number of lock stripes.
const shardCount = 1 << shardBits

// maxPerShard bounds each shard's tables so the global footprint stays
// at maxEntries per table kind.
const maxPerShard = maxEntries / shardCount

// linkKey identifies one Characterize result.
type linkKey struct {
	model phy.Model
	d     units.Meter
}

// pointKey identifies one SNR or BER evaluation.
type pointKey struct {
	model phy.Model
	mode  phy.Mode
	rate  units.BitRate
	d     units.Meter
}

// shard is one lock stripe: its own tables and counters. The counters
// are atomics so hits (the hot path) only take the read lock.
type shard struct {
	mu    sync.RWMutex
	links map[linkKey][]phy.ModeLink
	snrs  map[pointKey]units.DB
	bers  map[pointKey]float64

	hits, misses atomic.Uint64
	evictions    atomic.Uint64

	// Pad shards apart so neighbouring stripes' counters do not share a
	// cache line under concurrent planners.
	_ [64]byte
}

var (
	disabled atomic.Bool
	shards   [shardCount]shard
)

func init() {
	for i := range shards {
		shards[i].links = make(map[linkKey][]phy.ModeLink)
		shards[i].snrs = make(map[pointKey]units.DB)
		shards[i].bers = make(map[pointKey]float64)
	}
}

// mix64 is SplitMix64's finalizer — a cheap, high-quality 64-bit mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shardFor selects the stripe for a lookup. Distance is the
// high-cardinality dimension (mobility sweeps thousands of distinct
// separations), so it must dominate the spread; mode/rate and a cheap
// fingerprint of the model's scalar knobs are folded in so distinct
// models and link points do not pile onto one stripe. Models differing
// only in deep rf.Link internals may share a stripe — that costs at
// most capacity sharing, never correctness, because the full model
// value is still part of the map key.
func shardFor(m *phy.Model, mode phy.Mode, rate units.BitRate, d units.Meter) *shard {
	h := mix64(math.Float64bits(float64(d)))
	h ^= mix64(uint64(mode)<<32 ^ math.Float64bits(float64(rate)))
	h ^= mix64(uint64(m.PayloadLen)<<1 ^ math.Float64bits(float64(m.FadeMargin)))
	if m.Retransmit {
		h = mix64(h)
	}
	return &shards[h>>(64-shardBits)]
}

// evictOne drops one resident entry from a full table. Go's randomized
// map iteration order makes the victim effectively random, which is
// exactly what a scan-heavy mobility workload needs: unlike the old
// clear-all flush, a working set that slightly overflows capacity keeps
// most of its entries resident.
func evictOne[K comparable, V any](t map[K]V) {
	for k := range t {
		delete(t, k)
		return
	}
}

// Enabled reports whether the global cache is active.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns the global cache on or off. Disabling does not flush
// existing entries; re-enabling resumes serving them.
func SetEnabled(on bool) { disabled.Store(!on) }

// Characterize returns m.Characterize(d), memoized. The returned slice is
// shared across callers and must not be mutated.
func Characterize(m *phy.Model, d units.Meter) []phy.ModeLink {
	if disabled.Load() {
		return m.Characterize(d)
	}
	sh := shardFor(m, 0, 0, d)
	k := linkKey{model: *m, d: d}
	sh.mu.RLock()
	ls, ok := sh.links[k]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
		return ls
	}
	sh.misses.Add(1)
	ls = m.Characterize(d)
	sh.mu.Lock()
	if _, ok := sh.links[k]; !ok && len(sh.links) >= maxPerShard {
		evictOne(sh.links)
		sh.evictions.Add(1)
	}
	sh.links[k] = ls
	sh.mu.Unlock()
	return ls
}

// SNR returns m.SNR(mode, r, d), memoized — the MAC calls this once per
// frame to synthesize its noisy channel observations.
func SNR(m *phy.Model, mode phy.Mode, r units.BitRate, d units.Meter) units.DB {
	if disabled.Load() {
		return m.SNR(mode, r, d)
	}
	sh := shardFor(m, mode, r, d)
	k := pointKey{model: *m, mode: mode, rate: r, d: d}
	sh.mu.RLock()
	v, ok := sh.snrs[k]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
		return v
	}
	sh.misses.Add(1)
	v = m.SNR(mode, r, d)
	sh.mu.Lock()
	if _, ok := sh.snrs[k]; !ok && len(sh.snrs) >= maxPerShard {
		evictOne(sh.snrs)
		sh.evictions.Add(1)
	}
	sh.snrs[k] = v
	sh.mu.Unlock()
	return v
}

// BER returns m.BER(mode, r, d), memoized — the MAC's per-frame loss
// model.
func BER(m *phy.Model, mode phy.Mode, r units.BitRate, d units.Meter) float64 {
	if disabled.Load() {
		return m.BER(mode, r, d)
	}
	sh := shardFor(m, mode, r, d)
	k := pointKey{model: *m, mode: mode, rate: r, d: d}
	sh.mu.RLock()
	v, ok := sh.bers[k]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
		return v
	}
	sh.misses.Add(1)
	v = m.BER(mode, r, d)
	sh.mu.Lock()
	if _, ok := sh.bers[k]; !ok && len(sh.bers) >= maxPerShard {
		evictOne(sh.bers)
		sh.evictions.Add(1)
	}
	sh.bers[k] = v
	sh.mu.Unlock()
	return v
}

// maxViewEntries bounds a View's private distance table. A view that
// overflows (continuous-mobility sweeps) evicts one resident victim per
// admit, exactly like the global shards; evicted distances re-resolve
// through the global cache, so the canonical slice per (model, distance)
// never changes identity while it stays resident there.
const maxViewEntries = 4096

// View is a pinned-model handle over the cache. The global tables key
// every lookup by the full phy.Model value — hashing a ~200-byte struct
// per call, which profiles as the single hottest item in a hub round. A
// View fixes the model once and keys its private table by distance
// alone (one float64 hash), delegating misses to the global cache so
// the slices it returns are the same canonical shared slices
// Characterize returns: callers that compare slice identity (the braid
// allocation memo) see exactly the behavior of the global path.
//
// The pinned model must not be mutated while the view is alive —
// mutation would key new entries in the global cache while the view
// kept serving the old model's slices. Engines pin calibrated models
// that are immutable by construction (the same contract the global
// cache's by-value keys rely on).
//
// A View is safe for concurrent use.
type View struct {
	model *phy.Model
	mu    sync.RWMutex
	links map[units.Meter][]phy.ModeLink
}

// NewView pins a model and returns its view.
func NewView(m *phy.Model) *View {
	return &View{model: m, links: make(map[units.Meter][]phy.ModeLink)}
}

// Model returns the pinned model.
func (v *View) Model() *phy.Model { return v.model }

// Characterize returns Characterize(model, d) through the distance-keyed
// fast path. With the global cache disabled it characterizes directly
// and caches nothing, matching the global path bit for bit and
// entry for entry.
func (v *View) Characterize(d units.Meter) []phy.ModeLink {
	if disabled.Load() {
		return v.model.Characterize(d)
	}
	v.mu.RLock()
	ls, ok := v.links[d]
	v.mu.RUnlock()
	if ok {
		return ls
	}
	ls = Characterize(v.model, d) // canonical shared slice
	v.mu.Lock()
	if _, ok := v.links[d]; !ok && len(v.links) >= maxViewEntries {
		evictOne(v.links)
	}
	v.links[d] = ls
	v.mu.Unlock()
	return ls
}

// batchParThreshold is the batch size below which CharacterizeBatch
// stays sequential: striping a handful of map hits over the pool costs
// more in goroutine fan-out than it saves.
const batchParThreshold = 64

// CharacterizeBatch fills out[i] with the canonical characterization at
// dists[i] for a whole round, striping the lookups over the worker pool
// for large batches (each index writes only its own slot, so results
// are identical at any worker count). This is the batched link
// characterization the hub's plan phase and the serve daemon's epoch
// planner feed their solve kernels from.
func (v *View) CharacterizeBatch(workers int, dists []units.Meter, out [][]phy.ModeLink) {
	if len(dists) != len(out) {
		panic(fmt.Sprintf("linkcache: %d distances but %d output slots", len(dists), len(out)))
	}
	if len(dists) >= batchParThreshold && workers != 1 {
		par.For(workers, len(dists), func(i int) { out[i] = v.Characterize(dists[i]) })
		return
	}
	for i, d := range dists {
		out[i] = v.Characterize(d)
	}
}

// CharacterizeColumns fills member k's row of cols for every k with the
// structure-of-arrays characterization at dists[k] — the flat-column
// twin of CharacterizeBatch for kernels that never need []ModeLink
// slices. Column rows are computed directly (they carry the SNR column,
// which the AoS cache does not); values are bit-identical to
// Characterize's because both run the same per-mode computations.
func (v *View) CharacterizeColumns(workers int, dists []units.Meter, cols *phy.LinkColumns) {
	cols.Reset(len(dists))
	fill := func(i int) { v.model.CharacterizeColumns(cols, i, dists[i]) }
	if len(dists) >= batchParThreshold && workers != 1 {
		par.For(workers, len(dists), fill)
		return
	}
	for i := range dists {
		fill(i)
	}
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count lookups served from / added to the memo
	// since the last ResetStats, summed across shards.
	Hits, Misses uint64
	// Evictions counts resident entries dropped by full shards since the
	// last ResetStats, summed across shards.
	Evictions uint64
	// Entries is the current resident entry count across all tables and
	// shards.
	Entries int
	// Shards is the number of lock stripes the cache runs with.
	Shards int
}

// Snapshot returns the current cache counters, aggregated over every
// shard.
func Snapshot() Stats {
	s := Stats{Shards: shardCount}
	for i := range shards {
		sh := &shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
		s.Evictions += sh.evictions.Load()
		sh.mu.RLock()
		s.Entries += len(sh.links) + len(sh.snrs) + len(sh.bers)
		sh.mu.RUnlock()
	}
	return s
}

// ResetStats zeroes the hit/miss counters (entries stay resident).
func ResetStats() {
	for i := range shards {
		shards[i].hits.Store(0)
		shards[i].misses.Store(0)
		shards[i].evictions.Store(0)
	}
}

// Flush drops every cached entry in every shard — benchmarks use it to
// measure cold paths.
func Flush() {
	for i := range shards {
		sh := &shards[i]
		sh.mu.Lock()
		clear(sh.links)
		clear(sh.snrs)
		clear(sh.bers)
		sh.mu.Unlock()
	}
}
