// Package linkcache memoizes the deterministic PHY computations the
// scheduling layer re-runs constantly: link characterization
// (phy.Model.Characterize), per-mode SNR, and per-mode BER at a given
// distance. A phy.Model is a plain value struct that is immutable after
// calibration, so every one of these is a pure function of (model,
// distance[, mode, rate]) — the Fig. 15–17 gain matrices, the hub
// scheduler, and the bidirectional scenarios otherwise recompute
// identical answers thousands of times per run.
//
// Keys embed the model *by value*: mutating a model (fade margin, ARQ
// accounting, payload length) simply keys a different entry, so stale
// reads are impossible. Cached slices are shared between callers and
// must be treated as read-only.
//
// The cache is process-global and safe for concurrent use. SetEnabled
// turns it off globally (the golden tests prove results are bit-identical
// either way); core.Braid additionally has a per-braid bypass.
package linkcache

import (
	"sync"
	"sync/atomic"

	"braidio/internal/phy"
	"braidio/internal/units"
)

// maxEntries bounds each memo table. Steady workloads (fixed scenario
// distances) stay far below it; continuous-mobility workloads would
// otherwise grow without bound, so a full table is flushed and rebuilt.
const maxEntries = 4096

// linkKey identifies one Characterize result.
type linkKey struct {
	model phy.Model
	d     units.Meter
}

// pointKey identifies one SNR or BER evaluation.
type pointKey struct {
	model phy.Model
	mode  phy.Mode
	rate  units.BitRate
	d     units.Meter
}

var (
	disabled atomic.Bool

	mu    sync.RWMutex
	links = map[linkKey][]phy.ModeLink{}
	snrs  = map[pointKey]units.DB{}
	bers  = map[pointKey]float64{}

	hits, misses atomic.Uint64
)

// Enabled reports whether the global cache is active.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns the global cache on or off. Disabling does not flush
// existing entries; re-enabling resumes serving them.
func SetEnabled(on bool) { disabled.Store(!on) }

// Characterize returns m.Characterize(d), memoized. The returned slice is
// shared across callers and must not be mutated.
func Characterize(m *phy.Model, d units.Meter) []phy.ModeLink {
	if disabled.Load() {
		return m.Characterize(d)
	}
	k := linkKey{model: *m, d: d}
	mu.RLock()
	ls, ok := links[k]
	mu.RUnlock()
	if ok {
		hits.Add(1)
		return ls
	}
	misses.Add(1)
	ls = m.Characterize(d)
	mu.Lock()
	if len(links) >= maxEntries {
		clear(links)
	}
	links[k] = ls
	mu.Unlock()
	return ls
}

// SNR returns m.SNR(mode, r, d), memoized — the MAC calls this once per
// frame to synthesize its noisy channel observations.
func SNR(m *phy.Model, mode phy.Mode, r units.BitRate, d units.Meter) units.DB {
	if disabled.Load() {
		return m.SNR(mode, r, d)
	}
	k := pointKey{model: *m, mode: mode, rate: r, d: d}
	mu.RLock()
	v, ok := snrs[k]
	mu.RUnlock()
	if ok {
		hits.Add(1)
		return v
	}
	misses.Add(1)
	v = m.SNR(mode, r, d)
	mu.Lock()
	if len(snrs) >= maxEntries {
		clear(snrs)
	}
	snrs[k] = v
	mu.Unlock()
	return v
}

// BER returns m.BER(mode, r, d), memoized — the MAC's per-frame loss
// model.
func BER(m *phy.Model, mode phy.Mode, r units.BitRate, d units.Meter) float64 {
	if disabled.Load() {
		return m.BER(mode, r, d)
	}
	k := pointKey{model: *m, mode: mode, rate: r, d: d}
	mu.RLock()
	v, ok := bers[k]
	mu.RUnlock()
	if ok {
		hits.Add(1)
		return v
	}
	misses.Add(1)
	v = m.BER(mode, r, d)
	mu.Lock()
	if len(bers) >= maxEntries {
		clear(bers)
	}
	bers[k] = v
	mu.Unlock()
	return v
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count lookups served from / added to the memo
	// since the last ResetStats.
	Hits, Misses uint64
	// Entries is the current resident entry count across all tables.
	Entries int
}

// Snapshot returns the current cache counters.
func Snapshot() Stats {
	mu.RLock()
	n := len(links) + len(snrs) + len(bers)
	mu.RUnlock()
	return Stats{Hits: hits.Load(), Misses: misses.Load(), Entries: n}
}

// ResetStats zeroes the hit/miss counters (entries stay resident).
func ResetStats() {
	hits.Store(0)
	misses.Store(0)
}

// Flush drops every cached entry — benchmarks use it to measure cold
// paths.
func Flush() {
	mu.Lock()
	clear(links)
	clear(snrs)
	clear(bers)
	mu.Unlock()
}
