package analog

import (
	"math"
	"testing"

	"braidio/internal/fading"
	"braidio/internal/units"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAmplitudePowerRoundTrip(t *testing.T) {
	// -40 dBm (0.1 µW) into 50 Ω is ~3.16 mV peak — the paper's
	// "several mV for the comparator ⇒ around -40 dBm" arithmetic.
	v := AmplitudeForPower(units.DBm(-40).Watts())
	if !approx(v, 3.16e-3, 0.02e-3) {
		t.Errorf("amplitude at -40 dBm = %v, want ≈3.16 mV", v)
	}
	p := PowerForAmplitude(v)
	if !approx(float64(p.DBm()), -40, 1e-6) {
		t.Errorf("round trip = %v dBm, want -40", p.DBm())
	}
}

func TestComparatorHysteresis(t *testing.T) {
	c := DefaultComparator
	// From low state, small positive input inside hysteresis: stays low.
	if c.Decide(0.5e-3, false) {
		t.Error("comparator flipped inside hysteresis band")
	}
	if !c.Decide(2e-3, false) {
		t.Error("comparator missed a clear high input")
	}
	// From high state, small negative input inside hysteresis: stays high.
	if !c.Decide(-0.5e-3, true) {
		t.Error("comparator dropped inside hysteresis band")
	}
	if c.Decide(-2e-3, true) {
		t.Error("comparator held through a clear low input")
	}
}

func TestComparatorDetects(t *testing.T) {
	c := DefaultComparator
	if c.Detects(1e-3) {
		t.Error("detected a swing below threshold")
	}
	if !c.Detects(6e-3) {
		t.Error("missed a swing above threshold")
	}
}

func TestInstAmpGainRollsOff(t *testing.T) {
	a := DefaultInstAmp
	low := a.EffectiveGain(10*units.Kilohertz, 0)
	high := a.EffectiveGain(10*units.Megahertz, 0)
	if !approx(low, a.Gain, 0.01*a.Gain) {
		t.Errorf("in-band gain = %v, want ≈%v", low, a.Gain)
	}
	if high >= low/2 {
		t.Errorf("gain did not roll off beyond bandwidth: %v vs %v", high, low)
	}
}

// TestInputCapacitanceMatters verifies the paper's design note: with the
// charge pump's high output impedance, a high-capacitance amplifier
// throttles the signal; the INA2331's 1.8 pF keeps the pole above the
// signal band.
func TestInputCapacitanceMatters(t *testing.T) {
	good := DefaultInstAmp
	bad := DefaultInstAmp
	bad.InputCapacitance = 100e-12
	const zs = 100e3 // pessimistic pump impedance
	f := units.Hertz(100e3)
	gGood := good.EffectiveGain(f, zs)
	gBad := bad.EffectiveGain(f, zs)
	if gBad >= gGood/2 {
		t.Errorf("100 pF amp gain %v not clearly worse than 1.8 pF amp %v", gBad, gGood)
	}
}

func TestInstAmpNoiseScalesWithBandwidth(t *testing.T) {
	a := DefaultInstAmp
	n1 := a.NoiseVoltage(10 * units.Kilohertz)
	n2 := a.NoiseVoltage(1 * units.Megahertz)
	if !approx(n2/n1, 10, 0.01) {
		t.Errorf("noise ratio over 100× bandwidth = %v, want 10", n2/n1)
	}
}

func TestSAWFilter(t *testing.T) {
	s := DefaultSAW
	if got := s.Attenuation(915 * units.Megahertz); got != s.InsertionLoss {
		t.Errorf("in-band attenuation = %v, want %v", got, s.InsertionLoss)
	}
	if got := s.Attenuation(800 * units.Megahertz); got != 50 {
		t.Errorf("800 MHz rejection = %v, want 50 dB", got)
	}
	if got := s.Attenuation(2400 * units.Megahertz); got != 30 {
		t.Errorf("2.4 GHz rejection = %v, want 30 dB", got)
	}
}

func TestSAWRejectsInterferer(t *testing.T) {
	s := DefaultSAW
	// A 20 dBm WiFi blast at 2.4 GHz lands at -10 dBm after 30 dB
	// rejection: still above a -40 dBm tolerance → not rejected.
	if s.Rejects(2400*units.Megahertz, 20, -40) {
		t.Error("strong in-band-adjacent interferer should not be rejected to -40 dBm")
	}
	// A 0 dBm cellular signal at 800 MHz lands at -50 dBm: rejected.
	if !s.Rejects(800*units.Megahertz, 0, -40) {
		t.Error("800 MHz interferer should be rejected")
	}
}

func TestHighPass(t *testing.T) {
	h := HighPass{Cutoff: 3 * units.Kilohertz}
	if g := h.Gain(3 * units.Kilohertz); !approx(g, 1/math.Sqrt2, 1e-6) {
		t.Errorf("gain at cutoff = %v, want 0.707", g)
	}
	if g := h.Gain(0); g != 0 {
		t.Errorf("DC gain = %v, want 0 (this is the self-interference rejection)", g)
	}
	if g := h.Gain(100 * units.Kilohertz); g < 0.99 {
		t.Errorf("passband gain = %v, want ≈1", g)
	}
}

func TestChainSensitivityBareDetector(t *testing.T) {
	c := DefaultChain()
	c.Amp = nil
	got := c.Sensitivity(units.Rate100k)
	// The paper: without amplification, around -40 dBm.
	if float64(got) < -45 || float64(got) > -35 {
		t.Errorf("bare detector sensitivity = %v dBm, want ≈-40", got)
	}
}

func TestChainSensitivityWithAmp(t *testing.T) {
	c := DefaultChain()
	bare := c
	bare.Amp = nil
	withAmp := c.Sensitivity(units.Rate100k)
	without := bare.Sensitivity(units.Rate100k)
	if withAmp >= without {
		t.Errorf("amplifier did not improve sensitivity: %v vs %v", withAmp, without)
	}
	// Improvement should be large but not reach active-radio -80 dBm
	// territory (the gap §3.2 concedes).
	if float64(withAmp) < -80 {
		t.Errorf("amplified sensitivity %v is implausibly good", withAmp)
	}
	if float64(withAmp) > -50 {
		t.Errorf("amplified sensitivity %v barely improved", withAmp)
	}
}

// TestSensitivityImprovesAtLowerBitrate verifies the noise-bandwidth
// scaling that underlies Fig. 13: slower bitrates see a quieter detector
// and reach farther.
func TestSensitivityImprovesAtLowerBitrate(t *testing.T) {
	c := DefaultChain()
	s1M := c.Sensitivity(units.Rate1M)
	s100k := c.Sensitivity(units.Rate100k)
	s10k := c.Sensitivity(units.Rate10k)
	if !(s10k < s100k && s100k < s1M) {
		t.Errorf("sensitivities not ordered: %v, %v, %v", s10k, s100k, s1M)
	}
	// Noise-limited regime scales 10 dB per decade of bandwidth.
	if d := float64(s1M - s100k); d < 8 || d > 12 {
		t.Errorf("1M→100k improvement = %v dB, want ≈10", d)
	}
}

func TestChainPowerDraw(t *testing.T) {
	c := DefaultChain()
	p := c.PowerDraw()
	// Amp + comparator: tens of µW — the "passive receiver consumes
	// minimal power" claim.
	if p <= 0 || p > 100e-6 {
		t.Errorf("chain power = %v, want O(10 µW)", p)
	}
	c.Amp = nil
	if c.PowerDraw() >= p {
		t.Error("removing the amp did not reduce power")
	}
}

// TestSelfInterferenceRejection ties the chain to the fading model: the
// millisecond-coherence drift of §3.1 is suppressed by ≥40 dB relative to
// a 100 kbps signal.
func TestSelfInterferenceRejection(t *testing.T) {
	c := DefaultChain()
	si := fading.DefaultSelfInterference(1.0)
	if !c.RejectsSelfInterference(si.MaxDriftRate(), units.Rate100k, 100) {
		t.Error("chain fails to reject millisecond-coherence self-interference by 40 dB")
	}
	// A pathologically fast channel (coherence ~ bit time) defeats it.
	fast := fading.SelfInterference{Level: 1, DriftFraction: 1, CoherenceTime: 1e-5}
	if c.RejectsSelfInterference(fast.MaxDriftRate(), units.Rate10k, 100) {
		t.Error("chain should not claim rejection of in-band interference dynamics")
	}
}

func TestAntennaSwitchDefaults(t *testing.T) {
	if DefaultSwitch.Power > 10e-6 {
		t.Errorf("switch power %v exceeds the paper's <10 µW", DefaultSwitch.Power)
	}
	if DefaultSwitch.InsertionLoss <= 0 {
		t.Error("switch must have some insertion loss")
	}
}

func TestChainString(t *testing.T) {
	if s := DefaultChain().String(); s == "" {
		t.Error("empty chain description")
	}
}

func TestValidationPanics(t *testing.T) {
	c := DefaultChain()
	for name, f := range map[string]func(){
		"neg power":    func() { AmplitudeForPower(-1) },
		"neg amp":      func() { PowerForAmplitude(-1) },
		"zero rate":    func() { c.Sensitivity(0) },
		"saw zero":     func() { DefaultSAW.Attenuation(0) },
		"hp negative":  func() { (HighPass{Cutoff: 1}).Gain(-1) },
		"noise bw":     func() { DefaultInstAmp.NoiseVoltage(0) },
		"gain neg":     func() { DefaultInstAmp.EffectiveGain(-1, 0) },
		"unconfigured": func() { (Chain{}).Sensitivity(units.Rate1M) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
