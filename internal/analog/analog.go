// Package analog provides behavioural models of the analog front-end
// components Braidio adds to a BLE-style active radio (§3.2, Table 3/4):
// the envelope-detector receive chain (charge pump → instrumentation
// amplifier → comparator), the SAW band filter, and the antenna switch.
//
// These models capture the properties that matter to the system — gains,
// thresholds, noise, bandwidth, insertion loss, power draw — rather than
// transistor-level behaviour (internal/circuit covers that for the charge
// pump). Their composition, Chain, yields the passive receiver's
// sensitivity from first principles, which the PHY's calibrated
// sensitivity table is validated against.
package analog

import (
	"fmt"
	"math"

	"braidio/internal/units"
)

// AntennaImpedance is the system reference impedance in ohms.
const AntennaImpedance = 50.0

// AmplitudeForPower returns the peak RF voltage at the antenna port for a
// given available power: V = √(2·P·R).
func AmplitudeForPower(p units.Watt) float64 {
	if p < 0 {
		panic("analog: negative power")
	}
	return math.Sqrt(2 * float64(p) * AntennaImpedance)
}

// PowerForAmplitude inverts AmplitudeForPower.
func PowerForAmplitude(v float64) units.Watt {
	if v < 0 {
		panic("analog: negative amplitude")
	}
	return units.Watt(v * v / (2 * AntennaImpedance))
}

// Comparator models a nanopower comparator (NCS2200 / TS881 class).
type Comparator struct {
	// Threshold is the minimum differential input that produces a
	// correct decision, in volts. Datasheets put this at a few mV.
	Threshold float64
	// Hysteresis is the additional margin required to flip an already
	// latched output, suppressing chatter around the threshold.
	Hysteresis float64
	// Power is the supply draw while enabled.
	Power units.Watt
}

// DefaultComparator matches the TS881-class parts cited by the paper.
var DefaultComparator = Comparator{Threshold: 5e-3, Hysteresis: 1e-3, Power: 1e-6}

// Decide returns the comparator output for a differential input given the
// previous output state. Inputs inside the hysteresis band hold the
// previous state.
func (c Comparator) Decide(diff float64, prev bool) bool {
	if prev {
		return diff > -c.Hysteresis
	}
	return diff > c.Hysteresis
}

// Detects reports whether a signal swing of the given amplitude is large
// enough for reliable decisions.
func (c Comparator) Detects(amplitude float64) bool {
	return amplitude >= c.Threshold
}

// InstAmp models the instrumentation amplifier (INA2331 class) inserted
// between the charge pump and the comparator to recover sensitivity.
type InstAmp struct {
	// Gain is the voltage gain (linear).
	Gain float64
	// Bandwidth is the -3 dB bandwidth in Hz; signals faster than this
	// are attenuated (single-pole model).
	Bandwidth units.Hertz
	// InputCapacitance in farads. Together with the charge pump's large
	// output impedance this forms a low-pass pole; the paper stresses
	// the INA2331's low 1.8 pF input capacitance for exactly this
	// reason.
	InputCapacitance float64
	// InputNoiseDensity is the input-referred noise in V/√Hz.
	InputNoiseDensity float64
	// Power is the supply draw while enabled.
	Power units.Watt
}

// DefaultInstAmp matches the INA2331 parameters the paper cites.
var DefaultInstAmp = InstAmp{
	Gain:              100,
	Bandwidth:         2 * units.Megahertz,
	InputCapacitance:  1.8e-12,
	InputNoiseDensity: 46e-9,
	Power:             15e-6,
}

// EffectiveGain returns the amplifier gain at a signal frequency f when
// driven from a source of the given output impedance: the nominal gain
// rolled off by both the amplifier pole and the source/input-capacitance
// pole.
func (a InstAmp) EffectiveGain(f units.Hertz, sourceImpedance float64) float64 {
	if f < 0 || sourceImpedance < 0 {
		panic("analog: negative frequency or impedance")
	}
	g := a.Gain
	if a.Bandwidth > 0 {
		g /= math.Sqrt(1 + math.Pow(float64(f)/float64(a.Bandwidth), 2))
	}
	if a.InputCapacitance > 0 && sourceImpedance > 0 {
		fc := 1 / (2 * math.Pi * sourceImpedance * a.InputCapacitance)
		g /= math.Sqrt(1 + math.Pow(float64(f)/fc, 2))
	}
	return g
}

// NoiseVoltage returns the input-referred RMS noise over a bandwidth.
func (a InstAmp) NoiseVoltage(bw units.Hertz) float64 {
	if bw <= 0 {
		panic("analog: non-positive bandwidth")
	}
	return a.InputNoiseDensity * math.Sqrt(float64(bw))
}

// SAWFilter models the passive band filter at the radio front end
// (SF2049E class: 902–928 MHz passband, 50 dB suppression in the 800 MHz
// band, >30 dB at 2.4 GHz). It consumes no power.
type SAWFilter struct {
	// PassLow and PassHigh bound the passband.
	PassLow, PassHigh units.Hertz
	// InsertionLoss inside the passband.
	InsertionLoss units.DB
	// NearRejection applies to out-of-band signals within an octave of
	// the passband (e.g. the 800 MHz cellular band).
	NearRejection units.DB
	// FarRejection applies beyond an octave (e.g. 2.4 GHz WiFi).
	FarRejection units.DB
}

// DefaultSAW matches the SF2049E used on the Braidio board.
var DefaultSAW = SAWFilter{
	PassLow:       902 * units.Megahertz,
	PassHigh:      928 * units.Megahertz,
	InsertionLoss: 2,
	NearRejection: 50,
	FarRejection:  30,
}

// Attenuation returns the filter loss at a given frequency.
func (s SAWFilter) Attenuation(f units.Hertz) units.DB {
	if f <= 0 {
		panic("analog: non-positive frequency")
	}
	if f >= s.PassLow && f <= s.PassHigh {
		return s.InsertionLoss
	}
	centre := (s.PassLow + s.PassHigh) / 2
	ratio := float64(f / centre)
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio < 2 {
		return s.NearRejection
	}
	return s.FarRejection
}

// Rejects reports whether an interferer at frequency f and power p is
// suppressed below the given tolerable level at the detector.
func (s SAWFilter) Rejects(f units.Hertz, p units.DBm, tolerable units.DBm) bool {
	return p.Sub(s.Attenuation(f)) <= tolerable
}

// AntennaSwitch models the SPDT switch (SKY13267 class) that selects
// between the two diversity antennas.
type AntennaSwitch struct {
	// InsertionLoss per pass.
	InsertionLoss units.DB
	// Power is the control draw (the paper quotes <10 µW).
	Power units.Watt
	// SwitchTime is how long a changeover takes.
	SwitchTime units.Second
}

// DefaultSwitch matches the SKY13267.
var DefaultSwitch = AntennaSwitch{InsertionLoss: 0.35, Power: 8e-6, SwitchTime: 1e-6}

// HighPass is the single-pole high-pass filter that strips the DC /
// low-frequency self-interference component from the detected envelope
// (§3.1's key insight).
type HighPass struct {
	// Cutoff is the -3 dB corner in Hz.
	Cutoff units.Hertz
}

// Gain returns the filter's magnitude response at frequency f.
func (h HighPass) Gain(f units.Hertz) float64 {
	if f < 0 {
		panic("analog: negative frequency")
	}
	if h.Cutoff <= 0 {
		return 1
	}
	x := float64(f) / float64(h.Cutoff)
	return x / math.Sqrt(1+x*x)
}

// Chain is the complete passive receive chain: antenna → SAW → charge
// pump (represented by its boost and output impedance) → high-pass →
// amplifier → comparator.
type Chain struct {
	SAW SAWFilter
	// PumpBoost is the charge pump's small-signal voltage boost (2N for
	// N stages).
	PumpBoost float64
	// PumpOutputImpedance at the signal bitrate's fundamental, ohms.
	PumpOutputImpedance float64
	HighPass            HighPass
	Amp                 *InstAmp // nil = no amplifier (bare detector)
	Comparator          Comparator
	// RequiredSNR is the post-detection SNR (linear amplitude ratio)
	// needed for the target bit error rate; ≈4 (12 dB) for OOK at 1e-3.
	RequiredSNR float64
}

// DefaultChain returns the paper's chain: one-stage pump, INA2331,
// TS881-class comparator.
func DefaultChain() Chain {
	amp := DefaultInstAmp
	return Chain{
		SAW:                 DefaultSAW,
		PumpBoost:           2,
		PumpOutputImpedance: 10e3,
		HighPass:            HighPass{Cutoff: 3 * units.Kilohertz},
		Amp:                 &amp,
		Comparator:          DefaultComparator,
		RequiredSNR:         4,
	}
}

// Sensitivity returns the minimum detectable RF signal power for an OOK
// signal whose envelope bandwidth matches the bit rate: the larger of the
// comparator-limited and noise-limited floors.
func (c Chain) Sensitivity(rate units.BitRate) units.DBm {
	if rate <= 0 {
		panic("analog: non-positive bit rate")
	}
	if c.PumpBoost <= 0 || c.RequiredSNR <= 0 {
		panic("analog: chain not configured")
	}
	f := units.Hertz(float64(rate)) // envelope fundamental ≈ bit rate
	gain := 1.0
	if c.Amp != nil {
		gain = c.Amp.EffectiveGain(f, c.PumpOutputImpedance)
	}
	hp := c.HighPass.Gain(f)

	// Comparator-limited: swing at the comparator must reach threshold.
	vinComp := c.Comparator.Threshold / (c.PumpBoost * gain * hp)

	// Noise-limited: input-referred amp noise over the signal bandwidth
	// must be exceeded by RequiredSNR at the amp input.
	vinNoise := 0.0
	if c.Amp != nil {
		vinNoise = c.RequiredSNR * c.Amp.NoiseVoltage(f) / (c.PumpBoost * hp)
	}

	vin := math.Max(vinComp, vinNoise)
	p := PowerForAmplitude(vin)
	return p.DBm().Add(units.DB(c.SAW.InsertionLoss))
}

// PowerDraw returns the chain's total supply power: SAW and pump are
// passive; amplifier and comparator draw.
func (c Chain) PowerDraw() units.Watt {
	p := c.Comparator.Power
	if c.Amp != nil {
		p += c.Amp.Power
	}
	return p
}

// RejectsSelfInterference reports whether a self-interference drift
// process with the given maximum rate (rad/s normalized, as returned by
// fading.SelfInterference.MaxDriftRate) is suppressed at least `margin`
// (linear) relative to a signal at the bit rate.
func (c Chain) RejectsSelfInterference(driftRate float64, rate units.BitRate, margin float64) bool {
	driftHz := units.Hertz(driftRate / (2 * math.Pi))
	sig := c.HighPass.Gain(units.Hertz(float64(rate)))
	si := c.HighPass.Gain(driftHz)
	if si == 0 {
		return true
	}
	return sig/si >= margin
}

// String summarizes the chain configuration.
func (c Chain) String() string {
	amp := "no amp"
	if c.Amp != nil {
		amp = fmt.Sprintf("amp ×%g", c.Amp.Gain)
	}
	return fmt.Sprintf("chain{pump ×%g, %s, comparator %v mV}", c.PumpBoost, amp, c.Comparator.Threshold*1e3)
}
