package frame

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"braidio/internal/units"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check vector = %#04x, want 0x29B1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Errorf("CRC16(empty) = %#04x, want 0xFFFF (init value)", got)
	}
}

func TestCRC16DetectsSingleBitFlips(t *testing.T) {
	data := []byte("braidio carrier offload")
	orig := CRC16(data)
	for i := range data {
		for b := 0; b < 8; b++ {
			data[i] ^= 1 << b
			if CRC16(data) == orig {
				t.Fatalf("single-bit flip at %d.%d not detected", i, b)
			}
			data[i] ^= 1 << b
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	h := Header{Type: TypeData, Mode: 2, Seq: 0xBEEF, Battery: 200, Ack: 0x1234}
	payload := []byte("hello from the tag")
	buf, err := Encode(h, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != WireSize(len(payload)) {
		t.Errorf("wire size %d, want %d", len(buf), WireSize(len(payload)))
	}
	f, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Header.Type != h.Type || f.Header.Mode != h.Mode || f.Header.Seq != h.Seq ||
		f.Header.Battery != h.Battery || f.Header.Ack != h.Ack {
		t.Errorf("header mismatch: %+v vs %+v", f.Header, h)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload mismatch")
	}
	if f.Header.Length != uint8(len(payload)) {
		t.Errorf("length = %d, want %d", f.Header.Length, len(payload))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(typ, mode, battery uint8, seq, ack uint16, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := Header{Type: Type(typ % 5), Mode: mode % 3, Seq: seq, Battery: battery, Ack: ack}
		buf, err := Encode(h, payload)
		if err != nil {
			return false
		}
		got, err := Decode(buf)
		if err != nil {
			return false
		}
		return got.Header.Seq == seq && got.Header.Ack == ack &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	buf, err := Encode(Header{Type: TypeData, Seq: 7}, []byte("payload bytes"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every single byte position past the preamble and confirm
	// the decoder never silently accepts.
	for i := PreambleLen; i < len(buf); i++ {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		f, err := Decode(bad)
		if err == nil {
			// A corrupted length field can still CRC-fail; a corrupted
			// payload must too. Accept only identical decode, which
			// can't happen after a flip.
			t.Fatalf("corruption at byte %d accepted: %+v", i, f)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); !errors.Is(err, ErrTooShort) {
		t.Errorf("short buffer: %v", err)
	}
	buf, _ := Encode(Header{}, nil)
	noSync := append([]byte(nil), buf...)
	noSync[PreambleLen] = 0x00
	if _, err := Decode(noSync); !errors.Is(err, ErrNoSync) {
		t.Errorf("broken sync: %v", err)
	}
	badLen := append([]byte(nil), buf...)
	badLen[PreambleLen+SyncLen+4] = 200 // length field beyond buffer
	if _, err := Decode(badLen); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length: %v", err)
	}
	badCRC := append([]byte(nil), buf...)
	badCRC[len(badCRC)-1] ^= 0xFF
	if _, err := Decode(badCRC); !errors.Is(err, ErrBadCRC) {
		t.Errorf("bad CRC: %v", err)
	}
}

func TestEncodeOversized(t *testing.T) {
	if _, err := Encode(Header{}, make([]byte, MaxPayload+1)); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized payload: %v", err)
	}
}

func TestOverheadIs16Bytes(t *testing.T) {
	// The energy model's 93.75% framing efficiency assumes 16 bytes of
	// overhead on a 240-byte payload; pin it.
	if Overhead != 16 {
		t.Fatalf("Overhead = %d, want 16", Overhead)
	}
	if got := Efficiency(DefaultPayload); math.Abs(got-0.9375) > 1e-12 {
		t.Errorf("default efficiency = %v, want 0.9375", got)
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	prev := -1.0
	for l := 0; l <= MaxPayload; l += 16 {
		e := Efficiency(l)
		if e <= prev {
			t.Fatalf("efficiency not increasing at payload %d", l)
		}
		prev = e
	}
}

func TestFrameErrorRate(t *testing.T) {
	if got := FrameErrorRate(0, 100); got != 0 {
		t.Errorf("FER at BER 0 = %v", got)
	}
	if got := FrameErrorRate(1, 100); got != 1 {
		t.Errorf("FER at BER 1 = %v", got)
	}
	// Small-BER approximation: FER ≈ bits × BER.
	ber := 1e-6
	bits := float64(WireBits(100))
	if got := FrameErrorRate(ber, 100); math.Abs(got-bits*ber)/(bits*ber) > 0.01 {
		t.Errorf("FER = %v, want ≈ %v", got, bits*ber)
	}
}

func TestFrameErrorRateMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x := float64(a) / 65536 * 0.01
		y := float64(b) / 65536 * 0.01
		if x > y {
			x, y = y, x
		}
		return FrameErrorRate(x, 64) <= FrameErrorRate(y, 64)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGoodput(t *testing.T) {
	// Perfect link at 1 Mbps with default payload: 937.5 kbps goodput.
	g := Goodput(units.Rate1M, 0, DefaultPayload)
	if math.Abs(float64(g)-937500) > 1 {
		t.Errorf("perfect goodput = %v, want 937500", g)
	}
	// Goodput collapses as BER climbs.
	if Goodput(units.Rate1M, 1e-3, DefaultPayload) >= g/2 {
		t.Error("goodput at BER 1e-3 should be heavily degraded")
	}
}

func TestExpectedTransmissions(t *testing.T) {
	if got := ExpectedTransmissions(0, 64); got != 1 {
		t.Errorf("perfect link retransmissions = %v, want 1", got)
	}
	if got := ExpectedTransmissions(1, 64); !math.IsInf(got, 1) {
		t.Errorf("dead link retransmissions = %v, want +Inf", got)
	}
	if got := ExpectedTransmissions(1e-4, 64); got <= 1 || got > 2 {
		t.Errorf("retransmissions at 1e-4 = %v, want slightly above 1", got)
	}
}

func TestFERPanics(t *testing.T) {
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BER %v did not panic", bad)
				}
			}()
			FrameErrorRate(bad, 10)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("negative payload did not panic")
		}
	}()
	Efficiency(-1)
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{TypeData, TypeAck, TypeProbe, TypeBattery, TypeModeSwitch, Type(99)} {
		if typ.String() == "" {
			t.Errorf("empty string for type %d", typ)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	payload := make([]byte, DefaultPayload)
	for i := 0; i < b.N; i++ {
		if _, err := Encode(Header{Type: TypeData, Seq: uint16(i)}, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	payload := make([]byte, DefaultPayload)
	buf, _ := Encode(Header{Type: TypeData}, payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
