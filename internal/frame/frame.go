// Package frame implements Braidio's link-layer framing: a preamble for
// envelope-detector settling and bit synchronization, a sync word, a
// compact header, the payload, and a CRC-16/CCITT trailer.
//
// All three link modes share this frame format so that mode switches are
// transparent to upper layers; the header carries the fields the braided
// MAC needs (mode, sequence, battery telemetry for the carrier-offload
// exchange, and an ACK bit).
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"braidio/internal/units"
)

// Frame layout constants (bytes).
const (
	// PreambleLen is the alternating 0xAA training sequence that lets
	// the charge pump and comparator settle and the receiver recover
	// bit timing.
	PreambleLen = 4
	// SyncLen is the frame-start marker length.
	SyncLen = 2
	// HeaderLen is the encoded Header size.
	HeaderLen = 8
	// CRCLen is the CRC-16 trailer.
	CRCLen = 2
	// Overhead is everything but payload.
	Overhead = PreambleLen + SyncLen + HeaderLen + CRCLen
	// MaxPayload keeps frames short enough that per-frame error rates
	// stay manageable on the weak links.
	MaxPayload = 240
	// DefaultPayload is the payload size used by the characterization
	// experiments: with Overhead = 16 it yields the 93.75% framing
	// efficiency the energy model uses.
	DefaultPayload = MaxPayload
)

// SyncWord marks the start of a frame after the preamble.
var SyncWord = [SyncLen]byte{0x2D, 0xD4}

// Type enumerates frame types.
type Type uint8

// Frame types.
const (
	// TypeData carries payload.
	TypeData Type = iota
	// TypeAck acknowledges a data frame.
	TypeAck
	// TypeProbe measures link SNR/bitrate (the §4.2 probing step).
	TypeProbe
	// TypeBattery carries battery telemetry for the offload exchange.
	TypeBattery
	// TypeModeSwitch announces an operating-mode change.
	TypeModeSwitch
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeProbe:
		return "probe"
	case TypeBattery:
		return "battery"
	case TypeModeSwitch:
		return "mode-switch"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Header is the decoded frame header.
type Header struct {
	// Type of the frame.
	Type Type
	// Mode is the link mode the frame was sent in (0 active, 1 passive,
	// 2 backscatter), mirrored from the MAC for cross-checking.
	Mode uint8
	// Seq is the sequence number.
	Seq uint16
	// Length is the payload length in bytes.
	Length uint8
	// Battery is coarse battery telemetry: the sender's remaining
	// energy quantized to 1/255 of full scale, used by the carrier
	// offload algorithm's energy exchange.
	Battery uint8
	// Ack piggybacks the last in-order sequence received.
	Ack uint16
}

// Frame is a full decoded frame.
type Frame struct {
	Header  Header
	Payload []byte
}

// Errors returned by Decode.
var (
	ErrTooShort  = errors.New("frame: buffer too short")
	ErrNoSync    = errors.New("frame: sync word not found")
	ErrBadCRC    = errors.New("frame: CRC mismatch")
	ErrBadLength = errors.New("frame: length field exceeds buffer")
	ErrOversized = errors.New("frame: payload exceeds MaxPayload")
)

// CRC16 computes CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) over data.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Encode serializes a frame: preamble, sync, header, payload, CRC over
// header+payload.
func Encode(h Header, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, ErrOversized
	}
	h.Length = uint8(len(payload))
	buf := make([]byte, 0, Overhead+len(payload))
	for i := 0; i < PreambleLen; i++ {
		buf = append(buf, 0xAA)
	}
	buf = append(buf, SyncWord[:]...)
	hdr := make([]byte, HeaderLen)
	hdr[0] = byte(h.Type)
	hdr[1] = h.Mode
	binary.BigEndian.PutUint16(hdr[2:], h.Seq)
	hdr[4] = h.Length
	hdr[5] = h.Battery
	binary.BigEndian.PutUint16(hdr[6:], h.Ack)
	buf = append(buf, hdr...)
	buf = append(buf, payload...)
	crc := CRC16(buf[PreambleLen+SyncLen:])
	var tail [CRCLen]byte
	binary.BigEndian.PutUint16(tail[:], crc)
	buf = append(buf, tail[:]...)
	return buf, nil
}

// Decode parses a frame from a buffer that begins at the preamble. It
// verifies the sync word and CRC.
func Decode(buf []byte) (*Frame, error) {
	if len(buf) < Overhead {
		return nil, ErrTooShort
	}
	body := buf[PreambleLen:]
	if body[0] != SyncWord[0] || body[1] != SyncWord[1] {
		return nil, ErrNoSync
	}
	body = body[SyncLen:]
	if len(body) < HeaderLen+CRCLen {
		return nil, ErrTooShort
	}
	length := int(body[4])
	if len(body) < HeaderLen+length+CRCLen {
		return nil, ErrBadLength
	}
	msg := body[:HeaderLen+length]
	want := binary.BigEndian.Uint16(body[HeaderLen+length:])
	if CRC16(msg) != want {
		return nil, ErrBadCRC
	}
	h := Header{
		Type:    Type(body[0]),
		Mode:    body[1],
		Seq:     binary.BigEndian.Uint16(body[2:]),
		Length:  body[4],
		Battery: body[5],
		Ack:     binary.BigEndian.Uint16(body[6:]),
	}
	payload := append([]byte(nil), body[HeaderLen:HeaderLen+length]...)
	return &Frame{Header: h, Payload: payload}, nil
}

// WireSize returns the on-air size in bytes of a frame with the given
// payload length.
func WireSize(payloadLen int) int { return Overhead + payloadLen }

// WireBits returns the on-air size in bits.
func WireBits(payloadLen int) int { return 8 * WireSize(payloadLen) }

// Efficiency returns payload bits / on-air bits for a payload length.
func Efficiency(payloadLen int) float64 {
	if payloadLen < 0 {
		panic("frame: negative payload length")
	}
	return float64(8*payloadLen) / float64(WireBits(payloadLen))
}

// FrameErrorRate converts a bit error rate into the probability that a
// frame of the given payload length has at least one bit error:
// 1 − (1−BER)^bits.
func FrameErrorRate(ber float64, payloadLen int) float64 {
	if ber < 0 || ber > 1 {
		panic(fmt.Sprintf("frame: BER %v outside [0,1]", ber))
	}
	bits := float64(WireBits(payloadLen))
	return 1 - pow1m(ber, bits)
}

// pow1m computes (1-p)^n accurately for small p via log1p.
func pow1m(p, n float64) float64 {
	if p >= 1 {
		return 0
	}
	return math.Exp(n * math.Log1p(-p))
}

// Goodput returns the effective payload throughput of a link running at
// rate r with the given BER and payload size, assuming lost frames are
// retransmitted (selective repeat): rate × efficiency × (1 − FER).
func Goodput(r units.BitRate, ber float64, payloadLen int) units.BitRate {
	fer := FrameErrorRate(ber, payloadLen)
	return units.BitRate(float64(r) * Efficiency(payloadLen) * (1 - fer))
}

// ExpectedTransmissions returns the mean number of transmissions per
// frame under independent losses: 1/(1−FER). Infinite at FER = 1.
func ExpectedTransmissions(ber float64, payloadLen int) float64 {
	fer := FrameErrorRate(ber, payloadLen)
	if fer >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - fer)
}
