package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary buffers to the decoder: it must never
// panic, and whatever it accepts must re-encode to a frame that decodes
// to the same header and payload (a parse/serialize fixpoint).
func FuzzDecode(f *testing.F) {
	good, _ := Encode(Header{Type: TypeData, Mode: 1, Seq: 7, Battery: 9, Ack: 3}, []byte("seed"))
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))
	truncated := good[:len(good)-3]
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(fr.Header, fr.Payload)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		fr2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.Header != fr.Header || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("decode/encode fixpoint broken: %+v vs %+v", fr, fr2)
		}
	})
}

// FuzzEncodeDecode drives the encoder with arbitrary header fields and
// payloads.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(0), uint8(0), uint16(0), []byte{})
	f.Add(uint8(4), uint8(2), uint16(65535), uint8(255), uint16(1), []byte("payload"))
	f.Fuzz(func(t *testing.T, typ, mode uint8, seq uint16, battery uint8, ack uint16, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := Header{Type: Type(typ), Mode: mode, Seq: seq, Battery: battery, Ack: ack}
		buf, err := Encode(h, payload)
		if err != nil {
			t.Fatalf("encode rejected valid input: %v", err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode of fresh frame failed: %v", err)
		}
		if got.Header.Seq != seq || got.Header.Ack != ack || !bytes.Equal(got.Payload, payload) {
			t.Fatal("round trip mismatch")
		}
	})
}
