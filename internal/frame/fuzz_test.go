package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary buffers to the decoder: it must never
// panic, and whatever it accepts must re-encode to a frame that decodes
// to the same header and payload (a parse/serialize fixpoint).
func FuzzDecode(f *testing.F) {
	good, _ := Encode(Header{Type: TypeData, Mode: 1, Seq: 7, Battery: 9, Ack: 3}, []byte("seed"))
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))
	truncated := good[:len(good)-3]
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(fr.Header, fr.Payload)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		fr2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.Header != fr.Header || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("decode/encode fixpoint broken: %+v vs %+v", fr, fr2)
		}
	})
}

// FuzzEncodeDecode drives the encoder with arbitrary header fields and
// payloads.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(0), uint8(0), uint16(0), []byte{})
	f.Add(uint8(4), uint8(2), uint16(65535), uint8(255), uint16(1), []byte("payload"))
	f.Fuzz(func(t *testing.T, typ, mode uint8, seq uint16, battery uint8, ack uint16, payload []byte) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := Header{Type: Type(typ), Mode: mode, Seq: seq, Battery: battery, Ack: ack}
		buf, err := Encode(h, payload)
		if err != nil {
			t.Fatalf("encode rejected valid input: %v", err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("decode of fresh frame failed: %v", err)
		}
		if got.Header.Seq != seq || got.Header.Ack != ack || !bytes.Equal(got.Payload, payload) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzDecodeMutated starts from a *valid* frame built out of the fuzz
// input, then applies a fuzz-chosen mutation — a single bit flip or a
// truncation — before decoding. Unlike FuzzDecode's arbitrary buffers,
// every input here is one mutation away from well-formed, which
// concentrates coverage on the validation boundaries: a bit flip must
// surface as ErrNoSync/ErrBadCRC/ErrBadLength (or, if it lands in the
// preamble, still decode to the original frame), a truncation as
// ErrTooShort/ErrBadLength — and the decoder must never panic or accept
// a frame that differs from the original without a CRC-colliding flip.
func FuzzDecodeMutated(f *testing.F) {
	f.Add(uint16(7), []byte("seed payload"), uint16(12), false)
	f.Add(uint16(0), []byte{}, uint16(0), true)
	f.Add(uint16(65535), bytes.Repeat([]byte{0x5A}, MaxPayload), uint16(3), true)
	f.Fuzz(func(t *testing.T, seq uint16, payload []byte, pos uint16, truncate bool) {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		h := Header{Type: TypeData, Mode: 1, Seq: seq, Battery: 42, Ack: seq ^ 0xFFFF}
		good, err := Encode(h, payload)
		if err != nil {
			t.Fatalf("encode of valid input failed: %v", err)
		}
		mutated := append([]byte(nil), good...)
		if truncate {
			mutated = mutated[:int(pos)%len(mutated)]
		} else {
			i := int(pos) % (8 * len(mutated))
			mutated[i/8] ^= 1 << (i % 8)
		}
		// The only requirement on the mutated buffer is a clean verdict:
		// error out or decode — never panic.
		fr, err := Decode(mutated)
		if err != nil {
			return
		}
		// Accepted anyway: either the mutation hit the inert preamble (the
		// frame must match the original) or the CRC collided (flip within
		// the checked region) — then the fixpoint property must still hold.
		if !truncate && int(pos)%(8*len(good))/8 < PreambleLen {
			want := h
			want.Length = uint8(len(payload))
			if fr.Header != want || !bytes.Equal(fr.Payload, payload) {
				t.Fatalf("preamble flip changed the decoded frame: %+v", fr)
			}
		}
		re, err := Encode(fr.Header, fr.Payload)
		if err != nil {
			t.Fatalf("accepted mutated frame failed to re-encode: %v", err)
		}
		fr2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if fr2.Header != fr.Header || !bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("decode/encode fixpoint broken after mutation: %+v vs %+v", fr, fr2)
		}
	})
}
