package field

import (
	"math"
	"testing"
)

func TestSINRAtZeroInterferersBitIdentical(t *testing.T) {
	// With no interferers SINRAt must return SNRAt verbatim — the gate,
	// not a recomputation — over a whole grid of tag positions.
	s := PaperScene()
	for iy := 0; iy <= 20; iy++ {
		for ix := 0; ix <= 20; ix++ {
			p := Vec2{float64(ix) / 10, float64(iy) / 10}
			a := s.SNRAt(p, s.RX)
			b := s.SINRAt(p, s.RX, nil)
			c := s.SINRAt(p, s.RX, []Vec2{})
			if math.Float64bits(float64(a)) != math.Float64bits(float64(b)) ||
				math.Float64bits(float64(a)) != math.Float64bits(float64(c)) {
				t.Fatalf("p=%v: SINRAt without interferers %v/%v != SNRAt %v", p, b, c, a)
			}
		}
	}
	if a, b := s.SNR(Vec2{0.5, 0.5}), s.SINR(Vec2{0.5, 0.5}, nil); a != b {
		t.Errorf("SINR convenience = %v, want %v", b, a)
	}
}

func TestSINRAtBelowSNRAt(t *testing.T) {
	// Any interferer strictly lowers the ratio, and more interferers
	// lower it further.
	s := PaperScene()
	p := Vec2{0.5, 0.7}
	snr := s.SNRAt(p, s.RX)
	one := s.SINRAt(p, s.RX, []Vec2{{2, 2}})
	two := s.SINRAt(p, s.RX, []Vec2{{2, 2}, {0, 0}})
	if !(one < snr) {
		t.Errorf("one interferer: SINR %v not below SNR %v", one, snr)
	}
	if !(two < one) {
		t.Errorf("second interferer raised the ratio: %v !< %v", two, one)
	}
	// A close interferer hurts more than a distant one.
	near := s.SINRAt(p, s.RX, []Vec2{{1.1, 0.5}})
	far := s.SINRAt(p, s.RX, []Vec2{{10, 10}})
	if !(near < far) {
		t.Errorf("near interferer %v not below far %v", near, far)
	}
}

func TestSINRAtDegenerateGeometry(t *testing.T) {
	// Coincident positions everywhere must stay finite (clamped to the
	// 1 cm near field), never NaN or a panic: tag on the TX antenna, tag
	// on the RX antenna, interferer on the RX antenna, and all of them at
	// once.
	s := PaperScene()
	cases := []struct {
		name string
		p    Vec2
		ifs  []Vec2
	}{
		{"tag on TX", s.TX, []Vec2{{2, 2}}},
		{"tag on RX", s.RX, []Vec2{{2, 2}}},
		{"interferer on RX", Vec2{0.5, 0.5}, []Vec2{s.RX}},
		{"everything coincident", s.RX, []Vec2{s.RX, s.TX}},
	}
	for _, tc := range cases {
		got := s.SINRAt(tc.p, s.RX, tc.ifs)
		if math.IsNaN(float64(got)) {
			t.Errorf("%s: SINRAt returned NaN", tc.name)
		}
		if math.IsInf(float64(got), 1) {
			t.Errorf("%s: SINRAt returned +Inf", tc.name)
		}
	}
	// The single-TX helpers get the same guard (this is the degenerate-
	// geometry coverage the pre-net code never pinned).
	for _, p := range []Vec2{s.TX, s.RX, *s.RXDiv} {
		if v := s.SNRAt(p, s.RX); math.IsNaN(float64(v)) || math.IsInf(float64(v), 1) {
			t.Errorf("SNRAt(%v) = %v, want finite or −Inf", p, v)
		}
		if v := s.SNRDiversity(p); math.IsNaN(float64(v)) || math.IsInf(float64(v), 1) {
			t.Errorf("SNRDiversity(%v) = %v, want finite or −Inf", p, v)
		}
	}
}
