// Package field computes the two-dimensional signal-strength maps behind
// the paper's phase-cancellation analysis (Fig. 4) and the antenna
// diversity microbenchmark (Fig. 6).
//
// The model is the phasor geometry of §3.2: a carrier antenna and an
// envelope-detecting receive antenna are fixed; a backscatter tag at some
// position modulates between two reflection states. The receiver's
// non-coherent detector sees only the envelope of (background + tag
// signal), so the detectable amplitude is the projection of the tag's
// differential vector onto the background vector — it collapses when the
// two are orthogonal, creating null arcs at positions where the
// round-trip path length puts the tag signal in quadrature.
package field

import (
	"fmt"
	"math"

	"braidio/internal/iq"
	"braidio/internal/stats"
	"braidio/internal/units"
)

// Vec2 is a position in the room plane, in meters.
type Vec2 struct{ X, Y float64 }

// Dist returns the Euclidean distance between two positions.
func (v Vec2) Dist(o Vec2) float64 { return math.Hypot(v.X-o.X, v.Y-o.Y) }

// Scene describes the measurement geometry: the carrier (transmit)
// antenna, one or two receive antennas, and the detection model
// parameters.
type Scene struct {
	// Wavelength of the carrier in meters (915 MHz ⇒ 0.3276 m).
	Wavelength float64
	// TX is the carrier antenna position.
	TX Vec2
	// RX is the primary receive antenna position.
	RX Vec2
	// RXDiv is the diversity receive antenna position; nil disables
	// diversity. The paper separates the two chip antennas by λ/8.
	RXDiv *Vec2
	// RefSNR is the signal-to-noise ratio, in dB, of a perfectly aligned
	// (cos θ = 1) tag whose forward and reverse path lengths are both
	// 1 m. It calibrates the absolute level of the map.
	RefSNR units.DB
	// BackgroundPhase is the phase of the static background vector
	// (direct TX→RX leakage) at the detector, in radians.
	BackgroundPhase float64
	// BackgroundRatio, when positive, switches SNRAt to the exact
	// finite-background envelope model: the background vector's
	// amplitude is this multiple of the tag signal's amplitude at unit
	// path product (d1·d2 = 1 m²). Zero keeps the paper's asymptotic
	// A = 2·cos(θ)·|Vtx| approximation, which assumes the background
	// dwarfs the tag signal everywhere.
	BackgroundRatio float64
}

// PaperScene reproduces the geometry of Fig. 4(b): TX at (0.95, 0.5), RX
// at (1.05, 0.5) in a 2 m × 2 m area, 915 MHz, with the diversity antenna
// λ/8 from the primary.
func PaperScene() *Scene {
	wl := float64((915 * units.Megahertz).Wavelength())
	div := Vec2{1.05 + wl/8, 0.5}
	return &Scene{
		Wavelength: wl,
		TX:         Vec2{0.95, 0.5},
		RX:         Vec2{1.05, 0.5},
		RXDiv:      &div,
		RefSNR:     30,
	}
}

// tagTheta returns the angle between the tag's differential vector and
// the background vector for a tag at p observed by antenna rx.
func (s *Scene) tagTheta(p, rx Vec2) float64 {
	d1 := s.TX.Dist(p)
	d2 := p.Dist(rx)
	direct := s.TX.Dist(rx)
	// The background is the direct leakage (path length = direct); the
	// tag signal accrues phase over d1 + d2. Their relative angle is the
	// phase difference of the two paths.
	return 2*math.Pi*(d1+d2-direct)/s.Wavelength + s.BackgroundPhase
}

// SNRAt returns the envelope-detected SNR, in dB, of a tag at p received
// on a specific antenna position. Positions coincident with an antenna
// (within 1 cm) are clamped to 1 cm to keep the near-field amplitude
// finite.
func (s *Scene) SNRAt(p, rx Vec2) units.DB {
	const nearField = 0.01
	d1 := math.Max(s.TX.Dist(p), nearField)
	d2 := math.Max(p.Dist(rx), nearField)
	theta := s.tagTheta(p, rx)
	var amp float64
	if s.BackgroundRatio > 0 {
		// Exact non-coherent detection: the comparator sees
		// | |B + s| − |B − s| | for tag states ±s riding on the
		// background phasor B. Near the antennas, where |s| rivals B,
		// this saturates instead of growing without bound.
		sig := iq.FromPolar(1/(d1*d2), theta)
		bg := iq.FromPolar(s.BackgroundRatio, 0)
		amp = iq.EnvelopeDelta(bg, sig.Scale(-1), sig) / 2
	} else {
		// The paper's strong-background asymptote: A = 2·cos(θ)·|Vtx|.
		amp = math.Abs(math.Cos(theta)) / (d1 * d2)
	}
	if amp <= 0 {
		return units.DB(math.Inf(-1))
	}
	return s.RefSNR + units.DB(20*math.Log10(amp))
}

// SNR returns the detected SNR at the primary antenna only (the
// "without antenna diversity" curve of Fig. 6).
func (s *Scene) SNR(p Vec2) units.DB { return s.SNRAt(p, s.RX) }

// SINRAt returns the envelope-detected signal-to-(noise+interference)
// ratio, in dB, of a tag at p received at rx while additional carriers
// at the interferer positions are concurrently on the air. Each
// interferer radiates with the same unit amplitude scale as the scene's
// own carrier (power 1/d² at distance d, the scale at which a tag with
// unit path product hits RefSNR), so its power relative to the noise
// floor is 10^(RefSNR/10)/d². The combined floor lifts the tag's ratio:
//
//	SINR = SNR − 10·log10(1 + Σ_k I_k/N)
//
// With no interferers this returns SNRAt(p, rx) verbatim — the
// zero-interferer path is gated, not recomputed, so it is bit-identical
// to the single-TX helper (SNRAt, SNR, SNRDiversity remain single-TX by
// contract; multi-source callers come through here). Interferers
// coincident with the receive antenna are clamped to the same 1 cm
// near-field floor SNRAt applies.
func (s *Scene) SINRAt(p, rx Vec2, interferers []Vec2) units.DB {
	snr := s.SNRAt(p, rx)
	if len(interferers) == 0 {
		return snr
	}
	const nearField = 0.01
	overN := 0.0 // Σ interferer power / noise power
	for _, q := range interferers {
		d := math.Max(q.Dist(rx), nearField)
		overN += math.Pow(10, float64(s.RefSNR)/10) / (d * d)
	}
	return snr - units.DB(10*math.Log10(1+overN))
}

// SINR is SINRAt on the primary receive antenna.
func (s *Scene) SINR(p Vec2, interferers []Vec2) units.DB {
	return s.SINRAt(p, s.RX, interferers)
}

// SNRDiversity returns the best SNR over the available receive antennas
// (the "with antenna diversity" curve of Fig. 6). With no diversity
// antenna configured it equals SNR.
func (s *Scene) SNRDiversity(p Vec2) units.DB {
	best := s.SNRAt(p, s.RX)
	if s.RXDiv != nil {
		if alt := s.SNRAt(p, *s.RXDiv); alt > best {
			best = alt
		}
	}
	return best
}

// Map is a rectangular grid of SNR values.
type Map struct {
	X0, Y0, X1, Y1 float64
	NX, NY         int
	// SNR holds NY rows of NX values, row-major, SNR[iy][ix].
	SNR [][]units.DB
}

// FieldMap samples the scene over [x0,x1]×[y0,y1] on an nx×ny grid using
// the primary antenna, reproducing Fig. 4(b). It panics on a degenerate
// grid.
func (s *Scene) FieldMap(x0, y0, x1, y1 float64, nx, ny int) *Map {
	if nx < 2 || ny < 2 || x1 <= x0 || y1 <= y0 {
		panic(fmt.Sprintf("field: degenerate grid %dx%d over [%v,%v]x[%v,%v]", nx, ny, x0, x1, y0, y1))
	}
	m := &Map{X0: x0, Y0: y0, X1: x1, Y1: y1, NX: nx, NY: ny, SNR: make([][]units.DB, ny)}
	for iy := 0; iy < ny; iy++ {
		row := make([]units.DB, nx)
		y := y0 + (y1-y0)*float64(iy)/float64(ny-1)
		for ix := 0; ix < nx; ix++ {
			x := x0 + (x1-x0)*float64(ix)/float64(nx-1)
			row[ix] = s.SNR(Vec2{x, y})
		}
		m.SNR[iy] = row
	}
	return m
}

// MinMax reports the extreme finite SNR values in the map.
func (m *Map) MinMax() (min, max units.DB) {
	min, max = units.DB(math.Inf(1)), units.DB(math.Inf(-1))
	for _, row := range m.SNR {
		for _, v := range row {
			if math.IsInf(float64(v), 0) {
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max
}

// LineSweep samples SNR along the straight segment from a to b at n
// evenly spaced points, returning distance-along-the-line vs SNR. With
// diversity true the best antenna is used at every point. This produces
// the curves of Fig. 4(c) and Fig. 6.
func (s *Scene) LineSweep(a, b Vec2, n int, diversity bool) stats.Series {
	if n < 2 {
		panic("field: line sweep needs at least two points")
	}
	out := make(stats.Series, n)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		p := Vec2{a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y)}
		var v units.DB
		if diversity {
			v = s.SNRDiversity(p)
		} else {
			v = s.SNR(p)
		}
		out[i] = stats.Point{X: f * a.Dist(b), Y: float64(v)}
	}
	return out
}

// Nulls returns the X positions of local minima in a series that fall
// below the given threshold — the phase-cancellation nulls of Fig. 4(c).
func Nulls(s stats.Series, below float64) []float64 {
	var nulls []float64
	for i := 1; i < len(s)-1; i++ {
		if s[i].Y < below && s[i].Y <= s[i-1].Y && s[i].Y <= s[i+1].Y {
			nulls = append(nulls, s[i].X)
		}
	}
	return nulls
}

// WorstCase returns the minimum Y over the series.
func WorstCase(s stats.Series) float64 {
	min := math.Inf(1)
	for _, p := range s {
		if p.Y < min {
			min = p.Y
		}
	}
	return min
}
