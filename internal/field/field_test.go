package field

import (
	"math"
	"testing"

	"braidio/internal/stats"
)

func TestVec2Dist(t *testing.T) {
	if got := (Vec2{0, 0}).Dist(Vec2{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestPaperSceneGeometry(t *testing.T) {
	s := PaperScene()
	if s.TX != (Vec2{0.95, 0.5}) || s.RX != (Vec2{1.05, 0.5}) {
		t.Errorf("antenna positions %v %v don't match Fig. 4", s.TX, s.RX)
	}
	if s.RXDiv == nil {
		t.Fatal("paper scene must have a diversity antenna")
	}
	sep := s.RX.Dist(*s.RXDiv)
	if math.Abs(sep-s.Wavelength/8) > 1e-9 {
		t.Errorf("diversity separation = %v, want λ/8 = %v", sep, s.Wavelength/8)
	}
}

func TestSNRFallsWithDistance(t *testing.T) {
	s := PaperScene()
	// Compare two aligned positions (same fractional phase) at different
	// distances: pick points exactly k wavelengths farther round-trip.
	p1 := Vec2{1.0, 1.0}
	p2 := Vec2{1.0, 1.8}
	// Average away the cos θ factor by sampling many nearby points.
	avg := func(c Vec2) float64 {
		sum := 0.0
		const n = 64
		for i := 0; i < n; i++ {
			dy := float64(i) / n * s.Wavelength
			sum += float64(s.SNR(Vec2{c.X, c.Y + dy}))
		}
		return sum / n
	}
	if a1, a2 := avg(p1), avg(p2); a1 <= a2 {
		t.Errorf("mean SNR did not fall with distance: %v at 0.5 m vs %v at 1.3 m", a1, a2)
	}
}

// TestNullsExist reproduces the core of Fig. 4(c): along the Y=0.5 line
// there are positions with dramatically suppressed SNR very close to the
// antennas.
func TestNullsExist(t *testing.T) {
	s := PaperScene()
	line := s.LineSweep(Vec2{0.02, 0.5}, Vec2{2, 0.5}, 4000, false)
	nulls := Nulls(line, 0)
	if len(nulls) == 0 {
		t.Fatal("no phase-cancellation nulls found along the paper's line")
	}
	// The paper observes nulls quite close to the devices (well inside 2 m).
	if nulls[0] > 1.5 {
		t.Errorf("first null at %v m along the line; expected one closer", nulls[0])
	}
}

// TestDiversityLiftsNulls reproduces Fig. 6: without diversity the SNR
// collapses at null points; with a λ/8-spaced second antenna the worst
// case stays usable (≥5 dB in the paper's 0.3–2 m sweep).
func TestDiversityLiftsNulls(t *testing.T) {
	s := PaperScene()
	center := Vec2{1.0, 0.5}
	// Sweep the tag outward from 0.3 to 2 m above the antennas.
	start := Vec2{center.X, center.Y + 0.3}
	end := Vec2{center.X, center.Y + 2.0}
	without := s.LineSweep(start, end, 3000, false)
	with := s.LineSweep(start, end, 3000, true)

	worstWithout := WorstCase(without)
	worstWith := WorstCase(with)
	if worstWithout > 1 {
		t.Errorf("worst case without diversity = %v dB; expected a collapse below ~0 dB", worstWithout)
	}
	if worstWith < 4 {
		t.Errorf("worst case with diversity = %v dB; expected ≥ ~5 dB", worstWith)
	}
	if worstWith-worstWithout < 5 {
		t.Errorf("diversity lifted worst case by only %v dB", worstWith-worstWithout)
	}
}

func TestDiversityNeverHurts(t *testing.T) {
	s := PaperScene()
	for i := 0; i < 500; i++ {
		p := Vec2{0.1 + float64(i%25)*0.08, 0.1 + float64(i/25)*0.09}
		if s.SNRDiversity(p) < s.SNR(p) {
			t.Fatalf("diversity SNR below single-antenna SNR at %v", p)
		}
	}
}

func TestSNRDiversityWithoutAltEqualsSNR(t *testing.T) {
	s := PaperScene()
	s.RXDiv = nil
	p := Vec2{0.5, 1.2}
	if s.SNRDiversity(p) != s.SNR(p) {
		t.Error("diversity without a second antenna must equal single-antenna SNR")
	}
}

func TestFieldMapShape(t *testing.T) {
	s := PaperScene()
	m := s.FieldMap(0, 0, 2, 2, 41, 41)
	if m.NX != 41 || m.NY != 41 || len(m.SNR) != 41 || len(m.SNR[0]) != 41 {
		t.Fatalf("map dimensions wrong: %dx%d", m.NX, m.NY)
	}
	min, max := m.MinMax()
	if max <= min {
		t.Errorf("MinMax = %v..%v", min, max)
	}
	// The map must show a large dynamic range: bright near the antennas,
	// deep nulls elsewhere (the dark arcs of Fig. 4(b)).
	if float64(max-min) < 40 {
		t.Errorf("dynamic range = %v dB, want > 40", max-min)
	}
}

func TestFieldMapPanicsOnDegenerateGrid(t *testing.T) {
	s := PaperScene()
	defer func() {
		if recover() == nil {
			t.Error("degenerate grid did not panic")
		}
	}()
	s.FieldMap(0, 0, 2, 2, 1, 10)
}

func TestLineSweepDistanceAxis(t *testing.T) {
	s := PaperScene()
	line := s.LineSweep(Vec2{0, 0.5}, Vec2{2, 0.5}, 101, false)
	if line[0].X != 0 || math.Abs(line[100].X-2) > 1e-12 {
		t.Errorf("sweep X axis runs %v..%v, want 0..2", line[0].X, line[100].X)
	}
	for i := 1; i < len(line); i++ {
		if line[i].X <= line[i-1].X {
			t.Fatal("sweep X axis not strictly increasing")
		}
	}
}

func TestNearFieldClamp(t *testing.T) {
	s := PaperScene()
	// Exactly on the TX antenna: must stay finite.
	v := s.SNR(s.TX)
	if math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
		t.Errorf("SNR at antenna position = %v", v)
	}
}

func TestNullsHelper(t *testing.T) {
	s := stats.Series{{X: 0, Y: 10}, {X: 1, Y: -5}, {X: 2, Y: 10}, {X: 3, Y: 3}, {X: 4, Y: 10}}
	nulls := Nulls(s, 0)
	if len(nulls) != 1 || nulls[0] != 1 {
		t.Errorf("Nulls = %v, want [1]", nulls)
	}
	if got := WorstCase(s); got != -5 {
		t.Errorf("WorstCase = %v, want -5", got)
	}
}

// TestFiniteBackgroundMatchesAsymptoteFar: where the tag signal is tiny
// compared to the background, the exact envelope model agrees with the
// paper's cos(θ) asymptote.
func TestFiniteBackgroundMatchesAsymptoteFar(t *testing.T) {
	exact := PaperScene()
	exact.BackgroundRatio = 50
	asym := PaperScene()
	for _, p := range []Vec2{{X: 1.0, Y: 1.7}, {X: 0.4, Y: 1.5}, {X: 1.8, Y: 0.9}} {
		e := float64(exact.SNRAt(p, exact.RX))
		a := float64(asym.SNRAt(p, asym.RX))
		// Skip exact-null points where both are −∞-ish.
		if a < -40 {
			continue
		}
		if math.Abs(e-a) > 1.5 {
			t.Errorf("at %v: exact %v vs asymptote %v dB", p, e, a)
		}
	}
}

// TestFiniteBackgroundSaturatesNear: adjacent to the antennas, the exact
// model's detected amplitude is capped by the background level rather
// than diverging with 1/(d1·d2).
func TestFiniteBackgroundSaturatesNear(t *testing.T) {
	exact := PaperScene()
	exact.BackgroundRatio = 5
	asym := PaperScene()
	near := Vec2{X: 0.96, Y: 0.52} // centimeters from the TX antenna
	e := float64(exact.SNRAt(near, exact.RX))
	a := float64(asym.SNRAt(near, asym.RX))
	if e >= a-3 {
		t.Errorf("exact model did not saturate near the antenna: exact %v vs asymptote %v", e, a)
	}
}
