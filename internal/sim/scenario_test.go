package sim

import (
	"math"
	"testing"

	"braidio/internal/core"
	"braidio/internal/energy"
	"braidio/internal/mac"
	"braidio/internal/phy"
	"braidio/internal/units"
)

func device(t testing.TB, name string) energy.Device {
	t.Helper()
	d, ok := energy.DeviceByName(name)
	if !ok {
		t.Fatalf("unknown device %q", name)
	}
	return d
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*b }

// TestFig15Corners pins the headline Fig. 15 numbers: a Fuel Band
// transmitting to a MacBook Pro 15 gains ≈397× over Bluetooth via
// backscatter; the reverse direction gains ≈299× via the passive
// receiver.
func TestFig15Corners(t *testing.T) {
	m := phy.NewModel()
	fuel := device(t, "Nike Fuel Band")
	mbp := device(t, "MacBook Pro 15")

	up, err := RunPair(m, 0.5, fuel, mbp)
	if err != nil {
		t.Fatal(err)
	}
	if g := up.GainVsBluetooth(); !approx(g, 397, 0.10) {
		t.Errorf("FuelBand→MBP15 gain = %v, want ≈397", g)
	}
	if f := up.Braidio.ModeFraction(phy.ModeBackscatter); f < 0.95 {
		t.Errorf("uplink backscatter fraction = %v, want ≈1", f)
	}

	down, err := RunPair(m, 0.5, mbp, fuel)
	if err != nil {
		t.Fatal(err)
	}
	if g := down.GainVsBluetooth(); !approx(g, 299, 0.10) {
		t.Errorf("MBP15→FuelBand gain = %v, want ≈299", g)
	}
	if f := down.Braidio.ModeFraction(phy.ModePassive); f < 0.95 {
		t.Errorf("downlink passive fraction = %v, want ≈1", f)
	}
}

// TestFig15Diagonal pins the equal-device gain at ≈1.43.
func TestFig15Diagonal(t *testing.T) {
	m := phy.NewModel()
	for _, name := range []string{"Pebble Watch", "iPhone 6S", "MacBook Pro 13"} {
		d := device(t, name)
		r, err := RunPair(m, 0.5, d, d)
		if err != nil {
			t.Fatal(err)
		}
		if g := r.GainVsBluetooth(); !approx(g, 1.43, 0.03) {
			t.Errorf("%s↔%s gain = %v, want ≈1.43", name, name, g)
		}
	}
}

// TestFig15MidCell checks a representative interior cell: iPhone 6S
// transmitting to an Apple Watch (paper: 5.85).
func TestFig15MidCell(t *testing.T) {
	m := phy.NewModel()
	r, err := RunPair(m, 0.5, device(t, "iPhone 6S"), device(t, "Apple Watch"))
	if err != nil {
		t.Fatal(err)
	}
	if g := r.GainVsBluetooth(); g < 4 || g > 8 {
		t.Errorf("iPhone6S→AppleWatch gain = %v, want ≈5–6 (paper 5.85)", g)
	}
}

// TestFig16Shape verifies the Fig. 16 structure: modest gains (≈1.43 on
// the diagonal, bounded by ≈2), approaching 1 at extreme asymmetry where
// a single mode dominates.
func TestFig16Shape(t *testing.T) {
	m := phy.NewModel()
	fuel := device(t, "Nike Fuel Band")
	mbp := device(t, "MacBook Pro 15")
	watch := device(t, "Apple Watch")

	diag, err := RunPair(m, 0.5, watch, watch)
	if err != nil {
		t.Fatal(err)
	}
	if g := diag.GainVsBestMode(); !approx(g, 1.43, 0.03) {
		t.Errorf("diagonal gain vs best mode = %v, want ≈1.43", g)
	}
	corner, err := RunPair(m, 0.5, fuel, mbp)
	if err != nil {
		t.Fatal(err)
	}
	if g := corner.GainVsBestMode(); g > 1.05 {
		t.Errorf("extreme-asymmetry gain vs best mode = %v, want ≈1", g)
	}
	if corner.BestMode != phy.ModeBackscatter {
		t.Errorf("best single mode for FuelBand→MBP15 = %v, want backscatter", corner.BestMode)
	}
}

// TestGainMatrixFig15 runs the full 10×10 matrix and checks its global
// shape: max ≈397 at the corner, diagonal ≈1.43, all cells ≥ 1.
func TestGainMatrixFig15(t *testing.T) {
	m := phy.NewModel()
	mat, err := GainMatrixBluetooth(m, 0.5, energy.Catalog)
	if err != nil {
		t.Fatal(err)
	}
	if max := mat.Max(); !approx(max, 397, 0.12) {
		t.Errorf("matrix max = %v, want ≈397", max)
	}
	for i, g := range mat.Diagonal() {
		if !approx(g, 1.43, 0.05) {
			t.Errorf("diagonal[%d] = %v, want ≈1.43", i, g)
		}
	}
	for r, row := range mat.Cells {
		for c, v := range row {
			if v < 0.99 {
				t.Errorf("cell[%d][%d] = %v < 1: Braidio must never lose to Bluetooth", r, c, v)
			}
		}
	}
	// The matrix is anti-symmetric in magnitude: uplink corner beats
	// downlink corner (397 vs 299) because backscatter's ratio exceeds
	// passive's.
	up, _ := mat.At("Nike Fuel Band", "MacBook Pro 15")
	down, _ := mat.At("MacBook Pro 15", "Nike Fuel Band")
	if up <= down {
		t.Errorf("corner asymmetry inverted: up %v vs down %v", up, down)
	}
}

// TestFig17Bidirectional checks the role-swap scenario: corner gains in
// the ≈350 region (paper: 350/368) and diagonal ≈1.43.
func TestFig17Bidirectional(t *testing.T) {
	m := phy.NewModel()
	fuel := device(t, "Nike Fuel Band")
	mbp := device(t, "MacBook Pro 15")
	r, err := RunBidirectional(m, 0.5, fuel, mbp)
	if err != nil {
		t.Fatal(err)
	}
	if g := r.Gain(); !approx(g, 350, 0.15) {
		t.Errorf("bidirectional corner gain = %v, want ≈350", g)
	}
	if r.Rounds < 10 {
		t.Errorf("only %d role swaps", r.Rounds)
	}
	watch := device(t, "Apple Watch")
	same, err := RunBidirectional(m, 0.5, watch, watch)
	if err != nil {
		t.Fatal(err)
	}
	if g := same.Gain(); !approx(g, 1.43, 0.06) {
		t.Errorf("bidirectional diagonal gain = %v, want ≈1.43", g)
	}
}

// TestFig17BeatsFig15MidMatrix: bidirectional gains exceed unidirectional
// for asymmetric pairs ("the device with less energy budget is able to
// use the backscatter mode when communicating and the passive receiver
// mode when receiving").
func TestFig17BeatsFig15MidMatrix(t *testing.T) {
	m := phy.NewModel()
	phone := device(t, "iPhone 6S")
	watch := device(t, "Apple Watch")
	uni, err := RunPair(m, 0.5, phone, watch)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := RunBidirectional(m, 0.5, phone, watch)
	if err != nil {
		t.Fatal(err)
	}
	if bi.Gain() <= uni.GainVsBluetooth() {
		t.Errorf("bidirectional gain %v not above unidirectional %v", bi.Gain(), uni.GainVsBluetooth())
	}
}

// TestFig18DistanceSweep verifies the distance behaviour: gains decrease
// with distance, with a sharp drop once backscatter dies (2.4 m) for the
// small→large direction.
func TestFig18DistanceSweep(t *testing.T) {
	m := phy.NewModel()
	fuel := device(t, "Nike Fuel Band")
	phone := device(t, "iPhone 6S")
	distances := []units.Meter{0.5, 1, 1.5, 2, 3, 4, 5}
	up, err := DistanceSweep(m, fuel, phone, distances)
	if err != nil {
		t.Fatal(err)
	}
	if len(up) != len(distances) {
		t.Fatalf("sweep has %d points, want %d", len(up), len(distances))
	}
	// Monotone non-increasing (within small tolerance).
	for i := 1; i < len(up); i++ {
		if up[i].Y > up[i-1].Y*1.02 {
			t.Errorf("gain increased with distance at %v m: %v → %v", up[i].X, up[i-1].Y, up[i].Y)
		}
	}
	// Strong at 0.5 m (the paper's Fig. 15 cell for this pair is 27.9),
	// collapsed after backscatter dies at 2.4 m for the
	// small-transmitter direction.
	if up[0].Y < 20 || up[0].Y > 36 {
		t.Errorf("short-range gain = %v, want ≈27.9", up[0].Y)
	}
	at3 := up.Interpolate(3)
	if at3 > 3 {
		t.Errorf("FuelBand→iPhone gain at 3 m = %v, want collapsed (backscatter gone)", at3)
	}
	// The reverse direction (passive receiver) keeps double-digit gains
	// past 3 m (§6.3 Scenario 3).
	down, err := DistanceSweep(m, phone, fuel, distances)
	if err != nil {
		t.Fatal(err)
	}
	if got := down.Interpolate(3); got < 10 {
		t.Errorf("iPhone→FuelBand gain at 3 m = %v, want >10 via passive mode", got)
	}
}

func TestRunPairErrors(t *testing.T) {
	if _, err := RunPair(nil, 1, energy.Catalog[0], energy.Catalog[1]); err == nil {
		t.Error("nil model accepted")
	}
	m := phy.NewModel()
	if _, err := RunPair(m, 5000, energy.Catalog[0], energy.Catalog[1]); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := &Matrix{
		Devices: energy.Catalog[:2],
		Cells:   [][]float64{{1, 2}, {3, 4}},
	}
	if v, ok := m.At("Pebble Watch", "Nike Fuel Band"); !ok || v != 2 {
		t.Errorf("At = %v,%v, want 2,true", v, ok)
	}
	if _, ok := m.At("nope", "Nike Fuel Band"); ok {
		t.Error("unknown device found")
	}
	if m.Max() != 4 {
		t.Errorf("Max = %v", m.Max())
	}
	d := m.Diagonal()
	if d[0] != 1 || d[1] != 4 {
		t.Errorf("Diagonal = %v", d)
	}
}

// TestMACMatchesBraid cross-validates the two engines: for a small pair
// at short range, the packet-level MAC (ARQ world, probes, switch costs)
// delivers within ~20% of the chunked braid engine's ideal projection.
func TestMACMatchesBraid(t *testing.T) {
	m := phy.NewModel()
	const c1, c2 = 2e-4, 2e-4 // 0.2 mWh each: a quick run
	braid := core.NewBraid(m, 0.4)
	ideal, err := braid.RunFresh(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mac.DefaultConfig(m, 0.4, 5)
	s, err := mac.NewSession(cfg, energy.NewBattery(c1), energy.NewBattery(c2))
	if err != nil {
		t.Fatal(err)
	}
	for !s.Dead() {
		if _, err := s.SendFrame(240); err != nil {
			break
		}
	}
	macBits := s.Stats().PayloadBits
	ratio := macBits / ideal.Bits
	if ratio < 0.8 || ratio > 1.05 {
		t.Errorf("MAC delivered %v bits vs braid %v (ratio %v)", macBits, ideal.Bits, ratio)
	}
}

// TestGainMatrixVariantsSmall runs the Fig. 16/17 builders on a 2-device
// subset, checking the gains land in their documented bands.
func TestGainMatrixVariantsSmall(t *testing.T) {
	m := phy.NewModel()
	devs := []energy.Device{device(t, "Apple Watch"), device(t, "iPhone 6S")}
	best, err := GainMatrixBestMode(m, 0.5, devs)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range best.Cells {
		for _, v := range row {
			if v < 0.99 || v > 2 {
				t.Errorf("best-mode gain %v outside [1, 2]", v)
			}
		}
	}
	bi, err := GainMatrixBidirectional(m, 0.5, devs)
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := bi.At("Apple Watch", "iPhone 6S"); g < 1 {
		t.Errorf("bidirectional gain %v < 1", g)
	}
}

// TestDistanceSweepSkipsDeadDistances: out-of-range points drop out of
// the series instead of erroring the sweep.
func TestDistanceSweepSkipsDeadDistances(t *testing.T) {
	m := phy.NewModel()
	s, err := DistanceSweep(m, device(t, "Apple Watch"), device(t, "iPhone 6S"),
		[]units.Meter{0.5, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Errorf("sweep kept %d points, want 1", len(s))
	}
	if _, err := DistanceSweep(m, device(t, "Apple Watch"), device(t, "iPhone 6S"),
		[]units.Meter{5000}); err == nil {
		t.Error("all-dead sweep should error")
	}
}
